package workload

// EquivPack is one set of semantically equivalent query spellings. The
// Dagstuhl "benchmarking robustness" group's requirement: a robust query
// processor spends identical resources on every member of a pack.
type EquivPack struct {
	Name    string
	Queries []string
}

// EquivalencePacks returns the rewrite packs over the TPC-H-lite schema,
// following the session's examples (commuted FROM lists, negation
// rewrites, IN vs OR vs range, BETWEEN vs comparisons, literals vs
// parameters are exercised separately).
func EquivalencePacks() []EquivPack {
	return []EquivPack{
		{
			Name: "from-order",
			Queries: []string{
				"SELECT COUNT(*) FROM customer, orders WHERE customer.c_custkey = orders.o_custkey",
				"SELECT COUNT(*) FROM orders, customer WHERE customer.c_custkey = orders.o_custkey",
				"SELECT COUNT(*) FROM orders, customer WHERE orders.o_custkey = customer.c_custkey",
			},
		},
		{
			Name: "negation",
			Queries: []string{
				"SELECT COUNT(*) FROM lineitem WHERE NOT (l_shipdate <> DATE(9000))",
				"SELECT COUNT(*) FROM lineitem WHERE l_shipdate = DATE(9000)",
				"SELECT COUNT(*) FROM lineitem WHERE DATE(9000) = l_shipdate",
			},
		},
		{
			Name: "between-vs-comparisons",
			Queries: []string{
				"SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 10 AND 20",
				"SELECT COUNT(*) FROM lineitem WHERE l_quantity >= 10 AND l_quantity <= 20",
				"SELECT COUNT(*) FROM lineitem WHERE NOT (l_quantity < 10 OR l_quantity > 20)",
			},
		},
		{
			Name: "in-vs-eq",
			Queries: []string{
				"SELECT COUNT(*) FROM lineitem WHERE l_returnflag IN ('R')",
				"SELECT COUNT(*) FROM lineitem WHERE l_returnflag = 'R'",
			},
		},
		{
			Name: "double-negation",
			Queries: []string{
				"SELECT COUNT(*) FROM part WHERE NOT (NOT (p_size > 25))",
				"SELECT COUNT(*) FROM part WHERE p_size > 25",
			},
		},
		{
			Name: "demorgan",
			Queries: []string{
				"SELECT COUNT(*) FROM part WHERE NOT (p_size < 10 AND p_brand = 3)",
				"SELECT COUNT(*) FROM part WHERE p_size >= 10 OR p_brand <> 3",
			},
		},
		{
			Name: "redundant-true",
			Queries: []string{
				"SELECT COUNT(*) FROM supplier WHERE s_nationkey = 4 AND 1 = 1",
				"SELECT COUNT(*) FROM supplier WHERE s_nationkey = 4",
			},
		},
	}
}

// RangeFamily generates the parameterized selectivity-sweep family the
// smoothness metric S(Q) is defined over: count queries whose range width
// steps from ~0% to 100% of the domain.
func RangeFamily(table, col string, lo, hi int64, steps int) []string {
	out := make([]string, 0, steps)
	span := hi - lo
	for i := 1; i <= steps; i++ {
		width := span * int64(i) / int64(steps)
		out = append(out, rangeQuery(table, col, lo, lo+width))
	}
	return out
}

func rangeQuery(table, col string, lo, hi int64) string {
	return "SELECT COUNT(*) FROM " + table + " WHERE " + col + " >= " +
		itoa(lo) + " AND " + col + " <= " + itoa(hi)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
