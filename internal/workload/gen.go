// Package workload provides the data and query generators behind every
// experiment: scale-free "lite" versions of TPC-H, TPC-C and the hybrid
// TPC-CH, a star schema with controllable predicate correlation (the
// black-hat / POP workload), parameterized range-query families, and the
// equivalent-query rewrite packs of the Dagstuhl benchmarking session.
package workload

import (
	"math/rand"

	"rqp/internal/types"
)

// Gen wraps a seeded random source so every workload is reproducible.
type Gen struct {
	R *rand.Rand
}

// NewGen returns a deterministic generator.
func NewGen(seed int64) *Gen {
	return &Gen{R: rand.New(rand.NewSource(seed))}
}

// Uniform returns an integer in [0, n).
func (g *Gen) Uniform(n int64) int64 { return g.R.Int63n(n) }

// Zipf returns a Zipf-distributed integer in [0, n) with skew s (> 1).
func (g *Gen) Zipf(n uint64, s float64) int64 {
	if s <= 1 {
		s = 1.01
	}
	z := rand.NewZipf(g.R, s, 1, n-1)
	return int64(z.Uint64())
}

// ZipfSeq returns a reusable Zipf sampler (cheaper than per-call).
func (g *Gen) ZipfSeq(n uint64, s float64) func() int64 {
	if s <= 1 {
		s = 1.01
	}
	z := rand.NewZipf(g.R, s, 1, n-1)
	return func() int64 { return int64(z.Uint64()) }
}

// Name produces a short deterministic pseudo-name.
func (g *Gen) Name(prefix string, id int64) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := []byte(prefix)
	v := id
	for i := 0; i < 4; i++ {
		b = append(b, letters[v%26])
		v = v/26 + 7
	}
	return string(b)
}

// IntRow is a convenience row builder.
func IntRow(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.Int(v)
	}
	return r
}
