package workload

import (
	"fmt"

	"rqp/internal/catalog"
	"rqp/internal/types"
)

// TPCHConfig sizes the TPC-H-lite database. Scale 1.0 means 1500 orders /
// 6000 lineitems — three orders of magnitude under the real benchmark, but
// schema- and distribution-compatible, which is all the Dagstuhl test
// suites need (their metrics are scale-free ratios).
type TPCHConfig struct {
	Scale float64
	Seed  int64
}

// TPCHTables lists the tables BuildTPCH creates.
var TPCHTables = []string{"region", "nation", "supplier", "customer", "part", "orders", "lineitem"}

// BuildTPCH creates and loads the lite schema with statistics.
func BuildTPCH(cfg TPCHConfig) (*catalog.Catalog, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	g := NewGen(cfg.Seed)
	cat := catalog.New()
	sc := func(base int) int {
		n := int(float64(base) * cfg.Scale)
		if n < 1 {
			n = 1
		}
		return n
	}
	nRegion := 5
	nNation := 25
	nSupp := sc(100)
	nCust := sc(150)
	nPart := sc(200)
	nOrders := sc(1500)
	nLine := sc(6000)

	region, err := cat.CreateTable("region", types.Schema{
		{Name: "r_regionkey", Kind: types.KindInt},
		{Name: "r_name", Kind: types.KindString},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nRegion; i++ {
		cat.Insert(nil, region, types.Row{types.Int(int64(i)), types.Str(g.Name("region", int64(i)))})
	}

	nation, err := cat.CreateTable("nation", types.Schema{
		{Name: "n_nationkey", Kind: types.KindInt},
		{Name: "n_regionkey", Kind: types.KindInt},
		{Name: "n_name", Kind: types.KindString},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nNation; i++ {
		cat.Insert(nil, nation, types.Row{
			types.Int(int64(i)), types.Int(int64(i % nRegion)), types.Str(g.Name("nation", int64(i))),
		})
	}

	supplier, err := cat.CreateTable("supplier", types.Schema{
		{Name: "s_suppkey", Kind: types.KindInt},
		{Name: "s_nationkey", Kind: types.KindInt},
		{Name: "s_acctbal", Kind: types.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nSupp; i++ {
		cat.Insert(nil, supplier, types.Row{
			types.Int(int64(i)), types.Int(g.Uniform(int64(nNation))),
			types.Float(float64(g.Uniform(100000)) / 10),
		})
	}

	customer, err := cat.CreateTable("customer", types.Schema{
		{Name: "c_custkey", Kind: types.KindInt},
		{Name: "c_nationkey", Kind: types.KindInt},
		{Name: "c_mktsegment", Kind: types.KindString},
		{Name: "c_acctbal", Kind: types.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	for i := 0; i < nCust; i++ {
		cat.Insert(nil, customer, types.Row{
			types.Int(int64(i)), types.Int(g.Uniform(int64(nNation))),
			types.Str(segments[g.Uniform(int64(len(segments)))]),
			types.Float(float64(g.Uniform(100000)) / 10),
		})
	}

	part, err := cat.CreateTable("part", types.Schema{
		{Name: "p_partkey", Kind: types.KindInt},
		{Name: "p_brand", Kind: types.KindInt},
		{Name: "p_size", Kind: types.KindInt},
		{Name: "p_retailprice", Kind: types.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nPart; i++ {
		cat.Insert(nil, part, types.Row{
			types.Int(int64(i)), types.Int(g.Uniform(25)), types.Int(1 + g.Uniform(50)),
			types.Float(900 + float64(g.Uniform(1000))/10),
		})
	}

	orders, err := cat.CreateTable("orders", types.Schema{
		{Name: "o_orderkey", Kind: types.KindInt},
		{Name: "o_custkey", Kind: types.KindInt},
		{Name: "o_orderdate", Kind: types.KindDate},
		{Name: "o_totalprice", Kind: types.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nOrders; i++ {
		cat.Insert(nil, orders, types.Row{
			types.Int(int64(i)), types.Int(g.Uniform(int64(nCust))),
			types.Date(8000 + g.Uniform(2400)), // ~1992..1998 in days
			types.Float(1000 + float64(g.Uniform(400000))/10),
		})
	}

	lineitem, err := cat.CreateTable("lineitem", types.Schema{
		{Name: "l_orderkey", Kind: types.KindInt},
		{Name: "l_partkey", Kind: types.KindInt},
		{Name: "l_suppkey", Kind: types.KindInt},
		{Name: "l_quantity", Kind: types.KindInt},
		{Name: "l_extendedprice", Kind: types.KindFloat},
		{Name: "l_discount", Kind: types.KindFloat},
		{Name: "l_shipdate", Kind: types.KindDate},
		{Name: "l_returnflag", Kind: types.KindString},
	})
	if err != nil {
		return nil, err
	}
	flags := []string{"A", "N", "R"}
	for i := 0; i < nLine; i++ {
		cat.Insert(nil, lineitem, types.Row{
			types.Int(g.Uniform(int64(nOrders))), types.Int(g.Uniform(int64(nPart))),
			types.Int(g.Uniform(int64(nSupp))), types.Int(1 + g.Uniform(50)),
			types.Float(float64(g.Uniform(100000)) / 10),
			types.Float(float64(g.Uniform(11)) / 100),
			types.Date(8000 + g.Uniform(2500)),
			types.Str(flags[g.Uniform(3)]),
		})
	}

	for _, name := range TPCHTables {
		t, _ := cat.Table(name)
		cat.AnalyzeTable(t, 24)
	}
	return cat, nil
}

// TPCHQueries returns the lite query suite: recognizable reductions of
// TPC-H Q1, Q3, Q5, Q6 and Q10 to the engine's SQL subset.
func TPCHQueries() map[string]string {
	return map[string]string{
		"Q1": `SELECT l_returnflag, COUNT(*), SUM(l_quantity), SUM(l_extendedprice), AVG(l_discount)
			FROM lineitem WHERE l_shipdate <= DATE(10400)
			GROUP BY l_returnflag ORDER BY l_returnflag`,
		"Q3": `SELECT orders.o_orderkey, SUM(lineitem.l_extendedprice) AS revenue
			FROM customer, orders, lineitem
			WHERE customer.c_mktsegment = 'BUILDING'
			AND customer.c_custkey = orders.o_custkey
			AND lineitem.l_orderkey = orders.o_orderkey
			AND orders.o_orderdate < DATE(9200)
			GROUP BY orders.o_orderkey ORDER BY revenue DESC LIMIT 10`,
		"Q5": `SELECT nation.n_name, SUM(lineitem.l_extendedprice) AS revenue
			FROM customer, orders, lineitem, supplier, nation, region
			WHERE customer.c_custkey = orders.o_custkey
			AND lineitem.l_orderkey = orders.o_orderkey
			AND lineitem.l_suppkey = supplier.s_suppkey
			AND customer.c_nationkey = nation.n_nationkey
			AND nation.n_regionkey = region.r_regionkey
			AND orders.o_orderdate >= DATE(8400) AND orders.o_orderdate < DATE(9000)
			GROUP BY nation.n_name ORDER BY revenue DESC`,
		"Q6": `SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
			WHERE l_shipdate >= DATE(8400) AND l_shipdate < DATE(8800)
			AND l_discount BETWEEN 0.02 AND 0.06 AND l_quantity < 24`,
		"Q10": `SELECT customer.c_custkey, SUM(lineitem.l_extendedprice) AS revenue
			FROM customer, orders, lineitem, nation
			WHERE customer.c_custkey = orders.o_custkey
			AND lineitem.l_orderkey = orders.o_orderkey
			AND orders.o_orderdate >= DATE(8800) AND orders.o_orderdate < DATE(9100)
			AND lineitem.l_returnflag = 'R'
			AND customer.c_nationkey = nation.n_nationkey
			GROUP BY customer.c_custkey ORDER BY revenue DESC LIMIT 20`,
	}
}

// PerturbTPCHQuery produces a same-pattern variant of a suite query with
// shifted literals — the advisor-robustness workload transformation
// ("queries are modified but retain their patterns").
func PerturbTPCHQuery(name string, round int) string {
	base := TPCHQueries()
	switch name {
	case "Q1":
		return fmt.Sprintf(`SELECT l_returnflag, COUNT(*), SUM(l_quantity), SUM(l_extendedprice), AVG(l_discount)
			FROM lineitem WHERE l_shipdate <= DATE(%d)
			GROUP BY l_returnflag ORDER BY l_returnflag`, 9000+200*round)
	case "Q6":
		lo := 8200 + 150*round
		return fmt.Sprintf(`SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
			WHERE l_shipdate >= DATE(%d) AND l_shipdate < DATE(%d)
			AND l_discount BETWEEN 0.0%d AND 0.0%d AND l_quantity < %d`,
			lo, lo+400, 1+round%3, 5+round%3, 20+2*round)
	case "Q3":
		segs := []string{"BUILDING", "AUTOMOBILE", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
		return fmt.Sprintf(`SELECT orders.o_orderkey, SUM(lineitem.l_extendedprice) AS revenue
			FROM customer, orders, lineitem
			WHERE customer.c_mktsegment = '%s'
			AND customer.c_custkey = orders.o_custkey
			AND lineitem.l_orderkey = orders.o_orderkey
			AND orders.o_orderdate < DATE(%d)
			GROUP BY orders.o_orderkey ORDER BY revenue DESC LIMIT 10`,
			segs[round%len(segs)], 8900+150*round)
	}
	return base[name]
}
