package workload

import (
	"fmt"

	"rqp/internal/catalog"
	"rqp/internal/index"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// TPCCConfig sizes the TPC-C-lite order-entry database.
type TPCCConfig struct {
	Warehouses int
	Districts  int // per warehouse
	Customers  int // per district
	Items      int
	Seed       int64
}

// DefaultTPCC is a laptop-scale configuration.
func DefaultTPCC() TPCCConfig {
	return TPCCConfig{Warehouses: 2, Districts: 5, Customers: 30, Items: 200, Seed: 7}
}

// TPCC wraps the loaded database with transaction drivers. Together with
// the TPC-H-lite query suite over the same orders data it forms the
// TPC-CH-lite hybrid workload (Kemper et al.'s mixed OLTP+BI benchmark).
type TPCC struct {
	Cfg TPCCConfig
	Cat *catalog.Catalog
	g   *Gen

	warehouse *catalog.Table
	district  *catalog.Table
	customer  *catalog.Table
	stock     *catalog.Table
	orders    *catalog.Table
	orderline *catalog.Table

	nextOrder int64
}

// BuildTPCC creates and loads the schema.
func BuildTPCC(cfg TPCCConfig) (*TPCC, error) {
	t := &TPCC{Cfg: cfg, Cat: catalog.New(), g: NewGen(cfg.Seed)}
	var err error
	t.warehouse, err = t.Cat.CreateTable("warehouse", types.Schema{
		{Name: "w_id", Kind: types.KindInt},
		{Name: "w_ytd", Kind: types.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	for w := 0; w < cfg.Warehouses; w++ {
		t.Cat.Insert(nil, t.warehouse, types.Row{types.Int(int64(w)), types.Float(0)})
	}
	t.district, err = t.Cat.CreateTable("district", types.Schema{
		{Name: "d_id", Kind: types.KindInt},
		{Name: "d_w_id", Kind: types.KindInt},
		{Name: "d_next_o", Kind: types.KindInt},
	})
	if err != nil {
		return nil, err
	}
	for w := 0; w < cfg.Warehouses; w++ {
		for d := 0; d < cfg.Districts; d++ {
			t.Cat.Insert(nil, t.district, IntRow(int64(d), int64(w), 0))
		}
	}
	t.customer, err = t.Cat.CreateTable("tpcc_customer", types.Schema{
		{Name: "c_id", Kind: types.KindInt},
		{Name: "c_d_id", Kind: types.KindInt},
		{Name: "c_w_id", Kind: types.KindInt},
		{Name: "c_balance", Kind: types.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	for w := 0; w < cfg.Warehouses; w++ {
		for d := 0; d < cfg.Districts; d++ {
			for c := 0; c < cfg.Customers; c++ {
				t.Cat.Insert(nil, t.customer, types.Row{
					types.Int(int64(c)), types.Int(int64(d)), types.Int(int64(w)), types.Float(0),
				})
			}
		}
	}
	t.stock, err = t.Cat.CreateTable("stock", types.Schema{
		{Name: "s_i_id", Kind: types.KindInt},
		{Name: "s_w_id", Kind: types.KindInt},
		{Name: "s_quantity", Kind: types.KindInt},
	})
	if err != nil {
		return nil, err
	}
	for w := 0; w < cfg.Warehouses; w++ {
		for i := 0; i < cfg.Items; i++ {
			t.Cat.Insert(nil, t.stock, IntRow(int64(i), int64(w), 100))
		}
	}
	t.orders, err = t.Cat.CreateTable("tpcc_orders", types.Schema{
		{Name: "o_id", Kind: types.KindInt},
		{Name: "o_d_id", Kind: types.KindInt},
		{Name: "o_w_id", Kind: types.KindInt},
		{Name: "o_c_id", Kind: types.KindInt},
		{Name: "o_lines", Kind: types.KindInt},
	})
	if err != nil {
		return nil, err
	}
	t.orderline, err = t.Cat.CreateTable("orderline", types.Schema{
		{Name: "ol_o_id", Kind: types.KindInt},
		{Name: "ol_i_id", Kind: types.KindInt},
		{Name: "ol_qty", Kind: types.KindInt},
		{Name: "ol_amount", Kind: types.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	// Index support for the OLTP access paths.
	if _, err := t.Cat.CreateIndex(nil, "stock", "stock_pk", []string{"s_i_id", "s_w_id"}, true); err != nil {
		return nil, err
	}
	if _, err := t.Cat.CreateIndex(nil, "orderline", "ol_order", []string{"ol_o_id"}, false); err != nil {
		return nil, err
	}
	return t, nil
}

// NewOrder executes one order-entry transaction: pick a customer, insert an
// order with 5–15 lines, decrement stock. All page traffic is charged to clk.
func (t *TPCC) NewOrder(clk *storage.Clock) error {
	w := t.g.Uniform(int64(t.Cfg.Warehouses))
	d := t.g.Uniform(int64(t.Cfg.Districts))
	c := t.g.Uniform(int64(t.Cfg.Customers))
	lines := 5 + t.g.Uniform(11)
	oid := t.nextOrder
	t.nextOrder++
	t.Cat.Insert(clk, t.orders, IntRow(oid, d, w, c, lines))
	for l := int64(0); l < lines; l++ {
		item := t.g.Uniform(int64(t.Cfg.Items))
		qty := 1 + t.g.Uniform(10)
		t.Cat.Insert(clk, t.orderline, types.Row{
			types.Int(oid), types.Int(item), types.Int(qty),
			types.Float(float64(qty) * 9.99),
		})
		// Decrement stock via the index.
		if err := t.decrementStock(clk, item, w, qty); err != nil {
			return err
		}
	}
	return nil
}

func (t *TPCC) decrementStock(clk *storage.Clock, item, w, qty int64) error {
	ix := t.stock.IndexNamed("stock_pk")
	if ix == nil {
		return fmt.Errorf("workload: stock index missing")
	}
	var rid storage.RID = -1
	ix.Tree.Lookup(clk, []types.Value{types.Int(item), types.Int(w)}, func(e index.Entry) bool {
		rid = e.RID
		return false
	})
	if rid < 0 {
		return fmt.Errorf("workload: stock (%d,%d) missing", item, w)
	}
	row, ok := t.stock.Heap.Get(clk, rid)
	if !ok {
		return fmt.Errorf("workload: stock row vanished")
	}
	q := row[2].I - qty
	if q < 10 {
		q += 91
	}
	updated := row.Clone()
	updated[2] = types.Int(q)
	t.stock.Heap.Update(clk, rid, updated)
	return nil
}

// Payment executes one payment transaction: update a customer balance and
// the warehouse year-to-date total.
func (t *TPCC) Payment(clk *storage.Clock) error {
	w := t.g.Uniform(int64(t.Cfg.Warehouses))
	d := t.g.Uniform(int64(t.Cfg.Districts))
	c := t.g.Uniform(int64(t.Cfg.Customers))
	amount := float64(1+t.g.Uniform(5000)) / 100
	found := false
	var target storage.RID
	var row types.Row
	t.customer.Heap.Scan(clk, func(rid storage.RID, r types.Row) bool {
		if r[0].I == c && r[1].I == d && r[2].I == w {
			target, row, found = rid, r, true
			return false
		}
		return true
	})
	if !found {
		return fmt.Errorf("workload: customer (%d,%d,%d) missing", c, d, w)
	}
	updated := row.Clone()
	updated[3] = types.Float(updated[3].AsFloat() + amount)
	t.customer.Heap.Update(clk, target, updated)
	return nil
}

// OrdersLoaded reports how many orders NewOrder has inserted.
func (t *TPCC) OrdersLoaded() int64 { return t.nextOrder }
