package workload

import (
	"fmt"

	"rqp/internal/catalog"
	"rqp/internal/types"
)

// StarConfig controls the star schema used by the POP reproduction (E1–E3)
// and the black-hat cardinality tests (E15). The fact table carries a pair
// of perfectly correlated columns (attr and pseudo = attr*PseudoFactor):
// predicates over both reproduce Lohman's war story — independence-based
// estimation underestimates their conjunction by orders of magnitude.
type StarConfig struct {
	FactRows     int
	DimRows      int
	Dim2Rows     int
	AttrDomain   int64 // distinct values of fact.attr
	PseudoFactor int64
	Seed         int64
}

// DefaultStar is the configuration the experiments use. Dimensions are
// sized and indexed so that a badly underestimated fact input makes an
// index-nested-loop join look free at compile time and catastrophic at run
// time — the plan damage POP exists to repair.
func DefaultStar() StarConfig {
	return StarConfig{FactRows: 20000, DimRows: 6000, Dim2Rows: 2500, AttrDomain: 100, PseudoFactor: 3, Seed: 1}
}

// BuildStar creates and loads fact(fid, attr, pseudo, d1, d2, measure),
// dim1(id, cat, region) and dim2(id, zone), with statistics analyzed but —
// deliberately — no column-group statistics, so the optimizer falls into
// the correlation trap unless a correlation-aware mode is enabled.
func BuildStar(cfg StarConfig) (*catalog.Catalog, error) {
	cat := catalog.New()
	g := NewGen(cfg.Seed)

	fact, err := cat.CreateTable("fact", types.Schema{
		{Name: "fid", Kind: types.KindInt},
		{Name: "attr", Kind: types.KindInt},
		{Name: "pseudo", Kind: types.KindInt},
		{Name: "d1", Kind: types.KindInt},
		{Name: "d2", Kind: types.KindInt},
		{Name: "measure", Kind: types.KindInt},
	})
	if err != nil {
		return nil, err
	}
	zip := g.ZipfSeq(uint64(cfg.AttrDomain), 1.3)
	for i := 0; i < cfg.FactRows; i++ {
		attr := zip()
		cat.Insert(nil, fact, IntRow(
			int64(i), attr, attr*cfg.PseudoFactor,
			g.Uniform(int64(cfg.DimRows)), g.Uniform(int64(cfg.Dim2Rows)),
			g.Uniform(1000),
		))
	}

	dim1, err := cat.CreateTable("dim1", types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "cat", Kind: types.KindInt},
		{Name: "region", Kind: types.KindInt},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.DimRows; i++ {
		cat.Insert(nil, dim1, IntRow(int64(i), int64(i%20), int64(i%5)))
	}
	if _, err := cat.CreateIndex(nil, "dim1", "dim1_id", []string{"id"}, true); err != nil {
		return nil, err
	}

	dim2, err := cat.CreateTable("dim2", types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "zone", Kind: types.KindInt},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Dim2Rows; i++ {
		cat.Insert(nil, dim2, IntRow(int64(i), int64(i%4)))
	}
	if _, err := cat.CreateIndex(nil, "dim2", "dim2_id", []string{"id"}, true); err != nil {
		return nil, err
	}

	cat.AnalyzeTable(fact, 24)
	cat.AnalyzeTable(dim1, 8)
	cat.AnalyzeTable(dim2, 4)
	return cat, nil
}

// StarQuery is one generated BI query with a marker for whether it falls
// into the correlation trap.
type StarQuery struct {
	SQL       string
	Trapped   bool // contains the redundant correlated predicate pair
	AttrValue int64
}

// StarWorkload generates n star-join queries; trapFraction of them carry
// the redundant pseudo-key predicate that wrecks independence-based
// estimates (these are the "problem queries" whose tail POP fixes in
// Figures 1–3).
func StarWorkload(cfg StarConfig, n int, trapFraction float64, seed int64) []StarQuery {
	g := NewGen(seed)
	out := make([]StarQuery, 0, n)
	for i := 0; i < n; i++ {
		attr := g.Uniform(cfg.AttrDomain)
		zone := g.Uniform(4)
		region := g.Uniform(5)
		trapped := g.R.Float64() < trapFraction
		var where string
		if trapped {
			where = fmt.Sprintf("fact.attr = %d AND fact.pseudo = %d", attr, attr*cfg.PseudoFactor)
		} else {
			where = fmt.Sprintf("fact.attr = %d", attr)
		}
		sql := fmt.Sprintf(`SELECT dim1.cat, COUNT(*), SUM(fact.measure) FROM fact, dim1, dim2
			WHERE fact.d1 = dim1.id AND fact.d2 = dim2.id AND %s
			AND dim1.region = %d AND dim2.zone = %d
			GROUP BY dim1.cat`, where, region, zone)
		out = append(out, StarQuery{SQL: sql, Trapped: trapped, AttrValue: attr})
	}
	return out
}
