package workload

import (
	"strings"
	"testing"

	"rqp/internal/exec"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/storage"
	"rqp/internal/types"
)

func TestBuildStar(t *testing.T) {
	cfg := DefaultStar()
	cfg.FactRows = 2000
	cat, err := BuildStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fact, ok := cat.Table("fact")
	if !ok || fact.Heap.NumRows() != 2000 {
		t.Fatalf("fact rows = %v", fact.Heap.NumRows())
	}
	// pseudo must be perfectly correlated with attr
	fact.Heap.Scan(nil, func(_ storage.RID, r types.Row) bool {
		if r[2].I != r[1].I*cfg.PseudoFactor {
			t.Fatalf("pseudo not correlated: %v", r)
		}
		return true
	})
	dim1, _ := cat.Table("dim1")
	if dim1.Heap.NumRows() != int64(cfg.DimRows) {
		t.Errorf("dim1 rows = %v", dim1.Heap.NumRows())
	}
	if fact.Stats.RowCount != 2000 {
		t.Error("fact not analyzed")
	}
}

func TestStarWorkloadRunnable(t *testing.T) {
	cfg := DefaultStar()
	cfg.FactRows = 2000
	cat, err := BuildStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := StarWorkload(cfg, 10, 0.5, 3)
	if len(queries) != 10 {
		t.Fatalf("queries = %d", len(queries))
	}
	trapped := 0
	o := opt.New(cat)
	for _, q := range queries {
		if q.Trapped {
			trapped++
		}
		st, err := sql.Parse(q.SQL)
		if err != nil {
			t.Fatalf("parse %q: %v", q.SQL, err)
		}
		bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
		if err != nil {
			t.Fatal(err)
		}
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Run(root, exec.NewContext()); err != nil {
			t.Fatal(err)
		}
	}
	if trapped == 0 || trapped == 10 {
		t.Errorf("trap fraction not mixed: %d/10", trapped)
	}
}

func TestTrappedQueryUnderestimated(t *testing.T) {
	cfg := DefaultStar()
	cfg.FactRows = 5000
	cat, _ := BuildStar(cfg)
	o := opt.New(cat)
	st, _ := sql.Parse("SELECT COUNT(*) FROM fact WHERE fact.attr = 2 AND fact.pseudo = 6")
	bq, _ := plan.Bind(st.(*sql.SelectStmt), cat)
	root, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewContext()
	rows, err := exec.Run(root, ctx)
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(rows[0][0].I)
	var scanEst float64
	plan.Walk(root, func(n plan.Node) {
		if _, ok := n.(*plan.ScanNode); ok {
			scanEst = n.Props().EstRows
		}
	})
	if actual < 10 {
		t.Skipf("zipf draw left attr=2 rare (%v rows)", actual)
	}
	if scanEst > actual/3 {
		t.Errorf("correlation trap should underestimate: est=%v actual=%v", scanEst, actual)
	}
}

func TestBuildTPCHAndQueries(t *testing.T) {
	cat, err := BuildTPCH(TPCHConfig{Scale: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range TPCHTables {
		tb, ok := cat.Table(name)
		if !ok || tb.Heap.NumRows() == 0 {
			t.Fatalf("table %s missing or empty", name)
		}
	}
	o := opt.New(cat)
	for name, q := range TPCHQueries() {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("%s parse: %v", name, err)
		}
		bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
		if err != nil {
			t.Fatalf("%s bind: %v", name, err)
		}
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatalf("%s optimize: %v", name, err)
		}
		if _, err := exec.Run(root, exec.NewContext()); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
	}
}

func TestPerturbTPCHQueryRunnable(t *testing.T) {
	cat, _ := BuildTPCH(TPCHConfig{Scale: 0.2, Seed: 2})
	o := opt.New(cat)
	for _, name := range []string{"Q1", "Q3", "Q6"} {
		for round := 0; round < 3; round++ {
			q := PerturbTPCHQuery(name, round)
			st, err := sql.Parse(q)
			if err != nil {
				t.Fatalf("%s round %d: %v\n%s", name, round, err, q)
			}
			bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
			if err != nil {
				t.Fatal(err)
			}
			root, err := o.Optimize(bq, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := exec.Run(root, exec.NewContext()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestTPCCTransactions(t *testing.T) {
	cfg := DefaultTPCC()
	tp, err := BuildTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := storage.NewClock(storage.DefaultCostModel())
	for i := 0; i < 50; i++ {
		if err := tp.NewOrder(clk); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := tp.Payment(clk); err != nil {
			t.Fatal(err)
		}
	}
	if tp.OrdersLoaded() != 50 {
		t.Errorf("orders = %d", tp.OrdersLoaded())
	}
	ol, _ := tp.Cat.Table("orderline")
	if ol.Heap.NumRows() < 50*5 {
		t.Errorf("orderlines = %d, want >= 250", ol.Heap.NumRows())
	}
	if clk.Units() <= 0 {
		t.Error("transactions should consume cost")
	}
}

func TestEquivalencePacksRunnable(t *testing.T) {
	cat, _ := BuildTPCH(TPCHConfig{Scale: 0.2, Seed: 3})
	o := opt.New(cat)
	for _, pack := range EquivalencePacks() {
		var counts []int64
		for _, q := range pack.Queries {
			st, err := sql.Parse(q)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", pack.Name, q, err)
			}
			bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
			if err != nil {
				t.Fatalf("%s: %v", pack.Name, err)
			}
			root, err := o.Optimize(bq, nil)
			if err != nil {
				t.Fatalf("%s: %v", pack.Name, err)
			}
			rows, err := exec.Run(root, exec.NewContext())
			if err != nil {
				t.Fatalf("%s: %v", pack.Name, err)
			}
			counts = append(counts, rows[0][0].I)
		}
		for i := 1; i < len(counts); i++ {
			if counts[i] != counts[0] {
				t.Errorf("pack %s: member %d returned %d, member 0 returned %d",
					pack.Name, i, counts[i], counts[0])
			}
		}
	}
}

func TestRangeFamily(t *testing.T) {
	qs := RangeFamily("t", "x", 0, 100, 5)
	if len(qs) != 5 {
		t.Fatalf("family size = %d", len(qs))
	}
	if !strings.Contains(qs[0], "x >= 0") || !strings.Contains(qs[4], "x <= 100") {
		t.Errorf("family bounds wrong: %v", qs)
	}
}

func TestGenDeterminism(t *testing.T) {
	a, b := NewGen(5), NewGen(5)
	for i := 0; i < 100; i++ {
		if a.Uniform(1000) != b.Uniform(1000) {
			t.Fatal("generator not deterministic")
		}
	}
	g := NewGen(6)
	z := g.ZipfSeq(100, 1.5)
	low, high := 0, 0
	for i := 0; i < 1000; i++ {
		if z() < 10 {
			low++
		} else {
			high++
		}
	}
	if low <= high {
		t.Errorf("zipf should skew low: low=%d high=%d", low, high)
	}
	if g.Name("x", 42) != NewGen(0).Name("x", 42) {
		t.Error("Name should be deterministic in id")
	}
}
