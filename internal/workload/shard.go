package workload

import (
	"fmt"

	"rqp/internal/catalog"
	"rqp/internal/types"
)

// ShardJoinConfig controls the two-table join workload behind the shard
// sweep (E28): a build table bt(k, bval) joined to a probe table
// pt(k, pval) on k. Skew applies a Zipf distribution to both sides' keys
// (with different seeds, so hot keys overlap but individual rows don't
// line up trivially); 0 keeps keys uniform. Neither table is indexed, so
// the optimizer always picks the hash join the shuffle layer shards.
type ShardJoinConfig struct {
	BuildRows int
	ProbeRows int
	Keys      int64   // key domain [0, Keys)
	Skew      float64 // Zipf s parameter; 0 = uniform
	Seed      int64
}

// DefaultShardJoin is the configuration the shard sweep scales.
func DefaultShardJoin() ShardJoinConfig {
	return ShardJoinConfig{BuildRows: 4000, ProbeRows: 16000, Keys: 1000, Seed: 7}
}

// BuildShardJoin creates and loads bt(k, bval) and pt(k, pval) with
// statistics analyzed and no indexes.
func BuildShardJoin(cfg ShardJoinConfig) (*catalog.Catalog, error) {
	cat := catalog.New()
	if cfg.Keys <= 1 {
		cfg.Keys = 2
	}

	bt, err := cat.CreateTable("bt", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "bval", Kind: types.KindInt},
	})
	if err != nil {
		return nil, err
	}
	bg := NewGen(cfg.Seed)
	bkey := keySampler(bg, cfg.Keys, cfg.Skew)
	for i := 0; i < cfg.BuildRows; i++ {
		cat.Insert(nil, bt, IntRow(bkey(), bg.Uniform(1000)))
	}

	pt, err := cat.CreateTable("pt", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "pval", Kind: types.KindInt},
	})
	if err != nil {
		return nil, err
	}
	pg := NewGen(cfg.Seed + 1)
	pkey := keySampler(pg, cfg.Keys, cfg.Skew)
	for i := 0; i < cfg.ProbeRows; i++ {
		cat.Insert(nil, pt, IntRow(pkey(), pg.Uniform(1000)))
	}

	cat.AnalyzeTable(bt, 16)
	cat.AnalyzeTable(pt, 16)
	return cat, nil
}

// keySampler returns a key generator: Zipf-distributed when skew > 0,
// uniform otherwise.
func keySampler(g *Gen, keys int64, skew float64) func() int64 {
	if skew > 0 {
		return g.ZipfSeq(uint64(keys), skew)
	}
	return func() int64 { return g.Uniform(keys) }
}

// ShardJoinQuery is the sweep's probe: an aggregate over the k-join, so
// result comparison is one row yet still sensitive to every joined pair.
func ShardJoinQuery() string {
	return "SELECT COUNT(*), SUM(pt.pval) FROM pt, bt WHERE pt.k = bt.k"
}

// PartitionShardJoin hash-partitions both tables on k so the planner's
// co-located path applies.
func PartitionShardJoin(cat *catalog.Catalog, shards int) error {
	for _, name := range []string{"bt", "pt"} {
		t, ok := cat.Table(name)
		if !ok {
			return fmt.Errorf("workload: missing table %q", name)
		}
		if err := cat.PartitionTable(t, "k", shards); err != nil {
			return err
		}
	}
	return nil
}
