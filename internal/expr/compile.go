package expr

import (
	"fmt"
	"strings"

	"rqp/internal/types"
)

// EvalFn is a compiled expression: the tree-walking interpreter lowered to a
// closure so per-row evaluation is one direct call instead of an
// interface-dispatched walk. Compiled evaluation is semantically identical
// to Expr.Eval, bit for bit, including error messages — the vectorized
// executor's cost-parity invariant depends on it.
type EvalFn func(row types.Row, params []types.Value) (types.Value, error)

// Compile lowers a bound expression once (typically at operator Open):
//   - constant subtrees fold to their value at compile time;
//   - column references resolve to a captured index;
//   - comparisons specialize on the statically known operand kinds (integer,
//     string fast paths), guarded by runtime kind checks so mixed-kind rows
//     still take the generic types.Compare path.
func Compile(e Expr) EvalFn {
	if fn := foldConst(e); fn != nil {
		return fn
	}
	switch n := e.(type) {
	case *Const:
		v := n.V
		return func(types.Row, []types.Value) (types.Value, error) { return v, nil }
	case *Col:
		return compileCol(n)
	case *Param:
		return compileParam(n)
	case *Bin:
		return compileBin(n)
	case *Un:
		return compileUn(n)
	case *IsNull:
		return compileIsNull(n)
	case *In:
		return compileIn(n)
	case *Like:
		return compileLike(n)
	default:
		// Func and any future node types evaluate through the interpreter.
		return e.Eval
	}
}

// CompileAll compiles a projection list.
func CompileAll(es []Expr) []EvalFn {
	fns := make([]EvalFn, len(es))
	for i, e := range es {
		fns[i] = Compile(e)
	}
	return fns
}

// foldConst returns a constant closure when e references no columns or
// parameters and evaluates without error; otherwise nil. Constant subtrees
// that error at evaluation stay dynamic so the runtime error surfaces
// exactly as the interpreter would raise it.
func foldConst(e Expr) EvalFn {
	if _, ok := e.(*Const); ok {
		return nil // the caller's Const case is already minimal
	}
	v, ok := constValue(e)
	if !ok {
		return nil
	}
	return func(types.Row, []types.Value) (types.Value, error) { return v, nil }
}

// constValue evaluates e at compile time when it references no columns or
// parameters and does not error.
func constValue(e Expr) (types.Value, bool) {
	if c, ok := e.(*Const); ok {
		return c.V, true
	}
	constOnly := true
	e.Walk(func(n Expr) bool {
		switch n.(type) {
		case *Col, *Param:
			constOnly = false
			return false
		}
		return true
	})
	if !constOnly {
		return types.Null(), false
	}
	v, err := e.Eval(nil, nil)
	if err != nil {
		return types.Null(), false
	}
	return v, true
}

func compileCol(c *Col) EvalFn {
	idx, name := c.Index, c.Name
	return func(row types.Row, _ []types.Value) (types.Value, error) {
		if idx < 0 || idx >= len(row) {
			return types.Null(), fmt.Errorf("expr: column %s index %d out of range %d", name, idx, len(row))
		}
		return row[idx], nil
	}
}

func compileParam(p *Param) EvalFn {
	idx := p.Index
	return func(_ types.Row, params []types.Value) (types.Value, error) {
		if idx < 0 || idx >= len(params) {
			return types.Null(), fmt.Errorf("expr: parameter %d not bound (have %d)", idx, len(params))
		}
		return params[idx], nil
	}
}

func compileBin(b *Bin) EvalFn {
	l, r := Compile(b.L), Compile(b.R)
	if b.Op == OpAnd || b.Op == OpOr {
		return compileLogical(b.Op, l, r)
	}
	if b.Op.IsComparison() {
		if fn := compileColConstCmp(b); fn != nil {
			return fn
		}
		return compileCompare(b.Op, b.L.Kind(), b.R.Kind(), l, r)
	}
	op := b.Op
	return func(row types.Row, params []types.Value) (types.Value, error) {
		lv, err := l(row, params)
		if err != nil {
			return types.Null(), err
		}
		rv, err := r(row, params)
		if err != nil {
			return types.Null(), err
		}
		if lv.IsNull() || rv.IsNull() {
			return types.Null(), nil
		}
		return evalArith(op, lv, rv)
	}
}

// compileLogical mirrors Bin.evalLogical: Kleene three-valued AND/OR with
// the same short-circuit behaviour (the right operand is not evaluated when
// the left already decides the result).
func compileLogical(op Op, l, r EvalFn) EvalFn {
	and := op == OpAnd
	return func(row types.Row, params []types.Value) (types.Value, error) {
		lv, err := l(row, params)
		if err != nil {
			return types.Null(), err
		}
		if and && lv.K == types.KindBool && lv.I == 0 {
			return types.Bool(false), nil
		}
		if !and && lv.IsTrue() {
			return types.Bool(true), nil
		}
		rv, err := r(row, params)
		if err != nil {
			return types.Null(), err
		}
		lt, ln := lv.IsTrue(), lv.IsNull()
		rt, rn := rv.IsTrue(), rv.IsNull()
		if and {
			switch {
			case lt && rt:
				return types.Bool(true), nil
			case (!lt && !ln) || (!rt && !rn):
				return types.Bool(false), nil
			default:
				return types.Null(), nil
			}
		}
		switch {
		case lt || rt:
			return types.Bool(true), nil
		case ln || rn:
			return types.Null(), nil
		default:
			return types.Bool(false), nil
		}
	}
}

// compileColConstCmp specializes the hottest filter shape — an integer
// column compared against an integer constant — to a single closure with no
// sub-closure calls: bounds check, NULL check, payload compare. A runtime
// kind guard falls back to the generic types.Compare for rows whose value
// kind differs from the column's static type, so results stay identical to
// the interpreter. Returns nil when the shape does not match.
func compileColConstCmp(b *Bin) EvalFn {
	col, ok := b.L.(*Col)
	cexpr := b.R
	swapped := false
	if !ok {
		col, ok = b.R.(*Col)
		cexpr = b.L
		swapped = true
	}
	if !ok {
		return nil
	}
	cv, ok := constValue(cexpr)
	if !ok || cv.IsNull() || !intKind(cv.K) || !intKind(col.Typ) {
		return nil
	}
	truth := cmpTruthFn(b.Op)
	idx, name, ci := col.Index, col.Name, cv.I
	return func(row types.Row, _ []types.Value) (types.Value, error) {
		if idx < 0 || idx >= len(row) {
			return types.Null(), fmt.Errorf("expr: column %s index %d out of range %d", name, idx, len(row))
		}
		v := row[idx]
		if v.IsNull() {
			return types.Null(), nil
		}
		var c int
		if intKind(v.K) {
			li, ri := v.I, ci
			if swapped {
				li, ri = ci, v.I
			}
			switch {
			case li < ri:
				c = -1
			case li > ri:
				c = 1
			}
		} else if swapped {
			c = types.Compare(cv, v)
		} else {
			c = types.Compare(v, cv)
		}
		return types.Bool(truth(c)), nil
	}
}

// cmpTruthFn returns the comparison's truth function over types.Compare's
// three-way result.
func cmpTruthFn(op Op) func(int) bool {
	switch op {
	case OpEQ:
		return func(c int) bool { return c == 0 }
	case OpNE:
		return func(c int) bool { return c != 0 }
	case OpLT:
		return func(c int) bool { return c < 0 }
	case OpLE:
		return func(c int) bool { return c <= 0 }
	case OpGT:
		return func(c int) bool { return c > 0 }
	default: // OpGE
		return func(c int) bool { return c >= 0 }
	}
}

func intKind(k types.Kind) bool { return k == types.KindInt || k == types.KindDate }

// compileCompare specializes a comparison on the operands' static kinds.
// Every fast path re-checks the runtime kinds and falls back to the generic
// types.Compare when they differ from the static prediction, so results are
// identical to the interpreter for any input.
func compileCompare(op Op, lk, rk types.Kind, l, r EvalFn) EvalFn {
	truth := cmpTruthFn(op)
	generic := func(lv, rv types.Value) (types.Value, error) {
		return types.Bool(truth(types.Compare(lv, rv))), nil
	}
	switch {
	case intKind(lk) && intKind(rk):
		// Both statically integer-valued: compare the I payloads directly
		// (exactly types.Compare's non-float numeric branch).
		return func(row types.Row, params []types.Value) (types.Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row, params)
			if err != nil {
				return types.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			if intKind(lv.K) && intKind(rv.K) {
				switch {
				case lv.I < rv.I:
					return types.Bool(truth(-1)), nil
				case lv.I > rv.I:
					return types.Bool(truth(1)), nil
				default:
					return types.Bool(truth(0)), nil
				}
			}
			return generic(lv, rv)
		}
	case lk == types.KindString && rk == types.KindString:
		return func(row types.Row, params []types.Value) (types.Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row, params)
			if err != nil {
				return types.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			if lv.K == types.KindString && rv.K == types.KindString {
				return types.Bool(truth(strings.Compare(lv.S, rv.S))), nil
			}
			return generic(lv, rv)
		}
	default:
		return func(row types.Row, params []types.Value) (types.Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row, params)
			if err != nil {
				return types.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			return generic(lv, rv)
		}
	}
}

func compileUn(u *Un) EvalFn {
	inner := Compile(u.E)
	op := u.Op
	return func(row types.Row, params []types.Value) (types.Value, error) {
		v, err := inner(row, params)
		if err != nil {
			return types.Null(), err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		switch op {
		case OpNot:
			return types.Bool(!v.IsTrue()), nil
		case OpNeg:
			if v.K == types.KindFloat {
				return types.Float(-v.F), nil
			}
			return types.Int(-v.AsInt()), nil
		}
		return types.Null(), fmt.Errorf("expr: unsupported unary op %v", op)
	}
}

func compileIsNull(n *IsNull) EvalFn {
	inner := Compile(n.E)
	neg := n.Neg
	return func(row types.Row, params []types.Value) (types.Value, error) {
		v, err := inner(row, params)
		if err != nil {
			return types.Null(), err
		}
		return types.Bool(v.IsNull() != neg), nil
	}
}

func compileIn(in *In) EvalFn {
	inner := Compile(in.E)
	items := CompileAll(in.List)
	neg := in.Neg
	return func(row types.Row, params []types.Value) (types.Value, error) {
		v, err := inner(row, params)
		if err != nil {
			return types.Null(), err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		sawNull := false
		for _, item := range items {
			iv, err := item(row, params)
			if err != nil {
				return types.Null(), err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if types.Equal(v, iv) {
				return types.Bool(!neg), nil
			}
		}
		if sawNull {
			return types.Null(), nil
		}
		return types.Bool(neg), nil
	}
}

func compileLike(l *Like) EvalFn {
	inner := Compile(l.E)
	pat, neg := l.Pattern, l.Neg
	return func(row types.Row, params []types.Value) (types.Value, error) {
		v, err := inner(row, params)
		if err != nil {
			return types.Null(), err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		return types.Bool(likeMatch(v.S, pat) != neg), nil
	}
}

// Pred is a compiled predicate: like EvalPredicate, NULL counts as false.
type Pred struct {
	fn EvalFn
}

// CompilePredicate compiles e for use as a filter.
func CompilePredicate(e Expr) *Pred { return &Pred{fn: Compile(e)} }

// Eval evaluates the predicate on one row.
func (p *Pred) Eval(row types.Row, params []types.Value) (bool, error) {
	v, err := p.fn(row, params)
	if err != nil {
		return false, err
	}
	return v.IsTrue(), nil
}

// EvalBatch filters a selection vector in place: sel is overwritten with the
// indices (in order) whose rows satisfy the predicate, and the retained
// prefix is returned. Rows outside sel are not evaluated.
func (p *Pred) EvalBatch(rows []types.Row, sel []int, params []types.Value) ([]int, error) {
	out := sel[:0]
	for _, i := range sel {
		v, err := p.fn(rows[i], params)
		if err != nil {
			return nil, err
		}
		if v.IsTrue() {
			out = append(out, i)
		}
	}
	return out, nil
}
