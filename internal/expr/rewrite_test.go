package expr

import (
	"math/rand"
	"testing"

	"rqp/internal/types"
)

// randomPredicate builds a random boolean expression over two int columns.
func randomPredicate(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		ops := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
		return &Bin{
			Op: ops[rng.Intn(len(ops))],
			L:  &Col{Index: rng.Intn(2), Name: "c", Typ: types.KindInt},
			R:  &Const{V: types.Int(rng.Int63n(20) - 10)},
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &Bin{Op: OpAnd, L: randomPredicate(rng, depth-1), R: randomPredicate(rng, depth-1)}
	case 1:
		return &Bin{Op: OpOr, L: randomPredicate(rng, depth-1), R: randomPredicate(rng, depth-1)}
	default:
		return &Un{Op: OpNot, E: randomPredicate(rng, depth-1)}
	}
}

// TestNormalizePreservesSemantics is the core equivalence property: for
// random predicates and random rows, Normalize must not change the result.
func TestNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		p := randomPredicate(rng, 4)
		n := Normalize(p)
		for j := 0; j < 20; j++ {
			row := types.Row{types.Int(rng.Int63n(24) - 12), types.Int(rng.Int63n(24) - 12)}
			want, err1 := p.Eval(row, nil)
			got, err2 := n.Eval(row, nil)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval error: %v %v", err1, err2)
			}
			if want.IsTrue() != got.IsTrue() || want.IsNull() != got.IsNull() {
				t.Fatalf("Normalize changed semantics:\n  orig %s = %v\n  norm %s = %v\n  row %v",
					p, want, n, got, row)
			}
		}
	}
}

func TestDoubleNegationEliminated(t *testing.T) {
	base := &Bin{Op: OpEQ, L: &Col{Index: 0, Typ: types.KindInt}, R: &Const{V: types.Int(3)}}
	nn := &Un{Op: OpNot, E: &Un{Op: OpNot, E: base}}
	n := Normalize(nn)
	if n.String() != base.String() {
		t.Errorf("NOT NOT p should normalize to p: got %s", n)
	}
}

// TestEquivalentSpellingsCanonicalize covers the Dagstuhl "equivalent
// queries" requirement: NOT (x <> c) must canonicalize identically to x = c,
// and literal-first comparisons identical to column-first.
func TestEquivalentSpellingsCanonicalize(t *testing.T) {
	c0 := func() *Col { return &Col{Index: 0, Name: "x", Typ: types.KindInt} }
	v := &Const{V: types.Int(13)}
	a := &Un{Op: OpNot, E: &Bin{Op: OpNE, L: c0(), R: v}} // NOT (x <> 13)
	b := &Bin{Op: OpEQ, L: c0(), R: v}                    // x = 13
	c := &Bin{Op: OpEQ, L: v, R: c0()}                    // 13 = x
	fa, fb, fc := EquivalentForm(a), EquivalentForm(b), EquivalentForm(c)
	if fa != fb || fb != fc {
		t.Errorf("equivalent spellings differ: %q %q %q", fa, fb, fc)
	}
	// De Morgan: NOT (p AND q) == NOT p OR NOT q
	p := &Bin{Op: OpLT, L: c0(), R: v}
	q := &Bin{Op: OpGT, L: c0(), R: &Const{V: types.Int(2)}}
	lhs := EquivalentForm(&Un{Op: OpNot, E: &Bin{Op: OpAnd, L: p, R: q}})
	rhs := EquivalentForm(&Bin{Op: OpOr,
		L: &Un{Op: OpNot, E: &Bin{Op: OpLT, L: c0(), R: v}},
		R: &Un{Op: OpNot, E: &Bin{Op: OpGT, L: c0(), R: &Const{V: types.Int(2)}}}})
	if lhs != rhs {
		t.Errorf("De Morgan forms differ: %q vs %q", lhs, rhs)
	}
}

func TestConstantFolding(t *testing.T) {
	e := &Bin{Op: OpAdd, L: &Const{V: types.Int(2)}, R: &Const{V: types.Int(3)}}
	n := Normalize(e)
	if c, ok := n.(*Const); !ok || c.V.I != 5 {
		t.Errorf("2+3 should fold to 5, got %s", n)
	}
	// TRUE AND p simplifies to p
	p := &Bin{Op: OpEQ, L: &Col{Index: 0, Typ: types.KindInt}, R: &Const{V: types.Int(1)}}
	s := Normalize(&Bin{Op: OpAnd, L: &Const{V: types.Bool(true)}, R: p})
	if s.String() != p.String() {
		t.Errorf("TRUE AND p should simplify to p, got %s", s)
	}
	// FALSE OR p simplifies to p
	s2 := Normalize(&Bin{Op: OpOr, L: &Const{V: types.Bool(false)}, R: p})
	if s2.String() != p.String() {
		t.Errorf("FALSE OR p should simplify to p, got %s", s2)
	}
	// p AND FALSE simplifies to FALSE
	s3 := Normalize(&Bin{Op: OpAnd, L: p, R: &Const{V: types.Bool(false)}})
	if c, ok := s3.(*Const); !ok || c.V.IsTrue() {
		t.Errorf("p AND FALSE should fold to FALSE, got %s", s3)
	}
}

func TestNormalizeNotThroughInIsNullLike(t *testing.T) {
	c0 := &Col{Index: 0, Name: "x", Typ: types.KindInt}
	in := &In{E: c0, List: []Expr{&Const{V: types.Int(1)}}}
	n := Normalize(&Un{Op: OpNot, E: in})
	if got, ok := n.(*In); !ok || !got.Neg {
		t.Errorf("NOT IN should push into In.Neg, got %s", n)
	}
	isn := &IsNull{E: c0}
	n2 := Normalize(&Un{Op: OpNot, E: isn})
	if got, ok := n2.(*IsNull); !ok || !got.Neg {
		t.Errorf("NOT IS NULL should push into IsNull.Neg, got %s", n2)
	}
	lk := &Like{E: &Col{Index: 0, Typ: types.KindString}, Pattern: "a%"}
	n3 := Normalize(&Un{Op: OpNot, E: lk})
	if got, ok := n3.(*Like); !ok || !got.Neg {
		t.Errorf("NOT LIKE should push into Like.Neg, got %s", n3)
	}
}
