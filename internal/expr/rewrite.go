package expr

import "rqp/internal/types"

// Normalize puts a predicate into a canonical form so that semantically
// equivalent spellings optimize identically (the Dagstuhl "equivalent
// queries" robustness requirement — e.g. NOT (x <> c) must behave exactly
// like x = c):
//
//   - NOT is pushed down through comparisons and De Morgan'ed through
//     AND/OR; double negation is eliminated;
//   - comparisons are oriented column-op-literal;
//   - constant subexpressions are folded;
//   - trivially true/false factors are simplified.
func Normalize(e Expr) Expr {
	if e == nil {
		return nil
	}
	e = pushNot(e, false)
	e = Transform(e, orientAndFold)
	return simplify(e)
}

// pushNot rewrites the tree with an incoming negation flag.
func pushNot(e Expr, neg bool) Expr {
	switch n := e.(type) {
	case *Un:
		if n.Op == OpNot {
			return pushNot(n.E, !neg)
		}
	case *Bin:
		switch n.Op {
		case OpAnd:
			op := OpAnd
			if neg {
				op = OpOr
			}
			return &Bin{Op: op, L: pushNot(n.L, neg), R: pushNot(n.R, neg)}
		case OpOr:
			op := OpOr
			if neg {
				op = OpAnd
			}
			return &Bin{Op: op, L: pushNot(n.L, neg), R: pushNot(n.R, neg)}
		default:
			if neg && n.Op.IsComparison() {
				return &Bin{Op: n.Op.Negate(), L: pushNot(n.L, false), R: pushNot(n.R, false)}
			}
		}
	case *In:
		if neg {
			return &In{E: pushNot(n.E, false), List: n.List, Neg: !n.Neg}
		}
	case *IsNull:
		if neg {
			return &IsNull{E: pushNot(n.E, false), Neg: !n.Neg}
		}
	case *Like:
		if neg {
			return &Like{E: pushNot(n.E, false), Pattern: n.Pattern, Neg: !n.Neg}
		}
	}
	if neg {
		return &Un{Op: OpNot, E: e}
	}
	return e
}

// orientAndFold flips literal-op-column comparisons and folds
// constant-only subtrees.
func orientAndFold(e Expr) Expr {
	b, ok := e.(*Bin)
	if !ok {
		return foldIfConst(e)
	}
	if b.Op.IsComparison() {
		if _, lIsConst := b.L.(*Const); lIsConst {
			if _, rIsCol := b.R.(*Col); rIsCol {
				b = &Bin{Op: b.Op.Flip(), L: b.R, R: b.L}
			}
		}
	}
	return foldIfConst(b)
}

func foldIfConst(e Expr) Expr {
	switch e.(type) {
	case *Const, *Col, *Param:
		return e
	}
	constOnly := true
	e.Walk(func(n Expr) bool {
		switch n.(type) {
		case *Col, *Param:
			constOnly = false
			return false
		}
		return true
	})
	if !constOnly {
		return e
	}
	v, err := e.Eval(nil, nil)
	if err != nil {
		return e
	}
	return &Const{V: v}
}

// simplify prunes TRUE/FALSE factors from AND/OR trees.
func simplify(e Expr) Expr {
	b, ok := e.(*Bin)
	if !ok {
		return e
	}
	if b.Op != OpAnd && b.Op != OpOr {
		return e
	}
	l := simplify(b.L)
	r := simplify(b.R)
	lc, lIsConst := l.(*Const)
	rc, rIsConst := r.(*Const)
	if b.Op == OpAnd {
		switch {
		case lIsConst && lc.V.IsTrue():
			return r
		case rIsConst && rc.V.IsTrue():
			return l
		case lIsConst && lc.V.K == types.KindBool && lc.V.I == 0:
			return l
		case rIsConst && rc.V.K == types.KindBool && rc.V.I == 0:
			return r
		}
	} else {
		switch {
		case lIsConst && lc.V.IsTrue():
			return l
		case rIsConst && rc.V.IsTrue():
			return r
		case lIsConst && lc.V.K == types.KindBool && lc.V.I == 0:
			return r
		case rIsConst && rc.V.K == types.KindBool && rc.V.I == 0:
			return l
		}
	}
	return &Bin{Op: b.Op, L: l, R: r}
}

// EquivalentForm returns a canonical string for the normalized predicate;
// two predicates with the same EquivalentForm are treated as the same by
// the optimizer's memoization and by the equivalence robustness benchmark.
func EquivalentForm(e Expr) string {
	if e == nil {
		return ""
	}
	return Normalize(e).String()
}
