// Package expr implements typed expression trees over rows: evaluation with
// SQL three-valued logic, predicate analysis (conjunct extraction, column
// intervals) and algebraic normalization. Expressions are bound: column
// references carry the resolved position in the input schema.
package expr

import (
	"fmt"
	"strings"

	"rqp/internal/types"
)

// Op enumerates operators for binary and unary expression nodes.
type Op uint8

// Binary and unary operators.
const (
	OpInvalid Op = iota
	// comparisons
	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	// arithmetic
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	// logical
	OpAnd
	OpOr
	OpNot
	// unary arithmetic
	OpNeg
)

var opNames = map[Op]string{
	OpEQ: "=", OpNE: "<>", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "AND", OpOr: "OR", OpNot: "NOT", OpNeg: "-",
}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator is one of =, <>, <, <=, >, >=.
func (o Op) IsComparison() bool { return o >= OpEQ && o <= OpGE }

// Negate returns the comparison with negated truth value (= becomes <>, < becomes >= ...).
func (o Op) Negate() Op {
	switch o {
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	case OpLT:
		return OpGE
	case OpLE:
		return OpGT
	case OpGT:
		return OpLE
	case OpGE:
		return OpLT
	}
	return OpInvalid
}

// Flip returns the comparison with swapped operands (< becomes >, etc).
func (o Op) Flip() Op {
	switch o {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	}
	return o // EQ, NE symmetric
}

// Expr is a bound expression node.
type Expr interface {
	// Eval evaluates against a row; params carries positional query
	// parameters ('?' placeholders).
	Eval(row types.Row, params []types.Value) (types.Value, error)
	// Kind reports the static result kind (best effort; KindNull = unknown).
	Kind() types.Kind
	// String renders SQL-ish text for EXPLAIN.
	String() string
	// Walk visits this node and all children; the visit function returns
	// false to prune.
	Walk(fn func(Expr) bool)
}

// Col is a bound column reference.
type Col struct {
	Index int    // position in the input row
	Name  string // qualified display name
	Typ   types.Kind
}

// Eval implements Expr.
func (c *Col) Eval(row types.Row, _ []types.Value) (types.Value, error) {
	if c.Index < 0 || c.Index >= len(row) {
		return types.Null(), fmt.Errorf("expr: column %s index %d out of range %d", c.Name, c.Index, len(row))
	}
	return row[c.Index], nil
}

// Kind implements Expr.
func (c *Col) Kind() types.Kind { return c.Typ }

// String implements Expr.
func (c *Col) String() string { return c.Name }

// Walk implements Expr.
func (c *Col) Walk(fn func(Expr) bool) { fn(c) }

// Const is a literal value.
type Const struct{ V types.Value }

// Eval implements Expr.
func (c *Const) Eval(types.Row, []types.Value) (types.Value, error) { return c.V, nil }

// Kind implements Expr.
func (c *Const) Kind() types.Kind { return c.V.K }

// String implements Expr.
func (c *Const) String() string { return c.V.String() }

// Walk implements Expr.
func (c *Const) Walk(fn func(Expr) bool) { fn(c) }

// Param is a positional query parameter ('?').
type Param struct{ Index int }

// Eval implements Expr.
func (p *Param) Eval(_ types.Row, params []types.Value) (types.Value, error) {
	if p.Index < 0 || p.Index >= len(params) {
		return types.Null(), fmt.Errorf("expr: parameter %d not bound (have %d)", p.Index, len(params))
	}
	return params[p.Index], nil
}

// Kind implements Expr.
func (p *Param) Kind() types.Kind { return types.KindNull }

// String implements Expr.
func (p *Param) String() string { return fmt.Sprintf("?%d", p.Index) }

// Walk implements Expr.
func (p *Param) Walk(fn func(Expr) bool) { fn(p) }

// Bin is a binary operation.
type Bin struct {
	Op   Op
	L, R Expr
}

// Eval implements Expr with SQL three-valued logic for AND/OR and NULL
// propagation for comparisons and arithmetic.
func (b *Bin) Eval(row types.Row, params []types.Value) (types.Value, error) {
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogical(row, params)
	}
	l, err := b.L.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	r, err := b.R.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	if b.Op.IsComparison() {
		cmp := types.Compare(l, r)
		switch b.Op {
		case OpEQ:
			return types.Bool(cmp == 0), nil
		case OpNE:
			return types.Bool(cmp != 0), nil
		case OpLT:
			return types.Bool(cmp < 0), nil
		case OpLE:
			return types.Bool(cmp <= 0), nil
		case OpGT:
			return types.Bool(cmp > 0), nil
		case OpGE:
			return types.Bool(cmp >= 0), nil
		}
	}
	return evalArith(b.Op, l, r)
}

func (b *Bin) evalLogical(row types.Row, params []types.Value) (types.Value, error) {
	l, err := b.L.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	// Short circuit per Kleene logic.
	if b.Op == OpAnd && l.K == types.KindBool && l.I == 0 {
		return types.Bool(false), nil
	}
	if b.Op == OpOr && l.IsTrue() {
		return types.Bool(true), nil
	}
	r, err := b.R.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	lt, ln := l.IsTrue(), l.IsNull()
	rt, rn := r.IsTrue(), r.IsNull()
	if b.Op == OpAnd {
		switch {
		case lt && rt:
			return types.Bool(true), nil
		case (!lt && !ln) || (!rt && !rn):
			return types.Bool(false), nil
		default:
			return types.Null(), nil
		}
	}
	switch {
	case lt || rt:
		return types.Bool(true), nil
	case ln || rn:
		return types.Null(), nil
	default:
		return types.Bool(false), nil
	}
}

func evalArith(op Op, l, r types.Value) (types.Value, error) {
	if !l.Numeric() || !r.Numeric() {
		return types.Null(), fmt.Errorf("expr: %s applied to non-numeric operands %s, %s", op, l, r)
	}
	if l.K == types.KindFloat || r.K == types.KindFloat || (op == OpDiv) {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case OpAdd:
			return types.Float(lf + rf), nil
		case OpSub:
			return types.Float(lf - rf), nil
		case OpMul:
			return types.Float(lf * rf), nil
		case OpDiv:
			if rf == 0 {
				return types.Null(), nil
			}
			return types.Float(lf / rf), nil
		case OpMod:
			// Modulo truncates to integers; a divisor in (-1, 1) truncates
			// to zero and must yield NULL like any zero divisor.
			if int64(rf) == 0 {
				return types.Null(), nil
			}
			return types.Float(float64(int64(lf) % int64(rf))), nil
		}
	}
	li, ri := l.AsInt(), r.AsInt()
	switch op {
	case OpAdd:
		return types.Int(li + ri), nil
	case OpSub:
		return types.Int(li - ri), nil
	case OpMul:
		return types.Int(li * ri), nil
	case OpMod:
		if ri == 0 {
			return types.Null(), nil
		}
		return types.Int(li % ri), nil
	}
	return types.Null(), fmt.Errorf("expr: unsupported arithmetic op %v", op)
}

// Kind implements Expr.
func (b *Bin) Kind() types.Kind {
	if b.Op.IsComparison() || b.Op == OpAnd || b.Op == OpOr {
		return types.KindBool
	}
	if b.L.Kind() == types.KindFloat || b.R.Kind() == types.KindFloat || b.Op == OpDiv {
		return types.KindFloat
	}
	return types.KindInt
}

// String implements Expr.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Walk implements Expr.
func (b *Bin) Walk(fn func(Expr) bool) {
	if fn(b) {
		b.L.Walk(fn)
		b.R.Walk(fn)
	}
}

// Un is a unary operation (NOT, unary minus).
type Un struct {
	Op Op
	E  Expr
}

// Eval implements Expr.
func (u *Un) Eval(row types.Row, params []types.Value) (types.Value, error) {
	v, err := u.E.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	if v.IsNull() {
		return types.Null(), nil
	}
	switch u.Op {
	case OpNot:
		return types.Bool(!v.IsTrue()), nil
	case OpNeg:
		if v.K == types.KindFloat {
			return types.Float(-v.F), nil
		}
		return types.Int(-v.AsInt()), nil
	}
	return types.Null(), fmt.Errorf("expr: unsupported unary op %v", u.Op)
}

// Kind implements Expr.
func (u *Un) Kind() types.Kind {
	if u.Op == OpNot {
		return types.KindBool
	}
	return u.E.Kind()
}

// String implements Expr.
func (u *Un) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.E) }

// Walk implements Expr.
func (u *Un) Walk(fn func(Expr) bool) {
	if fn(u) {
		u.E.Walk(fn)
	}
}

// In tests membership of E in a literal list.
type In struct {
	E    Expr
	List []Expr
	Neg  bool
}

// Eval implements Expr.
func (in *In) Eval(row types.Row, params []types.Value) (types.Value, error) {
	v, err := in.E.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	if v.IsNull() {
		return types.Null(), nil
	}
	sawNull := false
	for _, item := range in.List {
		iv, err := item.Eval(row, params)
		if err != nil {
			return types.Null(), err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if types.Equal(v, iv) {
			return types.Bool(!in.Neg), nil
		}
	}
	if sawNull {
		return types.Null(), nil
	}
	return types.Bool(in.Neg), nil
}

// Kind implements Expr.
func (in *In) Kind() types.Kind { return types.KindBool }

// String implements Expr.
func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Neg {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s IN (%s))", in.E, not, strings.Join(parts, ", "))
}

// Walk implements Expr.
func (in *In) Walk(fn func(Expr) bool) {
	if fn(in) {
		in.E.Walk(fn)
		for _, e := range in.List {
			e.Walk(fn)
		}
	}
}

// IsNull tests E IS [NOT] NULL.
type IsNull struct {
	E   Expr
	Neg bool
}

// Eval implements Expr.
func (n *IsNull) Eval(row types.Row, params []types.Value) (types.Value, error) {
	v, err := n.E.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	return types.Bool(v.IsNull() != n.Neg), nil
}

// Kind implements Expr.
func (n *IsNull) Kind() types.Kind { return types.KindBool }

// String implements Expr.
func (n *IsNull) String() string {
	if n.Neg {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}

// Walk implements Expr.
func (n *IsNull) Walk(fn func(Expr) bool) {
	if fn(n) {
		n.E.Walk(fn)
	}
}

// Like implements simple SQL LIKE with % and _ wildcards.
type Like struct {
	E       Expr
	Pattern string
	Neg     bool
}

// Eval implements Expr.
func (l *Like) Eval(row types.Row, params []types.Value) (types.Value, error) {
	v, err := l.E.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	if v.IsNull() {
		return types.Null(), nil
	}
	m := likeMatch(v.S, l.Pattern)
	return types.Bool(m != l.Neg), nil
}

func likeMatch(s, pat string) bool {
	// Iterative two-pointer matcher with backtracking on %.
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// Kind implements Expr.
func (l *Like) Kind() types.Kind { return types.KindBool }

// String implements Expr.
func (l *Like) String() string {
	not := ""
	if l.Neg {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s LIKE '%s')", l.E, not, l.Pattern)
}

// Walk implements Expr.
func (l *Like) Walk(fn func(Expr) bool) {
	if fn(l) {
		l.E.Walk(fn)
	}
}

// Func is a scalar builtin function call.
type Func struct {
	Name string // upper-cased
	Args []Expr
}

// Eval implements Expr.
func (f *Func) Eval(row types.Row, params []types.Value) (types.Value, error) {
	args := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(row, params)
		if err != nil {
			return types.Null(), err
		}
		args[i] = v
	}
	return callBuiltin(f.Name, args)
}

func callBuiltin(name string, args []types.Value) (types.Value, error) {
	switch name {
	case "ABS":
		if len(args) != 1 {
			break
		}
		v := args[0]
		if v.IsNull() {
			return v, nil
		}
		if v.K == types.KindFloat {
			if v.F < 0 {
				return types.Float(-v.F), nil
			}
			return v, nil
		}
		if v.I < 0 {
			return types.Int(-v.I), nil
		}
		return v, nil
	case "LOWER":
		if len(args) != 1 {
			break
		}
		if args[0].IsNull() {
			return args[0], nil
		}
		return types.Str(strings.ToLower(args[0].S)), nil
	case "UPPER":
		if len(args) != 1 {
			break
		}
		if args[0].IsNull() {
			return args[0], nil
		}
		return types.Str(strings.ToUpper(args[0].S)), nil
	case "LENGTH":
		if len(args) != 1 {
			break
		}
		if args[0].IsNull() {
			return args[0], nil
		}
		return types.Int(int64(len(args[0].S))), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null(), nil
	case "SUBSTR":
		if len(args) != 3 {
			break
		}
		if args[0].IsNull() {
			return args[0], nil
		}
		s := args[0].S
		start := int(args[1].AsInt()) - 1
		n := int(args[2].AsInt())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + n
		if end > len(s) {
			end = len(s)
		}
		return types.Str(s[start:end]), nil
	}
	return types.Null(), fmt.Errorf("expr: unknown or malformed function %s/%d", name, len(args))
}

// Kind implements Expr.
func (f *Func) Kind() types.Kind {
	switch f.Name {
	case "ABS":
		if len(f.Args) == 1 {
			return f.Args[0].Kind()
		}
	case "LOWER", "UPPER", "SUBSTR":
		return types.KindString
	case "LENGTH":
		return types.KindInt
	}
	return types.KindNull
}

// String implements Expr.
func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// Walk implements Expr.
func (f *Func) Walk(fn func(Expr) bool) {
	if fn(f) {
		for _, a := range f.Args {
			a.Walk(fn)
		}
	}
}

// EvalPredicate evaluates e as a filter: NULL counts as false.
func EvalPredicate(e Expr, row types.Row, params []types.Value) (bool, error) {
	v, err := e.Eval(row, params)
	if err != nil {
		return false, err
	}
	return v.IsTrue(), nil
}
