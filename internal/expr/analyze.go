package expr

import (
	"math"

	"rqp/internal/types"
)

// Conjuncts splits a predicate into its top-level AND factors.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Bin); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines predicates with AND; nil for an empty list.
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Bin{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// ColumnsUsed returns the set of column indexes referenced by e.
func ColumnsUsed(e Expr) map[int]bool {
	cols := map[int]bool{}
	if e == nil {
		return cols
	}
	e.Walk(func(n Expr) bool {
		if c, ok := n.(*Col); ok {
			cols[c.Index] = true
		}
		return true
	})
	return cols
}

// HasParams reports whether the expression contains '?' placeholders.
func HasParams(e Expr) bool {
	found := false
	e.Walk(func(n Expr) bool {
		if _, ok := n.(*Param); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// EquiJoin describes a conjunct of the form leftCol = rightCol where the two
// sides reference disjoint input relations (resolved by the caller through
// the column index split point).
type EquiJoin struct {
	LeftCol  int // index into the combined schema, left of split
	RightCol int // index into the combined schema, >= split
}

// AsEquiJoin recognizes col=col conjuncts across a schema split at `split`
// (columns [0,split) belong to the left input). Returns ok=false otherwise.
func AsEquiJoin(e Expr, split int) (EquiJoin, bool) {
	b, ok := e.(*Bin)
	if !ok || b.Op != OpEQ {
		return EquiJoin{}, false
	}
	lc, lok := b.L.(*Col)
	rc, rok := b.R.(*Col)
	if !lok || !rok {
		return EquiJoin{}, false
	}
	switch {
	case lc.Index < split && rc.Index >= split:
		return EquiJoin{LeftCol: lc.Index, RightCol: rc.Index}, true
	case rc.Index < split && lc.Index >= split:
		return EquiJoin{LeftCol: rc.Index, RightCol: lc.Index}, true
	}
	return EquiJoin{}, false
}

// Interval is a (possibly open-ended) numeric range over one column,
// extracted from simple comparison predicates for selectivity estimation and
// index range scans. Bounds are in float space; LoIncl/HiIncl track
// inclusivity. Eq holds the literal for equality predicates on any kind.
type Interval struct {
	Col            int
	Lo, Hi         float64
	LoIncl, HiIncl bool
	HasLo, HasHi   bool
	Eq             *types.Value // set for col = literal
	NE             bool         // col <> literal (Eq holds the literal)
}

// Unbounded returns the full-range interval for a column.
func Unbounded(col int) Interval {
	return Interval{Col: col, Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// ExtractInterval recognizes `col cmp literal` (either orientation) and
// returns the implied interval. Works for constant and bound-parameter
// comparisons (params must be supplied for the latter; pass nil to only
// match constants).
func ExtractInterval(e Expr, params []types.Value) (Interval, bool) {
	b, ok := e.(*Bin)
	if !ok || !b.Op.IsComparison() {
		return Interval{}, false
	}
	col, lit, op, ok := splitColLiteral(b, params)
	if !ok {
		return Interval{}, false
	}
	iv := Unbounded(col.Index)
	switch op {
	case OpEQ:
		v := lit
		iv.Eq = &v
		if lit.Numeric() {
			iv.Lo, iv.Hi = lit.AsFloat(), lit.AsFloat()
			iv.LoIncl, iv.HiIncl = true, true
			iv.HasLo, iv.HasHi = true, true
		}
	case OpNE:
		v := lit
		iv.Eq = &v
		iv.NE = true
	case OpLT:
		iv.Hi, iv.HasHi = lit.AsFloat(), true
	case OpLE:
		iv.Hi, iv.HiIncl, iv.HasHi = lit.AsFloat(), true, true
	case OpGT:
		iv.Lo, iv.HasLo = lit.AsFloat(), true
	case OpGE:
		iv.Lo, iv.LoIncl, iv.HasLo = lit.AsFloat(), true, true
	}
	if op != OpEQ && op != OpNE && !lit.Numeric() {
		return Interval{}, false
	}
	return iv, true
}

// SplitColConst recognizes a `col ⋈ literal` comparison conjunct (either
// orientation; literals may be constants or bound parameters) and returns the
// column index, the operator normalized so the column reads on the left, and
// the literal value. Columnar scans push these onto encoded blocks and zone
// maps.
func SplitColConst(e Expr, params []types.Value) (col int, op Op, v types.Value, ok bool) {
	b, bok := e.(*Bin)
	if !bok || !b.Op.IsComparison() {
		return 0, OpInvalid, types.Null(), false
	}
	c, lit, nop, sok := splitColLiteral(b, params)
	if !sok {
		return 0, OpInvalid, types.Null(), false
	}
	return c.Index, nop, lit, true
}

func splitColLiteral(b *Bin, params []types.Value) (*Col, types.Value, Op, bool) {
	resolve := func(e Expr) (types.Value, bool) {
		switch n := e.(type) {
		case *Const:
			return n.V, true
		case *Param:
			if params != nil && n.Index < len(params) {
				return params[n.Index], true
			}
		}
		return types.Null(), false
	}
	if c, ok := b.L.(*Col); ok {
		if v, ok2 := resolve(b.R); ok2 {
			return c, v, b.Op, true
		}
	}
	if c, ok := b.R.(*Col); ok {
		if v, ok2 := resolve(b.L); ok2 {
			return c, v, b.Op.Flip(), true
		}
	}
	return nil, types.Null(), OpInvalid, false
}

// Intersect merges two intervals over the same column, returning the
// conjunction. Equality constraints dominate.
func Intersect(a, b Interval) Interval {
	out := a
	if b.Eq != nil && !b.NE {
		out.Eq = b.Eq
		out.NE = false
	}
	if b.HasLo && (!out.HasLo || b.Lo > out.Lo || (b.Lo == out.Lo && !b.LoIncl)) {
		out.Lo, out.LoIncl, out.HasLo = b.Lo, b.LoIncl, true
	}
	if b.HasHi && (!out.HasHi || b.Hi < out.Hi || (b.Hi == out.Hi && !b.HiIncl)) {
		out.Hi, out.HiIncl, out.HasHi = b.Hi, b.HiIncl, true
	}
	return out
}

// Empty reports whether the interval admits no values.
func (iv Interval) Empty() bool {
	if !iv.HasLo || !iv.HasHi {
		return false
	}
	if iv.Lo > iv.Hi {
		return true
	}
	return iv.Lo == iv.Hi && !(iv.LoIncl && iv.HiIncl)
}

// RemapColumns rewrites column indexes through m (new := m[old]); indexes
// absent from m are left untouched. Used when pushing predicates through
// projections and joins.
func RemapColumns(e Expr, m map[int]int) Expr {
	return Transform(e, func(n Expr) Expr {
		if c, ok := n.(*Col); ok {
			if nw, ok2 := m[c.Index]; ok2 {
				return &Col{Index: nw, Name: c.Name, Typ: c.Typ}
			}
		}
		return n
	})
}

// ShiftColumns adds delta to every column index (used when moving a
// predicate from a join output to the right input).
func ShiftColumns(e Expr, delta int) Expr {
	return Transform(e, func(n Expr) Expr {
		if c, ok := n.(*Col); ok {
			return &Col{Index: c.Index + delta, Name: c.Name, Typ: c.Typ}
		}
		return n
	})
}

// Transform rebuilds the tree bottom-up, applying fn to every node after its
// children have been transformed.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Bin:
		return fn(&Bin{Op: n.Op, L: Transform(n.L, fn), R: Transform(n.R, fn)})
	case *Un:
		return fn(&Un{Op: n.Op, E: Transform(n.E, fn)})
	case *In:
		list := make([]Expr, len(n.List))
		for i, item := range n.List {
			list[i] = Transform(item, fn)
		}
		return fn(&In{E: Transform(n.E, fn), List: list, Neg: n.Neg})
	case *IsNull:
		return fn(&IsNull{E: Transform(n.E, fn), Neg: n.Neg})
	case *Like:
		return fn(&Like{E: Transform(n.E, fn), Pattern: n.Pattern, Neg: n.Neg})
	case *Func:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Transform(a, fn)
		}
		return fn(&Func{Name: n.Name, Args: args})
	default:
		return fn(e)
	}
}
