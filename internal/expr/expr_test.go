package expr

import (
	"testing"

	"rqp/internal/types"
)

func col(i int, k types.Kind) *Col { return &Col{Index: i, Name: "c", Typ: k} }
func lit(v types.Value) *Const     { return &Const{V: v} }
func bin(op Op, l, r Expr) *Bin    { return &Bin{Op: op, L: l, R: r} }
func evalB(t *testing.T, e Expr, row types.Row) types.Value {
	t.Helper()
	v, err := e.Eval(row, nil)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestComparisons(t *testing.T) {
	row := types.Row{types.Int(5), types.Str("abc"), types.Null()}
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{bin(OpEQ, col(0, types.KindInt), lit(types.Int(5))), types.Bool(true)},
		{bin(OpNE, col(0, types.KindInt), lit(types.Int(5))), types.Bool(false)},
		{bin(OpLT, col(0, types.KindInt), lit(types.Int(6))), types.Bool(true)},
		{bin(OpGE, col(0, types.KindInt), lit(types.Float(5.0))), types.Bool(true)},
		{bin(OpEQ, col(1, types.KindString), lit(types.Str("abc"))), types.Bool(true)},
		{bin(OpEQ, col(2, types.KindInt), lit(types.Int(1))), types.Null()},
	}
	for _, c := range cases {
		got := evalB(t, c.e, row)
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tr, fa, nu := lit(types.Bool(true)), lit(types.Bool(false)), lit(types.Null())
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{bin(OpAnd, tr, tr), types.Bool(true)},
		{bin(OpAnd, tr, fa), types.Bool(false)},
		{bin(OpAnd, fa, nu), types.Bool(false)},
		{bin(OpAnd, nu, fa), types.Bool(false)},
		{bin(OpAnd, tr, nu), types.Null()},
		{bin(OpAnd, nu, nu), types.Null()},
		{bin(OpOr, fa, fa), types.Bool(false)},
		{bin(OpOr, fa, tr), types.Bool(true)},
		{bin(OpOr, nu, tr), types.Bool(true)},
		{bin(OpOr, nu, fa), types.Null()},
		{bin(OpOr, nu, nu), types.Null()},
		{&Un{Op: OpNot, E: nu}, types.Null()},
		{&Un{Op: OpNot, E: tr}, types.Bool(false)},
	}
	for _, c := range cases {
		got := evalB(t, c.e, nil)
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{bin(OpAdd, lit(types.Int(2)), lit(types.Int(3))), types.Int(5)},
		{bin(OpSub, lit(types.Int(2)), lit(types.Int(3))), types.Int(-1)},
		{bin(OpMul, lit(types.Int(4)), lit(types.Float(0.5))), types.Float(2)},
		{bin(OpDiv, lit(types.Int(1)), lit(types.Int(2))), types.Float(0.5)},
		{bin(OpDiv, lit(types.Int(1)), lit(types.Int(0))), types.Null()},
		{bin(OpMod, lit(types.Int(7)), lit(types.Int(3))), types.Int(1)},
		{&Un{Op: OpNeg, E: lit(types.Int(9))}, types.Int(-9)},
		{&Un{Op: OpNeg, E: lit(types.Float(1.5))}, types.Float(-1.5)},
	}
	for _, c := range cases {
		got := evalB(t, c.e, nil)
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestInList(t *testing.T) {
	row := types.Row{types.Int(4)}
	in := &In{E: col(0, types.KindInt), List: []Expr{lit(types.Int(4)), lit(types.Int(7))}}
	if !evalB(t, in, row).IsTrue() {
		t.Error("4 IN (4,7) should be true")
	}
	notIn := &In{E: col(0, types.KindInt), List: []Expr{lit(types.Int(1))}, Neg: true}
	if !evalB(t, notIn, row).IsTrue() {
		t.Error("4 NOT IN (1) should be true")
	}
	withNull := &In{E: col(0, types.KindInt), List: []Expr{lit(types.Int(1)), lit(types.Null())}}
	if !evalB(t, withNull, row).IsNull() {
		t.Error("4 IN (1, NULL) should be NULL")
	}
}

func TestIsNullAndLike(t *testing.T) {
	row := types.Row{types.Null(), types.Str("hello world")}
	if !evalB(t, &IsNull{E: col(0, types.KindInt)}, row).IsTrue() {
		t.Error("IS NULL failed")
	}
	if evalB(t, &IsNull{E: col(1, types.KindString)}, row).IsTrue() {
		t.Error("IS NULL on non-null should be false")
	}
	if !evalB(t, &IsNull{E: col(1, types.KindString), Neg: true}, row).IsTrue() {
		t.Error("IS NOT NULL failed")
	}
	likes := []struct {
		pat  string
		want bool
	}{
		{"hello%", true}, {"%world", true}, {"%lo wo%", true},
		{"h_llo world", true}, {"hello", false}, {"%", true}, {"_", false},
	}
	for _, l := range likes {
		got := evalB(t, &Like{E: col(1, types.KindString), Pattern: l.pat}, row)
		if got.IsTrue() != l.want {
			t.Errorf("LIKE %q = %v, want %v", l.pat, got, l.want)
		}
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{&Func{Name: "ABS", Args: []Expr{lit(types.Int(-5))}}, types.Int(5)},
		{&Func{Name: "ABS", Args: []Expr{lit(types.Float(-2.5))}}, types.Float(2.5)},
		{&Func{Name: "LOWER", Args: []Expr{lit(types.Str("AbC"))}}, types.Str("abc")},
		{&Func{Name: "UPPER", Args: []Expr{lit(types.Str("AbC"))}}, types.Str("ABC")},
		{&Func{Name: "LENGTH", Args: []Expr{lit(types.Str("abcd"))}}, types.Int(4)},
		{&Func{Name: "COALESCE", Args: []Expr{lit(types.Null()), lit(types.Int(3))}}, types.Int(3)},
		{&Func{Name: "SUBSTR", Args: []Expr{lit(types.Str("abcdef")), lit(types.Int(2)), lit(types.Int(3))}}, types.Str("bcd")},
	}
	for _, c := range cases {
		got := evalB(t, c.e, nil)
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := (&Func{Name: "NOPE"}).Eval(nil, nil); err == nil {
		t.Error("unknown function should error")
	}
}

func TestParams(t *testing.T) {
	p := &Param{Index: 0}
	v, err := p.Eval(nil, []types.Value{types.Int(42)})
	if err != nil || v.I != 42 {
		t.Fatalf("param eval: %v %v", v, err)
	}
	if _, err := p.Eval(nil, nil); err == nil {
		t.Error("unbound param should error")
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	a := bin(OpEQ, col(0, types.KindInt), lit(types.Int(1)))
	b := bin(OpGT, col(1, types.KindInt), lit(types.Int(2)))
	c := bin(OpLT, col(2, types.KindInt), lit(types.Int(3)))
	tree := bin(OpAnd, bin(OpAnd, a, b), c)
	cj := Conjuncts(tree)
	if len(cj) != 3 {
		t.Fatalf("want 3 conjuncts, got %d", len(cj))
	}
	back := AndAll(cj)
	row := types.Row{types.Int(1), types.Int(5), types.Int(0)}
	if !evalB(t, back, row).IsTrue() {
		t.Error("AndAll(Conjuncts(p)) should be equivalent")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if len(Conjuncts(nil)) != 0 {
		t.Error("Conjuncts(nil) should be empty")
	}
}

func TestExtractInterval(t *testing.T) {
	e := bin(OpGE, col(3, types.KindInt), lit(types.Int(10)))
	iv, ok := ExtractInterval(e, nil)
	if !ok || iv.Col != 3 || !iv.HasLo || iv.Lo != 10 || !iv.LoIncl || iv.HasHi {
		t.Fatalf("interval wrong: %+v ok=%v", iv, ok)
	}
	// flipped orientation: 10 > col  means col < 10
	e2 := bin(OpGT, lit(types.Int(10)), col(3, types.KindInt))
	iv2, ok := ExtractInterval(e2, nil)
	if !ok || iv2.HasLo || !iv2.HasHi || iv2.Hi != 10 || iv2.HiIncl {
		t.Fatalf("flipped interval wrong: %+v", iv2)
	}
	// equality
	e3 := bin(OpEQ, col(1, types.KindString), lit(types.Str("x")))
	iv3, ok := ExtractInterval(e3, nil)
	if !ok || iv3.Eq == nil || iv3.Eq.S != "x" {
		t.Fatalf("eq interval wrong: %+v", iv3)
	}
	// parameter with binding
	e4 := bin(OpLE, col(0, types.KindInt), &Param{Index: 0})
	if _, ok := ExtractInterval(e4, nil); ok {
		t.Error("param interval without bindings should fail")
	}
	iv4, ok := ExtractInterval(e4, []types.Value{types.Int(7)})
	if !ok || iv4.Hi != 7 || !iv4.HiIncl {
		t.Fatalf("param interval wrong: %+v", iv4)
	}
}

func TestIntersectAndEmpty(t *testing.T) {
	a, _ := ExtractInterval(bin(OpGE, col(0, types.KindInt), lit(types.Int(5))), nil)
	b, _ := ExtractInterval(bin(OpLT, col(0, types.KindInt), lit(types.Int(10))), nil)
	m := Intersect(a, b)
	if m.Lo != 5 || m.Hi != 10 || !m.LoIncl || m.HiIncl {
		t.Fatalf("intersect wrong: %+v", m)
	}
	c, _ := ExtractInterval(bin(OpLT, col(0, types.KindInt), lit(types.Int(5))), nil)
	if !Intersect(a, c).Empty() {
		t.Error("x>=5 AND x<5 should be empty")
	}
	d, _ := ExtractInterval(bin(OpLE, col(0, types.KindInt), lit(types.Int(5))), nil)
	if Intersect(a, d).Empty() {
		t.Error("x>=5 AND x<=5 should not be empty")
	}
}

func TestAsEquiJoin(t *testing.T) {
	e := bin(OpEQ, col(1, types.KindInt), &Col{Index: 4, Name: "r", Typ: types.KindInt})
	ej, ok := AsEquiJoin(e, 3)
	if !ok || ej.LeftCol != 1 || ej.RightCol != 4 {
		t.Fatalf("equijoin wrong: %+v %v", ej, ok)
	}
	// reversed orientation
	e2 := bin(OpEQ, &Col{Index: 4}, &Col{Index: 1})
	ej2, ok := AsEquiJoin(e2, 3)
	if !ok || ej2.LeftCol != 1 || ej2.RightCol != 4 {
		t.Fatalf("reversed equijoin wrong: %+v", ej2)
	}
	// same side: not a join pred
	if _, ok := AsEquiJoin(bin(OpEQ, col(0, types.KindInt), col(1, types.KindInt)), 3); ok {
		t.Error("same-side equality is not an equi-join")
	}
	if _, ok := AsEquiJoin(bin(OpLT, col(0, types.KindInt), &Col{Index: 4}), 3); ok {
		t.Error("non-equality is not an equi-join")
	}
}

func TestColumnsUsedAndShift(t *testing.T) {
	e := bin(OpAnd,
		bin(OpEQ, col(2, types.KindInt), lit(types.Int(1))),
		bin(OpGT, col(5, types.KindInt), col(2, types.KindInt)))
	used := ColumnsUsed(e)
	if !used[2] || !used[5] || len(used) != 2 {
		t.Fatalf("ColumnsUsed wrong: %v", used)
	}
	shifted := ShiftColumns(e, -2)
	used = ColumnsUsed(shifted)
	if !used[0] || !used[3] || len(used) != 2 {
		t.Fatalf("ShiftColumns wrong: %v", used)
	}
	remapped := RemapColumns(e, map[int]int{2: 7})
	used = ColumnsUsed(remapped)
	if !used[7] || !used[5] {
		t.Fatalf("RemapColumns wrong: %v", used)
	}
}

func TestEvalPredicateNullAsFalse(t *testing.T) {
	e := bin(OpEQ, col(0, types.KindInt), lit(types.Int(1)))
	ok, err := EvalPredicate(e, types.Row{types.Null()}, nil)
	if err != nil || ok {
		t.Error("NULL predicate must filter out")
	}
	ok, _ = EvalPredicate(e, types.Row{types.Int(1)}, nil)
	if !ok {
		t.Error("true predicate must pass")
	}
}

func TestHasParams(t *testing.T) {
	if HasParams(bin(OpEQ, col(0, types.KindInt), lit(types.Int(1)))) {
		t.Error("no params expected")
	}
	if !HasParams(bin(OpEQ, col(0, types.KindInt), &Param{Index: 0})) {
		t.Error("params expected")
	}
}
