package expr

import (
	"math/rand"
	"testing"

	"rqp/internal/types"
)

// genValue produces a random value biased toward collisions (small domains)
// and NULLs, so comparisons exercise every three-valued-logic branch.
func genValue(rng *rand.Rand) types.Value {
	switch rng.Intn(6) {
	case 0:
		return types.Null()
	case 1:
		return types.Bool(rng.Intn(2) == 0)
	case 2:
		return types.Float(float64(rng.Intn(8)) / 2)
	case 3:
		return types.Str([]string{"a", "ab", "b", "ba", ""}[rng.Intn(5)])
	default:
		return types.Int(int64(rng.Intn(8) - 4))
	}
}

// genRow produces a random row for the fixed 6-column test schema:
// 0 int, 1 int, 2 float, 3 string, 4 bool, 5 anything (often NULL).
func genRow(rng *rand.Rand) types.Row {
	strs := []string{"a", "ab", "abc", "b", ""}
	r := types.Row{
		types.Int(int64(rng.Intn(10) - 5)),
		types.Int(int64(rng.Intn(10) - 5)),
		types.Float(float64(rng.Intn(10)) / 3),
		types.Str(strs[rng.Intn(len(strs))]),
		types.Bool(rng.Intn(2) == 0),
		genValue(rng),
	}
	for i := range r {
		if rng.Intn(7) == 0 {
			r[i] = types.Null()
		}
	}
	return r
}

var colKinds = []types.Kind{
	types.KindInt, types.KindInt, types.KindFloat,
	types.KindString, types.KindBool, types.KindNull,
}

// genExpr builds a random expression tree of the given depth over the test
// schema, covering every node type the compiler specializes.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Const{V: genValue(rng)}
		case 1:
			return &Param{Index: rng.Intn(2)}
		default:
			i := rng.Intn(len(colKinds))
			return &Col{Index: i, Name: "c", Typ: colKinds[i]}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return &Bin{
			Op: []Op{OpAnd, OpOr}[rng.Intn(2)],
			L:  genExpr(rng, depth-1),
			R:  genExpr(rng, depth-1),
		}
	case 1:
		return &Bin{
			Op: []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}[rng.Intn(6)],
			L:  genExpr(rng, depth-1),
			R:  genExpr(rng, depth-1),
		}
	case 2:
		return &Bin{
			Op: []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod}[rng.Intn(5)],
			L:  genExpr(rng, depth-1),
			R:  genExpr(rng, depth-1),
		}
	case 3:
		return &Un{Op: []Op{OpNot, OpNeg}[rng.Intn(2)], E: genExpr(rng, depth-1)}
	case 4:
		return &IsNull{E: genExpr(rng, depth-1), Neg: rng.Intn(2) == 0}
	case 5:
		list := make([]Expr, 1+rng.Intn(3))
		for i := range list {
			list[i] = genExpr(rng, 0)
		}
		return &In{E: genExpr(rng, depth-1), List: list, Neg: rng.Intn(2) == 0}
	case 6:
		pats := []string{"a%", "%b", "a_c", "%", "ab"}
		return &Like{
			E:       &Col{Index: 3, Name: "s", Typ: types.KindString},
			Pattern: pats[rng.Intn(len(pats))],
			Neg:     rng.Intn(2) == 0,
		}
	default:
		// Out-of-range column: the compiled path must reproduce the exact
		// evaluation error, not just values.
		if rng.Intn(8) == 0 {
			return &Col{Index: 6 + rng.Intn(2), Name: "bad", Typ: types.KindInt}
		}
		return genExpr(rng, 0)
	}
}

// TestCompiledMatchesInterpreted is the compiler's core property: for
// random expression trees and random rows, Compile(e) returns exactly what
// e.Eval returns — same value (NULLs included) or same error.
func TestCompiledMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	params := []types.Value{types.Int(3), types.Null()}
	for trial := 0; trial < 2000; trial++ {
		e := genExpr(rng, 1+rng.Intn(3))
		fn := Compile(e)
		for i := 0; i < 5; i++ {
			row := genRow(rng)
			want, werr := e.Eval(row, params)
			got, gerr := fn(row, params)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s on %v: interpreted err=%v compiled err=%v", e, row, werr, gerr)
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Fatalf("%s on %v: error text %q != %q", e, row, werr, gerr)
				}
				continue
			}
			if !valueEq(want, got) {
				t.Fatalf("%s on %v: interpreted %s != compiled %s", e, row, want, got)
			}
		}
	}
}

func valueEq(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	if a.K != b.K {
		return false
	}
	return types.Compare(a, b) == 0
}

// TestCompileConstantFolding: constant subtrees are evaluated once at
// compile time; the compiled closure for a pure-constant tree must be a
// captured value (verified behaviorally — it works on a nil row where a Col
// would fail, and division by a constant zero folds to NULL).
func TestCompileConstantFolding(t *testing.T) {
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{&Bin{Op: OpAdd, L: &Const{V: types.Int(2)}, R: &Const{V: types.Int(3)}}, types.Int(5)},
		{&Bin{Op: OpLT, L: &Const{V: types.Int(2)}, R: &Const{V: types.Int(3)}}, types.Bool(true)},
		{&Bin{Op: OpDiv, L: &Const{V: types.Int(1)}, R: &Const{V: types.Int(0)}}, types.Null()},
		{&Un{Op: OpNot, E: &Const{V: types.Bool(false)}}, types.Bool(true)},
		{&IsNull{E: &Const{V: types.Null()}}, types.Bool(true)},
	}
	for _, c := range cases {
		got, err := Compile(c.e)(nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if !valueEq(got, c.want) {
			t.Errorf("%s: got %s want %s", c.e, got, c.want)
		}
	}
	// Param subtrees must NOT fold: the same compiled expression re-bound
	// with different params sees the new values.
	fn := Compile(&Bin{Op: OpAdd, L: &Param{Index: 0}, R: &Const{V: types.Int(1)}})
	for _, p := range []int64{5, 9} {
		got, err := fn(nil, []types.Value{types.Int(p)})
		if err != nil {
			t.Fatal(err)
		}
		if got.I != p+1 {
			t.Errorf("param fold: got %s want %d", got, p+1)
		}
	}
}

// TestPredEvalBatch: the batch predicate entry must keep exactly the rows
// per-row EvalPredicate keeps, in order, for arbitrary incoming selection
// vectors.
func TestPredEvalBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	params := []types.Value{types.Int(1), types.Int(2)}
	for trial := 0; trial < 300; trial++ {
		e := genExpr(rng, 1+rng.Intn(3))
		pred := CompilePredicate(e)
		rows := make([]types.Row, 40)
		for i := range rows {
			rows[i] = genRow(rng)
		}
		// Random incoming selection: a sorted subset of row indices.
		sel := make([]int, 0, len(rows))
		for i := range rows {
			if rng.Intn(3) > 0 {
				sel = append(sel, i)
			}
		}
		var want []int
		wantErrAt := -1
		for _, i := range sel {
			ok, err := EvalPredicate(e, rows[i], params)
			if err != nil {
				wantErrAt = i
				break
			}
			if ok {
				want = append(want, i)
			}
		}
		got, err := pred.EvalBatch(rows, append([]int(nil), sel...), params)
		if wantErrAt >= 0 {
			if err == nil {
				t.Fatalf("%s: batch missed error at row %d", e, wantErrAt)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: batch err %v, per-row clean", e, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: batch kept %d rows, per-row kept %d", e, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: sel[%d]=%d want %d", e, i, got[i], want[i])
			}
		}
	}
}
