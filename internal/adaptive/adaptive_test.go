package adaptive

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/exec"
	"rqp/internal/expr"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// correlatedDB builds a schema where independence assumptions badly
// mis-estimate: fact(fid, a, b, dim) with a and b perfectly correlated, and
// dim(id, cat).
func correlatedDB(t *testing.T, facts, dims int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	fact, err := cat.CreateTable("fact", types.Schema{
		{Name: "fid", Kind: types.KindInt},
		{Name: "a", Kind: types.KindInt},
		{Name: "b", Kind: types.KindInt},
		{Name: "dim", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < facts; i++ {
		a := int64(i % 50)
		cat.Insert(nil, fact, types.Row{
			types.Int(int64(i)), types.Int(a), types.Int(a * 3), types.Int(int64(i % dims)),
		})
	}
	dim, err := cat.CreateTable("dim", types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "cat", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dims; i++ {
		cat.Insert(nil, dim, types.Row{types.Int(int64(i)), types.Int(int64(i % 7))})
	}
	cat.AnalyzeTable(fact, 16)
	cat.AnalyzeTable(dim, 16)
	return cat
}

func bindSelect(t *testing.T, cat *catalog.Catalog, q string) *plan.Query {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatal(err)
	}
	return bq
}

func sortedStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func TestProgressivePoliciesAgreeOnResults(t *testing.T) {
	cat := correlatedDB(t, 3000, 60)
	q := `SELECT fact.fid, dim.cat FROM fact, dim
		WHERE fact.dim = dim.id AND fact.a = 10 AND fact.b = 30 AND dim.cat < 5`
	var ref []string
	for _, policy := range []ReoptPolicy{Static, Checked, Eager} {
		bq := bindSelect(t, cat, q)
		p := &Progressive{Opt: opt.New(cat), Policy: policy}
		ctx := exec.NewContext()
		res, err := p.Execute(bq, ctx)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		got := sortedStrings(res.Rows)
		if ref == nil {
			ref = got
			if len(ref) == 0 {
				t.Fatal("query returned nothing; bad test setup")
			}
			continue
		}
		if strings.Join(got, ";") != strings.Join(ref, ";") {
			t.Errorf("%v: results differ (%d vs %d rows)", policy, len(got), len(ref))
		}
	}
}

func TestProgressiveThreeWayJoin(t *testing.T) {
	cat := correlatedDB(t, 2000, 40)
	// Add a second dimension-ish table.
	cats, _ := cat.CreateTable("cats", types.Schema{
		{Name: "cat", Kind: types.KindInt},
		{Name: "label", Kind: types.KindString},
	})
	for i := 0; i < 7; i++ {
		cat.Insert(nil, cats, types.Row{types.Int(int64(i)), types.Str(fmt.Sprintf("c%d", i))})
	}
	cat.AnalyzeTable(cats, 4)
	q := `SELECT fact.fid, cats.label FROM fact, dim, cats
		WHERE fact.dim = dim.id AND dim.cat = cats.cat AND fact.a = 3`
	bq := bindSelect(t, cat, q)
	static := &Progressive{Opt: opt.New(cat), Policy: Static}
	ctxS := exec.NewContext()
	resS, err := static.Execute(bq, ctxS)
	if err != nil {
		t.Fatal(err)
	}
	bq2 := bindSelect(t, cat, q)
	pop := &Progressive{Opt: opt.New(cat), Policy: Eager}
	ctxP := exec.NewContext()
	resP, err := pop.Execute(bq2, ctxP)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(sortedStrings(resS.Rows), ";") != strings.Join(sortedStrings(resP.Rows), ";") {
		t.Errorf("static and POP results differ: %d vs %d rows", len(resS.Rows), len(resP.Rows))
	}
	if resP.Steps < 2 {
		t.Errorf("3-way join should take 2 progressive steps, got %d", resP.Steps)
	}
	if len(resP.Checks) == 0 {
		t.Error("checks should be recorded")
	}
}

func TestProgressiveWithAggregation(t *testing.T) {
	cat := correlatedDB(t, 3000, 60)
	q := `SELECT dim.cat, COUNT(*) FROM fact, dim
		WHERE fact.dim = dim.id GROUP BY dim.cat ORDER BY dim.cat`
	bq := bindSelect(t, cat, q)
	p := &Progressive{Opt: opt.New(cat), Policy: Eager}
	res, err := p.Execute(bq, exec.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("groups = %d, want 7", len(res.Rows))
	}
	total := int64(0)
	for _, r := range res.Rows {
		total += r[1].I
	}
	if total != 3000 {
		t.Errorf("total count = %d, want 3000", total)
	}
}

func TestCheckedReoptsOnlyOnViolation(t *testing.T) {
	cat := correlatedDB(t, 3000, 60)
	// Correlated predicate pair a=10 AND b=30 is massively underestimated
	// under independence; the intermediate comes out ~50x larger than
	// estimated, which should trip the check on a 3-way join.
	cats, _ := cat.CreateTable("cats", types.Schema{
		{Name: "cat", Kind: types.KindInt},
		{Name: "label", Kind: types.KindString},
	})
	for i := 0; i < 7; i++ {
		cat.Insert(nil, cats, types.Row{types.Int(int64(i)), types.Str("x")})
	}
	cat.AnalyzeTable(cats, 4)
	q := `SELECT fact.fid FROM fact, dim, cats
		WHERE fact.dim = dim.id AND dim.cat = cats.cat AND fact.a = 10 AND fact.b = 30`
	bq := bindSelect(t, cat, q)
	p := &Progressive{Opt: opt.New(cat), Policy: Checked}
	res, err := p.Execute(bq, exec.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	// Whether a reopt triggers depends on whether the error crosses a plan
	// boundary; the invariant under test is bookkeeping consistency.
	if res.Reopts > res.Steps {
		t.Errorf("reopts %d > steps %d", res.Reopts, res.Steps)
	}
	for _, c := range res.Checks {
		if c.Actual < 0 || c.Estimated < 0 {
			t.Error("check record malformed")
		}
	}
}

func TestLEOFeedbackLoopConverges(t *testing.T) {
	cat := correlatedDB(t, 5000, 50)
	o := opt.New(cat)
	o.Opt.UseFeedback = true
	q := "SELECT fid FROM fact WHERE a = 10 AND b = 30"

	estimates := make([]float64, 3)
	for round := 0; round < 3; round++ {
		bq := bindSelect(t, cat, q)
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		var scanEst float64
		plan.Walk(root, func(n plan.Node) {
			if _, ok := n.(*plan.ScanNode); ok {
				scanEst = n.Props().EstRows
			}
		})
		estimates[round] = scanEst
		ctx := exec.NewContext()
		AttachLEO(ctx, o.Feedback)
		if _, err := exec.Run(root, ctx); err != nil {
			t.Fatal(err)
		}
	}
	actual := 100.0 // a=10 occurs 100 times in 5000 (i%50), b fully correlated
	err0 := estimates[0] / actual
	err2 := estimates[2] / actual
	if err0 > 0.5 {
		t.Fatalf("first estimate should underestimate badly: %v vs %v", estimates[0], actual)
	}
	if err2 < 0.5 || err2 > 2 {
		t.Errorf("LEO should converge estimate to actual: rounds %v (actual %v)", estimates, actual)
	}
}

func TestRioChoosesRobustOrMinimaxPlan(t *testing.T) {
	cat := correlatedDB(t, 4000, 80)
	bq := bindSelect(t, cat, "SELECT fact.fid FROM fact, dim WHERE fact.dim = dim.id AND fact.a = 5")
	r := &Rio{Opt: opt.New(cat), UncertaintyFactor: 8}
	root, choice, err := r.Choose(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if root == nil || choice.Sig == "" {
		t.Fatal("rio returned no plan")
	}
	rows, err := exec.Run(root, exec.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 80 { // a=5: 4000/50 = 80 fact rows, FK join preserves
		t.Errorf("rio plan returned %d rows, want 80", len(rows))
	}
	if !choice.Robust && choice.MaxRegret < 1 {
		t.Errorf("non-robust choice must report regret >= 1: %v", choice.MaxRegret)
	}
}

func TestEddyBeatsBadStaticOrder(t *testing.T) {
	// Filters: f0 passes almost everything, f1 drops almost everything.
	// Static order [f0, f1] evaluates ~2n predicates; the eddy should
	// converge to testing f1 first (~1·n evaluations plus the survivors).
	n := 20000
	rows := make([]types.Row, n)
	rng := rand.New(rand.NewSource(42))
	for i := range rows {
		rows[i] = types.Row{types.Int(rng.Int63n(1000)), types.Int(rng.Int63n(1000))}
	}
	f0 := &expr.Bin{Op: expr.OpGE, L: &expr.Col{Index: 0, Typ: types.KindInt}, R: &expr.Const{V: types.Int(10)}} // ~99% pass
	f1 := &expr.Bin{Op: expr.OpLT, L: &expr.Col{Index: 1, Typ: types.KindInt}, R: &expr.Const{V: types.Int(10)}} // ~1% pass
	filters := []expr.Expr{f0, f1}

	ctxStatic := exec.NewContext()
	keptS, statsS, err := StaticFilter(filters, rows, ctxStatic)
	if err != nil {
		t.Fatal(err)
	}
	ctxEddy := exec.NewContext()
	eddy := &Eddy{Filters: filters, Window: 128, Seed: 7}
	keptE, statsE, err := eddy.Run(rows, ctxEddy)
	if err != nil {
		t.Fatal(err)
	}
	if len(keptS) != len(keptE) {
		t.Fatalf("eddy changed results: %d vs %d", len(keptE), len(keptS))
	}
	if float64(statsE.Evaluations) > float64(statsS.Evaluations)*0.7 {
		t.Errorf("eddy should save evaluations: eddy=%d static=%d", statsE.Evaluations, statsS.Evaluations)
	}
}

func TestEddyTracksDrift(t *testing.T) {
	// First half: f0 selective. Second half: f1 selective. A static order
	// is wrong for one half whichever way; the eddy adapts mid-stream.
	n := 30000
	rows := make([]types.Row, n)
	for i := range rows {
		var a, b int64
		if i < n/2 {
			a, b = int64(i%1000), 5 // f0 (col0 < 10) drops most, f1 passes
		} else {
			a, b = 5, int64(i%1000) // f0 passes, f1 (col1 < 10) drops most
		}
		rows[i] = types.Row{types.Int(a), types.Int(b)}
	}
	f0 := &expr.Bin{Op: expr.OpLT, L: &expr.Col{Index: 0, Typ: types.KindInt}, R: &expr.Const{V: types.Int(10)}}
	f1 := &expr.Bin{Op: expr.OpLT, L: &expr.Col{Index: 1, Typ: types.KindInt}, R: &expr.Const{V: types.Int(10)}}
	filters := []expr.Expr{f1, f0} // static starts with the wrong one for half 1

	ctxStatic := exec.NewContext()
	_, statsS, _ := StaticFilter(filters, rows, ctxStatic)
	ctxEddy := exec.NewContext()
	eddy := &Eddy{Filters: filters, Window: 256, Seed: 3}
	_, statsE, err := eddy.Run(rows, ctxEddy)
	if err != nil {
		t.Fatal(err)
	}
	if statsE.Reorders == 0 {
		t.Error("eddy should reorder on drift")
	}
	if statsE.Evaluations >= statsS.Evaluations {
		t.Errorf("adaptive routing should not lose to a misordered static plan: eddy=%d static=%d",
			statsE.Evaluations, statsS.Evaluations)
	}
}

func TestLotteryEddyCorrect(t *testing.T) {
	rows := make([]types.Row, 5000)
	rng := rand.New(rand.NewSource(11))
	for i := range rows {
		rows[i] = types.Row{types.Int(rng.Int63n(100)), types.Int(rng.Int63n(100))}
	}
	f0 := &expr.Bin{Op: expr.OpLT, L: &expr.Col{Index: 0, Typ: types.KindInt}, R: &expr.Const{V: types.Int(50)}}
	f1 := &expr.Bin{Op: expr.OpGE, L: &expr.Col{Index: 1, Typ: types.KindInt}, R: &expr.Const{V: types.Int(20)}}
	filters := []expr.Expr{f0, f1}
	ctx1 := exec.NewContext()
	want, _, _ := StaticFilter(filters, rows, ctx1)
	ctx2 := exec.NewContext()
	eddy := &Eddy{Filters: filters, Lottery: true, Window: 64, Seed: 9}
	got, _, err := eddy.Run(rows, ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lottery eddy changed results: %d vs %d", len(got), len(want))
	}
}
