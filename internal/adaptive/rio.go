package adaptive

import (
	"fmt"
	"math"

	"rqp/internal/expr"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/types"
)

// Rio implements proactive re-optimization (Babu, Bizarro & DeWitt):
// instead of trusting point estimates, it draws a bounding box around each
// base-relation cardinality (low/estimate/high corners), checks whether one
// plan is optimal across the whole box, and otherwise picks the plan with
// the least worst-case regret over the corners — preferring robust plans up
// front rather than repairing mistakes mid-flight.
type Rio struct {
	Opt *opt.Optimizer
	// UncertaintyFactor f scales cardinalities to [card/f, card*f] corners.
	// Exactly-known relations (temps) are not scaled.
	UncertaintyFactor float64
	// MaxPlans caps the per-corner enumeration.
	MaxPlans int
}

// RioChoice reports the decision.
type RioChoice struct {
	Robust    bool    // one plan optimal at every corner
	Sig       string  // chosen plan signature
	MaxRegret float64 // worst-case cost ratio vs the corner-optimal plan
}

// ChooseCore selects a join-core plan for the given relations under
// bounding-box uncertainty and returns the chosen core with its output
// column order.
func (r *Rio) ChooseCore(rels []opt.BaseRel, conjuncts []expr.Expr, params []types.Value) (plan.Node, []int, RioChoice, error) {
	f := r.UncertaintyFactor
	if f <= 1 {
		f = 4
	}
	limit := r.MaxPlans
	if limit <= 0 {
		limit = 64
	}
	scale := func(mult float64) []opt.BaseRel {
		out := append([]opt.BaseRel(nil), rels...)
		for i := range out {
			if out[i].Exact {
				continue
			}
			out[i].Rows = math.Max(1, out[i].Rows*mult)
		}
		return out
	}
	corners := [][]opt.BaseRel{scale(1 / f), scale(1), scale(f)}

	// Per corner: signature -> cost, plus the corner-optimal cost.
	type cornerInfo struct {
		costs map[string]float64
		best  float64
	}
	infos := make([]cornerInfo, len(corners))
	// Keep a representative node+cols per signature from the estimate corner.
	repNode := map[string]plan.Node{}
	repCols := map[string][]int{}
	for ci, corner := range corners {
		plans, err := r.Opt.EnumerateCorePlans(corner, conjuncts, params, limit)
		if err != nil {
			return nil, nil, RioChoice{}, err
		}
		if len(plans) == 0 {
			return nil, nil, RioChoice{}, fmt.Errorf("adaptive: rio found no plans")
		}
		info := cornerInfo{costs: map[string]float64{}, best: math.Inf(1)}
		for _, p := range plans {
			info.costs[p.Sig] = p.Cost
			if p.Cost < info.best {
				info.best = p.Cost
			}
			if ci == 1 {
				repNode[p.Sig] = p.Node
				repCols[p.Sig] = p.Cols
			}
		}
		infos[ci] = info
	}

	// Robust if the estimate-corner optimum is optimal at all corners.
	estBestSig := ""
	for sig, c := range infos[1].costs {
		if c == infos[1].best {
			estBestSig = sig
			break
		}
	}
	robust := true
	for _, info := range infos {
		if c, ok := info.costs[estBestSig]; !ok || c > info.best*1.0001 {
			robust = false
			break
		}
	}
	if robust {
		return repNode[estBestSig], repCols[estBestSig], RioChoice{Robust: true, Sig: estBestSig, MaxRegret: 1}, nil
	}

	// Minimax regret over plans present in the estimate corner.
	bestSig, bestRegret := "", math.Inf(1)
	for sig := range infos[1].costs {
		regret := 0.0
		feasible := true
		for _, info := range infos {
			c, ok := info.costs[sig]
			if !ok {
				feasible = false
				break
			}
			if rr := c / info.best; rr > regret {
				regret = rr
			}
		}
		if feasible && regret < bestRegret {
			bestSig, bestRegret = sig, regret
		}
	}
	if bestSig == "" {
		bestSig, bestRegret = estBestSig, math.Inf(1)
	}
	return repNode[bestSig], repCols[bestSig], RioChoice{Robust: false, Sig: bestSig, MaxRegret: bestRegret}, nil
}

// Choose plans a full query block with Rio's bounding-box strategy.
func (r *Rio) Choose(q *plan.Query, params []types.Value) (plan.Node, RioChoice, error) {
	rels := opt.BaseRelsFromQuery(q)
	core, cols, choice, err := r.ChooseCore(rels, q.Conjuncts, params)
	if err != nil {
		return nil, choice, err
	}
	root, err := r.Opt.FinishPlan(q, core, cols)
	return root, choice, err
}
