// Package adaptive implements the run-time adaptivity techniques the
// Dagstuhl report catalogues: POP-style progressive (re-)optimization with
// validity checks over materialized intermediates, LEO-style execution
// feedback, Rio-style bounding-box plan selection, and an eddy for adaptive
// selection ordering.
package adaptive

import (
	"fmt"

	"rqp/internal/exec"
	"rqp/internal/expr"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/types"
)

// ReoptPolicy selects how the progressive executor reacts at
// materialization points.
type ReoptPolicy uint8

// Policies. Static executes the compile-time plan unchanged (the baseline
// of POP Figures 1–3). Checked re-optimizes the remainder only when the
// observed cardinality of a materialized intermediate would change the
// remainder plan (a validity-range violation, detected by re-planning the
// remainder under the actual cardinality and comparing plan signatures).
// Eager re-optimizes at every materialization point.
const (
	Static ReoptPolicy = iota
	Checked
	Eager
)

// String names the policy.
func (p ReoptPolicy) String() string {
	switch p {
	case Static:
		return "static"
	case Checked:
		return "pop-checked"
	case Eager:
		return "pop-eager"
	}
	return "?"
}

// Progressive executes query blocks join-by-join, materializing each
// intermediate, and (per policy) re-optimizing the remaining joins with the
// exact cardinality of completed work — Markl et al.'s "robust query
// processing through progressive optimization" on this engine.
type Progressive struct {
	Opt    *opt.Optimizer
	Policy ReoptPolicy
	// ReoptCharge is the simulated cost charged per re-optimization, so the
	// technique's overhead is visible in measured response times.
	ReoptCharge float64
}

// Result reports what the progressive executor did.
type Result struct {
	Rows    []types.Row
	Reopts  int
	Steps   int
	Checks  []CheckRecord
	PlanSig string
}

// CheckRecord captures one materialization point's estimate vs actual.
type CheckRecord struct {
	Estimated float64
	Actual    float64
	Violated  bool
}

// Execute runs the query block under the configured policy.
func (p *Progressive) Execute(q *plan.Query, ctx *exec.Context) (*Result, error) {
	res := &Result{}

	// Working state: live relations, their q.Combined column origins, and
	// the conjuncts not yet applied (in q.Combined coordinates).
	rels := opt.BaseRelsFromQuery(q)
	orig := make([][]int, len(rels))
	for i, r := range q.Rels {
		cols := make([]int, r.Width())
		for c := range cols {
			cols[c] = r.Offset + c
		}
		orig[i] = cols
	}
	remaining := append([]expr.Expr(nil), q.Conjuncts...)

	for {
		curConj, err := translateConjuncts(remaining, rels, orig)
		if err != nil {
			return nil, err
		}
		core, cols, err := p.Opt.OptimizeJoinGraph(rels, curConj, ctx.Params)
		if err != nil {
			return nil, err
		}
		if res.PlanSig == "" {
			res.PlanSig = plan.PlanSignature(core)
		}
		if p.Policy == Static || len(rels) == 1 {
			qCols, err := translateCols(cols, rels, orig)
			if err != nil {
				return nil, err
			}
			root, err := p.Opt.FinishPlan(q, core, qCols)
			if err != nil {
				return nil, err
			}
			rows, err := exec.Run(root, ctx)
			if err != nil {
				return nil, err
			}
			res.Rows = rows
			return res, nil
		}

		// Find the first executable join (both inputs are leaf scans).
		sub := firstJoin(core)

		// POP's CHECK sits *below* the join: materialize the join's outer
		// input first. With the outer's exact cardinality, re-planning can
		// repair a mistaken join method or order before the join runs —
		// without this, a catastrophic first join would already have
		// happened by the time its output is counted.
		// Checked mode only instruments *risky* inputs (estimates derived by
		// multiplying several predicate selectivities under independence —
		// the derivation-based uncertainty classification Rio introduced).
		// A plan whose first join has no risky input runs to completion
		// statically: checks are free when nothing needs checking.
		if p.Policy == Checked && sub != nil {
			if leaf, ok := outerBaseLeaf(sub); !ok || !uncertainLeaf(leaf) {
				qCols, err := translateCols(cols, rels, orig)
				if err != nil {
					return nil, err
				}
				root, err := p.Opt.FinishPlan(q, core, qCols)
				if err != nil {
					return nil, err
				}
				rows, err := exec.Run(root, ctx)
				if err != nil {
					return nil, err
				}
				res.Rows = rows
				return res, nil
			}
		}
		if sub != nil {
			if leaf, ok := outerBaseLeaf(sub); ok {
				matRows, err := exec.Run(leaf, ctx)
				if err != nil {
					return nil, err
				}
				estimated := leaf.Props().EstRows
				actual := float64(len(matRows))
				alias := leafAliases(leaf)[0]
				li := relIndexByAlias(rels, alias)
				if li < 0 {
					return nil, fmt.Errorf("adaptive: unknown leaf relation %q", alias)
				}
				newRels := append([]opt.BaseRel(nil), rels...)
				newRels[li] = opt.TempRel(alias, rels[li].Schema, matRows)
				remaining = dropCoveredConjuncts(remaining, orig[li])
				violated := true
				if p.Policy == Checked {
					violated, err = p.remainderChangesAt(newRels, orig, remaining, ctx.Params, li, estimated, actual)
					if err != nil {
						return nil, err
					}
				}
				res.Checks = append(res.Checks, CheckRecord{Estimated: estimated, Actual: actual, Violated: violated})
				traceCheck(ctx, res.Steps, estimated, actual, violated)
				if violated {
					res.Reopts++
					p.chargeReopt(ctx)
				}
				rels = newRels
				continue
			}
		}
		if sub == nil {
			// No join (single relation handled above) — finish statically.
			qCols, err := translateCols(cols, rels, orig)
			if err != nil {
				return nil, err
			}
			root, err := p.Opt.FinishPlan(q, core, qCols)
			if err != nil {
				return nil, err
			}
			rows, err := exec.Run(root, ctx)
			if err != nil {
				return nil, err
			}
			res.Rows = rows
			return res, nil
		}
		aliases := leafAliases(sub)
		if len(aliases) != 2 {
			return nil, fmt.Errorf("adaptive: first join covers %d relations", len(aliases))
		}
		estimated := sub.Props().EstRows
		matRows, err := exec.Run(sub, ctx)
		if err != nil {
			return nil, err
		}
		actual := float64(len(matRows))
		res.Steps++

		li := relIndexByAlias(rels, aliases[0])
		ri := relIndexByAlias(rels, aliases[1])
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("adaptive: unknown relation in %v", aliases)
		}
		// Build the merged temp relation: output schema is left then right.
		mergedSchema := rels[li].Schema.Concat(rels[ri].Schema)
		mergedOrig := append(append([]int{}, orig[li]...), orig[ri]...)
		tmp := opt.TempRel(fmt.Sprintf("tmp%d", res.Steps), mergedSchema, matRows)

		// Drop conjuncts fully applied inside the executed join.
		remaining = dropCoveredConjuncts(remaining, mergedOrig)

		// Replace the two relations with the temp.
		newRels := []opt.BaseRel{}
		newOrig := [][]int{}
		for i := range rels {
			if i == li || i == ri {
				continue
			}
			newRels = append(newRels, rels[i])
			newOrig = append(newOrig, orig[i])
		}
		newRels = append(newRels, tmp)
		newOrig = append(newOrig, mergedOrig)

		violated := true
		if p.Policy == Checked {
			violated, err = p.remainderChangesAt(newRels, newOrig, remaining, ctx.Params, len(newRels)-1, estimated, actual)
			if err != nil {
				return nil, err
			}
		}
		res.Checks = append(res.Checks, CheckRecord{Estimated: estimated, Actual: actual, Violated: violated})
		traceCheck(ctx, res.Steps, estimated, actual, violated)
		if violated {
			res.Reopts++
			p.chargeReopt(ctx)
		}
		rels, orig = newRels, newOrig
		// Loop re-optimizes the remainder with the temp's exact cardinality.
		// Under Checked without violation the re-optimization necessarily
		// reproduces the same remainder plan, so looping is equivalent to
		// continuing the original plan.
	}
}

// chargeReopt bills the simulated cost of one re-optimization (RowCPU is
// 0.01 units, so ReoptCharge units = 100×ReoptCharge row-works).
func (p *Progressive) chargeReopt(ctx *exec.Context) {
	if p.ReoptCharge > 0 {
		ctx.Clock.RowWork(int(p.ReoptCharge * 100))
	}
}

// traceCheck reports one materialization checkpoint (and, on violation, the
// re-optimization it triggers) to the context's tracer.
func traceCheck(ctx *exec.Context, step int, estimated, actual float64, violated bool) {
	if ctx.Trace == nil {
		return
	}
	ctx.Trace.Event("pop.check",
		fmt.Sprintf("step=%d est=%.0f actual=%.0f violated=%v", step, estimated, actual, violated))
	if violated {
		ctx.Trace.Event("pop.reopt", fmt.Sprintf("step=%d", step))
	}
}

// outerBaseLeaf returns the first join's outer input when it is still a
// base-table access (not yet a materialized temp).
func outerBaseLeaf(sub plan.Node) (plan.Node, bool) {
	var left plan.Node
	switch j := sub.(type) {
	case *plan.JoinNode:
		left = j.Left()
	case *plan.IndexJoinNode:
		left = j.Left()
	default:
		return nil, false
	}
	switch left.(type) {
	case *plan.ScanNode, *plan.IndexScanNode:
		return left, true
	}
	return nil, false
}

// uncertainLeaf classifies an access path's estimate by derivation: a
// filter combining two or more predicates (independence multiplication) or
// a materialized temp never counts; single-predicate estimates come
// straight from a histogram and are trusted.
func uncertainLeaf(leaf plan.Node) bool {
	switch n := leaf.(type) {
	case *plan.ScanNode:
		return len(expr.Conjuncts(n.Filter)) >= 2
	case *plan.IndexScanNode:
		preds := len(expr.Conjuncts(n.Residual))
		if n.LoSet || n.HiSet {
			preds++
		}
		return preds >= 2
	}
	return false
}

// dropCoveredConjuncts removes conjuncts whose columns are all inside the
// covered q.Combined column set (they have been applied by execution).
func dropCoveredConjuncts(remaining []expr.Expr, covered []int) []expr.Expr {
	set := map[int]bool{}
	for _, c := range covered {
		set[c] = true
	}
	var out []expr.Expr
	for _, c := range remaining {
		all := true
		for col := range expr.ColumnsUsed(c) {
			if !set[col] {
				all = false
				break
			}
		}
		if !all {
			out = append(out, c)
		}
	}
	return out
}

// remainderChangesAt is remainderChanges for a temp at an arbitrary index.
func (p *Progressive) remainderChangesAt(rels []opt.BaseRel, orig [][]int, remaining []expr.Expr, params []types.Value, tmpIdx int, estimated, actual float64) (bool, error) {
	if len(rels) == 1 {
		return false, nil
	}
	curConj, err := translateConjuncts(remaining, rels, orig)
	if err != nil {
		return false, err
	}
	withCard := func(card float64) (string, error) {
		scaled := append([]opt.BaseRel(nil), rels...)
		scaled[tmpIdx].Rows = card
		node, _, err := p.Opt.OptimizeJoinGraph(scaled, curConj, params)
		if err != nil {
			return "", err
		}
		return plan.PlanSignature(node), nil
	}
	sigEst, err := withCard(estimated)
	if err != nil {
		return false, err
	}
	sigAct, err := withCard(actual)
	if err != nil {
		return false, err
	}
	return sigEst != sigAct, nil
}

// translateConjuncts rewrites conjuncts from q.Combined coordinates into the
// current concatenated-relation coordinates defined by orig.
func translateConjuncts(conjuncts []expr.Expr, rels []opt.BaseRel, orig [][]int) ([]expr.Expr, error) {
	m := map[int]int{}
	cur := 0
	for i := range rels {
		for _, qc := range orig[i] {
			m[qc] = cur
			cur++
		}
	}
	out := make([]expr.Expr, 0, len(conjuncts))
	for _, c := range conjuncts {
		for col := range expr.ColumnsUsed(c) {
			if _, ok := m[col]; !ok {
				return nil, fmt.Errorf("adaptive: conjunct %s references dropped column %d", c, col)
			}
		}
		out = append(out, expr.RemapColumns(c, m))
	}
	return out, nil
}

// translateCols maps current-space output columns to q.Combined columns.
func translateCols(cols []int, rels []opt.BaseRel, orig [][]int) ([]int, error) {
	flat := []int{}
	for i := range rels {
		flat = append(flat, orig[i]...)
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(flat) {
			return nil, fmt.Errorf("adaptive: column %d out of range", c)
		}
		out[i] = flat[c]
	}
	return out, nil
}

// firstJoin returns the deepest join node both of whose inputs are leaves.
func firstJoin(n plan.Node) plan.Node {
	var found plan.Node
	var walk func(plan.Node)
	walk = func(x plan.Node) {
		if found != nil {
			return
		}
		switch j := x.(type) {
		case *plan.JoinNode:
			if isLeaf(j.Left()) && isLeaf(j.Right()) {
				found = j
				return
			}
			walk(j.Left())
			walk(j.Right())
		case *plan.IndexJoinNode:
			if isLeaf(j.Left()) {
				found = j
				return
			}
			walk(j.Left())
		default:
			for _, c := range x.Children() {
				walk(c)
			}
		}
	}
	walk(n)
	return found
}

func isLeaf(n plan.Node) bool {
	switch n.(type) {
	case *plan.ScanNode, *plan.IndexScanNode, *plan.TempScanNode:
		return true
	}
	return false
}

// leafAliases lists the relation aliases a subtree covers in output-column
// order (left input's relations before the right's).
func leafAliases(n plan.Node) []string {
	switch x := n.(type) {
	case *plan.ScanNode:
		return []string{x.Alias}
	case *plan.IndexScanNode:
		return []string{x.Alias}
	case *plan.TempScanNode:
		return []string{x.Alias}
	case *plan.IndexJoinNode:
		return append(leafAliases(x.Left()), x.Alias)
	default:
		var out []string
		for _, c := range n.Children() {
			out = append(out, leafAliases(c)...)
		}
		return out
	}
}

func relIndexByAlias(rels []opt.BaseRel, alias string) int {
	for i, r := range rels {
		if r.Alias == alias {
			return i
		}
	}
	return -1
}
