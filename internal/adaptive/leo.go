package adaptive

import (
	"rqp/internal/exec"
	"rqp/internal/plan"
	"rqp/internal/stats"
)

// AttachLEO wires a LEO-style learning loop into an execution context:
// every operator that finishes reports (signature, estimated, actual) into
// the feedback store, which the optimizer consults on subsequent queries
// (Stillger et al., "LEO — DB2's learning optimizer"). POP and LEO are
// complementary — POP reacts during the query, LEO learns for the next one.
func AttachLEO(ctx *exec.Context, fb *stats.FeedbackStore) {
	prev := ctx.OnActual
	ctx.OnActual = func(node plan.Node, actual float64) {
		if prev != nil {
			prev(node, actual)
		}
		p := node.Props()
		if p.Signature == "" {
			return
		}
		// Only base-access signatures are recorded: join feedback would
		// conflate order-dependent intermediate results.
		switch node.(type) {
		case *plan.ScanNode, *plan.IndexScanNode:
			fb.Record(p.Signature, p.EstRows, actual)
		}
	}
}
