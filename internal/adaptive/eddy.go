package adaptive

import (
	"math/rand"

	"rqp/internal/exec"
	"rqp/internal/expr"
	"rqp/internal/types"
)

// Eddy adaptively orders a conjunction of filter predicates per tuple
// (Avnur & Hellerstein). Each predicate holds lottery tickets; tickets are
// won by dropping tuples (high observed selectivity) and decay over a
// sliding window, so the routing order tracks drifting data. The
// deterministic alternative (ranked mode) re-sorts predicates by observed
// pass rate every window — the A-Greedy flavour.
type Eddy struct {
	Filters []expr.Expr
	// Lottery selects ticket-based probabilistic routing; otherwise
	// predicates are ranked deterministically by observed pass rate.
	Lottery bool
	// Window is the number of tuples between re-ranking decisions.
	Window int
	// Seed drives the lottery; fixed for reproducibility.
	Seed int64
}

// EddyStats reports adaptation behaviour.
type EddyStats struct {
	Evaluations int // total predicate evaluations performed
	Kept        int
	Reorders    int
}

// Run filters rows adaptively and returns survivors. Every predicate
// evaluation charges one row-CPU unit on the context clock, so eddy routing
// quality shows up directly in measured cost.
func (e *Eddy) Run(rows []types.Row, ctx *exec.Context) ([]types.Row, EddyStats, error) {
	n := len(e.Filters)
	stats := EddyStats{}
	if n == 0 {
		stats.Kept = len(rows)
		return rows, stats, nil
	}
	window := e.Window
	if window <= 0 {
		window = 64
	}
	rng := rand.New(rand.NewSource(e.Seed + 1))

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	evals := make([]float64, n)
	drops := make([]float64, n)

	var kept []types.Row
	sinceRank := 0
	for _, row := range rows {
		if e.Lottery {
			// Route through predicates drawn by ticket count (drops+1).
			remaining := append([]int(nil), order...)
			alive := true
			for len(remaining) > 0 && alive {
				total := 0.0
				for _, f := range remaining {
					total += drops[f] + 1
				}
				pick := rng.Float64() * total
				idx := 0
				for i, f := range remaining {
					pick -= drops[f] + 1
					if pick <= 0 {
						idx = i
						break
					}
				}
				f := remaining[idx]
				remaining = append(remaining[:idx], remaining[idx+1:]...)
				pass, err := evalFilter(e.Filters[f], row, ctx, &stats)
				if err != nil {
					return nil, stats, err
				}
				evals[f]++
				if !pass {
					drops[f]++
					alive = false
				}
			}
			if alive {
				kept = append(kept, row)
				stats.Kept++
			}
		} else {
			alive := true
			for _, f := range order {
				pass, err := evalFilter(e.Filters[f], row, ctx, &stats)
				if err != nil {
					return nil, stats, err
				}
				evals[f]++
				if !pass {
					drops[f]++
					alive = false
					break
				}
			}
			if alive {
				kept = append(kept, row)
				stats.Kept++
			}
		}
		sinceRank++
		if sinceRank >= window {
			sinceRank = 0
			if e.rerank(order, evals, drops) {
				stats.Reorders++
			}
			// Age the statistics so the eddy tracks drift.
			for i := range evals {
				evals[i] /= 2
				drops[i] /= 2
			}
		}
	}
	return kept, stats, nil
}

// rerank sorts predicates by descending observed drop rate; returns whether
// the order changed.
func (e *Eddy) rerank(order []int, evals, drops []float64) bool {
	rate := func(f int) float64 {
		if evals[f] == 0 {
			return 0
		}
		return drops[f] / evals[f]
	}
	changed := false
	// insertion sort (stable, n tiny)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && rate(order[j]) > rate(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
			changed = true
		}
	}
	return changed
}

func evalFilter(f expr.Expr, row types.Row, ctx *exec.Context, stats *EddyStats) (bool, error) {
	ctx.Clock.RowWork(1)
	stats.Evaluations++
	return expr.EvalPredicate(f, row, ctx.Params)
}

// StaticFilter is the non-adaptive baseline: evaluate the predicates in the
// given fixed order for every tuple.
func StaticFilter(filters []expr.Expr, rows []types.Row, ctx *exec.Context) ([]types.Row, EddyStats, error) {
	stats := EddyStats{}
	var kept []types.Row
	for _, row := range rows {
		alive := true
		for _, f := range filters {
			pass, err := evalFilter(f, row, ctx, &stats)
			if err != nil {
				return nil, stats, err
			}
			if !pass {
				alive = false
				break
			}
		}
		if alive {
			kept = append(kept, row)
			stats.Kept++
		}
	}
	return kept, stats, nil
}
