package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Stmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.cur().Text)
	}
	return st, nil
}

type parser struct {
	toks      []Token
	pos       int
	numParams int
}

func (p *parser) cur() Token { return p.toks[p.pos] }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return Token{}, p.errorf("expected %q, found %q", text, p.cur().Text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(TokKeyword, "EXPLAIN"):
		p.pos++
		// EXPLAIN ANALYZE SELECT ... executes under a tracer. Plain
		// "EXPLAIN ANALYZE t" still explains the ANALYZE statement, so only
		// consume ANALYZE when a SELECT follows.
		analyze := false
		if p.at(TokKeyword, "ANALYZE") && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "SELECT" {
			analyze = true
			p.pos++
		}
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Inner: inner, Analyze: analyze}, nil
	case p.at(TokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(TokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(TokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(TokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(TokKeyword, "ANALYZE"):
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &AnalyzeStmt{Table: name}, nil
	case p.at(TokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(TokKeyword, "UPDATE"):
		return p.parseUpdate()
	}
	return nil, p.errorf("expected a statement, found %q", p.cur().Text)
}

func (p *parser) ident() (string, error) {
	if p.cur().Kind == TokIdent {
		t := p.cur()
		p.pos++
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, found %q", p.cur().Text)
}

// ---------- SELECT ----------

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.accept(TokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, tr)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		for {
			var kind string
			switch {
			case p.at(TokKeyword, "JOIN"):
				kind = "INNER"
				p.pos++
			case p.at(TokKeyword, "INNER"):
				p.pos++
				if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				kind = "INNER"
			case p.at(TokKeyword, "LEFT"):
				p.pos++
				p.accept(TokKeyword, "OUTER")
				if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				kind = "LEFT"
			default:
				kind = ""
			}
			if kind == "" {
				break
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Joins = append(st.Joins, JoinClause{Kind: kind, Table: tr, On: on})
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		st.Limit = n
		if p.accept(TokKeyword, "OFFSET") {
			o, err := p.intLiteral()
			if err != nil {
				return nil, err
			}
			st.Offset = o
		}
	}
	return st, nil
}

func (p *parser) intLiteral() (int, error) {
	t := p.cur()
	if t.Kind != TokNumber {
		return 0, p.errorf("expected integer, found %q", t.Text)
	}
	p.pos++
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errorf("bad integer %q", t.Text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if p.cur().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		table := p.cur().Text
		p.pos += 3
		return SelectItem{Star: true, Table: table}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().Kind == TokIdent {
		item.Alias = p.cur().Text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	if p.accept(TokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.cur().Kind == TokIdent {
		tr.Alias = p.cur().Text
		p.pos++
	}
	return tr, nil
}

// ---------- expressions (precedence climbing) ----------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	neg := false
	if p.at(TokKeyword, "NOT") {
		// lookahead for NOT IN / NOT BETWEEN / NOT LIKE
		next := p.toks[p.pos+1]
		if next.Kind == TokKeyword && (next.Text == "IN" || next.Text == "BETWEEN" || next.Text == "LIKE") {
			p.pos++
			neg = true
		}
	}
	switch {
	case p.accept(TokKeyword, "IN"):
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		if p.at(TokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &InExpr{E: l, Sub: sub, Neg: neg}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Neg: neg}, nil
	case p.accept(TokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Neg: neg}, nil
	case p.accept(TokKeyword, "LIKE"):
		t := p.cur()
		if t.Kind != TokString {
			return nil, p.errorf("LIKE requires a string pattern")
		}
		p.pos++
		return &LikeExpr{E: l, Pattern: t.Text, Neg: neg}, nil
	case p.accept(TokKeyword, "IS"):
		n := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Neg: n}, nil
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "+"):
			op = "+"
		case p.accept(TokSymbol, "-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "*"):
			op = "*"
		case p.accept(TokSymbol, "/"):
			op = "/"
		case p.accept(TokSymbol, "%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.Contains(t.Text, ".") {
			return &Lit{Kind: "float", Text: t.Text}, nil
		}
		return &Lit{Kind: "int", Text: t.Text}, nil
	case TokString:
		p.pos++
		return &Lit{Kind: "string", Text: t.Text}, nil
	case TokParam:
		p.pos++
		e := &ParamRef{Index: p.numParams}
		p.numParams++
		return e, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &Lit{Kind: "null"}, nil
		case "TRUE":
			p.pos++
			return &Lit{Kind: "bool", Bool: true}, nil
		case "FALSE":
			p.pos++
			return &Lit{Kind: "bool", Bool: false}, nil
		case "DATE":
			// DATE(n) literal: days since epoch
			p.pos++
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &FuncExpr{Name: "DATE", Args: []Expr{arg}}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			if t.Text == "COUNT" && p.accept(TokSymbol, "*") {
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
				return &FuncExpr{Name: "COUNT", Star: true}, nil
			}
			distinct := p.accept(TokKeyword, "DISTINCT")
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &FuncExpr{Name: t.Text, Args: []Expr{arg}, Distinct: distinct}, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		// function call, qualified column, or bare column
		if p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "(" {
			name := strings.ToUpper(t.Text)
			p.pos += 2
			var args []Expr
			if !p.at(TokSymbol, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &FuncExpr{Name: name, Args: args}, nil
		}
		p.pos++
		if p.accept(TokSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.Text, Name: col}, nil
		}
		return &ColRef{Name: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

// ---------- DDL / DML ----------

func (p *parser) parseInsert() (Stmt, error) {
	p.pos++ // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.accept(TokSymbol, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	p.pos++ // CREATE
	unique := p.accept(TokKeyword, "UNIQUE")
	switch {
	case p.accept(TokKeyword, "TABLE"):
		if unique {
			return nil, p.errorf("UNIQUE TABLE is not valid")
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		st := &CreateTableStmt{Table: name}
		for {
			cn, err := p.ident()
			if err != nil {
				return nil, err
			}
			var tn string
			if p.cur().Kind == TokIdent {
				tn = p.cur().Text
				p.pos++
			} else if p.cur().Kind == TokKeyword && p.cur().Text == "DATE" {
				tn = "DATE"
				p.pos++
			} else {
				return nil, p.errorf("expected type name for column %q", cn)
			}
			st.Cols = append(st.Cols, ColumnDef{Name: cn, Type: tn})
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return st, nil
	case p.accept(TokKeyword, "INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		st := &CreateIndexStmt{Name: name, Table: table, Unique: unique}
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return st, nil
	}
	return nil, p.errorf("expected TABLE or INDEX after CREATE")
}

func (p *parser) parseDrop() (Stmt, error) {
	p.pos++ // DROP
	if p.accept(TokKeyword, "TABLE") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Table: name}, nil
	}
	if _, err := p.expect(TokKeyword, "INDEX"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropIndexStmt{Name: name, Table: table}, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.pos++ // DELETE
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.pos++ // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table, Set: map[string]Expr{}}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set[strings.ToLower(col)] = e
		st.Order = append(st.Order, strings.ToLower(col))
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}
