// Package sql implements the SQL front end: a hand-written lexer and
// recursive-descent parser producing an AST that the planner binds against
// the catalog. The dialect covers the subset the Dagstuhl test suites need:
// SELECT with joins, grouping, ordering, limits; INSERT; CREATE TABLE /
// INDEX; ANALYZE; EXPLAIN; positional '?' parameters.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokParam  // ?
	TokSymbol // punctuation and operators
)

// Token is one lexeme with its source position (for error messages).
type Token struct {
	Kind TokKind
	Text string // keywords upper-cased; idents as written
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "UNIQUE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"UPDATE": true, "SET": true, "EXPLAIN": true, "ANALYZE": true,
	"DISTINCT": true, "ASC": true, "DESC": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "DROP": true, "DATE": true,
}

// Lex tokenizes the input. It returns an error on unterminated strings or
// illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '?':
			toks = append(toks, Token{Kind: TokParam, Text: "?", Pos: i})
			i++
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			text := input[start:i]
			up := strings.ToUpper(text)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: text, Pos: start})
			}
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				sym := two
				if sym == "!=" {
					sym = "<>"
				}
				toks = append(toks, Token{Kind: TokSymbol, Text: sym, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: illegal character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
