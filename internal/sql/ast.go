package sql

import (
	"fmt"
	"strings"
)

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// Expr is an unbound AST expression (column names unresolved).
type Expr interface {
	exprNode()
	String() string
}

// ColRef is a possibly qualified column name.
type ColRef struct{ Table, Name string }

func (*ColRef) exprNode() {}

// String implements Expr.
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Lit is a literal: integer, float, string, bool or NULL.
type Lit struct {
	Kind string // "int" | "float" | "string" | "bool" | "null"
	Text string // source text for numerics/strings
	Bool bool
}

func (*Lit) exprNode() {}

// String implements Expr.
func (l *Lit) String() string {
	switch l.Kind {
	case "string":
		return "'" + l.Text + "'"
	case "bool":
		if l.Bool {
			return "TRUE"
		}
		return "FALSE"
	case "null":
		return "NULL"
	}
	return l.Text
}

// ParamRef is a '?' placeholder; Index assigned in source order.
type ParamRef struct{ Index int }

func (*ParamRef) exprNode() {}

// String implements Expr.
func (p *ParamRef) String() string { return "?" }

// BinExpr is a binary operation; Op holds the SQL spelling (=, <, AND, +, ...).
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) exprNode() {}

// String implements Expr.
func (b *BinExpr) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// UnExpr is NOT or unary minus.
type UnExpr struct {
	Op string // "NOT" | "-"
	E  Expr
}

func (*UnExpr) exprNode() {}

// String implements Expr.
func (u *UnExpr) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.E) }

// InExpr is E [NOT] IN (list) or E [NOT] IN (subquery). Sub, when set, is
// an uncorrelated subquery the engine expands into a literal list before
// binding (late binding).
type InExpr struct {
	E    Expr
	List []Expr
	Sub  *SelectStmt
	Neg  bool
}

func (*InExpr) exprNode() {}

// String implements Expr.
func (in *InExpr) String() string {
	neg := ""
	if in.Neg {
		neg = " NOT"
	}
	if in.Sub != nil {
		return fmt.Sprintf("(%s%s IN (<subquery>))", in.E, neg)
	}
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	return fmt.Sprintf("(%s%s IN (%s))", in.E, neg, strings.Join(parts, ", "))
}

// BetweenExpr is E [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Neg       bool
}

func (*BetweenExpr) exprNode() {}

// String implements Expr.
func (b *BetweenExpr) String() string {
	neg := ""
	if b.Neg {
		neg = " NOT"
	}
	return fmt.Sprintf("(%s%s BETWEEN %s AND %s)", b.E, neg, b.Lo, b.Hi)
}

// IsNullExpr is E IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Neg bool
}

func (*IsNullExpr) exprNode() {}

// String implements Expr.
func (n *IsNullExpr) String() string {
	if n.Neg {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}

// LikeExpr is E [NOT] LIKE 'pattern'.
type LikeExpr struct {
	E       Expr
	Pattern string
	Neg     bool
}

func (*LikeExpr) exprNode() {}

// String implements Expr.
func (l *LikeExpr) String() string {
	neg := ""
	if l.Neg {
		neg = " NOT"
	}
	return fmt.Sprintf("(%s%s LIKE '%s')", l.E, neg, l.Pattern)
}

// FuncExpr is a scalar or aggregate function call. Star marks COUNT(*);
// Distinct marks AGG(DISTINCT expr).
type FuncExpr struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncExpr) exprNode() {}

// String implements Expr.
func (f *FuncExpr) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", f.Name, d, strings.Join(parts, ", "))
}

// SelectItem is one projection: expression with optional alias, or * / t.*.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool   // SELECT *
	Table string // SELECT t.* when set with Star
}

// TableRef is one FROM item with optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// AliasOrName returns the effective relation name.
func (t TableRef) AliasOrName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an explicit JOIN ... ON attached after the first FROM item.
type JoinClause struct {
	Kind  string // "INNER" | "LEFT"
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef   // comma-separated relations
	Joins    []JoinClause // explicit JOINs
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
	Offset   int
}

func (*SelectStmt) stmt() {}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string
}

// CreateTableStmt is CREATE TABLE t (col type, ...).
type CreateTableStmt struct {
	Table string
	Cols  []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// CreateIndexStmt is CREATE [UNIQUE] INDEX name ON t (cols).
type CreateIndexStmt struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
}

func (*CreateIndexStmt) stmt() {}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct{ Table string }

func (*DropTableStmt) stmt() {}

// DropIndexStmt is DROP INDEX name ON t.
type DropIndexStmt struct {
	Name  string
	Table string
}

func (*DropIndexStmt) stmt() {}

// AnalyzeStmt is ANALYZE t.
type AnalyzeStmt struct{ Table string }

func (*AnalyzeStmt) stmt() {}

// ExplainStmt wraps another statement. Analyze marks EXPLAIN ANALYZE: the
// inner SELECT is executed under a tracer and the plan is rendered with
// actual cardinalities, per-node q-error and cost consumed.
type ExplainStmt struct {
	Inner   Stmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   map[string]Expr
	Order []string // column order of SET clauses, for determinism
	Where Expr
}

func (*UpdateStmt) stmt() {}
