package sql

import (
	"strings"
	"testing"
)

func mustSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	st, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("parse %q: got %T", q, st)
	}
	return sel
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s' FROM t WHERE x >= 1.5 -- comment\n AND y != 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.Text)
	}
	joined := strings.Join(texts, "|")
	if !strings.Contains(joined, "it's") {
		t.Errorf("escaped quote not handled: %s", joined)
	}
	if !strings.Contains(joined, ">=") || !strings.Contains(joined, "<>") {
		t.Errorf("operators not lexed: %s", joined)
	}
	if strings.Contains(joined, "comment") {
		t.Error("comment not skipped")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'open"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("SELECT a # b"); err == nil {
		t.Error("illegal char should fail")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b AS bee FROM t WHERE a = 1")
	if len(sel.Items) != 2 || sel.Items[1].Alias != "bee" {
		t.Errorf("items wrong: %+v", sel.Items)
	}
	if len(sel.From) != 1 || sel.From[0].Name != "t" {
		t.Errorf("from wrong: %+v", sel.From)
	}
	if sel.Where == nil {
		t.Error("where missing")
	}
}

func TestParseStarAndQualifiedStar(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t")
	if !sel.Items[0].Star {
		t.Error("star not parsed")
	}
	sel2 := mustSelect(t, "SELECT t.* FROM t")
	if !sel2.Items[0].Star || sel2.Items[0].Table != "t" {
		t.Errorf("qualified star wrong: %+v", sel2.Items[0])
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, `SELECT o.id FROM orders o
		JOIN customer c ON o.cid = c.id
		LEFT JOIN nation n ON c.nid = n.id
		WHERE c.name = 'x'`)
	if len(sel.Joins) != 2 {
		t.Fatalf("joins = %d", len(sel.Joins))
	}
	if sel.Joins[0].Kind != "INNER" || sel.Joins[1].Kind != "LEFT" {
		t.Errorf("join kinds wrong: %+v", sel.Joins)
	}
	if sel.From[0].Alias != "o" || sel.Joins[0].Table.AliasOrName() != "c" {
		t.Errorf("aliases wrong")
	}
}

func TestParseImplicitJoinList(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM a, b, c WHERE a.x = b.x AND b.y = c.y")
	if len(sel.From) != 3 {
		t.Errorf("from list = %d", len(sel.From))
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	sel := mustSelect(t, `SELECT g, COUNT(*), SUM(v) AS s FROM t
		GROUP BY g HAVING COUNT(*) > 2
		ORDER BY s DESC, g ASC LIMIT 10 OFFSET 5`)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group/having wrong")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order wrong: %+v", sel.OrderBy)
	}
	if sel.Limit != 10 || sel.Offset != 5 {
		t.Errorf("limit/offset wrong: %d %d", sel.Limit, sel.Offset)
	}
	f, ok := sel.Items[1].Expr.(*FuncExpr)
	if !ok || f.Name != "COUNT" || !f.Star {
		t.Errorf("COUNT(*) wrong: %+v", sel.Items[1].Expr)
	}
}

func TestParsePredicates(t *testing.T) {
	sel := mustSelect(t, `SELECT 1 FROM t WHERE a IN (1, 2, 3)
		AND b NOT IN (4) AND c BETWEEN 1 AND 10 AND d NOT BETWEEN 2 AND 3
		AND e LIKE 'x%' AND f NOT LIKE '_y' AND g IS NULL AND h IS NOT NULL`)
	s := sel.Where.String()
	for _, want := range []string{"IN (1, 2, 3)", "NOT IN (4)", "BETWEEN 1 AND 10",
		"NOT BETWEEN 2 AND 3", "LIKE 'x%'", "NOT LIKE '_y'", "IS NULL", "IS NOT NULL"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %s", want, s)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	// AND binds tighter: (a=1) OR ((b=2) AND (c=3))
	top, ok := sel.Where.(*BinExpr)
	if !ok || top.Op != "OR" {
		t.Fatalf("top op wrong: %s", sel.Where)
	}
	sel2 := mustSelect(t, "SELECT 2 + 3 * 4 FROM t")
	if got := sel2.Items[0].Expr.String(); got != "(2 + (3 * 4))" {
		t.Errorf("arith precedence wrong: %s", got)
	}
	sel3 := mustSelect(t, "SELECT (2 + 3) * 4 FROM t")
	if got := sel3.Items[0].Expr.String(); got != "((2 + 3) * 4)" {
		t.Errorf("parens wrong: %s", got)
	}
}

func TestParseNotPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM t WHERE NOT a = 1 AND b = 2")
	top, ok := sel.Where.(*BinExpr)
	if !ok || top.Op != "AND" {
		t.Fatalf("NOT should bind tighter than AND: %s", sel.Where)
	}
	if _, ok := top.L.(*UnExpr); !ok {
		t.Errorf("left side should be NOT expr: %s", top.L)
	}
}

func TestParseParams(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM t WHERE a >= ? AND a <= ?")
	n := 0
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		case *ParamRef:
			if x.Index != n {
				t.Errorf("param index %d, want %d", x.Index, n)
			}
			n++
		}
	}
	walk(sel.Where)
	if n != 2 {
		t.Errorf("found %d params", n)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if ins.Table != "t" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert wrong: %+v", ins)
	}
	st2, err := Parse("INSERT INTO t VALUES (1, NULL, TRUE, -2.5)")
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.(*InsertStmt).Rows[0]) != 4 {
		t.Error("insert without cols wrong")
	}
}

func TestParseCreateTableAndIndex(t *testing.T) {
	st, err := Parse("CREATE TABLE t (id int, name varchar, price float, d date)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if len(ct.Cols) != 4 || ct.Cols[3].Type != "DATE" {
		t.Errorf("create table wrong: %+v", ct)
	}
	st2, err := Parse("CREATE UNIQUE INDEX i ON t (id, name)")
	if err != nil {
		t.Fatal(err)
	}
	ci := st2.(*CreateIndexStmt)
	if !ci.Unique || ci.Table != "t" || len(ci.Cols) != 2 {
		t.Errorf("create index wrong: %+v", ci)
	}
	st3, err := Parse("DROP INDEX i ON t")
	if err != nil {
		t.Fatal(err)
	}
	if di := st3.(*DropIndexStmt); di.Name != "i" || di.Table != "t" {
		t.Errorf("drop index wrong: %+v", di)
	}
}

func TestParseExplainAnalyzeDeleteUpdate(t *testing.T) {
	st, err := Parse("EXPLAIN SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*ExplainStmt).Inner.(*SelectStmt); !ok {
		t.Error("explain inner wrong")
	}
	st2, err := Parse("ANALYZE t")
	if err != nil || st2.(*AnalyzeStmt).Table != "t" {
		t.Errorf("analyze wrong: %v %v", st2, err)
	}
	st3, err := Parse("DELETE FROM t WHERE a = 1")
	if err != nil || st3.(*DeleteStmt).Where == nil {
		t.Errorf("delete wrong: %v %v", st3, err)
	}
	st4, err := Parse("UPDATE t SET a = 2, b = b + 1 WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	up := st4.(*UpdateStmt)
	if len(up.Set) != 2 || up.Order[0] != "a" || up.Where == nil {
		t.Errorf("update wrong: %+v", up)
	}
}

func TestParseExplainAnalyzeSelect(t *testing.T) {
	st, err := Parse("EXPLAIN ANALYZE SELECT a FROM t WHERE b = 1")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*ExplainStmt)
	if !ok || !ex.Analyze {
		t.Fatalf("want ExplainStmt{Analyze:true}, got %#v", st)
	}
	if _, ok := ex.Inner.(*SelectStmt); !ok {
		t.Fatalf("inner is %T, want SelectStmt", ex.Inner)
	}

	// Plain EXPLAIN of a SELECT stays non-analyze.
	st2, err := Parse("EXPLAIN SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if ex2 := st2.(*ExplainStmt); ex2.Analyze {
		t.Fatal("plain EXPLAIN must not set Analyze")
	}

	// EXPLAIN ANALYZE <table> still means "explain the ANALYZE statement".
	st3, err := Parse("EXPLAIN ANALYZE t")
	if err != nil {
		t.Fatal(err)
	}
	ex3 := st3.(*ExplainStmt)
	if ex3.Analyze {
		t.Fatal("EXPLAIN ANALYZE t must not set Analyze")
	}
	if an, ok := ex3.Inner.(*AnalyzeStmt); !ok || an.Table != "t" {
		t.Fatalf("inner is %#v, want AnalyzeStmt{t}", ex3.Inner)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"SELECT FROM t",
		"SELECT 1 FROM",
		"SELECT 1 FROM t WHERE",
		"SELECT 1 FROM t GROUP",
		"INSERT INTO",
		"CREATE TABLE t",
		"CREATE UNIQUE TABLE t (a int)",
		"SELECT 1 FROM t LIMIT x",
		"SELECT 1 FROM t; SELECT 2",
		"SELECT a LIKE 5 FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT 1 FROM t;"); err != nil {
		t.Errorf("trailing semicolon should parse: %v", err)
	}
}

func TestParseCountDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(DISTINCT a), SUM(DISTINCT b) FROM t")
	f0 := sel.Items[0].Expr.(*FuncExpr)
	f1 := sel.Items[1].Expr.(*FuncExpr)
	if !f0.Distinct || f0.Name != "COUNT" {
		t.Errorf("COUNT(DISTINCT) wrong: %+v", f0)
	}
	if !f1.Distinct || f1.Name != "SUM" {
		t.Errorf("SUM(DISTINCT) wrong: %+v", f1)
	}
	if !strings.Contains(f0.String(), "DISTINCT") {
		t.Errorf("render wrong: %s", f0)
	}
}

func TestParseInSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b > 3)")
	in, ok := sel.Where.(*InExpr)
	if !ok || in.Sub == nil || in.Neg {
		t.Fatalf("IN subquery wrong: %+v", sel.Where)
	}
	if in.Sub.Where == nil || len(in.Sub.Items) != 1 {
		t.Errorf("subquery body wrong: %+v", in.Sub)
	}
	sel2 := mustSelect(t, "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)")
	in2 := sel2.Where.(*InExpr)
	if !in2.Neg || in2.Sub == nil {
		t.Errorf("NOT IN subquery wrong: %+v", in2)
	}
	if !strings.Contains(in2.String(), "<subquery>") {
		t.Errorf("render wrong: %s", in2)
	}
	if _, err := Parse("SELECT a FROM t WHERE a IN (SELECT b FROM u"); err == nil {
		t.Error("unterminated subquery should fail")
	}
}

func TestParseDateLiteralAndFunc(t *testing.T) {
	sel := mustSelect(t, "SELECT ABS(x), DATE(100) FROM t WHERE d < DATE(200)")
	if f, ok := sel.Items[0].Expr.(*FuncExpr); !ok || f.Name != "ABS" {
		t.Errorf("func parse wrong: %+v", sel.Items[0].Expr)
	}
	if f, ok := sel.Items[1].Expr.(*FuncExpr); !ok || f.Name != "DATE" {
		t.Errorf("date parse wrong: %+v", sel.Items[1].Expr)
	}
}
