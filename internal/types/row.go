package types

import (
	"fmt"
	"strings"
)

// Row is a tuple of values. Operators pass rows by slice; ownership follows
// the Volcano convention: a row returned by Next is valid until the next
// call, so consumers that buffer must Clone.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a parenthesized value list.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Concat returns the concatenation of two rows (used by joins).
func Concat(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Column describes one attribute of a schema: its (optionally qualified)
// name and kind.
type Column struct {
	Table string // owning table or alias; empty for computed columns
	Name  string
	Kind  Kind
}

// QualifiedName returns table.name, or just name if unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns describing the rows an operator
// produces.
type Schema []Column

// ColIndex resolves a possibly qualified column reference to an index in the
// schema. It returns -1 if the name is not found and -2 if an unqualified
// name is ambiguous.
func (s Schema) ColIndex(table, name string) int {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" {
			if strings.EqualFold(c.Table, table) {
				return i
			}
			continue
		}
		if found >= 0 {
			return -2
		}
		found = i
	}
	return found
}

// MustColIndex is ColIndex that panics on failure; for internal plan
// construction where names were already validated.
func (s Schema) MustColIndex(table, name string) int {
	i := s.ColIndex(table, name)
	if i < 0 {
		panic(fmt.Sprintf("types: column %q.%q not in schema %v", table, name, s))
	}
	return i
}

// Concat returns the concatenation of two schemas (used by joins).
func (s Schema) Concat(other Schema) Schema {
	out := make(Schema, 0, len(s)+len(other))
	out = append(out, s...)
	return append(out, other...)
}

// WithTable returns a copy of the schema with every column re-qualified by
// the given table alias.
func (s Schema) WithTable(table string) Schema {
	out := make(Schema, len(s))
	for i, c := range s {
		c.Table = table
		out[i] = c
	}
	return out
}

// Names returns the qualified column names, for EXPLAIN and result headers.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.QualifiedName()
	}
	return out
}
