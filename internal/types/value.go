// Package types defines the value, row and schema representations shared by
// every layer of the rqp engine: storage, indexing, expression evaluation,
// optimization and execution.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds. Date is stored as days since the epoch so that
// range predicates over dates behave exactly like integer ranges.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOL"
	case KindDate:
		return "DATE"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromName parses a SQL type name into a Kind.
func KindFromName(name string) (Kind, bool) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, true
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return KindFloat, true
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return KindString, true
	case "BOOL", "BOOLEAN":
		return KindBool, true
	case "DATE":
		return KindDate, true
	}
	return KindNull, false
}

// Value is a compact tagged union. Numeric payloads live in I or F, strings
// in S. Bool uses I (0/1) and Date uses I (days since epoch).
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{K: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// Date returns a date value expressed as days since the epoch.
func Date(days int64) Value { return Value{K: KindDate, I: days} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsTrue reports whether v is a true boolean. NULL and false are both not true.
func (v Value) IsTrue() bool { return v.K == KindBool && v.I == 1 }

// AsBool converts to a Go bool; NULL maps to false.
func (v Value) AsBool() bool { return v.IsTrue() }

// AsInt returns the integer payload, converting floats by truncation.
func (v Value) AsInt() int64 {
	if v.K == KindFloat {
		return int64(v.F)
	}
	return v.I
}

// AsFloat returns the numeric payload as float64.
func (v Value) AsFloat() float64 {
	if v.K == KindFloat {
		return v.F
	}
	return float64(v.I)
}

// Numeric reports whether the value participates in arithmetic.
func (v Value) Numeric() bool {
	return v.K == KindInt || v.K == KindFloat || v.K == KindDate
}

// String renders the value for display and EXPLAIN output.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "'" + v.S + "'"
	case KindBool:
		if v.I == 1 {
			return "TRUE"
		}
		return "FALSE"
	case KindDate:
		return fmt.Sprintf("DATE(%d)", v.I)
	}
	return "?"
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// (int, float, date) compare numerically against each other; strings and
// bools compare within their own kind. Cross-kind non-numeric comparisons
// order by kind tag so that sorting heterogeneous data is total.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == KindNull && b.K == KindNull:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.Numeric() && b.Numeric() {
		if a.K == KindFloat || b.K == KindFloat {
			af, bf := a.AsFloat(), b.AsFloat()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindBool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
	}
	return 0
}

// Equal reports SQL equality semantics minus NULL handling (NULL==NULL here;
// predicate evaluation handles three-valued logic above this level).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports a < b under Compare.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Hash returns a stable hash of the value, used by hash joins and hash
// aggregation. Ints, dates and integral floats hash identically so that
// numeric equality implies hash equality.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	switch v.K {
	case KindNull:
		buf[0] = 0xff
		h.Write(buf[:1])
	case KindString:
		h.Write([]byte{2})
		h.Write([]byte(v.S))
	case KindBool:
		h.Write([]byte{3, byte(v.I)})
	default: // numeric kinds hash through float64 canonical form when fractional
		f := v.AsFloat()
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			u := uint64(int64(f))
			for i := 0; i < 8; i++ {
				buf[i] = byte(u >> (8 * i))
			}
			h.Write([]byte{1})
			h.Write(buf[:])
		} else {
			u := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				buf[i] = byte(u >> (8 * i))
			}
			h.Write([]byte{4})
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// HashRow hashes a tuple of values (e.g. a composite join key).
func HashRow(vs []Value) uint64 {
	h := uint64(1469598103934665603) // fnv offset basis
	for _, v := range vs {
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h
}
