package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareNumericCrossKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Date(10), Int(10), 0},
		{Date(9), Date(10), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := func() Value {
		switch rng.Intn(5) {
		case 0:
			return Int(rng.Int63n(100) - 50)
		case 1:
			return Float(rng.Float64()*100 - 50)
		case 2:
			return Str(string(rune('a' + rng.Intn(26))))
		case 3:
			return Bool(rng.Intn(2) == 0)
		default:
			return Null()
		}
	}
	for i := 0; i < 2000; i++ {
		a, b := vals(), vals()
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("Compare not antisymmetric for %v, %v", a, b)
		}
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := Int(a), Float(float64(b)), Date(c)
		tri := []Value{va, vb, vc}
		for _, x := range tri {
			for _, y := range tri {
				for _, z := range tri {
					if Compare(x, y) <= 0 && Compare(y, z) <= 0 && Compare(x, z) > 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashEqualityConsistency(t *testing.T) {
	// numeric equality across kinds must imply hash equality
	pairs := [][2]Value{
		{Int(42), Float(42.0)},
		{Int(7), Date(7)},
		{Float(3.0), Date(3)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("expected %v == %v", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("hash mismatch for equal values %v, %v", p[0], p[1])
		}
	}
	if Int(1).Hash() == Int(2).Hash() {
		t.Error("distinct ints should (almost surely) hash differently")
	}
}

func TestHashRowOrderSensitive(t *testing.T) {
	a := []Value{Int(1), Int(2)}
	b := []Value{Int(2), Int(1)}
	if HashRow(a) == HashRow(b) {
		t.Error("HashRow should be order sensitive")
	}
	if HashRow(a) != HashRow([]Value{Int(1), Int(2)}) {
		t.Error("HashRow should be deterministic")
	}
}

func TestKindFromName(t *testing.T) {
	cases := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "BigInt": KindInt,
		"varchar": KindString, "TEXT": KindString,
		"float": KindFloat, "DOUBLE": KindFloat,
		"bool": KindBool, "date": KindDate,
	}
	for name, want := range cases {
		got, ok := KindFromName(name)
		if !ok || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := KindFromName("blob"); ok {
		t.Error("unexpected kind for blob")
	}
}

func TestValueStringAndAccessors(t *testing.T) {
	if Int(5).String() != "5" || Str("x").String() != "'x'" || Null().String() != "NULL" {
		t.Error("String rendering wrong")
	}
	if !Bool(true).IsTrue() || Bool(false).IsTrue() || Null().IsTrue() {
		t.Error("IsTrue wrong")
	}
	if Float(2.9).AsInt() != 2 || Int(3).AsFloat() != 3.0 {
		t.Error("conversions wrong")
	}
}

func TestSchemaColIndex(t *testing.T) {
	s := Schema{
		{Table: "t", Name: "a", Kind: KindInt},
		{Table: "t", Name: "b", Kind: KindInt},
		{Table: "u", Name: "a", Kind: KindInt},
	}
	if s.ColIndex("t", "a") != 0 {
		t.Error("qualified lookup failed")
	}
	if s.ColIndex("", "b") != 1 {
		t.Error("unqualified unique lookup failed")
	}
	if s.ColIndex("", "a") != -2 {
		t.Error("ambiguous lookup should return -2")
	}
	if s.ColIndex("t", "z") != -1 {
		t.Error("missing lookup should return -1")
	}
	if s.ColIndex("U", "A") != 2 {
		t.Error("lookup should be case-insensitive")
	}
}

func TestRowCloneAndConcat(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].I != 1 {
		t.Error("Clone must not alias")
	}
	j := Concat(Row{Int(1)}, Row{Int(2), Int(3)})
	if len(j) != 3 || j[2].I != 3 {
		t.Errorf("Concat wrong: %v", j)
	}
}

func TestSchemaWithTableAndNames(t *testing.T) {
	s := Schema{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindString}}
	q := s.WithTable("t")
	if q[0].Table != "t" || s[0].Table != "" {
		t.Error("WithTable must copy")
	}
	names := q.Names()
	if names[0] != "t.a" || names[1] != "t.b" {
		t.Errorf("Names wrong: %v", names)
	}
}
