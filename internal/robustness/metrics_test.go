package robustness

import (
	"math"
	"testing"

	"rqp/internal/plan"
)

func mkNode(est, actual float64, kids ...plan.Node) plan.Node {
	b := &plan.Base{}
	b.Prop = plan.Props{EstRows: est, ActualRows: actual}
	b.Kids = kids
	b.Title = "n"
	return &plan.FilterNode{Base: *b}
}

func TestMetric1(t *testing.T) {
	// |100-200|/200 + |50-50|/50 = 0.5
	root := mkNode(100, 200, mkNode(50, 50))
	if got := Metric1(root); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Metric1 = %v, want 0.5", got)
	}
	// Unexecuted nodes (actual = -1) are skipped.
	root2 := mkNode(100, -1)
	if Metric1(root2) != 0 {
		t.Error("unexecuted nodes must be skipped")
	}
}

func TestMetric2And3(t *testing.T) {
	plans := []plan.Node{mkNode(100, 200), mkNode(10, 100)}
	want := 0.5 + 0.9
	if got := Metric2(plans); math.Abs(got-want) > 1e-9 {
		t.Errorf("Metric2 = %v, want %v", got, want)
	}
	if got := Metric3(200, []float64{100, 300, 150}); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Metric3 = %v, want 0.5", got)
	}
	if Metric3(100, []float64{100}) != 0 {
		t.Error("choosing the best plan should score 0")
	}
	if Metric3(0, nil) != 0 {
		t.Error("degenerate Metric3 should be 0")
	}
}

func TestSmoothness(t *testing.T) {
	if s := Smoothness([]float64{5, 5, 5, 5}); s != 0 {
		t.Errorf("flat series should have S=0, got %v", s)
	}
	rough := Smoothness([]float64{1, 100, 1, 100})
	smooth := Smoothness([]float64{50, 51, 49, 50})
	if rough <= smooth {
		t.Errorf("rough %v should exceed smooth %v", rough, smooth)
	}
	if Smoothness(nil) != 0 {
		t.Error("empty series should be 0")
	}
}

func TestCQ(t *testing.T) {
	// both off by 50% relative error → geomean 0.5
	got := CQ([]float64{50, 150}, []float64{100, 100})
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CQ = %v, want 0.5", got)
	}
	// perfect estimates floor at epsilon, not zero
	if CQ([]float64{100}, []float64{100}) <= 0 {
		t.Error("perfect CQ should be tiny but positive")
	}
	if CQ(nil, nil) != 0 {
		t.Error("empty CQ should be 0")
	}
}

func TestQErrorSummary(t *testing.T) {
	maxQ, geoQ := QErrorSummary([]float64{10, 1000}, []float64{100, 100})
	if maxQ != 10 {
		t.Errorf("max q-error = %v, want 10", maxQ)
	}
	if math.Abs(geoQ-10) > 1e-9 { // sqrt(10*10)
		t.Errorf("geo q-error = %v, want 10", geoQ)
	}
}

func TestExtrinsicVariability(t *testing.T) {
	if v := ExtrinsicVariability(150, 100); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("extrinsic = %v, want 0.5", v)
	}
	if ExtrinsicVariability(90, 100) != 0 {
		t.Error("beating the ideal clamps to 0")
	}
	if ExtrinsicVariability(100, 0) != 0 {
		t.Error("degenerate ideal should be 0")
	}
}

func TestSummarize(t *testing.T) {
	q := Summarize([]float64{1, 2, 3, 4, 5})
	if q.Min != 1 || q.Median != 3 || q.Max != 5 {
		t.Errorf("quartiles wrong: %+v", q)
	}
	if q.Q1 != 2 || q.Q3 != 4 {
		t.Errorf("q1/q3 wrong: %+v", q)
	}
	if Summarize(nil) != (Quartiles{}) {
		t.Error("empty summary should be zero")
	}
	if q.String() == "" {
		t.Error("string render empty")
	}
}

func TestSpeedupSeries(t *testing.T) {
	ids := []string{"a", "b", "c"}
	base := []float64{100, 100, 100}
	treat := []float64{50, 100, 200}
	series, regressions := SpeedupSeries(ids, base, treat, 1.0)
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1", regressions)
	}
	if series[0].ID != "a" || series[2].ID != "c" {
		t.Errorf("ordering wrong: %+v", series)
	}
	if series[0].Ratio != 2 || series[2].Ratio != 0.5 {
		t.Errorf("ratios wrong: %+v", series)
	}
}

func TestScatter(t *testing.T) {
	pts := Scatter([]string{"a"}, []float64{10}, []float64{5})
	if len(pts) != 1 || pts[0].X != 10 || pts[0].Y != 5 {
		t.Errorf("scatter wrong: %+v", pts)
	}
}

func TestTractorPull(t *testing.T) {
	levels := [][]float64{
		{10, 11, 10},    // stable
		{20, 21, 22},    // stable
		{30, 300, 3000}, // wildly variable -> fails here
	}
	score, detail := TractorPull(levels, 0.5, 1e6)
	if score != 2 {
		t.Errorf("score = %d, want 2 (detail %v)", score, detail)
	}
	if len(detail) != 3 {
		t.Errorf("detail rows = %d", len(detail))
	}
	// mean ceiling also stops the pull
	score2, _ := TractorPull([][]float64{{10}, {2000}}, 10, 100)
	if score2 != 1 {
		t.Errorf("mean ceiling score = %d, want 1", score2)
	}
}

func TestAdvisorRobustness(t *testing.T) {
	if got := AdvisorRobustness(100, []float64{110, 150, 90}); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("advisor robustness = %v, want 0.5", got)
	}
	if AdvisorRobustness(100, []float64{90, 80}) != 0 {
		t.Error("improvements should clamp to 0")
	}
}

func TestPerfP(t *testing.T) {
	if PerfP(10, 15) != 5 || PerfP(15, 10) != 5 {
		t.Error("PerfP should be absolute difference")
	}
}
