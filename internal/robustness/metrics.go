// Package robustness implements every metric the Dagstuhl report's breakout
// sessions define: the cardinality-error risk metrics Metric1/2/3 (Nica et
// al.), the performance P(q) and smoothness S(Q) metrics (Sattler et al.),
// the geometric-mean cardinality error C(Q), q-error summaries (Moerkotte
// et al.), intrinsic/extrinsic variability (Agrawal et al.), the tractor-
// pull score (Kersten et al.), and the summary statistics behind the POP
// figures (quartile boxes, ordered speedups, scatter pairs).
package robustness

import (
	"fmt"
	"math"
	"sort"

	"rqp/internal/plan"
	"rqp/internal/stats"
)

// Metric1 sums, over all physical operators of an *executed* plan, the
// relative cardinality estimation error |est − actual| / actual.
func Metric1(root plan.Node) float64 {
	total := 0.0
	plan.Walk(root, func(n plan.Node) {
		p := n.Props()
		if p.ActualRows < 0 {
			return
		}
		total += math.Abs(p.EstRows-p.ActualRows) / math.Max(p.ActualRows, 1)
	})
	return total
}

// Metric2 sums Metric1 over all enumerated (and executed) plans — the
// "errors the optimizer was exposed to while pruning" variant.
func Metric2(roots []plan.Node) float64 {
	total := 0.0
	for _, r := range roots {
		total += Metric1(r)
	}
	return total
}

// Metric3 compares the best runtime among all enumerated plans against the
// runtime of the plan the optimizer actually chose:
// |RunTimeOpt − RunTimeBest| / RunTimeBest.
func Metric3(runtimeChosen float64, runtimesAll []float64) float64 {
	if len(runtimesAll) == 0 || runtimeChosen <= 0 {
		return 0
	}
	best := runtimesAll[0]
	for _, r := range runtimesAll[1:] {
		if r < best {
			best = r
		}
	}
	return math.Abs(best-runtimeChosen) / runtimeChosen
}

// PerfP is Sattler et al.'s per-query performance metric: the divergence of
// the measured execution time from the optimal time, P(q) = |O(q) − E(q)|.
func PerfP(optimal, measured float64) float64 {
	return math.Abs(optimal - measured)
}

// Smoothness is S(Q): the coefficient of variation of the per-query
// performance metric over a parameterized query family. Lower is smoother
// (more robust).
func Smoothness(perf []float64) float64 {
	if len(perf) == 0 {
		return 0
	}
	mean := 0.0
	for _, p := range perf {
		mean += p
	}
	mean /= float64(len(perf))
	if mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, p := range perf {
		varsum += (p - mean) * (p - mean)
	}
	return math.Sqrt(varsum/float64(len(perf))) / mean
}

// CQ is the geometric mean of relative cardinality errors |a−e|/a over a
// query set (errors of exactly 0 are floored at epsilon so the geomean
// stays defined, as the session's definition implies).
func CQ(estimated, actual []float64) float64 {
	if len(estimated) != len(actual) || len(estimated) == 0 {
		return 0
	}
	const eps = 1e-6
	logSum := 0.0
	for i := range estimated {
		a := math.Max(actual[i], 1)
		e := math.Abs(actual[i]-estimated[i]) / a
		if e < eps {
			e = eps
		}
		logSum += math.Log(e)
	}
	return math.Exp(logSum / float64(len(estimated)))
}

// QErrorSummary reports max and geometric-mean q-error over pairs.
func QErrorSummary(estimated, actual []float64) (maxQ, geoQ float64) {
	if len(estimated) == 0 {
		return 0, 0
	}
	logSum := 0.0
	for i := range estimated {
		q := stats.QError(estimated[i], actual[i])
		if q > maxQ {
			maxQ = q
		}
		logSum += math.Log(q)
	}
	return maxQ, math.Exp(logSum / float64(len(estimated)))
}

// ExtrinsicVariability implements the end-to-end robustness definition:
// divergence between the produced plan's execution time and the ideal
// plan's time in the same environment — the variability the system is
// responsible for (intrinsic variability, the ideal time itself, is the
// cost any system must pay).
func ExtrinsicVariability(producedTime, idealTime float64) float64 {
	if idealTime <= 0 {
		return 0
	}
	return math.Max(0, producedTime-idealTime) / idealTime
}

// Quartiles is the five-number summary backing Figure 1's box ranges.
type Quartiles struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary.
func Summarize(xs []float64) Quartiles {
	if len(xs) == 0 {
		return Quartiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		pos := p * float64(len(s)-1)
		i := int(pos)
		frac := pos - float64(i)
		if i+1 < len(s) {
			return s[i]*(1-frac) + s[i+1]*frac
		}
		return s[i]
	}
	return Quartiles{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

// String renders the summary as a Figure-1-style row.
func (q Quartiles) String() string {
	return fmt.Sprintf("min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f", q.Min, q.Q1, q.Median, q.Q3, q.Max)
}

// Speedup is one Figure-2 data point.
type Speedup struct {
	ID    string
	Ratio float64 // baseline / treated; < 1 is a regression
}

// SpeedupSeries computes per-query speedups ordered by decreasing
// improvement (Figure 2) and counts regressions below threshold.
func SpeedupSeries(ids []string, baseline, treated []float64, regressionBelow float64) (series []Speedup, regressions int) {
	for i := range ids {
		r := math.Inf(1)
		if treated[i] > 0 {
			r = baseline[i] / treated[i]
		}
		series = append(series, Speedup{ID: ids[i], Ratio: r})
		if r < regressionBelow {
			regressions++
		}
	}
	sort.SliceStable(series, func(i, j int) bool { return series[i].Ratio > series[j].Ratio })
	return series, regressions
}

// ScatterPoint is one Figure-3 pair (x = baseline time, y = treated time).
type ScatterPoint struct {
	ID   string
	X, Y float64
}

// Scatter pairs the two series.
func Scatter(ids []string, baseline, treated []float64) []ScatterPoint {
	out := make([]ScatterPoint, len(ids))
	for i := range ids {
		out[i] = ScatterPoint{ID: ids[i], X: baseline[i], Y: treated[i]}
	}
	return out
}

// TractorPull scores an escalating workload: levels are attempted in order
// and the run stops when the response-time coefficient of variation within
// a level exceeds maxCV or a level's mean response exceeds maxMean. The
// score is the number of levels survived — "how much weight the tractor
// pulled".
func TractorPull(levels [][]float64, maxCV, maxMean float64) (score int, detail []string) {
	for li, times := range levels {
		if len(times) == 0 {
			break
		}
		mean := 0.0
		for _, t := range times {
			mean += t
		}
		mean /= float64(len(times))
		cv := Smoothness(times)
		detail = append(detail, fmt.Sprintf("level %d: mean=%.1f cv=%.3f", li+1, mean, cv))
		if cv > maxCV || mean > maxMean {
			return li, detail
		}
		score = li + 1
	}
	return score, detail
}

// AdvisorRobustness is Graefe et al.'s physical-design-advisor metric: the
// maximum degradation of perturbed workloads relative to the design-time
// workload, max_i (Ti − T0) / T0.
func AdvisorRobustness(t0 float64, perturbed []float64) float64 {
	worst := 0.0
	for _, ti := range perturbed {
		if d := (ti - t0) / t0; d > worst {
			worst = d
		}
	}
	return worst
}
