// Package catalog maintains the database schema: tables, columns, indexes
// and their statistics. It ties the storage, index and stats substrates
// together for the optimizer and executor.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rqp/internal/index"
	"rqp/internal/stats"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// Index describes one secondary index over a table.
type Index struct {
	Name    string
	Cols    []int // column positions, leading first
	Unique  bool
	Tree    *index.BTree
	Dropped bool
}

// ColNames returns the index column names given the owning table.
func (ix *Index) ColNames(t *Table) []string {
	out := make([]string, len(ix.Cols))
	for i, c := range ix.Cols {
		out[i] = t.Schema[c].Name
	}
	return out
}

// Table is one base relation.
type Table struct {
	Name    string
	Schema  types.Schema
	Heap    *storage.Heap
	Indexes []*Index
	Stats   *stats.TableStats
	// modCount counts row modifications since the last ANALYZE; automatic
	// statistics maintenance triggers on it.
	modCount int64
	// col is the table's column-major snapshot (see storage.ColumnStore),
	// nil when the table has not been loaded columnar. Any row modification
	// drops it: the snapshot is read-optimized and rebuilt by BuildColumnar,
	// and executors fall back to the heap while it is absent.
	col atomic.Pointer[storage.ColumnStore]
	// part is the table's physical hash partitioning (see PartitionTable),
	// nil when unpartitioned. Row modifications drop it: inserts append to
	// the heap's tail page, which would break the shard-major page layout
	// the co-located join path relies on.
	part atomic.Pointer[Partitioning]
}

// ModCount returns modifications since the last ANALYZE.
func (t *Table) ModCount() int64 { return atomic.LoadInt64(&t.modCount) }

func (t *Table) bumpMods() {
	atomic.AddInt64(&t.modCount, 1)
	t.col.Store(nil)  // DML invalidates the columnar snapshot
	t.part.Store(nil) // ... and the shard-major partitioned layout
}

// Col returns the table's columnar snapshot, or nil when none is current.
func (t *Table) Col() *storage.ColumnStore { return t.col.Load() }

// ColIndex resolves a column by name within the table.
func (t *Table) ColIndex(name string) int {
	return t.Schema.ColIndex("", name)
}

// IndexOn returns the first live index whose leading column is col.
func (t *Table) IndexOn(col int) *Index {
	for _, ix := range t.Indexes {
		if !ix.Dropped && len(ix.Cols) > 0 && ix.Cols[0] == col {
			return ix
		}
	}
	return nil
}

// IndexNamed returns the index with the given name, or nil.
func (t *Table) IndexNamed(name string) *Index {
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, name) && !ix.Dropped {
			return ix
		}
	}
	return nil
}

// Catalog is the schema registry.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// CreateTable registers a new table with the given schema.
func (c *Catalog) CreateTable(name string, schema types.Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	qualified := schema.WithTable(name)
	t := &Table{
		Name:   name,
		Schema: qualified,
		Heap:   storage.NewHeap(),
		Stats:  stats.NewTableStats(len(schema)),
	}
	c.tables[key] = t
	return t, nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateIndex builds a B+ tree over the named columns of the table and
// registers it. The build reads every row (charged to clk if non-nil).
func (c *Catalog) CreateIndex(clk *storage.Clock, tableName, indexName string, colNames []string, unique bool) (*Index, error) {
	t, ok := c.Table(tableName)
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", tableName)
	}
	if t.IndexNamed(indexName) != nil {
		return nil, fmt.Errorf("catalog: index %q already exists on %q", indexName, tableName)
	}
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		ci := t.ColIndex(cn)
		if ci < 0 {
			return nil, fmt.Errorf("catalog: column %q not in table %q", cn, tableName)
		}
		cols[i] = ci
	}
	ix := &Index{Name: indexName, Cols: cols, Unique: unique, Tree: index.New(len(cols))}
	t.Heap.Scan(clk, func(rid storage.RID, r types.Row) bool {
		ix.Tree.Insert(extractKey(r, cols), rid)
		return true
	})
	c.mu.Lock()
	t.Indexes = append(t.Indexes, ix)
	c.mu.Unlock()
	return ix, nil
}

// DropIndex marks an index dropped.
func (c *Catalog) DropIndex(tableName, indexName string) error {
	t, ok := c.Table(tableName)
	if !ok {
		return fmt.Errorf("catalog: table %q does not exist", tableName)
	}
	ix := t.IndexNamed(indexName)
	if ix == nil {
		return fmt.Errorf("catalog: index %q does not exist on %q", indexName, tableName)
	}
	ix.Dropped = true
	return nil
}

func extractKey(r types.Row, cols []int) []types.Value {
	key := make([]types.Value, len(cols))
	for i, c := range cols {
		key[i] = r[c]
	}
	return key
}

// Insert adds a row to the table, maintaining all indexes.
func (c *Catalog) Insert(clk *storage.Clock, t *Table, r types.Row) storage.RID {
	t.bumpMods()
	rid := t.Heap.Insert(clk, r)
	for _, ix := range t.Indexes {
		if ix.Dropped {
			continue
		}
		ix.Tree.Insert(extractKey(r, ix.Cols), rid)
	}
	return rid
}

// Delete removes a row by RID, maintaining indexes.
func (c *Catalog) Delete(clk *storage.Clock, t *Table, rid storage.RID) bool {
	r, ok := t.Heap.Get(nil, rid)
	if !ok {
		return false
	}
	if !t.Heap.Delete(clk, rid) {
		return false
	}
	t.bumpMods()
	for _, ix := range t.Indexes {
		if ix.Dropped {
			continue
		}
		ix.Tree.Delete(extractKey(r, ix.Cols), rid)
	}
	return true
}

// Update replaces the row at rid, maintaining indexes whose key columns
// changed.
func (c *Catalog) Update(clk *storage.Clock, t *Table, rid storage.RID, newRow types.Row) bool {
	old, ok := t.Heap.Get(nil, rid)
	if !ok {
		return false
	}
	if !t.Heap.Update(clk, rid, newRow) {
		return false
	}
	t.bumpMods()
	for _, ix := range t.Indexes {
		if ix.Dropped {
			continue
		}
		oldKey := extractKey(old, ix.Cols)
		newKey := extractKey(newRow, ix.Cols)
		same := true
		for i := range oldKey {
			if types.Compare(oldKey[i], newKey[i]) != 0 {
				same = false
				break
			}
		}
		if same {
			continue
		}
		ix.Tree.Delete(oldKey, rid)
		ix.Tree.Insert(newKey, rid)
	}
	return true
}

// BuildColumnar (re)builds the table's column-major snapshot by scanning the
// heap, with blockSize values per column block (storage.DefaultColBlock when
// <= 0). The snapshot is immutable; subsequent DML drops it and queries fall
// back to the heap until it is rebuilt.
func (c *Catalog) BuildColumnar(t *Table, blockSize int) *storage.ColumnStore {
	var rows []types.Row
	t.Heap.Scan(nil, func(_ storage.RID, r types.Row) bool {
		rows = append(rows, r)
		return true
	})
	cs := storage.BuildColumnStore(rows, len(t.Schema), blockSize)
	t.col.Store(cs)
	return cs
}

// AnalyzeTable recomputes statistics for a table by scanning it.
func (c *Catalog) AnalyzeTable(t *Table, buckets int) {
	var rows []types.Row
	t.Heap.Scan(nil, func(_ storage.RID, r types.Row) bool {
		rows = append(rows, r)
		return true
	})
	kinds := make([]types.Kind, len(t.Schema))
	for i, col := range t.Schema {
		kinds[i] = col.Kind
	}
	ts := stats.Analyze(len(rows), len(t.Schema), kinds, func(r, col int) types.Value {
		return rows[r][col]
	}, buckets)
	c.mu.Lock()
	t.Stats = ts
	c.mu.Unlock()
	atomic.StoreInt64(&t.modCount, 0)
}

// AnalyzeGroup computes joint-NDV correlation statistics for a column group.
func (c *Catalog) AnalyzeGroup(t *Table, colNames []string) error {
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		ci := t.ColIndex(cn)
		if ci < 0 {
			return fmt.Errorf("catalog: column %q not in table %q", cn, t.Name)
		}
		cols[i] = ci
	}
	var rows []types.Row
	t.Heap.Scan(nil, func(_ storage.RID, r types.Row) bool {
		rows = append(rows, r)
		return true
	})
	t.Stats.AnalyzeGroup(cols, len(rows), func(r, col int) types.Value { return rows[r][col] })
	return nil
}
