package catalog

import (
	"fmt"

	"rqp/internal/storage"
	"rqp/internal/types"
)

// Partitioning records a table's physical hash partitioning for sharded
// execution. Rows live in the heap shard-major: all of shard 0's pages,
// then shard 1's, and so on, with page-aligned boundaries so a page-range
// scan of one shard never reads another shard's rows.
type Partitioning struct {
	Col    int // partitioning column
	Shards int // partition (shard) count
	// PageStart[i] is the first heap page of shard i; PageStart[Shards]
	// is one past the last page. Shard i therefore owns the half-open
	// page range [PageStart[i], PageStart[i+1]).
	PageStart []int
}

// ShardOf returns the shard that owns a value under this partitioning —
// the same hash the executor's shuffle router uses, so a co-located join
// can trust that matching keys land on matching shards.
func (p *Partitioning) ShardOf(v types.Value) int {
	return int(types.HashRow([]types.Value{v}) % uint64(p.Shards))
}

// Part returns the table's physical partitioning, or nil when the table is
// unpartitioned (or a row modification has invalidated the layout).
func (t *Table) Part() *Partitioning { return t.part.Load() }

// PartitionTable rebuilds t's heap hash-partitioned by the named column
// across shards. Rows are bucketed with the exact hash the shuffle router
// uses (types.HashRow over the single partitioning value) and laid out
// shard-major with page-aligned boundaries (the trailing partial page of
// every shard is sealed). The rebuild changes every RID, so tables with
// live secondary indexes are refused — drop them first. Subsequent DML
// invalidates the partitioning (and the columnar snapshot) the same way it
// invalidates statistics: executors fall back to the shuffle path until
// the table is re-partitioned.
func (c *Catalog) PartitionTable(t *Table, colName string, shards int) error {
	if shards < 2 {
		return fmt.Errorf("catalog: partitioning %q needs at least 2 shards, got %d", t.Name, shards)
	}
	col := t.ColIndex(colName)
	if col < 0 {
		return fmt.Errorf("catalog: column %q not in table %q", colName, t.Name)
	}
	for _, ix := range t.Indexes {
		if !ix.Dropped {
			return fmt.Errorf("catalog: cannot partition %q: live index %q (RIDs change; drop indexes first)", t.Name, ix.Name)
		}
	}
	buckets := make([][]types.Row, shards)
	t.Heap.Scan(nil, func(_ storage.RID, r types.Row) bool {
		s := int(types.HashRow([]types.Value{r[col]}) % uint64(shards))
		buckets[s] = append(buckets[s], r)
		return true
	})
	heap := storage.NewHeap()
	pageStart := make([]int, shards+1)
	for s, rows := range buckets {
		pageStart[s] = heap.NumPages()
		for _, r := range rows {
			heap.Insert(nil, r)
		}
		heap.SealPage()
	}
	pageStart[shards] = heap.NumPages()
	c.mu.Lock()
	t.Heap = heap
	c.mu.Unlock()
	t.col.Store(nil) // RIDs and page layout changed; snapshot is stale
	t.part.Store(&Partitioning{Col: col, Shards: shards, PageStart: pageStart})
	return nil
}
