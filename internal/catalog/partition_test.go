package catalog

import (
	"testing"

	"rqp/internal/storage"
	"rqp/internal/types"
)

func partitionTestTable(t *testing.T, rows int) (*Catalog, *Table) {
	t.Helper()
	cat := New()
	tb, err := cat.CreateTable("pt", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "v", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		cat.Insert(nil, tb, types.Row{types.Int(int64(i * 37 % 101)), types.Int(int64(i))})
	}
	return cat, tb
}

func TestPartitionTableLayout(t *testing.T) {
	cat, tb := partitionTestTable(t, 500)
	if err := cat.PartitionTable(tb, "k", 4); err != nil {
		t.Fatal(err)
	}
	p := tb.Part()
	if p == nil || p.Shards != 4 || p.Col != 0 {
		t.Fatalf("partitioning = %+v", p)
	}
	if len(p.PageStart) != 5 || p.PageStart[0] != 0 || p.PageStart[4] != tb.Heap.NumPages() {
		t.Fatalf("page ranges = %v (pages=%d)", p.PageStart, tb.Heap.NumPages())
	}
	// Every row sits inside its key's shard page range, and no row was
	// lost or duplicated by the rebuild.
	total := 0
	for pg := 0; pg < tb.Heap.NumPages(); pg++ {
		page := pg
		tb.Heap.ScanPage(nil, pg, func(_ storage.RID, r types.Row) bool {
			total++
			s := p.ShardOf(r[0])
			if page < p.PageStart[s] || page >= p.PageStart[s+1] {
				t.Fatalf("row key %v on page %d outside shard %d range %v", r[0], page, s, p.PageStart)
			}
			return true
		})
	}
	if total != 500 {
		t.Fatalf("rebuild lost rows: %d != 500", total)
	}
}

func TestPartitionTableRefusals(t *testing.T) {
	cat, tb := partitionTestTable(t, 50)
	if err := cat.PartitionTable(tb, "k", 1); err == nil {
		t.Error("shards=1 should be refused")
	}
	if err := cat.PartitionTable(tb, "nope", 4); err == nil {
		t.Error("unknown column should be refused")
	}
	if _, err := cat.CreateIndex(nil, "pt", "pt_k", []string{"k"}, false); err != nil {
		t.Fatal(err)
	}
	if err := cat.PartitionTable(tb, "k", 4); err == nil {
		t.Error("indexed table should be refused (rebuild breaks RIDs)")
	}
}

func TestPartitionInvalidatedByDML(t *testing.T) {
	cat, tb := partitionTestTable(t, 100)
	if err := cat.PartitionTable(tb, "k", 2); err != nil {
		t.Fatal(err)
	}
	if tb.Part() == nil {
		t.Fatal("partitioning missing after PartitionTable")
	}
	cat.Insert(nil, tb, types.Row{types.Int(1), types.Int(1)})
	if tb.Part() != nil {
		t.Error("DML must drop the shard-major layout guarantee")
	}
}
