package catalog

import (
	"testing"

	"rqp/internal/index"
	"rqp/internal/storage"
	"rqp/internal/types"
)

func testSchema() types.Schema {
	return types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "grp", Kind: types.KindInt},
		{Name: "name", Kind: types.KindString},
	}
}

func TestCreateAndLookupTable(t *testing.T) {
	c := New()
	tb, err := c.CreateTable("t", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema[0].Table != "t" {
		t.Error("schema should be qualified by table name")
	}
	if _, err := c.CreateTable("T", testSchema()); err == nil {
		t.Error("duplicate create (case-insensitive) should fail")
	}
	got, ok := c.Table("T")
	if !ok || got != tb {
		t.Error("case-insensitive lookup failed")
	}
	if len(c.Tables()) != 1 {
		t.Error("Tables() wrong")
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("t"); ok {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("dropping missing table should fail")
	}
}

func loadRows(c *Catalog, tb *Table, n int) {
	for i := 0; i < n; i++ {
		c.Insert(nil, tb, types.Row{
			types.Int(int64(i)),
			types.Int(int64(i % 10)),
			types.Str("row"),
		})
	}
}

func TestInsertMaintainsIndexes(t *testing.T) {
	c := New()
	tb, _ := c.CreateTable("t", testSchema())
	loadRows(c, tb, 50)
	ix, err := c.CreateIndex(nil, "t", "t_grp", []string{"grp"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Len() != 50 {
		t.Fatalf("index built with %d entries", ix.Tree.Len())
	}
	// Inserts after index creation must be reflected.
	c.Insert(nil, tb, types.Row{types.Int(100), types.Int(3), types.Str("new")})
	n := 0
	ix.Tree.Lookup(nil, []types.Value{types.Int(3)}, func(index.Entry) bool { n++; return true })
	if n != 6 { // 5 original (3,13,23,33,43) + 1 new
		t.Errorf("lookup grp=3 found %d, want 6", n)
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	c := New()
	tb, _ := c.CreateTable("t", testSchema())
	var rids []storage.RID
	for i := 0; i < 20; i++ {
		rids = append(rids, c.Insert(nil, tb, types.Row{types.Int(int64(i)), types.Int(int64(i % 2)), types.Str("x")}))
	}
	ix, _ := c.CreateIndex(nil, "t", "t_id", []string{"id"}, true)
	if !c.Delete(nil, tb, rids[5]) {
		t.Fatal("delete failed")
	}
	if c.Delete(nil, tb, rids[5]) {
		t.Error("double delete should fail")
	}
	n := 0
	ix.Tree.Lookup(nil, []types.Value{types.Int(5)}, func(index.Entry) bool { n++; return true })
	if n != 0 {
		t.Errorf("deleted row still indexed")
	}
	if tb.Heap.NumRows() != 19 {
		t.Errorf("heap rows = %d", tb.Heap.NumRows())
	}
}

func TestCreateIndexErrors(t *testing.T) {
	c := New()
	if _, err := c.CreateIndex(nil, "missing", "i", []string{"x"}, false); err == nil {
		t.Error("index on missing table should fail")
	}
	tb, _ := c.CreateTable("t", testSchema())
	_ = tb
	if _, err := c.CreateIndex(nil, "t", "i", []string{"nope"}, false); err == nil {
		t.Error("index on missing column should fail")
	}
	if _, err := c.CreateIndex(nil, "t", "i", []string{"id"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex(nil, "t", "i", []string{"grp"}, false); err == nil {
		t.Error("duplicate index name should fail")
	}
}

func TestDropIndex(t *testing.T) {
	c := New()
	tb, _ := c.CreateTable("t", testSchema())
	c.CreateIndex(nil, "t", "i", []string{"id"}, false)
	if err := c.DropIndex("t", "i"); err != nil {
		t.Fatal(err)
	}
	if tb.IndexNamed("i") != nil {
		t.Error("dropped index still resolvable")
	}
	if tb.IndexOn(0) != nil {
		t.Error("IndexOn should skip dropped indexes")
	}
	if err := c.DropIndex("t", "i"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestAnalyzeTable(t *testing.T) {
	c := New()
	tb, _ := c.CreateTable("t", testSchema())
	loadRows(c, tb, 100)
	c.AnalyzeTable(tb, 8)
	if tb.Stats.RowCount != 100 {
		t.Errorf("RowCount = %v", tb.Stats.RowCount)
	}
	cs := tb.Stats.ColStats(1)
	if cs == nil || cs.NDV != 10 {
		t.Errorf("grp NDV = %+v", cs)
	}
	if err := c.AnalyzeGroup(tb, []string{"id", "grp"}); err != nil {
		t.Fatal(err)
	}
	ndv, ok := tb.Stats.GroupNDV([]int{0, 1})
	if !ok || ndv != 100 {
		t.Errorf("group NDV = %v %v", ndv, ok)
	}
	if err := c.AnalyzeGroup(tb, []string{"nope"}); err == nil {
		t.Error("group on missing column should fail")
	}
}

func TestIndexOnLeadingColumn(t *testing.T) {
	c := New()
	tb, _ := c.CreateTable("t", testSchema())
	c.CreateIndex(nil, "t", "multi", []string{"grp", "id"}, false)
	if ix := tb.IndexOn(1); ix == nil || ix.Name != "multi" {
		t.Error("IndexOn should match leading column")
	}
	if tb.IndexOn(0) != nil {
		t.Error("IndexOn should not match non-leading column")
	}
	names := tb.Indexes[0].ColNames(tb)
	if names[0] != "grp" || names[1] != "id" {
		t.Errorf("ColNames wrong: %v", names)
	}
}
