package advisor

import (
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/robustness"
	"rqp/internal/types"
)

func advisorDB(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	big, err := cat.CreateTable("big", types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "k", Kind: types.KindInt},
		{Name: "v", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8000; i++ {
		cat.Insert(nil, big, types.Row{
			types.Int(int64(i)), types.Int(int64(i % 500)), types.Int(int64(i % 37)),
		})
	}
	cat.AnalyzeTable(big, 24)
	return cat
}

func TestCandidatesExtraction(t *testing.T) {
	cat := advisorDB(t)
	a := New(cat)
	cands, err := a.Candidates([]string{
		"SELECT v FROM big WHERE id = 7",
		"SELECT v FROM big WHERE k >= 10 AND k <= 20",
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, c := range cands {
		keys[c.Key()] = true
	}
	if !keys["big(id)"] || !keys["big(k)"] {
		t.Errorf("candidates missing: %v", cands)
	}
}

func TestRecommendBuildsUsefulIndex(t *testing.T) {
	cat := advisorDB(t)
	a := New(cat)
	workload := []string{
		"SELECT v FROM big WHERE id = 7",
		"SELECT v FROM big WHERE id = 9",
		"SELECT v FROM big WHERE id = 100",
	}
	rec, err := a.Recommend(workload, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chosen) == 0 {
		t.Fatal("advisor should recommend the id index")
	}
	if rec.CostAfter >= rec.CostBefore {
		t.Errorf("cost should drop: before=%v after=%v", rec.CostBefore, rec.CostAfter)
	}
	big, _ := cat.Table("big")
	if big.IndexNamed("adv_big_id") == nil {
		t.Error("recommended index not built")
	}
	if Generality(rec) != len(rec.Chosen) {
		t.Errorf("generality of single-col indexes should equal count")
	}
}

func TestAdvisorRobustnessEvaluation(t *testing.T) {
	cat := advisorDB(t)
	a := New(cat)
	training := []string{"SELECT v FROM big WHERE id = 7"}
	if _, err := a.Recommend(training, 1); err != nil {
		t.Fatal(err)
	}
	t0, err := a.MeasuredWorkloadCost(training)
	if err != nil {
		t.Fatal(err)
	}
	// Perturbed workloads: same pattern (still served) and a pattern shift
	// (range on a different column — the index does not help).
	sameShape, err := a.MeasuredWorkloadCost([]string{"SELECT v FROM big WHERE id = 4242"})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := a.MeasuredWorkloadCost([]string{"SELECT COUNT(*) FROM big WHERE v = 5"})
	if err != nil {
		t.Fatal(err)
	}
	rSame := robustness.AdvisorRobustness(t0, []float64{sameShape})
	rShift := robustness.AdvisorRobustness(t0, []float64{shifted})
	if rSame > 0.5 {
		t.Errorf("same-pattern workload should stay close to T0: %v", rSame)
	}
	if rShift <= rSame {
		t.Errorf("pattern shift should degrade more: same=%v shift=%v", rSame, rShift)
	}
}

func TestRecommendRejectsUselessIndexes(t *testing.T) {
	cat := advisorDB(t)
	a := New(cat)
	// Full scans benefit from no index; the advisor must decline to build.
	rec, err := a.Recommend([]string{"SELECT COUNT(*) FROM big WHERE v + 1 > 0"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chosen) != 0 {
		t.Errorf("advisor built useless indexes: %v", rec.Chosen)
	}
}
