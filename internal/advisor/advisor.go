// Package advisor implements a what-if index advisor plus the robustness
// evaluation the Dagstuhl physical-design sessions propose: designs are
// recommended greedily against a training workload, then judged by how much
// perturbed ("same pattern, different literals") workloads degrade on the
// frozen design, and by the generality of the chosen index set.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"rqp/internal/catalog"
	"rqp/internal/exec"
	"rqp/internal/expr"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
)

// Candidate is one index the advisor may build.
type Candidate struct {
	Table string
	Cols  []string
}

// Key identifies the candidate.
func (c Candidate) Key() string { return c.Table + "(" + strings.Join(c.Cols, ",") + ")" }

// Advisor recommends indexes for a workload.
type Advisor struct {
	Cat *catalog.Catalog
	Opt *opt.Optimizer
}

// New returns an advisor over the catalog with a fresh optimizer.
func New(cat *catalog.Catalog) *Advisor {
	return &Advisor{Cat: cat, Opt: opt.New(cat)}
}

// Candidates extracts single-column index candidates from the workload's
// filter and join predicates.
func (a *Advisor) Candidates(queries []string) ([]Candidate, error) {
	seen := map[string]Candidate{}
	for _, q := range queries {
		st, err := sql.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("advisor: %w", err)
		}
		sel, ok := st.(*sql.SelectStmt)
		if !ok {
			continue
		}
		bq, err := plan.Bind(sel, a.Cat)
		if err != nil {
			return nil, err
		}
		addCol := func(col int) {
			ri := bq.RelIndexForColumn(col)
			if ri < 0 {
				return
			}
			rel := bq.Rels[ri]
			name := rel.Table.Schema[col-rel.Offset].Name
			c := Candidate{Table: rel.Table.Name, Cols: []string{name}}
			seen[c.Key()] = c
		}
		for _, conj := range bq.Conjuncts {
			if iv, ok := expr.ExtractInterval(conj, nil); ok {
				addCol(iv.Col)
				continue
			}
			if b, ok := conj.(*expr.Bin); ok && b.Op == expr.OpEQ {
				if lc, ok := b.L.(*expr.Col); ok {
					addCol(lc.Index)
				}
				if rc, ok := b.R.(*expr.Col); ok {
					addCol(rc.Index)
				}
			}
		}
	}
	out := make([]Candidate, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// EstimatedWorkloadCost sums the optimizer's estimated cost over the
// workload under the current physical design.
func (a *Advisor) EstimatedWorkloadCost(queries []string) (float64, error) {
	total := 0.0
	for _, q := range queries {
		st, err := sql.Parse(q)
		if err != nil {
			return 0, err
		}
		sel, ok := st.(*sql.SelectStmt)
		if !ok {
			continue
		}
		bq, err := plan.Bind(sel, a.Cat)
		if err != nil {
			return 0, err
		}
		root, err := a.Opt.Optimize(bq, nil)
		if err != nil {
			return 0, err
		}
		total += root.Props().EstCost
	}
	return total, nil
}

// MeasuredWorkloadCost executes the workload and returns total simulated
// cost units.
func (a *Advisor) MeasuredWorkloadCost(queries []string) (float64, error) {
	total := 0.0
	for _, q := range queries {
		st, err := sql.Parse(q)
		if err != nil {
			return 0, err
		}
		sel, ok := st.(*sql.SelectStmt)
		if !ok {
			continue
		}
		bq, err := plan.Bind(sel, a.Cat)
		if err != nil {
			return 0, err
		}
		root, err := a.Opt.Optimize(bq, nil)
		if err != nil {
			return 0, err
		}
		ctx := exec.NewContext()
		if _, err := exec.Run(root, ctx); err != nil {
			return 0, err
		}
		total += ctx.Clock.Units()
	}
	return total, nil
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Chosen     []Candidate
	CostBefore float64
	CostAfter  float64
}

// Recommend greedily selects up to k candidate indexes: in each round the
// candidate with the largest estimated workload-cost reduction is kept
// (built for real — the engine is small enough that hypothetical indexes
// are unnecessary); candidates that do not improve cost are rejected.
func (a *Advisor) Recommend(queries []string, k int) (*Recommendation, error) {
	cands, err := a.Candidates(queries)
	if err != nil {
		return nil, err
	}
	base, err := a.EstimatedWorkloadCost(queries)
	if err != nil {
		return nil, err
	}
	rec := &Recommendation{CostBefore: base}
	cur := base
	remaining := append([]Candidate(nil), cands...)
	for round := 0; round < k && len(remaining) > 0; round++ {
		bestIdx := -1
		bestCost := cur
		for i, c := range remaining {
			name := advisorIndexName(c, len(rec.Chosen), i)
			if _, err := a.Cat.CreateIndex(nil, c.Table, name, c.Cols, false); err != nil {
				continue
			}
			cost, err := a.EstimatedWorkloadCost(queries)
			a.Cat.DropIndex(c.Table, name)
			if err != nil {
				return nil, err
			}
			if cost < bestCost {
				bestCost = cost
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen := remaining[bestIdx]
		name := fmt.Sprintf("adv_%s_%s", chosen.Table, strings.Join(chosen.Cols, "_"))
		if _, err := a.Cat.CreateIndex(nil, chosen.Table, name, chosen.Cols, false); err != nil {
			return nil, err
		}
		rec.Chosen = append(rec.Chosen, chosen)
		cur = bestCost
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	rec.CostAfter = cur
	return rec, nil
}

func advisorIndexName(c Candidate, round, i int) string {
	return fmt.Sprintf("whatif_%s_%d_%d", c.Table, round, i)
}

// Generality is Gebaly & Aboulnaga's metric: the number of distinct index
// prefixes in the design (more prefixes serve more future workloads).
func Generality(rec *Recommendation) int {
	prefixes := map[string]bool{}
	for _, c := range rec.Chosen {
		for i := 1; i <= len(c.Cols); i++ {
			prefixes[c.Table+"("+strings.Join(c.Cols[:i], ",")+")"] = true
		}
	}
	return len(prefixes)
}
