package server

import (
	"fmt"

	"rqp/internal/exec"
	"rqp/internal/storage"
)

// Shuffle frame types: the shard-exchange sub-protocol coordinators and
// rqpserver -shard-worker processes speak over dedicated per-join TCP
// connections. They share the session protocol's frame envelope (type byte
// + u32 length, MaxFrame cap) and typed-value encoding, but occupy their
// own type ranges — 0x41–0x4f coordinator→worker, 0xC1–0xCf worker→
// coordinator (high bit = server-to-client, as in the session protocol) —
// so a captured stream's direction and role stay readable off the type
// byte. See docs/WIRE_PROTOCOL.md for the normative grammar.
const (
	// Coordinator → worker.
	MsgShardHello = byte(0x41) // open one join's exchange: geometry + cost model + credit ask
	MsgRouteBatch = byte(0x42) // up to shufBatchRows routed build or probe rows
	MsgShardEOF   = byte(0x43) // end of the build phase, or of one source's probe stream

	// Worker → coordinator.
	MsgShardAccept = byte(0xC1) // hello accepted: initial credit window grant
	MsgShardAck    = byte(0xC2) // credit replenishment for consumed route batches
	MsgOutBatch    = byte(0xC3) // up to shufBatchRows tagged join output rows
	MsgShardDone   = byte(0xC4) // exchange complete: worker clock totals
	MsgShardErr    = byte(0xC5) // exchange failed at the worker
)

// Phase bytes inside RouteBatch/ShardEOF frames.
const (
	ShufPhaseBuild = byte('b')
	ShufPhaseProbe = byte('p')
)

// shufBatchRows is how many routed rows accumulate before a frame seals —
// the vectorized executor's 256-row batch shape reused on the wire, so
// per-frame overhead (header, syscall, credit) amortizes over the batch.
const shufBatchRows = 256

// shufCreditWindow is the in-flight route-batch window a worker grants at
// Accept: the sender may have this many unacknowledged frames outstanding
// before it must block. Bounded in-flight is the backpressure mechanism —
// a slow shard throttles its producers instead of ballooning its inbox.
const shufCreditWindow = 32

// shufModelFloats is the number of cost-model unit charges a hello carries
// (every CostModel field, in declaration order), so a worker charges the
// exact model the coordinator runs even if defaults ever diverge.
const shufModelFloats = 9

// ShardHelloMsg opens one join's exchange with a worker: which shard of
// how many it is to be, the join geometry its ShardJoiner needs, and the
// cost model its clock must charge under.
type ShardHelloMsg struct {
	Version   uint16
	JoinID    uint64
	Shard     uint16 // this worker's shard index ∈ [0, Shards)
	Shards    uint16 // exchange width n
	LeftOuter bool
	RWidth    uint16
	LeftKeys  []uint16
	RightKeys []uint16
	Model     storage.CostModel
}

// Encode renders the hello payload.
func (m ShardHelloMsg) Encode() []byte { return encode(m) }

func (m ShardHelloMsg) encodeTo(w *wireWriter) {
	w.u16(m.Version)
	w.u64(m.JoinID)
	w.u16(m.Shard)
	w.u16(m.Shards)
	if m.LeftOuter {
		w.byte(1)
	} else {
		w.byte(0)
	}
	w.u16(m.RWidth)
	w.u16(uint16(len(m.LeftKeys)))
	for _, k := range m.LeftKeys {
		w.u16(k)
	}
	w.u16(uint16(len(m.RightKeys)))
	for _, k := range m.RightKeys {
		w.u16(k)
	}
	w.f64(m.Model.SeqPageRead)
	w.f64(m.Model.RandPageRead)
	w.f64(m.Model.PageWrite)
	w.f64(m.Model.RowCPU)
	w.f64(m.Model.HashProbe)
	w.f64(m.Model.Compare)
	w.f64(m.Model.FilterTest)
	w.f64(m.Model.ZoneCheck)
	w.f64(m.Model.NetRow)
}

// DecodeShardHello parses a MsgShardHello payload. A shard index outside
// [0, Shards) is structurally malformed — the bad-shard-id case the fuzzer
// seeds — because no valid exchange can ever produce it.
func DecodeShardHello(p []byte) (ShardHelloMsg, error) {
	r := &wireReader{buf: p}
	m := ShardHelloMsg{Version: r.u16(), JoinID: r.u64(), Shard: r.u16(), Shards: r.u16()}
	switch r.byte() {
	case 0:
	case 1:
		m.LeftOuter = true
	default:
		r.fail()
	}
	m.RWidth = r.u16()
	m.LeftKeys = readKeyList(r)
	m.RightKeys = readKeyList(r)
	m.Model.SeqPageRead = r.f64()
	m.Model.RandPageRead = r.f64()
	m.Model.PageWrite = r.f64()
	m.Model.RowCPU = r.f64()
	m.Model.HashProbe = r.f64()
	m.Model.Compare = r.f64()
	m.Model.FilterTest = r.f64()
	m.Model.ZoneCheck = r.f64()
	m.Model.NetRow = r.f64()
	if err := r.done(); err != nil {
		return m, err
	}
	if m.Shards == 0 || m.Shard >= m.Shards {
		return m, fmt.Errorf("%w: shard id %d out of range [0,%d)", ErrProto, m.Shard, m.Shards)
	}
	return m, nil
}

// maxWireKeys bounds join-key column lists; no schema is remotely close.
const maxWireKeys = 256

func readKeyList(r *wireReader) []uint16 {
	n := int(r.u16())
	if n == 0 {
		return nil
	}
	if n > maxWireKeys {
		r.fail()
		return nil
	}
	out := make([]uint16, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.u16())
	}
	return out
}

// RouteBatchMsg carries up to shufBatchRows routed rows of one phase for
// one source stream. Build batches hold (Idx, Own, Hash, row); probe
// batches hold (Seq, Main, row). Exactly one of Build/Probe is populated,
// selected by Phase.
type RouteBatchMsg struct {
	JoinID uint64
	Phase  byte   // ShufPhaseBuild or ShufPhaseProbe
	Src    uint16 // probe source shard; 0 for build batches (single router)
	Build  []exec.ShufBuild
	Probe  []exec.ShufProbe
}

// Rows reports how many routed rows the batch carries.
func (m RouteBatchMsg) Rows() int {
	if m.Phase == ShufPhaseBuild {
		return len(m.Build)
	}
	return len(m.Probe)
}

// Encode renders the route-batch payload.
func (m RouteBatchMsg) Encode() []byte { return encode(m) }

func (m RouteBatchMsg) encodeTo(w *wireWriter) {
	w.u64(m.JoinID)
	w.byte(m.Phase)
	w.u16(m.Src)
	if m.Phase == ShufPhaseBuild {
		w.u16(uint16(len(m.Build)))
		for _, b := range m.Build {
			w.u32(uint32(b.Idx))
			if b.Own {
				w.byte(1)
			} else {
				w.byte(0)
			}
			w.u64(b.Hash)
			w.u16(uint16(len(b.Row)))
			for _, v := range b.Row {
				appendValue(w, v)
			}
		}
		return
	}
	w.u16(uint16(len(m.Probe)))
	for _, p := range m.Probe {
		w.u64(uint64(p.Seq))
		if p.Main {
			w.byte(1)
		} else {
			w.byte(0)
		}
		w.u16(uint16(len(p.Row)))
		for _, v := range p.Row {
			appendValue(w, v)
		}
	}
}

// DecodeRouteBatch parses a MsgRouteBatch payload.
func DecodeRouteBatch(p []byte) (RouteBatchMsg, error) {
	r := &wireReader{buf: p}
	m := RouteBatchMsg{JoinID: r.u64(), Phase: r.byte(), Src: r.u16()}
	switch m.Phase {
	case ShufPhaseBuild:
		n := int(r.u16())
		if n > shufBatchRows {
			r.fail()
			break
		}
		m.Build = make([]exec.ShufBuild, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			b := exec.ShufBuild{Idx: int32(r.u32())}
			switch r.byte() {
			case 0:
			case 1:
				b.Own = true
			default:
				r.fail()
			}
			b.Hash = r.u64()
			b.Row = readValues(r, int(r.u16()))
			m.Build = append(m.Build, b)
		}
	case ShufPhaseProbe:
		n := int(r.u16())
		if n > shufBatchRows {
			r.fail()
			break
		}
		m.Probe = make([]exec.ShufProbe, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			pr := exec.ShufProbe{Seq: int64(r.u64())}
			switch r.byte() {
			case 0:
			case 1:
				pr.Main = true
			default:
				r.fail()
			}
			pr.Row = readValues(r, int(r.u16()))
			m.Probe = append(m.Probe, pr)
		}
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: unknown route-batch phase 0x%02x", ErrProto, m.Phase)
		}
	}
	return m, r.done()
}

// ShardEOFMsg ends the build phase (Phase 'b', Src ignored) or one source's
// probe stream (Phase 'p'). A worker that has seen the build EOF plus a
// probe EOF from every source probes and replies.
type ShardEOFMsg struct {
	JoinID uint64
	Phase  byte
	Src    uint16
}

// Encode renders the EOF payload.
func (m ShardEOFMsg) Encode() []byte { return encode(m) }

func (m ShardEOFMsg) encodeTo(w *wireWriter) {
	w.u64(m.JoinID)
	w.byte(m.Phase)
	w.u16(m.Src)
}

// DecodeShardEOF parses a MsgShardEOF payload.
func DecodeShardEOF(p []byte) (ShardEOFMsg, error) {
	r := &wireReader{buf: p}
	m := ShardEOFMsg{JoinID: r.u64(), Phase: r.byte(), Src: r.u16()}
	if err := r.done(); err != nil {
		return m, err
	}
	if m.Phase != ShufPhaseBuild && m.Phase != ShufPhaseProbe {
		return m, fmt.Errorf("%w: unknown eof phase 0x%02x", ErrProto, m.Phase)
	}
	return m, nil
}

// ShardAcceptMsg acknowledges a hello: the worker admitted the exchange and
// grants the sender its initial credit window (route batches that may be in
// flight unacknowledged).
type ShardAcceptMsg struct {
	JoinID uint64
	Credit uint16
}

// Encode renders the accept payload.
func (m ShardAcceptMsg) Encode() []byte { return encode(m) }

func (m ShardAcceptMsg) encodeTo(w *wireWriter) {
	w.u64(m.JoinID)
	w.u16(m.Credit)
}

// DecodeShardAccept parses a MsgShardAccept payload.
func DecodeShardAccept(p []byte) (ShardAcceptMsg, error) {
	r := &wireReader{buf: p}
	m := ShardAcceptMsg{JoinID: r.u64(), Credit: r.u16()}
	return m, r.done()
}

// ShardAckMsg returns Credit consumed-and-processed route batches to the
// sender's window. Workers ack every half window so the pipeline never
// drains just because acknowledgements are batched.
type ShardAckMsg struct {
	JoinID uint64
	Credit uint16
}

// Encode renders the ack payload.
func (m ShardAckMsg) Encode() []byte { return encode(m) }

func (m ShardAckMsg) encodeTo(w *wireWriter) {
	w.u64(m.JoinID)
	w.u16(m.Credit)
}

// DecodeShardAck parses a MsgShardAck payload.
func DecodeShardAck(p []byte) (ShardAckMsg, error) {
	r := &wireReader{buf: p}
	m := ShardAckMsg{JoinID: r.u64(), Credit: r.u16()}
	return m, r.done()
}

// OutBatchMsg streams up to shufBatchRows tagged join outputs back to the
// coordinator, in the worker's (source, sequence) probe order — already
// sorted by (Seq, BIdx), which the gather merge depends on.
type OutBatchMsg struct {
	JoinID uint64
	Rows   []exec.ShufOut
}

// Encode renders the out-batch payload.
func (m OutBatchMsg) Encode() []byte { return encode(m) }

func (m OutBatchMsg) encodeTo(w *wireWriter) {
	w.u64(m.JoinID)
	w.u16(uint16(len(m.Rows)))
	for _, o := range m.Rows {
		w.u64(uint64(o.Seq))
		w.u32(uint32(o.BIdx))
		w.u16(uint16(len(o.Row)))
		for _, v := range o.Row {
			appendValue(w, v)
		}
	}
}

// DecodeOutBatch parses a MsgOutBatch payload.
func DecodeOutBatch(p []byte) (OutBatchMsg, error) {
	r := &wireReader{buf: p}
	m := OutBatchMsg{JoinID: r.u64()}
	n := int(r.u16())
	if n > shufBatchRows {
		r.fail()
		return m, r.done()
	}
	m.Rows = make([]exec.ShufOut, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		o := exec.ShufOut{Seq: int64(r.u64()), BIdx: int32(r.u32())}
		o.Row = readValues(r, int(r.u16()))
		m.Rows = append(m.Rows, o)
	}
	return m, r.done()
}

// ShardDoneMsg completes a worker's side of the exchange: how many output
// rows it streamed (an integrity check against what arrived) and its
// clock's totals in the ClockScale integer domain, which the coordinator
// folds into the main clock via MergeScaled — the cross-process half of
// the serial cost-parity invariant.
type ShardDoneMsg struct {
	JoinID      uint64
	OutRows     uint32
	UnitsScaled int64
	SeqReads    int64
	RandReads   int64
	PageWrites  int64
	RowsCPU     int64
}

// Encode renders the done payload.
func (m ShardDoneMsg) Encode() []byte { return encode(m) }

func (m ShardDoneMsg) encodeTo(w *wireWriter) {
	w.u64(m.JoinID)
	w.u32(m.OutRows)
	w.u64(uint64(m.UnitsScaled))
	w.u64(uint64(m.SeqReads))
	w.u64(uint64(m.RandReads))
	w.u64(uint64(m.PageWrites))
	w.u64(uint64(m.RowsCPU))
}

// DecodeShardDone parses a MsgShardDone payload.
func DecodeShardDone(p []byte) (ShardDoneMsg, error) {
	r := &wireReader{buf: p}
	m := ShardDoneMsg{
		JoinID:      r.u64(),
		OutRows:     r.u32(),
		UnitsScaled: int64(r.u64()),
		SeqReads:    int64(r.u64()),
		RandReads:   int64(r.u64()),
		PageWrites:  int64(r.u64()),
		RowsCPU:     int64(r.u64()),
	}
	return m, r.done()
}

// ShardErrMsg reports an exchange failure at the worker. The coordinator
// fails the whole query (mid-exchange there is no safe fallback) and the
// session layer surfaces it as ERR_EXEC.
type ShardErrMsg struct {
	JoinID  uint64
	Code    string
	Message string
}

// Encode renders the error payload.
func (m ShardErrMsg) Encode() []byte { return encode(m) }

func (m ShardErrMsg) encodeTo(w *wireWriter) {
	w.u64(m.JoinID)
	w.str(m.Code)
	w.str(m.Message)
}

// DecodeShardErr parses a MsgShardErr payload.
func DecodeShardErr(p []byte) (ShardErrMsg, error) {
	r := &wireReader{buf: p}
	m := ShardErrMsg{JoinID: r.u64(), Code: r.str(), Message: r.str()}
	return m, r.done()
}
