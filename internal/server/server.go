package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rqp/internal/core"
)

// Config parameterizes a Server.
type Config struct {
	// Engine is the database instance served over the wire. Its
	// Cfg.Admission gate (if any) is the server's admission control: full
	// gates queue sessions FIFO instead of failing them.
	Engine *core.Engine
	// QueueTimeout bounds how long a session waits in the admission queue
	// before its statement fails with ERR_ADMIT (default 10s).
	QueueTimeout time.Duration
	// MaxFrame caps a frame payload in bytes (default MaxFrame, 1 MiB).
	MaxFrame int
	// BeforeExec, when non-nil, runs on the session goroutine immediately
	// before each admitted statement executes, with the session's live
	// cancel predicate. It exists for tests that need to hold a statement
	// mid-flight deterministically (cancel and disconnect races); production
	// servers leave it nil.
	BeforeExec func(sessionID uint64, sql string, canceled func() bool)
}

// Server accepts wire-protocol connections and runs one session per
// connection against a shared engine.
type Server struct {
	eng          *core.Engine
	queueTimeout time.Duration
	maxFrame     int
	beforeExec   func(uint64, string, func() bool)

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	conns    map[net.Conn]struct{}
	nextID   atomic.Uint64
	sessions atomic.Int64 // currently open sessions
	wg       sync.WaitGroup
}

// New builds a Server around an engine.
func New(cfg Config) *Server {
	qt := cfg.QueueTimeout
	if qt <= 0 {
		qt = 10 * time.Second
	}
	mf := cfg.MaxFrame
	if mf <= 0 {
		mf = MaxFrame
	}
	return &Server{
		eng:          cfg.Engine,
		queueTimeout: qt,
		maxFrame:     mf,
		beforeExec:   cfg.BeforeExec,
	}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// Listen starts listening on addr (e.g. ":5433" or "127.0.0.1:0") without
// serving yet, so callers can read Addr before clients connect.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Addr reports the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Close. Call after Listen; it blocks.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe combines Listen and Serve.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops accepting and waits for in-flight sessions to finish their
// current command cycle (live connections are closed, which cancels their
// queries cooperatively).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close() // session readers observe the dead conn and cancel queries
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Sessions reports the number of currently open sessions.
func (s *Server) Sessions() int { return int(s.sessions.Load()) }

// handle runs one connection's session.
func (s *Server) handle(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	s.sessions.Add(1)
	defer s.sessions.Add(-1)
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	sess := &session{
		id:     s.nextID.Add(1),
		srv:    s,
		conn:   conn,
		bw:     bufio.NewWriterSize(conn, 32<<10),
		frames: make(chan Frame),
		done:   make(chan struct{}),
		stmts:  make(map[string]*prepared),
	}
	sess.serve()
}
