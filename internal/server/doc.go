// Package server is the network service layer: a TCP wire protocol over
// which clients run SQL against a shared engine, with per-session state and
// the workload manager as a real admission gatekeeper.
//
// # Protocol
//
// The wire format is length-prefixed binary frames — one type byte, a
// big-endian uint32 payload length (capped, default 1 MiB), then the
// payload. Clients send Startup/Query/Prepare/Bind/Execute/Cancel/Close/
// Terminate; servers answer Ready/RowDesc/Row/Complete/Error/Notice. The
// normative specification, precise enough to implement a third-party
// client from, is docs/WIRE_PROTOCOL.md; the Client type in this package is
// the reference implementation.
//
// # Sessions
//
// Each connection is one session served by one goroutine: a handshake
// (version-checked Startup → Ready), then sequential command cycles. A
// second goroutine owns the read side so two things work while a statement
// is executing: Cancel frames flip the session's cooperative cancel flag —
// polled by the engine's root drain loop — and a dead connection flips the
// same flag, so a client crash aborts its query instead of leaving it
// running for nobody. Prepared statements are per-session names over SQL
// text; the compiled plans behind them live in the engine's shared
// PlanCache, so sessions preparing the same parameter-free statement share
// one cached plan.
//
// # Admission
//
// The engine's wlm.Admitter MPL gate and workspace-memory pool gatekeep for
// real here: when the gate is full, sessions queue FIFO (wlm.WaitSlot)
// instead of failing, bounded by the server's queue timeout. The client
// sees the backpressure as it happens — a WLM_QUEUED notice on entering the
// queue, WLM_ADMITTED when its turn comes, ERR_ADMIT on aging out — and
// each query's queued/admitted/running/done phases land in the engine's
// lifecycle registry, so the /queries debug endpoint shows the same story.
package server
