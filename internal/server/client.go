package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"rqp/internal/types"
)

// Client is a minimal wire-protocol client: synchronous command cycles plus
// an out-of-band Cancel that may be called from another goroutine while a
// Query/Execute is in flight. It exists for rqpsh -connect, the closed-loop
// load generator, and the protocol tests; it is also the reference
// implementation for docs/WIRE_PROTOCOL.md.
type Client struct {
	conn net.Conn
	br   *bufio.Reader

	// wmu serializes writers: the command goroutine and an out-of-band
	// Cancel may race on the socket.
	wmu sync.Mutex

	// SessionID is assigned by the server's first Ready frame.
	SessionID uint64
}

// ResultSet is one statement's decoded outcome.
type ResultSet struct {
	Columns   []string
	Rows      []types.Row
	Tag       string
	RowCount  uint64
	CostUnits float64
	// Notices are the advisories received during this command cycle —
	// WLM_QUEUED / WLM_ADMITTED backpressure signals, in arrival order.
	Notices []NoticeMsg
}

// ServerError is a statement- or protocol-level error frame surfaced as a
// Go error. Code holds the stable machine-readable error code.
type ServerError struct {
	Code    string
	Message string
}

// Error renders the code and message.
func (e *ServerError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Dial connects, performs the startup handshake, and waits for Ready.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReaderSize(conn, 32<<10)}
	if err := c.write(MsgStartup, StartupMsg{Version: ProtocolVersion}.Encode()); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := ReadFrame(c.br, MaxFrame)
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch f.Type {
	case MsgReady:
		m, err := DecodeReady(f.Payload)
		if err != nil {
			conn.Close()
			return nil, err
		}
		c.SessionID = m.SessionID
		return c, nil
	case MsgError:
		m, _ := DecodeError(f.Payload)
		conn.Close()
		return nil, &ServerError{Code: m.Code, Message: m.Message}
	default:
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected handshake frame 0x%02x", ErrProto, f.Type)
	}
}

// Close terminates the session (best effort) and closes the connection.
func (c *Client) Close() error {
	c.write(MsgTerminate, nil)
	return c.conn.Close()
}

// Abort closes the connection without the Terminate goodbye — a simulated
// client crash, used by disconnect-mid-query tests.
func (c *Client) Abort() error { return c.conn.Close() }

// Query runs one SQL statement with optional positional parameters and
// collects the full result.
func (c *Client) Query(sql string, params ...types.Value) (*ResultSet, error) {
	if err := c.write(MsgQuery, QueryMsg{SQL: sql, Params: params}.Encode()); err != nil {
		return nil, err
	}
	return c.readCycle()
}

// Prepare names a statement on the server.
func (c *Client) Prepare(name, sql string) error {
	if err := c.write(MsgPrepare, PrepareMsg{Name: name, SQL: sql}.Encode()); err != nil {
		return err
	}
	_, err := c.readCycle()
	return err
}

// Bind attaches parameters to a prepared statement, making it the portal.
func (c *Client) Bind(name string, params ...types.Value) error {
	if err := c.write(MsgBind, BindMsg{Name: name, Params: params}.Encode()); err != nil {
		return err
	}
	_, err := c.readCycle()
	return err
}

// Execute runs the bound portal. maxRows caps returned rows (0 = all).
func (c *Client) Execute(maxRows uint32) (*ResultSet, error) {
	if err := c.write(MsgExecute, ExecuteMsg{MaxRows: maxRows}.Encode()); err != nil {
		return nil, err
	}
	return c.readCycle()
}

// CloseStmt deallocates a prepared statement.
func (c *Client) CloseStmt(name string) error {
	if err := c.write(MsgClose, CloseMsg{Name: name}.Encode()); err != nil {
		return err
	}
	_, err := c.readCycle()
	return err
}

// Cancel requests best-effort cancellation of the in-flight statement. Safe
// to call concurrently with a blocked Query/Execute; the canceled statement
// fails with an ERR_CANCELED ServerError.
func (c *Client) Cancel() error {
	return c.write(MsgCancel, nil)
}

// write sends one frame under the write lock.
func (c *Client) write(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteFrame(c.conn, typ, payload)
}

// readCycle consumes frames until Ready, assembling the result. A command
// cycle is: [Notice*] [RowDesc Row*] (Complete | Error) [Notice*] Ready.
func (c *Client) readCycle() (*ResultSet, error) {
	rs := &ResultSet{}
	var srvErr *ServerError
	for {
		f, err := ReadFrame(c.br, MaxFrame)
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case MsgNotice:
			m, err := DecodeNotice(f.Payload)
			if err != nil {
				return nil, err
			}
			rs.Notices = append(rs.Notices, m)
		case MsgRowDesc:
			m, err := DecodeRowDesc(f.Payload)
			if err != nil {
				return nil, err
			}
			rs.Columns = m.Columns
		case MsgRow:
			m, err := DecodeRow(f.Payload)
			if err != nil {
				return nil, err
			}
			rs.Rows = append(rs.Rows, types.Row(m.Values))
		case MsgComplete:
			m, err := DecodeComplete(f.Payload)
			if err != nil {
				return nil, err
			}
			rs.Tag, rs.RowCount, rs.CostUnits = m.Tag, m.Rows, m.CostUnits
		case MsgError:
			m, err := DecodeError(f.Payload)
			if err != nil {
				return nil, err
			}
			srvErr = &ServerError{Code: m.Code, Message: m.Message}
			if m.Code == CodeProto {
				// Protocol errors are fatal: the server closes the connection
				// and no Ready follows.
				return nil, srvErr
			}
		case MsgReady:
			if srvErr != nil {
				return rs, srvErr
			}
			return rs, nil
		default:
			return nil, fmt.Errorf("%w: unexpected frame 0x%02x in command cycle", ErrProto, f.Type)
		}
	}
}
