package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rqp/internal/exec"
)

// NetShuffleTransport runs sharded joins' exchanges over TCP against
// rqpserver -shard-worker peers: transport=tcp behind exec's one
// ShuffleTransport interface. Each OpenExchange dials one connection per
// shard, and rows flow as batched route frames pushed by per-peer sender
// goroutines under credit-based backpressure — a slow worker exhausts its
// window and throttles the producers that feed it instead of ballooning
// anyone's memory.
type NetShuffleTransport struct {
	peers    []string
	dialTO   time.Duration
	nextJoin uint64
}

// NewNetShuffleTransport returns a transport shuffling through the given
// worker addresses. An exchange of n shards uses peers[0:n], so the list
// bounds the maximum shard count.
func NewNetShuffleTransport(peers []string) *NetShuffleTransport {
	return &NetShuffleTransport{peers: peers, dialTO: 5 * time.Second}
}

// Name labels the transport in traces and bench output.
func (t *NetShuffleTransport) Name() string { return "tcp" }

// Close releases the transport. Connections are per-exchange, so there is
// nothing persistent to tear down; worker process lifetimes belong to
// whoever spawned them.
func (t *NetShuffleTransport) Close() error { return nil }

// OpenExchange dials and handshakes one connection per shard. Refusals —
// a residual predicate (a coordinator closure that cannot cross a process
// boundary), too few peers, or any dial/handshake failure — happen before
// a single row has been routed, so the caller can still safely fall back
// to the local exchange.
func (t *NetShuffleTransport) OpenExchange(spec exec.ShuffleJoinSpec) (exec.ShuffleExchange, error) {
	if spec.Residual != nil {
		return nil, fmt.Errorf("%w: residual predicate is not serializable", exec.ErrExchangeUnsupported)
	}
	if spec.Shards > len(t.peers) {
		return nil, fmt.Errorf("%w: %d shards but only %d worker peers", exec.ErrExchangeUnsupported, spec.Shards, len(t.peers))
	}
	joinID := atomic.AddUint64(&t.nextJoin, 1)
	hello := ShardHelloMsg{
		Version:   ProtocolVersion,
		JoinID:    joinID,
		Shards:    uint16(spec.Shards),
		LeftOuter: spec.LeftOuter,
		RWidth:    uint16(spec.RWidth),
		LeftKeys:  narrowKeys(spec.LeftKeys),
		RightKeys: narrowKeys(spec.RightKeys),
		Model:     spec.Model,
	}

	ex := &netExchange{
		spec:    spec,
		joinID:  joinID,
		peers:   make([]*netPeer, spec.Shards),
		abortCh: make(chan struct{}),
		bacc:    make([][]exec.ShufBuild, spec.Shards),
		pacc:    make([][][]exec.ShufProbe, spec.Shards),
	}
	for s := range ex.pacc {
		ex.pacc[s] = make([][]exec.ShufProbe, spec.Shards)
	}
	for d := 0; d < spec.Shards; d++ {
		p, err := t.dialPeer(t.peers[d], d, hello)
		if err != nil {
			for _, prev := range ex.peers[:d] {
				prev.conn.Close()
			}
			return nil, fmt.Errorf("%w: peer %d (%s): %v", exec.ErrExchangeUnsupported, d, t.peers[d], err)
		}
		ex.peers[d] = p
	}
	ex.start()
	return ex, nil
}

// dialPeer connects and handshakes shard d's worker: hello out, accept (or
// refusal) back, all under the dial timeout.
func (t *NetShuffleTransport) dialPeer(addr string, d int, hello ShardHelloMsg) (*netPeer, error) {
	conn, err := net.DialTimeout("tcp", addr, t.dialTO)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn.SetDeadline(time.Now().Add(t.dialTO))
	hello.Shard = uint16(d)
	bw := bufio.NewWriterSize(conn, 32<<10)
	br := bufio.NewReaderSize(conn, 32<<10)
	if err := WriteMsg(bw, MsgShardHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	fr, err := ReadFrame(br, MaxFrame)
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch fr.Type {
	case MsgShardAccept:
		acc, err := DecodeShardAccept(fr.Payload)
		if err != nil || acc.JoinID != hello.JoinID {
			conn.Close()
			return nil, fmt.Errorf("bad accept frame")
		}
		conn.SetDeadline(time.Time{})
		credit := int(acc.Credit)
		if credit <= 0 {
			credit = 1
		}
		p := &netPeer{
			id:     d,
			conn:   conn,
			br:     br,
			bw:     bw,
			frames: make(chan shufFrame, 2*credit),
			credit: make(chan struct{}, credit),
		}
		for i := 0; i < credit; i++ {
			p.credit <- struct{}{}
		}
		return p, nil
	case MsgShardErr:
		em, derr := DecodeShardErr(fr.Payload)
		conn.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, fmt.Errorf("worker refused: %s: %s", em.Code, em.Message)
	default:
		conn.Close()
		return nil, fmt.Errorf("unexpected handshake frame 0x%02x", fr.Type)
	}
}

func narrowKeys(ks []int) []uint16 {
	if len(ks) == 0 {
		return nil
	}
	out := make([]uint16, len(ks))
	for i, k := range ks {
		out[i] = uint16(k)
	}
	return out
}

// shufFrame is one frame queued for a peer's sender goroutine. Route
// batches consume a credit and carry rows; EOF markers are free.
type shufFrame struct {
	typ  byte
	msg  Encoder
	rows int
}

// netPeer is one worker connection's coordinator-side state.
type netPeer struct {
	id     int
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	frames chan shufFrame
	credit chan struct{} // tokens = route batches the window still allows in flight

	outs []exec.ShufOut // filled by the receiver goroutine only
	done ShardDoneMsg
	got  bool // ShardDone arrived
}

// netExchange is one join's live TCP exchange. Batch accumulators are
// sharded by sender goroutine — bacc per destination (single build
// router), pacc per (source, destination) with only goroutine src touching
// row src — so accumulation is lock-free; the per-peer frames channel is
// the producer/sender handoff.
type netExchange struct {
	spec   exec.ShuffleJoinSpec
	joinID uint64
	peers  []*netPeer

	bacc [][]exec.ShufBuild
	pacc [][][]exec.ShufProbe

	sendWG  sync.WaitGroup
	recvWG  sync.WaitGroup
	stopWG  sync.WaitGroup
	stopCh  chan struct{}
	abortCh chan struct{}
	failErr error
	failMu  sync.Mutex
	aborted sync.Once
}

// start launches the per-peer sender and receiver goroutines plus the
// cancellation watchdog that ties the exchange into the query's one
// cooperative cancel flag — the same flag a client disconnect flips, so
// session teardown and shuffle teardown are a single path.
func (ex *netExchange) start() {
	ex.stopCh = make(chan struct{})
	for _, p := range ex.peers {
		ex.sendWG.Add(1)
		ex.recvWG.Add(1)
		go ex.sender(p)
		go ex.receiver(p)
	}
	if ex.spec.Canceled != nil {
		ex.stopWG.Add(1)
		go func() {
			defer ex.stopWG.Done()
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-ex.stopCh:
					return
				case <-tick.C:
					if ex.spec.Canceled() {
						ex.fail(exec.ErrCanceled)
						return
					}
				}
			}
		}()
	}
}

// fail records the first error, wakes every blocked sender, and severs all
// peer connections (unblocking receivers stuck in ReadFrame). Idempotent.
func (ex *netExchange) fail(err error) {
	ex.failMu.Lock()
	if ex.failErr == nil {
		ex.failErr = err
	}
	ex.failMu.Unlock()
	ex.aborted.Do(func() {
		close(ex.abortCh)
		for _, p := range ex.peers {
			p.conn.Close()
		}
	})
}

func (ex *netExchange) err() error {
	ex.failMu.Lock()
	defer ex.failMu.Unlock()
	return ex.failErr
}

// sender drains p.frames onto the socket. A route batch first takes a
// credit token — blocking (and counting a backpressure stall) when the
// worker's window is exhausted — then encodes through the pooled buffer
// and writes one frame. The flush-when-idle pattern keeps frames coalesced
// under load and latency low when the stream goes quiet.
func (ex *netExchange) sender(p *netPeer) {
	defer ex.sendWG.Done()
	st := ex.spec.Stats
	for {
		var f shufFrame
		var ok bool
		select {
		case f, ok = <-p.frames:
		default:
			// Channel momentarily empty: flush what's buffered before
			// blocking so the worker isn't idle while bytes sit here.
			if err := p.bw.Flush(); err != nil {
				ex.fail(fmt.Errorf("%w: peer %d: %v", exec.ErrShufflePeerLost, p.id, err))
				return
			}
			select {
			case f, ok = <-p.frames:
			case <-ex.abortCh:
				return
			}
		}
		if !ok {
			if err := p.bw.Flush(); err != nil {
				ex.fail(fmt.Errorf("%w: peer %d: %v", exec.ErrShufflePeerLost, p.id, err))
			}
			return
		}
		if f.rows > 0 { // route batches are credit-gated; EOFs ride free
			select {
			case <-p.credit:
			default:
				// Window exhausted. Flush first — the ack that will refill
				// the window can only come after the worker has seen the
				// frames still sitting in our write buffer — then block.
				if err := p.bw.Flush(); err != nil {
					ex.fail(fmt.Errorf("%w: peer %d: %v", exec.ErrShufflePeerLost, p.id, err))
					return
				}
				st.AddNetStall(p.id)
				select {
				case <-p.credit:
				case <-ex.abortCh:
					return
				}
			}
		}
		w := encodePool.Get().(*wireWriter)
		w.buf = w.buf[:0]
		f.msg.encodeTo(w)
		err := WriteFrame(p.bw, f.typ, w.buf)
		wire := frameHeaderLen + len(w.buf)
		if cap(w.buf) <= maxPooledEncodeBuf {
			encodePool.Put(w)
		}
		if err != nil {
			ex.fail(fmt.Errorf("%w: peer %d: %v", exec.ErrShufflePeerLost, p.id, err))
			return
		}
		st.AddNetFrame(p.id, wire, f.rows)
	}
}

// receiver consumes the worker's reply stream: credit acks feed the sender
// window, out batches accumulate for Collect, ShardDone completes the
// peer, ShardErr (or a dead connection) fails the exchange.
func (ex *netExchange) receiver(p *netPeer) {
	defer ex.recvWG.Done()
	for {
		fr, err := ReadFrame(p.br, MaxFrame)
		if err != nil {
			if ex.err() == nil {
				ex.fail(fmt.Errorf("%w: peer %d: %v", exec.ErrShufflePeerLost, p.id, err))
			}
			return
		}
		switch fr.Type {
		case MsgShardAck:
			ack, err := DecodeShardAck(fr.Payload)
			if err != nil {
				ex.fail(fmt.Errorf("%w: peer %d: %v", exec.ErrShufflePeerLost, p.id, err))
				return
			}
			for i := 0; i < int(ack.Credit); i++ {
				select {
				case p.credit <- struct{}{}:
				default: // worker over-acked; cap at the window
				}
			}
		case MsgOutBatch:
			ob, err := DecodeOutBatch(fr.Payload)
			if err != nil {
				ex.fail(fmt.Errorf("%w: peer %d: %v", exec.ErrShufflePeerLost, p.id, err))
				return
			}
			p.outs = append(p.outs, ob.Rows...)
		case MsgShardDone:
			dn, err := DecodeShardDone(fr.Payload)
			if err != nil {
				ex.fail(fmt.Errorf("%w: peer %d: %v", exec.ErrShufflePeerLost, p.id, err))
				return
			}
			p.done = dn
			p.got = true
			return
		case MsgShardErr:
			em, derr := DecodeShardErr(fr.Payload)
			if derr != nil {
				ex.fail(fmt.Errorf("%w: peer %d: %v", exec.ErrShufflePeerLost, p.id, derr))
			} else {
				ex.fail(fmt.Errorf("%w: peer %d: %s: %s", exec.ErrShufflePeerLost, p.id, em.Code, em.Message))
			}
			return
		default:
			ex.fail(fmt.Errorf("%w: peer %d: unexpected frame 0x%02x", exec.ErrShufflePeerLost, p.id, fr.Type))
			return
		}
	}
}

// enqueue hands a sealed frame to a peer's sender, bailing out if the
// exchange has already failed so producers never deadlock on a dead peer.
func (ex *netExchange) enqueue(dst int, f shufFrame) error {
	select {
	case ex.peers[dst].frames <- f:
		return nil
	case <-ex.abortCh:
		if err := ex.err(); err != nil {
			return err
		}
		return exec.ErrShufflePeerLost
	}
}

// SendBuild accumulates a routed build row for dst, sealing a route-batch
// frame at the 256-row batch shape. Single-goroutine (the build router).
func (ex *netExchange) SendBuild(dst int, b exec.ShufBuild) error {
	ex.spec.Stats.AddNetRouted(1)
	ex.bacc[dst] = append(ex.bacc[dst], b)
	if len(ex.bacc[dst]) >= shufBatchRows {
		return ex.sealBuild(dst)
	}
	return nil
}

func (ex *netExchange) sealBuild(dst int) error {
	rows := ex.bacc[dst]
	ex.bacc[dst] = nil
	return ex.enqueue(dst, shufFrame{
		typ:  MsgRouteBatch,
		msg:  RouteBatchMsg{JoinID: ex.joinID, Phase: ShufPhaseBuild, Build: rows},
		rows: len(rows),
	})
}

// FlushBuild seals every partial build batch and marks the build phase
// complete at every worker.
func (ex *netExchange) FlushBuild() error {
	for d := range ex.peers {
		if len(ex.bacc[d]) > 0 {
			if err := ex.sealBuild(d); err != nil {
				return err
			}
		}
		eof := shufFrame{typ: MsgShardEOF, msg: ShardEOFMsg{JoinID: ex.joinID, Phase: ShufPhaseBuild}}
		if err := ex.enqueue(d, eof); err != nil {
			return err
		}
	}
	return nil
}

// SendProbe accumulates a routed probe row on the (src, dst) stream. Only
// goroutine src touches row src of the accumulator, so sealing needs no
// lock; the frames channel is the concurrency boundary.
func (ex *netExchange) SendProbe(src, dst int, p exec.ShufProbe) error {
	ex.spec.Stats.AddNetRouted(1)
	ex.pacc[src][dst] = append(ex.pacc[src][dst], p)
	if len(ex.pacc[src][dst]) >= shufBatchRows {
		return ex.sealProbe(src, dst)
	}
	return nil
}

func (ex *netExchange) sealProbe(src, dst int) error {
	rows := ex.pacc[src][dst]
	ex.pacc[src][dst] = nil
	return ex.enqueue(dst, shufFrame{
		typ:  MsgRouteBatch,
		msg:  RouteBatchMsg{JoinID: ex.joinID, Phase: ShufPhaseProbe, Src: uint16(src), Probe: rows},
		rows: len(rows),
	})
}

// FlushProbe seals src's partial batches and ends its stream at every
// worker — every worker, because a worker cannot probe until it has heard
// from all sources, including those that routed it nothing.
func (ex *netExchange) FlushProbe(src int) error {
	for d := range ex.peers {
		if len(ex.pacc[src][d]) > 0 {
			if err := ex.sealProbe(src, d); err != nil {
				return err
			}
		}
		eof := shufFrame{typ: MsgShardEOF, msg: ShardEOFMsg{JoinID: ex.joinID, Phase: ShufPhaseProbe, Src: uint16(src)}}
		if err := ex.enqueue(d, eof); err != nil {
			return err
		}
	}
	return nil
}

// Collect closes the outbound streams, waits for every worker's output and
// clock report, and hands back the per-shard (Seq, BIdx)-sorted streams
// plus the remote clock work for MergeScaled.
func (ex *netExchange) Collect() ([][]exec.ShufOut, []exec.ShardUnits, error) {
	for _, p := range ex.peers {
		close(p.frames)
	}
	ex.sendWG.Wait()
	ex.recvWG.Wait()
	if err := ex.err(); err != nil {
		return nil, nil, err
	}
	outs := make([][]exec.ShufOut, len(ex.peers))
	units := make([]exec.ShardUnits, len(ex.peers))
	for i, p := range ex.peers {
		if !p.got {
			return nil, nil, fmt.Errorf("%w: peer %d closed without completing", exec.ErrShufflePeerLost, i)
		}
		if int(p.done.OutRows) != len(p.outs) {
			return nil, nil, fmt.Errorf("%w: peer %d reported %d rows, streamed %d",
				exec.ErrShufflePeerLost, i, p.done.OutRows, len(p.outs))
		}
		outs[i] = p.outs
		units[i] = exec.ShardUnits{
			UnitsScaled: p.done.UnitsScaled,
			SeqReads:    p.done.SeqReads,
			RandReads:   p.done.RandReads,
			PageWrites:  p.done.PageWrites,
			RowsCPU:     p.done.RowsCPU,
		}
	}
	ex.shutdown()
	return outs, units, nil
}

// Abort tears the exchange down early. Safe (and a near-no-op) after a
// successful Collect.
func (ex *netExchange) Abort() {
	ex.aborted.Do(func() {
		close(ex.abortCh)
		for _, p := range ex.peers {
			p.conn.Close()
		}
	})
	ex.shutdown()
}

// shutdown stops the watchdog and closes connections; idempotent.
func (ex *netExchange) shutdown() {
	select {
	case <-ex.stopCh:
	default:
		close(ex.stopCh)
	}
	ex.stopWG.Wait()
	for _, p := range ex.peers {
		p.conn.Close()
	}
}
