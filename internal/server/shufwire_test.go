package server

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"rqp/internal/exec"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// shufSampleHello fills every hello field — including all nine cost-model
// charges — with distinct values so DeepEqual catches silent field drops.
func shufSampleHello() ShardHelloMsg {
	return ShardHelloMsg{
		Version: ProtocolVersion, JoinID: 7, Shard: 2, Shards: 4,
		LeftOuter: true, RWidth: 3,
		LeftKeys: []uint16{0, 2}, RightKeys: []uint16{1, 3},
		Model: storage.CostModel{
			SeqPageRead: 1.5, RandPageRead: 2.5, PageWrite: 3.5, RowCPU: 0.125,
			HashProbe: 0.25, Compare: 0.0625, FilterTest: 0.375, ZoneCheck: 0.75,
			NetRow: 1.25,
		},
	}
}

func shufSampleBuildBatch() RouteBatchMsg {
	return RouteBatchMsg{
		JoinID: 7, Phase: ShufPhaseBuild,
		Build: []exec.ShufBuild{
			{Idx: 0, Own: true, Hash: 0xDEADBEEF, Row: sampleValues()},
			{Idx: 41, Own: false, Hash: 1, Row: types.Row{types.Int(9)}},
		},
	}
}

func shufSampleProbeBatch() RouteBatchMsg {
	return RouteBatchMsg{
		JoinID: 7, Phase: ShufPhaseProbe, Src: 3,
		Probe: []exec.ShufProbe{
			{Seq: 1 << 30, Main: true, Row: sampleValues()},
			{Seq: (1 << 30) + 1, Main: false, Row: types.Row{types.Str("dup")}},
		},
	}
}

// TestShuffleMessageRoundTrips holds the shuffle sub-protocol to the same
// bar as the session protocol: every frame kind round-trips through the
// envelope with DeepEqual fidelity and a canonical re-encoding.
func TestShuffleMessageRoundTrips(t *testing.T) {
	cases := []struct {
		name   string
		typ    byte
		msg    interface{ Encode() []byte }
		decode func([]byte) (any, error)
	}{
		{"ShardHello", MsgShardHello, shufSampleHello(),
			func(p []byte) (any, error) { return DecodeShardHello(p) }},
		{"ShardHelloNoKeys", MsgShardHello,
			ShardHelloMsg{Version: ProtocolVersion, JoinID: 1, Shard: 0, Shards: 1, RWidth: 1},
			func(p []byte) (any, error) { return DecodeShardHello(p) }},
		{"RouteBatchBuild", MsgRouteBatch, shufSampleBuildBatch(),
			func(p []byte) (any, error) { return DecodeRouteBatch(p) }},
		{"RouteBatchProbe", MsgRouteBatch, shufSampleProbeBatch(),
			func(p []byte) (any, error) { return DecodeRouteBatch(p) }},
		{"ShardEOFBuild", MsgShardEOF,
			ShardEOFMsg{JoinID: 7, Phase: ShufPhaseBuild},
			func(p []byte) (any, error) { return DecodeShardEOF(p) }},
		{"ShardEOFProbe", MsgShardEOF,
			ShardEOFMsg{JoinID: 7, Phase: ShufPhaseProbe, Src: 5},
			func(p []byte) (any, error) { return DecodeShardEOF(p) }},
		{"ShardAccept", MsgShardAccept,
			ShardAcceptMsg{JoinID: 7, Credit: shufCreditWindow},
			func(p []byte) (any, error) { return DecodeShardAccept(p) }},
		{"ShardAck", MsgShardAck,
			ShardAckMsg{JoinID: 7, Credit: 16},
			func(p []byte) (any, error) { return DecodeShardAck(p) }},
		{"OutBatch", MsgOutBatch,
			OutBatchMsg{JoinID: 7, Rows: []exec.ShufOut{
				{Seq: 12, BIdx: 3, Row: sampleValues()},
				{Seq: 12, BIdx: -1, Row: types.Row{types.Int(1), types.Null()}},
			}},
			func(p []byte) (any, error) { return DecodeOutBatch(p) }},
		{"ShardDone", MsgShardDone,
			ShardDoneMsg{JoinID: 7, OutRows: 4096, UnitsScaled: 123456789012,
				SeqReads: 17, RandReads: 3, PageWrites: 2, RowsCPU: 99999},
			func(p []byte) (any, error) { return DecodeShardDone(p) }},
		{"ShardErr", MsgShardErr,
			ShardErrMsg{JoinID: 7, Code: CodeAdmit, Message: "worker admission queue timeout"},
			func(p []byte) (any, error) { return DecodeShardErr(p) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := tc.msg.Encode()
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tc.typ, enc); err != nil {
				t.Fatal(err)
			}
			f, err := ReadFrame(&buf, MaxFrame)
			if err != nil {
				t.Fatal(err)
			}
			if f.Type != tc.typ {
				t.Fatalf("type %#x, want %#x", f.Type, tc.typ)
			}
			got, err := tc.decode(f.Payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if want := reflect.ValueOf(tc.msg).Interface(); !reflect.DeepEqual(got, want) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, want)
			}
			re := got.(interface{ Encode() []byte }).Encode()
			if !bytes.Equal(re, enc) {
				t.Fatalf("re-encode not canonical:\n got %x\nwant %x", re, enc)
			}
		})
	}
}

// TestShuffleDecodeRejectsMalformed pins the decoder guards the fuzzer
// seeds: bad shard ids, over-cap batch counts, unknown phases, truncation.
func TestShuffleDecodeRejectsMalformed(t *testing.T) {
	t.Run("BadShardID", func(t *testing.T) {
		h := shufSampleHello()
		h.Shard = h.Shards // out of range: no valid exchange produces this
		if _, err := DecodeShardHello(h.Encode()); !errors.Is(err, ErrProto) {
			t.Fatalf("expected ErrProto on shard id >= shards, got %v", err)
		}
		h.Shards = 0
		h.Shard = 0
		if _, err := DecodeShardHello(h.Encode()); !errors.Is(err, ErrProto) {
			t.Fatalf("expected ErrProto on zero-width exchange, got %v", err)
		}
	})
	t.Run("OverCapBatch", func(t *testing.T) {
		w := &wireWriter{}
		w.u64(7)
		w.byte(ShufPhaseProbe)
		w.u16(0)
		w.u16(shufBatchRows + 1) // claims more rows than a frame may carry
		if _, err := DecodeRouteBatch(w.buf); !errors.Is(err, ErrProto) {
			t.Fatalf("expected ErrProto on over-cap batch, got %v", err)
		}
	})
	t.Run("UnknownPhase", func(t *testing.T) {
		m := shufSampleBuildBatch()
		m.Phase = 'x'
		if _, err := DecodeRouteBatch(m.Encode()); !errors.Is(err, ErrProto) {
			t.Fatalf("expected ErrProto on unknown phase, got %v", err)
		}
		if _, err := DecodeShardEOF(ShardEOFMsg{JoinID: 7, Phase: 'x'}.Encode()); !errors.Is(err, ErrProto) {
			t.Fatalf("expected ErrProto on unknown eof phase, got %v", err)
		}
	})
	t.Run("Truncated", func(t *testing.T) {
		for name, full := range map[string][]byte{
			"hello": shufSampleHello().Encode(),
			"build": shufSampleBuildBatch().Encode(),
			"probe": shufSampleProbeBatch().Encode(),
		} {
			for cut := 0; cut < len(full); cut++ {
				var err error
				switch name {
				case "hello":
					_, err = DecodeShardHello(full[:cut])
				default:
					_, err = DecodeRouteBatch(full[:cut])
				}
				if !errors.Is(err, ErrProto) {
					t.Fatalf("%s cut at %d: expected ErrProto, got %v", name, cut, err)
				}
			}
		}
	})
	t.Run("TrailingGarbage", func(t *testing.T) {
		p := append(shufSampleProbeBatch().Encode(), 0xFF)
		if _, err := DecodeRouteBatch(p); !errors.Is(err, ErrProto) {
			t.Fatalf("expected ErrProto on trailing garbage, got %v", err)
		}
	})
	t.Run("HostileKeyCount", func(t *testing.T) {
		w := &wireWriter{}
		w.u16(ProtocolVersion)
		w.u64(7)
		w.u16(0)
		w.u16(2)
		w.byte(0)
		w.u16(1)
		w.u16(0xFFFF) // claims 65535 key columns
		if _, err := DecodeShardHello(w.buf); !errors.Is(err, ErrProto) {
			t.Fatalf("expected ErrProto on hostile key count, got %v", err)
		}
	})
}

// TestWriteMsgMatchesEncode pins the pooled fast path's equivalence: the
// bytes WriteMsg puts on the wire are exactly WriteFrame(Encode()).
func TestWriteMsgMatchesEncode(t *testing.T) {
	msgs := []struct {
		typ byte
		m   Encoder
	}{
		{MsgShardHello, shufSampleHello()},
		{MsgRouteBatch, shufSampleBuildBatch()},
		{MsgRouteBatch, shufSampleProbeBatch()},
		{MsgQuery, QueryMsg{SQL: "SELECT 1 FROM r", Params: sampleValues()}},
		{MsgRow, RowMsg{Values: sampleValues()}},
	}
	for _, tc := range msgs {
		var pooled, plain bytes.Buffer
		if err := WriteMsg(&pooled, tc.typ, tc.m); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&plain, tc.typ, tc.m.(interface{ Encode() []byte }).Encode()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pooled.Bytes(), plain.Bytes()) {
			t.Fatalf("type %#x: pooled frame differs from Encode path", tc.typ)
		}
	}
}

// benchBatch builds a full-width route batch — the frame shape the shuffle
// hot path encodes thousands of per query.
func benchBatch() RouteBatchMsg {
	rows := make([]exec.ShufProbe, shufBatchRows)
	for i := range rows {
		rows[i] = exec.ShufProbe{
			Seq: int64(i), Main: true,
			Row: types.Row{types.Int(int64(i)), types.Int(int64(i % 97)), types.Str("payload")},
		}
	}
	return RouteBatchMsg{JoinID: 7, Phase: ShufPhaseProbe, Src: 1, Probe: rows}
}

// BenchmarkWireEncode contrasts the allocating Encode path with the pooled
// WriteMsg path on the shuffle hot-path frame. The pooled path must not
// allocate per frame — that is the reason encode buffers are pooled.
func BenchmarkWireEncode(b *testing.B) {
	m := benchBatch()
	b.Run("encode-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.Encode()
		}
	})
	b.Run("writemsg-pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := WriteMsg(io.Discard, MsgRouteBatch, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}
