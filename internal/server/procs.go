package server

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"rqp/internal/wlm"
)

// Shard worker processes are spawned by re-execing the current binary with
// RQP_SHARD_WORKER set — the pattern that lets any rqp command (rqpbench,
// rqpregress, a test binary) double as its own worker fleet without a
// separate executable. The child binds an ephemeral loopback port, prints
// the address as its first stdout line (the parent's rendezvous), and
// serves exchanges until its stdin closes — tying worker lifetime to the
// parent so an interrupted bench never strands processes.

// shardWorkerEnv marks a process as a spawned shard worker.
const shardWorkerEnv = "RQP_SHARD_WORKER"

// shardWorkerMPLEnv carries the worker's per-process admission MPL
// (0/unset = unlimited).
const shardWorkerMPLEnv = "RQP_SHARD_WORKER_MPL"

// MaybeRunShardWorker checks whether this process was spawned as a shard
// worker and, if so, runs the worker loop and never returns (os.Exit).
// Call it first thing in main — and in TestMain for test binaries that
// spawn workers — before flag parsing or any other setup.
func MaybeRunShardWorker() {
	if os.Getenv(shardWorkerEnv) == "" {
		return
	}
	mpl := 0
	if v := os.Getenv(shardWorkerMPLEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			mpl = n
		}
	}
	var admit *wlm.Admitter
	if mpl > 0 {
		admit = wlm.NewAdmitter(mpl)
	}
	w := NewShardWorker(ShardWorkerConfig{Admit: admit})
	if err := w.Listen("127.0.0.1:0"); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	// The rendezvous: the parent reads the first line for the address.
	fmt.Println(w.Addr())
	os.Stdout.Sync()
	go func() {
		// Parent death (or stop) closes our stdin; exit with it.
		io.Copy(io.Discard, os.Stdin)
		w.Close()
		os.Exit(0)
	}()
	if err := w.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// WorkerProcs is a fleet of spawned shard worker processes.
type WorkerProcs struct {
	Addrs []string
	cmds  []*exec.Cmd
	stdin []io.WriteCloser
}

// SpawnShardWorkers re-execs this binary n times as shard workers (MPL
// mpl each, 0 = unlimited) and waits for each to report its listen
// address. The caller must have MaybeRunShardWorker at the top of main.
func SpawnShardWorkers(n, mpl int) (*WorkerProcs, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	procs := &WorkerProcs{}
	for i := 0; i < n; i++ {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			shardWorkerEnv+"=1",
			shardWorkerMPLEnv+"="+strconv.Itoa(mpl))
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			procs.Stop()
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			procs.Stop()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			procs.Stop()
			return nil, err
		}
		procs.cmds = append(procs.cmds, cmd)
		procs.stdin = append(procs.stdin, stdin)
		addr, err := readAddrLine(stdout, 10*time.Second)
		if err != nil {
			procs.Stop()
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		procs.Addrs = append(procs.Addrs, addr)
	}
	return procs, nil
}

// readAddrLine reads the worker's first stdout line (its listen address)
// with a deadline, so a child that dies pre-listen fails the spawn instead
// of hanging it.
func readAddrLine(r io.Reader, timeout time.Duration) (string, error) {
	type res struct {
		line string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		line, err := bufio.NewReader(r).ReadString('\n')
		ch <- res{strings.TrimSpace(line), err}
	}()
	select {
	case got := <-ch:
		if got.err != nil {
			return "", fmt.Errorf("reading worker address: %w", got.err)
		}
		if got.line == "" {
			return "", fmt.Errorf("worker reported empty address")
		}
		return got.line, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out waiting for worker address")
	}
}

// Stop closes every worker's stdin (their exit signal) and reaps them.
func (p *WorkerProcs) Stop() {
	for _, in := range p.stdin {
		in.Close()
	}
	for _, cmd := range p.cmds {
		done := make(chan struct{})
		go func(c *exec.Cmd) {
			c.Wait()
			close(done)
		}(cmd)
		select {
		case <-done:
		case <-time.After(3 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	p.cmds, p.stdin, p.Addrs = nil, nil, nil
}

// Kill forcibly terminates worker i — the fault-injection hook the
// kill-a-worker-mid-query test uses. The process dies without any protocol
// goodbye, exactly like a crashed node.
func (p *WorkerProcs) Kill(i int) error {
	if i < 0 || i >= len(p.cmds) {
		return fmt.Errorf("no worker %d", i)
	}
	if err := p.cmds[i].Process.Kill(); err != nil {
		return err
	}
	p.cmds[i].Wait()
	return nil
}
