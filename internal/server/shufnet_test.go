package server

import (
	"fmt"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/core"
	"rqp/internal/workload"
)

// netShufQueries mirrors the core shard property suite's result shapes —
// a one-row aggregate, a row-level join with a pushed-down filter, a LEFT
// JOIN (null extension over the wire) — plus a join with a cross-table
// residual predicate, the shape the net transport must refuse and fall
// back on, since a residual is a coordinator closure.
var netShufQueries = []string{
	"SELECT COUNT(*), SUM(pt.pval) FROM pt, bt WHERE pt.k = bt.k",
	"SELECT pt.k, bt.bval, pt.pval FROM pt, bt WHERE pt.k = bt.k AND bt.bval < 500",
	"SELECT pt.k, bt.bval FROM pt LEFT JOIN bt ON pt.k = bt.k",
	"SELECT pt.k, bt.bval FROM pt, bt WHERE pt.k = bt.k AND pt.pval < bt.bval",
}

// netShufResidualQuery indexes the one query above whose join carries a
// residual predicate — the transport-refusal path.
const netShufResidualQuery = 3

func netRowsKey(res *core.Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// startWorkerPool runs n in-process shard workers on loopback — in-process
// so the race detector sees coordinator and worker goroutines in one
// binary — and returns their addresses.
func startWorkerPool(t testing.TB, n int, cfg ShardWorkerConfig) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w := NewShardWorker(cfg)
		if err := w.Listen("127.0.0.1:0"); err != nil {
			t.Fatalf("worker %d listen: %v", i, err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

func netShufCatalog(t testing.TB, skew float64) *catalog.Catalog {
	t.Helper()
	cfg := workload.DefaultShardJoin()
	cfg.BuildRows = 600
	cfg.ProbeRows = 2400
	cfg.Keys = 150
	cfg.Skew = skew
	cat, err := workload.BuildShardJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

type netShufCell struct {
	skew    float64
	mode    string
	memRows int
	vec     bool
	dop     int
	shards  []int
}

// netShufMatrix is the acceptance matrix: shards {1,2,4,8} × row/vec ×
// DOP {1,2,8} × skewed/uniform, plus forced broadcast and a degrade cell.
func netShufMatrix(short bool) []netShufCell {
	all := []int{1, 2, 4, 8}
	dops := []int{1, 2, 8}
	if short {
		all = []int{1, 2, 4}
		dops = []int{1, 2}
	}
	var cells []netShufCell
	for _, vec := range []bool{false, true} {
		for _, dop := range dops {
			cells = append(cells, netShufCell{0, "", 1 << 16, vec, dop, all})
		}
	}
	cells = append(cells,
		// Skewed keys: hot-key split with duplicated probe routing on the wire.
		netShufCell{1.4, "repartition", 1 << 16, false, 1, []int{2, 4, 8}},
		// Broadcast: build replicas cross the wire, probes stay put.
		netShufCell{0, "broadcast", 1 << 16, false, 2, []int{2, 4}},
		// Degrade: build exceeds its grant before any exchange opens.
		netShufCell{0, "", 64, false, 1, []int{2, 4}})
	if short {
		cells = cells[:len(cells)-1]
	}
	return cells
}

// TestNetShuffleExactness is the cross-process half of the repo's signature
// invariant: with transport=tcp, result rows are byte-identical to serial
// and main-clock cost is integer-exactly equal — the same property the
// in-process shard suite pins, now with every hash-table build and probe
// happening behind a socket, under -race.
func TestNetShuffleExactness(t *testing.T) {
	addrs := startWorkerPool(t, 8, ShardWorkerConfig{})
	built := map[float64]*catalog.Catalog{}
	for _, cell := range netShufMatrix(testing.Short()) {
		cat, ok := built[cell.skew]
		if !ok {
			cat = netShufCatalog(t, cell.skew)
			built[cell.skew] = cat
		}
		base := core.Attach(cat, core.Config{
			Policy: core.PolicyClassic, MemBudgetRows: cell.memRows,
			HistBuckets: 16, DOP: cell.dop, Vec: cell.vec,
		})
		want := make(map[string]*core.Result, len(netShufQueries))
		for _, q := range netShufQueries {
			want[q] = base.MustExec(q)
		}
		for _, shards := range cell.shards {
			name := fmt.Sprintf("skew=%.1f/mode=%s/mem=%d/vec=%v/dop=%d/shards=%d",
				cell.skew, cell.mode, cell.memRows, cell.vec, cell.dop, shards)
			eng := core.Attach(cat, core.Config{
				Policy: core.PolicyClassic, MemBudgetRows: cell.memRows,
				HistBuckets: 16, DOP: cell.dop, Vec: cell.vec,
				Shards: shards, ShuffleForce: cell.mode,
				ShuffleTransport: NewNetShuffleTransport(addrs),
			})
			for qi, q := range netShufQueries {
				got := eng.MustExec(q)
				w := want[q]
				if netRowsKey(got) != netRowsKey(w) {
					t.Fatalf("%s %q: rows differ (%d vs %d)", name, q, len(got.Rows), len(w.Rows))
				}
				if got.Cost != w.Cost {
					t.Fatalf("%s %q: cost %v != serial %v", name, q, got.Cost, w.Cost)
				}
				if shards <= 1 || got.Shuffle == nil {
					continue
				}
				sn := got.Shuffle
				if sn.Degrades > 0 {
					continue // no exchange opened; nothing on the wire to check
				}
				if qi == netShufResidualQuery {
					// Residual predicates cannot cross a process boundary: the
					// transport must refuse pre-routing and run locally.
					if sn.NetFallbacks == 0 {
						t.Fatalf("%s %q: residual join did not fall back (transport=%q)", name, q, sn.Transport)
					}
					if sn.NetFrames != 0 {
						t.Fatalf("%s %q: fallback exchange still framed %d", name, q, sn.NetFrames)
					}
					continue
				}
				if sn.Transport != "tcp" {
					t.Fatalf("%s %q: expected tcp transport, got %q (fallbacks=%d)", name, q, sn.Transport, sn.NetFallbacks)
				}
				if sn.NetFrames == 0 || sn.NetBytes == 0 {
					t.Fatalf("%s %q: tcp transport moved nothing: %+v", name, q, sn)
				}
				if !sn.Reconciled() {
					t.Fatalf("%s %q: wire accounting off: routed %d, framed %d",
						name, q, sn.NetRowsRouted, sn.NetRowsWire)
				}
			}
		}
	}
}

// TestNetShuffleColocatedZeroBytes pins the no-movement guarantee across
// the network layer: a co-located join with a transport configured must
// still put zero bytes on the wire — shards that own their data have
// nothing to ship.
func TestNetShuffleColocatedZeroBytes(t *testing.T) {
	addrs := startWorkerPool(t, 4, ShardWorkerConfig{})
	for _, shards := range []int{2, 4} {
		cat := netShufCatalog(t, 0)
		if err := workload.PartitionShardJoin(cat, shards); err != nil {
			t.Fatal(err)
		}
		base := core.Attach(cat, core.Config{Policy: core.PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16})
		eng := core.Attach(cat, core.Config{
			Policy: core.PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16,
			Shards: shards, ShuffleTransport: NewNetShuffleTransport(addrs),
		})
		for _, q := range netShufQueries {
			w := base.MustExec(q)
			got := eng.MustExec(q)
			if netRowsKey(got) != netRowsKey(w) || got.Cost != w.Cost {
				t.Fatalf("shards=%d %q: colocated join not exact over net transport", shards, q)
			}
			sn := got.Shuffle
			if sn == nil || sn.ColocatedJoins == 0 {
				t.Fatalf("shards=%d %q: expected colocated join, got %+v", shards, q, sn)
			}
			if sn.NetFrames != 0 || sn.NetBytes != 0 || sn.NetRowsWire != 0 {
				t.Errorf("shards=%d %q: colocated join hit the wire: frames=%d bytes=%d",
					shards, q, sn.NetFrames, sn.NetBytes)
			}
		}
	}
}

// TestNetShuffleFrameAmortization pins the batching win the transport
// exists for: on a repartition join at the default workload size, rows
// ride the wire at least 5× denser than frames — and the route-site and
// frame-site row counts reconcile exactly.
func TestNetShuffleFrameAmortization(t *testing.T) {
	addrs := startWorkerPool(t, 4, ShardWorkerConfig{})
	cat, err := workload.BuildShardJoin(workload.DefaultShardJoin())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.Attach(cat, core.Config{
		Policy: core.PolicyClassic, MemBudgetRows: 1 << 20, HistBuckets: 16,
		Shards: 4, ShuffleForce: "repartition",
		ShuffleTransport: NewNetShuffleTransport(addrs),
	})
	got := eng.MustExec(netShufQueries[0])
	sn := got.Shuffle
	if sn == nil || sn.Transport != "tcp" {
		t.Fatalf("expected tcp shuffle, got %+v", sn)
	}
	if !sn.Reconciled() {
		t.Fatalf("wire accounting off: routed %d, framed %d", sn.NetRowsRouted, sn.NetRowsWire)
	}
	if sn.NetRowsWire < 5*sn.NetFrames {
		t.Fatalf("batching too loose: %d rows in %d frames (< 5x)", sn.NetRowsWire, sn.NetFrames)
	}
	var peerFrames, peerBytes int64
	for i := range sn.PeerFrames {
		peerFrames += sn.PeerFrames[i]
		peerBytes += sn.PeerBytes[i]
	}
	if peerFrames != sn.NetFrames || peerBytes != sn.NetBytes {
		t.Fatalf("per-peer counters do not sum to totals: %d/%d frames, %d/%d bytes",
			peerFrames, sn.NetFrames, peerBytes, sn.NetBytes)
	}
}

// TestNetShuffleTooFewPeers pins the refusal path: more shards than worker
// peers cannot open, so the join must fall back to the local exchange and
// still be exact.
func TestNetShuffleTooFewPeers(t *testing.T) {
	addrs := startWorkerPool(t, 2, ShardWorkerConfig{})
	cat := netShufCatalog(t, 0)
	base := core.Attach(cat, core.Config{Policy: core.PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16})
	eng := core.Attach(cat, core.Config{
		Policy: core.PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16,
		Shards: 4, ShuffleTransport: NewNetShuffleTransport(addrs),
	})
	q := netShufQueries[0]
	w := base.MustExec(q)
	got := eng.MustExec(q)
	if netRowsKey(got) != netRowsKey(w) || got.Cost != w.Cost {
		t.Fatal("fallback join not exact")
	}
	sn := got.Shuffle
	if sn == nil || sn.NetFallbacks == 0 || sn.Transport != "local" {
		t.Fatalf("expected local fallback with too few peers, got %+v", sn)
	}
}
