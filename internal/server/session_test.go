package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rqp/internal/core"
	"rqp/internal/types"
	"rqp/internal/wlm"
)

// testEnv is one running server over a small two-table engine.
type testEnv struct {
	srv  *Server
	eng  *core.Engine
	addr string
}

// newTestEnv starts a server on a loopback port over a fresh engine with
// tables r(a,b) (200 rows) and s(a,c) (50 rows). mpl > 0 installs a WLM
// gate; hook is the optional BeforeExec test hook.
func newTestEnv(t *testing.T, mpl int, queueTimeout time.Duration, hook func(uint64, string, func() bool)) *testEnv {
	t.Helper()
	cfg := core.DefaultConfig()
	if mpl > 0 {
		cfg.Admission = wlm.NewAdmitter(mpl)
	}
	eng := core.Open(cfg)
	eng.Cache = core.NewPlanCache(0)
	eng.MustExec("CREATE TABLE r (a int, b int)")
	eng.MustExec("CREATE TABLE s (a int, c int)")
	for i := 0; i < 200; i++ {
		eng.MustExec("INSERT INTO r VALUES (?, ?)", types.Int(int64(i)), types.Int(int64(i%10)))
	}
	for i := 0; i < 50; i++ {
		eng.MustExec("INSERT INTO s VALUES (?, ?)", types.Int(int64(i)), types.Int(int64(i*2)))
	}
	srv := New(Config{Engine: eng, QueueTimeout: queueTimeout, BeforeExec: hook})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return &testEnv{srv: srv, eng: eng, addr: srv.Addr().String()}
}

// rowsFingerprint renders a result deterministically for equality checks.
func rowsFingerprint(cols []string, rows []types.Row) string {
	return fmt.Sprintf("%v|%v", cols, rows)
}

// TestQueryOverWire checks that a SELECT through the protocol returns
// exactly what the engine returns in-process — columns, rows, and cost.
func TestQueryOverWire(t *testing.T) {
	env := newTestEnv(t, 0, 0, nil)
	c, err := Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.SessionID == 0 {
		t.Fatal("handshake did not assign a session id")
	}

	const q = "SELECT b, COUNT(*) FROM r GROUP BY b ORDER BY b"
	want := env.eng.MustExec(q)
	got, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rowsFingerprint(got.Columns, got.Rows) != rowsFingerprint(want.Columns, want.Rows) {
		t.Fatalf("wire result differs from in-process result:\n got %v %v\nwant %v %v",
			got.Columns, got.Rows, want.Columns, want.Rows)
	}
	if got.Tag != "SELECT" || got.RowCount != uint64(len(want.Rows)) {
		t.Fatalf("complete: tag=%q rows=%d, want SELECT/%d", got.Tag, got.RowCount, len(want.Rows))
	}
	if got.CostUnits <= 0 {
		t.Fatal("expected positive cost units on the wire")
	}
}

// TestQueryParamsOverWire checks positional parameters of every kind.
func TestQueryParamsOverWire(t *testing.T) {
	env := newTestEnv(t, 0, 0, nil)
	c, err := Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := c.Query("SELECT a FROM r WHERE b = ? AND a < ? ORDER BY a", types.Int(3), types.Int(100))
	if err != nil {
		t.Fatal(err)
	}
	want := env.eng.MustExec("SELECT a FROM r WHERE b = ? AND a < ? ORDER BY a", types.Int(3), types.Int(100))
	if rowsFingerprint(got.Columns, got.Rows) != rowsFingerprint(want.Columns, want.Rows) {
		t.Fatalf("parameterized result differs: got %v, want %v", got.Rows, want.Rows)
	}
}

// TestDMLOverWire checks INSERT through the protocol: OK tag and affected
// count, and the row is visible to a following SELECT.
func TestDMLOverWire(t *testing.T) {
	env := newTestEnv(t, 0, 0, nil)
	c, err := Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rs, err := c.Query("INSERT INTO r VALUES (?, ?)", types.Int(9999), types.Int(77))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Tag != "OK" || rs.RowCount != 1 {
		t.Fatalf("insert: tag=%q rows=%d, want OK/1", rs.Tag, rs.RowCount)
	}
	sel, err := c.Query("SELECT b FROM r WHERE a = ?", types.Int(9999))
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Rows) != 1 || sel.Rows[0][0].I != 77 {
		t.Fatalf("inserted row not visible: %v", sel.Rows)
	}
}

// TestPreparedLifecycle walks Prepare → Bind → Execute → re-Bind →
// Execute → Close, including the statement-level error cases: unknown
// statement, Execute without portal, Close clearing the portal.
func TestPreparedLifecycle(t *testing.T) {
	env := newTestEnv(t, 0, 0, nil)
	c, err := Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Execute before any Bind: ERR_NO_PORTAL, session stays usable.
	if _, err := c.Execute(0); !isCode(err, CodeNoPortal) {
		t.Fatalf("expected ERR_NO_PORTAL, got %v", err)
	}
	// Bind of an unknown name: ERR_UNKNOWN_STMT.
	if err := c.Bind("nope"); !isCode(err, CodeUnknownStmt) {
		t.Fatalf("expected ERR_UNKNOWN_STMT, got %v", err)
	}
	// Prepare with a parse error fails at prepare time.
	if err := c.Prepare("bad", "SELEKT zap"); !isCode(err, CodeParse) {
		t.Fatalf("expected ERR_PARSE, got %v", err)
	}

	if err := c.Prepare("byb", "SELECT a FROM r WHERE b = ? ORDER BY a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind("byb", types.Int(4)); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Execute(0)
	if err != nil {
		t.Fatal(err)
	}
	want := env.eng.MustExec("SELECT a FROM r WHERE b = ? ORDER BY a", types.Int(4))
	if rowsFingerprint(rs.Columns, rs.Rows) != rowsFingerprint(want.Columns, want.Rows) {
		t.Fatalf("execute result differs: %v vs %v", rs.Rows, want.Rows)
	}

	// Re-bind with different params re-runs with the new values.
	if err := c.Bind("byb", types.Int(7)); err != nil {
		t.Fatal(err)
	}
	rs2, err := c.Execute(0)
	if err != nil {
		t.Fatal(err)
	}
	want2 := env.eng.MustExec("SELECT a FROM r WHERE b = ? ORDER BY a", types.Int(7))
	if rowsFingerprint(rs2.Columns, rs2.Rows) != rowsFingerprint(want2.Columns, want2.Rows) {
		t.Fatalf("re-bound execute differs: %v vs %v", rs2.Rows, want2.Rows)
	}

	// MaxRows caps the stream without failing the statement.
	if err := c.Bind("byb", types.Int(4)); err != nil {
		t.Fatal(err)
	}
	capped, err := c.Execute(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Rows) != 5 || capped.RowCount != 5 {
		t.Fatalf("row cap: got %d rows (count %d), want 5", len(capped.Rows), capped.RowCount)
	}

	// Close deallocates and clears the portal.
	if err := c.CloseStmt("byb"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(0); !isCode(err, CodeNoPortal) {
		t.Fatalf("expected ERR_NO_PORTAL after Close, got %v", err)
	}
	if err := c.CloseStmt("byb"); !isCode(err, CodeUnknownStmt) {
		t.Fatalf("expected ERR_UNKNOWN_STMT on double Close, got %v", err)
	}
}

// TestStatementErrorKeepsSession checks that an execution error is
// statement-scoped: the next statement on the same session succeeds.
func TestStatementErrorKeepsSession(t *testing.T) {
	env := newTestEnv(t, 0, 0, nil)
	c, err := Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query("SELECT nope FROM missing_table"); err == nil {
		t.Fatal("expected an error for a bad query")
	}
	rs, err := c.Query("SELECT COUNT(*) FROM r")
	if err != nil {
		t.Fatalf("session unusable after statement error: %v", err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].AsInt() != 200 {
		t.Fatalf("unexpected count result: %v", rs.Rows)
	}
}

// TestBadVersionRejected checks the handshake version gate.
func TestBadVersionRejected(t *testing.T) {
	env := newTestEnv(t, 0, 0, nil)
	conn, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgStartup, StartupMsg{Version: 99}.Encode()); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(conn, MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgError {
		t.Fatalf("expected Error frame, got %#x", f.Type)
	}
	m, err := DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != CodeProto {
		t.Fatalf("expected %s, got %s", CodeProto, m.Code)
	}
}

// TestMalformedFrameClosesConnection checks that a framing violation after
// the handshake is fatal: error frame, then EOF.
func TestMalformedFrameClosesConnection(t *testing.T) {
	env := newTestEnv(t, 0, 0, nil)
	conn, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgStartup, StartupMsg{Version: ProtocolVersion}.Encode()); err != nil {
		t.Fatal(err)
	}
	if f, err := ReadFrame(conn, MaxFrame); err != nil || f.Type != MsgReady {
		t.Fatalf("handshake: %v %#x", err, f.Type)
	}
	// A frame with a length prefix beyond the server's cap.
	var hdr [5]byte
	hdr[0] = MsgQuery
	binary.BigEndian.PutUint32(hdr[1:], uint32(MaxFrame+1))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	conn.SetReadDeadline(deadline)
	sawError := false
	for {
		f, err := ReadFrame(conn, MaxFrame)
		if err != nil {
			break // connection closed by server
		}
		if f.Type == MsgError {
			m, _ := DecodeError(f.Payload)
			if m.Code != CodeProto {
				t.Fatalf("expected %s, got %s", CodeProto, m.Code)
			}
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("server closed without a protocol error frame")
	}
}

// isCode reports whether err is a ServerError with the given code.
func isCode(err error, code string) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == code
}

// TestCancelMidQuery holds a statement at the BeforeExec hook, cancels it
// from another goroutine, and expects ERR_CANCELED — with the session still
// usable afterwards. The hook waits for the cancel flag, so the test is
// deterministic: the statement cannot start executing before the cancel
// lands.
func TestCancelMidQuery(t *testing.T) {
	started := make(chan struct{}, 1)
	hook := func(id uint64, sqlText string, canceled func() bool) {
		if sqlText != "SELECT COUNT(*) FROM r" {
			return
		}
		started <- struct{}{}
		for !canceled() {
			time.Sleep(time.Millisecond)
		}
	}
	env := newTestEnv(t, 0, 0, hook)
	c, err := Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	go func() {
		<-started
		c.Cancel()
	}()
	_, err = c.Query("SELECT COUNT(*) FROM r")
	if !isCode(err, CodeCanceled) {
		t.Fatalf("expected ERR_CANCELED, got %v", err)
	}

	// The cancel must not bleed into the next statement.
	rs, err := c.Query("SELECT COUNT(*) FROM s")
	if err != nil {
		t.Fatalf("session unusable after cancel: %v", err)
	}
	if rs.Rows[0][0].AsInt() != 50 {
		t.Fatalf("unexpected result after cancel: %v", rs.Rows)
	}
}

// TestDisconnectMidQuery crashes the client (no Terminate) while its
// statement is held at the hook: the server must notice, cancel the query,
// and tear the session down rather than running it for nobody.
func TestDisconnectMidQuery(t *testing.T) {
	started := make(chan struct{}, 1)
	aborted := make(chan struct{}, 1)
	hook := func(id uint64, sqlText string, canceled func() bool) {
		if sqlText != "SELECT COUNT(*) FROM r" {
			return
		}
		started <- struct{}{}
		for !canceled() {
			time.Sleep(time.Millisecond)
		}
		aborted <- struct{}{}
	}
	env := newTestEnv(t, 0, 0, hook)
	c, err := Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := c.Query("SELECT COUNT(*) FROM r")
		errc <- err
	}()
	<-started
	c.Abort()
	if err := <-errc; err == nil {
		t.Fatal("query against a closed connection should fail client-side")
	}
	select {
	case <-aborted:
		// Server-side cancel observed the dead connection.
	case <-time.After(5 * time.Second):
		t.Fatal("server never canceled the disconnected client's query")
	}
	// Session teardown completes.
	deadline := time.Now().Add(5 * time.Second)
	for env.srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session count stuck at %d after disconnect", env.srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdmissionQueueNotices occupies the only gate slot, then checks a
// queued client receives WLM_QUEUED while waiting and WLM_ADMITTED when the
// slot frees — protocol-visible backpressure. The slot is held directly via
// TryAdmit (not a competing query), which makes the schedule deterministic.
func TestAdmissionQueueNotices(t *testing.T) {
	env := newTestEnv(t, 1, 10*time.Second, nil)
	adm := env.eng.Cfg.Admission
	if d := adm.TryAdmit(); !d.Admitted {
		t.Fatal("failed to occupy the gate slot")
	}

	c2, err := Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	done2 := make(chan *ResultSet, 1)
	go func() {
		rs, err := c2.Query("SELECT COUNT(*) FROM s")
		if err != nil {
			t.Errorf("queued query failed: %v", err)
		}
		done2 <- rs
	}()

	// c2 must be parked in the queue, not running: poll the gate's stats.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, depth, _ := adm.QueueStats(); depth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	adm.Done() // free the slot; the parked session wakes FIFO
	rs := <-done2
	var sawQueued, sawAdmitted bool
	for _, n := range rs.Notices {
		switch n.Code {
		case NoticeQueued:
			sawQueued = true
		case NoticeAdmitted:
			sawAdmitted = true
		}
	}
	if !sawQueued || !sawAdmitted {
		t.Fatalf("expected WLM_QUEUED and WLM_ADMITTED notices, got %v", rs.Notices)
	}
	if rs.Rows[0][0].AsInt() != 50 {
		t.Fatalf("queued query returned wrong result: %v", rs.Rows)
	}
}

// TestAdmissionQueueTimeout holds the only slot past a short queue timeout:
// the queued statement must fail with ERR_ADMIT and the session survive.
func TestAdmissionQueueTimeout(t *testing.T) {
	env := newTestEnv(t, 1, 150*time.Millisecond, nil)
	adm := env.eng.Cfg.Admission
	if d := adm.TryAdmit(); !d.Admitted {
		t.Fatal("failed to occupy the gate slot")
	}

	c2, err := Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if _, err := c2.Query("SELECT COUNT(*) FROM s"); !isCode(err, CodeAdmit) {
		t.Fatalf("expected ERR_ADMIT, got %v", err)
	}
	adm.Done()

	// The timed-out session is still usable once the gate has room.
	rs, err := c2.Query("SELECT COUNT(*) FROM s")
	if err != nil {
		t.Fatalf("session unusable after queue timeout: %v", err)
	}
	if rs.Rows[0][0].AsInt() != 50 {
		t.Fatalf("unexpected result: %v", rs.Rows)
	}
}

// TestConcurrentClientsStress runs 64 concurrent sessions against a 4-MPL
// gate, each issuing a mix of plain and prepared statements. Every result
// must match the single-session reference exactly (zero incorrect results
// under load is the E29 acceptance bar), the gate's peak concurrency must
// respect the MPL, and the notices observed must be consistent.
func TestConcurrentClientsStress(t *testing.T) {
	const (
		clients          = 64
		mpl              = 4
		queriesPerClient = 6
	)
	env := newTestEnv(t, mpl, 30*time.Second, nil)

	queries := []string{
		"SELECT b, COUNT(*) FROM r GROUP BY b ORDER BY b",
		"SELECT COUNT(*) FROM r",
		"SELECT a FROM r WHERE b = ? ORDER BY a",
		"SELECT r.a FROM r, s WHERE r.a = s.a AND s.c < ? ORDER BY r.a",
	}
	// Reference results computed in-process before any load.
	refs := make(map[string]string)
	refs[queries[0]] = fp(env.eng.MustExec(queries[0]))
	refs[queries[1]] = fp(env.eng.MustExec(queries[1]))
	for b := 0; b < 10; b++ {
		k := fmt.Sprintf("%s|%d", queries[2], b)
		refs[k] = fp(env.eng.MustExec(queries[2], types.Int(int64(b))))
	}
	for c := 0; c < 8; c++ {
		k := fmt.Sprintf("%s|%d", queries[3], c*10)
		refs[k] = fp(env.eng.MustExec(queries[3], types.Int(int64(c*10))))
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*queriesPerClient)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(env.addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			stmt := fmt.Sprintf("st%d", id)
			if err := c.Prepare(stmt, queries[2]); err != nil {
				errs <- err
				return
			}
			for q := 0; q < queriesPerClient; q++ {
				switch q % 4 {
				case 0:
					rs, err := c.Query(queries[0])
					if err != nil {
						errs <- err
						return
					}
					if fpRS(rs) != refs[queries[0]] {
						errs <- fmt.Errorf("client %d: wrong result for %q", id, queries[0])
						return
					}
				case 1:
					rs, err := c.Query(queries[1])
					if err != nil {
						errs <- err
						return
					}
					if fpRS(rs) != refs[queries[1]] {
						errs <- fmt.Errorf("client %d: wrong count result", id)
						return
					}
				case 2:
					b := (id + q) % 10
					if err := c.Bind(stmt, types.Int(int64(b))); err != nil {
						errs <- err
						return
					}
					rs, err := c.Execute(0)
					if err != nil {
						errs <- err
						return
					}
					if fpRS(rs) != refs[fmt.Sprintf("%s|%d", queries[2], b)] {
						errs <- fmt.Errorf("client %d: wrong prepared result for b=%d", id, b)
						return
					}
				case 3:
					cv := ((id + q) % 8) * 10
					rs, err := c.Query(queries[3], types.Int(int64(cv)))
					if err != nil {
						errs <- err
						return
					}
					if fpRS(rs) != refs[fmt.Sprintf("%s|%d", queries[3], cv)] {
						errs <- fmt.Errorf("client %d: wrong join result for c<%d", id, cv)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	_, _, _, peak := env.eng.Cfg.Admission.Stats()
	if peak > mpl {
		t.Fatalf("admission peak %d exceeded MPL %d", peak, mpl)
	}
	queued, depth, qpeak := env.eng.Cfg.Admission.QueueStats()
	if depth != 0 {
		t.Fatalf("queue not drained: depth %d", depth)
	}
	t.Logf("stress: peak concurrency %d/%d, %d queued waits, queue peak %d", peak, mpl, queued, qpeak)
}

// fp fingerprints an in-process result.
func fp(r *core.Result) string { return rowsFingerprint(r.Columns, r.Rows) }

// fpRS fingerprints a wire result.
func fpRS(r *ResultSet) string { return rowsFingerprint(r.Columns, r.Rows) }
