package server

import (
	"os"
	"sync"
	"testing"
	"time"

	"rqp/internal/core"
	"rqp/internal/exec"
	"rqp/internal/wlm"
)

// TestMain lets this test binary double as its own shard worker fleet: a
// spawned copy sees RQP_SHARD_WORKER and runs the worker loop instead of
// the tests.
func TestMain(m *testing.M) {
	MaybeRunShardWorker()
	os.Exit(m.Run())
}

// startShardServer attaches a server to a shard-join catalog with a real
// multi-process worker fleet behind the net shuffle transport.
func startShardServer(t *testing.T, procs *WorkerProcs, shards, mpl int) (*Server, *wlm.Admitter) {
	t.Helper()
	cat := netShufCatalog(t, 0)
	admit := wlm.NewAdmitter(mpl)
	eng := core.Attach(cat, core.Config{
		Policy: core.PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16,
		Shards: shards, ShuffleForce: "repartition",
		ShuffleTransport: NewNetShuffleTransport(procs.Addrs),
		Admission:        admit,
	})
	srv := New(Config{Engine: eng})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, admit
}

// queryWithDeadline runs one client query, failing the test if it does not
// return (either way) within the deadline — the no-hang guarantee.
func queryWithDeadline(t *testing.T, c *Client, q string, d time.Duration) (*ResultSet, error) {
	t.Helper()
	type res struct {
		rs  *ResultSet
		err error
	}
	ch := make(chan res, 1)
	go func() {
		rs, err := c.Query(q)
		ch <- res{rs, err}
	}()
	select {
	case got := <-ch:
		return got.rs, got.err
	case <-time.After(d):
		t.Fatalf("query %q did not return within %v", q, d)
		return nil, nil
	}
}

// TestKillWorkerMidQuery is the fault-injection acceptance test: a worker
// process dies (SIGKILL, no protocol goodbye) while a query's exchange is
// in flight. The query must fail promptly with a clean ERR_EXEC — no hang,
// no partial rows — the session must survive, and the admission slot must
// come back so the next query runs.
func TestKillWorkerMidQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	procs, err := SpawnShardWorkers(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer procs.Stop()
	srv, admit := startShardServer(t, procs, 4, 1)

	// The shard-start hook fires in each probe-routing goroutine — after the
	// exchange has dialed and the build side is on the wire — so killing a
	// worker here lands mid-exchange, past the point where the coordinator
	// could still fall back to the local path.
	var kill sync.Once
	exec.SetShardStartHook(func(shard int) {
		kill.Do(func() {
			if err := procs.Kill(1); err != nil {
				t.Errorf("kill worker: %v", err)
			}
		})
	})
	defer exec.SetShardStartHook(nil)

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const q = "SELECT COUNT(*), SUM(pt.pval) FROM pt, bt WHERE pt.k = bt.k"
	rs, err := queryWithDeadline(t, c, q, 30*time.Second)
	if err == nil {
		t.Fatalf("query survived a dead worker: %d rows", len(rs.Rows))
	}
	if !isCode(err, CodeExec) {
		t.Fatalf("expected %s, got %v", CodeExec, err)
	}
	exec.SetShardStartHook(nil)

	// The failed query must have released its admission slot (mpl=1: a leak
	// would wedge the session forever). The retry dials the dead peer, falls
	// back to the local exchange pre-routing, and still answers correctly.
	rs, err = queryWithDeadline(t, c, q, 30*time.Second)
	if err != nil {
		t.Fatalf("session did not recover after worker death: %v", err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("recovery query returned %d rows, want 1", len(rs.Rows))
	}
	if _, rejected, active, _ := admit.Stats(); active != 0 || rejected != 0 {
		t.Fatalf("admission gate dirty after recovery: active=%d rejected=%d", active, rejected)
	}
}

// TestDisconnectAbortsShuffle pins the one-cancellation-path satellite: a
// client disconnect mid-shuffle flips the same cancel flag the exchange
// watchdog polls, so the TCP exchange aborts, the workers' read loops end,
// and the coordinator's admission slot frees — with every worker process
// still healthy for the next query.
func TestDisconnectAbortsShuffle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	procs, err := SpawnShardWorkers(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer procs.Stop()
	srv, admit := startShardServer(t, procs, 4, 1)

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Sever the client as soon as the exchange is live, then stall the
	// probe routing long enough for the session's dead-connection sweep to
	// flip the cancel flag the watchdog shares.
	var drop sync.Once
	exec.SetShardStartHook(func(shard int) {
		drop.Do(func() { c.Abort() })
		time.Sleep(150 * time.Millisecond)
	})
	defer exec.SetShardStartHook(nil)

	const q = "SELECT COUNT(*), SUM(pt.pval) FROM pt, bt WHERE pt.k = bt.k"
	if _, err := c.Query(q); err == nil {
		t.Fatal("query on an aborted connection should fail client-side")
	}

	// The abandoned query must wind down on its own: slot back, no hang.
	// Only then is it safe to clear the hook (the server-side shards may
	// still be inside it while the slot is held).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, active, _ := admit.Stats(); active == 0 {
			break
		}
		if time.Now().After(deadline) {
			_, _, active, _ := admit.Stats()
			t.Fatalf("disconnected query still holds %d admission slot(s)", active)
		}
		time.Sleep(10 * time.Millisecond)
	}
	exec.SetShardStartHook(nil)

	// Every worker survived the abort and serves the next client.
	c2, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rs, err := queryWithDeadline(t, c2, q, 30*time.Second)
	if err != nil {
		t.Fatalf("fleet unusable after aborted shuffle: %v", err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("post-abort query returned %d rows, want 1", len(rs.Rows))
	}
}
