package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"rqp/internal/types"
)

// ProtocolVersion is the wire-protocol revision this package speaks. A
// startup frame carrying any other version is refused with ErrProto so an
// incompatible client fails loudly at the handshake instead of strangely
// mid-session. See docs/WIRE_PROTOCOL.md for the normative specification.
const ProtocolVersion = 1

// Message type bytes. Client-to-server types occupy 0x01–0x7f, server-to-
// client types set the high bit — a deliberate asymmetry so a captured
// stream's direction is readable straight off the type byte.
const (
	// Client → server.
	MsgStartup   = byte(0x01) // protocol version + session options
	MsgQuery     = byte(0x02) // one SQL statement, optional params
	MsgPrepare   = byte(0x03) // name a statement for later Bind/Execute
	MsgBind      = byte(0x04) // bind params to a prepared statement
	MsgExecute   = byte(0x05) // run the bound portal
	MsgCancel    = byte(0x06) // best-effort cancel of the in-flight query
	MsgClose     = byte(0x07) // deallocate a prepared statement
	MsgTerminate = byte(0x08) // orderly goodbye

	// Server → client.
	MsgReady    = byte(0x81) // session id + idle status: ready for a command
	MsgRowDesc  = byte(0x82) // result column names
	MsgRow      = byte(0x83) // one result row
	MsgComplete = byte(0x84) // statement done: tag, row count, cost units
	MsgError    = byte(0x85) // statement or protocol failure
	MsgNotice   = byte(0x86) // advisory (admission queueing, degradation)
)

// Error codes carried by MsgError and MsgNotice frames. The code is a
// stable machine-readable string; the human message may change freely.
const (
	CodeProto       = "ERR_PROTO"        // malformed or out-of-order frame (fatal)
	CodeParse       = "ERR_PARSE"        // SQL failed to parse/bind
	CodeExec        = "ERR_EXEC"         // statement failed during execution
	CodeAdmit       = "ERR_ADMIT"        // admission queue timeout, query never ran
	CodeCanceled    = "ERR_CANCELED"     // client Cancel took effect
	CodeUnknownStmt = "ERR_UNKNOWN_STMT" // Bind/Close of a name never prepared
	CodeNoPortal    = "ERR_NO_PORTAL"    // Execute without a completed Bind
	NoticeQueued    = "WLM_QUEUED"       // MPL gate full, session is waiting
	NoticeAdmitted  = "WLM_ADMITTED"     // a previously queued query got its slot
)

// MaxFrame is the default cap on a frame's payload size. A length prefix
// beyond the cap is a protocol error — the guard that keeps one malformed
// or hostile frame header from making the server allocate gigabytes.
const MaxFrame = 1 << 20

// frameHeaderLen is the fixed frame prelude: 1 type byte + 4 length bytes.
const frameHeaderLen = 5

// ErrProto marks a wire-level violation: bad magic, oversized length
// prefix, truncated payload, unknown message or value kind. Protocol errors
// are fatal to the connection — the stream can no longer be trusted.
var ErrProto = errors.New("server: protocol error")

// ErrFrameTooLarge reports a length prefix above the configured cap.
var ErrFrameTooLarge = fmt.Errorf("%w: frame exceeds size cap", ErrProto)

// Frame is one decoded wire frame: a type byte and its raw payload.
type Frame struct {
	Type    byte
	Payload []byte
}

// WriteFrame encodes one frame onto w: type byte, big-endian uint32 payload
// length, payload bytes.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame decodes one frame from r, enforcing the payload cap. io.EOF is
// returned bare when the stream ends cleanly between frames; a stream that
// dies inside a frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Frame{}, err // bare EOF here = clean close between frames
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if maxPayload <= 0 {
		maxPayload = MaxFrame
	}
	if n > uint32(maxPayload) {
		return Frame{}, fmt.Errorf("%w (%d > %d)", ErrFrameTooLarge, n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return Frame{Type: hdr[0], Payload: payload}, nil
}

// ---- payload primitives ----
//
// All integers are big-endian. Strings and byte blobs are u32
// length-prefixed. Values are a kind byte followed by a fixed- or
// length-prefixed payload (see appendValue). Decoding is allocation-bounded
// by the frame cap, and every read checks remaining length so truncated
// payloads fail with ErrProto instead of panicking.

type wireWriter struct{ buf []byte }

// Encoder is a wire message that renders its payload into a caller-supplied
// writer. The unexported method keeps implementations inside this package:
// every message type satisfies it, and WriteMsg uses it to encode through a
// pooled buffer instead of allocating per frame.
type Encoder interface{ encodeTo(w *wireWriter) }

// maxPooledEncodeBuf caps the encode buffers the pool retains. A rare giant
// frame (a wide row of long strings) should not pin its buffer forever.
const maxPooledEncodeBuf = 64 << 10

var encodePool = sync.Pool{
	New: func() any { return &wireWriter{buf: make([]byte, 0, 512)} },
}

// WriteMsg encodes m through a pooled buffer and writes it to dst as one
// frame. This is the allocation-free send path: Encode allocates a fresh
// buffer per call (fine for handshakes), while row streams and shuffle
// route batches — the frames sent millions of times — go through here.
func WriteMsg(dst io.Writer, typ byte, m Encoder) error {
	w := encodePool.Get().(*wireWriter)
	w.buf = w.buf[:0]
	m.encodeTo(w)
	err := WriteFrame(dst, typ, w.buf)
	if cap(w.buf) <= maxPooledEncodeBuf {
		encodePool.Put(w)
	}
	return err
}

// encode is the shared allocating Encode body: a fresh buffer the caller
// owns (so it may outlive the call, unlike WriteMsg's pooled buffer).
func encode(m Encoder) []byte {
	w := &wireWriter{}
	m.encodeTo(w)
	return w.buf
}

func (w *wireWriter) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *wireWriter) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *wireWriter) byte(b byte)  { w.buf = append(w.buf, b) }
func (w *wireWriter) f64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *wireWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated payload", ErrProto)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *wireReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) f64() float64 {
	return math.Float64frombits(r.u64())
}

func (r *wireReader) str() string {
	n := r.u32()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// done reports decode success: no error and no trailing garbage.
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrProto, len(r.buf)-r.off)
	}
	return nil
}

// Value kind bytes on the wire.
const (
	wireNull   = byte('N')
	wireInt    = byte('i')
	wireFloat  = byte('f')
	wireString = byte('s')
	wireBool   = byte('b')
	wireDate   = byte('d')
)

// appendValue encodes one typed value: kind byte, then for ints/dates an
// 8-byte two's-complement payload, floats 8-byte IEEE 754, bools one byte,
// strings a u32 length prefix + bytes, NULL nothing.
func appendValue(w *wireWriter, v types.Value) {
	switch v.K {
	case types.KindNull:
		w.byte(wireNull)
	case types.KindInt:
		w.byte(wireInt)
		w.u64(uint64(v.I))
	case types.KindFloat:
		w.byte(wireFloat)
		w.f64(v.F)
	case types.KindString:
		w.byte(wireString)
		w.str(v.S)
	case types.KindBool:
		w.byte(wireBool)
		if v.I != 0 {
			w.byte(1)
		} else {
			w.byte(0)
		}
	case types.KindDate:
		w.byte(wireDate)
		w.u64(uint64(v.I))
	default:
		// Unknown kinds encode as NULL rather than corrupting the frame; the
		// engine has no such kinds today.
		w.byte(wireNull)
	}
}

// readValue decodes one typed value.
func readValue(r *wireReader) types.Value {
	switch k := r.byte(); k {
	case wireNull:
		return types.Null()
	case wireInt:
		return types.Int(int64(r.u64()))
	case wireFloat:
		return types.Float(r.f64())
	case wireString:
		return types.Str(r.str())
	case wireBool:
		switch b := r.byte(); b {
		case 0:
			return types.Bool(false)
		case 1:
			return types.Bool(true)
		default:
			// Strict: exactly 0 or 1, so the encoding stays canonical
			// (decode→encode is byte-identical).
			if r.err == nil {
				r.err = fmt.Errorf("%w: bad bool byte 0x%02x", ErrProto, b)
			}
			return types.Null()
		}
	case wireDate:
		return types.Date(int64(r.u64()))
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: unknown value kind 0x%02x", ErrProto, k)
		}
		return types.Null()
	}
}

// maxWireValues bounds per-frame value and column counts far above any real
// query's needs while keeping a hostile count prefix from pre-allocating
// unbounded slices.
const maxWireValues = 1 << 16

func readValues(r *wireReader, n int) []types.Value {
	if n == 0 {
		return nil
	}
	if n < 0 || n > maxWireValues {
		r.fail()
		return nil
	}
	out := make([]types.Value, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, readValue(r))
	}
	return out
}

// ---- message payloads ----

// StartupMsg opens a session: the protocol version and free-form options
// (reserved for future use: client name, default database, …).
type StartupMsg struct {
	Version uint16
	Options map[string]string
}

// Encode renders the startup payload.
func (m StartupMsg) Encode() []byte { return encode(m) }

func (m StartupMsg) encodeTo(w *wireWriter) {
	w.u16(m.Version)
	w.u16(uint16(len(m.Options)))
	// Deterministic option order keeps encode→decode→encode stable for the
	// fuzz corpus; map order would differ run to run.
	keys := make([]string, 0, len(m.Options))
	for k := range m.Options {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		w.str(k)
		w.str(m.Options[k])
	}
}

// DecodeStartup parses a MsgStartup payload.
func DecodeStartup(p []byte) (StartupMsg, error) {
	r := &wireReader{buf: p}
	m := StartupMsg{Version: r.u16()}
	n := int(r.u16())
	if n > 0 {
		m.Options = make(map[string]string, n)
		for i := 0; i < n && r.err == nil; i++ {
			k := r.str()
			m.Options[k] = r.str()
		}
	}
	return m, r.done()
}

// QueryMsg executes one SQL statement with optional positional parameters.
type QueryMsg struct {
	SQL    string
	Params []types.Value
}

// Encode renders the query payload.
func (m QueryMsg) Encode() []byte { return encode(m) }

func (m QueryMsg) encodeTo(w *wireWriter) {
	w.str(m.SQL)
	w.u16(uint16(len(m.Params)))
	for _, v := range m.Params {
		appendValue(w, v)
	}
}

// DecodeQuery parses a MsgQuery payload.
func DecodeQuery(p []byte) (QueryMsg, error) {
	r := &wireReader{buf: p}
	m := QueryMsg{SQL: r.str()}
	m.Params = readValues(r, int(r.u16()))
	return m, r.done()
}

// PrepareMsg names a statement for later Bind/Execute cycles.
type PrepareMsg struct {
	Name string
	SQL  string
}

// Encode renders the prepare payload.
func (m PrepareMsg) Encode() []byte { return encode(m) }

func (m PrepareMsg) encodeTo(w *wireWriter) {
	w.str(m.Name)
	w.str(m.SQL)
}

// DecodePrepare parses a MsgPrepare payload.
func DecodePrepare(p []byte) (PrepareMsg, error) {
	r := &wireReader{buf: p}
	m := PrepareMsg{Name: r.str(), SQL: r.str()}
	return m, r.done()
}

// BindMsg binds positional parameters to a prepared statement, creating the
// session's portal.
type BindMsg struct {
	Name   string
	Params []types.Value
}

// Encode renders the bind payload.
func (m BindMsg) Encode() []byte { return encode(m) }

func (m BindMsg) encodeTo(w *wireWriter) {
	w.str(m.Name)
	w.u16(uint16(len(m.Params)))
	for _, v := range m.Params {
		appendValue(w, v)
	}
}

// DecodeBind parses a MsgBind payload.
func DecodeBind(p []byte) (BindMsg, error) {
	r := &wireReader{buf: p}
	m := BindMsg{Name: r.str()}
	m.Params = readValues(r, int(r.u16()))
	return m, r.done()
}

// ExecuteMsg runs the session's portal. MaxRows caps returned rows (0 = no
// cap); the statement still runs to completion server-side — the cap trims
// the result stream, it is not a cursor.
type ExecuteMsg struct {
	MaxRows uint32
}

// Encode renders the execute payload.
func (m ExecuteMsg) Encode() []byte { return encode(m) }

func (m ExecuteMsg) encodeTo(w *wireWriter) { w.u32(m.MaxRows) }

// DecodeExecute parses a MsgExecute payload.
func DecodeExecute(p []byte) (ExecuteMsg, error) {
	r := &wireReader{buf: p}
	m := ExecuteMsg{MaxRows: r.u32()}
	return m, r.done()
}

// CloseMsg deallocates a prepared statement.
type CloseMsg struct {
	Name string
}

// Encode renders the close payload.
func (m CloseMsg) Encode() []byte { return encode(m) }

func (m CloseMsg) encodeTo(w *wireWriter) { w.str(m.Name) }

// DecodeClose parses a MsgClose payload.
func DecodeClose(p []byte) (CloseMsg, error) {
	r := &wireReader{buf: p}
	m := CloseMsg{Name: r.str()}
	return m, r.done()
}

// ReadyMsg tells the client the server will accept the next command.
type ReadyMsg struct {
	SessionID uint64
	Status    byte // 'I' idle; reserved for future states
}

// Encode renders the ready payload.
func (m ReadyMsg) Encode() []byte { return encode(m) }

func (m ReadyMsg) encodeTo(w *wireWriter) {
	w.u64(m.SessionID)
	w.byte(m.Status)
}

// DecodeReady parses a MsgReady payload.
func DecodeReady(p []byte) (ReadyMsg, error) {
	r := &wireReader{buf: p}
	m := ReadyMsg{SessionID: r.u64(), Status: r.byte()}
	return m, r.done()
}

// RowDescMsg carries the result column names, sent once before row frames.
type RowDescMsg struct {
	Columns []string
}

// Encode renders the row-description payload.
func (m RowDescMsg) Encode() []byte { return encode(m) }

func (m RowDescMsg) encodeTo(w *wireWriter) {
	w.u16(uint16(len(m.Columns)))
	for _, c := range m.Columns {
		w.str(c)
	}
}

// DecodeRowDesc parses a MsgRowDesc payload.
func DecodeRowDesc(p []byte) (RowDescMsg, error) {
	r := &wireReader{buf: p}
	n := int(r.u16())
	m := RowDescMsg{}
	if n > 0 {
		if n > maxWireValues {
			r.fail()
			return m, r.done()
		}
		m.Columns = make([]string, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			m.Columns = append(m.Columns, r.str())
		}
	}
	return m, r.done()
}

// RowMsg is one result row.
type RowMsg struct {
	Values []types.Value
}

// Encode renders the row payload.
func (m RowMsg) Encode() []byte { return encode(m) }

func (m RowMsg) encodeTo(w *wireWriter) {
	w.u16(uint16(len(m.Values)))
	for _, v := range m.Values {
		appendValue(w, v)
	}
}

// DecodeRow parses a MsgRow payload.
func DecodeRow(p []byte) (RowMsg, error) {
	r := &wireReader{buf: p}
	m := RowMsg{Values: readValues(r, int(r.u16()))}
	return m, r.done()
}

// CompleteMsg ends a statement cycle: a command tag ("SELECT", "INSERT",
// "PREPARE", "BIND", …), the returned/affected row count, and the simulated
// cost units the statement consumed (the engine's deterministic currency —
// on the wire so a remote client can reason about cost without scraping
// /metrics).
type CompleteMsg struct {
	Tag       string
	Rows      uint64
	CostUnits float64
}

// Encode renders the complete payload.
func (m CompleteMsg) Encode() []byte { return encode(m) }

func (m CompleteMsg) encodeTo(w *wireWriter) {
	w.str(m.Tag)
	w.u64(m.Rows)
	w.f64(m.CostUnits)
}

// DecodeComplete parses a MsgComplete payload.
func DecodeComplete(p []byte) (CompleteMsg, error) {
	r := &wireReader{buf: p}
	m := CompleteMsg{Tag: r.str(), Rows: r.u64(), CostUnits: r.f64()}
	return m, r.done()
}

// ErrorMsg reports a failure: a stable machine-readable code and a human
// message. After a statement-level error the session stays usable (a Ready
// follows); after a protocol-level error (CodeProto) the server closes the
// connection.
type ErrorMsg struct {
	Code    string
	Message string
}

// Encode renders the error payload.
func (m ErrorMsg) Encode() []byte { return encode(m) }

func (m ErrorMsg) encodeTo(w *wireWriter) {
	w.str(m.Code)
	w.str(m.Message)
}

// DecodeError parses a MsgError payload.
func DecodeError(p []byte) (ErrorMsg, error) {
	r := &wireReader{buf: p}
	m := ErrorMsg{Code: r.str(), Message: r.str()}
	return m, r.done()
}

// NoticeMsg is an advisory that does not end the statement cycle: admission
// queueing ("WLM_QUEUED"), late admission ("WLM_ADMITTED"), and similar
// backpressure signals ride in notices so clients see why a response is
// slow while it is slow.
type NoticeMsg struct {
	Code    string
	Message string
}

// Encode renders the notice payload.
func (m NoticeMsg) Encode() []byte { return encode(m) }

func (m NoticeMsg) encodeTo(w *wireWriter) {
	w.str(m.Code)
	w.str(m.Message)
}

// DecodeNotice parses a MsgNotice payload.
func DecodeNotice(p []byte) (NoticeMsg, error) {
	r := &wireReader{buf: p}
	m := NoticeMsg{Code: r.str(), Message: r.str()}
	return m, r.done()
}

// sortStrings is a dependency-free insertion sort (the option lists it
// orders are tiny).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
