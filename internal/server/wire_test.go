package server

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"rqp/internal/exec"
	"rqp/internal/types"
)

// TestFrameRoundTrip checks the frame envelope itself: header layout,
// payload fidelity, and clean EOF between frames.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		f, err := ReadFrame(&buf, MaxFrame)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if f.Type != byte(i+1) {
			t.Fatalf("frame %d: type %#x, want %#x", i, f.Type, i+1)
		}
		if len(f.Payload) != len(p) || (len(p) > 0 && !bytes.Equal(f.Payload, p)) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf, MaxFrame); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

// TestFrameTooLarge checks the allocation guard: a length prefix above the
// cap must fail with ErrFrameTooLarge before any payload read.
func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgQuery, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&buf, 1024)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
	if !errors.Is(err, ErrProto) {
		t.Fatalf("oversize should also be a protocol error, got %v", err)
	}
}

// TestFrameTruncated checks that a stream dying inside a frame yields
// ErrUnexpectedEOF, distinct from a clean between-frames EOF.
func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgQuery, []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < buf.Len(); cut++ {
		r := bytes.NewReader(buf.Bytes()[:cut])
		if _, err := ReadFrame(r, MaxFrame); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: expected ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

// sampleValues exercises every wire value kind, including zero and negative
// edge cases.
func sampleValues() []types.Value {
	return []types.Value{
		types.Null(),
		types.Int(0),
		types.Int(-1),
		types.Int(1<<62 + 12345),
		types.Float(3.25),
		types.Float(-0.0),
		types.Str(""),
		types.Str("hello, wire"),
		types.Bool(true),
		types.Bool(false),
		types.Date(19000),
	}
}

// TestMessageRoundTrips encodes and decodes every message type in the
// protocol — the acceptance criterion that no frame kind ships without a
// round-trip test. reflect.DeepEqual on the decoded struct catches silent
// field drops.
func TestMessageRoundTrips(t *testing.T) {
	cases := []struct {
		name   string
		typ    byte
		msg    interface{ Encode() []byte }
		decode func([]byte) (any, error)
	}{
		{"Startup", MsgStartup,
			StartupMsg{Version: ProtocolVersion, Options: map[string]string{"client": "test", "db": "star"}},
			func(p []byte) (any, error) { return DecodeStartup(p) }},
		{"StartupNoOptions", MsgStartup,
			StartupMsg{Version: 7},
			func(p []byte) (any, error) { return DecodeStartup(p) }},
		{"Query", MsgQuery,
			QueryMsg{SQL: "SELECT a FROM r WHERE b = ?", Params: sampleValues()},
			func(p []byte) (any, error) { return DecodeQuery(p) }},
		{"QueryNoParams", MsgQuery,
			QueryMsg{SQL: "SELECT 1 FROM r"},
			func(p []byte) (any, error) { return DecodeQuery(p) }},
		{"Prepare", MsgPrepare,
			PrepareMsg{Name: "q1", SQL: "SELECT a FROM r WHERE b = ?"},
			func(p []byte) (any, error) { return DecodePrepare(p) }},
		{"Bind", MsgBind,
			BindMsg{Name: "q1", Params: sampleValues()},
			func(p []byte) (any, error) { return DecodeBind(p) }},
		{"Execute", MsgExecute,
			ExecuteMsg{MaxRows: 500},
			func(p []byte) (any, error) { return DecodeExecute(p) }},
		{"Close", MsgClose,
			CloseMsg{Name: "q1"},
			func(p []byte) (any, error) { return DecodeClose(p) }},
		{"Ready", MsgReady,
			ReadyMsg{SessionID: 42, Status: statusIdle},
			func(p []byte) (any, error) { return DecodeReady(p) }},
		{"RowDesc", MsgRowDesc,
			RowDescMsg{Columns: []string{"a", "b", "sum_c"}},
			func(p []byte) (any, error) { return DecodeRowDesc(p) }},
		{"RowDescEmpty", MsgRowDesc,
			RowDescMsg{},
			func(p []byte) (any, error) { return DecodeRowDesc(p) }},
		{"Row", MsgRow,
			RowMsg{Values: sampleValues()},
			func(p []byte) (any, error) { return DecodeRow(p) }},
		{"Complete", MsgComplete,
			CompleteMsg{Tag: "SELECT", Rows: 1234, CostUnits: 987.5},
			func(p []byte) (any, error) { return DecodeComplete(p) }},
		{"Error", MsgError,
			ErrorMsg{Code: CodeExec, Message: "join exploded"},
			func(p []byte) (any, error) { return DecodeError(p) }},
		{"Notice", MsgNotice,
			NoticeMsg{Code: NoticeQueued, Message: "gate full"},
			func(p []byte) (any, error) { return DecodeNotice(p) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := tc.msg.Encode()

			// Through the full frame envelope, not just the payload.
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tc.typ, enc); err != nil {
				t.Fatal(err)
			}
			f, err := ReadFrame(&buf, MaxFrame)
			if err != nil {
				t.Fatal(err)
			}
			if f.Type != tc.typ {
				t.Fatalf("type %#x, want %#x", f.Type, tc.typ)
			}

			got, err := tc.decode(f.Payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			want := reflect.ValueOf(tc.msg).Interface()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, want)
			}

			// Re-encoding the decoded message must be byte-identical — the
			// property that makes the encoding canonical.
			re := got.(interface{ Encode() []byte }).Encode()
			if !bytes.Equal(re, enc) {
				t.Fatalf("re-encode not canonical:\n got %x\nwant %x", re, enc)
			}
		})
	}
}

// TestDecodeRejectsTrailingGarbage checks that every decoder refuses
// payloads with bytes past the message end — over-long payloads must not
// silently pass.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	p := append(QueryMsg{SQL: "SELECT 1 FROM r"}.Encode(), 0xFF)
	if _, err := DecodeQuery(p); !errors.Is(err, ErrProto) {
		t.Fatalf("expected ErrProto on trailing garbage, got %v", err)
	}
}

// TestDecodeRejectsTruncation walks every prefix of a composite payload
// through its decoder: all must fail cleanly (no panic, ErrProto).
func TestDecodeRejectsTruncation(t *testing.T) {
	full := QueryMsg{SQL: "SELECT a FROM r WHERE b = ?", Params: sampleValues()}.Encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeQuery(full[:cut]); !errors.Is(err, ErrProto) {
			t.Fatalf("cut at %d: expected ErrProto, got %v", cut, err)
		}
	}
}

// TestDecodeRejectsUnknownValueKind checks the value decoder's kind guard.
func TestDecodeRejectsUnknownValueKind(t *testing.T) {
	w := &wireWriter{}
	w.str("SELECT ?")
	w.u16(1)
	w.byte(0x7F) // no such kind
	if _, err := DecodeQuery(w.buf); !errors.Is(err, ErrProto) {
		t.Fatalf("expected ErrProto on unknown kind, got %v", err)
	}
}

// TestHostileCountPrefix checks that a huge declared count with a tiny
// payload fails without attempting a giant allocation.
func TestHostileCountPrefix(t *testing.T) {
	w := &wireWriter{}
	w.str("SELECT ?")
	w.u16(0xFFFF) // claims 65535 params, provides none
	if _, err := DecodeQuery(w.buf); !errors.Is(err, ErrProto) {
		t.Fatalf("expected ErrProto on hostile count, got %v", err)
	}
}

// FuzzFrame feeds raw bytes through the frame reader and all message
// decoders: nothing may panic, and whatever decodes must re-encode
// canonically.
func FuzzFrame(f *testing.F) {
	// Seed corpus: every valid message framed, plus deliberately malformed
	// frames — truncated header, oversized length prefix, trailing garbage,
	// unknown value kind, hostile count.
	seed := func(typ byte, payload []byte) {
		var buf bytes.Buffer
		WriteFrame(&buf, typ, payload)
		f.Add(buf.Bytes())
	}
	seed(MsgStartup, StartupMsg{Version: ProtocolVersion, Options: map[string]string{"a": "b"}}.Encode())
	seed(MsgQuery, QueryMsg{SQL: "SELECT a FROM r", Params: sampleValues()}.Encode())
	seed(MsgPrepare, PrepareMsg{Name: "q", SQL: "SELECT 1 FROM r"}.Encode())
	seed(MsgBind, BindMsg{Name: "q", Params: sampleValues()}.Encode())
	seed(MsgExecute, ExecuteMsg{MaxRows: 7}.Encode())
	seed(MsgClose, CloseMsg{Name: "q"}.Encode())
	seed(MsgReady, ReadyMsg{SessionID: 1, Status: statusIdle}.Encode())
	seed(MsgRowDesc, RowDescMsg{Columns: []string{"a"}}.Encode())
	seed(MsgRow, RowMsg{Values: sampleValues()}.Encode())
	seed(MsgComplete, CompleteMsg{Tag: "SELECT", Rows: 1, CostUnits: 2}.Encode())
	seed(MsgError, ErrorMsg{Code: CodeProto, Message: "x"}.Encode())
	seed(MsgNotice, NoticeMsg{Code: NoticeQueued, Message: "y"}.Encode())
	f.Add([]byte{})                                         // empty stream
	f.Add([]byte{MsgQuery})                                 // truncated header
	f.Add([]byte{MsgQuery, 0xFF, 0xFF, 0xFF, 0xFF})         // oversized length
	f.Add([]byte{MsgQuery, 0, 0, 0, 2, 'a'})                // short payload
	f.Add(append([]byte{MsgQuery, 0, 0, 0, 5}, "abcde"...)) // garbage SQL length
	{
		w := &wireWriter{}
		w.str("SELECT ?")
		w.u16(0xFFFF)
		seed(MsgQuery, w.buf)
	}
	// Shuffle sub-protocol: every frame kind, then the malformed shapes its
	// decoders must refuse — truncated route batch, bad shard id, over-cap
	// batch count.
	seed(MsgShardHello, shufSampleHello().Encode())
	seed(MsgRouteBatch, shufSampleBuildBatch().Encode())
	seed(MsgRouteBatch, shufSampleProbeBatch().Encode())
	seed(MsgShardEOF, ShardEOFMsg{JoinID: 7, Phase: ShufPhaseProbe, Src: 2}.Encode())
	seed(MsgShardAccept, ShardAcceptMsg{JoinID: 7, Credit: shufCreditWindow}.Encode())
	seed(MsgShardAck, ShardAckMsg{JoinID: 7, Credit: 16}.Encode())
	seed(MsgOutBatch, OutBatchMsg{JoinID: 7, Rows: []exec.ShufOut{{Seq: 1, BIdx: -1, Row: sampleValues()}}}.Encode())
	seed(MsgShardDone, ShardDoneMsg{JoinID: 7, OutRows: 9, UnitsScaled: 1 << 40}.Encode())
	seed(MsgShardErr, ShardErrMsg{JoinID: 7, Code: CodeExec, Message: "shard died"}.Encode())
	{
		full := shufSampleProbeBatch().Encode()
		seed(MsgRouteBatch, full[:len(full)/2]) // truncated mid-batch
	}
	{
		h := shufSampleHello()
		h.Shard = h.Shards // bad shard id: index outside [0, Shards)
		seed(MsgShardHello, h.Encode())
	}
	{
		w := &wireWriter{}
		w.u64(7)
		w.byte(ShufPhaseBuild)
		w.u16(0)
		w.u16(shufBatchRows + 1) // over-cap batch count, no rows behind it
		seed(MsgRouteBatch, w.buf)
	}
	f.Add([]byte{MsgRouteBatch, 0xFF, 0xFF, 0xFF, 0xFF}) // over-cap frame length

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := ReadFrame(r, MaxFrame)
		if err != nil {
			return // malformed envelope: rejected is the right outcome
		}
		p := fr.Payload
		// Run every decoder over the payload regardless of the type byte —
		// decoders must be safe on arbitrary bytes.
		DecodeStartup(p)
		DecodePrepare(p)
		DecodeBind(p)
		DecodeExecute(p)
		DecodeClose(p)
		DecodeReady(p)
		DecodeRowDesc(p)
		DecodeComplete(p)
		DecodeError(p)
		DecodeNotice(p)
		DecodeShardHello(p)
		DecodeShardEOF(p)
		DecodeShardAccept(p)
		DecodeShardAck(p)
		DecodeShardDone(p)
		DecodeShardErr(p)
		if m, err := DecodeRouteBatch(p); err == nil {
			if !bytes.Equal(m.Encode(), p) {
				t.Fatalf("accepted RouteBatch payload is not canonical: %x", p)
			}
		}
		if m, err := DecodeOutBatch(p); err == nil {
			if !bytes.Equal(m.Encode(), p) {
				t.Fatalf("accepted OutBatch payload is not canonical: %x", p)
			}
		}
		if m, err := DecodeQuery(p); err == nil {
			if !bytes.Equal(m.Encode(), p) {
				t.Fatalf("accepted Query payload is not canonical: %x", p)
			}
		}
		if m, err := DecodeRow(p); err == nil {
			if !bytes.Equal(m.Encode(), p) {
				t.Fatalf("accepted Row payload is not canonical: %x", p)
			}
		}
	})
}
