package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"rqp/internal/core"
	"rqp/internal/exec"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// statusIdle is the MsgReady status byte: the session will accept a command.
const statusIdle = byte('I')

// prepared is one named statement in a session's statement namespace.
// Statements are per-session by name; the compiled plans behind them live in
// the engine's shared PlanCache, keyed by normalized text, so two sessions
// preparing the same parameter-free SQL share one cached plan.
type prepared struct {
	name string
	sql  string
}

// portal is a bound statement awaiting Execute: the prepared statement plus
// the parameter values from the most recent Bind.
type portal struct {
	stmt   *prepared
	params []types.Value
}

// session is one client connection's server-side state: the frame reader,
// the prepared-statement namespace, the current portal, and the cooperative
// cancel flag shared with the executing query.
type session struct {
	id   uint64
	srv  *Server
	conn net.Conn
	bw   *bufio.Writer

	// frames carries command frames from the reader goroutine to the session
	// loop. Closed by the reader on connection end.
	frames chan Frame
	// done is closed when the session loop exits, releasing a reader blocked
	// on the frames channel.
	done chan struct{}
	// cancel is set out-of-band by the reader (MsgCancel, or connection
	// death) and polled by the engine's root drain loop; the session loop
	// clears it as each new command begins, so a cancel targets the statement
	// in flight when it arrived.
	cancel atomic.Bool
	// readErr records why the reader stopped; a wire-level violation here
	// still owes the client an ERR_PROTO frame before close.
	readErr atomic.Value

	stmts  map[string]*prepared
	portal *portal
}

// serve runs the session to completion: handshake, then one command frame at
// a time until Terminate, connection loss, or a protocol error.
func (s *session) serve() {
	defer s.conn.Close()
	defer close(s.done)

	// Handshake: the first frame must be a Startup with a version we speak.
	f, err := ReadFrame(s.conn, s.srv.maxFrame)
	if err != nil {
		return
	}
	if f.Type != MsgStartup {
		s.fatal(fmt.Sprintf("expected Startup, got 0x%02x", f.Type))
		return
	}
	st, err := DecodeStartup(f.Payload)
	if err != nil {
		s.fatal(err.Error())
		return
	}
	if st.Version != ProtocolVersion {
		s.fatal(fmt.Sprintf("unsupported protocol version %d (server speaks %d)", st.Version, ProtocolVersion))
		return
	}
	if err := s.ready(); err != nil {
		return
	}

	// Reader goroutine: turns the byte stream into command frames and
	// handles Cancel out-of-band, so a cancel reaches the executing query
	// while the session loop is blocked inside the engine.
	go s.readLoop()

	for f := range s.frames {
		s.cancel.Store(false)
		fatal := s.dispatch(f)
		if fatal {
			return
		}
		if f.Type == MsgTerminate {
			return
		}
		if err := s.ready(); err != nil {
			return
		}
	}
	// Reader closed the channel: the connection died or the client broke
	// framing. A protocol violation still gets its error frame — the write
	// side may well be alive even when the read side is unusable.
	if err, ok := s.readErr.Load().(error); ok && errors.Is(err, ErrProto) {
		s.fatal(err.Error())
	}
}

// readLoop feeds command frames to the session loop. MsgCancel never enters
// the queue — it flips the cancel flag immediately. A dead connection also
// flips the flag, so a client disconnect aborts its in-flight query instead
// of leaving it running to completion for nobody.
func (s *session) readLoop() {
	defer close(s.frames)
	for {
		f, err := ReadFrame(s.conn, s.srv.maxFrame)
		if err != nil {
			s.readErr.Store(err)
			s.cancel.Store(true)
			return
		}
		if f.Type == MsgCancel {
			s.cancel.Store(true)
			continue
		}
		select {
		case s.frames <- f:
		case <-s.done:
			return
		}
		if f.Type == MsgTerminate {
			return
		}
	}
}

// canceled is the cooperative hook handed to the engine.
func (s *session) canceled() bool { return s.cancel.Load() }

// dispatch handles one command frame. It returns true when the error was
// fatal to the connection (protocol violations); statement-level errors are
// reported in-band and leave the session usable.
func (s *session) dispatch(f Frame) (fatal bool) {
	switch f.Type {
	case MsgQuery:
		m, err := DecodeQuery(f.Payload)
		if err != nil {
			s.fatal(err.Error())
			return true
		}
		s.runStatement(m.SQL, m.Params)
	case MsgPrepare:
		m, err := DecodePrepare(f.Payload)
		if err != nil {
			s.fatal(err.Error())
			return true
		}
		s.handlePrepare(m)
	case MsgBind:
		m, err := DecodeBind(f.Payload)
		if err != nil {
			s.fatal(err.Error())
			return true
		}
		s.handleBind(m)
	case MsgExecute:
		m, err := DecodeExecute(f.Payload)
		if err != nil {
			s.fatal(err.Error())
			return true
		}
		s.handleExecute(m)
	case MsgClose:
		m, err := DecodeClose(f.Payload)
		if err != nil {
			s.fatal(err.Error())
			return true
		}
		s.handleClose(m)
	case MsgTerminate:
		// Orderly goodbye; serve exits after this returns.
	case MsgStartup:
		s.fatal("duplicate Startup")
		return true
	default:
		s.fatal(fmt.Sprintf("unknown message type 0x%02x", f.Type))
		return true
	}
	return false
}

// handlePrepare validates and names a statement. Parse errors surface at
// prepare time so a bad statement fails before it is ever bound.
func (s *session) handlePrepare(m PrepareMsg) {
	if m.Name == "" {
		s.sendError(CodeParse, "prepared statement name must not be empty")
		return
	}
	if _, err := sql.Parse(m.SQL); err != nil {
		s.sendError(CodeParse, err.Error())
		return
	}
	s.stmts[m.Name] = &prepared{name: m.Name, sql: m.SQL}
	s.complete("PREPARE", 0, 0)
}

// handleBind creates the session portal from a prepared statement and
// parameter values.
func (s *session) handleBind(m BindMsg) {
	st, ok := s.stmts[m.Name]
	if !ok {
		s.sendError(CodeUnknownStmt, fmt.Sprintf("unknown prepared statement %q", m.Name))
		return
	}
	s.portal = &portal{stmt: st, params: m.Params}
	s.complete("BIND", 0, 0)
}

// handleExecute runs the current portal.
func (s *session) handleExecute(m ExecuteMsg) {
	if s.portal == nil {
		s.sendError(CodeNoPortal, "Execute without a bound portal")
		return
	}
	s.runStatementCapped(s.portal.stmt.sql, s.portal.params, m.MaxRows)
}

// handleClose deallocates a prepared statement (and the portal, if it was
// bound from it).
func (s *session) handleClose(m CloseMsg) {
	st, ok := s.stmts[m.Name]
	if !ok {
		s.sendError(CodeUnknownStmt, fmt.Sprintf("unknown prepared statement %q", m.Name))
		return
	}
	delete(s.stmts, m.Name)
	if s.portal != nil && s.portal.stmt == st {
		s.portal = nil
	}
	s.complete("CLOSE", 0, 0)
}

// runStatement executes SQL and streams the full result.
func (s *session) runStatement(sqlText string, params []types.Value) {
	s.runStatementCapped(sqlText, params, 0)
}

// errAdmitTimeout marks a query that aged out of the admission queue.
var errAdmitTimeout = errors.New("server: admission queue timeout")

// runStatementCapped executes one statement through the admission gate and
// streams RowDesc/Row*/Complete (or Error). maxRows caps the rows sent (0 =
// all); the statement still runs to completion server-side.
func (s *session) runStatementCapped(sqlText string, params []types.Value, maxRows uint32) {
	res, err := s.execAdmitted(sqlText, params)
	if err != nil {
		switch {
		case errors.Is(err, exec.ErrCanceled):
			s.sendError(CodeCanceled, "query canceled")
		case errors.Is(err, errAdmitTimeout), errors.Is(err, core.ErrAdmissionRejected):
			s.sendError(CodeAdmit, err.Error())
		default:
			s.sendError(CodeExec, err.Error())
		}
		return
	}
	sent := uint64(0)
	if len(res.Columns) > 0 {
		s.send(MsgRowDesc, RowDescMsg{Columns: res.Columns}.Encode())
		for _, row := range res.Rows {
			if maxRows > 0 && sent >= uint64(maxRows) {
				break
			}
			s.send(MsgRow, RowMsg{Values: row}.Encode())
			sent++
		}
	}
	tag := "SELECT"
	rows := sent
	if res.Affected > 0 || len(res.Columns) == 0 {
		tag = "OK"
		rows = uint64(res.Affected)
	}
	s.complete(tag, rows, res.Cost)
}

// execAdmitted runs a statement behind the WLM gate. When the gate is full
// the session queues (FIFO) rather than failing: the client gets a
// WLM_QUEUED notice immediately — backpressure it can see while it waits —
// and a WLM_ADMITTED notice when its turn comes. Queueing is bounded by the
// server's queue timeout; aging out yields ERR_ADMIT. The engine still owns
// the authoritative TryAdmit, so a slot observed free here can be lost to a
// concurrent arrival — that race surfaces as ErrAdmissionRejected and sends
// the session back into the queue until its deadline.
func (s *session) execAdmitted(sqlText string, params []types.Value) (*core.Result, error) {
	adm := s.srv.eng.Cfg.Admission
	deadline := time.Now().Add(s.srv.queueTimeout)
	queuedNotice := false
	for {
		if s.canceled() {
			return nil, exec.ErrCanceled
		}
		if adm != nil && !adm.HasCapacity() {
			if !queuedNotice {
				_, depth, _ := adm.QueueStats()
				s.notice(NoticeQueued, fmt.Sprintf("admission gate full (queue depth %d); waiting up to %s",
					depth+1, s.srv.queueTimeout))
				queuedNotice = true
			}
			remain := time.Until(deadline)
			if remain <= 0 {
				return nil, fmt.Errorf("%w after %s", errAdmitTimeout, s.srv.queueTimeout)
			}
			// Bounded parks keep the wait responsive to out-of-band cancels
			// and disconnects; WaitSlot itself wakes in FIFO order.
			if remain > queuePollInterval {
				remain = queuePollInterval
			}
			adm.WaitSlot(remain)
			continue
		}
		if queuedNotice {
			s.notice(NoticeAdmitted, "admission slot granted")
			queuedNotice = false
		}
		if hook := s.srv.beforeExec; hook != nil {
			hook(s.id, sqlText, s.canceled)
		}
		res, err := s.srv.eng.ExecCancelable(sqlText, s.canceled, params...)
		if err != nil && errors.Is(err, core.ErrAdmissionRejected) && time.Now().Before(deadline) {
			continue // lost the slot race; re-queue
		}
		return res, err
	}
}

// queuePollInterval bounds one WaitSlot park so queued sessions notice
// cancels and disconnects promptly.
const queuePollInterval = 25 * time.Millisecond

// ---- frame writers ----
//
// Only the session loop writes to the connection (the reader never does),
// so no write lock is needed. Write errors mark the session canceled and
// are otherwise ignored: the read side will observe the dead connection and
// tear the session down.

func (s *session) send(typ byte, payload []byte) {
	if err := WriteFrame(s.bw, typ, payload); err != nil {
		s.cancel.Store(true)
	}
}

// flush pushes buffered frames to the wire.
func (s *session) flush() {
	if err := s.bw.Flush(); err != nil {
		s.cancel.Store(true)
	}
}

// ready ends a command cycle: flushes pending frames and tells the client
// the session is idle again.
func (s *session) ready() error {
	s.send(MsgReady, ReadyMsg{SessionID: s.id, Status: statusIdle}.Encode())
	if err := s.bw.Flush(); err != nil {
		return err
	}
	return nil
}

// complete ends a successful statement.
func (s *session) complete(tag string, rows uint64, cost float64) {
	s.send(MsgComplete, CompleteMsg{Tag: tag, Rows: rows, CostUnits: cost}.Encode())
}

// sendError reports a statement-level failure; the session stays usable.
func (s *session) sendError(code, msg string) {
	s.send(MsgError, ErrorMsg{Code: code, Message: msg}.Encode())
}

// notice sends an advisory frame immediately (flushed, not buffered until
// statement end) — a queued client should see WLM_QUEUED while it waits,
// not afterwards.
func (s *session) notice(code, msg string) {
	s.send(MsgNotice, NoticeMsg{Code: code, Message: msg}.Encode())
	s.flush()
}

// fatal reports a protocol-level failure and is followed by connection
// close: after a framing violation the stream cannot be trusted.
func (s *session) fatal(msg string) {
	s.send(MsgError, ErrorMsg{Code: CodeProto, Message: msg}.Encode())
	s.flush()
}
