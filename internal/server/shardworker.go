package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rqp/internal/exec"
	"rqp/internal/storage"
	"rqp/internal/wlm"
)

// ShardWorkerConfig configures one shard worker process's exchange service.
type ShardWorkerConfig struct {
	// Admit gates concurrent exchanges per worker process (nil = unlimited).
	// Each inbound exchange holds one slot from hello-accept to teardown, so
	// a worker under load queues new exchanges instead of thrashing.
	Admit *wlm.Admitter
	// QueueTimeout bounds how long a new exchange may wait for an admission
	// slot before being refused (default 5s).
	QueueTimeout time.Duration
	// MaxFrame caps inbound frame payloads (default MaxFrame).
	MaxFrame int
}

// ShardWorker is the receiving half of the TCP shuffle: a listener that
// serves one shuffle exchange per connection. For each exchange it builds a
// hash-table shard from routed build batches, buffers routed probe rows per
// source, probes in (source, sequence) order once every stream has ended,
// and streams tagged outputs back — exactly what a local shard goroutine
// does, with the coordinator on the far side of a socket.
//
// It is deliberately engine-less: a worker holds no catalog and evaluates
// no predicates, only the join kernel (exec.ShardJoiner) plus a clock. That
// keeps every charge it makes identical to the local shard's and makes the
// worker reusable under any coordinator.
type ShardWorker struct {
	cfg ShardWorkerConfig

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewShardWorker returns an unstarted worker.
func NewShardWorker(cfg ShardWorkerConfig) *ShardWorker {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = MaxFrame
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 5 * time.Second
	}
	return &ShardWorker{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Listen binds the worker to addr ("127.0.0.1:0" for an ephemeral port).
func (w *ShardWorker) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.ln = ln
	w.mu.Unlock()
	return nil
}

// Addr returns the bound listen address.
func (w *ShardWorker) Addr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Serve accepts exchange connections until Close. Each connection is one
// exchange, served on its own goroutine.
func (w *ShardWorker) Serve() error {
	w.mu.Lock()
	ln := w.ln
	w.mu.Unlock()
	if ln == nil {
		return errors.New("server: shard worker not listening")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.wg.Done()
			w.serveExchange(conn)
			w.mu.Lock()
			delete(w.conns, conn)
			w.mu.Unlock()
		}()
	}
}

// ListenAndServe combines Listen and Serve.
func (w *ShardWorker) ListenAndServe(addr string) error {
	if err := w.Listen(addr); err != nil {
		return err
	}
	return w.Serve()
}

// Close stops accepting, severs every in-flight exchange, and waits for
// their goroutines. Severing is abrupt by design: a dying worker must look
// to its coordinator exactly like a network failure.
func (w *ShardWorker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	ln := w.ln
	for conn := range w.conns {
		conn.Close()
	}
	w.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	w.wg.Wait()
	return err
}

// exchangeState is one in-flight exchange at the worker.
type exchangeState struct {
	hello   ShardHelloMsg
	joiner  *exec.ShardJoiner
	clk     *storage.Clock
	probes  [][]exec.ShufProbe // buffered per source, probed in (src, seq) order
	pdone   []bool
	bdone   bool
	unacked int // route batches consumed since the last Ack
}

// serveExchange runs one exchange to completion: handshake, admission,
// stream consumption, probe, reply. Any protocol or execution error is
// reported with a best-effort ShardErr before the connection drops; a
// coordinator abort (its conn close) just ends the read loop — either way
// the deferred admission release fires, so a dead query can never leak a
// worker slot.
func (w *ShardWorker) serveExchange(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(conn, 32<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)

	fr, err := ReadFrame(br, w.cfg.MaxFrame)
	if err != nil || fr.Type != MsgShardHello {
		return
	}
	hello, err := DecodeShardHello(fr.Payload)
	if err != nil {
		return
	}
	if hello.Version != ProtocolVersion {
		w.sendErr(bw, hello.JoinID, CodeProto, fmt.Sprintf("protocol version %d unsupported", hello.Version))
		return
	}
	if w.cfg.Admit != nil {
		if !w.cfg.Admit.AdmitWait(w.cfg.QueueTimeout) {
			w.sendErr(bw, hello.JoinID, CodeAdmit, "worker admission queue timeout")
			return
		}
		defer w.cfg.Admit.Done()
	}

	st := &exchangeState{
		hello:  hello,
		clk:    storage.NewClock(hello.Model),
		probes: make([][]exec.ShufProbe, hello.Shards),
		pdone:  make([]bool, hello.Shards),
	}
	st.joiner = exec.NewShardJoiner(exec.ShuffleJoinSpec{
		Shards:    int(hello.Shards),
		LeftKeys:  widenKeys(hello.LeftKeys),
		RightKeys: widenKeys(hello.RightKeys),
		LeftOuter: hello.LeftOuter,
		RWidth:    int(hello.RWidth),
	}, st.clk)

	if err := WriteMsg(bw, MsgShardAccept, ShardAcceptMsg{JoinID: hello.JoinID, Credit: shufCreditWindow}); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	for {
		fr, err := ReadFrame(br, w.cfg.MaxFrame)
		if err != nil {
			// Coordinator gone (abort, disconnect, finished-and-closed):
			// nothing to report to, nothing to leak — the deferred admission
			// release and conn close are the whole teardown.
			return
		}
		switch fr.Type {
		case MsgRouteBatch:
			if err := w.consumeBatch(st, fr.Payload); err != nil {
				w.sendErr(bw, hello.JoinID, CodeProto, err.Error())
				return
			}
			// Replenish the sender's window every half window so the
			// pipeline keeps moving while acks are still batched.
			st.unacked++
			if st.unacked >= shufCreditWindow/2 {
				if err := w.ack(bw, st); err != nil {
					return
				}
			}
		case MsgShardEOF:
			eof, err := DecodeShardEOF(fr.Payload)
			if err != nil || eof.JoinID != hello.JoinID {
				w.sendErr(bw, hello.JoinID, CodeProto, "bad eof frame")
				return
			}
			switch eof.Phase {
			case ShufPhaseBuild:
				st.bdone = true
			case ShufPhaseProbe:
				if int(eof.Src) >= len(st.pdone) {
					w.sendErr(bw, hello.JoinID, CodeProto, "eof source out of range")
					return
				}
				st.pdone[eof.Src] = true
			}
			if st.bdone && allDone(st.pdone) {
				if err := w.probeAndReply(bw, st); err != nil {
					w.sendErr(bw, hello.JoinID, CodeExec, err.Error())
				}
				// Linger until the coordinator closes: it may still be
				// draining our output stream.
				io.Copy(io.Discard, br)
				return
			}
		case MsgTerminate:
			return
		default:
			w.sendErr(bw, hello.JoinID, CodeProto, fmt.Sprintf("unexpected frame 0x%02x", fr.Type))
			return
		}
	}
}

// consumeBatch folds one route batch into the exchange state: build rows
// insert immediately (arrival order per stream preserves serial chains),
// probe rows buffer per source for the ordered probe pass.
func (w *ShardWorker) consumeBatch(st *exchangeState, payload []byte) error {
	rb, err := DecodeRouteBatch(payload)
	if err != nil {
		return err
	}
	if rb.JoinID != st.hello.JoinID {
		return fmt.Errorf("route batch for unknown join %d", rb.JoinID)
	}
	switch rb.Phase {
	case ShufPhaseBuild:
		if st.bdone {
			return errors.New("build batch after build eof")
		}
		for _, b := range rb.Build {
			st.joiner.Insert(b)
		}
	case ShufPhaseProbe:
		if int(rb.Src) >= len(st.probes) {
			return fmt.Errorf("probe source %d out of range [0,%d)", rb.Src, len(st.probes))
		}
		if st.pdone[rb.Src] {
			return errors.New("probe batch after source eof")
		}
		st.probes[rb.Src] = append(st.probes[rb.Src], rb.Probe...)
	}
	return nil
}

// ack returns the consumed-batch count to the sender's credit window.
func (w *ShardWorker) ack(bw *bufio.Writer, st *exchangeState) error {
	if err := WriteMsg(bw, MsgShardAck, ShardAckMsg{JoinID: st.hello.JoinID, Credit: uint16(st.unacked)}); err != nil {
		return err
	}
	st.unacked = 0
	return bw.Flush()
}

// probeAndReply runs the shard's probe phase — every buffered probe row in
// (source, sequence) order, the order that keeps the output stream sorted
// by (Seq, BIdx) for the coordinator's gather merge — streaming outputs in
// shufBatchRows frames, then reports the clock totals.
func (w *ShardWorker) probeAndReply(bw *bufio.Writer, st *exchangeState) error {
	var out []exec.ShufOut
	var streamed uint32
	flush := func(min int) error {
		for len(out) >= min && len(out) > 0 {
			n := len(out)
			if n > shufBatchRows {
				n = shufBatchRows
			}
			if err := WriteMsg(bw, MsgOutBatch, OutBatchMsg{JoinID: st.hello.JoinID, Rows: out[:n]}); err != nil {
				return err
			}
			streamed += uint32(n)
			out = out[n:]
		}
		return nil
	}
	for src := range st.probes {
		for _, p := range st.probes[src] {
			if err := st.joiner.Probe(p, &out); err != nil {
				return err
			}
			if err := flush(shufBatchRows); err != nil {
				return err
			}
		}
		st.probes[src] = nil
	}
	if err := flush(1); err != nil {
		return err
	}
	seq, rand, writes, rows := st.clk.Counters()
	done := ShardDoneMsg{
		JoinID:      st.hello.JoinID,
		OutRows:     streamed,
		UnitsScaled: st.clk.UnitsScaled(),
		SeqReads:    seq,
		RandReads:   rand,
		PageWrites:  writes,
		RowsCPU:     rows,
	}
	if err := WriteMsg(bw, MsgShardDone, done); err != nil {
		return err
	}
	return bw.Flush()
}

// sendErr best-effort reports a failure and flushes; the connection is
// about to drop either way.
func (w *ShardWorker) sendErr(bw *bufio.Writer, joinID uint64, code, msg string) {
	_ = WriteMsg(bw, MsgShardErr, ShardErrMsg{JoinID: joinID, Code: code, Message: msg})
	_ = bw.Flush()
}

func widenKeys(ks []uint16) []int {
	if len(ks) == 0 {
		return nil
	}
	out := make([]int, len(ks))
	for i, k := range ks {
		out[i] = int(k)
	}
	return out
}

func allDone(fs []bool) bool {
	for _, f := range fs {
		if !f {
			return false
		}
	}
	return true
}
