package storage

import (
	"sync"
	"testing"

	"rqp/internal/types"
)

func TestClockAccounting(t *testing.T) {
	c := NewClock(DefaultCostModel())
	c.SeqRead(3)
	c.RandRead(2)
	c.Write(1)
	c.RowWork(100)
	want := 3*1.0 + 2*4.0 + 1*2.0 + 100*0.01
	if got := c.Units(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Units = %v, want %v", got, want)
	}
	s, r, w, rows := c.Counters()
	if s != 3 || r != 2 || w != 1 || rows != 100 {
		t.Errorf("Counters = %d %d %d %d", s, r, w, rows)
	}
	c.Reset()
	if c.Units() != 0 {
		t.Error("Reset should zero the clock")
	}
}

func TestClockConcurrentSafety(t *testing.T) {
	c := NewClock(DefaultCostModel())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.SeqRead(1)
			}
		}()
	}
	wg.Wait()
	if s, _, _, _ := c.Counters(); s != 8000 {
		t.Errorf("concurrent SeqRead lost updates: %d", s)
	}
}

// TestClockBatchChargeParity: every batch charge must equal the same
// number of single charges bit for bit in the integer unit domain — the
// identity the vectorized executor's cost parity rests on, extended here
// to runtime-filter membership tests.
func TestClockBatchChargeParity(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 1024, 99999} {
		single := NewClock(DefaultCostModel())
		batch := NewClock(DefaultCostModel())
		for i := 0; i < n; i++ {
			single.RowWork(1)
			single.Probes(1)
			single.FilterTests(1)
		}
		batch.RowWorkBatch(n)
		batch.ProbesBatch(n)
		batch.FilterTestsBatch(n)
		if single.Units() != batch.Units() {
			t.Errorf("n=%d: batch charges %v != %v single charges", n, batch.Units(), single.Units())
		}
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock(DefaultCostModel())
	c.SeqRead(5)
	w := c.StartWatch()
	c.SeqRead(7)
	if e := w.Elapsed(); e != 7 {
		t.Errorf("Elapsed = %v, want 7", e)
	}
}

func TestHeapInsertGetScan(t *testing.T) {
	h := NewHeap()
	var rids []RID
	for i := 0; i < 200; i++ {
		rids = append(rids, h.Insert(nil, types.Row{types.Int(int64(i))}))
	}
	if h.NumRows() != 200 {
		t.Fatalf("NumRows = %d", h.NumRows())
	}
	wantPages := (200 + PageRows - 1) / PageRows
	if h.NumPages() != wantPages {
		t.Errorf("NumPages = %d, want %d", h.NumPages(), wantPages)
	}
	r, ok := h.Get(nil, rids[150])
	if !ok || r[0].I != 150 {
		t.Errorf("Get(150) = %v %v", r, ok)
	}
	// Scan order and completeness.
	i := 0
	h.Scan(nil, func(rid RID, r types.Row) bool {
		if r[0].I != int64(i) {
			t.Fatalf("scan out of order at %d: %v", i, r)
		}
		i++
		return true
	})
	if i != 200 {
		t.Errorf("scan visited %d rows", i)
	}
}

func TestHeapScanChargesPerPage(t *testing.T) {
	h := NewHeap()
	for i := 0; i < PageRows*3; i++ {
		h.Insert(nil, types.Row{types.Int(int64(i))})
	}
	clk := NewClock(DefaultCostModel())
	h.Scan(clk, func(RID, types.Row) bool { return true })
	if s, _, _, _ := clk.Counters(); s != 3 {
		t.Errorf("scan charged %d seq reads, want 3", s)
	}
	clk.Reset()
	h.Get(clk, MakeRID(1, 0))
	if _, r, _, _ := clk.Counters(); r != 1 {
		t.Errorf("get charged %d rand reads, want 1", r)
	}
}

func TestHeapDeleteUpdate(t *testing.T) {
	h := NewHeap()
	rid := h.Insert(nil, types.Row{types.Int(1)})
	rid2 := h.Insert(nil, types.Row{types.Int(2)})
	if !h.Delete(nil, rid) {
		t.Fatal("delete failed")
	}
	if h.Delete(nil, rid) {
		t.Error("double delete should fail")
	}
	if _, ok := h.Get(nil, rid); ok {
		t.Error("deleted row should be gone")
	}
	if h.NumRows() != 1 {
		t.Errorf("NumRows = %d after delete", h.NumRows())
	}
	if !h.Update(nil, rid2, types.Row{types.Int(99)}) {
		t.Fatal("update failed")
	}
	r, _ := h.Get(nil, rid2)
	if r[0].I != 99 {
		t.Errorf("update not visible: %v", r)
	}
	if h.Update(nil, rid, types.Row{types.Int(5)}) {
		t.Error("update of deleted row should fail")
	}
	// Scan skips deleted.
	n := 0
	h.Scan(nil, func(RID, types.Row) bool { n++; return true })
	if n != 1 {
		t.Errorf("scan visited %d rows after delete", n)
	}
}

func TestHeapEarlyStop(t *testing.T) {
	h := NewHeap()
	for i := 0; i < 100; i++ {
		h.Insert(nil, types.Row{types.Int(int64(i))})
	}
	n := 0
	h.Scan(nil, func(RID, types.Row) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestRIDCodec(t *testing.T) {
	r := MakeRID(12345, 67)
	if r.Page() != 12345 || r.Slot() != 67 {
		t.Errorf("RID roundtrip failed: %d %d", r.Page(), r.Slot())
	}
}

func TestGetOutOfRange(t *testing.T) {
	h := NewHeap()
	h.Insert(nil, types.Row{types.Int(1)})
	if _, ok := h.Get(nil, MakeRID(5, 0)); ok {
		t.Error("out-of-range page should miss")
	}
	if _, ok := h.Get(nil, MakeRID(0, 50)); ok {
		t.Error("out-of-range slot should miss")
	}
}

func TestClockShardMerge(t *testing.T) {
	serial := NewClock(DefaultCostModel())
	sharded := NewClock(DefaultCostModel())
	charge := func(c *Clock, n int) {
		for i := 0; i < n; i++ {
			c.SeqRead(1)
			c.RandRead(2)
			c.Write(1)
			c.RowWork(3)
			c.Probes(2)
			c.Compares(5)
		}
	}
	charge(serial, 12)
	// The same multiset of charges split across three shards must merge to
	// exactly the serial total — the cost-parity invariant parallel
	// execution relies on.
	shards := []*Clock{sharded.Shard(), sharded.Shard(), sharded.Shard()}
	charge(shards[0], 5)
	charge(shards[1], 4)
	charge(shards[2], 3)
	for _, s := range shards {
		sharded.Merge(s)
	}
	if su, pu := serial.Units(), sharded.Units(); su != pu {
		t.Fatalf("sharded units %v != serial units %v", pu, su)
	}
	s1, r1, w1, c1 := serial.Counters()
	s2, r2, w2, c2 := sharded.Counters()
	if s1 != s2 || r1 != r2 || w1 != w2 || c1 != c2 {
		t.Fatalf("counters diverge: serial (%d %d %d %d) vs sharded (%d %d %d %d)",
			s1, r1, w1, c1, s2, r2, w2, c2)
	}
}
