// Package storage provides the page-granular heap storage substrate and the
// deterministic cost clock that every experiment uses as its reproducible
// "response time". Robustness metrics in the Dagstuhl report compare
// relative plan behaviour (regressions, crossovers, variance), so a
// deterministic clock makes the reproduced figure shapes stable run-to-run
// while wall-clock timing stays available through testing.B.
package storage

import (
	"fmt"
	"sync/atomic"
)

// CostModel holds the unit charges of the simulated machine.
type CostModel struct {
	SeqPageRead  float64 // sequential page read
	RandPageRead float64 // random page read (index probe, RID fetch)
	PageWrite    float64 // page write (spills, inserts)
	RowCPU       float64 // per-row processing (filter, project, copy)
	HashProbe    float64 // per-probe hash table work
	Compare      float64 // per-comparison sort/merge work
	FilterTest   float64 // per-key runtime-filter membership test (Bloom + bounds)
	ZoneCheck    float64 // per-block zone-map / block-filter consultation
	NetRow       float64 // per-row cross-shard transfer through a shuffle exchange
}

// DefaultCostModel is the machine every experiment runs on. FilterTest is
// deliberately far below RowCPU + HashProbe: a runtime filter only decodes
// the key column and touches two Bloom bits, which is what makes dropping a
// probe row before full per-row processing a win.
func DefaultCostModel() CostModel {
	return CostModel{
		SeqPageRead:  1.0,
		RandPageRead: 4.0,
		PageWrite:    2.0,
		RowCPU:       0.01,
		HashProbe:    0.015,
		Compare:      0.012,
		FilterTest:   0.002,
		ZoneCheck:    0.001,
		// NetRow sits between FilterTest and RowCPU: moving a row between
		// shards ships a compact serialized tuple, cheaper than full per-row
		// processing but not free. Serial execution never charges it, which
		// is what keeps the shuffle overhead in a separate accounting domain
		// from the main-clock parity invariant.
		NetRow: 0.005,
	}
}

// Clock accumulates simulated cost. It is safe for concurrent use so that
// parallel operators and mixed workloads can share one clock.
type Clock struct {
	model CostModel

	// Counters are scaled by 1e6 and stored as integers for atomic math.
	units int64

	seqReads   int64
	randReads  int64
	pageWrites int64
	rowsCPU    int64
}

// NewClock returns a clock over the given cost model.
func NewClock(m CostModel) *Clock { return &Clock{model: m} }

// ClockScale is the clock's integer sub-unit resolution: one cost unit is
// ClockScale atomic increments. Exported so observers (trace spans) can
// accumulate attributed cost in the same exact integer domain.
const ClockScale = 1e6

const clockScale = ClockScale

func (c *Clock) add(u float64) { atomic.AddInt64(&c.units, int64(u*clockScale)) }

// SeqRead charges n sequential page reads.
func (c *Clock) SeqRead(n int) {
	atomic.AddInt64(&c.seqReads, int64(n))
	c.add(c.model.SeqPageRead * float64(n))
}

// RandRead charges n random page reads.
func (c *Clock) RandRead(n int) {
	atomic.AddInt64(&c.randReads, int64(n))
	c.add(c.model.RandPageRead * float64(n))
}

// Write charges n page writes.
func (c *Clock) Write(n int) {
	atomic.AddInt64(&c.pageWrites, int64(n))
	c.add(c.model.PageWrite * float64(n))
}

// RowWork charges per-row CPU for n rows.
func (c *Clock) RowWork(n int) {
	atomic.AddInt64(&c.rowsCPU, int64(n))
	c.add(c.model.RowCPU * float64(n))
}

// Probes charges n hash probes.
func (c *Clock) Probes(n int) { c.add(c.model.HashProbe * float64(n)) }

// addBatch charges n repetitions of the scaled unit charge u in one atomic
// add. Because every single-unit charge truncates the same float constant to
// the same integer, int64(n)*int64(u*clockScale) is exactly equal to n
// separate charges — the arithmetic identity the vectorized executor's
// cost-parity invariant rests on.
func (c *Clock) addBatch(n int, u float64) {
	atomic.AddInt64(&c.units, int64(n)*int64(u*clockScale))
}

// RowWorkBatch charges per-row CPU for n rows, exactly equal to n calls of
// RowWork(1).
func (c *Clock) RowWorkBatch(n int) {
	atomic.AddInt64(&c.rowsCPU, int64(n))
	c.addBatch(n, c.model.RowCPU)
}

// ProbesBatch charges n hash probes, exactly equal to n calls of Probes(1).
func (c *Clock) ProbesBatch(n int) { c.addBatch(n, c.model.HashProbe) }

// FilterTests charges n runtime-filter membership tests.
func (c *Clock) FilterTests(n int) { c.add(c.model.FilterTest * float64(n)) }

// FilterTestsBatch charges n runtime-filter membership tests, exactly equal
// to n calls of FilterTests(1) — the identity that keeps row and vectorized
// filter charges bit-identical.
func (c *Clock) FilterTestsBatch(n int) { c.addBatch(n, c.model.FilterTest) }

// ZoneChecks charges n zone-map (or block-granularity filter) consultations.
// ZoneCheck is far below even FilterTest: a zone check reads two cached
// min/max values per block instead of touching per-row data, which is what
// makes probing every block's statistics cheaper than reading any of them.
func (c *Clock) ZoneChecks(n int) { c.add(c.model.ZoneCheck * float64(n)) }

// ZoneChecksBatch charges n zone checks, exactly equal to n calls of
// ZoneChecks(1) — same integer identity as FilterTestsBatch.
func (c *Clock) ZoneChecksBatch(n int) { c.addBatch(n, c.model.ZoneCheck) }

// Compares charges n comparisons.
func (c *Clock) Compares(n int) { c.add(c.model.Compare * float64(n)) }

// Units returns the accumulated cost in model units.
func (c *Clock) Units() float64 {
	return float64(atomic.LoadInt64(&c.units)) / clockScale
}

// UnitsScaled returns the accumulated cost in ClockScale sub-units — the
// clock's exact integer domain. Shard-level accounting stores these rather
// than float units so per-shard sums stay bit-exact against the merged
// total.
func (c *Clock) UnitsScaled() int64 { return atomic.LoadInt64(&c.units) }

// Counters returns the raw event counts (seq reads, rand reads, writes, rows).
func (c *Clock) Counters() (seq, rand, writes, rows int64) {
	return atomic.LoadInt64(&c.seqReads), atomic.LoadInt64(&c.randReads),
		atomic.LoadInt64(&c.pageWrites), atomic.LoadInt64(&c.rowsCPU)
}

// Reset zeroes the clock.
func (c *Clock) Reset() {
	atomic.StoreInt64(&c.units, 0)
	atomic.StoreInt64(&c.seqReads, 0)
	atomic.StoreInt64(&c.randReads, 0)
	atomic.StoreInt64(&c.pageWrites, 0)
	atomic.StoreInt64(&c.rowsCPU, 0)
}

// Model returns the clock's cost model.
func (c *Clock) Model() CostModel { return c.model }

// Shard returns a fresh child clock with the same cost model. Parallel
// operators hand one shard to each worker so per-row charging never
// contends on the parent's counters; Merge folds the shard back in at the
// gather barrier.
func (c *Clock) Shard() *Clock { return &Clock{model: c.model} }

// Merge adds a shard's accumulated counters into c. Charges are stored as
// unit-scaled integers, so a sharded execution that performs the same
// multiset of charge calls as a serial one accumulates an identical total,
// regardless of how work interleaved across workers.
func (c *Clock) Merge(s *Clock) {
	atomic.AddInt64(&c.units, atomic.LoadInt64(&s.units))
	atomic.AddInt64(&c.seqReads, atomic.LoadInt64(&s.seqReads))
	atomic.AddInt64(&c.randReads, atomic.LoadInt64(&s.randReads))
	atomic.AddInt64(&c.pageWrites, atomic.LoadInt64(&s.pageWrites))
	atomic.AddInt64(&c.rowsCPU, atomic.LoadInt64(&s.rowsCPU))
}

// MergeScaled folds externally-accumulated counters into c in the clock's
// exact integer domain. This is how a shard worker process's clock rejoins
// the coordinator's: the worker charges the same multiset of calls a local
// shard goroutine would, ships its scaled totals over the wire, and the
// merged sum stays bit-identical to serial execution — the same identity
// Merge provides in-process, now across a process boundary.
func (c *Clock) MergeScaled(units, seqReads, randReads, pageWrites, rowsCPU int64) {
	atomic.AddInt64(&c.units, units)
	atomic.AddInt64(&c.seqReads, seqReads)
	atomic.AddInt64(&c.randReads, randReads)
	atomic.AddInt64(&c.pageWrites, pageWrites)
	atomic.AddInt64(&c.rowsCPU, rowsCPU)
}

// String summarizes the clock state.
func (c *Clock) String() string {
	s, r, w, rows := c.Counters()
	return fmt.Sprintf("cost=%.2f (seq=%d rand=%d write=%d rows=%d)", c.Units(), s, r, w, rows)
}

// Stopwatch captures a start point on a clock so callers can measure the
// cost of a span of work.
type Stopwatch struct {
	clock *Clock
	start float64
}

// StartWatch begins measuring on the clock.
func (c *Clock) StartWatch() Stopwatch { return Stopwatch{clock: c, start: c.Units()} }

// Elapsed returns cost units accumulated since the watch started.
func (w Stopwatch) Elapsed() float64 { return w.clock.Units() - w.start }
