package storage

import (
	"math/bits"
	"sort"

	"rqp/internal/types"
)

// Column-major table storage. A ColumnStore is a read-optimized snapshot of
// a heap: values are split per column into fixed-size blocks (~4K values),
// each block carries a min/max zone map, and each column picks the cheapest
// of several encodings — a global sorted dictionary with bit-packed codes
// for strings (code order equals string order, so string comparisons become
// integer comparisons), run-length encoding or offset bit-packing for
// integer-like columns, and raw values as the universal fallback (columns
// with NULLs or mixed kinds stay raw so the encoded evaluation paths never
// see a NULL).
//
// The simulated pager charges sequential reads against the *encoded* byte
// size: each column records cumulative byte offsets, and a block's page span
// is ceil(end/P) − ceil(start/P) with P = PageRows·8·ncols (the same bytes
// per page the row heap implies at 8 bytes per value). The spans telescope,
// so the per-column total is exactly ceil(colBytes/P) — no block boundary is
// double-charged, and a fully scanned column costs the same whether it is
// read block-by-block or end-to-end.

// DefaultColBlock is the standard number of values per column block.
const DefaultColBlock = 4096

// CmpOp is a comparison operator for zone pruning and encoded evaluation.
// The executor maps expression operators onto these so the storage layer
// stays independent of the expression package.
type CmpOp uint8

// Comparison operators, mirroring SQL =, <>, <, <=, >, >=.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// cmpTruth returns the operator's truth function over a three-way compare.
func cmpTruth(op CmpOp) func(int) bool {
	switch op {
	case CmpEQ:
		return func(c int) bool { return c == 0 }
	case CmpNE:
		return func(c int) bool { return c != 0 }
	case CmpLT:
		return func(c int) bool { return c < 0 }
	case CmpLE:
		return func(c int) bool { return c <= 0 }
	case CmpGT:
		return func(c int) bool { return c > 0 }
	default: // CmpGE
		return func(c int) bool { return c >= 0 }
	}
}

// blockEnc tags one block's physical encoding.
type blockEnc uint8

const (
	encRaw blockEnc = iota
	encDict
	encRLE
	encPacked
)

func (e blockEnc) String() string {
	switch e {
	case encDict:
		return "dict"
	case encRLE:
		return "rle"
	case encPacked:
		return "packed"
	}
	return "raw"
}

// colBlock is one column's slice of blockSize values.
type colBlock struct {
	rows int
	enc  blockEnc

	hasZone  bool // false when every value in the block is NULL
	min, max types.Value

	raw    []types.Value // encRaw
	words  []uint64      // encDict / encPacked bit-packed payload
	base   int64         // encPacked offset base
	width  int           // encDict / encPacked bits per value
	runVal []int64       // encRLE run values
	runLen []int32       // encRLE run lengths

	startByte int64 // cumulative encoded offset within the column
	bytes     int64 // encoded size of this block
}

// column is one column's full encoded representation.
type column struct {
	kind   types.Kind // uniform value kind for encoded columns
	dict   []string   // sorted unique values, dictionary columns only
	blocks []colBlock
	bytes  int64 // total encoded bytes
}

// ColumnStore is a column-major, compressed, zone-mapped snapshot of a
// table. It is immutable after construction and safe for concurrent reads.
type ColumnStore struct {
	cols      []column
	rows      int
	blockSize int
	pageBytes int64 // bytes per simulated page: PageRows·8·ncols
}

// BuildColumnStore encodes rows (each of ncols values) into a column store
// with the given block size (DefaultColBlock when <= 0).
func BuildColumnStore(rows []types.Row, ncols, blockSize int) *ColumnStore {
	if blockSize <= 0 {
		blockSize = DefaultColBlock
	}
	cs := &ColumnStore{
		cols:      make([]column, ncols),
		rows:      len(rows),
		blockSize: blockSize,
		pageBytes: int64(PageRows) * 8 * int64(ncols),
	}
	if cs.pageBytes == 0 {
		cs.pageBytes = int64(PageRows) * 8
	}
	vals := make([]types.Value, len(rows))
	for c := 0; c < ncols; c++ {
		for i, r := range rows {
			if c < len(r) {
				vals[i] = r[c]
			} else {
				vals[i] = types.Null()
			}
		}
		cs.cols[c] = buildColumn(vals, blockSize)
	}
	return cs
}

// encodable classifies a column's values: dictionary for all-string columns,
// integer encodings for uniform int/date/bool columns, raw otherwise (any
// NULL or kind mix forces raw so encoded blocks are NULL-free).
func columnClass(vals []types.Value) (kind types.Kind, ok bool) {
	kind = types.KindNull
	for _, v := range vals {
		if v.IsNull() {
			return types.KindNull, false
		}
		if kind == types.KindNull {
			kind = v.K
		} else if v.K != kind {
			return types.KindNull, false
		}
	}
	if kind == types.KindNull || kind == types.KindFloat {
		return kind, false
	}
	return kind, true
}

func buildColumn(vals []types.Value, blockSize int) column {
	col := column{kind: types.KindNull}
	kind, ok := columnClass(vals)
	if ok {
		col.kind = kind
		if kind == types.KindString {
			col.dict = buildDict(vals)
		}
	}
	var off int64
	for start := 0; start < len(vals); start += blockSize {
		end := start + blockSize
		if end > len(vals) {
			end = len(vals)
		}
		var blk colBlock
		switch {
		case !ok:
			blk = encodeRaw(vals[start:end])
		case kind == types.KindString:
			blk = encodeDict(vals[start:end], col.dict)
		default:
			blk = encodeInts(vals[start:end], kind)
		}
		blk.startByte = off
		off += blk.bytes
		col.blocks = append(col.blocks, blk)
	}
	col.bytes = off
	return col
}

func buildDict(vals []types.Value) []string {
	seen := make(map[string]struct{}, 64)
	for _, v := range vals {
		seen[v.S] = struct{}{}
	}
	dict := make([]string, 0, len(seen))
	for s := range seen {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	return dict
}

func zoneOf(vals []types.Value) (min, max types.Value, ok bool) {
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		if !ok {
			min, max, ok = v, v, true
			continue
		}
		if types.Compare(v, min) < 0 {
			min = v
		}
		if types.Compare(v, max) > 0 {
			max = v
		}
	}
	return min, max, ok
}

func encodeRaw(vals []types.Value) colBlock {
	blk := colBlock{rows: len(vals), enc: encRaw, bytes: int64(len(vals)) * 8}
	blk.raw = append([]types.Value(nil), vals...)
	blk.min, blk.max, blk.hasZone = zoneOf(vals)
	return blk
}

func encodeDict(vals []types.Value, dict []string) colBlock {
	width := bits.Len64(uint64(len(dict)) - 1)
	if len(dict) <= 1 {
		width = 0
	}
	codes := make([]uint64, len(vals))
	for i, v := range vals {
		codes[i] = uint64(sort.SearchStrings(dict, v.S))
	}
	blk := colBlock{
		rows:  len(vals),
		enc:   encDict,
		width: width,
		words: packBits(codes, width),
		bytes: int64(len(vals)*width+7) / 8,
	}
	blk.min, blk.max, blk.hasZone = zoneOf(vals)
	return blk
}

// encodeInts picks the smallest of RLE, offset bit-packing and raw for one
// integer-like block. RLE stores 16 bytes per run (value + length), packing
// stores an 8-byte base plus width bits per value.
func encodeInts(vals []types.Value, kind types.Kind) colBlock {
	n := len(vals)
	runs := 0
	lo, hi := vals[0].I, vals[0].I
	for i, v := range vals {
		if i == 0 || v.I != vals[i-1].I {
			runs++
		}
		if v.I < lo {
			lo = v.I
		}
		if v.I > hi {
			hi = v.I
		}
	}
	width := bits.Len64(uint64(hi - lo))
	rleBytes := int64(runs) * 16
	packedBytes := 8 + int64(n*width+7)/8
	rawBytes := int64(n) * 8

	blk := colBlock{rows: n, enc: encRaw, bytes: rawBytes}
	switch {
	case rleBytes <= packedBytes && rleBytes <= rawBytes:
		blk.enc, blk.bytes = encRLE, rleBytes
		for i, v := range vals {
			if i == 0 || v.I != vals[i-1].I {
				blk.runVal = append(blk.runVal, v.I)
				blk.runLen = append(blk.runLen, 1)
			} else {
				blk.runLen[len(blk.runLen)-1]++
			}
		}
	case packedBytes <= rawBytes:
		blk.enc, blk.bytes = encPacked, packedBytes
		blk.base, blk.width = lo, width
		codes := make([]uint64, n)
		for i, v := range vals {
			codes[i] = uint64(v.I - lo)
		}
		blk.words = packBits(codes, width)
	default:
		blk.raw = append([]types.Value(nil), vals...)
	}
	blk.min = types.Value{K: kind, I: lo}
	blk.max = types.Value{K: kind, I: hi}
	blk.hasZone = true
	return blk
}

// packBits packs codes into width-bit fields in little-endian bit order.
func packBits(codes []uint64, width int) []uint64 {
	if width == 0 {
		return nil
	}
	words := make([]uint64, (len(codes)*width+63)/64)
	for i, c := range codes {
		pos := i * width
		w, off := pos/64, uint(pos%64)
		words[w] |= c << off
		if off+uint(width) > 64 {
			words[w+1] |= c >> (64 - off)
		}
	}
	return words
}

// unpackBit extracts the i-th width-bit field.
func unpackBits(words []uint64, width, i int) uint64 {
	if width == 0 {
		return 0
	}
	pos := i * width
	w, off := pos/64, uint(pos%64)
	v := words[w] >> off
	if off+uint(width) > 64 {
		v |= words[w+1] << (64 - off)
	}
	return v & (1<<uint(width) - 1)
}

// ---------- accessors ----------

// NumRows returns the snapshot's row count.
func (cs *ColumnStore) NumRows() int { return cs.rows }

// NumCols returns the column count.
func (cs *ColumnStore) NumCols() int { return len(cs.cols) }

// BlockSize returns the values-per-block target.
func (cs *ColumnStore) BlockSize() int { return cs.blockSize }

// NumBlocks returns how many blocks each column is split into.
func (cs *ColumnStore) NumBlocks() int {
	if cs.rows == 0 {
		return 0
	}
	return (cs.rows + cs.blockSize - 1) / cs.blockSize
}

// BlockRows returns the number of values in block b.
func (cs *ColumnStore) BlockRows(b int) int {
	start := b * cs.blockSize
	n := cs.rows - start
	if n > cs.blockSize {
		n = cs.blockSize
	}
	if n < 0 {
		n = 0
	}
	return n
}

// Zone returns block b's min/max over column col. ok is false when the block
// holds only NULLs (no comparison predicate can match such a block).
func (cs *ColumnStore) Zone(col, b int) (min, max types.Value, ok bool) {
	blk := &cs.cols[col].blocks[b]
	return blk.min, blk.max, blk.hasZone
}

// PageSpan returns the simulated pages charged to read block b of column
// col. Spans are derived from cumulative encoded offsets, so they telescope:
// the sum over all blocks equals ceil(colBytes/pageBytes) exactly.
func (cs *ColumnStore) PageSpan(col, b int) int {
	blk := &cs.cols[col].blocks[b]
	p := cs.pageBytes
	return int((blk.startByte+blk.bytes+p-1)/p - (blk.startByte+p-1)/p)
}

// ColPages returns the total encoded pages of one column.
func (cs *ColumnStore) ColPages(col int) int {
	return int((cs.cols[col].bytes + cs.pageBytes - 1) / cs.pageBytes)
}

// TotalPages sums encoded pages over the given columns (all when nil).
func (cs *ColumnStore) TotalPages(cols []int) int {
	total := 0
	if cols == nil {
		for c := range cs.cols {
			total += cs.ColPages(c)
		}
		return total
	}
	for _, c := range cols {
		total += cs.ColPages(c)
	}
	return total
}

// EncodedBytes returns the store's total encoded size.
func (cs *ColumnStore) EncodedBytes() int64 {
	var n int64
	for i := range cs.cols {
		n += cs.cols[i].bytes
	}
	return n
}

// RawBytes returns the uncompressed size at the heap's 8 bytes per value.
func (cs *ColumnStore) RawBytes() int64 {
	return int64(cs.rows) * int64(len(cs.cols)) * 8
}

// ColEncoding names column col's encoding: the uniform block encoding when
// all blocks agree ("dict", "rle", "packed", "raw"), "mixed" otherwise.
func (cs *ColumnStore) ColEncoding(col int) string {
	c := &cs.cols[col]
	if len(c.blocks) == 0 {
		return "raw"
	}
	first := c.blocks[0].enc
	for i := range c.blocks {
		if c.blocks[i].enc != first {
			return "mixed"
		}
	}
	return first.String()
}

// EvalUnits returns the per-value work charged for evaluating one pushed
// comparison on block b of column col: the run count for RLE blocks (one
// comparison decides a whole run), the row count otherwise.
func (cs *ColumnStore) EvalUnits(col, b int) int {
	blk := &cs.cols[col].blocks[b]
	if blk.enc == encRLE {
		return len(blk.runVal)
	}
	return blk.rows
}

// ZonePrune reports whether `col op v` can match no row of block b, using
// only the block's zone map. v must be non-NULL. An all-NULL block prunes
// under every comparison (NULL ⋈ v is never true).
func (cs *ColumnStore) ZonePrune(col, b int, op CmpOp, v types.Value) bool {
	blk := &cs.cols[col].blocks[b]
	if !blk.hasZone {
		return true
	}
	switch op {
	case CmpEQ:
		return types.Compare(v, blk.min) < 0 || types.Compare(v, blk.max) > 0
	case CmpNE:
		return types.Compare(blk.min, blk.max) == 0 && types.Compare(blk.min, v) == 0
	case CmpLT:
		return types.Compare(blk.min, v) >= 0
	case CmpLE:
		return types.Compare(blk.min, v) > 0
	case CmpGT:
		return types.Compare(blk.max, v) <= 0
	default: // CmpGE
		return types.Compare(blk.max, v) < 0
	}
}

// EvalBlock narrows keep (len ≥ BlockRows(b)) by `col op v` evaluated
// directly on block b's encoded form: dictionary codes compare as integers
// (the dictionary is sorted, so code order is string order), RLE evaluates
// once per run, bit-packed values decode to the column kind's integer
// payload. Semantics match the row interpreter exactly, with NULL collapsing
// to false. v must be non-NULL.
func (cs *ColumnStore) EvalBlock(col, b int, op CmpOp, v types.Value, keep []bool) {
	c := &cs.cols[col]
	blk := &c.blocks[b]
	truth := cmpTruth(op)
	switch blk.enc {
	case encDict:
		cs.evalDict(c, blk, op, v, keep, truth)
	case encRLE:
		i := 0
		for r, rv := range blk.runVal {
			t := truth(types.Compare(types.Value{K: c.kind, I: rv}, v))
			for e := i + int(blk.runLen[r]); i < e; i++ {
				keep[i] = keep[i] && t
			}
		}
	case encPacked:
		for i := 0; i < blk.rows; i++ {
			if !keep[i] {
				continue
			}
			iv := blk.base + int64(unpackBits(blk.words, blk.width, i))
			keep[i] = truth(types.Compare(types.Value{K: c.kind, I: iv}, v))
		}
	default: // encRaw
		for i := 0; i < blk.rows; i++ {
			if !keep[i] {
				continue
			}
			rv := blk.raw[i]
			keep[i] = !rv.IsNull() && truth(types.Compare(rv, v))
		}
	}
}

// evalDict maps a string comparison onto dictionary-code integer compares:
// lb is the lower bound of v in the sorted dictionary, and each operator
// reduces to a code-range test (an equality probe for a string absent from
// the dictionary matches nothing; inequality against it matches everything).
func (cs *ColumnStore) evalDict(c *column, blk *colBlock, op CmpOp, v types.Value, keep []bool, truth func(int) bool) {
	if v.K != types.KindString {
		// Cross-kind comparisons order by kind tag, so one compare decides
		// the whole block.
		t := truth(types.Compare(types.Str(""), v))
		for i := 0; i < blk.rows; i++ {
			keep[i] = keep[i] && t
		}
		return
	}
	lb := uint64(sort.SearchStrings(c.dict, v.S))
	exact := lb < uint64(len(c.dict)) && c.dict[lb] == v.S
	var pred func(code uint64) bool
	switch op {
	case CmpEQ:
		if !exact {
			for i := 0; i < blk.rows; i++ {
				keep[i] = false
			}
			return
		}
		pred = func(code uint64) bool { return code == lb }
	case CmpNE:
		if !exact {
			return // everything passes
		}
		pred = func(code uint64) bool { return code != lb }
	case CmpLT:
		pred = func(code uint64) bool { return code < lb }
	case CmpLE:
		if exact {
			pred = func(code uint64) bool { return code <= lb }
		} else {
			pred = func(code uint64) bool { return code < lb }
		}
	case CmpGT:
		if exact {
			pred = func(code uint64) bool { return code > lb }
		} else {
			pred = func(code uint64) bool { return code >= lb }
		}
	default: // CmpGE
		pred = func(code uint64) bool { return code >= lb }
	}
	for i := 0; i < blk.rows; i++ {
		if keep[i] {
			keep[i] = pred(unpackBits(blk.words, blk.width, i))
		}
	}
}

// Decode materializes block b of column col into dst (which must have
// length ≥ BlockRows(b)), reconstructing values bit-identical to the heap's.
func (cs *ColumnStore) Decode(col, b int, dst []types.Value) {
	c := &cs.cols[col]
	blk := &c.blocks[b]
	switch blk.enc {
	case encDict:
		for i := 0; i < blk.rows; i++ {
			dst[i] = types.Str(c.dict[unpackBits(blk.words, blk.width, i)])
		}
	case encRLE:
		i := 0
		for r, rv := range blk.runVal {
			v := types.Value{K: c.kind, I: rv}
			for e := i + int(blk.runLen[r]); i < e; i++ {
				dst[i] = v
			}
		}
	case encPacked:
		for i := 0; i < blk.rows; i++ {
			dst[i] = types.Value{K: c.kind, I: blk.base + int64(unpackBits(blk.words, blk.width, i))}
		}
	default:
		copy(dst, blk.raw)
	}
}
