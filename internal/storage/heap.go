package storage

import (
	"fmt"
	"sync"

	"rqp/internal/types"
)

// PageRows is the number of tuple slots per heap page. It is deliberately
// small so that even "lite"-scale tables span many pages and the page-level
// cost accounting is meaningful.
const PageRows = 64

// RID identifies a tuple: page number in the high bits, slot in the low 16.
type RID int64

// MakeRID composes a RID from page and slot.
func MakeRID(page, slot int) RID { return RID(int64(page)<<16 | int64(slot)) }

// Page returns the page number of the RID.
func (r RID) Page() int { return int(r >> 16) }

// Slot returns the slot number of the RID.
func (r RID) Slot() int { return int(r & 0xffff) }

type page struct {
	rows []types.Row // nil entries are deleted slots
	live int
}

// Heap is a page-organized table. Scans charge sequential page reads on the
// clock; point fetches charge random reads. The heap is safe for concurrent
// readers with a single writer class via RWMutex (sufficient for the mixed
// workload experiments, which model logical not physical contention).
type Heap struct {
	mu     sync.RWMutex
	pages  []*page
	rows   int64
	sealed bool // next Insert opens a fresh page even if the tail has room
}

// NewHeap returns an empty heap.
func NewHeap() *Heap { return &Heap{} }

// Insert appends a row and returns its RID. The caller passes ownership of
// the row. Page writes are charged against clk (which may be nil for bulk
// loading outside measured regions).
func (h *Heap) Insert(clk *Clock, r types.Row) RID {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.pages) == 0 || len(h.pages[len(h.pages)-1].rows) >= PageRows || h.sealed {
		h.pages = append(h.pages, &page{rows: make([]types.Row, 0, PageRows)})
		h.sealed = false
		if clk != nil {
			clk.Write(1)
		}
	}
	p := h.pages[len(h.pages)-1]
	p.rows = append(p.rows, r)
	p.live++
	h.rows++
	return MakeRID(len(h.pages)-1, len(p.rows)-1)
}

// SealPage closes the current tail page: the next Insert starts a fresh
// page even if the tail has free slots. catalog.PartitionTable uses it to
// page-align partition boundaries so a page-range scan never straddles two
// shards.
func (h *Heap) SealPage() {
	h.mu.Lock()
	h.sealed = len(h.pages) > 0
	h.mu.Unlock()
}

// BulkLoad inserts many rows without charging the clock (data loading is
// considered setup, not measured query work).
func (h *Heap) BulkLoad(rows []types.Row) {
	for _, r := range rows {
		h.Insert(nil, r)
	}
}

// Get fetches the row at rid, charging one random page read.
func (h *Heap) Get(clk *Clock, rid RID) (types.Row, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if clk != nil {
		clk.RandRead(1)
	}
	pg, slot := rid.Page(), rid.Slot()
	if pg < 0 || pg >= len(h.pages) {
		return nil, false
	}
	p := h.pages[pg]
	if slot < 0 || slot >= len(p.rows) || p.rows[slot] == nil {
		return nil, false
	}
	return p.rows[slot], true
}

// Delete removes the row at rid. Returns false if absent.
func (h *Heap) Delete(clk *Clock, rid RID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	pg, slot := rid.Page(), rid.Slot()
	if pg < 0 || pg >= len(h.pages) {
		return false
	}
	p := h.pages[pg]
	if slot < 0 || slot >= len(p.rows) || p.rows[slot] == nil {
		return false
	}
	p.rows[slot] = nil
	p.live--
	h.rows--
	if clk != nil {
		clk.Write(1)
	}
	return true
}

// Update replaces the row at rid in place.
func (h *Heap) Update(clk *Clock, rid RID, r types.Row) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	pg, slot := rid.Page(), rid.Slot()
	if pg < 0 || pg >= len(h.pages) {
		return false
	}
	p := h.pages[pg]
	if slot < 0 || slot >= len(p.rows) || p.rows[slot] == nil {
		return false
	}
	p.rows[slot] = r
	if clk != nil {
		clk.Write(1)
	}
	return true
}

// Scan iterates all live rows in physical order, charging one sequential
// page read per page touched. The callback returns false to stop early.
func (h *Heap) Scan(clk *Clock, fn func(rid RID, r types.Row) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for pi, p := range h.pages {
		if clk != nil {
			clk.SeqRead(1)
		}
		for si, r := range p.rows {
			if r == nil {
				continue
			}
			if !fn(MakeRID(pi, si), r) {
				return
			}
		}
	}
}

// ScanPage visits the live rows of one page in slot order, charging one
// sequential page read. It reports whether the page exists. Shared
// (circular) scans are built on this: many consumers ride one page read.
func (h *Heap) ScanPage(clk *Clock, pageNo int, fn func(rid RID, r types.Row) bool) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if pageNo < 0 || pageNo >= len(h.pages) {
		return false
	}
	if clk != nil {
		clk.SeqRead(1)
	}
	p := h.pages[pageNo]
	for si, r := range p.rows {
		if r == nil {
			continue
		}
		if !fn(MakeRID(pageNo, si), r) {
			break
		}
	}
	return true
}

// NumRows returns the live row count.
func (h *Heap) NumRows() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rows
}

// NumPages returns the allocated page count.
func (h *Heap) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// String describes the heap.
func (h *Heap) String() string {
	return fmt.Sprintf("heap{rows=%d pages=%d}", h.NumRows(), h.NumPages())
}
