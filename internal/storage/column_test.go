package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"rqp/internal/types"
)

// colTestRows builds a table exercising every encoding path: packed unique
// ints, clustered low-cardinality ints (rle), low-cardinality strings
// (dict), dates, floats (raw), and an int column with NULLs (raw).
func colTestRows(n int, rng *rand.Rand) []types.Row {
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		nullable := types.Int(rng.Int63n(50))
		if rng.Intn(7) == 0 {
			nullable = types.Null()
		}
		rows[i] = types.Row{
			types.Int(int64(i)),                       // packed
			types.Int(int64(i*16/n) * 1000000),        // rle: few wide-valued runs, so packing loses
			types.Str(fmt.Sprintf("s%03d", i*16/n)),   // dict
			types.Date(int64(7000 + rng.Int63n(100))), // packed dates
			types.Float(rng.Float64() * 100),          // raw (floats)
			nullable,                                  // raw (NULLs present)
		}
	}
	return rows
}

func TestColumnStoreDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := colTestRows(1000, rng)
	cs := BuildColumnStore(rows, len(rows[0]), 128)

	if cs.NumRows() != len(rows) || cs.NumCols() != len(rows[0]) {
		t.Fatalf("shape %dx%d, want %dx%d", cs.NumRows(), cs.NumCols(), len(rows), len(rows[0]))
	}
	dst := make([]types.Value, cs.BlockSize())
	for col := 0; col < cs.NumCols(); col++ {
		row := 0
		for b := 0; b < cs.NumBlocks(); b++ {
			cs.Decode(col, b, dst[:cs.BlockRows(b)])
			for i := 0; i < cs.BlockRows(b); i++ {
				want := rows[row][col]
				got := dst[i]
				if want.IsNull() != got.IsNull() ||
					(!want.IsNull() && (want.K != got.K || types.Compare(want, got) != 0 || want.String() != got.String())) {
					t.Fatalf("col %d row %d: decoded %v, want %v", col, row, got, want)
				}
				row++
			}
		}
		if row != len(rows) {
			t.Fatalf("col %d decoded %d rows, want %d", col, row, len(rows))
		}
	}
}

func TestColumnStoreEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := colTestRows(1000, rng)
	cs := BuildColumnStore(rows, len(rows[0]), 128)
	want := []string{"packed", "rle", "dict", "packed", "raw", "raw"}
	for col, w := range want {
		if got := cs.ColEncoding(col); got != w {
			t.Errorf("col %d encoding %q, want %q", col, got, w)
		}
	}
	if cs.EncodedBytes() >= cs.RawBytes() {
		t.Fatalf("no compression: encoded %d >= raw %d bytes", cs.EncodedBytes(), cs.RawBytes())
	}
}

// TestEvalBlockMatchesDecode is the encoded-predicate correctness
// property: evaluating col op const directly on encoded blocks must agree
// with decoding and comparing row by row, for every op, every encoding,
// and NULL handling (NULL compares to false).
func TestEvalBlockMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := colTestRows(1000, rng)
	cs := BuildColumnStore(rows, len(rows[0]), 128)

	consts := [][]types.Value{
		{types.Int(300), types.Int(0), types.Int(999), types.Int(-5), types.Int(2000)},
		{types.Int(7000000), types.Int(0), types.Int(15000000), types.Int(7500000)},
		{types.Str("s007"), types.Str("s000"), types.Str("a"), types.Str("zz"), types.Str("s0075")},
		{types.Date(7050), types.Date(6000)},
		{types.Float(50), types.Float(-1)},
		{types.Int(25), types.Int(-1)},
	}
	ops := []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
	dst := make([]types.Value, cs.BlockSize())
	keep := make([]bool, cs.BlockSize())
	for col := 0; col < cs.NumCols(); col++ {
		for _, v := range consts[col] {
			for _, op := range ops {
				row := 0
				for b := 0; b < cs.NumBlocks(); b++ {
					nb := cs.BlockRows(b)
					for i := 0; i < nb; i++ {
						keep[i] = true
					}
					cs.EvalBlock(col, b, op, v, keep[:nb])
					cs.Decode(col, b, dst[:nb])
					for i := 0; i < nb; i++ {
						// NULL row values compare to false; a NULL
						// constant never reaches EvalBlock (the scanner
						// folds col op NULL to an always-false scan).
						want := false
						if !dst[i].IsNull() {
							c := types.Compare(dst[i], v)
							switch op {
							case CmpEQ:
								want = c == 0
							case CmpNE:
								want = c != 0
							case CmpLT:
								want = c < 0
							case CmpLE:
								want = c <= 0
							case CmpGT:
								want = c > 0
							case CmpGE:
								want = c >= 0
							}
						}
						if keep[i] != want {
							t.Fatalf("col %d block %d row %d: %v %v %v -> keep=%v, want %v",
								col, b, i, dst[i], op, v, keep[i], want)
						}
						row++
					}
				}
				_ = row
			}
		}
	}
}

// TestZonePruneNeverSkipsMatches: a block ZonePrune eliminates must
// contain zero rows satisfying the predicate — false positives in the
// zone map would silently drop result rows.
func TestZonePruneNeverSkipsMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows := colTestRows(1000, rng)
	cs := BuildColumnStore(rows, len(rows[0]), 128)
	ops := []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
	dst := make([]types.Value, cs.BlockSize())
	keep := make([]bool, cs.BlockSize())
	pruned := 0
	for col := 0; col < cs.NumCols(); col++ {
		for trial := 0; trial < 60; trial++ {
			var v types.Value
			switch col {
			case 2:
				v = types.Str(fmt.Sprintf("s%03d", rng.Intn(20)))
			case 4:
				v = types.Float(rng.Float64() * 100)
			default:
				v = types.Int(rng.Int63n(1100))
			}
			op := ops[trial%len(ops)]
			for b := 0; b < cs.NumBlocks(); b++ {
				if !cs.ZonePrune(col, b, op, v) {
					continue
				}
				pruned++
				nb := cs.BlockRows(b)
				for i := 0; i < nb; i++ {
					keep[i] = true
				}
				cs.EvalBlock(col, b, op, v, keep[:nb])
				cs.Decode(col, b, dst[:nb])
				for i := 0; i < nb; i++ {
					if keep[i] {
						t.Fatalf("col %d block %d pruned for %v %v but row %d (%v) matches",
							col, b, op, v, i, dst[i])
					}
				}
			}
		}
	}
	if pruned == 0 {
		t.Fatal("zone maps never pruned a block; test is vacuous")
	}
}

// TestPageSpanTelescopes: per-block page spans must sum exactly to the
// column's page count, and TotalPages must agree with the per-column sum —
// the no-double-charging invariant behind cost parity.
func TestPageSpanTelescopes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := colTestRows(1000, rng)
	cs := BuildColumnStore(rows, len(rows[0]), 128)
	total := 0
	for col := 0; col < cs.NumCols(); col++ {
		sum := 0
		for b := 0; b < cs.NumBlocks(); b++ {
			sum += cs.PageSpan(col, b)
		}
		if sum != cs.ColPages(col) {
			t.Fatalf("col %d spans sum to %d, ColPages %d", col, sum, cs.ColPages(col))
		}
		total += sum
	}
	if got := cs.TotalPages(nil); got != total {
		t.Fatalf("TotalPages(nil) = %d, per-column sum %d", got, total)
	}
	if got := cs.TotalPages([]int{0, 2}); got != cs.ColPages(0)+cs.ColPages(2) {
		t.Fatalf("TotalPages([0 2]) = %d, want %d", got, cs.ColPages(0)+cs.ColPages(2))
	}
}

func TestBitPackRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, width := range []int{1, 3, 7, 10, 33, 64} {
		n := 257
		codes := make([]uint64, n)
		for i := range codes {
			if width == 64 {
				codes[i] = rng.Uint64()
			} else {
				codes[i] = rng.Uint64() & ((1 << width) - 1)
			}
		}
		words := packBits(codes, width)
		for i, want := range codes {
			if got := unpackBits(words, width, i); got != want {
				t.Fatalf("width %d index %d: %d != %d", width, i, got, want)
			}
		}
	}
}
