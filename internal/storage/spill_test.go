package storage

import (
	"testing"

	"rqp/internal/types"
)

func row(i int) types.Row { return types.Row{types.Int(int64(i))} }

// TestTempRunPageCharges: writes charge one page write per PageRows rows
// (as each page starts), reads charge one sequential read per page.
func TestTempRunPageCharges(t *testing.T) {
	clk := NewClock(DefaultCostModel())
	tr := NewTempRun()
	n := 2*PageRows + 5 // 3 pages
	for i := 0; i < n; i++ {
		tr.Append(clk, row(i))
	}
	if tr.Len() != n {
		t.Fatalf("len = %d, want %d", tr.Len(), n)
	}
	if tr.Pages() != 3 {
		t.Fatalf("pages = %d, want 3", tr.Pages())
	}
	_, _, writes, _ := clk.Counters()
	if writes != 3 {
		t.Fatalf("page writes = %d, want 3", writes)
	}
	rows := tr.Drain(clk)
	seq, _, _, _ := clk.Counters()
	if seq != 3 {
		t.Fatalf("seq reads = %d, want 3", seq)
	}
	if len(rows) != n {
		t.Fatalf("drained %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if r[0].AsInt() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, r)
		}
	}
	if tr.Len() != 0 || tr.Pages() != 0 {
		t.Fatal("drain must empty the run")
	}
}

// TestTempRunDiscard: discarding a run charges nothing.
func TestTempRunDiscard(t *testing.T) {
	clk := NewClock(DefaultCostModel())
	tr := NewTempRun()
	for i := 0; i < PageRows+1; i++ {
		tr.Append(clk, row(i))
	}
	before := clk.Units()
	tr.Discard()
	if clk.Units() != before {
		t.Fatal("discard must not charge the clock")
	}
	if tr.Len() != 0 {
		t.Fatal("discard must empty the run")
	}
	// An empty drain charges nothing either.
	tr.Drain(clk)
	if clk.Units() != before {
		t.Fatal("empty drain must not charge the clock")
	}
}
