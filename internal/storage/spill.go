package storage

import "rqp/internal/types"

// TempRun is an append-only spill run: rows written out of an operator's
// workspace when the memory broker cannot cover it. Like the heap, a run is
// organized in PageRows-sized pages and charges the cost clock at page
// granularity — one page write as each page starts filling, one sequential
// read per page when the run is read back. Spilling operators (hash join,
// hash aggregation, external sort) therefore pay exactly the I/O a real
// partition file would, and the deterministic clock keeps the degradation
// curve reproducible.
//
// The caller passes ownership of appended rows: a spilled row must not alias
// a buffer the producer will overwrite (clone volatile rows before Append).
type TempRun struct {
	rows  []types.Row
	pages int
}

// NewTempRun returns an empty run.
func NewTempRun() *TempRun { return &TempRun{} }

// Append writes one row to the run, charging one page write on clk each
// time a new page starts (mirroring Heap.Insert). clk may be nil for
// unmeasured staging.
func (t *TempRun) Append(clk *Clock, r types.Row) {
	if len(t.rows)%PageRows == 0 {
		t.pages++
		if clk != nil {
			clk.Write(1)
		}
	}
	t.rows = append(t.rows, r)
}

// Len returns the number of rows in the run.
func (t *TempRun) Len() int { return len(t.rows) }

// Pages returns the number of pages the run occupies.
func (t *TempRun) Pages() int { return t.pages }

// Drain charges one sequential read per page on clk, returns every row in
// append order, and leaves the run empty.
func (t *TempRun) Drain(clk *Clock) []types.Row {
	if clk != nil && t.pages > 0 {
		clk.SeqRead(t.pages)
	}
	rows := t.rows
	t.rows, t.pages = nil, 0
	return rows
}

// Discard drops the run without charging a read — for runs the consumer can
// prove it never needs (e.g. a spilled build partition whose probe side
// turned out empty).
func (t *TempRun) Discard() { t.rows, t.pages = nil, 0 }
