package opt

import (
	"rqp/internal/plan"
	"rqp/internal/storage"
)

// PlanShuffles annotates every hash join in the plan with a shuffle mode
// for sharded execution across the given shard count, and returns how many
// joins it marked. The pass is partition-aware and costed:
//
//   - Co-located: both inputs are base-table scans physically partitioned
//     on the (single-column) join key with the same shard count — matches
//     are shard-local, no rows move, the shuffle is skipped entirely.
//   - Otherwise the cheaper of repartition (move both sides by key hash;
//     probe rows only pay when they land off their source shard) and
//     broadcast (replicate the build side shards-1 times, probe stays
//     put) wins, priced with the NetRow/HashProbe constants the executor
//     charges into the shuffle-overhead domain.
//
// force overrides the costed choice with "repartition" or "broadcast"
// ("colocated" is honored only where the layout allows it). The pass is a
// pure function of the plan and its arguments: re-running it is
// idempotent, so cached plans can be re-marked per query.
func PlanShuffles(root plan.Node, shards int, force string) int {
	if shards <= 1 {
		return 0
	}
	m := storage.DefaultCostModel()
	marked := 0
	plan.Walk(root, func(n plan.Node) {
		j, ok := n.(*plan.JoinNode)
		if !ok || j.Alg != plan.JoinHash {
			return
		}
		j.Shuffle = chooseShuffle(j, shards, force, m)
		marked++
	})
	return marked
}

func chooseShuffle(j *plan.JoinNode, shards int, force string, m storage.CostModel) plan.ShuffleMode {
	if colocatedEligible(j, shards) && force != "repartition" && force != "broadcast" {
		return plan.ShuffleColocated
	}
	switch force {
	case "repartition":
		return plan.ShuffleRepartition
	case "broadcast":
		return plan.ShuffleBroadcast
	}
	estL := j.Kids[0].Props().EstRows
	estR := j.Kids[1].Props().EstRows
	n := float64(shards)
	// Repartition ships the whole build side plus the fraction of probe
	// rows that hash off their source shard; broadcast ships shards-1
	// build copies and pays the replica insert work, probe rows stay put.
	repart := m.NetRow * (estR + estL*(n-1)/n)
	bcast := (n - 1) * estR * (m.NetRow + 2*m.HashProbe)
	if bcast < repart {
		return plan.ShuffleBroadcast
	}
	return plan.ShuffleRepartition
}

// colocatedEligible reports whether both join inputs are base-table scans
// whose physical partitioning matches the join key and shard count, so
// every match is already shard-local. Columnar scans are excluded: the
// column snapshot has block, not page, granularity, and the heap page
// ranges are what the partitioned layout guarantees.
func colocatedEligible(j *plan.JoinNode, shards int) bool {
	if len(j.LeftKeys) != 1 || len(j.RightKeys) != 1 {
		return false
	}
	return scanPartitionedOn(j.Kids[0], j.LeftKeys[0], shards) &&
		scanPartitionedOn(j.Kids[1], j.RightKeys[0], shards)
}

func scanPartitionedOn(n plan.Node, key, shards int) bool {
	s, ok := n.(*plan.ScanNode)
	if !ok || s.Columnar {
		return false
	}
	p := s.Table.Part()
	return p != nil && p.Shards == shards && p.Col == key
}
