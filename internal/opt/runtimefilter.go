package opt

import "rqp/internal/plan"

// CreditRuntimeFilters plants runtime join filter sites on a finished
// physical plan (plan.PlanRuntimeFilters) and folds the expected savings
// into the plan's cumulative cost estimates: for each producing join, probe
// rows expected to be dropped — estimated from the join's own selectivity,
// drop fraction d = clamp(1 − outRows/probeRows, 0, 1) — skip their RowCPU
// and HashProbe charges, while every probe row pays one FilterTest. Joins
// whose expected saving does not cover the membership tests credit nothing
// (the executor's adaptive disable bounds that case at run time too).
//
// Because Props.EstCost is cumulative, the credit of a subtree propagates to
// every ancestor. Each node records its subtree credit in Props.RFCredit and
// the pass undoes the previous credit before applying the new one, so
// re-crediting a cached plan is idempotent. Returns the number of filter
// sites planted and the total credit at the root.
func (o *Optimizer) CreditRuntimeFilters(root plan.Node) (sites int, credit float64) {
	sites = plan.PlanRuntimeFilters(root)
	var rec func(n plan.Node) float64
	rec = func(n plan.Node) float64 {
		sub := 0.0
		for _, c := range n.Children() {
			sub += rec(c)
		}
		if j, ok := n.(*plan.JoinNode); ok && len(j.RFilters) > 0 {
			probe := j.Kids[0].Props().EstRows
			if probe > 0 {
				d := 1 - j.Prop.EstRows/probe
				if d < 0 {
					d = 0
				}
				if d > 1 {
					d = 1
				}
				local := probe*d*(o.CM.RowCPU+o.CM.HashProbe) - probe*o.CM.FilterTest
				if local > 0 {
					sub += local
				}
			}
		}
		p := n.Props()
		p.EstCost += p.RFCredit
		p.EstCost -= sub
		p.RFCredit = sub
		return sub
	}
	credit = rec(root)
	return sites, credit
}
