package opt

import (
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/expr"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// diagramCat builds a two-column indexed table for 2-D diagrams.
func diagramCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tb, err := cat.CreateTable("dd", types.Schema{
		{Name: "x", Kind: types.KindInt},
		{Name: "y", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8000; i++ {
		cat.Insert(nil, tb, types.Row{types.Int(int64(i % 1000)), types.Int(int64(i % 777))})
	}
	if _, err := cat.CreateIndex(nil, "dd", "dd_x", []string{"x"}, false); err != nil {
		t.Fatal(err)
	}
	cat.AnalyzeTable(tb, 16)
	return cat
}

func TestTwoDimensionalPlanDiagram(t *testing.T) {
	cat := diagramCat(t)
	o := New(cat)
	st, err := sql.Parse("SELECT COUNT(*) FROM dd WHERE x <= ? AND y <= ?")
	if err != nil {
		t.Fatal(err)
	}
	bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []types.Value
	for v := int64(1); v <= 1000; v += 111 {
		xs = append(xs, types.Int(v))
	}
	for v := int64(100); v <= 700; v += 150 {
		ys = append(ys, types.Int(v))
	}
	d, err := o.BuildPlanDiagram(bq, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != len(ys) || len(d.Cells[0]) != len(xs) {
		t.Fatalf("grid shape wrong: %dx%d", len(d.Cells), len(d.Cells[0]))
	}
	if d.NumPlans() < 2 {
		t.Errorf("x-selectivity sweep should cross the index boundary:\n%s", d.Render())
	}
	reduced := d.Reduce(0.3)
	if reduced.NumPlans() > d.NumPlans() {
		t.Error("reduction increased plans")
	}
	if !strings.Contains(d.Render(), "distinct plans") {
		t.Error("render missing summary")
	}
	// All cell costs recorded and positive.
	for _, row := range d.Costs {
		for _, c := range row {
			if c <= 0 {
				t.Fatal("missing cell cost")
			}
		}
	}
}

func TestEnumerateCorePlansDedupAndOrder(t *testing.T) {
	cat := buildCat(t, 4000, 80)
	o := New(cat)
	rels := []BaseRel{
		BaseRelFromTable(mustTable(t, cat, "orders"), "orders"),
		BaseRelFromTable(mustTable(t, cat, "customer"), "customer"),
	}
	cond := []expr.Expr{&expr.Bin{Op: expr.OpEQ,
		L: &expr.Col{Index: 1, Name: "orders.cid", Typ: types.KindInt},
		R: &expr.Col{Index: 3, Name: "customer.id", Typ: types.KindInt}}}
	plans, err := o.EnumerateCorePlans(rels, cond, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 3 {
		t.Fatalf("too few core plans: %d", len(plans))
	}
	seen := map[string]bool{}
	for i, p := range plans {
		if seen[p.Sig] {
			t.Errorf("duplicate signature %s", p.Sig)
		}
		seen[p.Sig] = true
		if i > 0 && plans[i].Cost < plans[i-1].Cost {
			t.Error("core plans not sorted by cost")
		}
		if len(p.Cols) != 5 {
			t.Errorf("cols = %v", p.Cols)
		}
	}
}

func TestRepertoireFlags(t *testing.T) {
	cat := buildCat(t, 3000, 60)
	bq := bindQ(t, cat, "SELECT orders.id FROM orders, customer WHERE orders.cid = customer.id")
	cases := []struct {
		name    string
		mod     func(*Options)
		wantAlg string
	}{
		{"only-merge", func(o *Options) { o.DisableHash, o.DisableNL, o.DisableIndexNL = true, true, true }, "MergeJoin"},
		{"only-nl", func(o *Options) { o.DisableHash, o.DisableMerge, o.DisableIndexNL = true, true, true }, "NestedLoopJoin"},
	}
	for _, c := range cases {
		o := New(cat)
		c.mod(&o.Opt)
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !strings.Contains(plan.PlanSignature(root), c.wantAlg) {
			t.Errorf("%s: plan %s missing %s", c.name, plan.PlanSignature(root), c.wantAlg)
		}
	}
	// Empty repertoire for equi-joins still finds NL unless disabled.
	o := New(cat)
	o.Opt.DisableHash, o.Opt.DisableMerge, o.Opt.DisableNL, o.Opt.DisableIndexNL = true, true, true, true
	if _, err := o.Optimize(bq, nil); err == nil {
		t.Error("fully disabled repertoire should fail to plan a join")
	}
}
