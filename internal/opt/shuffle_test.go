package opt

import (
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/plan"
	"rqp/internal/types"
	"rqp/internal/workload"
)

func shuffleTestJoin(t *testing.T, estProbe, estBuild float64, partitioned int) *plan.JoinNode {
	t.Helper()
	cat := catalog.New()
	mk := func(name string, rows int) *catalog.Table {
		tb, err := cat.CreateTable(name, types.Schema{
			{Name: "k", Kind: types.KindInt},
			{Name: "v", Kind: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			cat.Insert(nil, tb, workload.IntRow(int64(i%7), int64(i)))
		}
		return tb
	}
	probe, build := mk("probe", 70), mk("build", 35)
	if partitioned > 1 {
		for _, tb := range []*catalog.Table{probe, build} {
			if err := cat.PartitionTable(tb, "k", partitioned); err != nil {
				t.Fatal(err)
			}
		}
	}
	ls := &plan.ScanNode{Table: probe}
	ls.Prop.EstRows = estProbe
	rs := &plan.ScanNode{Table: build}
	rs.Prop.EstRows = estBuild
	j := &plan.JoinNode{Alg: plan.JoinHash, LeftKeys: []int{0}, RightKeys: []int{0}}
	j.Kids = []plan.Node{ls, rs}
	return j
}

func TestPlanShufflesCostedChoice(t *testing.T) {
	// Large probe, tiny build: replicating the build side is cheaper than
	// moving a share of the probe rows.
	j := shuffleTestJoin(t, 100000, 10, 0)
	if n := PlanShuffles(j, 4, ""); n != 1 {
		t.Fatalf("marked %d joins", n)
	}
	if j.Shuffle != plan.ShuffleBroadcast {
		t.Errorf("small build side: want broadcast, got %v", j.Shuffle)
	}

	// Comparable sides: repartition moves less than full replication.
	j = shuffleTestJoin(t, 1000, 1000, 0)
	PlanShuffles(j, 4, "")
	if j.Shuffle != plan.ShuffleRepartition {
		t.Errorf("balanced sides: want repartition, got %v", j.Shuffle)
	}
}

func TestPlanShufflesForce(t *testing.T) {
	j := shuffleTestJoin(t, 100000, 10, 0)
	PlanShuffles(j, 4, "repartition")
	if j.Shuffle != plan.ShuffleRepartition {
		t.Errorf("force=repartition ignored: %v", j.Shuffle)
	}
	PlanShuffles(j, 4, "broadcast")
	if j.Shuffle != plan.ShuffleBroadcast {
		t.Errorf("force=broadcast ignored: %v", j.Shuffle)
	}
	// Idempotent: re-running with no force re-derives the costed choice.
	PlanShuffles(j, 4, "")
	if j.Shuffle != plan.ShuffleBroadcast {
		t.Errorf("re-mark not idempotent: %v", j.Shuffle)
	}
}

func TestPlanShufflesColocated(t *testing.T) {
	j := shuffleTestJoin(t, 70, 35, 4)
	PlanShuffles(j, 4, "")
	if j.Shuffle != plan.ShuffleColocated {
		t.Errorf("matching partitioning: want colocated, got %v", j.Shuffle)
	}
	// Shard-count mismatch with the physical layout disqualifies it.
	j = shuffleTestJoin(t, 70, 35, 2)
	PlanShuffles(j, 4, "")
	if j.Shuffle == plan.ShuffleColocated {
		t.Error("mismatched partition count must not co-locate")
	}
	// Forcing an exchange overrides co-location.
	j = shuffleTestJoin(t, 70, 35, 4)
	PlanShuffles(j, 4, "broadcast")
	if j.Shuffle != plan.ShuffleBroadcast {
		t.Errorf("force should beat colocation, got %v", j.Shuffle)
	}
}

func TestPlanShufflesDisabled(t *testing.T) {
	j := shuffleTestJoin(t, 70, 35, 0)
	if n := PlanShuffles(j, 1, ""); n != 0 {
		t.Fatalf("shards=1 marked %d", n)
	}
	if j.Shuffle != plan.ShuffleNone {
		t.Errorf("shards=1 must leave ShuffleNone, got %v", j.Shuffle)
	}
}
