// Package opt implements the cost-based optimizer: cardinality estimation
// with pluggable robustness modes, a cost model over the simulated machine,
// dynamic-programming join enumeration, exhaustive plan enumeration for the
// risk metrics, POP validity ranges and plan diagrams with anorexic
// reduction.
package opt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rqp/internal/catalog"
	"rqp/internal/expr"
	"rqp/internal/plan"
	"rqp/internal/stats"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// EstimateMode selects how selectivities are derived.
type EstimateMode uint8

// Estimation modes. Expected is the classic point estimate. Percentile is
// the Babcock–Chaudhuri robust estimate: plan with a conservative quantile
// of the selectivity posterior instead of its mean. Correlated additionally
// consults column-group statistics to break the independence assumption.
const (
	Expected EstimateMode = iota
	Percentile
	Correlated
)

// Options configures one optimization run.
type Options struct {
	Mode          EstimateMode
	PercentileP   float64 // quantile for Percentile mode (e.g. 0.9)
	EvidenceRows  float64 // pseudo-sample size backing each estimate's posterior
	UseFeedback   bool    // apply LEO adjustments
	MemBudgetRows int     // rows an operator may hold before spilling
	BushyJoins    bool
	CrossProducts bool // allow cross products inside enumeration
	// Join algorithm repertoire (plan-repertoire robustness tests flip these).
	DisableHash    bool
	DisableMerge   bool
	DisableNL      bool
	DisableIndexNL bool
	GJoinOnly      bool // replace the whole repertoire with the generalized join
	NoIndexScans   bool // forbid index access paths
	// ForceIndexScans pins access paths to index scans whenever an index is
	// applicable, regardless of cost — the deliberately fragile policy the
	// smoothness ablation compares against.
	ForceIndexScans bool
	// Columnar admits columnar access paths: tables carrying a column-store
	// snapshot may be scanned by ColScan, with zone-map block-skipping and
	// compression savings credited into the estimate.
	Columnar bool
}

// DefaultOptions is a sensible classic configuration.
func DefaultOptions() Options {
	return Options{Mode: Expected, PercentileP: 0.9, EvidenceRows: 200, MemBudgetRows: 1 << 16}
}

// Optimizer plans bound query blocks against a catalog.
type Optimizer struct {
	Cat      *catalog.Catalog
	Feedback *stats.FeedbackStore
	CM       storage.CostModel
	Opt      Options
}

// New returns an optimizer with default options.
func New(cat *catalog.Catalog) *Optimizer {
	return &Optimizer{Cat: cat, Feedback: stats.NewFeedbackStore(), CM: storage.DefaultCostModel(), Opt: DefaultOptions()}
}

// ---------- base relations ----------

// BaseRel abstracts an optimizable input: a catalog table or a materialized
// intermediate (used by progressive re-optimization, which treats completed
// subresults as temp tables with exactly known cardinality).
type BaseRel struct {
	Alias  string
	Schema types.Schema // qualified by alias
	Table  *catalog.Table
	Temp   []types.Row // set for materialized intermediates
	Rows   float64     // raw row count
	Pages  float64
	Exact  bool // cardinality is known exactly (temp rels)
}

// relInfo is a base relation plus its pushed-down filters and estimates.
type relInfo struct {
	rel       BaseRel
	offset    int         // column offset in combined schema
	filters   []expr.Expr // table-local (shifted) conjuncts
	sel       float64
	card      float64
	signature string
}

func (ri *relInfo) width() int { return len(ri.rel.Schema) }

// joinPred is one conjunct spanning two or more relations.
type joinPred struct {
	cond     expr.Expr // over combined schema
	mask     uint64    // relations referenced
	sel      float64
	equi     bool
	leftCol  int // combined-schema indexes for equi preds
	rightCol int
}

// queryInfo is everything the enumerator needs.
type queryInfo struct {
	rels     []*relInfo
	preds    []joinPred
	combined types.Schema
	params   []types.Value
}

// analyze splits the query block's conjuncts into per-relation filters and
// join predicates and computes all base cardinalities.
func (o *Optimizer) analyze(rels []BaseRel, conjuncts []expr.Expr, params []types.Value) (*queryInfo, error) {
	qi := &queryInfo{params: params}
	offset := 0
	for _, br := range rels {
		ri := &relInfo{rel: br, offset: offset, sel: 1}
		qi.combined = append(qi.combined, br.Schema...)
		qi.rels = append(qi.rels, ri)
		offset += len(br.Schema)
	}
	relForCol := func(col int) int {
		for i, ri := range qi.rels {
			if col >= ri.offset && col < ri.offset+ri.width() {
				return i
			}
		}
		return -1
	}
	for _, c := range conjuncts {
		cols := expr.ColumnsUsed(c)
		var mask uint64
		for col := range cols {
			ri := relForCol(col)
			if ri < 0 {
				return nil, fmt.Errorf("opt: conjunct %s references column outside block", c)
			}
			mask |= 1 << uint(ri)
		}
		switch popcount(mask) {
		case 0: // constant predicate: fold into every relation's selectivity via rel 0
			qi.rels[0].filters = append(qi.rels[0].filters, c)
		case 1:
			ri := qi.rels[trailingRel(mask)]
			ri.filters = append(ri.filters, expr.ShiftColumns(c, -ri.offset))
		default:
			jp := joinPred{cond: c, mask: mask}
			if b, ok := c.(*expr.Bin); ok && b.Op == expr.OpEQ {
				lc, lok := b.L.(*expr.Col)
				rc, rok := b.R.(*expr.Col)
				if lok && rok && relForCol(lc.Index) != relForCol(rc.Index) {
					jp.equi = true
					jp.leftCol, jp.rightCol = lc.Index, rc.Index
				}
			}
			jp.sel = o.joinPredSelectivity(qi, jp)
			qi.preds = append(qi.preds, jp)
		}
	}
	for _, ri := range qi.rels {
		o.estimateBase(ri, params)
	}
	return qi, nil
}

func popcount(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

func trailingRel(m uint64) int {
	for i := 0; i < 64; i++ {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// estimateBase computes the filtered cardinality of one base relation.
func (o *Optimizer) estimateBase(ri *relInfo, params []types.Value) {
	rows := ri.rel.Rows
	sel, sig := o.filterSelectivity(ri.rel, ri.filters, params)
	ri.signature = sig
	if o.Opt.UseFeedback && o.Feedback != nil && sig != "" && !ri.rel.Exact {
		adj := o.Feedback.Adjustment(sig)
		sel = clamp01(sel * adj)
	}
	ri.sel = sel
	ri.card = math.Max(rows*sel, 0)
	if len(ri.filters) > 0 && ri.card < 1 {
		ri.card = math.Min(1, rows)
	}
}

// filterSelectivity estimates the combined selectivity of table-local
// conjuncts and returns the feedback signature for the predicate set.
func (o *Optimizer) filterSelectivity(br BaseRel, filters []expr.Expr, params []types.Value) (float64, string) {
	if len(filters) == 0 {
		return 1, ""
	}
	texts := make([]string, len(filters))
	sels := make([]float64, len(filters))
	eqCols := []int{}
	eqSels := []float64{}
	for i, f := range filters {
		texts[i] = expr.EquivalentForm(f)
		s := o.singlePredSelectivity(br, f, params)
		if o.Opt.Mode == Percentile {
			d := stats.FromEstimate(s, o.Opt.EvidenceRows)
			s = d.Percentile(o.Opt.PercentileP)
		}
		sels[i] = s
		if iv, ok := expr.ExtractInterval(f, params); ok && iv.Eq != nil && !iv.NE {
			eqCols = append(eqCols, iv.Col)
			eqSels = append(eqSels, s)
		}
	}
	sort.Strings(texts)
	sig := br.Alias + "|" + strings.Join(texts, "&")
	if br.Table != nil {
		sig = br.Table.Name + "|" + strings.Join(texts, "&")
	}

	// Correlated mode: if all-equality column group has recorded joint NDV,
	// use the correlation-aware combination for those and multiply the rest.
	if o.Opt.Mode == Correlated && br.Table != nil && len(eqCols) >= 2 {
		if _, ok := br.Table.Stats.GroupNDV(eqCols); ok {
			corrSel := br.Table.Stats.CorrelatedConjunctionSelectivity(eqCols, eqSels)
			rest := 1.0
			for i, f := range filters {
				if iv, ok := expr.ExtractInterval(f, params); ok && iv.Eq != nil && !iv.NE {
					continue
				}
				rest *= sels[i]
			}
			return clamp01(corrSel * rest), sig
		}
	}
	total := 1.0
	for _, s := range sels {
		total *= s
	}
	return clamp01(total), sig
}

// singlePredSelectivity estimates one conjunct against one relation.
func (o *Optimizer) singlePredSelectivity(br BaseRel, f expr.Expr, params []types.Value) float64 {
	var ts *stats.TableStats
	if br.Table != nil {
		ts = br.Table.Stats
	}
	colStats := func(col int) *stats.ColumnStats {
		if ts == nil {
			return nil
		}
		return ts.ColStats(col)
	}
	if iv, ok := expr.ExtractInterval(f, params); ok {
		cs := colStats(iv.Col)
		switch {
		case iv.Eq != nil && iv.NE:
			if cs != nil {
				return clamp01(1 - cs.SelectivityEq(*iv.Eq))
			}
			return 0.9
		case iv.Eq != nil:
			if cs != nil {
				return cs.SelectivityEq(*iv.Eq)
			}
			return 0.05
		default:
			lo, hi := math.Inf(-1), math.Inf(1)
			if iv.HasLo {
				lo = iv.Lo
			}
			if iv.HasHi {
				hi = iv.Hi
			}
			if cs != nil {
				return cs.SelectivityRange(lo, hi)
			}
			return 0.3
		}
	}
	switch n := f.(type) {
	case *expr.In:
		if c, ok := n.E.(*expr.Col); ok {
			cs := colStats(c.Index)
			total := 0.0
			for _, item := range n.List {
				if lit, ok := item.(*expr.Const); ok {
					if cs != nil {
						total += cs.SelectivityEq(lit.V)
					} else {
						total += 0.05
					}
				}
			}
			total = clamp01(total)
			if n.Neg {
				return clamp01(1 - total)
			}
			return total
		}
	case *expr.IsNull:
		if c, ok := n.E.(*expr.Col); ok {
			if cs := colStats(c.Index); cs != nil && cs.RowCount > 0 {
				nf := cs.NullCount / cs.RowCount
				if n.Neg {
					return clamp01(1 - nf)
				}
				return clamp01(nf)
			}
		}
		if n.Neg {
			return 0.95
		}
		return 0.05
	case *expr.Like:
		sel := 0.1
		if strings.HasPrefix(n.Pattern, "%") {
			sel = 0.25
		}
		if n.Neg {
			return 1 - sel
		}
		return sel
	case *expr.Bin:
		if n.Op == expr.OpOr {
			l := o.singlePredSelectivity(br, n.L, params)
			r := o.singlePredSelectivity(br, n.R, params)
			return clamp01(l + r - l*r)
		}
		if n.Op == expr.OpAnd {
			return clamp01(o.singlePredSelectivity(br, n.L, params) * o.singlePredSelectivity(br, n.R, params))
		}
	}
	return 1.0 / 3
}

// joinPredSelectivity estimates one join conjunct.
func (o *Optimizer) joinPredSelectivity(qi *queryInfo, jp joinPred) float64 {
	if jp.equi {
		var lcs, rcs *stats.ColumnStats
		for _, ri := range qi.rels {
			if ri.rel.Table == nil {
				continue
			}
			if jp.leftCol >= ri.offset && jp.leftCol < ri.offset+ri.width() {
				lcs = ri.rel.Table.Stats.ColStats(jp.leftCol - ri.offset)
			}
			if jp.rightCol >= ri.offset && jp.rightCol < ri.offset+ri.width() {
				rcs = ri.rel.Table.Stats.ColStats(jp.rightCol - ri.offset)
			}
		}
		return stats.JoinSelectivity(lcs, rcs)
	}
	return 1.0 / 3
}

// cardOfSet returns the estimated cardinality of joining the relation set:
// product of filtered base cards times the selectivity of every join
// predicate fully contained in the set. This is order-independent, so all
// plans for the same set agree (required for DP admissibility).
func (o *Optimizer) cardOfSet(qi *queryInfo, set uint64) float64 {
	card := 1.0
	for i, ri := range qi.rels {
		if set&(1<<uint(i)) != 0 {
			card *= math.Max(ri.card, 1e-9)
		}
	}
	for _, jp := range qi.preds {
		if jp.mask&set == jp.mask {
			card *= jp.sel
		}
	}
	if card < 0 {
		card = 0
	}
	return card
}

// statsFromEstimate builds the selectivity posterior used by Percentile
// mode (indirection keeps the stats import in one place).
func statsFromEstimate(sel, evidence float64) stats.SelectivityDistribution {
	return stats.FromEstimate(sel, evidence)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// BaseRelsFromQuery converts a bound query block's relations.
func BaseRelsFromQuery(q *plan.Query) []BaseRel {
	out := make([]BaseRel, len(q.Rels))
	for i, r := range q.Rels {
		out[i] = BaseRelFromTable(r.Table, r.Alias)
	}
	return out
}

// BaseRelFromTable wraps a catalog table as an optimizable relation.
func BaseRelFromTable(t *catalog.Table, alias string) BaseRel {
	rows := float64(t.Heap.NumRows())
	if t.Stats != nil && t.Stats.RowCount > 0 {
		rows = t.Stats.RowCount
	}
	return BaseRel{
		Alias:  alias,
		Schema: t.Schema.WithTable(alias),
		Table:  t,
		Rows:   rows,
		Pages:  float64(t.Heap.NumPages()),
	}
}

// TempRel wraps materialized rows as an optimizable relation with exact
// cardinality — the vehicle for progressive re-optimization.
func TempRel(alias string, schema types.Schema, rows []types.Row) BaseRel {
	return BaseRel{
		Alias:  alias,
		Schema: schema,
		Temp:   rows,
		Rows:   float64(len(rows)),
		Pages:  math.Ceil(float64(len(rows)) / float64(storage.PageRows)),
		Exact:  true,
	}
}
