package opt

import (
	"sort"

	"rqp/internal/expr"
	"rqp/internal/plan"
	"rqp/internal/types"
)

// EnumeratedPlan is one fully-finished alternative plan together with its
// optimizer-side estimates, as needed by the Dagstuhl risk metrics
// (Metric2 sums cardinality errors over *enumerated* plans; Metric3 forces
// every enumerated plan and compares the best enumerated runtime against
// the chosen plan's runtime).
type EnumeratedPlan struct {
	Root    plan.Node
	EstCost float64
	EstRows float64
}

// CorePlan is one enumerated join-core alternative over explicit base
// relations (no finishing operators), used by Rio-style bounding-box
// analysis which re-enumerates under scaled cardinality scenarios.
type CorePlan struct {
	Node plan.Node
	Cols []int
	Cost float64
	Rows float64
	Sig  string
}

// EnumerateCorePlans enumerates up to limit join cores over the given
// relations, deduplicated by plan signature (keeping the cheapest).
func (o *Optimizer) EnumerateCorePlans(rels []BaseRel, conjuncts []expr.Expr, params []types.Value, limit int) ([]CorePlan, error) {
	qi, err := o.analyze(rels, conjuncts, params)
	if err != nil {
		return nil, err
	}
	cores, err := o.enumerateCores(qi, limit)
	if err != nil {
		return nil, err
	}
	bySig := map[string]CorePlan{}
	for _, c := range cores {
		sig := plan.PlanSignature(c.node)
		if prev, ok := bySig[sig]; !ok || c.cost < prev.Cost {
			bySig[sig] = CorePlan{Node: c.node, Cols: c.cols, Cost: c.cost, Rows: c.rows, Sig: sig}
		}
	}
	out := make([]CorePlan, 0, len(bySig))
	for _, c := range bySig {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out, nil
}

func (o *Optimizer) enumerateCores(qi *queryInfo, limit int) ([]entry, error) {
	n := len(qi.rels)
	var cores []entry
	if n == 1 {
		return []entry{o.bestAccessPath(qi, 0)}, nil
	}
	var extend func(cur entry, used uint64)
	extend = func(cur entry, used uint64) {
		if len(cores) >= limit {
			return
		}
		full := uint64(1)<<uint(n) - 1
		if used == full {
			cores = append(cores, cur)
			return
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if used&bit != 0 {
				continue
			}
			if !o.Opt.CrossProducts && len(qi.preds) > 0 && !o.connected(qi, used, bit) {
				continue
			}
			next := o.bestAccessPath(qi, i)
			for _, cand := range o.joinCandidates(qi, cur, next) {
				extend(cand, used|bit)
				if len(cores) >= limit {
					return
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		start := o.bestAccessPath(qi, i)
		extend(start, start.set)
		if len(cores) >= limit {
			break
		}
	}
	if len(cores) == 0 {
		saved := o.Opt.CrossProducts
		o.Opt.CrossProducts = true
		for i := 0; i < n && len(cores) < limit; i++ {
			start := o.bestAccessPath(qi, i)
			extend(start, start.set)
		}
		o.Opt.CrossProducts = saved
	}
	return cores, nil
}

// EnumerateFullPlans generates up to limit distinct complete plans for the
// query: every left-deep join order, with every admissible join algorithm
// at each step. Plans are returned sorted by estimated cost (the chosen
// plan first).
func (o *Optimizer) EnumerateFullPlans(q *plan.Query, params []types.Value, limit int) ([]EnumeratedPlan, error) {
	rels := BaseRelsFromQuery(q)
	qi, err := o.analyze(rels, q.Conjuncts, params)
	if err != nil {
		return nil, err
	}
	cores, err := o.enumerateCores(qi, limit)
	if err != nil {
		return nil, err
	}
	out := make([]EnumeratedPlan, 0, len(cores))
	for _, c := range cores {
		root, err := o.finish(q, c)
		if err != nil {
			return nil, err
		}
		out = append(out, EnumeratedPlan{Root: root, EstCost: root.Props().EstCost, EstRows: root.Props().EstRows})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].EstCost < out[j].EstCost })
	return out, nil
}
