package opt

import (
	"math"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/expr"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// buildCat creates orders(id, cid, amount) / customer(id, region) with a
// foreign-key relationship and analyzed statistics.
func buildCat(t *testing.T, orders, customers int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	cust, err := cat.CreateTable("customer", types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "region", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < customers; i++ {
		cat.Insert(nil, cust, types.Row{types.Int(int64(i)), types.Int(int64(i % 5))})
	}
	ord, err := cat.CreateTable("orders", types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "cid", Kind: types.KindInt},
		{Name: "amount", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < orders; i++ {
		cat.Insert(nil, ord, types.Row{types.Int(int64(i)), types.Int(int64(i % customers)), types.Int(int64(i % 1000))})
	}
	cat.AnalyzeTable(cust, 16)
	cat.AnalyzeTable(ord, 16)
	return cat
}

func bindQ(t *testing.T, cat *catalog.Catalog, q string) *plan.Query {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatal(err)
	}
	return bq
}

func TestEstimateSingleTableFilter(t *testing.T) {
	cat := buildCat(t, 10000, 100)
	o := New(cat)
	bq := bindQ(t, cat, "SELECT id FROM orders WHERE amount < 100")
	root, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	// amount uniform 0..999 → ~10% of 10000 = 1000
	est := root.Props().EstRows
	if est < 500 || est > 2000 {
		t.Errorf("estimate %v, want ~1000", est)
	}
}

func TestJoinCardinalityEstimate(t *testing.T) {
	cat := buildCat(t, 10000, 100)
	o := New(cat)
	bq := bindQ(t, cat, "SELECT orders.id FROM orders, customer WHERE orders.cid = customer.id")
	root, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	// FK join: every order matches exactly one customer → 10000 rows.
	est := root.Props().EstRows
	if est < 5000 || est > 20000 {
		t.Errorf("join estimate %v, want ~10000", est)
	}
}

func TestOptimizerPrefersSmallBuildSide(t *testing.T) {
	cat := buildCat(t, 20000, 50)
	o := New(cat)
	bq := bindQ(t, cat, "SELECT orders.id FROM orders, customer WHERE orders.cid = customer.id")
	root, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The hash join should build on the small customer side (right child).
	var joins []*plan.JoinNode
	plan.Walk(root, func(n plan.Node) {
		if j, ok := n.(*plan.JoinNode); ok {
			joins = append(joins, j)
		}
	})
	if len(joins) != 1 {
		t.Fatalf("expected 1 join, got %d (%s)", len(joins), plan.PlanSignature(root))
	}
	j := joins[0]
	if j.Alg != plan.JoinHash {
		t.Fatalf("expected hash join, got %v", j.Alg)
	}
	if j.Right().Props().EstRows > j.Left().Props().EstRows {
		t.Errorf("build (right) side larger than probe: %v vs %v",
			j.Right().Props().EstRows, j.Left().Props().EstRows)
	}
}

func TestPercentileModeMoreConservative(t *testing.T) {
	cat := buildCat(t, 10000, 100)
	bq := bindQ(t, cat, "SELECT id FROM orders WHERE amount = 5")
	classic := New(cat)
	rootC, err := classic.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	robust := New(cat)
	robust.Opt.Mode = Percentile
	robust.Opt.PercentileP = 0.95
	rootR, err := robust.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rootR.Props().EstRows <= rootC.Props().EstRows {
		t.Errorf("percentile mode should over-estimate: %v vs %v",
			rootR.Props().EstRows, rootC.Props().EstRows)
	}
}

func TestCorrelatedModeFixesRedundantPredicate(t *testing.T) {
	// Lohman's war story: a pseudo-key predicate fully redundant with the
	// other predicates underestimates by orders of magnitude under
	// independence. Correlated mode with group stats must fix it.
	cat := catalog.New()
	tb, _ := cat.CreateTable("person", types.Schema{
		{Name: "lastname", Kind: types.KindInt},
		{Name: "pseudokey", Kind: types.KindInt}, // fully determined by lastname
	})
	for i := 0; i < 10000; i++ {
		ln := int64(i % 100)
		cat.Insert(nil, tb, types.Row{types.Int(ln), types.Int(ln * 7)})
	}
	cat.AnalyzeTable(tb, 16)
	cat.AnalyzeGroup(tb, []string{"lastname", "pseudokey"})

	bq := bindQ(t, cat, "SELECT lastname FROM person WHERE lastname = 10 AND pseudokey = 70")

	indep := New(cat)
	rootI, err := indep.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	corr := New(cat)
	corr.Opt.Mode = Correlated
	rootC, err := corr.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	actual := 100.0
	errI := math.Max(rootI.Props().EstRows, 1) / actual
	errC := math.Max(rootC.Props().EstRows, 1) / actual
	if errI > 0.5 {
		t.Errorf("independence should badly underestimate: est %v for actual %v", rootI.Props().EstRows, actual)
	}
	if errC < 0.5 || errC > 2 {
		t.Errorf("correlated mode should be near-exact: est %v for actual %v", rootC.Props().EstRows, actual)
	}
}

func TestFeedbackImprovesEstimate(t *testing.T) {
	cat := buildCat(t, 10000, 100)
	o := New(cat)
	o.Opt.UseFeedback = true
	bq := bindQ(t, cat, "SELECT id FROM orders WHERE amount = 7")
	root1, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	est1 := root1.Props().EstRows
	// Teach the optimizer the predicate actually returns 10x the estimate.
	var sig string
	plan.Walk(root1, func(n plan.Node) {
		if s, ok := n.(*plan.ScanNode); ok {
			sig = s.Prop.Signature
		}
	})
	if sig == "" {
		t.Fatal("scan signature missing")
	}
	o.Feedback.Record(sig, est1, est1*10)
	root2, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if root2.Props().EstRows < est1*5 {
		t.Errorf("feedback not applied: %v -> %v", est1, root2.Props().EstRows)
	}
}

func TestEnumerateFullPlans(t *testing.T) {
	cat := buildCat(t, 5000, 100)
	bq := bindQ(t, cat, "SELECT orders.id FROM orders, customer WHERE orders.cid = customer.id AND customer.region = 1")
	o := New(cat)
	plans, err := o.EnumerateFullPlans(bq, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 4 {
		t.Fatalf("expected several alternatives, got %d", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].EstCost < plans[i-1].EstCost {
			t.Fatal("plans not sorted by cost")
		}
	}
	// The DP choice should cost no more than the best enumerated plan.
	best, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Props().EstCost > plans[0].EstCost*1.01 {
		t.Errorf("DP plan (%.1f) worse than enumerated best (%.1f)",
			best.Props().EstCost, plans[0].EstCost)
	}
}

func TestEquivalentQueriesSamePlan(t *testing.T) {
	cat := buildCat(t, 5000, 100)
	o := New(cat)
	variants := []string{
		"SELECT id FROM orders WHERE NOT (amount <> 10)",
		"SELECT id FROM orders WHERE amount = 10",
		"SELECT id FROM orders WHERE 10 = amount",
	}
	var sigs, ests []string
	for _, q := range variants {
		bq := bindQ(t, cat, q)
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, plan.PlanSignature(root))
		var scanSig string
		plan.Walk(root, func(n plan.Node) {
			if s, ok := n.(*plan.ScanNode); ok {
				scanSig = s.Prop.Signature
			}
		})
		ests = append(ests, scanSig)
	}
	for i := 1; i < len(sigs); i++ {
		if sigs[i] != sigs[0] {
			t.Errorf("plan differs for variant %d: %s vs %s", i, sigs[i], sigs[0])
		}
		if ests[i] != ests[0] {
			t.Errorf("predicate signature differs for variant %d: %s vs %s", i, ests[i], ests[0])
		}
	}
	// FROM order must not matter either.
	a := bindQ(t, cat, "SELECT 1 FROM orders, customer WHERE orders.cid = customer.id")
	b := bindQ(t, cat, "SELECT 1 FROM customer, orders WHERE orders.cid = customer.id")
	ra, err := o.Optimize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := o.Optimize(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := ra.Props().EstCost, rb.Props().EstCost
	if math.Abs(ca-cb)/math.Max(ca, cb) > 1e-9 {
		t.Errorf("FROM order changed plan cost: %v vs %v", ca, cb)
	}
}

func TestPlanDiagramAndReduction(t *testing.T) {
	cat := buildCat(t, 20000, 200)
	// add an index so the diagram has at least two plan regions
	cat.CreateIndex(nil, "orders", "o_amount", []string{"amount"}, false)
	ordT, _ := cat.Table("orders")
	cat.AnalyzeTable(ordT, 16)
	o := New(cat)
	bq := bindQ(t, cat, "SELECT id FROM orders WHERE amount <= ?")
	var xs []types.Value
	for v := int64(0); v <= 1000; v += 50 {
		xs = append(xs, types.Int(v))
	}
	d, err := o.BuildPlanDiagram(bq, xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPlans() < 2 {
		t.Fatalf("diagram should show an index/scan crossover, got %d plans:\n%s", d.NumPlans(), d.Render())
	}
	reduced := d.Reduce(0.25)
	if reduced.NumPlans() > d.NumPlans() {
		t.Error("reduction increased plan count")
	}
	// lambda=0 must be a no-op or mild; large lambda collapses more.
	collapsed := d.Reduce(10)
	if collapsed.NumPlans() > reduced.NumPlans() {
		t.Error("larger lambda should not increase plan count")
	}
}

func TestGJoinOnlyModeUsesGJoin(t *testing.T) {
	cat := buildCat(t, 5000, 100)
	o := New(cat)
	o.Opt.GJoinOnly = true
	bq := bindQ(t, cat, "SELECT orders.id FROM orders, customer WHERE orders.cid = customer.id")
	root, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.PlanSignature(root), "GJoin") {
		t.Errorf("GJoinOnly should plan GJoin: %s", plan.PlanSignature(root))
	}
}

func TestValidityWindowViaSignatureProbing(t *testing.T) {
	// The remainder-plan signature should be stable for small cardinality
	// perturbations and change for huge ones (basis of POP checks).
	cat := buildCat(t, 20000, 100)
	o := New(cat)
	rels := []BaseRel{
		BaseRelFromTable(mustTable(t, cat, "orders"), "orders"),
		BaseRelFromTable(mustTable(t, cat, "customer"), "customer"),
	}
	bq := bindQ(t, cat, "SELECT orders.id FROM orders, customer WHERE orders.cid = customer.id")
	node, _, err := o.OptimizeJoinGraph(rels, bq.Conjuncts, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := plan.PlanSignature(node)
	// Shrink customer to 1 row: plan shape may change (e.g. build side).
	tiny := rels
	tiny[1].Rows = 1
	tiny[1].Pages = 1
	node2, _, err := o.OptimizeJoinGraph(tiny, bq.Conjuncts, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	_ = node2 // signatures may or may not differ; the API must at least be stable
}

func mustTable(t *testing.T, cat *catalog.Catalog, name string) *catalog.Table {
	t.Helper()
	tb, ok := cat.Table(name)
	if !ok {
		t.Fatalf("table %s missing", name)
	}
	return tb
}

func TestCostMonotoneInRows(t *testing.T) {
	o := New(catalog.New())
	if o.costSeqScan(10, 1000) >= o.costSeqScan(100, 10000) {
		t.Error("seq scan cost should grow with size")
	}
	if o.costHashJoin(100, 100, 100) >= o.costHashJoin(10000, 10000, 10000) {
		t.Error("hash join cost should grow with size")
	}
	small := o.costGJoin(100, 1e6, 1000)
	big := o.costNLJoin(100, 1e6, 1000)
	if small >= big {
		t.Error("gjoin should beat NL for large inputs")
	}
}

func TestTempRelOptimization(t *testing.T) {
	cat := buildCat(t, 1000, 50)
	o := New(cat)
	schema := types.Schema{{Table: "tmp", Name: "cid", Kind: types.KindInt}}
	var rows []types.Row
	for i := 0; i < 20; i++ {
		rows = append(rows, types.Row{types.Int(int64(i))})
	}
	rels := []BaseRel{
		TempRel("tmp", schema, rows),
		BaseRelFromTable(mustTable(t, cat, "customer"), "customer"),
	}
	// tmp.cid = customer.id over the combined schema (tmp col 0, cust col 1)
	cond := []expr.Expr{&expr.Bin{Op: expr.OpEQ,
		L: &expr.Col{Index: 0, Name: "tmp.cid", Typ: types.KindInt},
		R: &expr.Col{Index: 1, Name: "customer.id", Typ: types.KindInt},
	}}
	node, cols, err := o.OptimizeJoinGraph(rels, cond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("cols = %v", cols)
	}
	if !strings.Contains(plan.PlanSignature(node), "TempScan") {
		t.Errorf("plan should scan the temp rel: %s", plan.PlanSignature(node))
	}
	if node.Props().EstRows < 10 || node.Props().EstRows > 40 {
		t.Errorf("temp join estimate %v, want ~20", node.Props().EstRows)
	}
}
