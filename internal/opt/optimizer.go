package opt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rqp/internal/expr"
	"rqp/internal/plan"
	"rqp/internal/types"
)

// entry is one candidate plan for a relation set during enumeration.
type entry struct {
	set  uint64
	node plan.Node
	cols []int // combined-schema index of each output column, in order
	cost float64
	rows float64
}

// Optimize plans a bound query block end to end and returns the physical
// plan root.
func (o *Optimizer) Optimize(q *plan.Query, params []types.Value) (plan.Node, error) {
	rels := BaseRelsFromQuery(q)
	qi, err := o.analyze(rels, q.Conjuncts, params)
	if err != nil {
		return nil, err
	}
	best, err := o.enumerate(qi)
	if err != nil {
		return nil, err
	}
	return o.finish(q, best)
}

// FinishPlan wraps an already-built join core (whose output columns map to
// the query's combined schema via cols) with the query's outer joins,
// aggregation, projection, distinct, ordering and limit. Progressive
// re-optimization uses this to complete plans over materialized
// intermediates.
func (o *Optimizer) FinishPlan(q *plan.Query, core plan.Node, cols []int) (plan.Node, error) {
	e := entry{node: core, cols: cols, rows: core.Props().EstRows, cost: core.Props().EstCost}
	return o.finish(q, e)
}

// OptimizeJoinGraph plans just a join over arbitrary base relations (used by
// progressive re-optimization over materialized intermediates). It returns
// the best join tree plus the output column order (combined indexes).
func (o *Optimizer) OptimizeJoinGraph(rels []BaseRel, conjuncts []expr.Expr, params []types.Value) (plan.Node, []int, error) {
	qi, err := o.analyze(rels, conjuncts, params)
	if err != nil {
		return nil, nil, err
	}
	e, err := o.enumerate(qi)
	if err != nil {
		return nil, nil, err
	}
	return e.node, e.cols, nil
}

// enumerate runs DP over connected subsets.
func (o *Optimizer) enumerate(qi *queryInfo) (entry, error) {
	n := len(qi.rels)
	if n == 0 {
		return entry{}, fmt.Errorf("opt: no relations")
	}
	if n > 16 {
		return entry{}, fmt.Errorf("opt: too many relations (%d)", n)
	}
	dp := map[uint64]entry{}
	for i := range qi.rels {
		e := o.bestAccessPath(qi, i)
		dp[e.set] = e
	}
	full := (uint64(1) << uint(n)) - 1
	for size := 2; size <= n; size++ {
		for set := uint64(1); set <= full; set++ {
			if popcount(set) != size || set > full {
				continue
			}
			o.combineSplits(qi, dp, set, true)
			if _, ok := dp[set]; !ok {
				// no connected split: admit cross products for this set
				o.combineSplits(qi, dp, set, false)
			}
		}
	}
	best, ok := dp[full]
	if !ok {
		return entry{}, fmt.Errorf("opt: enumeration failed to cover all relations")
	}
	return best, nil
}

// combineSplits tries all admissible (left, right) splits of set.
func (o *Optimizer) combineSplits(qi *queryInfo, dp map[uint64]entry, set uint64, requireConnected bool) {
	for right := set & (set - 1); ; right = (right - 1) & set {
		if right == 0 {
			break
		}
		left := set &^ right
		if left == 0 {
			continue
		}
		if !o.Opt.BushyJoins && popcount(right) != 1 {
			// left-deep: right side must be a single relation; also allow
			// the mirrored case via the symmetric split later in the loop.
			continue
		}
		le, lok := dp[left]
		re, rok := dp[right]
		if !lok || !rok {
			continue
		}
		if requireConnected && !o.connected(qi, left, right) {
			continue
		}
		for _, cand := range o.joinCandidates(qi, le, re) {
			cur, ok := dp[set]
			if !ok || better(cand, cur) {
				dp[set] = cand
			}
		}
	}
}

// better orders candidate plans: strictly cheaper wins; near-ties (within
// 0.01%) break on the canonical plan signature so that semantically
// equivalent queries — e.g. commuted FROM lists — always produce the same
// plan (the equivalent-query robustness requirement).
func better(cand, cur entry) bool {
	const relEps = 1e-4
	diff := cand.cost - cur.cost
	tol := relEps * (cand.cost + cur.cost + 1)
	if diff < -tol {
		return true
	}
	if diff > tol {
		return false
	}
	return plan.PlanSignature(cand.node) < plan.PlanSignature(cur.node)
}

func (o *Optimizer) connected(qi *queryInfo, left, right uint64) bool {
	for _, jp := range qi.preds {
		if jp.mask&left != 0 && jp.mask&right != 0 && jp.mask&(left|right) == jp.mask {
			return true
		}
	}
	return false
}

// ---------- access paths ----------

func (o *Optimizer) bestAccessPath(qi *queryInfo, i int) entry {
	ri := qi.rels[i]
	cols := make([]int, ri.width())
	for c := range cols {
		cols[c] = ri.offset + c
	}
	set := uint64(1) << uint(i)
	filter := expr.AndAll(ri.filters)

	best := entry{set: set, cols: cols, rows: ri.card}
	if ri.rel.Table == nil { // materialized intermediate (possibly empty)
		node := &plan.TempScanNode{Alias: ri.rel.Alias, Rows: ri.rel.Temp, Filter: filter}
		node.Out = ri.rel.Schema
		node.Title = fmt.Sprintf("TempScan(%s)", ri.rel.Alias)
		node.Prop = plan.Props{EstRows: ri.card, EstCost: ri.rel.Pages*o.CM.SeqPageRead + ri.rel.Rows*o.CM.RowCPU, ActualRows: -1, Signature: ri.signature}
		best.node = node
		best.cost = node.Prop.EstCost
		return best
	}

	scan := &plan.ScanNode{Table: ri.rel.Table, Alias: ri.rel.Alias, Filter: filter}
	scan.Out = ri.rel.Schema
	scan.Title = fmt.Sprintf("SeqScan(%s)", ri.rel.Alias)
	scan.Prop = plan.Props{EstRows: ri.card, EstCost: o.costSeqScan(ri.rel.Pages, ri.rel.Rows), ActualRows: -1, Signature: ri.signature}
	best.node = scan
	best.cost = scan.Prop.EstCost

	// Columnar path: available when the session enabled it and the table
	// carries a current column-store snapshot. Pushable col⋈const conjuncts
	// evaluate on encoded blocks and enable zone-map skipping, credited into
	// the estimate by costColScan.
	if o.Opt.Columnar {
		if cs := ri.rel.Table.Col(); cs != nil {
			npushed := 0
			for _, f := range ri.filters {
				if _, _, v, ok := expr.SplitColConst(f, qi.params); ok && !v.IsNull() {
					npushed++
				}
			}
			cost := o.costColScan(float64(cs.NumBlocks()), float64(cs.TotalPages(nil)), ri.rel.Rows, ri.card, npushed)
			if cost < best.cost {
				cscan := &plan.ScanNode{Table: ri.rel.Table, Alias: ri.rel.Alias, Filter: filter, Columnar: true}
				cscan.Out = ri.rel.Schema
				cscan.Title = fmt.Sprintf("ColScan(%s)", ri.rel.Alias)
				cscan.Prop = plan.Props{EstRows: ri.card, EstCost: cost, ActualRows: -1, Signature: ri.signature}
				best.node = cscan
				best.cost = cost
			}
		}
	}

	if o.Opt.NoIndexScans || ri.rel.Table == nil {
		return best
	}
	// Index paths: any live index whose leading column has a usable
	// interval among the pushed-down filters.
	var bestIndex *entry
	for _, ix := range ri.rel.Table.Indexes {
		if ix.Dropped {
			continue
		}
		lead := ix.Cols[0]
		iv := expr.Unbounded(lead)
		found := false
		var residual []expr.Expr
		for _, f := range ri.filters {
			if fiv, ok := expr.ExtractInterval(f, qi.params); ok && fiv.Col == lead && !fiv.NE {
				iv = expr.Intersect(iv, fiv)
				found = true
				continue
			}
			residual = append(residual, f)
		}
		if !found {
			continue
		}
		cs := ri.rel.Table.Stats.ColStats(lead)
		prefixSel := 1.0
		if cs != nil {
			if iv.Eq != nil {
				prefixSel = cs.SelectivityEq(*iv.Eq)
			} else {
				lo, hi := math.Inf(-1), math.Inf(1)
				if iv.HasLo {
					lo = iv.Lo
				}
				if iv.HasHi {
					hi = iv.Hi
				}
				prefixSel = cs.SelectivityRange(lo, hi)
			}
		}
		if o.Opt.Mode == Percentile {
			// Robust mode biases toward over-estimating matches, making the
			// optimizer reluctant to bet on very selective index scans.
			prefixSel = fromEstimatePercentile(prefixSel, o.Opt.EvidenceRows, o.Opt.PercentileP)
		}
		matches := ri.rel.Rows * prefixSel
		cost := o.costIndexScan(float64(ix.Tree.Height()), matches, ri.rel.Rows)
		cost += matches * o.CM.RowCPU * float64(len(residual))
		if cost >= best.cost && !o.Opt.ForceIndexScans {
			continue
		}
		if bestIndex != nil && cost >= bestIndex.cost {
			continue
		}
		node := &plan.IndexScanNode{
			Table: ri.rel.Table, Alias: ri.rel.Alias, Index: ix,
			Residual: expr.AndAll(residual),
		}
		if iv.Eq != nil {
			node.LoKey, node.HiKey = []types.Value{*iv.Eq}, []types.Value{*iv.Eq}
			node.LoIncl, node.HiIncl, node.LoSet, node.HiSet = true, true, true, true
		} else {
			if iv.HasLo {
				node.LoKey, node.LoIncl, node.LoSet = []types.Value{types.Float(iv.Lo)}, iv.LoIncl, true
			}
			if iv.HasHi {
				node.HiKey, node.HiIncl, node.HiSet = []types.Value{types.Float(iv.Hi)}, iv.HiIncl, true
			}
		}
		node.Out = ri.rel.Schema
		node.Title = fmt.Sprintf("IndexScan(%s.%s)", ri.rel.Alias, ix.Name)
		node.Prop = plan.Props{EstRows: ri.card, EstCost: cost, ActualRows: -1, Signature: ri.signature}
		cand := entry{set: set, cols: cols, rows: ri.card, node: node, cost: cost}
		bestIndex = &cand
		if cost < best.cost {
			best = cand
		}
	}
	if o.Opt.ForceIndexScans && bestIndex != nil {
		return *bestIndex
	}
	return best
}

// OptimizeForceIndex plans with access paths pinned to index scans wherever
// one applies — the fragile policy the smoothness ablation compares against.
func (o *Optimizer) OptimizeForceIndex(q *plan.Query, params []types.Value) (plan.Node, error) {
	saved := o.Opt
	o.Opt.ForceIndexScans = true
	defer func() { o.Opt = saved }()
	return o.Optimize(q, params)
}

func fromEstimatePercentile(sel, evidence, p float64) float64 {
	d := statsFromEstimate(sel, evidence)
	return d.Percentile(p)
}

// ---------- joins ----------

// joinCandidates builds every admissible physical join of two entries.
func (o *Optimizer) joinCandidates(qi *queryInfo, le, re entry) []entry {
	set := le.set | re.set
	outRows := o.cardOfSet(qi, set)
	cols := append(append([]int{}, le.cols...), re.cols...)
	outSchema := schemaFor(qi, cols)

	// Partition applicable predicates into equi keys and residuals.
	var leftKeys, rightKeys []int // child-local indexes
	var residuals []expr.Expr
	var equiRight []int // combined col of the right side per key (for index NL)
	for _, jp := range qi.preds {
		if jp.mask&set != jp.mask || jp.mask&le.set == 0 || jp.mask&re.set == 0 {
			continue
		}
		if jp.equi {
			lcol, rcol := jp.leftCol, jp.rightCol
			if indexOf(le.cols, lcol) < 0 {
				lcol, rcol = rcol, lcol
			}
			li, rix := indexOf(le.cols, lcol), indexOf(re.cols, rcol)
			if li >= 0 && rix >= 0 {
				leftKeys = append(leftKeys, li)
				rightKeys = append(rightKeys, rix)
				equiRight = append(equiRight, rcol)
				continue
			}
		}
		residuals = append(residuals, remap(jp.cond, cols))
	}
	residual := expr.AndAll(residuals)
	sig := joinSignature(qi, set)

	mk := func(alg plan.JoinAlg, cost float64) entry {
		j := &plan.JoinNode{Alg: alg, Type: plan.Inner, LeftKeys: leftKeys, RightKeys: rightKeys, Residual: residual}
		j.Kids = []plan.Node{le.node, re.node}
		j.Out = outSchema
		j.Title = alg.String()
		j.Prop = plan.Props{EstRows: outRows, EstCost: cost, ActualRows: -1, Signature: sig}
		return entry{set: set, node: j, cols: cols, cost: cost, rows: outRows}
	}

	var out []entry
	hasEqui := len(leftKeys) > 0
	if o.Opt.GJoinOnly {
		if hasEqui {
			c := le.cost + re.cost + o.costGJoin(le.rows, re.rows, outRows)
			out = append(out, mk(plan.JoinGeneral, c))
		} else {
			c := le.cost + re.cost + o.costNLJoin(le.rows, re.rows, outRows)
			out = append(out, mk(plan.JoinNL, c))
		}
		return out
	}
	if hasEqui && !o.Opt.DisableHash {
		c := le.cost + re.cost + o.costHashJoin(le.rows, re.rows, outRows)
		out = append(out, mk(plan.JoinHash, c))
	}
	if hasEqui && !o.Opt.DisableMerge {
		c := le.cost + re.cost + o.costMergeJoin(le.rows, re.rows, outRows)
		out = append(out, mk(plan.JoinMerge, c))
	}
	if !o.Opt.DisableNL {
		c := le.cost + re.cost + o.costNLJoin(le.rows, re.rows, outRows)
		out = append(out, mk(plan.JoinNL, c))
	}
	if hasEqui && !o.Opt.DisableIndexNL && popcount(re.set) == 1 {
		if cand, ok := o.indexNLCandidate(qi, le, re, leftKeys, equiRight, residual, outSchema, cols, outRows, sig); ok {
			out = append(out, cand)
		}
	}
	return out
}

// indexNLCandidate builds an index nested-loop join when the right side is
// a single base relation with an index on one of the equi-join columns.
func (o *Optimizer) indexNLCandidate(qi *queryInfo, le, re entry, leftKeys, equiRight []int, residual expr.Expr, outSchema types.Schema, cols []int, outRows float64, sig string) (entry, bool) {
	ri := qi.rels[trailingRel(re.set)]
	if ri.rel.Table == nil {
		return entry{}, false
	}
	for k, rcol := range equiRight {
		local := rcol - ri.offset
		ix := ri.rel.Table.IndexOn(local)
		if ix == nil {
			continue
		}
		// All right-side filters plus the non-probe join preds run as
		// residual after the probe.
		var res []expr.Expr
		if residual != nil {
			res = append(res, residual)
		}
		for _, f := range ri.filters {
			res = append(res, expr.ShiftColumns(f, ri.offset))
		}
		for k2 := range leftKeys {
			if k2 == k {
				continue
			}
			res = append(res, &expr.Bin{Op: expr.OpEQ,
				L: &expr.Col{Index: leftKeys[k2], Typ: outSchema[leftKeys[k2]].Kind, Name: outSchema[leftKeys[k2]].QualifiedName()},
				R: &expr.Col{Index: len(le.cols) + (equiRight[k2] - ri.offset), Typ: outSchema[len(le.cols)+(equiRight[k2]-ri.offset)].Kind, Name: outSchema[len(le.cols)+(equiRight[k2]-ri.offset)].QualifiedName()},
			})
		}
		// The residual list references combined cols for ri.filters — remap.
		fullRes := expr.AndAll(res)
		if fullRes != nil {
			fullRes = remapPartial(fullRes, cols)
		}
		cs := ri.rel.Table.Stats.ColStats(local)
		ndv := math.Max(1, ri.rel.Rows/100)
		if cs != nil && cs.NDV > 0 {
			ndv = cs.NDV
		}
		matchesPerRow := ri.rel.Rows / ndv
		cost := le.cost + o.costIndexNLJoin(le.rows, matchesPerRow, float64(ix.Tree.Height()), outRows)
		j := &plan.IndexJoinNode{
			Type: plan.Inner, Table: ri.rel.Table, Alias: ri.rel.Alias, Index: ix,
			LeftKeys: []int{leftKeys[k]}, Residual: fullRes,
		}
		j.Kids = []plan.Node{le.node}
		j.Out = outSchema
		j.Title = fmt.Sprintf("IndexNLJoin(%s.%s)", ri.rel.Alias, ix.Name)
		j.Prop = plan.Props{EstRows: outRows, EstCost: cost, ActualRows: -1, Signature: sig}
		return entry{set: le.set | re.set, node: j, cols: cols, cost: cost, rows: outRows}, true
	}
	return entry{}, false
}

// ---------- finishing: outer joins, aggregation, projection, order ----------

func (o *Optimizer) finish(q *plan.Query, core entry) (plan.Node, error) {
	node := core.node
	cols := core.cols
	rows := core.rows
	cost := core.cost

	// Outer joins in syntax order.
	for _, lj := range q.LeftJoins {
		var err error
		node, cols, rows, cost, err = o.applyLeftJoin(q, node, cols, rows, cost, lj)
		if err != nil {
			return nil, err
		}
	}

	colmap := invert(cols)

	if q.Grouped {
		groupExprs := make([]expr.Expr, len(q.GroupBy))
		outSchema := types.Schema{}
		for i, g := range q.GroupBy {
			groupExprs[i] = expr.RemapColumns(g, colmap)
			outSchema = append(outSchema, types.Column{Name: g.String(), Kind: g.Kind()})
		}
		aggs := make([]plan.AggSpec, len(q.Aggs))
		for i, a := range q.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				aggs[i].Arg = expr.RemapColumns(a.Arg, colmap)
			}
			kind := types.KindFloat
			if a.Func == "COUNT" {
				kind = types.KindInt
			}
			outSchema = append(outSchema, types.Column{Name: a.Name, Kind: kind})
		}
		groups := estimateGroups(rows, len(groupExprs))
		ag := &plan.AggNode{Alg: plan.AggHash, GroupExprs: groupExprs, Aggs: aggs}
		ag.Kids = []plan.Node{node}
		ag.Out = outSchema
		ag.Title = "HashAggregate"
		cost += o.costHashAgg(rows, groups)
		ag.Prop = plan.Props{EstRows: groups, EstCost: cost, ActualRows: -1}
		node = ag
		rows = groups
		// After aggregation, columns are positional; identity mapping.
		colmap = nil
		if q.Having != nil {
			f := &plan.FilterNode{Pred: q.Having}
			f.Kids = []plan.Node{node}
			f.Out = node.Schema()
			f.Title = "Having"
			rows = rows / 3
			cost += rows * o.CM.RowCPU
			f.Prop = plan.Props{EstRows: rows, EstCost: cost, ActualRows: -1}
			node = f
		}
	}

	// Projection.
	projExprs := make([]expr.Expr, len(q.Projections))
	outSchema := types.Schema{}
	for i, p := range q.Projections {
		pe := p
		if colmap != nil {
			pe = expr.RemapColumns(p, colmap)
		}
		projExprs[i] = pe
		outSchema = append(outSchema, types.Column{Name: q.ProjNames[i], Kind: pe.Kind()})
	}
	pr := &plan.ProjectNode{Exprs: projExprs}
	pr.Kids = []plan.Node{node}
	pr.Out = outSchema
	pr.Title = "Project"
	cost += rows * o.CM.RowCPU
	pr.Prop = plan.Props{EstRows: rows, EstCost: cost, ActualRows: -1}
	node = pr

	if q.Distinct {
		d := &plan.DistinctNode{}
		d.Kids = []plan.Node{node}
		d.Out = node.Schema()
		d.Title = "Distinct"
		rows = estimateGroups(rows, len(projExprs))
		cost += o.costHashAgg(rows, rows)
		d.Prop = plan.Props{EstRows: rows, EstCost: cost, ActualRows: -1}
		node = d
	}

	if len(q.OrderBy) > 0 {
		s := &plan.SortNode{Keys: q.OrderBy}
		s.Kids = []plan.Node{node}
		s.Out = node.Schema()
		s.Title = "Sort"
		cost += o.costSort(rows)
		s.Prop = plan.Props{EstRows: rows, EstCost: cost, ActualRows: -1}
		node = s
	}

	if q.Limit >= 0 {
		l := &plan.LimitNode{N: q.Limit, Skip: q.Offset}
		l.Kids = []plan.Node{node}
		l.Out = node.Schema()
		l.Title = fmt.Sprintf("Limit(%d)", q.Limit)
		lim := math.Min(rows, float64(q.Limit))
		l.Prop = plan.Props{EstRows: lim, EstCost: cost, ActualRows: -1}
		node = l
	}
	return node, nil
}

func (o *Optimizer) applyLeftJoin(q *plan.Query, node plan.Node, cols []int, rows, cost float64, lj plan.LeftJoin) (plan.Node, []int, float64, float64, error) {
	r := lj.Rel
	br := BaseRelFromTable(r.Table, r.Alias)
	scan := &plan.ScanNode{Table: r.Table, Alias: r.Alias}
	scan.Out = br.Schema
	scan.Title = fmt.Sprintf("SeqScan(%s)", r.Alias)
	scanCost := o.costSeqScan(br.Pages, br.Rows)
	scan.Prop = plan.Props{EstRows: br.Rows, EstCost: scanCost, ActualRows: -1}

	newCols := append(append([]int{}, cols...), seq(r.Offset, len(br.Schema))...)
	outSchema := node.Schema().Concat(br.Schema)

	var leftKeys, rightKeys []int
	var residuals []expr.Expr
	for _, c := range expr.Conjuncts(lj.On) {
		if b, ok := c.(*expr.Bin); ok && b.Op == expr.OpEQ {
			lc, lok := b.L.(*expr.Col)
			rc, rok := b.R.(*expr.Col)
			if lok && rok {
				if isInRange(rc.Index, r.Offset, len(br.Schema)) && !isInRange(lc.Index, r.Offset, len(br.Schema)) {
					if li := indexOf(cols, lc.Index); li >= 0 {
						leftKeys = append(leftKeys, li)
						rightKeys = append(rightKeys, rc.Index-r.Offset)
						continue
					}
				}
				if isInRange(lc.Index, r.Offset, len(br.Schema)) && !isInRange(rc.Index, r.Offset, len(br.Schema)) {
					if li := indexOf(cols, rc.Index); li >= 0 {
						leftKeys = append(leftKeys, li)
						rightKeys = append(rightKeys, lc.Index-r.Offset)
						continue
					}
				}
			}
		}
		residuals = append(residuals, remap(c, newCols))
	}
	alg := plan.JoinHash
	if len(leftKeys) == 0 {
		alg = plan.JoinNL
	}
	sel := 0.01
	outRows := math.Max(rows, rows*br.Rows*sel)
	var jcost float64
	if alg == plan.JoinHash {
		jcost = o.costHashJoin(rows, br.Rows, outRows)
	} else {
		jcost = o.costNLJoin(rows, br.Rows, outRows)
	}
	j := &plan.JoinNode{Alg: alg, Type: plan.LeftOuter, LeftKeys: leftKeys, RightKeys: rightKeys, Residual: expr.AndAll(residuals)}
	j.Kids = []plan.Node{node, scan}
	j.Out = outSchema
	j.Title = "Left" + alg.String()
	total := cost + scanCost + jcost
	j.Prop = plan.Props{EstRows: outRows, EstCost: total, ActualRows: -1}
	return j, newCols, outRows, total, nil
}

// ---------- helpers ----------

func schemaFor(qi *queryInfo, cols []int) types.Schema {
	out := make(types.Schema, len(cols))
	for i, c := range cols {
		out[i] = qi.combined[c]
	}
	return out
}

func indexOf(cols []int, c int) int {
	for i, v := range cols {
		if v == c {
			return i
		}
	}
	return -1
}

func invert(cols []int) map[int]int {
	m := make(map[int]int, len(cols))
	for local, combined := range cols {
		m[combined] = local
	}
	return m
}

// remap rewrites a combined-schema expression to child-local indexes.
func remap(e expr.Expr, cols []int) expr.Expr {
	return expr.RemapColumns(e, invert(cols))
}

// remapPartial remaps only indexes present in cols (mixed expressions built
// during index-NL construction already have some local columns).
func remapPartial(e expr.Expr, cols []int) expr.Expr {
	return expr.RemapColumns(e, invert(cols))
}

func isInRange(col, offset, width int) bool {
	return col >= offset && col < offset+width
}

func seq(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}

func estimateGroups(rows float64, keys int) float64 {
	if keys == 0 {
		return 1
	}
	g := rows / 10
	if g < 1 {
		g = 1
	}
	return g
}

func joinSignature(qi *queryInfo, set uint64) string {
	var names []string
	for i, ri := range qi.rels {
		if set&(1<<uint(i)) != 0 {
			names = append(names, ri.rel.Alias)
		}
	}
	sort.Strings(names)
	var preds []string
	for _, jp := range qi.preds {
		if jp.mask&set == jp.mask {
			preds = append(preds, expr.EquivalentForm(jp.cond))
		}
	}
	sort.Strings(preds)
	return "join{" + strings.Join(names, ",") + "|" + strings.Join(preds, "&") + "}"
}
