package opt

import (
	"math"

	"rqp/internal/storage"
)

// Cost formulas over the simulated machine. All formulas take input
// cardinalities (rows) and return cost units consistent with storage.Clock,
// so that estimated and measured costs are directly comparable — the
// prerequisite for the report's "cost calculation accuracy" tests.

func pages(rows float64) float64 {
	return math.Ceil(math.Max(rows, 0) / float64(storage.PageRows))
}

func (o *Optimizer) costSeqScan(tablePages, tableRows float64) float64 {
	return tablePages*o.CM.SeqPageRead + tableRows*o.CM.RowCPU
}

// costColScan models the columnar access path: one zone check per block per
// pushed col⋈const conjunct, encoded pages and encoded predicate evaluation
// scaled by the fraction of blocks expected to survive zone pruning, and
// per-row CPU for the surviving rows. readFrac assumes clustered data — the
// fraction of blocks read tracks selectivity, floored at one block — which
// is the optimistic end; unclustered values make zone maps useless and the
// scan degrades to reading every (still compressed) block. With no pushed
// conjunct nothing can be skipped and every encoded page is read.
func (o *Optimizer) costColScan(nblocks, encPages, tableRows, outRows float64, npushed int) float64 {
	readFrac := 1.0
	c := 0.0
	if npushed > 0 && nblocks > 0 {
		c += nblocks * o.CM.ZoneCheck * float64(npushed)
		sel := 1.0
		if tableRows > 0 {
			sel = outRows / tableRows
		}
		readFrac = math.Max(sel, 1/nblocks)
		if readFrac > 1 {
			readFrac = 1
		}
	}
	c += readFrac * encPages * o.CM.SeqPageRead
	c += readFrac * tableRows * o.CM.FilterTest * float64(npushed)
	c += outRows * o.CM.RowCPU
	return c
}

// costIndexScan: descend the tree, walk matching leaves, fetch each match
// from the heap by RID (random I/O) and evaluate residuals.
func (o *Optimizer) costIndexScan(height float64, matchRows, tableRows float64) float64 {
	leafPages := pages(matchRows)
	return height*o.CM.RandPageRead + leafPages*o.CM.SeqPageRead +
		matchRows*o.CM.RandPageRead + matchRows*o.CM.RowCPU
}

// costHashJoin builds on the right input, probes with the left. Building
// (allocate + insert) costs double a probe, which is what makes the
// smaller input the preferred build side. Exceeding the memory budget
// triggers grace partitioning: write and re-read both inputs once.
func (o *Optimizer) costHashJoin(leftRows, rightRows, outRows float64) float64 {
	c := rightRows*2*o.CM.HashProbe + leftRows*o.CM.HashProbe + outRows*o.CM.RowCPU
	if rightRows > float64(o.Opt.MemBudgetRows) {
		spillPages := pages(leftRows) + pages(rightRows)
		c += spillPages * (o.CM.PageWrite + o.CM.SeqPageRead)
	}
	return c
}

// costSort is n·log2(n) comparisons plus run spill I/O when over budget.
func (o *Optimizer) costSort(rows float64) float64 {
	if rows < 2 {
		return rows * o.CM.Compare
	}
	c := rows * math.Log2(rows) * o.CM.Compare
	if rows > float64(o.Opt.MemBudgetRows) {
		c += pages(rows) * (o.CM.PageWrite + o.CM.SeqPageRead)
	}
	return c
}

// costMergeJoin assumes unsorted inputs (explicit sorts included).
func (o *Optimizer) costMergeJoin(leftRows, rightRows, outRows float64) float64 {
	return o.costSort(leftRows) + o.costSort(rightRows) +
		(leftRows+rightRows)*o.CM.Compare + outRows*o.CM.RowCPU
}

// costNLJoin is the quadratic fallback; the inner is materialized once.
func (o *Optimizer) costNLJoin(leftRows, rightRows, outRows float64) float64 {
	return leftRows*rightRows*o.CM.Compare + rightRows*o.CM.RowCPU + outRows*o.CM.RowCPU
}

// costIndexNLJoin probes a persistent index once per outer row.
func (o *Optimizer) costIndexNLJoin(leftRows, matchesPerRow, height, outRows float64) float64 {
	perProbe := height*o.CM.RandPageRead + matchesPerRow*o.CM.RandPageRead
	return leftRows*perProbe + outRows*o.CM.RowCPU
}

// costGJoin models the generalized join: it behaves like an in-memory hash
// join while the smaller input fits, and degrades smoothly into
// grant-sized run partitioning (never into the quadratic NL cliff) when it
// does not. The robustness benefit is the *absence* of the bad branch,
// bought with a small constant overhead.
func (o *Optimizer) costGJoin(leftRows, rightRows, outRows float64) float64 {
	small, large := leftRows, rightRows
	if small > large {
		small, large = large, small
	}
	const overhead = 1.15
	c := overhead * (small*o.CM.HashProbe + large*o.CM.HashProbe + outRows*o.CM.RowCPU)
	if small > float64(o.Opt.MemBudgetRows) {
		c += (pages(small) + pages(large)) * (o.CM.PageWrite + o.CM.SeqPageRead)
	}
	return c
}

func (o *Optimizer) costHashAgg(inRows, groups float64) float64 {
	return inRows*o.CM.HashProbe + groups*o.CM.RowCPU
}

func (o *Optimizer) costStreamAgg(inRows, groups float64) float64 {
	return inRows*o.CM.Compare + groups*o.CM.RowCPU
}
