package opt

import (
	"fmt"
	"strings"

	"rqp/internal/plan"
	"rqp/internal/types"
)

// PlanDiagram is a grid over a one- or two-dimensional selectivity space of
// a parameterized query, recording the optimizer's plan choice in every
// cell (Reddy & Haritsa). Anorexic reduction (Harish, Darera & Haritsa)
// swallows cells into neighbouring plans whose cost is within (1+lambda),
// shrinking the plan set drastically — the report's "identifying robust
// plans through plan diagram reduction".
type PlanDiagram struct {
	XValues []types.Value // parameter values along X
	YValues []types.Value // nil for 1-D diagrams
	Cells   [][]int       // [y][x] -> plan id
	Plans   []plan.Node   // distinct plans, id-indexed
	Costs   [][]float64   // [y][x] -> estimated cost of the cell's plan
	Sigs    []string
}

// BuildPlanDiagram optimizes the query at every grid point. The query must
// contain one parameter ('?') per axis: params[0] sweeps X, params[1]
// sweeps Y (if YValues non-nil).
func (o *Optimizer) BuildPlanDiagram(q *plan.Query, xs []types.Value, ys []types.Value) (*PlanDiagram, error) {
	d := &PlanDiagram{XValues: xs, YValues: ys}
	sigID := map[string]int{}
	rows := 1
	if len(ys) > 0 {
		rows = len(ys)
	}
	d.Cells = make([][]int, rows)
	d.Costs = make([][]float64, rows)
	for yi := 0; yi < rows; yi++ {
		d.Cells[yi] = make([]int, len(xs))
		d.Costs[yi] = make([]float64, len(xs))
		for xi, xv := range xs {
			params := []types.Value{xv}
			if len(ys) > 0 {
				params = append(params, ys[yi])
			}
			root, err := o.Optimize(q, params)
			if err != nil {
				return nil, err
			}
			s := plan.PlanSignature(root)
			id, ok := sigID[s]
			if !ok {
				id = len(d.Plans)
				sigID[s] = id
				d.Plans = append(d.Plans, root)
				d.Sigs = append(d.Sigs, s)
			}
			d.Cells[yi][xi] = id
			d.Costs[yi][xi] = root.Props().EstCost
		}
	}
	return d, nil
}

// NumPlans returns the count of distinct plans in the diagram.
func (d *PlanDiagram) NumPlans() int {
	seen := map[int]bool{}
	for _, row := range d.Cells {
		for _, id := range row {
			seen[id] = true
		}
	}
	return len(seen)
}

// CostOfPlanAt evaluates plan `id` at the cell (re-costing the plan's
// structure under the cell's parameters by re-optimizing with the plan
// forced is expensive; the diagram instead approximates with the recorded
// cell costs and a swallowing rule based on cost dominance of neighbours).
//
// Reduce performs anorexic reduction: repeatedly recolor a cell to a
// neighbouring plan when that plan's cost at an adjacent cell is within
// (1+lambda) of the cell's own cost. The approximation follows the paper's
// observation that plan cost functions are smooth in selectivity space, so
// neighbouring-cell costs bound same-plan costs.
func (d *PlanDiagram) Reduce(lambda float64) *PlanDiagram {
	rows := len(d.Cells)
	cols := 0
	if rows > 0 {
		cols = len(d.Cells[0])
	}
	out := &PlanDiagram{XValues: d.XValues, YValues: d.YValues, Plans: d.Plans, Sigs: d.Sigs}
	out.Cells = make([][]int, rows)
	out.Costs = make([][]float64, rows)
	for y := range d.Cells {
		out.Cells[y] = append([]int(nil), d.Cells[y]...)
		out.Costs[y] = append([]float64(nil), d.Costs[y]...)
	}
	// Plans ranked by area (descending): big plans swallow small ones.
	area := map[int]int{}
	for _, row := range out.Cells {
		for _, id := range row {
			area[id]++
		}
	}
	changed := true
	for changed {
		changed = false
		for y := 0; y < rows; y++ {
			for x := 0; x < cols; x++ {
				cur := out.Cells[y][x]
				bestID, bestArea := cur, area[cur]
				for _, nb := range neighbours(y, x, rows, cols) {
					nid := out.Cells[nb[0]][nb[1]]
					if nid == cur {
						continue
					}
					// Swallow if the neighbour plan's cost at its own cell is
					// within (1+lambda) of this cell's cost and it covers a
					// larger area.
					if out.Costs[nb[0]][nb[1]] <= out.Costs[y][x]*(1+lambda) && area[nid] > bestArea {
						bestID, bestArea = nid, area[nid]
					}
				}
				if bestID != cur {
					area[cur]--
					area[bestID]++
					out.Cells[y][x] = bestID
					changed = true
				}
			}
		}
	}
	return out
}

func neighbours(y, x, rows, cols int) [][2]int {
	var out [][2]int
	if y > 0 {
		out = append(out, [2]int{y - 1, x})
	}
	if y < rows-1 {
		out = append(out, [2]int{y + 1, x})
	}
	if x > 0 {
		out = append(out, [2]int{y, x - 1})
	}
	if x < cols-1 {
		out = append(out, [2]int{y, x + 1})
	}
	return out
}

// Render draws the diagram as ASCII art, one letter per plan.
func (d *PlanDiagram) Render() string {
	var sb strings.Builder
	for _, row := range d.Cells {
		for _, id := range row {
			sb.WriteByte(byte('A' + id%26))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%d distinct plans\n", d.NumPlans())
	return sb.String()
}
