package obs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rqp/internal/storage"
)

func TestPhaseForwardOnly(t *testing.T) {
	r := NewQueryRegistry(4, nil)
	q := r.Begin("SELECT 1", "classic")
	if q.Phase() != PhaseQueued {
		t.Fatalf("new query phase = %s, want queued", q.Phase())
	}
	q.SetPhase(PhaseRunning)
	q.SetPhase(PhaseAdmitted) // backwards: ignored
	if q.Phase() != PhaseRunning {
		t.Fatalf("phase moved backwards to %s", q.Phase())
	}
	q.SetPhase(PhaseSpilling)
	if q.Phase() != PhaseSpilling {
		t.Fatalf("phase = %s, want spilling", q.Phase())
	}
	if q.Phase().Terminal() {
		t.Fatal("spilling must not be terminal")
	}
	r.Finish(q, FinishStats{})
	if q.Phase() != PhaseDone || !q.Phase().Terminal() {
		t.Fatalf("finished phase = %s, want done", q.Phase())
	}
}

func TestFinishOutcomes(t *testing.T) {
	r := NewQueryRegistry(8, nil)

	ok := r.Finish(r.Begin("SELECT 1", "classic"), FinishStats{Rows: 3})
	if ok.Outcome != "done" || ok.Rows != 3 {
		t.Fatalf("success record = %+v", ok)
	}

	bad := r.Finish(r.Begin("SELECT broken", "classic"), FinishStats{Err: errors.New("boom")})
	if bad.Outcome != "failed" || bad.Error != "boom" {
		t.Fatalf("failure record = %+v", bad)
	}

	rej := r.Begin("SELECT 1", "classic")
	rej.SetPhase(PhaseRejected)
	// A rejection is an error exit too, but Rejected must stick.
	rec := r.Finish(rej, FinishStats{Err: errors.New("admission rejected")})
	if rec.Outcome != "rejected" {
		t.Fatalf("rejected outcome = %q", rec.Outcome)
	}

	if n := len(r.Active()); n != 0 {
		t.Fatalf("%d queries still active after finish", n)
	}
}

func TestRegistryRingAndRecent(t *testing.T) {
	r := NewQueryRegistry(3, nil)
	for i := 0; i < 5; i++ {
		r.Finish(r.Begin(fmt.Sprintf("SELECT %d", i), "classic"), FinishStats{Rows: i})
	}
	recent := r.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(recent))
	}
	// Newest first: queries 5, 4, 3 (IDs are 1-based).
	for i, wantID := range []uint64{5, 4, 3} {
		if recent[i].ID != wantID {
			t.Fatalf("recent[%d].ID = %d, want %d", i, recent[i].ID, wantID)
		}
	}
}

func TestRegistryMetricsAndSink(t *testing.T) {
	m := NewRegistry()
	r := NewQueryRegistry(4, m)
	base := time.Unix(1000, 0)
	r.SetNow(func() time.Time { return base })

	var logged []QueryRecord
	r.SetSink(FuncSink(func(rec *QueryRecord) { logged = append(logged, *rec) }))

	q := r.Begin("SELECT 1", "pop")
	if got := m.Gauge("rqp_queries_active").Value(); got != 1 {
		t.Fatalf("active gauge = %v, want 1", got)
	}
	base = base.Add(250 * time.Millisecond)
	r.Finish(q, FinishStats{Rows: 7, CostUnits: 12.5, SpillParts: 2})

	if got := m.Gauge("rqp_queries_active").Value(); got != 0 {
		t.Fatalf("active gauge after finish = %v, want 0", got)
	}
	if n := m.Histogram("rqp_query_latency_ms", LatencyBuckets).Count(); n != 1 {
		t.Fatalf("latency histogram count = %d, want 1", n)
	}
	if v := m.Counter("rqp_queries_finished_total", L("outcome", "done")).Value(); v != 1 {
		t.Fatalf("finished counter = %d, want 1", v)
	}
	if len(logged) != 1 {
		t.Fatalf("sink received %d records, want 1", len(logged))
	}
	rec := logged[0]
	if rec.DurationMS != 250 || rec.CostUnits != 12.5 || rec.SpillParts != 2 {
		t.Fatalf("sink record = %+v", rec)
	}
}

func TestActiveProgressFromTrace(t *testing.T) {
	r := NewQueryRegistry(4, nil)
	q := r.Begin("SELECT * FROM r", "classic")

	clock := storage.NewClock(storage.DefaultCostModel())
	tr := NewTrace(clock)
	scan := fakeNode("Scan(r)", 100)
	tr.AddFragment(scan)
	q.AttachTrace(tr)
	q.SetPhase(PhaseRunning)

	snap := func() ActiveQuery {
		act := r.Active()
		if len(act) != 1 {
			t.Fatalf("active = %d, want 1", len(act))
		}
		return act[0]
	}

	before := snap()
	if before.Progress != 0 || before.EstRows != 100 {
		t.Fatalf("initial progress = %+v", before)
	}
	tr.SpanOf(scan).AddRows(30)
	mid := snap()
	if mid.Progress <= before.Progress || mid.DoneRows != 30 {
		t.Fatalf("progress did not advance: %+v -> %+v", before, mid)
	}
	// Actuals beyond the estimate clamp at 1.0 rather than overflowing.
	tr.SpanOf(scan).AddRows(200)
	after := snap()
	if after.Progress != 1 {
		t.Fatalf("overflowed progress = %v, want clamp at 1", after.Progress)
	}

	// A spill event flips the phase via the trace hook.
	tr.Event("spill.partition", "parts=4")
	if got := snap().Phase; got != "spilling" {
		t.Fatalf("phase after spill event = %q, want spilling", got)
	}
}

func TestActiveUntracedProgressSentinel(t *testing.T) {
	r := NewQueryRegistry(4, nil)
	r.Begin("SELECT 1", "classic")
	act := r.Active()
	if len(act) != 1 || act[0].Progress != -1 {
		t.Fatalf("untraced active = %+v, want progress -1", act)
	}
}

func TestTraceOf(t *testing.T) {
	r := NewQueryRegistry(2, nil)
	clock := storage.NewClock(storage.DefaultCostModel())
	tr := NewTrace(clock)

	q := r.Begin("SELECT 1", "classic")
	q.AttachTrace(tr)
	if r.TraceOf(q.ID()) != tr {
		t.Fatal("active trace not found by ID")
	}
	r.Finish(q, FinishStats{})
	if r.TraceOf(q.ID()) != tr {
		t.Fatal("completed trace not retained in ring")
	}
	if r.TraceOf(9999) != nil {
		t.Fatal("unknown ID must return nil")
	}
}

func TestBeginTruncatesSQL(t *testing.T) {
	r := NewQueryRegistry(2, nil)
	long := strings.Repeat("x", 2048)
	q := r.Begin(long, "classic")
	act := r.Active()
	if len(act) != 1 || len(act[0].SQL) >= 1024 {
		t.Fatalf("SQL not truncated: %d bytes", len(act[0].SQL))
	}
	r.Finish(q, FinishStats{})
}

// TestRegistryConcurrent exercises Begin/Finish/phase transitions against
// concurrent Active/Recent polls; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	m := NewRegistry()
	r := NewQueryRegistry(16, m)
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 2; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Active()
					r.Recent()
					m.Expose()
				}
			}
		}()
	}
	var workers sync.WaitGroup
	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 200; i++ {
				q := r.Begin(fmt.Sprintf("SELECT %d", i), "classic")
				q.SetPhase(PhaseRunning)
				r.Finish(q, FinishStats{Rows: i})
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	pollers.Wait()
	if v := m.Counter("rqp_queries_finished_total", L("outcome", "done")).Value(); v != 1600 {
		t.Fatalf("finished = %d, want 1600", v)
	}
	if len(r.Active()) != 0 {
		t.Fatal("queries left active")
	}
}
