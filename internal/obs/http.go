package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// queriesResponse is the /queries payload: the live query table plus the
// recently-completed ring, newest first.
type queriesResponse struct {
	Active []ActiveQuery `json:"active"`
	Recent []QueryRecord `json:"recent"`
}

// NewDebugMux assembles the engine's introspection endpoints:
//
//	/metrics     – the metrics registry in Prometheus text format
//	/queries     – active queries (with live progress) + completed ring, JSON
//	/trace/{id}  – one query's span-tree + event-log JSON
//	/debug/pprof – the standard Go profiler endpoints
//
// Either argument may be nil; the corresponding endpoints then report 404.
// The mux holds only read paths — it is safe to expose while queries run,
// every handler works from snapshots.
func NewDebugMux(metrics *Registry, queries *QueryRegistry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if metrics == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, metrics.Expose())
	})
	mux.HandleFunc("GET /queries", func(w http.ResponseWriter, r *http.Request) {
		if queries == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, queriesResponse{Active: queries.Active(), Recent: queries.Recent()})
	})
	mux.HandleFunc("GET /trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		if queries == nil {
			http.NotFound(w, r)
			return
		}
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad query id", http.StatusBadRequest)
			return
		}
		tr := queries.TraceOf(id)
		if tr == nil {
			http.Error(w, "unknown or untraced query", http.StatusNotFound)
			return
		}
		raw, err := tr.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	Addr string // the bound address (resolves ":0" to the real port)
	srv  *http.Server
	ln   net.Listener
}

// StartDebugServer binds addr (e.g. ":6060", "127.0.0.1:0") and serves the
// debug mux on a background goroutine. Callers that never Close it simply
// let the listener die with the process — the rqpsh/rqpbench opt-in flag
// path.
func StartDebugServer(addr string, metrics *Registry, queries *QueryRegistry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(metrics, queries), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close shuts the listener down.
func (d *DebugServer) Close() error { return d.srv.Close() }
