package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

// QueryRecord is one completed query's structured log record — the unit of
// the JSONL query log and of the /queries "recent" ring. It compresses a
// whole lifecycle into the numbers a fleet operator greps for: what plan
// shape ran (Fingerprint), how wrong the optimizer was (QErrorGeomean),
// what it cost (CostUnits, DurationMS), how hard the adaptive machinery
// had to work (Reopts, SpillParts, RFDropped, PeakMemRows) and how it
// ended (Outcome, Error).
type QueryRecord struct {
	ID            uint64  `json:"id"`
	SQL           string  `json:"sql,omitempty"`
	Policy        string  `json:"policy"`
	Fingerprint   string  `json:"fingerprint,omitempty"`
	Outcome       string  `json:"outcome"` // done | failed | rejected
	StartedAt     string  `json:"started_at"`
	DurationMS    float64 `json:"duration_ms"`
	Rows          int     `json:"rows"`
	CostUnits     float64 `json:"cost_units"`
	QErrorGeomean float64 `json:"qerror_geomean,omitempty"`
	PeakMemRows   int     `json:"peak_mem_rows,omitempty"`
	Reopts        int     `json:"reopts,omitempty"`
	SpillParts    int     `json:"spill_partitions,omitempty"`
	SpillRows     int     `json:"spill_rows,omitempty"`
	RFBuilt       int64   `json:"rf_built,omitempty"`
	RFDropped     int64   `json:"rf_dropped,omitempty"`
	Admissions    int     `json:"admissions,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// QuerySink receives one record per completed query. Implementations must
// be safe for concurrent use; the registry calls WriteQuery outside its
// lock, from whichever goroutine finished the query.
type QuerySink interface {
	WriteQuery(rec *QueryRecord)
}

// JSONLSink writes one JSON object per line to an io.Writer — the
// pluggable default sink (file, pipe, test buffer). Marshal errors cannot
// occur for QueryRecord (plain scalars), so WriteQuery is fire-and-forget;
// write errors are retained and readable via Err, never fatal to queries.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink wraps a writer.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// OpenJSONLFile opens (appending, creating) a query-log file sink. The
// returned closer flushes nothing — lines are written whole — it just
// closes the file.
func OpenJSONLFile(path string) (*JSONLSink, io.Closer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return NewJSONLSink(f), f, nil
}

// WriteQuery implements QuerySink.
func (s *JSONLSink) WriteQuery(rec *QueryRecord) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return
	}
	raw = append(raw, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(raw); err != nil {
		s.err = err
	}
}

// Err reports the first write error, if any (the sink stops writing after
// one).
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// FuncSink adapts a function to QuerySink (tests, custom shippers).
type FuncSink func(rec *QueryRecord)

// WriteQuery implements QuerySink.
func (f FuncSink) WriteQuery(rec *QueryRecord) { f(rec) }
