package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {policy classic}).
type Label struct{ K, V string }

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{K: k, V: v} }

// Counter is a monotonically increasing integer metric.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { atomic.AddInt64(&c.v, 1) }

// Add adds n (negative deltas are ignored to keep the counter monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		atomic.AddInt64(&c.v, n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Gauge is a settable float metric.
type Gauge struct{ bits uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { atomic.StoreUint64(&g.bits, math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := atomic.LoadUint64(&g.bits)
		newBits := math.Float64bits(math.Float64frombits(old) + d)
		if atomic.CompareAndSwapUint64(&g.bits, old, newBits) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&g.bits)) }

// Histogram is a fixed-bucket distribution metric. Observations only touch
// atomics, so the hot path takes no locks.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	counts  []int64   // len(bounds)+1
	sum     int64     // scaled by histScale
	n       int64
	dropped int64 // rejected non-finite samples
}

// histScale converts float samples to integer sub-units so _sum can be
// accumulated with a single atomic add. The conversion bounds the usable
// sample domain: |v| must stay below MaxInt64/histScale ≈ 9.2e12, and the
// running sum saturates correctness (wraps) once the *total* crosses the
// same bound. Every sample source in this engine (cost units, q-errors,
// latencies in ms) lives many orders of magnitude below that; Observe
// rejects the one class of input that breaks the invariant instantly —
// non-finite samples, whose int64 conversion is platform-defined and would
// corrupt _sum forever.
const histScale = 1e6

// maxHistSample is the largest magnitude a sample may have before its
// histScale conversion overflows int64.
const maxHistSample = float64(math.MaxInt64) / histScale

// Observe records one sample. NaN and ±Inf samples (and finite samples so
// large their scaled value cannot be represented — see histScale) are
// dropped and counted in Dropped instead of corrupting the running sum.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v > maxHistSample || v < -maxHistSample {
		atomic.AddInt64(&h.dropped, 1)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.sum, int64(v*histScale))
	atomic.AddInt64(&h.n, 1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.n) }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return float64(atomic.LoadInt64(&h.sum)) / histScale }

// Dropped returns how many samples were rejected as non-finite or
// unrepresentable.
func (h *Histogram) Dropped() int64 { return atomic.LoadInt64(&h.dropped) }

// Quantile estimates the q-th quantile (0 < q < 1) of the observed
// distribution by linear interpolation inside the bucket where the
// cumulative count crosses q·n — the standard Prometheus histogram_quantile
// estimate, giving p50/p99/p999 without retaining samples. Samples in the
// overflow (+Inf) bucket clamp to the highest finite bound. Returns NaN
// when the histogram is empty or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	n := atomic.LoadInt64(&h.n)
	if n == 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	rank := q * float64(n)
	cum := int64(0)
	for i, b := range h.bounds {
		c := atomic.LoadInt64(&h.counts[i])
		if float64(cum+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (b-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// Default bucket sets.
var (
	// QErrorBuckets covers multiplicative cardinality errors from exact
	// (q=1) to catastrophic.
	QErrorBuckets = []float64{1, 1.5, 2, 4, 8, 16, 64, 256, 1024}
	// CostBuckets covers per-query simulated cost units.
	CostBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
	// LatencyBuckets covers per-query wall-clock latency in milliseconds,
	// from sub-millisecond point lookups to multi-second analytics — the
	// source of the p50/p99/p999 figures the lifecycle layer reports.
	LatencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
)

// Registry holds an engine's metric families. Lookups take one short
// mutex; increments and observations are atomic.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name    string
	typ     string // "counter" | "gauge" | "histogram"
	buckets []float64
	series  map[string]any // label signature -> *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelSig renders labels canonically: `{a="x",b="y"}` with keys sorted.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.K, l.V)
	}
	sb.WriteByte('}')
	return sb.String()
}

func (r *Registry) metric(name, typ string, buckets []float64, labels []Label, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, buckets: buckets, series: map[string]any{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	sig := labelSig(labels)
	m, ok := f.series[sig]
	if !ok {
		m = mk()
		f.series[sig] = m
	}
	return m
}

// Counter returns (creating on first use) the counter series.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.metric(name, "counter", nil, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) the gauge series.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.metric(name, "gauge", nil, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram series. The
// bucket bounds of the first registration win for the whole family.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	return r.metric(name, "histogram", buckets, labels, func() any {
		r2 := r.families[name]
		return &Histogram{bounds: r2.buckets, counts: make([]int64, len(r2.buckets)+1)}
	}).(*Histogram)
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Expose renders every family in the Prometheus text exposition format,
// sorted by family then label signature, so output is deterministic.
func (r *Registry) Expose() string {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			switch m := f.series[sig].(type) {
			case *Counter:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, sig, m.Value())
			case *Gauge:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, sig, fmtFloat(m.Value()))
			case *Histogram:
				writeHistogram(&sb, f.name, sig, m)
			}
		}
	}
	return sb.String()
}

func writeHistogram(sb *strings.Builder, name, sig string, h *Histogram) {
	// Cumulative bucket counts, per the exposition format.
	base := strings.TrimSuffix(strings.TrimPrefix(sig, "{"), "}")
	bucketSig := func(le string) string {
		if base == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", base, le)
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += atomic.LoadInt64(&h.counts[i])
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, bucketSig(fmtFloat(b)), cum)
	}
	cum += atomic.LoadInt64(&h.counts[len(h.bounds)])
	fmt.Fprintf(sb, "%s_bucket%s %d\n", name, bucketSig("+Inf"), cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, sig, fmtFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, sig, h.Count())
}
