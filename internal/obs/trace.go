package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"rqp/internal/plan"
	"rqp/internal/storage"
)

// QError returns max(est/actual, actual/est) with both floored at one row —
// the multiplicative cardinality-error metric (Moerkotte et al.).
func QError(estimated, actual float64) float64 {
	e := math.Max(estimated, 1)
	a := math.Max(actual, 1)
	if e > a {
		return e / a
	}
	return a / e
}

// Span is one operator's trace record. Cost is inclusive (it contains the
// children's cost, because an operator's Next drives its children); the
// renderer derives self-cost by subtracting the children.
type Span struct {
	mu       sync.Mutex
	label    string
	estRows  float64
	actual   float64 // -1 until finished
	cost     int64   // inclusive cost, in integer clock sub-units
	calls    int64   // Next invocations
	rows     int64   // rows produced so far (atomic; live, unlike actual)
	finished bool
	children []*Span
}

// Label returns the operator label.
func (s *Span) Label() string { return s.label }

// EstRows returns the optimizer's cardinality estimate.
func (s *Span) EstRows() float64 { return s.estRows }

// ActualRows returns the observed output cardinality, or -1 if the operator
// never finished.
func (s *Span) ActualRows() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.finished {
		return -1
	}
	return s.actual
}

// Cost returns inclusive cost units consumed under this span.
func (s *Span) Cost() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return float64(s.cost) / storage.ClockScale
}

// Calls returns the number of Next invocations.
func (s *Span) Calls() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Children returns the child spans (operator-tree order).
func (s *Span) Children() []*Span { return s.children }

// AddCost accrues cost units (called around Open/Next/Close). Accumulation
// happens in the clock's integer sub-unit domain, so attributing the same
// total cost in a different number of installments (row-at-a-time vs. batch)
// yields bit-identical span costs.
func (s *Span) AddCost(units float64) {
	u := int64(math.Round(units * storage.ClockScale))
	s.mu.Lock()
	s.cost += u
	s.mu.Unlock()
}

// AddCall counts one Next invocation.
func (s *Span) AddCall() {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
}

// AddRows counts rows produced so far. Unlike Finish's actual cardinality
// this is advanced while the operator runs, so live introspection can
// derive a progress estimate mid-query. Atomic: morsel workers and poll
// handlers touch it concurrently.
func (s *Span) AddRows(n int64) { atomic.AddInt64(&s.rows, n) }

// RowsSoFar returns the live produced-row count: the final actual
// cardinality once the span finished, the running counter before that.
func (s *Span) RowsSoFar() float64 {
	s.mu.Lock()
	if s.finished {
		a := s.actual
		s.mu.Unlock()
		return a
	}
	s.mu.Unlock()
	return float64(atomic.LoadInt64(&s.rows))
}

// Finish records the observed output cardinality (first call wins).
func (s *Span) Finish(actual float64) {
	s.mu.Lock()
	if !s.finished {
		s.finished = true
		s.actual = actual
	}
	s.mu.Unlock()
}

// QError returns the span's cardinality q-error, or 0 if unfinished.
func (s *Span) QError() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.finished {
		return 0
	}
	return QError(s.estRows, s.actual)
}

// SelfCost returns the span's cost minus its children's.
func (s *Span) SelfCost() float64 {
	c := s.Cost()
	for _, ch := range s.children {
		c -= ch.Cost()
	}
	if c < 0 {
		c = 0
	}
	return c
}

// spanJSON is the exported dump shape.
type spanJSON struct {
	Label      string     `json:"label"`
	EstRows    float64    `json:"est_rows"`
	ActualRows float64    `json:"actual_rows"`
	QError     float64    `json:"qerror,omitempty"`
	Cost       float64    `json:"cost_units"`
	SelfCost   float64    `json:"self_cost_units"`
	Calls      int64      `json:"next_calls"`
	Children   []spanJSON `json:"children,omitempty"`
}

func (s *Span) toJSON() spanJSON {
	j := spanJSON{
		Label:      s.Label(),
		EstRows:    s.EstRows(),
		ActualRows: s.ActualRows(),
		QError:     s.QError(),
		Cost:       s.Cost(),
		SelfCost:   s.SelfCost(),
		Calls:      s.Calls(),
	}
	for _, c := range s.children {
		j.Children = append(j.Children, c.toJSON())
	}
	return j
}

// Event is one engine-level occurrence (re-optimization, plan-cache hit,
// memory grant, admission decision, ...), timestamped in clock cost units.
type Event struct {
	At     float64 `json:"at_units"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail,omitempty"`
}

// Trace collects one query's spans and events.
type Trace struct {
	mu         sync.Mutex
	clock      *storage.Clock
	roots      []*Span
	spans      map[plan.Node]*Span
	events     []Event
	kindCounts map[string]int
	onEvent    func(kind string)
}

// SetOnEvent installs an observer invoked (outside the trace lock) with
// every recorded event kind. The lifecycle registry uses it to flip a
// query's phase to "spilling" the moment the first spill event lands.
func (t *Trace) SetOnEvent(fn func(kind string)) {
	t.mu.Lock()
	t.onEvent = fn
	t.mu.Unlock()
}

// NewTrace returns a trace timestamping events on the given clock (nil is
// allowed; events are then stamped at 0).
func NewTrace(clock *storage.Clock) *Trace {
	return &Trace{clock: clock, spans: map[plan.Node]*Span{}, kindCounts: map[string]int{}}
}

// AddFragment builds a span tree mirroring the plan fragment and registers
// every node. Progressive execution runs several fragments per query; each
// exec.Build call adds one. Re-adding a known root is a no-op.
func (t *Trace) AddFragment(root plan.Node) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.spans[root]; ok {
		return s
	}
	s := t.buildSpan(root)
	t.roots = append(t.roots, s)
	return s
}

func (t *Trace) buildSpan(n plan.Node) *Span {
	s := &Span{label: n.Label(), estRows: n.Props().EstRows, actual: -1}
	for _, c := range n.Children() {
		s.children = append(s.children, t.buildSpan(c))
	}
	t.spans[n] = s
	return s
}

// SpanOf returns the span registered for a plan node, or nil.
func (t *Trace) SpanOf(n plan.Node) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[n]
}

// Roots returns the fragment roots in execution order.
func (t *Trace) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Event records an engine-level event at the current clock time.
func (t *Trace) Event(kind, detail string) {
	at := 0.0
	if t.clock != nil {
		at = t.clock.Units()
	}
	t.mu.Lock()
	t.events = append(t.events, Event{At: at, Kind: kind, Detail: detail})
	t.kindCounts[kind]++
	hook := t.onEvent
	t.mu.Unlock()
	if hook != nil {
		hook(kind)
	}
}

// Events returns a snapshot of the recorded events.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// CountEvents returns how many events of the given kind were recorded.
// O(1): the per-kind counter is maintained as events land, because hot
// summary paths consult counts per query.
func (t *Trace) CountEvents(kind string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kindCounts[kind]
}

// QErrorGeomean returns the geometric mean q-error over all finished spans
// (0 when nothing finished) — the per-query headline number benchmarks track.
func (t *Trace) QErrorGeomean() float64 {
	t.mu.Lock()
	spans := make([]*Span, 0, len(t.spans))
	for _, s := range t.spans {
		spans = append(spans, s)
	}
	t.mu.Unlock()
	logSum, n := 0.0, 0
	for _, s := range spans {
		if q := s.QError(); q > 0 {
			logSum += math.Log(q)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Render formats the trace as an EXPLAIN ANALYZE tree: one line per
// operator with estimated rows, actual rows, q-error and cost, followed by
// the engine-event log. Unexecuted operators show actual=-.
func (t *Trace) Render() string {
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	events := append([]Event(nil), t.events...)
	t.mu.Unlock()

	var sb strings.Builder
	for i, r := range roots {
		if len(roots) > 1 {
			fmt.Fprintf(&sb, "-- fragment %d --\n", i+1)
		}
		renderSpan(&sb, r, 0)
	}
	if len(events) > 0 {
		sb.WriteString("-- events --\n")
		for _, e := range events {
			fmt.Fprintf(&sb, "[%8.2f] %s", e.At, e.Kind)
			if e.Detail != "" {
				sb.WriteByte(' ')
				sb.WriteString(e.Detail)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func renderSpan(sb *strings.Builder, s *Span, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	actual := s.ActualRows()
	if actual >= 0 {
		fmt.Fprintf(sb, "%s (est=%.0f actual=%.0f q=%.2f cost=%.2f self=%.2f)\n",
			s.Label(), s.EstRows(), actual, s.QError(), s.Cost(), s.SelfCost())
	} else {
		fmt.Fprintf(sb, "%s (est=%.0f actual=- cost=%.2f self=%.2f)\n",
			s.Label(), s.EstRows(), s.Cost(), s.SelfCost())
	}
	for _, c := range s.Children() {
		renderSpan(sb, c, depth+1)
	}
}

// traceJSON is the dump shape of a whole trace.
type traceJSON struct {
	Fragments []spanJSON `json:"fragments"`
	Events    []Event    `json:"events,omitempty"`
}

// Progress returns a cheap live progress estimate for the traced query:
// rows produced so far versus the optimizer's estimated rows, summed over
// every span (done, total, fraction in [0,1]). The per-span contribution is
// clamped at the estimate, so cardinality underestimates saturate a span at
// 100% instead of pushing the fraction past one; a query with no estimated
// work reports (0, 0, 0). The done figure advances monotonically while the
// query runs — span row counters only grow.
func (t *Trace) Progress() (done, total, frac float64) {
	t.mu.Lock()
	spans := make([]*Span, 0, len(t.spans))
	for _, s := range t.spans {
		spans = append(spans, s)
	}
	t.mu.Unlock()
	for _, s := range spans {
		est := s.EstRows()
		if est <= 0 {
			continue
		}
		total += est
		done += math.Min(s.RowsSoFar(), est)
	}
	if total > 0 {
		frac = done / total
	}
	return done, total, frac
}

// Fingerprint hashes the span trees' shape (operator labels in preorder
// with structural parentheses) into a stable 16-hex-digit plan fingerprint.
// Two queries whose plans have the same operators in the same tree shape
// share a fingerprint regardless of cardinalities or costs — the grouping
// key the structured query log uses to aggregate by plan. Works for every
// policy, including progressive execution where fragments accumulate.
func (t *Trace) Fingerprint() string {
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	h := fnv.New64a()
	for _, r := range roots {
		fingerprintSpan(h, r)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func fingerprintSpan(h interface{ Write([]byte) (int, error) }, s *Span) {
	h.Write([]byte(s.Label()))
	h.Write([]byte{'('})
	for _, c := range s.Children() {
		fingerprintSpan(h, c)
	}
	h.Write([]byte{')'})
}

// JSON dumps the trace (span trees plus events) as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	events := append([]Event(nil), t.events...)
	t.mu.Unlock()
	d := traceJSON{Events: events}
	for _, r := range roots {
		d.Fragments = append(d.Fragments, r.toJSON())
	}
	return json.MarshalIndent(d, "", "  ")
}
