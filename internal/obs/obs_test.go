package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"rqp/internal/plan"
	"rqp/internal/storage"
)

// fakeNode builds a minimal plan.Node tree for trace tests.
func fakeNode(label string, est float64, kids ...plan.Node) plan.Node {
	n := &plan.FilterNode{}
	n.Title = label
	n.Prop.EstRows = est
	n.Prop.ActualRows = -1
	n.Kids = kids
	return n
}

func TestTraceSpanTree(t *testing.T) {
	clock := storage.NewClock(storage.DefaultCostModel())
	tr := NewTrace(clock)

	leaf := fakeNode("Scan(r)", 100)
	root := fakeNode("Agg", 10, leaf)
	tr.AddFragment(root)

	rs := tr.SpanOf(root)
	ls := tr.SpanOf(leaf)
	if rs == nil || ls == nil {
		t.Fatal("spans not registered for plan nodes")
	}
	if len(rs.Children()) != 1 || rs.Children()[0] != ls {
		t.Fatal("span tree does not mirror plan tree")
	}
	// Re-adding the same fragment must not duplicate roots.
	tr.AddFragment(root)
	if got := len(tr.Roots()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}

	ls.AddCost(2.0)
	ls.Finish(50)
	rs.AddCost(5.0) // inclusive: contains the leaf's 2.0
	rs.Finish(10)

	if q := ls.QError(); q != 2.0 {
		t.Fatalf("leaf q-error = %v, want 2", q)
	}
	if self := rs.SelfCost(); self != 3.0 {
		t.Fatalf("root self cost = %v, want 3", self)
	}

	out := tr.Render()
	for _, want := range []string{"Agg", "Scan(r)", "est=100", "actual=50", "q=2.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}

	geo := tr.QErrorGeomean()
	want := math.Sqrt(2.0 * 1.0)
	if math.Abs(geo-want) > 1e-9 {
		t.Fatalf("qerror geomean = %v, want %v", geo, want)
	}
}

func TestTraceEvents(t *testing.T) {
	clock := storage.NewClock(storage.DefaultCostModel())
	clock.SeqRead(3)
	tr := NewTrace(clock)
	tr.Event("pop.reopt", "step=1")
	tr.Event("pop.check", "est=10 actual=100 violated=true")

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].At != 3.0 {
		t.Fatalf("event timestamp = %v, want 3 (clock units)", evs[0].At)
	}
	if tr.CountEvents("pop.reopt") != 1 {
		t.Fatal("CountEvents mismatch")
	}

	n := fakeNode("Scan(r)", 5)
	tr.AddFragment(n)
	tr.SpanOf(n).Finish(5)
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Fragments []struct {
			Label      string  `json:"label"`
			ActualRows float64 `json:"actual_rows"`
		} `json:"fragments"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("JSON dump not parseable: %v", err)
	}
	if len(dump.Fragments) != 1 || dump.Fragments[0].Label != "Scan(r)" || dump.Fragments[0].ActualRows != 5 {
		t.Fatalf("bad JSON fragments: %+v", dump.Fragments)
	}
	if len(dump.Events) != 2 {
		t.Fatalf("bad JSON events: %+v", dump.Events)
	}
}

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("rqp_queries_total", L("policy", "classic")).Inc()
	r.Counter("rqp_queries_total", L("policy", "classic")).Inc()
	r.Counter("rqp_queries_total", L("policy", "pop")).Inc()
	r.Gauge("rqp_plan_cache_hit_ratio").Set(0.75)

	if v := r.Counter("rqp_queries_total", L("policy", "classic")).Value(); v != 2 {
		t.Fatalf("counter = %d, want 2", v)
	}
	out := r.Expose()
	for _, want := range []string{
		"# TYPE rqp_queries_total counter",
		`rqp_queries_total{policy="classic"} 2`,
		`rqp_queries_total{policy="pop"} 1`,
		"# TYPE rqp_plan_cache_hit_ratio gauge",
		"rqp_plan_cache_hit_ratio 0.75",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rqp_qerror", QErrorBuckets)
	for _, v := range []float64{1, 1.2, 3, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	out := r.Expose()
	for _, want := range []string{
		"# TYPE rqp_qerror histogram",
		`rqp_qerror_bucket{le="1"} 1`,
		`rqp_qerror_bucket{le="2"} 2`,
		`rqp_qerror_bucket{le="4"} 3`,
		`rqp_qerror_bucket{le="+Inf"} 5`,
		"rqp_qerror_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentSafety(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c", L("w", "x")).Inc()
				r.Histogram("h", CostBuckets).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c", L("w", "x")).Value(); v != 4000 {
		t.Fatalf("counter = %d, want 4000", v)
	}
	if n := r.Histogram("h", CostBuckets).Count(); n != 4000 {
		t.Fatalf("histogram count = %d, want 4000", n)
	}
}

func TestHistogramRejectsNonFinite(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", CostBuckets)
	h.Observe(10)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), maxHistSample * 2, -maxHistSample * 2} {
		h.Observe(bad)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1 (bad samples must not be counted)", h.Count())
	}
	if h.Sum() != 10 {
		t.Fatalf("sum = %v, want 10 (a NaN/Inf sample would corrupt it forever)", h.Sum())
	}
	if h.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", h.Dropped())
	}
	// A finite value near the bound still lands.
	h.Observe(maxHistSample / 2)
	if h.Count() != 2 {
		t.Fatalf("large finite sample rejected: count = %d", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LatencyBuckets)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	// 100 samples uniform in (0, 100]: p50 ≈ 50, p99 ≈ 99.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if p50 := h.Quantile(0.5); p50 < 25 || p50 > 75 {
		t.Fatalf("p50 = %v, want ≈50", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 75 || p99 > 100 {
		t.Fatalf("p99 = %v, want ≈99", p99)
	}
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p99 < p50 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Fatal("out-of-range q must be NaN")
	}
	// Overflow samples clamp to the highest finite bound.
	h2 := r.Histogram("of", []float64{1, 2})
	h2.Observe(1000)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", got)
	}
}

func TestCountEventsIsCheapAndExact(t *testing.T) {
	clock := storage.NewClock(storage.DefaultCostModel())
	tr := NewTrace(clock)
	for i := 0; i < 1000; i++ {
		tr.Event("spill.partition", "")
	}
	tr.Event("pop.reopt", "")
	// CountEvents is now a counter lookup, not an O(events) scan; the
	// counters must stay exact under the maintenance in Event.
	if got := tr.CountEvents("spill.partition"); got != 1000 {
		t.Fatalf("CountEvents = %d, want 1000", got)
	}
	if got := tr.CountEvents("pop.reopt"); got != 1 {
		t.Fatalf("CountEvents = %d, want 1", got)
	}
	if got := tr.CountEvents("never.seen"); got != 0 {
		t.Fatalf("CountEvents = %d, want 0", got)
	}
}
