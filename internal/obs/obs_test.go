package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"rqp/internal/plan"
	"rqp/internal/storage"
)

// fakeNode builds a minimal plan.Node tree for trace tests.
func fakeNode(label string, est float64, kids ...plan.Node) plan.Node {
	n := &plan.FilterNode{}
	n.Title = label
	n.Prop.EstRows = est
	n.Prop.ActualRows = -1
	n.Kids = kids
	return n
}

func TestTraceSpanTree(t *testing.T) {
	clock := storage.NewClock(storage.DefaultCostModel())
	tr := NewTrace(clock)

	leaf := fakeNode("Scan(r)", 100)
	root := fakeNode("Agg", 10, leaf)
	tr.AddFragment(root)

	rs := tr.SpanOf(root)
	ls := tr.SpanOf(leaf)
	if rs == nil || ls == nil {
		t.Fatal("spans not registered for plan nodes")
	}
	if len(rs.Children()) != 1 || rs.Children()[0] != ls {
		t.Fatal("span tree does not mirror plan tree")
	}
	// Re-adding the same fragment must not duplicate roots.
	tr.AddFragment(root)
	if got := len(tr.Roots()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}

	ls.AddCost(2.0)
	ls.Finish(50)
	rs.AddCost(5.0) // inclusive: contains the leaf's 2.0
	rs.Finish(10)

	if q := ls.QError(); q != 2.0 {
		t.Fatalf("leaf q-error = %v, want 2", q)
	}
	if self := rs.SelfCost(); self != 3.0 {
		t.Fatalf("root self cost = %v, want 3", self)
	}

	out := tr.Render()
	for _, want := range []string{"Agg", "Scan(r)", "est=100", "actual=50", "q=2.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}

	geo := tr.QErrorGeomean()
	want := math.Sqrt(2.0 * 1.0)
	if math.Abs(geo-want) > 1e-9 {
		t.Fatalf("qerror geomean = %v, want %v", geo, want)
	}
}

func TestTraceEvents(t *testing.T) {
	clock := storage.NewClock(storage.DefaultCostModel())
	clock.SeqRead(3)
	tr := NewTrace(clock)
	tr.Event("pop.reopt", "step=1")
	tr.Event("pop.check", "est=10 actual=100 violated=true")

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].At != 3.0 {
		t.Fatalf("event timestamp = %v, want 3 (clock units)", evs[0].At)
	}
	if tr.CountEvents("pop.reopt") != 1 {
		t.Fatal("CountEvents mismatch")
	}

	n := fakeNode("Scan(r)", 5)
	tr.AddFragment(n)
	tr.SpanOf(n).Finish(5)
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Fragments []struct {
			Label      string  `json:"label"`
			ActualRows float64 `json:"actual_rows"`
		} `json:"fragments"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("JSON dump not parseable: %v", err)
	}
	if len(dump.Fragments) != 1 || dump.Fragments[0].Label != "Scan(r)" || dump.Fragments[0].ActualRows != 5 {
		t.Fatalf("bad JSON fragments: %+v", dump.Fragments)
	}
	if len(dump.Events) != 2 {
		t.Fatalf("bad JSON events: %+v", dump.Events)
	}
}

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("rqp_queries_total", L("policy", "classic")).Inc()
	r.Counter("rqp_queries_total", L("policy", "classic")).Inc()
	r.Counter("rqp_queries_total", L("policy", "pop")).Inc()
	r.Gauge("rqp_plan_cache_hit_ratio").Set(0.75)

	if v := r.Counter("rqp_queries_total", L("policy", "classic")).Value(); v != 2 {
		t.Fatalf("counter = %d, want 2", v)
	}
	out := r.Expose()
	for _, want := range []string{
		"# TYPE rqp_queries_total counter",
		`rqp_queries_total{policy="classic"} 2`,
		`rqp_queries_total{policy="pop"} 1`,
		"# TYPE rqp_plan_cache_hit_ratio gauge",
		"rqp_plan_cache_hit_ratio 0.75",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rqp_qerror", QErrorBuckets)
	for _, v := range []float64{1, 1.2, 3, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	out := r.Expose()
	for _, want := range []string{
		"# TYPE rqp_qerror histogram",
		`rqp_qerror_bucket{le="1"} 1`,
		`rqp_qerror_bucket{le="2"} 2`,
		`rqp_qerror_bucket{le="4"} 3`,
		`rqp_qerror_bucket{le="+Inf"} 5`,
		"rqp_qerror_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentSafety(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c", L("w", "x")).Inc()
				r.Histogram("h", CostBuckets).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c", L("w", "x")).Value(); v != 4000 {
		t.Fatalf("counter = %d, want 4000", v)
	}
	if n := r.Histogram("h", CostBuckets).Count(); n != 4000 {
		t.Fatalf("histogram count = %d, want 4000", n)
	}
}
