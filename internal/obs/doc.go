// Package obs is the engine's observability layer: per-query span traces
// that mirror the operator tree (estimated vs. actual cardinality, q-error,
// simulated cost consumed), engine-level events, and a lock-cheap metrics
// registry with a Prometheus-style text exposition.
//
// Traces carry two complementary signals. Spans attribute simulated cost
// and actual cardinality to individual operators — the estimated-vs-actual
// signal every robustness experiment reads. Events record engine-level
// happenings in query order: POP re-optimizations, Rio plan choices,
// plan-cache hits, admission decisions (wlm.*), memory grants and releases
// (mem.*), and graceful-degradation activity (spill.* — partitions spilled,
// recursion depth, sort-merge fallbacks), all rendered by EXPLAIN ANALYZE.
//
// The Dagstuhl report's position is that robustness must be measured, not
// assumed — this package is where the measurements live.
package obs
