package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJSONLSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	sink, closer, err := OpenJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewQueryRegistry(4, nil)
	reg.SetSink(sink)
	reg.Finish(reg.Begin("SELECT a FROM r", "classic"), FinishStats{
		Rows: 5, CostUnits: 42.5, SpillParts: 3, SpillRows: 120, Reopts: 1,
	})
	reg.Finish(reg.Begin("SELECT b FROM s", "pop"), FinishStats{Rows: 1})
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []QueryRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line not JSON: %v\n%s", err, sc.Text())
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("log holds %d records, want 2", len(recs))
	}
	if recs[0].SQL != "SELECT a FROM r" || recs[0].CostUnits != 42.5 ||
		recs[0].SpillParts != 3 || recs[0].Outcome != "done" {
		t.Fatalf("first record = %+v", recs[0])
	}
	if recs[1].Policy != "pop" {
		t.Fatalf("second record = %+v", recs[1])
	}
}

func TestJSONLFieldNames(t *testing.T) {
	// The JSONL schema is the query log's public contract; assert the
	// field names external consumers grep for.
	rec := QueryRecord{ID: 1, Fingerprint: "deadbeef", SpillParts: 2, QErrorGeomean: 1.5}
	raw, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"id", "fingerprint", "spill_partitions", "qerror_geomean", "outcome", "cost_units", "duration_ms"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("serialized record missing %q: %s", key, raw)
		}
	}
}
