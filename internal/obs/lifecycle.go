package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is one station of a query's lifecycle. Phases move strictly
// forward: Queued → Admitted → Running → (Spilling) → one of the terminal
// outcomes. Spilling is a sub-state of Running entered when the first
// spill event lands, so an operator console can tell "slow because big"
// from "slow because degrading gracefully".
type Phase int32

// Lifecycle phases.
const (
	PhaseQueued Phase = iota
	PhaseAdmitted
	PhaseRunning
	PhaseSpilling
	PhaseDone
	PhaseFailed
	PhaseRejected
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseQueued:
		return "queued"
	case PhaseAdmitted:
		return "admitted"
	case PhaseRunning:
		return "running"
	case PhaseSpilling:
		return "spilling"
	case PhaseDone:
		return "done"
	case PhaseFailed:
		return "failed"
	case PhaseRejected:
		return "rejected"
	}
	return "?"
}

// Terminal reports whether the phase is an outcome.
func (p Phase) Terminal() bool { return p >= PhaseDone }

// QueryState is one in-flight query's mutable lifecycle record. The engine
// writes phase transitions; poll handlers read concurrently, so the phase
// is an atomic and everything else is immutable after Begin/AttachTrace.
type QueryState struct {
	id     uint64
	sql    string
	policy string
	start  time.Time
	phase  int32 // atomic Phase
	trace  atomic.Pointer[Trace]
	fp     atomic.Pointer[string]
	reg    *QueryRegistry
}

// ID returns the query's registry-unique identifier.
func (q *QueryState) ID() uint64 { return q.id }

// Phase returns the current lifecycle phase.
func (q *QueryState) Phase() Phase { return Phase(atomic.LoadInt32(&q.phase)) }

// SetPhase advances the lifecycle phase. Transitions only move forward;
// attempts to move backwards (e.g. a late "running" after "spilling") are
// ignored, which keeps concurrent writers safe without coordination.
func (q *QueryState) SetPhase(p Phase) {
	for {
		old := atomic.LoadInt32(&q.phase)
		if int32(p) <= old {
			return
		}
		if atomic.CompareAndSwapInt32(&q.phase, old, int32(p)) {
			return
		}
	}
}

// AttachTrace links the query's span-tree trace, enabling the live
// progress estimate and /trace/{id}, and hooks trace events so the first
// spill event flips the phase to Spilling.
func (q *QueryState) AttachTrace(t *Trace) {
	if t == nil {
		return
	}
	q.trace.Store(t)
	t.SetOnEvent(func(kind string) {
		if strings.HasPrefix(kind, "spill.") {
			q.SetPhase(PhaseSpilling)
		}
	})
}

// SetFingerprint records the plan fingerprint once known (optimizer paths
// that hold the physical root call this; traced queries fall back to the
// span-tree fingerprint at finish time).
func (q *QueryState) SetFingerprint(fp string) {
	if fp != "" {
		q.fp.Store(&fp)
	}
}

// Trace returns the attached trace, or nil.
func (q *QueryState) Trace() *Trace { return q.trace.Load() }

// ActiveQuery is the poll-time snapshot of one in-flight query, the unit
// of the /queries "active" list.
type ActiveQuery struct {
	ID        uint64  `json:"id"`
	SQL       string  `json:"sql,omitempty"`
	Policy    string  `json:"policy"`
	Phase     string  `json:"phase"`
	StartedAt string  `json:"started_at"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Progress is the cheap estimate actual-so-far/estimated rows over the
	// span tree, in [0,1]; -1 when the query runs untraced and no estimate
	// exists. DoneRows/EstRows expose the raw numerator and denominator.
	Progress float64 `json:"progress"`
	DoneRows float64 `json:"done_rows,omitempty"`
	EstRows  float64 `json:"est_rows,omitempty"`
}

// FinishStats carries everything the engine knows about a completed query
// into the registry: the raw material of one QueryRecord.
type FinishStats struct {
	Err         error
	Rows        int
	CostUnits   float64
	Reopts      int
	PeakMemRows int
	SpillParts  int
	SpillRows   int
	RFBuilt     int64
	RFDropped   int64
	Admissions  int
}

// QueryRegistry is the engine's live query table: every top-level query
// gets an ID and a QueryState at entry, moves through lifecycle phases,
// and lands in a fixed-size ring of recently completed QueryRecords on the
// way out — the flight recorder the /queries endpoint and the structured
// query log read from.
type QueryRegistry struct {
	nextID  uint64 // atomic
	mu      sync.Mutex
	active  map[uint64]*QueryState
	ring    []completed // fixed capacity, oldest overwritten
	ringPos int
	sink    QuerySink
	metrics *Registry
	now     func() time.Time
}

type completed struct {
	rec   QueryRecord
	trace *Trace
}

// NewQueryRegistry returns a registry keeping the last ringSize completed
// queries (minimum 1). The metrics registry, when non-nil, receives the
// per-query latency histogram (rqp_query_latency_ms) and the live/peak
// active-query gauges every transition maintains.
func NewQueryRegistry(ringSize int, metrics *Registry) *QueryRegistry {
	if ringSize < 1 {
		ringSize = 1
	}
	return &QueryRegistry{
		active:  make(map[uint64]*QueryState),
		ring:    make([]completed, 0, ringSize),
		metrics: metrics,
		now:     time.Now,
	}
}

// SetSink installs the structured query log sink receiving one QueryRecord
// per completed query. A nil sink disables logging.
func (r *QueryRegistry) SetSink(s QuerySink) {
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// SetNow overrides the wall clock (tests).
func (r *QueryRegistry) SetNow(now func() time.Time) { r.now = now }

// Begin registers a query entering the engine and returns its lifecycle
// record in phase Queued. SQL text is truncated to keep snapshots cheap.
func (r *QueryRegistry) Begin(sql, policy string) *QueryState {
	const maxSQL = 512
	if len(sql) > maxSQL {
		sql = sql[:maxSQL] + "…"
	}
	q := &QueryState{
		id:     atomic.AddUint64(&r.nextID, 1),
		sql:    sql,
		policy: policy,
		start:  r.now(),
		reg:    r,
	}
	r.mu.Lock()
	r.active[q.id] = q
	n := len(r.active)
	r.mu.Unlock()
	if r.metrics != nil {
		g := r.metrics.Gauge("rqp_queries_active")
		g.Set(float64(n))
	}
	return q
}

// Finish retires a query: derives the terminal phase (Rejected sticks if
// already set, otherwise Failed on error, Done on success), snapshots the
// lifecycle into a QueryRecord, pushes it onto the completed ring and hands
// it to the query-log sink. Idempotence is the caller's job — the engine
// finishes each query exactly once on its single exit path.
func (r *QueryRegistry) Finish(q *QueryState, st FinishStats) *QueryRecord {
	if q == nil {
		return nil
	}
	switch {
	case q.Phase() == PhaseRejected:
		// terminal already
	case st.Err != nil:
		q.SetPhase(PhaseFailed)
	default:
		q.SetPhase(PhaseDone)
	}
	end := r.now()
	rec := QueryRecord{
		ID:          q.id,
		SQL:         q.sql,
		Policy:      q.policy,
		Outcome:     q.Phase().String(),
		StartedAt:   q.start.UTC().Format(time.RFC3339Nano),
		DurationMS:  float64(end.Sub(q.start).Microseconds()) / 1000,
		Rows:        st.Rows,
		CostUnits:   st.CostUnits,
		Reopts:      st.Reopts,
		PeakMemRows: st.PeakMemRows,
		SpillParts:  st.SpillParts,
		SpillRows:   st.SpillRows,
		RFBuilt:     st.RFBuilt,
		RFDropped:   st.RFDropped,
		Admissions:  st.Admissions,
	}
	if st.Err != nil {
		rec.Error = st.Err.Error()
	}
	tr := q.Trace()
	if fp := q.fp.Load(); fp != nil {
		rec.Fingerprint = *fp
	} else if tr != nil {
		rec.Fingerprint = tr.Fingerprint()
	}
	if tr != nil {
		rec.QErrorGeomean = tr.QErrorGeomean()
	}

	r.mu.Lock()
	delete(r.active, q.id)
	n := len(r.active)
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, completed{rec: rec, trace: tr})
	} else {
		r.ring[r.ringPos] = completed{rec: rec, trace: tr}
		r.ringPos = (r.ringPos + 1) % cap(r.ring)
	}
	sink := r.sink
	r.mu.Unlock()

	if r.metrics != nil {
		r.metrics.Gauge("rqp_queries_active").Set(float64(n))
		r.metrics.Histogram("rqp_query_latency_ms", LatencyBuckets).Observe(rec.DurationMS)
		r.metrics.Counter("rqp_queries_finished_total", L("outcome", rec.Outcome)).Inc()
	}
	if sink != nil {
		sink.WriteQuery(&rec)
	}
	return &rec
}

// Active snapshots the in-flight queries, ordered by ID (admission order).
func (r *QueryRegistry) Active() []ActiveQuery {
	now := r.now()
	r.mu.Lock()
	states := make([]*QueryState, 0, len(r.active))
	for _, q := range r.active {
		states = append(states, q)
	}
	r.mu.Unlock()
	out := make([]ActiveQuery, 0, len(states))
	for _, q := range states {
		aq := ActiveQuery{
			ID:        q.id,
			SQL:       q.sql,
			Policy:    q.policy,
			Phase:     q.Phase().String(),
			StartedAt: q.start.UTC().Format(time.RFC3339Nano),
			ElapsedMS: float64(now.Sub(q.start).Microseconds()) / 1000,
			Progress:  -1,
		}
		if t := q.Trace(); t != nil {
			done, total, frac := t.Progress()
			if total > 0 {
				aq.Progress, aq.DoneRows, aq.EstRows = frac, done, total
			}
		}
		out = append(out, aq)
	}
	sortActive(out)
	return out
}

func sortActive(qs []ActiveQuery) {
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0 && qs[j].ID < qs[j-1].ID; j-- {
			qs[j], qs[j-1] = qs[j-1], qs[j]
		}
	}
}

// Recent returns the completed-query ring, most recent first.
func (r *QueryRegistry) Recent() []QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryRecord, 0, len(r.ring))
	// The ring fills at the append edge first, then wraps at ringPos;
	// walking backwards from the write position yields newest-first.
	n := len(r.ring)
	start := r.ringPos
	if n < cap(r.ring) {
		start = n
	}
	for i := 0; i < n; i++ {
		idx := (start - 1 - i + n) % n
		out = append(out, r.ring[idx].rec)
	}
	return out
}

// TraceOf returns the trace for an active or recently completed query ID,
// or nil when the ID is unknown or the query ran untraced.
func (r *QueryRegistry) TraceOf(id uint64) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if q, ok := r.active[id]; ok {
		return q.Trace()
	}
	for i := range r.ring {
		if r.ring[i].rec.ID == id {
			return r.ring[i].trace
		}
	}
	return nil
}
