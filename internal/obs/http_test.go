package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rqp/internal/storage"
)

func get(t *testing.T, mux http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w.Code, w.Body.String()
}

func TestDebugMuxMetrics(t *testing.T) {
	m := NewRegistry()
	m.Counter("rqp_queries_total", L("policy", "classic")).Inc()
	mux := NewDebugMux(m, NewQueryRegistry(4, m))

	code, body := get(t, mux, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, `rqp_queries_total{policy="classic"} 1`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
}

func TestDebugMuxQueries(t *testing.T) {
	m := NewRegistry()
	qr := NewQueryRegistry(4, m)
	mux := NewDebugMux(m, qr)

	live := qr.Begin("SELECT live", "pop")
	live.SetPhase(PhaseRunning)
	qr.Finish(qr.Begin("SELECT gone", "classic"), FinishStats{Rows: 2})

	code, body := get(t, mux, "/queries")
	if code != http.StatusOK {
		t.Fatalf("/queries status = %d", code)
	}
	var resp struct {
		Active []ActiveQuery `json:"active"`
		Recent []QueryRecord `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/queries not JSON: %v\n%s", err, body)
	}
	if len(resp.Active) != 1 || resp.Active[0].SQL != "SELECT live" || resp.Active[0].Phase != "running" {
		t.Fatalf("active = %+v", resp.Active)
	}
	if len(resp.Recent) != 1 || resp.Recent[0].SQL != "SELECT gone" || resp.Recent[0].Outcome != "done" {
		t.Fatalf("recent = %+v", resp.Recent)
	}
	qr.Finish(live, FinishStats{})
}

func TestDebugMuxTrace(t *testing.T) {
	m := NewRegistry()
	qr := NewQueryRegistry(4, m)
	mux := NewDebugMux(m, qr)

	clock := storage.NewClock(storage.DefaultCostModel())
	tr := NewTrace(clock)
	n := fakeNode("Scan(r)", 10)
	tr.AddFragment(n)
	tr.SpanOf(n).Finish(10)
	q := qr.Begin("SELECT traced", "classic")
	q.AttachTrace(tr)

	code, body := get(t, mux, "/trace/1")
	if code != http.StatusOK {
		t.Fatalf("/trace/1 status = %d: %s", code, body)
	}
	if !strings.Contains(body, "Scan(r)") {
		t.Fatalf("/trace/1 missing span:\n%s", body)
	}
	if code, _ := get(t, mux, "/trace/999"); code != http.StatusNotFound {
		t.Fatalf("/trace/999 status = %d, want 404", code)
	}
	if code, _ := get(t, mux, "/trace/bogus"); code != http.StatusBadRequest {
		t.Fatalf("/trace/bogus status = %d, want 400", code)
	}
	qr.Finish(q, FinishStats{})
}

func TestDebugMuxNilRegistries(t *testing.T) {
	mux := NewDebugMux(nil, nil)
	for _, path := range []string{"/metrics", "/queries", "/trace/1"} {
		if code, _ := get(t, mux, path); code != http.StatusNotFound {
			t.Fatalf("%s with nil registries: status %d, want 404", path, code)
		}
	}
}

func TestStartDebugServer(t *testing.T) {
	m := NewRegistry()
	m.Counter("rqp_up").Inc()
	srv, err := StartDebugServer("127.0.0.1:0", m, NewQueryRegistry(4, m))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(srv.Addr, ":") || strings.HasSuffix(srv.Addr, ":0") {
		t.Fatalf("unresolved listen address %q", srv.Addr)
	}
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "rqp_up 1") {
		t.Fatalf("served metrics = %d:\n%s", resp.StatusCode, body)
	}
	// pprof is mounted.
	resp2, err := http.Get("http://" + srv.Addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp2.StatusCode)
	}
}
