package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rqp/internal/storage"
	"rqp/internal/types"
)

func key1(v int64) []types.Value { return []types.Value{types.Int(v)} }

func collect(t *BTree, lo, hi Bound) []int64 {
	var out []int64
	t.Scan(nil, lo, hi, func(e Entry) bool {
		out = append(out, e.Key[0].I)
		return true
	})
	return out
}

func TestInsertAndFullScanSorted(t *testing.T) {
	tr := New(1)
	rng := rand.New(rand.NewSource(7))
	vals := rng.Perm(5000)
	for i, v := range vals {
		tr.Insert(key1(int64(v)), storage.RID(i))
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := collect(tr, Bound{}, Bound{})
	if len(got) != 5000 {
		t.Fatalf("scan returned %d", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("scan out of order at %d: %d", i, v)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Errorf("5000 entries should split the root: height=%d", tr.Height())
	}
}

func TestDuplicateKeysDistinctRIDs(t *testing.T) {
	tr := New(1)
	for i := 0; i < 100; i++ {
		tr.Insert(key1(7), storage.RID(i))
	}
	tr.Insert(key1(7), storage.RID(50)) // exact duplicate ignored
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	n := 0
	tr.Lookup(nil, key1(7), func(Entry) bool { n++; return true })
	if n != 100 {
		t.Errorf("Lookup found %d", n)
	}
}

func TestRangeScans(t *testing.T) {
	tr := New(1)
	for i := 0; i < 100; i++ {
		tr.Insert(key1(int64(i*2)), storage.RID(i)) // evens 0..198
	}
	cases := []struct {
		lo, hi    Bound
		wantFirst int64
		wantLast  int64
		wantCount int
	}{
		{Bound{Key: key1(10), Incl: true, Set: true}, Bound{Key: key1(20), Incl: true, Set: true}, 10, 20, 6},
		{Bound{Key: key1(10), Incl: false, Set: true}, Bound{Key: key1(20), Incl: false, Set: true}, 12, 18, 4},
		{Bound{Key: key1(9), Incl: true, Set: true}, Bound{Key: key1(21), Incl: true, Set: true}, 10, 20, 6},
		{Bound{}, Bound{Key: key1(4), Incl: true, Set: true}, 0, 4, 3},
		{Bound{Key: key1(194), Incl: true, Set: true}, Bound{}, 194, 198, 3},
	}
	for i, c := range cases {
		got := collect(tr, c.lo, c.hi)
		if len(got) != c.wantCount || got[0] != c.wantFirst || got[len(got)-1] != c.wantLast {
			t.Errorf("case %d: got %v", i, got)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New(1)
	for i := 0; i < 1000; i++ {
		tr.Insert(key1(int64(i)), storage.RID(i))
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete(key1(int64(i)), storage.RID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(key1(0), storage.RID(0)) {
		t.Error("double delete should fail")
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := collect(tr, Bound{}, Bound{})
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("deleted key %d still present", v)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeKeysAndPrefixScan(t *testing.T) {
	tr := New(2)
	// (a, b) for a in 0..9, b in 0..9
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			tr.Insert([]types.Value{types.Int(a), types.Int(b)}, storage.RID(a*10+b))
		}
	}
	// Prefix scan: a = 4 via short bound key.
	var got []int64
	pref := []types.Value{types.Int(4)}
	tr.Scan(nil, Bound{Key: pref, Incl: true, Set: true}, Bound{Key: pref, Incl: true, Set: true}, func(e Entry) bool {
		got = append(got, e.Key[1].I)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("prefix scan found %d entries: %v", len(got), got)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("prefix scan should return b in order")
	}
	// Full composite range: (3,5) <= key <= (4,2)
	var cnt int
	tr.Scan(nil,
		Bound{Key: []types.Value{types.Int(3), types.Int(5)}, Incl: true, Set: true},
		Bound{Key: []types.Value{types.Int(4), types.Int(2)}, Incl: true, Set: true},
		func(e Entry) bool { cnt++; return true })
	if cnt != 8 { // (3,5)..(3,9) = 5, (4,0)..(4,2) = 3
		t.Errorf("composite range found %d, want 8", cnt)
	}
}

func TestScanChargesClock(t *testing.T) {
	tr := New(1)
	for i := 0; i < 10000; i++ {
		tr.Insert(key1(int64(i)), storage.RID(i))
	}
	clk := storage.NewClock(storage.DefaultCostModel())
	tr.Lookup(clk, key1(5000), func(Entry) bool { return true })
	_, r, _, _ := clk.Counters()
	if int(r) != tr.Height() {
		t.Errorf("lookup charged %d random reads, want height %d", r, tr.Height())
	}
}

// Property test: for random insert sets, scan equals the sorted input.
func TestPropertyScanMatchesSortedInsert(t *testing.T) {
	f := func(xs []int16) bool {
		tr := New(1)
		seen := map[int16]bool{}
		var uniq []int64
		for _, x := range xs {
			if !seen[x] {
				seen[x] = true
				uniq = append(uniq, int64(x))
			}
			tr.Insert(key1(int64(x)), storage.RID(x))
		}
		sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
		got := collect(tr, Bound{}, Bound{})
		if len(got) != len(uniq) {
			return false
		}
		for i := range got {
			if got[i] != uniq[i] {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property test: range scan equals filter over full scan.
func TestPropertyRangeScanEqualsFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New(1)
	var all []int64
	for i := 0; i < 2000; i++ {
		v := rng.Int63n(500)
		tr.Insert(key1(v), storage.RID(i))
		all = append(all, v)
	}
	for trial := 0; trial < 100; trial++ {
		lo := rng.Int63n(500)
		hi := lo + rng.Int63n(100)
		loIncl, hiIncl := rng.Intn(2) == 0, rng.Intn(2) == 0
		want := 0
		for _, v := range all {
			okLo := v > lo || (loIncl && v == lo)
			okHi := v < hi || (hiIncl && v == hi)
			if okLo && okHi {
				want++
			}
		}
		got := 0
		tr.Scan(nil,
			Bound{Key: key1(lo), Incl: loIncl, Set: true},
			Bound{Key: key1(hi), Incl: hiIncl, Set: true},
			func(Entry) bool { got++; return true })
		if got != want {
			t.Fatalf("range [%d,%d] incl(%v,%v): got %d want %d", lo, hi, loIncl, hiIncl, got, want)
		}
	}
}
