package index

import (
	"math/rand"
	"sort"
	"testing"

	"rqp/internal/storage"
	"rqp/internal/types"
)

// TestPropertyInterleavedInsertDelete runs random interleaved inserts and
// deletes against a map-based model, checking contents and structural
// invariants along the way.
func TestPropertyInterleavedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := New(1)
	model := map[int64]map[storage.RID]bool{} // key -> set of rids

	insert := func(k int64, rid storage.RID) {
		tr.Insert(key1(k), rid)
		if model[k] == nil {
			model[k] = map[storage.RID]bool{}
		}
		model[k][rid] = true
	}
	remove := func(k int64, rid storage.RID) {
		got := tr.Delete(key1(k), rid)
		want := model[k][rid]
		if got != want {
			t.Fatalf("Delete(%d,%d) = %v, model says %v", k, rid, got, want)
		}
		delete(model[k], rid)
	}

	nextRID := storage.RID(0)
	live := [][2]int64{} // (key, rid) pairs believed present
	for op := 0; op < 20000; op++ {
		switch {
		case len(live) == 0 || rng.Intn(3) > 0: // insert-biased
			k := rng.Int63n(500)
			rid := nextRID
			nextRID++
			insert(k, rid)
			live = append(live, [2]int64{k, int64(rid)})
		default:
			i := rng.Intn(len(live))
			pair := live[i]
			live = append(live[:i], live[i+1:]...)
			remove(pair[0], storage.RID(pair[1]))
		}
		if op%4000 == 3999 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	// Final full comparison.
	wantTotal := 0
	for _, rids := range model {
		wantTotal += len(rids)
	}
	if tr.Len() != wantTotal {
		t.Fatalf("Len = %d, model %d", tr.Len(), wantTotal)
	}
	var keys []int64
	tr.Scan(nil, Bound{}, Bound{}, func(e Entry) bool {
		keys = append(keys, e.Key[0].I)
		if !model[e.Key[0].I][e.RID] {
			t.Fatalf("tree holds (%d,%d) not in model", e.Key[0].I, e.RID)
		}
		return true
	})
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("final scan not sorted")
	}
}

// TestNullKeysSortFirst pins the NULL ordering contract index scans rely on.
func TestNullKeysSortFirst(t *testing.T) {
	tr := New(1)
	tr.Insert([]types.Value{types.Int(5)}, 1)
	tr.Insert([]types.Value{types.Null()}, 2)
	tr.Insert([]types.Value{types.Int(-5)}, 3)
	var order []storage.RID
	tr.Scan(nil, Bound{}, Bound{}, func(e Entry) bool {
		order = append(order, e.RID)
		return true
	})
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 1 {
		t.Errorf("NULL should sort first: %v", order)
	}
}
