// Package index implements a B+ tree over composite keys, the ordered access
// method used for index scans, index nested-loop joins and the physical
// design experiments. Non-unique keys are supported by tie-breaking on RID,
// so every stored entry is unique internally.
package index

import (
	"fmt"

	"rqp/internal/storage"
	"rqp/internal/types"
)

const (
	maxLeaf   = 64 // max entries per leaf
	maxInner  = 64 // max keys per inner node
	minFill   = maxLeaf / 2
	innerFill = maxInner / 2
)

// Entry is one indexed tuple reference.
type Entry struct {
	Key []types.Value
	RID storage.RID
}

func compareKeys(a, b []types.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	// A shorter key is a prefix and sorts first; prefix searches exploit this.
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func compareEntries(a, b Entry) int {
	if c := compareKeys(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.RID < b.RID:
		return -1
	case a.RID > b.RID:
		return 1
	}
	return 0
}

type node struct {
	leaf     bool
	entries  []Entry // leaf payload
	keys     []Entry // inner separators: children[i] holds entries < keys[i]
	children []*node
	next     *node // leaf chain
}

// BTree is the tree handle.
type BTree struct {
	root    *node
	size    int
	numCols int
	height  int
}

// New returns an empty B+ tree over keys with the given column count.
func New(numCols int) *BTree {
	return &BTree{root: &node{leaf: true}, numCols: numCols, height: 1}
}

// Len returns the number of stored entries.
func (t *BTree) Len() int { return t.size }

// Height returns the tree height (1 = just a leaf root).
func (t *BTree) Height() int { return t.height }

// NumCols returns the key column count.
func (t *BTree) NumCols() int { return t.numCols }

// Insert adds an entry. Duplicate (key, rid) pairs are ignored.
func (t *BTree) Insert(key []types.Value, rid storage.RID) {
	e := Entry{Key: key, RID: rid}
	nw, sep := t.insert(t.root, e)
	if nw != nil {
		t.root = &node{
			keys:     []Entry{sep},
			children: []*node{t.root, nw},
		}
		t.height++
	}
}

// insert descends and returns a new right sibling and separator if the child
// split.
func (t *BTree) insert(n *node, e Entry) (*node, Entry) {
	if n.leaf {
		i := lowerBoundEntries(n.entries, e)
		if i < len(n.entries) && compareEntries(n.entries[i], e) == 0 {
			return nil, Entry{} // duplicate
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		t.size++
		if len(n.entries) <= maxLeaf {
			return nil, Entry{}
		}
		mid := len(n.entries) / 2
		right := &node{leaf: true, next: n.next}
		right.entries = append(right.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid]
		n.next = right
		return right, right.entries[0]
	}
	ci := t.childIndex(n, e)
	nw, sep := t.insert(n.children[ci], e)
	if nw == nil {
		return nil, Entry{}
	}
	n.keys = append(n.keys, Entry{})
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = nw
	if len(n.keys) <= maxInner {
		return nil, Entry{}
	}
	mid := len(n.keys) / 2
	upSep := n.keys[mid]
	right := &node{}
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, upSep
}

func (t *BTree) childIndex(n *node, e Entry) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntries(n.keys[mid], e) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func lowerBoundEntries(es []Entry, e Entry) int {
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntries(es[mid], e) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Delete removes a (key, rid) entry; returns whether it existed. Underflow
// is tolerated (nodes are not rebalanced on delete — acceptable for the
// workloads here, where deletes are rare relative to inserts).
func (t *BTree) Delete(key []types.Value, rid storage.RID) bool {
	e := Entry{Key: key, RID: rid}
	n := t.root
	for !n.leaf {
		n = n.children[t.childIndex(n, e)]
	}
	i := lowerBoundEntries(n.entries, e)
	if i >= len(n.entries) || compareEntries(n.entries[i], e) != 0 {
		return false
	}
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	t.size--
	return true
}

// Bound describes one end of a range scan.
type Bound struct {
	Key  []types.Value
	Incl bool
	Set  bool // false = unbounded
}

// Scan visits entries in key order within [lo, hi], charging the clock one
// random read per level descended plus one sequential read per leaf visited.
// The callback returns false to stop.
func (t *BTree) Scan(clk *storage.Clock, lo, hi Bound, fn func(Entry) bool) {
	if clk != nil {
		clk.RandRead(t.height)
	}
	n := t.root
	var start Entry
	if lo.Set {
		start = Entry{Key: lo.Key, RID: -1 << 62}
		if !lo.Incl {
			start.RID = 1<<62 - 1
			// For exclusive bounds we still land on the first key >= lo and
			// skip equal keys below.
		}
	}
	for !n.leaf {
		if lo.Set {
			n = n.children[t.childIndex(n, start)]
		} else {
			n = n.children[0]
		}
	}
	i := 0
	if lo.Set {
		i = lowerBoundEntries(n.entries, Entry{Key: lo.Key, RID: -1 << 62})
	}
	for n != nil {
		if clk != nil {
			clk.SeqRead(1)
		}
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			if lo.Set && !lo.Incl {
				if prefixCompare(e.Key, lo.Key) == 0 {
					continue
				}
			}
			if hi.Set {
				c := prefixCompare(e.Key, hi.Key)
				if c > 0 || (c == 0 && !hi.Incl) {
					return
				}
			}
			if !fn(e) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// prefixCompare compares key against a possibly shorter bound key: only the
// bound's columns participate, enabling prefix (leading-column) scans on
// multi-column indexes.
func prefixCompare(key, bound []types.Value) int {
	n := len(bound)
	if len(key) < n {
		n = len(key)
	}
	for i := 0; i < n; i++ {
		if c := types.Compare(key[i], bound[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Lookup visits all entries exactly matching key (on the key's columns; a
// short key matches as a prefix).
func (t *BTree) Lookup(clk *storage.Clock, key []types.Value, fn func(Entry) bool) {
	t.Scan(clk, Bound{Key: key, Incl: true, Set: true}, Bound{Key: key, Incl: true, Set: true}, fn)
}

// CheckInvariants validates ordering and structural invariants; used by
// property tests. It returns an error describing the first violation.
func (t *BTree) CheckInvariants() error {
	count := 0
	var prev *Entry
	var walk func(n *node, depth int) (int, error)
	leafDepth := -1
	walk = func(n *node, depth int) (int, error) {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return 0, fmt.Errorf("index: uneven leaf depth %d vs %d", depth, leafDepth)
			}
			for i := range n.entries {
				if prev != nil && compareEntries(*prev, n.entries[i]) >= 0 {
					return 0, fmt.Errorf("index: out-of-order entries %v >= %v", prev, n.entries[i])
				}
				prev = &n.entries[i]
				count++
			}
			return len(n.entries), nil
		}
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("index: inner node has %d children for %d keys", len(n.children), len(n.keys))
		}
		total := 0
		for _, c := range n.children {
			sub, err := walk(c, depth+1)
			if err != nil {
				return 0, err
			}
			total += sub
		}
		return total, nil
	}
	total, err := walk(t.root, 1)
	if err != nil {
		return err
	}
	if total != t.size || count != t.size {
		return fmt.Errorf("index: size mismatch: counted %d, recorded %d", total, t.size)
	}
	return nil
}
