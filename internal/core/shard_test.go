package core

import (
	"fmt"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/workload"
)

// shardTestQueries exercises the sharded layer's distinct result shapes:
// a one-row aggregate, a row-level join with a residual predicate (order
// sensitive), and a LEFT JOIN (null extension, broadcast/repartition only
// since hot-split is inner-only anyway).
var shardTestQueries = []string{
	"SELECT COUNT(*), SUM(pt.pval) FROM pt, bt WHERE pt.k = bt.k",
	"SELECT pt.k, bt.bval, pt.pval FROM pt, bt WHERE pt.k = bt.k AND bt.bval < 500",
	"SELECT pt.k, bt.bval FROM pt LEFT JOIN bt ON pt.k = bt.k",
}

func rowsKey(res *Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func shardTestCatalog(t *testing.T, skew float64) *workload.ShardJoinConfig {
	t.Helper()
	cfg := workload.DefaultShardJoin()
	cfg.BuildRows = 600
	cfg.ProbeRows = 2400
	cfg.Keys = 150
	cfg.Skew = skew
	return &cfg
}

// TestShardedExactness is the signature property test: byte-identical rows
// and integer-exact simulated cost vs. the serial path across shard counts
// × DOP × vec × memory budgets × shuffle modes. Runtime filters are
// exercised separately (their adaptive disable is load-order dependent
// under concurrency, so they stay out of the strict matrix).
type shardCell struct {
	skew    float64
	mode    string
	memRows int
	vec     bool
	dop     int
	shards  []int
}

// shardMatrix enumerates the acceptance matrix: shard counts {1,2,4,8} ×
// row/vec × DOP {1,2,8} × memory budgets (64 rows forces the degrade
// path), with the forced repartition/broadcast and skewed cells layered on
// top of the costed default.
func shardMatrix(short bool) []shardCell {
	all := []int{1, 2, 4, 8}
	var cells []shardCell
	dops := []int{1, 2, 8}
	if short {
		all = []int{1, 2, 4}
		dops = []int{1, 2}
	}
	for _, memRows := range []int{1 << 16, 64} {
		for _, vec := range []bool{false, true} {
			for _, dop := range dops {
				cells = append(cells, shardCell{0, "", memRows, vec, dop, all})
			}
		}
	}
	// Forced exchange modes.
	for _, mode := range []string{"repartition", "broadcast"} {
		cells = append(cells,
			shardCell{0, mode, 1 << 16, false, 1, []int{2, 4}},
			shardCell{0, mode, 64, false, 2, []int{2, 4}})
	}
	// Skewed keys through the hot-split repartition path.
	cells = append(cells,
		shardCell{1.4, "repartition", 1 << 16, false, 1, []int{2, 4, 8}},
		shardCell{1.4, "repartition", 64, false, 1, []int{4}})
	return cells
}

func TestShardedExactness(t *testing.T) {
	built := map[float64]*catalog.Catalog{}
	for _, cell := range shardMatrix(testing.Short()) {
		cat, ok := built[cell.skew]
		if !ok {
			var err error
			cat, err = workload.BuildShardJoin(*shardTestCatalog(t, cell.skew))
			if err != nil {
				t.Fatal(err)
			}
			built[cell.skew] = cat
		}
		base := Attach(cat, Config{
			Policy: PolicyClassic, MemBudgetRows: cell.memRows,
			HistBuckets: 16, DOP: cell.dop, Vec: cell.vec,
		})
		want := make(map[string]*Result, len(shardTestQueries))
		for _, q := range shardTestQueries {
			want[q] = base.MustExec(q)
		}
		for _, shards := range cell.shards {
			name := fmt.Sprintf("skew=%.1f/mode=%s/mem=%d/vec=%v/dop=%d/shards=%d",
				cell.skew, cell.mode, cell.memRows, cell.vec, cell.dop, shards)
			eng := Attach(cat, Config{
				Policy: PolicyClassic, MemBudgetRows: cell.memRows,
				HistBuckets: 16, DOP: cell.dop, Vec: cell.vec,
				Shards: shards, ShuffleForce: cell.mode,
			})
			for _, q := range shardTestQueries {
				got := eng.MustExec(q)
				w := want[q]
				if rowsKey(got) != rowsKey(w) {
					t.Fatalf("%s %q: rows differ (%d vs %d)", name, q, len(got.Rows), len(w.Rows))
				}
				if got.Cost != w.Cost {
					t.Fatalf("%s %q: cost %v != serial %v", name, q, got.Cost, w.Cost)
				}
				if shards > 1 && got.Shuffle == nil {
					t.Fatalf("%s %q: no shuffle snapshot", name, q)
				}
			}
		}
	}
}

// TestShardedColocated verifies the co-located path: both tables
// partitioned on the join key, zero rows moved, and exactness vs serial on
// the same (partitioned) physical layout.
func TestShardedColocated(t *testing.T) {
	wcfg := shardTestCatalog(t, 0)
	for _, shards := range []int{2, 4, 8} {
		cat, err := workload.BuildShardJoin(*wcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.PartitionShardJoin(cat, shards); err != nil {
			t.Fatal(err)
		}
		base := Attach(cat, Config{Policy: PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16})
		eng := Attach(cat, Config{Policy: PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16, Shards: shards})
		for _, q := range shardTestQueries {
			w := base.MustExec(q)
			got := eng.MustExec(q)
			if rowsKey(got) != rowsKey(w) {
				t.Fatalf("shards=%d %q: rows differ", shards, q)
			}
			if got.Cost != w.Cost {
				t.Fatalf("shards=%d %q: cost %v != serial %v", shards, q, got.Cost, w.Cost)
			}
			if got.Shuffle == nil {
				t.Fatalf("shards=%d %q: no shuffle snapshot", shards, q)
			}
			if got.Shuffle.ColocatedJoins == 0 {
				t.Errorf("shards=%d %q: expected colocated join, got %+v", shards, q, got.Shuffle)
			}
			if got.Shuffle.RowsMoved != 0 || got.Shuffle.RowsBroadcast != 0 {
				t.Errorf("shards=%d %q: colocated join moved rows: %+v", shards, q, got.Shuffle)
			}
		}
	}
}

// TestShardedRuntimeFilterSmoke checks results (not strict cost) stay
// identical with runtime filters on: the adaptive disable makes the filter
// charge sequence scheduling-dependent, so only the row bytes are pinned.
func TestShardedRuntimeFilterSmoke(t *testing.T) {
	wcfg := shardTestCatalog(t, 0)
	cat, err := workload.BuildShardJoin(*wcfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Attach(cat, Config{Policy: PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16, RuntimeFilters: true})
	for _, shards := range []int{2, 4} {
		eng := Attach(cat, Config{Policy: PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16,
			RuntimeFilters: true, Shards: shards})
		for _, q := range shardTestQueries {
			w := base.MustExec(q)
			got := eng.MustExec(q)
			if rowsKey(got) != rowsKey(w) {
				t.Fatalf("shards=%d %q: rows differ with runtime filters", shards, q)
			}
		}
	}
}

// TestShardedHotSplitExact pins the skew path: under heavy Zipf skew with
// hot-key splitting active, results and cost stay exact and the splitter
// actually fires.
func TestShardedHotSplitExact(t *testing.T) {
	wcfg := shardTestCatalog(t, 1.6)
	cat, err := workload.BuildShardJoin(*wcfg)
	if err != nil {
		t.Fatal(err)
	}
	q := shardTestQueries[0]
	base := Attach(cat, Config{Policy: PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16})
	w := base.MustExec(q)
	split := false
	for _, shards := range []int{4, 8} {
		eng := Attach(cat, Config{Policy: PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16,
			Shards: shards, ShuffleForce: "repartition"})
		got := eng.MustExec(q)
		if rowsKey(got) != rowsKey(w) || got.Cost != w.Cost {
			t.Fatalf("shards=%d: skewed join not exact (cost %v vs %v)", shards, got.Cost, w.Cost)
		}
		if got.Shuffle != nil && got.Shuffle.HotKeys > 0 {
			split = true
		}
	}
	if !split {
		t.Error("expected hot-key splitting to trigger under 1.6 Zipf skew")
	}
}
