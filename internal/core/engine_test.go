package core

import (
	"strings"
	"testing"

	"rqp/internal/index"
	"rqp/internal/opt"
	"rqp/internal/types"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := Open(DefaultConfig())
	e.MustExec("CREATE TABLE emp (id int, dept int, salary float, name varchar, hired date)")
	for i := 0; i < 300; i++ {
		e.MustExec("INSERT INTO emp VALUES (?, ?, ?, ?, ?)",
			types.Int(int64(i)), types.Int(int64(i%10)),
			types.Float(float64(30000+i*100)), types.Str("emp"),
			types.Date(int64(7000+i)))
	}
	e.MustExec("ANALYZE emp")
	return e
}

func TestEngineDDLDMLQuery(t *testing.T) {
	e := newEngine(t)
	r := e.MustExec("SELECT COUNT(*) FROM emp WHERE dept = 3")
	if r.Rows[0][0].I != 30 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
	if r.Cost <= 0 {
		t.Error("cost should be positive")
	}
	if len(r.Columns) != 1 {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestEngineInsertWithColumns(t *testing.T) {
	e := newEngine(t)
	r := e.MustExec("INSERT INTO emp (id, dept) VALUES (1000, 99)")
	if r.Affected != 1 {
		t.Errorf("affected = %d", r.Affected)
	}
	q := e.MustExec("SELECT salary, name FROM emp WHERE id = 1000")
	if len(q.Rows) != 1 || !q.Rows[0][0].IsNull() || !q.Rows[0][1].IsNull() {
		t.Errorf("unspecified columns should be NULL: %v", q.Rows)
	}
}

func TestEngineUpdateDelete(t *testing.T) {
	e := newEngine(t)
	r := e.MustExec("UPDATE emp SET salary = salary * 2 WHERE dept = 0")
	if r.Affected != 30 {
		t.Errorf("update affected = %d", r.Affected)
	}
	q := e.MustExec("SELECT MIN(salary) FROM emp WHERE dept = 0")
	if q.Rows[0][0].AsFloat() != 60000 {
		t.Errorf("min salary = %v", q.Rows[0][0])
	}
	r2 := e.MustExec("DELETE FROM emp WHERE dept = 0")
	if r2.Affected != 30 {
		t.Errorf("delete affected = %d", r2.Affected)
	}
	q2 := e.MustExec("SELECT COUNT(*) FROM emp")
	if q2.Rows[0][0].I != 270 {
		t.Errorf("count after delete = %v", q2.Rows[0][0])
	}
}

func TestEngineExplain(t *testing.T) {
	e := newEngine(t)
	p, err := e.Explain("SELECT id FROM emp WHERE dept = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "SeqScan") || !strings.Contains(p, "Project") {
		t.Errorf("explain missing operators:\n%s", p)
	}
	r := e.MustExec("EXPLAIN SELECT id FROM emp WHERE dept = 1")
	if r.Plan == "" || len(r.Rows) != 0 {
		t.Error("EXPLAIN should return a plan and no rows")
	}
}

func TestEngineCreateIndexAndUse(t *testing.T) {
	e := newEngine(t)
	e.MustExec("CREATE INDEX emp_id ON emp (id)")
	e.MustExec("ANALYZE emp")
	r := e.MustExec("SELECT dept FROM emp WHERE id = 42")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 2 {
		t.Errorf("index query wrong: %v", r.Rows)
	}
	e.MustExec("DROP INDEX emp_id ON emp")
}

func TestEnginePoliciesAgree(t *testing.T) {
	query := "SELECT dept, COUNT(*) FROM emp WHERE salary >= 40000 GROUP BY dept ORDER BY dept"
	var ref string
	for _, pol := range []ExecPolicy{PolicyClassic, PolicyPOP, PolicyPOPEager, PolicyRio} {
		cfg := DefaultConfig()
		cfg.Policy = pol
		e := Open(cfg)
		e.MustExec("CREATE TABLE emp (id int, dept int, salary float, name varchar, hired date)")
		for i := 0; i < 300; i++ {
			e.MustExec("INSERT INTO emp VALUES (?, ?, ?, ?, ?)",
				types.Int(int64(i)), types.Int(int64(i%10)),
				types.Float(float64(30000+i*100)), types.Str("emp"), types.Date(int64(7000+i)))
		}
		e.MustExec("ANALYZE emp")
		r := e.MustExec(query)
		var sb strings.Builder
		for _, row := range r.Rows {
			sb.WriteString(row.String())
		}
		if ref == "" {
			ref = sb.String()
			continue
		}
		if sb.String() != ref {
			t.Errorf("policy %v results differ", pol)
		}
	}
}

// TestEngineVectorizedMatchesRow: end to end through the engine, Vec on and
// off must produce identical rows and identical simulated cost, and the
// vectorized run must report marking through its metrics counter.
func TestEngineVectorizedMatchesRow(t *testing.T) {
	queries := []string{
		"SELECT id, salary FROM emp WHERE dept = 3",
		"SELECT salary * 2, dept + 1 FROM emp WHERE salary >= 40000",
		"SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept ORDER BY dept",
		"SELECT a.id, b.id FROM emp a, emp b WHERE a.id = b.dept",
	}
	run := func(vec bool, q string) (string, float64, *Engine) {
		cfg := DefaultConfig()
		cfg.Vec = vec
		e := Open(cfg)
		e.MustExec("CREATE TABLE emp (id int, dept int, salary float, name varchar, hired date)")
		for i := 0; i < 300; i++ {
			e.MustExec("INSERT INTO emp VALUES (?, ?, ?, ?, ?)",
				types.Int(int64(i)), types.Int(int64(i%10)),
				types.Float(float64(30000+i*100)), types.Str("emp"), types.Date(int64(7000+i)))
		}
		e.MustExec("ANALYZE emp")
		r := e.MustExec(q)
		var sb strings.Builder
		for _, row := range r.Rows {
			sb.WriteString(row.String())
			sb.WriteByte('\n')
		}
		return sb.String(), r.Cost, e
	}
	for _, q := range queries {
		rows, cost, _ := run(false, q)
		vrows, vcost, ve := run(true, q)
		if vrows != rows {
			t.Errorf("%q: vectorized rows differ from row path", q)
		}
		if vcost != cost {
			t.Errorf("%q: vectorized cost %v != row-path cost %v", q, vcost, cost)
		}
		if !strings.Contains(ve.Metrics.Expose(), "rqp_vectorized_queries_total") {
			t.Errorf("%q: vectorized run did not count rqp_vectorized_queries_total", q)
		}
	}
}

func TestExplainDoesNotExecuteUnderAnyPolicy(t *testing.T) {
	for _, pol := range []ExecPolicy{PolicyClassic, PolicyPOP, PolicyPOPEager, PolicyRio} {
		cfg := DefaultConfig()
		cfg.Policy = pol
		e := Open(cfg)
		e.MustExec("CREATE TABLE t (a int, b int)")
		for i := 0; i < 50; i++ {
			e.MustExec("INSERT INTO t VALUES (?, ?)", types.Int(int64(i)), types.Int(int64(i%5)))
		}
		e.MustExec("ANALYZE t")
		r := e.MustExec("EXPLAIN SELECT b, COUNT(*) FROM t WHERE a > 10 GROUP BY b")
		if r.Plan == "" {
			t.Errorf("policy %v: EXPLAIN returned no plan", pol)
		}
		if len(r.Rows) != 0 {
			t.Errorf("policy %v: EXPLAIN returned rows (executed the query)", pol)
		}
		if !strings.Contains(r.Plan, "SeqScan") {
			t.Errorf("policy %v: plan missing scan:\n%s", pol, r.Plan)
		}
	}
}

func TestEngineRobustModes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EstimateMode = opt.Percentile
	e := Open(cfg)
	e.MustExec("CREATE TABLE t (a int)")
	e.MustExec("INSERT INTO t VALUES (1), (2), (3)")
	e.MustExec("ANALYZE t")
	r := e.MustExec("SELECT COUNT(*) FROM t WHERE a >= 2")
	if r.Rows[0][0].I != 2 {
		t.Errorf("robust mode broke correctness: %v", r.Rows)
	}
}

func TestEngineErrors(t *testing.T) {
	e := Open(DefaultConfig())
	for _, q := range []string{
		"SELECT * FROM missing",
		"INSERT INTO missing VALUES (1)",
		"CREATE TABLE bad (x blob)",
		"ANALYZE missing",
		"DELETE FROM missing",
		"UPDATE missing SET x = 1",
		"SELECT syntax error",
	} {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
	e.MustExec("CREATE TABLE t (a int)")
	if _, err := e.Exec("CREATE TABLE t (a int)"); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := e.Exec("INSERT INTO t (a, b) VALUES (1, 2)"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := e.Exec("INSERT INTO t VALUES (1, 2)"); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestDropTable(t *testing.T) {
	e := newEngine(t)
	e.MustExec("DROP TABLE emp")
	if _, err := e.Exec("SELECT COUNT(*) FROM emp"); err == nil {
		t.Error("dropped table should be gone")
	}
	if _, err := e.Exec("DROP TABLE emp"); err == nil {
		t.Error("double drop should fail")
	}
	// The name is reusable.
	e.MustExec("CREATE TABLE emp (x int)")
	e.MustExec("INSERT INTO emp VALUES (1)")
	if n := e.MustExec("SELECT COUNT(*) FROM emp").Rows[0][0].I; n != 1 {
		t.Errorf("recreated table count = %d", n)
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	e := newEngine(t)
	e.MustExec("CREATE INDEX emp_dept ON emp (dept)")
	// Move every dept-3 employee to dept 77; index lookups must follow.
	r := e.MustExec("UPDATE emp SET dept = 77 WHERE dept = 3")
	if r.Affected != 30 {
		t.Fatalf("affected = %d", r.Affected)
	}
	e.MustExec("ANALYZE emp")
	if n := e.MustExec("SELECT COUNT(*) FROM emp WHERE dept = 77").Rows[0][0].I; n != 30 {
		t.Errorf("dept=77 count = %d", n)
	}
	if n := e.MustExec("SELECT COUNT(*) FROM emp WHERE dept = 3").Rows[0][0].I; n != 0 {
		t.Errorf("dept=3 count = %d, index kept stale entries", n)
	}
	// Verify through the index directly: force the index path.
	tb, _ := e.Cat.Table("emp")
	ix := tb.IndexNamed("emp_dept")
	cnt := 0
	ix.Tree.Lookup(nil, []types.Value{types.Int(3)}, func(ixe index.Entry) bool { cnt++; return true })
	if cnt != 0 {
		t.Errorf("index still holds %d stale dept=3 entries", cnt)
	}
}

func TestAutoAnalyze(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AutoAnalyze = true
	cfg.AutoAnalyzeFraction = 0.1
	e := Open(cfg)
	e.MustExec("CREATE TABLE aa (v int)")
	for i := 0; i < 200; i++ {
		e.MustExec("INSERT INTO aa VALUES (?)", types.Int(int64(i)))
	}
	e.MustExec("ANALYZE aa")
	tb, _ := e.Cat.Table("aa")
	if tb.ModCount() != 0 {
		t.Fatalf("ANALYZE should reset mod count: %d", tb.ModCount())
	}
	// Below threshold: no refresh.
	for i := 0; i < 10; i++ {
		e.MustExec("INSERT INTO aa VALUES (999)")
	}
	e.MustExec("SELECT COUNT(*) FROM aa")
	if tb.ModCount() != 10 {
		t.Errorf("below threshold should not refresh: mods=%d", tb.ModCount())
	}
	// Above threshold: next SELECT refreshes.
	for i := 0; i < 50; i++ {
		e.MustExec("INSERT INTO aa VALUES (999)")
	}
	e.MustExec("SELECT COUNT(*) FROM aa")
	if tb.ModCount() != 0 {
		t.Errorf("auto-analyze should have fired: mods=%d", tb.ModCount())
	}
	if tb.Stats.RowCount != 260 {
		t.Errorf("refreshed stats row count = %v", tb.Stats.RowCount)
	}
}

func TestEngineLEOConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LEO = true
	e := Open(cfg)
	e.MustExec("CREATE TABLE t (a int, b int)")
	for i := 0; i < 500; i++ {
		v := int64(i % 20)
		e.MustExec("INSERT INTO t VALUES (?, ?)", types.Int(v), types.Int(v*2))
	}
	e.MustExec("ANALYZE t")
	e.MustExec("SELECT COUNT(*) FROM t WHERE a = 5 AND b = 10")
	if e.Opt.Feedback.Len() == 0 {
		t.Error("LEO should have recorded feedback")
	}
}
