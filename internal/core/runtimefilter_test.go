package core

import (
	"strings"
	"testing"

	"rqp/internal/types"
)

// rfEngine builds an engine over a selective fact x dim pair: 2000 unique
// fact keys, 20 of them (spread across the domain) on the dim side.
func rfEngine(t *testing.T, rf bool) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RuntimeFilters = rf
	e := Open(cfg)
	e.MustExec("CREATE TABLE fact (k int, v int)")
	e.MustExec("CREATE TABLE dim (k int, w int)")
	for i := 0; i < 2000; i++ {
		e.MustExec("INSERT INTO fact VALUES (?, ?)", types.Int(int64(i)), types.Int(int64(i%7)))
	}
	for i := 0; i < 20; i++ {
		e.MustExec("INSERT INTO dim VALUES (?, ?)", types.Int(int64(i*100)), types.Int(int64(i%3)))
	}
	e.MustExec("ANALYZE fact")
	e.MustExec("ANALYZE dim")
	return e
}

// TestEngineRuntimeFiltersExactAndCheaper: end to end through the engine,
// RuntimeFilters on and off must produce identical rows, the selective join
// must get cheaper, and the run must show up in the rqp_filter_* metrics.
func TestEngineRuntimeFiltersExactAndCheaper(t *testing.T) {
	const q = "SELECT fact.v, dim.w FROM fact, dim WHERE fact.k = dim.k"
	render := func(e *Engine) (string, float64) {
		r := e.MustExec(q)
		var sb strings.Builder
		for _, row := range r.Rows {
			sb.WriteString(row.String())
			sb.WriteByte('\n')
		}
		return sb.String(), r.Cost
	}

	base := rfEngine(t, false)
	rows, cost := render(base)
	fe := rfEngine(t, true)
	frows, fcost := render(fe)

	if frows != rows {
		t.Fatalf("runtime filters changed results:\n%s\nvs\n%s", frows, rows)
	}
	if fcost >= cost {
		t.Fatalf("selective join not cheaper with filters: %v >= %v units", fcost, cost)
	}
	exposed := fe.Metrics.Expose()
	for _, want := range []string{
		"rqp_filter_queries_total",
		"rqp_filter_built_total",
		"rqp_filter_tested_total",
		"rqp_filter_dropped_total",
	} {
		if !strings.Contains(exposed, want) {
			t.Errorf("metrics missing %s:\n%s", want, exposed)
		}
	}
	if strings.Contains(base.Metrics.Expose(), "rqp_filter_queries_total") {
		t.Error("filters-off engine counted a filtered query")
	}
}

// TestEngineRuntimeFiltersExplainAnalyze: EXPLAIN ANALYZE surfaces the
// filter lifecycle — planting, build, and the drop summary — as trace
// events in the rendered output.
func TestEngineRuntimeFiltersExplainAnalyze(t *testing.T) {
	e := rfEngine(t, true)
	r := e.MustExec("EXPLAIN ANALYZE SELECT fact.v, dim.w FROM fact, dim WHERE fact.k = dim.k")
	for _, want := range []string{"rf.plan", "rf.build", "rf.summary", "dropped="} {
		if !strings.Contains(r.Plan, want) {
			t.Fatalf("EXPLAIN ANALYZE output missing %q:\n%s", want, r.Plan)
		}
	}
	if r.Trace == nil || r.Trace.CountEvents("rf.build") == 0 {
		t.Fatal("trace missing rf.build event")
	}
}
