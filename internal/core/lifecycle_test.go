package core

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rqp/internal/obs"
	"rqp/internal/wlm"
)

// TestLifecycleRecordsCompletedQueries: every top-level SELECT lands in the
// engine's completed-query ring with outcome, cost, and plan fingerprint.
func TestLifecycleRecordsCompletedQueries(t *testing.T) {
	e := newEngine(t)
	e.MustExec("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
	e.MustExec("SELECT salary FROM emp ORDER BY salary")

	recent := e.Lifecycle.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring holds %d records, want 2", len(recent))
	}
	// Newest first.
	if !strings.Contains(recent[0].SQL, "ORDER BY salary") {
		t.Fatalf("recent[0] = %+v, want the ORDER BY query", recent[0])
	}
	for _, rec := range recent {
		if rec.Outcome != "done" {
			t.Fatalf("outcome = %q, want done: %+v", rec.Outcome, rec)
		}
		if rec.CostUnits <= 0 {
			t.Fatalf("cost not recorded: %+v", rec)
		}
		if rec.Fingerprint == "" {
			t.Fatalf("plan fingerprint missing: %+v", rec)
		}
		if rec.Rows <= 0 {
			t.Fatalf("rows not recorded: %+v", rec)
		}
	}
	// Same plan shape across runs hashes identically; different shape differs.
	again := e.MustExec("SELECT salary FROM emp ORDER BY salary")
	_ = again
	recent = e.Lifecycle.Recent()
	if recent[0].Fingerprint != recent[1].Fingerprint && recent[0].SQL == recent[1].SQL {
		t.Fatal("identical query must produce identical fingerprint")
	}
	if recent[0].Fingerprint == recent[2].Fingerprint {
		t.Fatalf("different plan shapes share fingerprint %q", recent[0].Fingerprint)
	}
}

// TestLifecycleFailedAndRejected: error exits and admission rejections get
// their own outcomes in the flight recorder.
func TestLifecycleFailedAndRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admission = wlm.NewAdmitter(1)
	e := Open(cfg)
	e.MustExec("CREATE TABLE t (a int)")
	e.MustExec("INSERT INTO t VALUES (1)")
	e.MustExec("ANALYZE t")

	if _, err := e.Exec("SELECT nosuch FROM t"); err == nil {
		t.Fatal("expected failure")
	}
	cfg.Admission.TryAdmit() // hold the only slot
	if _, err := e.Exec("SELECT a FROM t"); err == nil {
		t.Fatal("expected admission rejection")
	}
	cfg.Admission.Done()

	recent := e.Lifecycle.Recent()
	outcomes := map[string]int{}
	for _, rec := range recent {
		outcomes[rec.Outcome]++
	}
	if outcomes["rejected"] != 1 {
		t.Fatalf("outcomes = %v, want one rejected", outcomes)
	}
	if outcomes["failed"] != 1 {
		t.Fatalf("outcomes = %v, want one failed", outcomes)
	}
	for _, rec := range recent {
		if rec.Outcome == "failed" && rec.Error == "" {
			t.Fatalf("failed record lost its error: %+v", rec)
		}
	}
}

// TestLifecycleSpillStats: a spilling join's record carries the spill
// partition and row counts, and the query log sink sees the same record.
func TestLifecycleSpillStats(t *testing.T) {
	e := spillEngine(t, 100, 1)
	var logged []obs.QueryRecord
	e.Lifecycle.SetSink(obs.FuncSink(func(rec *obs.QueryRecord) {
		logged = append(logged, *rec)
	}))
	e.MustExec("SELECT bld.v, prb.w FROM bld JOIN prb ON bld.k = prb.k")
	if len(logged) != 1 {
		t.Fatalf("sink saw %d records, want 1", len(logged))
	}
	rec := logged[0]
	if rec.SpillParts < 1 || rec.SpillRows < 1 {
		t.Fatalf("spill stats not recorded: %+v", rec)
	}
	if rec.PeakMemRows < 1 {
		t.Fatalf("peak memory grant not recorded: %+v", rec)
	}
	if rec.Outcome != "done" {
		t.Fatalf("outcome = %q", rec.Outcome)
	}
}

// TestLifecycleConfigSinkWiring: Config.QueryLog reaches the registry.
func TestLifecycleConfigSinkWiring(t *testing.T) {
	n := 0
	cfg := DefaultConfig()
	cfg.QueryLog = obs.FuncSink(func(*obs.QueryRecord) { n++ })
	cfg.RecentQueries = 2
	e := Open(cfg)
	e.MustExec("CREATE TABLE t (a int)")
	e.MustExec("INSERT INTO t VALUES (1)")
	e.MustExec("SELECT a FROM t")
	e.MustExec("SELECT a FROM t")
	e.MustExec("SELECT a FROM t")
	if n != 3 {
		t.Fatalf("query log saw %d records, want 3 (DDL/DML excluded)", n)
	}
	if got := len(e.Lifecycle.Recent()); got != 2 {
		t.Fatalf("RecentQueries=2 ring holds %d", got)
	}
}

// TestLifecycleUnderParallelLoad is the -race exercise for the new
// observability paths: traced DOP-8 queries (morsel workers feeding span
// row counters and trace events, some spilling) run while concurrent
// pollers hammer the /queries and /metrics handlers.
func TestLifecycleUnderParallelLoad(t *testing.T) {
	e := spillEngine(t, 100, 8)
	e.Cfg.TraceAll = true
	mux := obs.NewDebugMux(e.Metrics, e.Lifecycle)

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	sawActive := false
	var sawMu sync.Mutex
	for i := 0; i < 3; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := httptest.NewRecorder()
				mux.ServeHTTP(w, httptest.NewRequest("GET", "/queries", nil))
				var resp struct {
					Active []obs.ActiveQuery `json:"active"`
				}
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					t.Errorf("/queries not JSON: %v", err)
					return
				}
				for _, aq := range resp.Active {
					if aq.Phase == "running" || aq.Phase == "spilling" {
						sawMu.Lock()
						sawActive = true
						sawMu.Unlock()
					}
				}
				w = httptest.NewRecorder()
				mux.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
				if w.Code != 200 {
					t.Errorf("/metrics status %d", w.Code)
					return
				}
			}
		}()
	}

	const rounds = 12
	for i := 0; i < rounds; i++ {
		r := e.MustExec("SELECT bld.k, COUNT(*) FROM bld JOIN prb ON bld.k = prb.k GROUP BY bld.k")
		if len(r.Rows) == 0 {
			t.Fatal("no rows under load")
		}
	}
	close(stop)
	pollers.Wait()

	_ = sawActive // timing-dependent; correctness is the ring + counters below
	recent := e.Lifecycle.Recent()
	if len(recent) != rounds {
		t.Fatalf("ring holds %d records, want %d", len(recent), rounds)
	}
	for _, rec := range recent {
		if rec.Outcome != "done" {
			t.Fatalf("outcome = %q under load: %+v", rec.Outcome, rec)
		}
	}
	if v := e.Metrics.Counter("rqp_queries_finished_total", obs.L("outcome", "done")).Value(); v != rounds {
		t.Fatalf("finished counter = %d, want %d", v, rounds)
	}
	if len(e.Lifecycle.Active()) != 0 {
		t.Fatal("queries left active")
	}
}
