package core

import (
	"strings"
	"sync"

	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// PlanCache implements the plan-management techniques of the report's
// system-context sessions: compiled plans for literal (parameter-free)
// queries are cached and reused; every RevalidateEvery-th execution the
// plan is re-optimized against current statistics and physical design, and
// a change of plan structure is recorded — the plan-change history that
// plan-stability monitoring ("optimizer plan change management") is built
// on. Parameterized queries are always re-optimized: their index bounds
// bake parameter values, so blind reuse would be exactly the
// literals-vs-parameters fragility the equivalence sessions warn about.
type PlanCache struct {
	mu sync.Mutex
	// RevalidateEvery n-th execution re-optimizes a cached plan (0 = never
	// revalidate: fully persistent plans).
	RevalidateEvery int

	entries map[string]*cacheEntry
	stats   PlanCacheStats
}

type cacheEntry struct {
	query *plan.Query
	root  plan.Node
	sig   string
	execs int
}

// PlanCacheStats reports cache behaviour.
type PlanCacheStats struct {
	Hits          int
	Misses        int
	Uncacheable   int // parameterized statements
	Revalidations int
	PlanChanges   int
}

// NewPlanCache returns a cache revalidating every n-th execution.
func NewPlanCache(revalidateEvery int) *PlanCache {
	return &PlanCache{RevalidateEvery: revalidateEvery, entries: map[string]*cacheEntry{}}
}

// Stats returns a snapshot.
func (pc *PlanCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.stats
}

// Len returns the number of cached plans.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

func normalizeText(q string) string {
	return strings.Join(strings.Fields(strings.ToLower(q)), " ")
}

// Plan returns an executable plan for the SELECT text, consulting the
// cache. The boolean reports whether the plan came from the cache.
func (pc *PlanCache) Plan(e *Engine, query string, params []types.Value) (plan.Node, *plan.Query, bool, error) {
	compile := func() (plan.Node, *plan.Query, error) {
		st, err := sql.Parse(query)
		if err != nil {
			return nil, nil, err
		}
		sel, ok := st.(*sql.SelectStmt)
		if !ok {
			return nil, nil, errNotSelect
		}
		bq, err := plan.Bind(sel, e.Cat)
		if err != nil {
			return nil, nil, err
		}
		root, err := e.Opt.Optimize(bq, params)
		if err != nil {
			return nil, nil, err
		}
		return root, bq, nil
	}

	key := normalizeText(query)
	pc.mu.Lock()
	entry, hit := pc.entries[key]
	pc.mu.Unlock()

	if hit {
		entry.execs++
		if entry.query.NumParams > 0 {
			// Defensive: parameterized plans never land in the cache, but a
			// racing insert is still recompiled rather than reused.
			pc.bump(func(s *PlanCacheStats) { s.Uncacheable++ })
			root, bq, err := compile()
			return root, bq, false, err
		}
		if pc.RevalidateEvery > 0 && entry.execs%pc.RevalidateEvery == 0 {
			root, bq, err := compile()
			if err != nil {
				return nil, nil, false, err
			}
			sig := plan.PlanSignature(root)
			pc.bump(func(s *PlanCacheStats) {
				s.Revalidations++
				if sig != entry.sig {
					s.PlanChanges++
				}
			})
			pc.mu.Lock()
			pc.entries[key] = &cacheEntry{query: bq, root: root, sig: sig, execs: entry.execs}
			pc.mu.Unlock()
			return root, bq, false, nil
		}
		pc.bump(func(s *PlanCacheStats) { s.Hits++ })
		return entry.root, entry.query, true, nil
	}

	root, bq, err := compile()
	if err != nil {
		return nil, nil, false, err
	}
	if bq.NumParams > 0 {
		pc.bump(func(s *PlanCacheStats) { s.Uncacheable++ })
		return root, bq, false, nil
	}
	pc.bump(func(s *PlanCacheStats) { s.Misses++ })
	pc.mu.Lock()
	pc.entries[key] = &cacheEntry{query: bq, root: root, sig: plan.PlanSignature(root), execs: 1}
	pc.mu.Unlock()
	return root, bq, false, nil
}

func (pc *PlanCache) bump(f func(*PlanCacheStats)) {
	pc.mu.Lock()
	f(&pc.stats)
	pc.mu.Unlock()
}

// Invalidate drops all cached plans (DDL and ANALYZE call this).
func (pc *PlanCache) Invalidate() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.entries = map[string]*cacheEntry{}
}

type notSelectError struct{}

func (notSelectError) Error() string { return "core: plan cache handles SELECT only" }

var errNotSelect = notSelectError{}
