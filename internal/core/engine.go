// Package core provides the public engine facade: open a database, run DDL
// and DML, execute queries under a selectable robustness configuration
// (classic, robust estimation, POP progressive re-optimization, Rio
// bounding boxes), EXPLAIN plans and collect execution feedback.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"rqp/internal/adaptive"
	"rqp/internal/catalog"
	"rqp/internal/exec"
	"rqp/internal/expr"
	"rqp/internal/obs"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/storage"
	"rqp/internal/types"
	"rqp/internal/wlm"
)

// ExecPolicy selects the execution strategy for SELECTs.
type ExecPolicy uint8

// Execution policies.
const (
	PolicyClassic  ExecPolicy = iota // optimize once, run the plan
	PolicyPOP                        // progressive re-optimization (checked)
	PolicyPOPEager                   // re-optimize at every materialization
	PolicyRio                        // bounding-box robust plan choice
)

// String names the policy.
func (p ExecPolicy) String() string {
	switch p {
	case PolicyClassic:
		return "classic"
	case PolicyPOP:
		return "pop"
	case PolicyPOPEager:
		return "pop-eager"
	case PolicyRio:
		return "rio"
	}
	return "?"
}

// Config tunes the engine.
type Config struct {
	Policy        ExecPolicy
	EstimateMode  opt.EstimateMode
	PercentileP   float64
	LEO           bool // learn from every execution
	MemBudgetRows int
	HistBuckets   int
	GJoinOnly     bool
	// AutoAnalyze refreshes a table's statistics (and invalidates cached
	// plans) before a query when modifications since the last ANALYZE
	// exceed AutoAnalyzeFraction of the analyzed row count — the automatic
	// maintenance whose side effects the report's opening anecdote warns
	// about (and experiment E21 reproduces).
	AutoAnalyze         bool
	AutoAnalyzeFraction float64
	// TraceAll attaches a tracer to every executed SELECT so Result.Trace
	// carries the span tree and events (EXPLAIN ANALYZE always traces,
	// independent of this switch).
	TraceAll bool
	// Admission, when non-nil, gates top-level SELECT execution through a
	// workload-management multiprogramming limit; rejected queries fail
	// fast and are counted in the metrics registry.
	Admission *wlm.Admitter
	// MemSchedule, when non-nil, injects memory pressure: the per-query
	// broker re-reads its budget from the schedule at every grant, so the
	// workspace can shrink (or oscillate) while operators are mid-flight
	// and their hash tables and sort runs spill instead of failing.
	MemSchedule wlm.MemorySchedule
	// MemPoolRows, with Admission set, makes concurrently running queries
	// share one workspace pool: each query's broker is attached on entry
	// and detached on exit, and every arrival reclaims budget from the
	// queries already running (equal shares).
	MemPoolRows int
	// DOP is the degree of parallelism for SELECT execution: 0 or 1 run
	// serial, above 1 enables morsel-driven parallel operators on eligible
	// plan nodes, negative means one worker per core. When Admission is
	// set, the granted DOP additionally shrinks with concurrent load.
	DOP int
	// Vec enables vectorized execution: serial (DOP <= 1) plans run
	// eligible fragments through the batch-at-a-time path with compiled
	// expressions, and parallel plans compile the expressions inside their
	// morsel operators. Results, row order and simulated cost are
	// identical to the row-at-a-time path.
	Vec bool
	// RuntimeFilters enables runtime join filters: inner hash joins derive
	// Bloom + min/max filters from their build side and push them sideways
	// into probe-side scans, which drop never-joining rows before full
	// per-row cost. Filters adaptively disable themselves when observed
	// selectivity is too low to pay for the membership tests, so the worst
	// case stays near the unfiltered plan. Results are identical either way.
	RuntimeFilters bool
	// Columnar enables column-store access paths: Attach builds a columnar
	// snapshot (dictionary/RLE/bit-packed blocks with zone maps) for every
	// catalog table, the optimizer may choose ColScan where it is cheaper,
	// and executed plans decode only referenced columns. DML invalidates a
	// table's snapshot (queries fall back to the heap); ANALYZE rebuilds it.
	Columnar bool
	// Shards partitions SELECT execution across N logical shard "nodes"
	// (goroutine-backed, network-transparent later): every hash join is
	// planned with a shuffle exchange — co-located, hash-repartition, or
	// broadcast — and each shard runs the full local operator stack on its
	// own child clock. Results and total simulated cost are byte- and
	// integer-identical to serial execution at any shard count; the cost of
	// rows crossing shards accumulates in a separate overhead domain
	// surfaced as Result.Shuffle. 0 or 1 disables sharding.
	Shards int
	// ShuffleForce overrides the costed broadcast-vs-repartition choice:
	// "repartition" or "broadcast" forces that exchange for every sharded
	// join (co-location still wins when eligible unless forced away).
	// Empty keeps the planner's costed choice.
	ShuffleForce string
	// ShardNoHotSplit disables skew handling: heavy-hitter build keys are
	// not split across shards even when per-shard row counters detect a
	// hot shard. Used by benchmarks to measure the skew cliff.
	ShardNoHotSplit bool
	// ShuffleTransport, when non-nil, carries sharded joins' exchanges —
	// e.g. the server package's TCP transport to shard worker processes.
	// Nil keeps the in-process transport=local fast path. Results and
	// main-clock cost are identical either way; only the wire-accounting
	// side domain (frames, bytes, stalls) differs.
	ShuffleTransport exec.ShuffleTransport
	// QueryLog, when non-nil, receives one structured record per completed
	// top-level query (plan fingerprint, cost, q-error geomean, peak memory,
	// spill/filter/reopt/admission counts) — obs.NewJSONLSink(file) gives
	// the standard JSONL query log.
	QueryLog obs.QuerySink
	// RecentQueries sizes the lifecycle registry's completed-query ring
	// served by the /queries debug endpoint (default 128).
	RecentQueries int
}

// DefaultConfig is the classic configuration.
func DefaultConfig() Config {
	return Config{
		Policy:        PolicyClassic,
		EstimateMode:  opt.Expected,
		PercentileP:   0.9,
		MemBudgetRows: 1 << 16,
		HistBuckets:   24,
	}
}

// Engine is one database instance.
type Engine struct {
	Cat   *catalog.Catalog
	Opt   *opt.Optimizer
	Clock *storage.Clock
	Cfg   Config
	// Cache, when non-nil, serves classic-policy SELECTs from the plan
	// cache (see PlanCache). DDL and ANALYZE invalidate it.
	Cache *PlanCache
	// Metrics aggregates engine-wide counters, gauges and histograms
	// (queries by policy, re-optimizations, cache hit ratio, q-error and
	// cost distributions, memory overcommit). Expose() renders them in the
	// Prometheus text format.
	Metrics *obs.Registry
	// Lifecycle is the live query registry: every top-level SELECT gets an
	// ID and a phase (queued/admitted/running/spilling/…) on entry and a
	// slot in the completed-query ring on exit. The obs debug server's
	// /queries and /trace/{id} endpoints read from it.
	Lifecycle *obs.QueryRegistry
}

// Open creates an empty engine.
func Open(cfg Config) *Engine {
	cat := catalog.New()
	return Attach(cat, cfg)
}

// Attach wraps an existing catalog (e.g. a pre-built workload database).
func Attach(cat *catalog.Catalog, cfg Config) *Engine {
	o := opt.New(cat)
	o.Opt.Mode = cfg.EstimateMode
	if cfg.PercentileP > 0 {
		o.Opt.PercentileP = cfg.PercentileP
	}
	if cfg.MemBudgetRows > 0 {
		o.Opt.MemBudgetRows = cfg.MemBudgetRows
	}
	o.Opt.UseFeedback = cfg.LEO
	o.Opt.GJoinOnly = cfg.GJoinOnly
	o.Opt.Columnar = cfg.Columnar
	if cfg.Columnar {
		for _, t := range cat.Tables() {
			cat.BuildColumnar(t, storage.DefaultColBlock)
		}
	}
	metrics := obs.NewRegistry()
	ring := cfg.RecentQueries
	if ring <= 0 {
		ring = 128
	}
	lifecycle := obs.NewQueryRegistry(ring, metrics)
	if cfg.QueryLog != nil {
		lifecycle.SetSink(cfg.QueryLog)
	}
	return &Engine{
		Cat:       cat,
		Opt:       o,
		Clock:     storage.NewClock(storage.DefaultCostModel()),
		Cfg:       cfg,
		Metrics:   metrics,
		Lifecycle: lifecycle,
	}
}

// Result is a statement's outcome.
type Result struct {
	Columns  []string
	Rows     []types.Row
	Affected int
	Plan     string  // EXPLAIN / EXPLAIN ANALYZE text when requested
	Cost     float64 // simulated cost units consumed
	Reopts   int     // POP re-optimizations performed
	// Trace is the query's span tree and event log, present when the
	// statement was EXPLAIN ANALYZE or Config.TraceAll is set.
	Trace *obs.Trace
	// Shuffle carries shard/shuffle-exchange statistics when the query ran
	// with Config.Shards > 1 and at least one join went through the
	// sharded layer.
	Shuffle *exec.ShuffleSnapshot
}

// ErrAdmissionRejected marks an execution error caused by the WLM gate
// turning the query away at its multiprogramming limit. Service layers
// check for it with errors.Is to distinguish "queue and retry" from real
// statement failures.
var ErrAdmissionRejected = errors.New("admission rejected")

// Exec parses and executes one statement.
func (e *Engine) Exec(query string, params ...types.Value) (*Result, error) {
	return e.ExecCancelable(query, nil, params...)
}

// ExecCancelable is Exec with a cooperative cancellation hook: a non-nil
// canceled func is polled before execution and periodically at the root
// drain loop of SELECTs, and a true return aborts with exec.ErrCanceled.
// The network service layer threads client Cancel frames and disconnects
// through here; DDL/DML statements ignore the hook (they are short).
func (e *Engine) ExecCancelable(query string, canceled func() bool, params ...types.Value) (*Result, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.execStmtCancelable(st, query, params, false, canceled)
}

// Explain returns the plan for a SELECT without executing it.
func (e *Engine) Explain(query string, params ...types.Value) (string, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		if ex, isEx := st.(*sql.ExplainStmt); isEx {
			if s2, ok2 := ex.Inner.(*sql.SelectStmt); ok2 {
				sel = s2
			} else {
				return "", fmt.Errorf("core: EXPLAIN supports SELECT only")
			}
		} else {
			return "", fmt.Errorf("core: EXPLAIN supports SELECT only")
		}
	}
	bq, err := plan.Bind(sel, e.Cat)
	if err != nil {
		return "", err
	}
	root, err := e.Opt.Optimize(bq, params)
	if err != nil {
		return "", err
	}
	return plan.Explain(root), nil
}

func (e *Engine) execStmt(st sql.Stmt, text string, params []types.Value, explainOnly bool) (*Result, error) {
	return e.execStmtCancelable(st, text, params, explainOnly, nil)
}

func (e *Engine) execStmtCancelable(st sql.Stmt, text string, params []types.Value, explainOnly bool, canceled func() bool) (*Result, error) {
	switch s := st.(type) {
	case *sql.ExplainStmt:
		if s.Analyze {
			sel, ok := s.Inner.(*sql.SelectStmt)
			if !ok {
				return nil, fmt.Errorf("core: EXPLAIN ANALYZE supports SELECT only")
			}
			return e.explainAnalyze(sel, params)
		}
		return e.execStmtCancelable(s.Inner, "", params, true, canceled)
	case *sql.SelectStmt:
		return e.runSelectCancelable(s, text, params, explainOnly, canceled)
	case *sql.CreateTableStmt:
		e.invalidatePlans()
		return e.execCreateTable(s)
	case *sql.CreateIndexStmt:
		e.invalidatePlans()
		if _, err := e.Cat.CreateIndex(e.Clock, s.Table, s.Name, s.Cols, s.Unique); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropTableStmt:
		e.invalidatePlans()
		if err := e.Cat.DropTable(s.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropIndexStmt:
		e.invalidatePlans()
		if err := e.Cat.DropIndex(s.Table, s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.AnalyzeStmt:
		e.invalidatePlans()
		t, ok := e.Cat.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("core: unknown table %q", s.Table)
		}
		e.Cat.AnalyzeTable(t, e.Cfg.HistBuckets)
		if e.Cfg.Columnar {
			e.Cat.BuildColumnar(t, storage.DefaultColBlock)
		}
		return &Result{}, nil
	case *sql.InsertStmt:
		return e.execInsert(s, params)
	case *sql.DeleteStmt:
		return e.execDelete(s, params)
	case *sql.UpdateStmt:
		return e.execUpdate(s, params)
	}
	return nil, fmt.Errorf("core: unsupported statement %T", st)
}

// maybeAutoAnalyze refreshes stale statistics for the tables a SELECT
// references, when automatic maintenance is enabled.
func (e *Engine) maybeAutoAnalyze(s *sql.SelectStmt) {
	if !e.Cfg.AutoAnalyze {
		return
	}
	frac := e.Cfg.AutoAnalyzeFraction
	if frac <= 0 {
		frac = 0.2
	}
	names := make([]string, 0, len(s.From)+len(s.Joins))
	for _, tr := range s.From {
		names = append(names, tr.Name)
	}
	for _, jc := range s.Joins {
		names = append(names, jc.Table.Name)
	}
	for _, name := range names {
		t, ok := e.Cat.Table(name)
		if !ok {
			continue
		}
		base := t.Stats.RowCount
		if base < 50 {
			base = 50
		}
		if float64(t.ModCount()) > frac*base {
			e.Cat.AnalyzeTable(t, e.Cfg.HistBuckets)
			e.invalidatePlans()
		}
	}
}

// invalidatePlans drops cached plans after DDL or statistics changes.
func (e *Engine) invalidatePlans() {
	if e.Cache != nil {
		e.Cache.Invalidate()
	}
}

func (e *Engine) execCreateTable(s *sql.CreateTableStmt) (*Result, error) {
	schema := make(types.Schema, len(s.Cols))
	for i, c := range s.Cols {
		k, ok := types.KindFromName(c.Type)
		if !ok {
			return nil, fmt.Errorf("core: unknown type %q for column %q", c.Type, c.Name)
		}
		schema[i] = types.Column{Name: c.Name, Kind: k}
	}
	if _, err := e.Cat.CreateTable(s.Table, schema); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) runSelectCancelable(s *sql.SelectStmt, text string, params []types.Value, explainOnly bool, canceled func() bool) (*Result, error) {
	return e.runSelectObserved(s, text, params, explainOnly, 0, false, canceled)
}

func (e *Engine) runSelectDepth(s *sql.SelectStmt, text string, params []types.Value, explainOnly bool, depth int) (*Result, error) {
	return e.runSelectObserved(s, text, params, explainOnly, depth, false, nil)
}

// explainAnalyze executes the SELECT under a tracer and renders the span
// tree annotated with actual rows, per-node q-error and cost consumed,
// followed by the engine-event log (re-optimizations, cache and memory and
// admission decisions).
func (e *Engine) explainAnalyze(sel *sql.SelectStmt, params []types.Value) (*Result, error) {
	res, err := e.runSelectObserved(sel, "", params, false, 0, true, nil)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString(res.Trace.Render())
	fmt.Fprintf(&sb, "-- %d row(s), cost %.2f units", len(res.Rows), res.Cost)
	if res.Reopts > 0 {
		fmt.Fprintf(&sb, ", %d reopt(s)", res.Reopts)
	}
	sb.WriteByte('\n')
	res.Plan = sb.String()
	// Like EXPLAIN, the statement's visible output is the plan, not rows.
	res.Rows = nil
	res.Columns = nil
	return res, nil
}

func (e *Engine) runSelectObserved(s *sql.SelectStmt, text string, params []types.Value, explainOnly bool, depth int, forceTrace bool, canceled func() bool) (finalRes *Result, finalErr error) {
	// Lifecycle registration: every top-level executing query gets an ID
	// and a phase in the live registry, and retires into the completed ring
	// (and the query log, if a sink is configured) on this function's single
	// exit path — including bind/planning failures, which never reach an
	// execution context.
	var lifecycle *obs.QueryState
	var planFP string
	var ctx *exec.Context
	admissions := 0
	if depth == 0 && !explainOnly && e.Lifecycle != nil {
		lifecycle = e.Lifecycle.Begin(text, e.Cfg.Policy.String())
		defer func() {
			lifecycle.SetFingerprint(planFP)
			st := obs.FinishStats{Err: finalErr, Admissions: admissions}
			if finalRes != nil {
				st.Rows = len(finalRes.Rows)
				st.Reopts = finalRes.Reopts
			}
			if ctx != nil {
				st.CostUnits = ctx.Clock.Units()
				st.PeakMemRows = ctx.Mem.PeakUse()
				st.SpillParts, st.SpillRows, _, _, _ = ctx.Spill.Snapshot()
				if ctx.RF != nil {
					built, _, dropped, _ := ctx.RF.Snapshot()
					st.RFBuilt, st.RFDropped = built, dropped
				}
			}
			e.Lifecycle.Finish(lifecycle, st)
		}()
	}

	expanded, err := e.expandSubqueries(s, params, depth)
	if err != nil {
		return nil, err
	}
	if expanded {
		// A frozen subquery result must never be served from the plan cache.
		text = ""
	}
	e.maybeAutoAnalyze(s)
	bq, err := plan.Bind(s, e.Cat)
	if err != nil {
		return nil, err
	}
	ctx = exec.NewContext()
	ctx.Params = params
	ctx.Canceled = canceled
	if e.Cfg.MemBudgetRows > 0 {
		ctx.Mem = exec.NewMemBroker(e.Cfg.MemBudgetRows)
	}
	if e.Cfg.MemSchedule != nil {
		ctx.Mem.SetSchedule(e.Cfg.MemSchedule)
	}
	var trace *obs.Trace
	if (forceTrace || e.Cfg.TraceAll) && !explainOnly {
		trace = obs.NewTrace(ctx.Clock)
		ctx.Trace = trace
		ctx.Mem.OnEvent = func(kind string, rows, inUse, budget int) {
			trace.Event("mem."+kind, fmt.Sprintf("rows=%d in_use=%d budget=%d", rows, inUse, budget))
		}
	}
	if e.Cfg.LEO {
		adaptive.AttachLEO(ctx, e.Opt.Feedback)
	}

	if lifecycle != nil {
		lifecycle.AttachTrace(trace)
	}

	// Workload-management admission: top-level executing queries only.
	if depth == 0 && !explainOnly && e.Cfg.Admission != nil {
		d := e.Cfg.Admission.TryAdmit()
		if trace != nil {
			trace.Event("wlm.admission", d.String())
		}
		admissions++
		if !d.Admitted {
			e.Metrics.Counter("rqp_wlm_rejected_total").Inc()
			if lifecycle != nil {
				lifecycle.SetPhase(obs.PhaseRejected)
			}
			return nil, fmt.Errorf("core: %w (%s)", ErrAdmissionRejected, d)
		}
		e.Metrics.Counter("rqp_wlm_admitted_total").Inc()
		if lifecycle != nil {
			lifecycle.SetPhase(obs.PhaseAdmitted)
		}
		defer e.Cfg.Admission.Done()
		if e.Cfg.MemPoolRows > 0 {
			e.Cfg.Admission.SetMemPool(e.Cfg.MemPoolRows)
			share := e.Cfg.Admission.AttachMem(ctx.Mem)
			defer e.Cfg.Admission.DetachMem(ctx.Mem)
			if trace != nil {
				trace.Event("wlm.mem", fmt.Sprintf("pool=%d share=%d", e.Cfg.MemPoolRows, share))
			}
		}
	}

	// Degree of parallelism: resolve the configured value, then let the
	// WLM gate scale it back under concurrent load.
	if dop := exec.ResolveDOP(e.Cfg.DOP); dop > 1 {
		if e.Cfg.Admission != nil {
			dop = e.Cfg.Admission.GrantDOP(dop)
		}
		ctx.DOP = dop
	}
	ctx.Vec = e.Cfg.Vec

	res := &Result{Columns: bq.ProjNames, Trace: trace}
	var qerrs []float64

	if lifecycle != nil {
		lifecycle.SetPhase(obs.PhaseRunning)
	}
	switch e.Cfg.Policy {
	case PolicyPOP, PolicyPOPEager:
		if explainOnly {
			// Progressive execution has no single static plan; EXPLAIN
			// shows the initial compile-time plan without executing.
			root, err := e.Opt.Optimize(bq, params)
			if err != nil {
				return nil, err
			}
			res.Plan = plan.Explain(root)
			return res, nil
		}
		policy := adaptive.Checked
		if e.Cfg.Policy == PolicyPOPEager {
			policy = adaptive.Eager
		}
		prog := &adaptive.Progressive{Opt: e.Opt, Policy: policy, ReoptCharge: 2}
		pres, err := prog.Execute(bq, ctx)
		if err != nil {
			return nil, err
		}
		res.Rows = pres.Rows
		res.Reopts = pres.Reopts
		for _, c := range pres.Checks {
			qerrs = append(qerrs, obs.QError(c.Estimated, c.Actual))
		}
	case PolicyRio:
		rio := &adaptive.Rio{Opt: e.Opt, UncertaintyFactor: 4}
		root, choice, err := rio.Choose(bq, params)
		if err != nil {
			return nil, err
		}
		if explainOnly {
			res.Plan = plan.Explain(root)
			return res, nil
		}
		if trace != nil {
			trace.Event("rio.choice",
				fmt.Sprintf("robust=%v regret=%.2f sig=%s", choice.Robust, choice.MaxRegret, choice.Sig))
		}
		planFP = plan.Fingerprint(root)
		e.Metrics.Counter("rqp_rio_choices_total", obs.L("robust", fmt.Sprintf("%v", choice.Robust))).Inc()
		e.maybeMarkParallel(root, ctx)
		e.maybeMarkVectorized(root, ctx)
		e.maybeMarkColumnRefs(root, ctx)
		e.maybeRuntimeFilters(root, ctx)
		e.maybeMarkSharded(root, ctx)
		rows, err := exec.Run(root, ctx)
		if err != nil {
			return nil, err
		}
		res.Rows = rows
		res.Plan = plan.ExplainActual(root)
		qerrs = nodeQErrors(root)
	default:
		var root plan.Node
		if e.Cache != nil && text != "" {
			cachedRoot, _, hit, err := e.Cache.Plan(e, text, params)
			if err != nil {
				return nil, err
			}
			root = cachedRoot
			if hit {
				e.Metrics.Counter("rqp_plan_cache_hits_total").Inc()
			} else {
				e.Metrics.Counter("rqp_plan_cache_misses_total").Inc()
			}
			if trace != nil {
				if hit {
					trace.Event("plancache.hit", "")
				} else {
					trace.Event("plancache.miss", "")
				}
			}
			st := e.Cache.Stats()
			if tot := st.Hits + st.Misses; tot > 0 {
				e.Metrics.Gauge("rqp_plan_cache_hit_ratio").Set(float64(st.Hits) / float64(tot))
			}
		} else {
			var err error
			root, err = e.Opt.Optimize(bq, params)
			if err != nil {
				return nil, err
			}
		}
		if explainOnly {
			res.Plan = plan.Explain(root)
			return res, nil
		}
		planFP = plan.Fingerprint(root)
		e.maybeMarkParallel(root, ctx)
		e.maybeMarkVectorized(root, ctx)
		e.maybeMarkColumnRefs(root, ctx)
		e.maybeRuntimeFilters(root, ctx)
		e.maybeMarkSharded(root, ctx)
		rows, err := exec.Run(root, ctx)
		if err != nil {
			return nil, err
		}
		res.Rows = rows
		res.Plan = plan.ExplainActual(root)
		qerrs = nodeQErrors(root)
	}
	res.Cost = ctx.Clock.Units()
	if ctx.Shuffle != nil {
		s := ctx.Shuffle.Snapshot()
		res.Shuffle = &s
	}
	e.Clock.RowWork(int(res.Cost * 100)) // fold into the engine-lifetime clock
	if depth == 0 {
		e.recordQueryMetrics(res, ctx, qerrs)
	}
	return res, nil
}

// maybeMarkParallel annotates a plan for morsel-driven execution when the
// context carries a degree of parallelism above one. POP/progressive plans
// never pass through here: re-optimization splices plans mid-flight, so
// those paths stay serial.
func (e *Engine) maybeMarkParallel(root plan.Node, ctx *exec.Context) {
	if ctx.DOP <= 1 {
		return
	}
	marked := plan.MarkParallel(root, exec.ParallelMinRows)
	if ctx.Trace != nil {
		ctx.Trace.Event("parallel.plan", fmt.Sprintf("dop=%d marked=%d", ctx.DOP, marked))
	}
	if marked > 0 {
		e.Metrics.Counter("rqp_parallel_queries_total").Inc()
	}
}

// maybeMarkVectorized annotates a plan for batch execution when the config
// enables it. Marking happens even at DOP > 1 — the executor itself only
// takes the batch path on serial plans, but the annotations are harmless and
// keep plan-cache hits consistent. POP/progressive plans never pass through
// here, mirroring maybeMarkParallel.
func (e *Engine) maybeMarkVectorized(root plan.Node, ctx *exec.Context) {
	if !ctx.Vec {
		return
	}
	marked := plan.MarkVectorized(root)
	if ctx.Trace != nil {
		ctx.Trace.Event("vectorized.plan", fmt.Sprintf("marked=%d", marked))
	}
	if marked > 0 {
		e.Metrics.Counter("rqp_vectorized_queries_total").Inc()
	}
}

// maybeRuntimeFilters plants runtime join filter sites on the plan, credits
// the cost model for the expected probe-side savings, and arms the context
// with a fresh filter set. Plan-cache hits pass through here every query —
// both the planting pass and the credit are idempotent. POP/progressive
// plans never pass through here, mirroring maybeMarkParallel.
func (e *Engine) maybeRuntimeFilters(root plan.Node, ctx *exec.Context) {
	if !e.Cfg.RuntimeFilters {
		return
	}
	sites, credit := e.Opt.CreditRuntimeFilters(root)
	if sites == 0 {
		return
	}
	ctx.RF = exec.NewRuntimeFilterSet(ctx.Trace)
	if ctx.Trace != nil {
		ctx.Trace.Event("rf.plan", fmt.Sprintf("sites=%d credit=%.2f", sites, credit))
	}
	e.Metrics.Counter("rqp_filter_queries_total").Inc()
}

// maybeMarkColumnRefs computes referenced-column sets for columnar scans so
// they decode only the columns the query reads. Idempotent — plan-cache
// hits re-run it like the other marking passes. POP/progressive plans never
// pass through here, mirroring maybeMarkParallel.
func (e *Engine) maybeMarkColumnRefs(root plan.Node, ctx *exec.Context) {
	if !e.Cfg.Columnar {
		return
	}
	narrowed := plan.MarkColumnRefs(root)
	if ctx.Trace != nil {
		ctx.Trace.Event("columnar.plan", fmt.Sprintf("narrowed=%d", narrowed))
	}
}

// maybeMarkSharded plans shuffle exchanges on a plan's hash joins and arms
// the context with shard count and shuffle stats when the config carries a
// shard count above one. Idempotent like the other marking passes — the
// planner re-derives every join's exchange mode from scratch, so plan-cache
// hits pass through safely. POP/progressive plans never pass through here,
// mirroring maybeMarkParallel.
func (e *Engine) maybeMarkSharded(root plan.Node, ctx *exec.Context) {
	if e.Cfg.Shards <= 1 {
		return
	}
	marked := opt.PlanShuffles(root, e.Cfg.Shards, e.Cfg.ShuffleForce)
	if marked == 0 {
		return
	}
	ctx.Shards = e.Cfg.Shards
	ctx.Shuffle = exec.NewShuffleStats(e.Cfg.Shards)
	ctx.NoHotSplit = e.Cfg.ShardNoHotSplit
	ctx.ShufTransport = e.Cfg.ShuffleTransport
	if ctx.Trace != nil {
		ctx.Trace.Event("shuffle.plan", fmt.Sprintf("shards=%d marked=%d force=%q", e.Cfg.Shards, marked, e.Cfg.ShuffleForce))
	}
	e.Metrics.Counter("rqp_shuffle_queries_total").Inc()
}

// nodeQErrors collects per-operator q-errors from an executed plan.
func nodeQErrors(root plan.Node) []float64 {
	var out []float64
	plan.Walk(root, func(n plan.Node) {
		p := n.Props()
		if p.ActualRows >= 0 {
			out = append(out, obs.QError(p.EstRows, p.ActualRows))
		}
	})
	return out
}

// recordQueryMetrics aggregates one finished query into the engine-wide
// registry.
func (e *Engine) recordQueryMetrics(res *Result, ctx *exec.Context, qerrs []float64) {
	m := e.Metrics
	m.Counter("rqp_queries_total", obs.L("policy", e.Cfg.Policy.String())).Inc()
	m.Histogram("rqp_query_cost_units", obs.CostBuckets).Observe(res.Cost)
	if res.Reopts > 0 {
		m.Counter("rqp_reopts_total").Add(int64(res.Reopts))
	}
	for _, q := range qerrs {
		m.Histogram("rqp_qerror", obs.QErrorBuckets).Observe(q)
	}
	if oc := ctx.Mem.Overcommits(); oc > 0 {
		m.Counter("rqp_mem_overcommit_total").Add(int64(oc))
	}
	m.Gauge("rqp_mem_peak_rows").Set(float64(ctx.Mem.PeakUse()))
	if parts, rows, pages, maxDepth, fallbacks := ctx.Spill.Snapshot(); parts > 0 {
		m.Counter("rqp_spill_partitions_total").Add(int64(parts))
		m.Counter("rqp_spill_rows_total").Add(int64(rows))
		m.Counter("rqp_spill_pages_written_total").Add(int64(pages))
		m.Gauge("rqp_spill_recursion_depth").Set(float64(maxDepth))
		if fallbacks > 0 {
			m.Counter("rqp_spill_merge_fallbacks_total").Add(int64(fallbacks))
		}
	}
	if skipped, scanned := atomic.LoadInt64(&ctx.ColBlocksSkipped), atomic.LoadInt64(&ctx.ColBlocksScanned); skipped+scanned > 0 {
		m.Counter("rqp_columnar_blocks_skipped").Add(skipped)
		m.Counter("rqp_columnar_blocks_scanned").Add(scanned)
		if res.Trace != nil {
			res.Trace.Event("columnar.summary", fmt.Sprintf("blocks_skipped=%d blocks_scanned=%d", skipped, scanned))
		}
	}
	if res.Shuffle != nil {
		s := res.Shuffle
		m.Counter("rqp_shuffle_rows_moved_total").Add(s.RowsMoved)
		m.Counter("rqp_shuffle_rows_broadcast_total").Add(s.RowsBroadcast)
		m.Counter("rqp_shuffle_hot_keys_total").Add(s.HotKeys)
		m.Counter("rqp_shuffle_hot_probe_dups_total").Add(s.HotProbeDups)
		m.Counter("rqp_shuffle_degrades_total").Add(s.Degrades)
		m.Counter("rqp_shuffle_joins_total", obs.L("mode", "colocated")).Add(s.ColocatedJoins)
		m.Counter("rqp_shuffle_joins_total", obs.L("mode", "repartition")).Add(s.RepartitionJoins)
		m.Counter("rqp_shuffle_joins_total", obs.L("mode", "broadcast")).Add(s.BroadcastJoins)
		if s.NetFrames > 0 || s.NetFallbacks > 0 {
			m.Counter("rqp_shuffle_net_frames_total").Add(s.NetFrames)
			m.Counter("rqp_shuffle_net_bytes_total").Add(s.NetBytes)
			m.Counter("rqp_shuffle_net_rows_wire_total").Add(s.NetRowsWire)
			m.Counter("rqp_shuffle_net_stalls_total").Add(s.NetStalls)
			m.Counter("rqp_shuffle_net_fallbacks_total").Add(s.NetFallbacks)
			for peer := range s.PeerFrames {
				lbl := obs.L("peer", fmt.Sprintf("%d", peer))
				m.Counter("rqp_shuffle_peer_frames_total", lbl).Add(s.PeerFrames[peer])
				m.Counter("rqp_shuffle_peer_bytes_total", lbl).Add(s.PeerBytes[peer])
				m.Counter("rqp_shuffle_peer_stalls_total", lbl).Add(s.PeerStalls[peer])
			}
		}
		if res.Trace != nil {
			res.Trace.Event("shuffle.summary", fmt.Sprintf(
				"shards=%d moved=%d broadcast=%d hot_keys=%d hot_dups=%d degrades=%d",
				s.Shards, s.RowsMoved, s.RowsBroadcast, s.HotKeys, s.HotProbeDups, s.Degrades))
			if s.Transport != "" && s.Transport != "local" {
				res.Trace.Event("shuffle.net", fmt.Sprintf(
					"transport=%s frames=%d bytes=%d rows_routed=%d rows_wire=%d stalls=%d reconciled=%v",
					s.Transport, s.NetFrames, s.NetBytes, s.NetRowsRouted, s.NetRowsWire, s.NetStalls, s.Reconciled()))
			}
		}
	}
	if ctx.RF != nil {
		if built, tested, dropped, disabled := ctx.RF.Snapshot(); built > 0 {
			m.Counter("rqp_filter_built_total").Add(built)
			m.Counter("rqp_filter_tested_total").Add(tested)
			m.Counter("rqp_filter_dropped_total").Add(dropped)
			if disabled > 0 {
				m.Counter("rqp_filter_disabled_total").Add(disabled)
			}
			if res.Trace != nil {
				res.Trace.Event("rf.summary", fmt.Sprintf("built=%d tested=%d dropped=%d disabled=%d", built, tested, dropped, disabled))
			}
		}
	}
}

func (e *Engine) execInsert(s *sql.InsertStmt, params []types.Value) (*Result, error) {
	t, ok := e.Cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", s.Table)
	}
	colIdx := make([]int, 0, len(s.Cols))
	if len(s.Cols) == 0 {
		for i := range t.Schema {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, cn := range s.Cols {
			ci := t.ColIndex(cn)
			if ci < 0 {
				return nil, fmt.Errorf("core: unknown column %q", cn)
			}
			colIdx = append(colIdx, ci)
		}
	}
	b := &binderShim{}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(colIdx) {
			return nil, fmt.Errorf("core: INSERT row has %d values for %d columns", len(exprRow), len(colIdx))
		}
		row := make(types.Row, len(t.Schema))
		for i := range row {
			row[i] = types.Null()
		}
		for i, ast := range exprRow {
			bound, err := b.bind(ast)
			if err != nil {
				return nil, err
			}
			v, err := bound.Eval(nil, params)
			if err != nil {
				return nil, err
			}
			row[colIdx[i]] = coerce(v, t.Schema[colIdx[i]].Kind)
		}
		e.Cat.Insert(e.Clock, t, row)
		n++
	}
	return &Result{Affected: n}, nil
}

func (e *Engine) execDelete(s *sql.DeleteStmt, params []types.Value) (*Result, error) {
	t, ok := e.Cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", s.Table)
	}
	pred, err := e.bindRowPredicate(s.Where, t)
	if err != nil {
		return nil, err
	}
	var victims []storage.RID
	t.Heap.Scan(e.Clock, func(rid storage.RID, r types.Row) bool {
		if pred != nil {
			ok, err2 := expr.EvalPredicate(pred, r, params)
			if err2 != nil {
				err = err2
				return false
			}
			if !ok {
				return true
			}
		}
		victims = append(victims, rid)
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, rid := range victims {
		e.Cat.Delete(e.Clock, t, rid)
	}
	return &Result{Affected: len(victims)}, nil
}

func (e *Engine) execUpdate(s *sql.UpdateStmt, params []types.Value) (*Result, error) {
	t, ok := e.Cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", s.Table)
	}
	pred, err := e.bindRowPredicate(s.Where, t)
	if err != nil {
		return nil, err
	}
	b := &binderShim{}
	type setter struct {
		col int
		e   expr.Expr
	}
	var setters []setter
	for _, cn := range s.Order {
		ci := t.ColIndex(cn)
		if ci < 0 {
			return nil, fmt.Errorf("core: unknown column %q", cn)
		}
		bound, err := b.bindWithSchema(s.Set[cn], t.Schema)
		if err != nil {
			return nil, err
		}
		setters = append(setters, setter{col: ci, e: bound})
	}
	type change struct {
		rid storage.RID
		row types.Row
	}
	var changes []change
	t.Heap.Scan(e.Clock, func(rid storage.RID, r types.Row) bool {
		if pred != nil {
			ok, err2 := expr.EvalPredicate(pred, r, params)
			if err2 != nil {
				err = err2
				return false
			}
			if !ok {
				return true
			}
		}
		nr := r.Clone()
		for _, st := range setters {
			v, err2 := st.e.Eval(r, params)
			if err2 != nil {
				err = err2
				return false
			}
			nr[st.col] = coerce(v, t.Schema[st.col].Kind)
		}
		changes = append(changes, change{rid: rid, row: nr})
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, c := range changes {
		e.Cat.Update(e.Clock, t, c.rid, c.row)
	}
	return &Result{Affected: len(changes)}, nil
}

func (e *Engine) bindRowPredicate(w sql.Expr, t *catalog.Table) (expr.Expr, error) {
	if w == nil {
		return nil, nil
	}
	b := &binderShim{}
	return b.bindWithSchema(w, t.Schema)
}

// binderShim reuses the plan binder for standalone expressions.
type binderShim struct{}

func (b *binderShim) bind(e sql.Expr) (expr.Expr, error) {
	return b.bindWithSchema(e, nil)
}

func (b *binderShim) bindWithSchema(e sql.Expr, schema types.Schema) (expr.Expr, error) {
	return plan.BindExpr(e, schema)
}

// coerce aligns a literal with the target column kind (ints into float or
// date columns, etc.).
func coerce(v types.Value, k types.Kind) types.Value {
	if v.IsNull() || v.K == k {
		return v
	}
	switch k {
	case types.KindFloat:
		if v.Numeric() {
			return types.Float(v.AsFloat())
		}
	case types.KindInt:
		if v.Numeric() {
			return types.Int(v.AsInt())
		}
	case types.KindDate:
		if v.Numeric() {
			return types.Date(v.AsInt())
		}
	}
	return v
}

// MustExec is Exec that panics on error — for examples and tests.
func (e *Engine) MustExec(query string, params ...types.Value) *Result {
	r, err := e.Exec(query, params...)
	if err != nil {
		panic(fmt.Sprintf("rqp: %v (query: %s)", err, strings.TrimSpace(query)))
	}
	return r
}
