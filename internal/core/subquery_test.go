package core

import (
	"strings"
	"testing"

	"rqp/internal/types"
)

func subqueryEngine(t *testing.T) *Engine {
	t.Helper()
	e := Open(DefaultConfig())
	e.MustExec("CREATE TABLE prod (id int, cat int, price float)")
	e.MustExec("CREATE TABLE hot (cat int)")
	for i := 0; i < 100; i++ {
		e.MustExec("INSERT INTO prod VALUES (?, ?, ?)",
			types.Int(int64(i)), types.Int(int64(i%10)), types.Float(float64(i)))
	}
	e.MustExec("INSERT INTO hot VALUES (2), (5), (7)")
	e.MustExec("ANALYZE prod")
	e.MustExec("ANALYZE hot")
	return e
}

func TestInSubquery(t *testing.T) {
	e := subqueryEngine(t)
	r := e.MustExec("SELECT COUNT(*) FROM prod WHERE cat IN (SELECT cat FROM hot)")
	if r.Rows[0][0].I != 30 {
		t.Errorf("IN subquery count = %v, want 30", r.Rows[0][0])
	}
	r2 := e.MustExec("SELECT COUNT(*) FROM prod WHERE cat NOT IN (SELECT cat FROM hot)")
	if r2.Rows[0][0].I != 70 {
		t.Errorf("NOT IN subquery count = %v, want 70", r2.Rows[0][0])
	}
}

func TestInSubqueryWithInnerPredicateAndParams(t *testing.T) {
	e := subqueryEngine(t)
	r := e.MustExec("SELECT COUNT(*) FROM prod WHERE cat IN (SELECT cat FROM hot WHERE cat > ?)",
		types.Int(4))
	if r.Rows[0][0].I != 20 { // cats 5 and 7
		t.Errorf("filtered subquery count = %v, want 20", r.Rows[0][0])
	}
}

func TestNestedInSubquery(t *testing.T) {
	e := subqueryEngine(t)
	r := e.MustExec(`SELECT COUNT(*) FROM prod
		WHERE cat IN (SELECT cat FROM hot WHERE cat IN (SELECT cat FROM hot WHERE cat < 6))`)
	if r.Rows[0][0].I != 20 { // cats 2 and 5
		t.Errorf("nested subquery count = %v, want 20", r.Rows[0][0])
	}
}

func TestInSubqueryAggregateInner(t *testing.T) {
	e := subqueryEngine(t)
	// single max cat from hot = 7 → 10 rows
	r := e.MustExec("SELECT COUNT(*) FROM prod WHERE cat IN (SELECT MAX(cat) FROM hot)")
	if r.Rows[0][0].I != 10 {
		t.Errorf("aggregate subquery count = %v, want 10", r.Rows[0][0])
	}
}

func TestInSubqueryErrors(t *testing.T) {
	e := subqueryEngine(t)
	if _, err := e.Exec("SELECT COUNT(*) FROM prod WHERE cat IN (SELECT cat, cat FROM hot)"); err == nil {
		t.Error("multi-column subquery should fail")
	}
	if _, err := e.Exec("SELECT COUNT(*) FROM prod WHERE cat IN (SELECT prod.cat FROM hot)"); err == nil {
		t.Error("correlated reference should fail (unknown table in subquery scope)")
	}
}

func TestSubqueryBypassesPlanCache(t *testing.T) {
	e := subqueryEngine(t)
	e.Cache = NewPlanCache(3)
	q := "SELECT COUNT(*) FROM prod WHERE cat IN (SELECT cat FROM hot)"
	r1 := e.MustExec(q)
	// Change the subquery's result: cached plans must not freeze it.
	e.MustExec("INSERT INTO hot VALUES (9)")
	r2 := e.MustExec(q)
	if r1.Rows[0][0].I != 30 || r2.Rows[0][0].I != 40 {
		t.Errorf("subquery result frozen: %v then %v", r1.Rows[0][0], r2.Rows[0][0])
	}
	if s := e.Cache.Stats(); s.Hits != 0 {
		t.Errorf("subquery statements must not hit the plan cache: %+v", s)
	}
}

func TestCountDistinct(t *testing.T) {
	e := subqueryEngine(t)
	r := e.MustExec("SELECT COUNT(DISTINCT cat) FROM prod")
	if r.Rows[0][0].I != 10 {
		t.Errorf("COUNT(DISTINCT cat) = %v, want 10", r.Rows[0][0])
	}
	r2 := e.MustExec("SELECT cat, COUNT(DISTINCT price), COUNT(price) FROM prod WHERE cat < 2 GROUP BY cat ORDER BY cat")
	if len(r2.Rows) != 2 {
		t.Fatalf("groups = %d", len(r2.Rows))
	}
	// Each cat has 10 distinct prices here; both counts equal 10.
	if r2.Rows[0][1].I != 10 || r2.Rows[0][2].I != 10 {
		t.Errorf("distinct vs plain count wrong: %v", r2.Rows[0])
	}
	// SUM(DISTINCT) dedups: insert duplicate prices in one category.
	e.MustExec("CREATE TABLE d (g int, v int)")
	e.MustExec("INSERT INTO d VALUES (1, 5), (1, 5), (1, 7)")
	r3 := e.MustExec("SELECT SUM(DISTINCT v), SUM(v), COUNT(DISTINCT v) FROM d")
	if r3.Rows[0][0].AsFloat() != 12 || r3.Rows[0][1].AsFloat() != 17 || r3.Rows[0][2].I != 2 {
		t.Errorf("DISTINCT aggregation wrong: %v", r3.Rows[0])
	}
}

func TestCountDistinctParsedForm(t *testing.T) {
	e := subqueryEngine(t)
	p, err := e.Explain("SELECT COUNT(DISTINCT cat) FROM prod")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "HashAggregate") {
		t.Errorf("plan missing aggregate:\n%s", p)
	}
}
