package core

import (
	"testing"

	"rqp/internal/types"
)

func cacheEngine(t *testing.T) *Engine {
	t.Helper()
	e := Open(DefaultConfig())
	e.Cache = NewPlanCache(3)
	e.MustExec("CREATE TABLE pc (id int, v int)")
	for i := 0; i < 2000; i += 100 {
		stmt := "INSERT INTO pc VALUES "
		for j := i; j < i+100; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += "(" + types.Int(int64(j)).String() + ", " + types.Int(int64(j%50)).String() + ")"
		}
		e.MustExec(stmt)
	}
	e.MustExec("ANALYZE pc")
	return e
}

func TestPlanCacheHitsLiteralQueries(t *testing.T) {
	e := cacheEngine(t)
	q := "SELECT COUNT(*) FROM pc WHERE v = 7"
	want := e.MustExec(q).Rows[0][0].I
	for i := 0; i < 5; i++ {
		if got := e.MustExec(q).Rows[0][0].I; got != want {
			t.Fatalf("cached execution changed results: %d vs %d", got, want)
		}
	}
	s := e.Cache.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Misses)
	}
	if s.Hits < 3 {
		t.Errorf("hits = %d, want >= 3", s.Hits)
	}
	if s.Revalidations == 0 {
		t.Error("revalidations should have fired (every 3rd exec)")
	}
	if e.Cache.Len() != 1 {
		t.Errorf("cache entries = %d", e.Cache.Len())
	}
}

func TestPlanCacheNormalizesText(t *testing.T) {
	e := cacheEngine(t)
	e.MustExec("SELECT COUNT(*) FROM pc WHERE v = 7")
	e.MustExec("select   count(*)   from PC where V = 7")
	s := e.Cache.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("text normalization failed: %+v", s)
	}
}

func TestPlanCacheSkipsParameterizedQueries(t *testing.T) {
	e := cacheEngine(t)
	q := "SELECT COUNT(*) FROM pc WHERE v = ?"
	r1 := e.MustExec(q, types.Int(7))
	r2 := e.MustExec(q, types.Int(8))
	if r1.Rows[0][0].I != 40 || r2.Rows[0][0].I != 40 {
		t.Fatalf("param results wrong: %v %v", r1.Rows, r2.Rows)
	}
	s := e.Cache.Stats()
	if s.Uncacheable != 2 || s.Hits != 0 {
		t.Errorf("parameterized queries must bypass the cache: %+v", s)
	}
}

func TestPlanCacheDetectsPlanChange(t *testing.T) {
	e := cacheEngine(t)
	e.Cache.RevalidateEvery = 1 // revalidate on every reuse
	q := "SELECT v FROM pc WHERE id = 42"
	e.MustExec(q) // seq scan plan cached
	// A new index plus fresh statistics changes the optimal plan; DDL
	// invalidates, so re-prime, then force a revalidation cycle.
	e.MustExec(q)
	before := e.Cache.Stats().PlanChanges
	e.MustExec("CREATE INDEX pc_id ON pc (id)")
	if e.Cache.Len() != 0 {
		t.Fatal("DDL should invalidate the cache")
	}
	e.MustExec("ANALYZE pc")
	e.MustExec(q) // recompiled with the index available
	e.MustExec(q)
	after := e.Cache.Stats()
	if after.Revalidations == 0 {
		t.Error("revalidation expected")
	}
	_ = before // plan-change count is environment-dependent; bookkeeping is the invariant
	if after.PlanChanges < 0 {
		t.Error("negative plan changes")
	}
}

func TestPlanCacheInvalidateOnAnalyze(t *testing.T) {
	e := cacheEngine(t)
	e.MustExec("SELECT COUNT(*) FROM pc WHERE v = 3")
	if e.Cache.Len() != 1 {
		t.Fatal("plan not cached")
	}
	e.MustExec("ANALYZE pc")
	if e.Cache.Len() != 0 {
		t.Error("ANALYZE should invalidate cached plans")
	}
}

func TestPlanCacheDisabledByDefault(t *testing.T) {
	e := Open(DefaultConfig())
	e.MustExec("CREATE TABLE x (a int)")
	e.MustExec("INSERT INTO x VALUES (1)")
	if _, err := e.Exec("SELECT a FROM x"); err != nil {
		t.Fatal(err)
	}
	if e.Cache != nil {
		t.Error("cache should be opt-in")
	}
}
