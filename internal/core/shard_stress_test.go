package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"rqp/internal/exec"
	"rqp/internal/workload"
)

// TestShardedStartOrderStress pins morsel-order output identity against
// shard scheduling: shard goroutines are forced to start in staggered,
// reversed and randomized orders, and every run must produce byte-identical
// rows and the identical simulated cost. Run under -race this also shakes
// out unsynchronized access between the shard goroutines, the routing
// closures and the stats.
func TestShardedStartOrderStress(t *testing.T) {
	wcfg := shardTestCatalog(t, 1.3)
	cat, err := workload.BuildShardJoin(*wcfg)
	if err != nil {
		t.Fatal(err)
	}
	const q = "SELECT pt.k, bt.bval, pt.pval FROM pt, bt WHERE pt.k = bt.k AND bt.bval < 700"

	base := Attach(cat, Config{Policy: PolicyClassic, MemBudgetRows: 1 << 16, HistBuckets: 16})
	w := base.MustExec(q)
	wantRows, wantCost := rowsKey(w), w.Cost

	defer exec.SetShardStartHook(nil)
	rng := rand.New(rand.NewSource(99))
	var mu sync.Mutex
	hooks := []struct {
		name string
		fn   func(shard int)
	}{
		{"staggered", func(shard int) {
			time.Sleep(time.Duration(shard) * 200 * time.Microsecond)
		}},
		{"reversed", func(shard int) {
			time.Sleep(time.Duration(8-shard) * 200 * time.Microsecond)
		}},
		{"randomized", func(shard int) {
			mu.Lock()
			d := time.Duration(rng.Intn(500)) * time.Microsecond
			mu.Unlock()
			time.Sleep(d)
		}},
	}

	iters := 6
	if testing.Short() {
		iters = 2
	}
	for _, h := range hooks {
		exec.SetShardStartHook(h.fn)
		for _, mode := range []string{"repartition", "broadcast"} {
			for _, shards := range []int{2, 4, 8} {
				eng := Attach(cat, Config{Policy: PolicyClassic, MemBudgetRows: 1 << 16,
					HistBuckets: 16, DOP: 2, Shards: shards, ShuffleForce: mode})
				for i := 0; i < iters; i++ {
					got := eng.MustExec(q)
					if rowsKey(got) != wantRows {
						t.Fatalf("%s/%s/shards=%d iter=%d: row order diverged", h.name, mode, shards, i)
					}
					if got.Cost != wantCost {
						t.Fatalf("%s/%s/shards=%d iter=%d: cost %v != %v", h.name, mode, shards, i, got.Cost, wantCost)
					}
				}
			}
		}
	}
}
