package core

import (
	"sort"
	"strings"
	"testing"

	"rqp/internal/types"
	"rqp/internal/wlm"
	"rqp/internal/workload"
)

// TestExplainAnalyzeRendersActuals: EXPLAIN ANALYZE executes the query and
// prints a plan tree with estimated rows, actual rows and per-node q-error.
func TestExplainAnalyzeRendersActuals(t *testing.T) {
	e := newEngine(t)
	r := e.MustExec("EXPLAIN ANALYZE SELECT dept, COUNT(*) FROM emp WHERE salary >= 40000 GROUP BY dept")
	if len(r.Rows) != 0 {
		t.Fatalf("EXPLAIN ANALYZE must not return rows, got %d", len(r.Rows))
	}
	if r.Trace == nil {
		t.Fatal("EXPLAIN ANALYZE must attach a trace")
	}
	for _, want := range []string{"est=", "actual=", "q=", "cost=", "row(s)"} {
		if !strings.Contains(r.Plan, want) {
			t.Fatalf("EXPLAIN ANALYZE output missing %q:\n%s", want, r.Plan)
		}
	}
	// The span tree must mirror an executed plan: multiple indented lines.
	if len(strings.Split(strings.TrimSpace(r.Plan), "\n")) < 3 {
		t.Fatalf("EXPLAIN ANALYZE output suspiciously small:\n%s", r.Plan)
	}
	if r.Cost <= 0 {
		t.Fatal("EXPLAIN ANALYZE must execute (cost > 0)")
	}
	// The JSON dump round-trips.
	if raw, err := r.Trace.JSON(); err != nil || len(raw) == 0 {
		t.Fatalf("trace JSON dump failed: %v", err)
	}
}

// TestExplainAnalyzeRejectsNonSelect: only SELECT can be analyzed.
func TestExplainAnalyzeStillExplainsWithoutExecuting(t *testing.T) {
	e := newEngine(t)
	r := e.MustExec("EXPLAIN SELECT dept FROM emp WHERE dept = 1")
	if strings.Contains(r.Plan, "actual=") {
		t.Fatalf("plain EXPLAIN must not execute:\n%s", r.Plan)
	}
}

// TestTracedPOPRecordsReopts: a traced POP run over the correlation-trap
// star workload records at least one re-optimization event.
func TestTracedPOPRecordsReopts(t *testing.T) {
	sc := workload.DefaultStar()
	sc.FactRows, sc.DimRows, sc.Dim2Rows = 4000, 1200, 500
	cat, err := workload.BuildStar(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Policy = PolicyPOP
	cfg.TraceAll = true
	e := Attach(cat, cfg)

	reopts, reoptEvents, checkEvents := 0, 0, 0
	for _, q := range workload.StarWorkload(sc, 20, 1.0, 7) {
		r, err := e.Exec(q.SQL)
		if err != nil {
			t.Fatalf("pop exec: %v", err)
		}
		if r.Trace == nil {
			t.Fatal("TraceAll must attach a trace")
		}
		reopts += r.Reopts
		reoptEvents += r.Trace.CountEvents("pop.reopt")
		checkEvents += r.Trace.CountEvents("pop.check")
	}
	if reopts < 1 {
		t.Fatal("trapped star workload produced no POP re-optimizations")
	}
	if reoptEvents != reopts {
		t.Fatalf("trace recorded %d pop.reopt events for %d reopts", reoptEvents, reopts)
	}
	if checkEvents < reoptEvents {
		t.Fatalf("checks (%d) < reopts (%d)", checkEvents, reoptEvents)
	}
	// The registry aggregated them too.
	if v := e.Metrics.Counter("rqp_reopts_total").Value(); v != int64(reopts) {
		t.Fatalf("rqp_reopts_total = %d, want %d", v, reopts)
	}
}

// TestMetricsExposition: after a mixed workload the exposition includes
// query counts by policy, the plan-cache hit ratio and a q-error histogram.
func TestMetricsExposition(t *testing.T) {
	e := newEngine(t)
	e.Cache = NewPlanCache(0)
	q := "SELECT dept, COUNT(*) FROM emp GROUP BY dept"
	for i := 0; i < 3; i++ {
		e.MustExec(q)
	}
	out := e.Metrics.Expose()
	for _, want := range []string{
		`rqp_queries_total{policy="classic"} 3`,
		"# TYPE rqp_plan_cache_hit_ratio gauge",
		"# TYPE rqp_qerror histogram",
		"rqp_qerror_bucket",
		"# TYPE rqp_query_cost_units histogram",
		"rqp_plan_cache_hits_total 2",
		"rqp_plan_cache_misses_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Hit ratio after 1 miss + 2 hits.
	if !strings.Contains(out, "rqp_plan_cache_hit_ratio 0.6666666666666666") {
		t.Fatalf("unexpected hit ratio in:\n%s", out)
	}
}

// TestMemOvercommitSurfaces: a sort under a starved memory budget
// overcommits via the progress floor; the registry must count it.
func TestMemOvercommitSurfaces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemBudgetRows = 8 // below the 16-row progress floor
	e := Open(cfg)
	e.MustExec("CREATE TABLE s (a int)")
	for i := 0; i < 100; i++ {
		e.MustExec("INSERT INTO s VALUES (?)", types.Int(int64(99-i)))
	}
	e.MustExec("ANALYZE s")
	r := e.MustExec("SELECT a FROM s ORDER BY a")
	if len(r.Rows) != 100 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if v := e.Metrics.Counter("rqp_mem_overcommit_total").Value(); v < 1 {
		t.Fatal("overcommit under a starved budget was not counted")
	}
	if !strings.Contains(e.Metrics.Expose(), "rqp_mem_overcommit_total") {
		t.Fatal("exposition missing overcommit counter")
	}
}

// TestAdmissionControl: a full MPL gate rejects queries and the registry
// counts both outcomes; EXPLAIN ANALYZE traces the admission decision.
func TestAdmissionControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admission = wlm.NewAdmitter(1)
	e := Open(cfg)
	e.MustExec("CREATE TABLE t (a int)")
	e.MustExec("INSERT INTO t VALUES (1), (2), (3)")
	e.MustExec("ANALYZE t")

	r := e.MustExec("EXPLAIN ANALYZE SELECT a FROM t")
	if r.Trace.CountEvents("wlm.admission") != 1 {
		t.Fatal("admission decision not traced")
	}

	// Hold the only slot: the next query must be rejected.
	cfg.Admission.TryAdmit()
	if _, err := e.Exec("SELECT a FROM t"); err == nil || !strings.Contains(err.Error(), "admission rejected") {
		t.Fatalf("expected admission rejection, got %v", err)
	}
	cfg.Admission.Done()
	if _, err := e.Exec("SELECT a FROM t"); err != nil {
		t.Fatalf("after release, query must run: %v", err)
	}
	if e.Metrics.Counter("rqp_wlm_rejected_total").Value() != 1 {
		t.Fatal("rejection not counted")
	}
	if e.Metrics.Counter("rqp_wlm_admitted_total").Value() < 2 {
		t.Fatal("admissions not counted")
	}
}

// TestTraceMemEvents: a traced query whose sort takes memory grants logs
// mem.grant/mem.release events.
func TestTraceMemEvents(t *testing.T) {
	e := newEngine(t)
	r := e.MustExec("EXPLAIN ANALYZE SELECT salary FROM emp ORDER BY salary")
	if r.Trace.CountEvents("mem.grant") < 1 {
		t.Fatal("no mem.grant events traced")
	}
	if r.Trace.CountEvents("mem.release") < 1 {
		t.Fatal("no mem.release events traced")
	}
}

// spillEngine builds an engine whose join build side dwarfs the configured
// memory budget. budget <= 0 means unlimited.
func spillEngine(t *testing.T, budget, dop int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	if budget > 0 {
		cfg.MemBudgetRows = budget
	}
	cfg.DOP = dop
	e := Open(cfg)
	e.MustExec("CREATE TABLE bld (k int, v int)")
	e.MustExec("CREATE TABLE prb (k int, w int)")
	for i := 0; i < 800; i++ {
		e.MustExec("INSERT INTO bld VALUES (?, ?)", types.Int(int64(i%130)), types.Int(int64(i)))
	}
	for i := 0; i < 400; i++ {
		e.MustExec("INSERT INTO prb VALUES (?, ?)", types.Int(int64(i%130)), types.Int(int64(i)))
	}
	e.MustExec("ANALYZE bld")
	e.MustExec("ANALYZE prb")
	return e
}

func sortedRowText(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestExplainAnalyzeShowsSpill: a hash join whose build side is ~8x the
// memory budget spills, stays correct against an unlimited-budget run at
// DOP 1 and 4, and EXPLAIN ANALYZE surfaces the partitions and recursion
// depth in its event log.
func TestExplainAnalyzeShowsSpill(t *testing.T) {
	const q = "SELECT bld.v, prb.w FROM bld JOIN prb ON bld.k = prb.k"
	want := sortedRowText(spillEngine(t, 0, 1).MustExec(q).Rows)
	for _, dop := range []int{1, 4} {
		e := spillEngine(t, 100, dop) // build side 800 rows: ~8x the budget
		got := sortedRowText(e.MustExec(q).Rows)
		if len(got) != len(want) {
			t.Fatalf("dop=%d: %d rows under pressure, want %d", dop, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("dop=%d: row %d = %q, want %q", dop, i, got[i], want[i])
			}
		}
		r := e.MustExec("EXPLAIN ANALYZE " + q)
		if r.Trace.CountEvents("spill.partition") < 1 {
			t.Fatalf("dop=%d: no spill.partition events traced", dop)
		}
		if !strings.Contains(r.Plan, "spill.partition") || !strings.Contains(r.Plan, "depth=") {
			t.Fatalf("dop=%d: EXPLAIN ANALYZE output missing spill events:\n%s", dop, r.Plan)
		}
		if e.Metrics.Counter("rqp_spill_partitions_total").Value() < 1 {
			t.Fatalf("dop=%d: spill partitions not counted in registry", dop)
		}
		if !strings.Contains(e.Metrics.Expose(), "rqp_spill_pages_written_total") {
			t.Fatalf("dop=%d: exposition missing spill counters", dop)
		}
	}
}

// TestMemScheduleInjection: a declining memory schedule shrinks the budget
// between grants mid-query; results stay identical to the unlimited run.
func TestMemScheduleInjection(t *testing.T) {
	const q = "SELECT bld.k, COUNT(*), SUM(bld.v) FROM bld JOIN prb ON bld.k = prb.k GROUP BY bld.k"
	want := sortedRowText(spillEngine(t, 0, 1).MustExec(q).Rows)
	e := spillEngine(t, 0, 1)
	e.Cfg.MemSchedule = wlm.DecliningMemory(2048, 48, 6)
	got := sortedRowText(e.MustExec(q).Rows)
	if len(got) != len(want) {
		t.Fatalf("%d rows under shrinking budget, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestMemPoolAttachesQueries: with admission and a memory pool configured,
// each admitted query's broker is attached to the pool and the share is
// traced.
func TestMemPoolAttachesQueries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admission = wlm.NewAdmitter(4)
	cfg.MemPoolRows = 500
	e := Open(cfg)
	e.MustExec("CREATE TABLE t (a int)")
	e.MustExec("INSERT INTO t VALUES (1), (2), (3)")
	e.MustExec("ANALYZE t")
	r := e.MustExec("EXPLAIN ANALYZE SELECT a FROM t ORDER BY a")
	if r.Trace.CountEvents("wlm.mem") != 1 {
		t.Fatal("memory pool attach not traced")
	}
	found := false
	for _, ev := range r.Trace.Events() {
		if ev.Kind == "wlm.mem" && strings.Contains(ev.Detail, "pool=500 share=500") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wlm.mem event missing pool/share detail: %v", r.Trace.Events())
	}
}
