package core

import (
	"fmt"

	"rqp/internal/sql"
	"rqp/internal/types"
)

// maxSubqueryDepth bounds IN-subquery nesting.
const maxSubqueryDepth = 4

// expandSubqueries rewrites every `expr IN (SELECT ...)` in the statement by
// executing the (uncorrelated) subquery and substituting its result as a
// literal list — the classic "late binding" decomposition. Correlated
// subqueries (referencing outer relations) fail inside the subquery's own
// binding with an unknown-column error, which is the correct diagnostic.
func (e *Engine) expandSubqueries(sel *sql.SelectStmt, params []types.Value, depth int) (bool, error) {
	if depth > maxSubqueryDepth {
		return false, fmt.Errorf("core: subqueries nested deeper than %d", maxSubqueryDepth)
	}
	expanded := false
	rewrite := func(x sql.Expr) (sql.Expr, error) {
		out, did, err := e.rewriteExpr(x, params, depth)
		expanded = expanded || did
		return out, err
	}
	var err error
	if sel.Where != nil {
		if sel.Where, err = rewrite(sel.Where); err != nil {
			return false, err
		}
	}
	if sel.Having != nil {
		if sel.Having, err = rewrite(sel.Having); err != nil {
			return false, err
		}
	}
	for i := range sel.Joins {
		if sel.Joins[i].On, err = rewrite(sel.Joins[i].On); err != nil {
			return false, err
		}
	}
	return expanded, nil
}

func (e *Engine) rewriteExpr(x sql.Expr, params []types.Value, depth int) (sql.Expr, bool, error) {
	switch n := x.(type) {
	case *sql.InExpr:
		inner, did, err := e.rewriteExpr(n.E, params, depth)
		if err != nil {
			return nil, false, err
		}
		if n.Sub == nil {
			anyDid := did
			list := make([]sql.Expr, len(n.List))
			for i, item := range n.List {
				var d bool
				if list[i], d, err = e.rewriteExpr(item, params, depth); err != nil {
					return nil, false, err
				}
				anyDid = anyDid || d
			}
			return &sql.InExpr{E: inner, List: list, Neg: n.Neg}, anyDid, nil
		}
		res, err := e.runSubquery(n.Sub, params, depth+1)
		if err != nil {
			return nil, false, err
		}
		return &sql.InExpr{E: inner, List: res, Neg: n.Neg}, true, nil
	case *sql.BinExpr:
		l, d1, err := e.rewriteExpr(n.L, params, depth)
		if err != nil {
			return nil, false, err
		}
		r, d2, err := e.rewriteExpr(n.R, params, depth)
		if err != nil {
			return nil, false, err
		}
		return &sql.BinExpr{Op: n.Op, L: l, R: r}, d1 || d2, nil
	case *sql.UnExpr:
		inner, did, err := e.rewriteExpr(n.E, params, depth)
		if err != nil {
			return nil, false, err
		}
		return &sql.UnExpr{Op: n.Op, E: inner}, did, nil
	case *sql.BetweenExpr:
		inner, d1, err := e.rewriteExpr(n.E, params, depth)
		if err != nil {
			return nil, false, err
		}
		lo, d2, err := e.rewriteExpr(n.Lo, params, depth)
		if err != nil {
			return nil, false, err
		}
		hi, d3, err := e.rewriteExpr(n.Hi, params, depth)
		if err != nil {
			return nil, false, err
		}
		return &sql.BetweenExpr{E: inner, Lo: lo, Hi: hi, Neg: n.Neg}, d1 || d2 || d3, nil
	case *sql.IsNullExpr:
		inner, did, err := e.rewriteExpr(n.E, params, depth)
		if err != nil {
			return nil, false, err
		}
		return &sql.IsNullExpr{E: inner, Neg: n.Neg}, did, nil
	case *sql.LikeExpr:
		inner, did, err := e.rewriteExpr(n.E, params, depth)
		if err != nil {
			return nil, false, err
		}
		return &sql.LikeExpr{E: inner, Pattern: n.Pattern, Neg: n.Neg}, did, nil
	default:
		return x, false, nil
	}
}

// runSubquery executes an IN-subquery and returns its single output column
// as literal expressions.
func (e *Engine) runSubquery(sub *sql.SelectStmt, params []types.Value, depth int) ([]sql.Expr, error) {
	res, err := e.runSelectDepth(sub, "", params, false, depth)
	if err != nil {
		return nil, fmt.Errorf("core: IN subquery: %w", err)
	}
	if len(res.Columns) != 1 {
		return nil, fmt.Errorf("core: IN subquery must return one column, got %d", len(res.Columns))
	}
	out := make([]sql.Expr, 0, len(res.Rows))
	for _, row := range res.Rows {
		lit, err := valueToAST(row[0])
		if err != nil {
			return nil, err
		}
		out = append(out, lit)
	}
	return out, nil
}

func valueToAST(v types.Value) (sql.Expr, error) {
	switch v.K {
	case types.KindNull:
		return &sql.Lit{Kind: "null"}, nil
	case types.KindInt:
		return &sql.Lit{Kind: "int", Text: fmt.Sprintf("%d", v.I)}, nil
	case types.KindFloat:
		return &sql.Lit{Kind: "float", Text: fmt.Sprintf("%g", v.F)}, nil
	case types.KindString:
		return &sql.Lit{Kind: "string", Text: v.S}, nil
	case types.KindBool:
		return &sql.Lit{Kind: "bool", Bool: v.IsTrue()}, nil
	case types.KindDate:
		return &sql.FuncExpr{Name: "DATE", Args: []sql.Expr{
			&sql.Lit{Kind: "int", Text: fmt.Sprintf("%d", v.I)},
		}}, nil
	}
	return nil, fmt.Errorf("core: cannot lift value %s into SQL", v)
}
