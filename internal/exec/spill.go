package exec

import (
	"fmt"
	"sort"
	"sync"

	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// Graceful degradation under memory pressure: when the broker's grant does
// not cover an operator's build/state, the operator partitions its input by
// key hash into a fixed fan-out, keeps a prefix of partitions resident, and
// spills the rest to storage.TempRun partitions that are processed
// recursively once the probe/input side is exhausted. The partition
// function depends only on the key hash and the recursion depth — never on
// the grant — so a larger budget keeps a superset of partitions resident
// and the cost curve degrades monotonically as memory shrinks (the property
// the memory-axis robustness maps assert). At maxSpillDepth a partition
// that still does not fit falls back to external sort-merge, which works in
// streaming fashion for any size.
const (
	// maxSpillDepth bounds recursive repartitioning; beyond it the
	// sort-merge fallback takes over (duplicate-key skew cannot be split by
	// rehashing, no matter how deep).
	maxSpillDepth = 3
	// maxSpillFanout caps the per-level partition count.
	maxSpillFanout = 32
	// aggSpillFanout is the fixed fan-out for aggregation input spills (the
	// input size is unknown when spilling starts, so a size-derived fan-out
	// is not available).
	aggSpillFanout = 8
)

// spillFanout picks the partition count for a build of n rows: roughly one
// page per partition, clamped to [2, maxSpillFanout]. Deliberately
// independent of the grant so partition contents are identical across
// budgets.
func spillFanout(n int) int {
	f := (n + storage.PageRows - 1) / storage.PageRows
	if f < 2 {
		f = 2
	}
	if f > maxSpillFanout {
		f = maxSpillFanout
	}
	return f
}

// spillPartOf maps a key hash to a partition. The depth salt re-mixes the
// hash so recursive repartitioning splits a partition along fresh
// boundaries instead of reproducing it whole.
func spillPartOf(h uint64, depth, fanout int) int {
	h ^= uint64(depth+1) * 0x9e3779b97f4a7c15
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(fanout))
}

// SpillStats aggregates one query's graceful-degradation activity across
// every spilling operator (hash join, hash aggregation, external sort) —
// the raw numbers behind EXPLAIN ANALYZE spill events, the spill metrics
// and the memory-sweep robustness maps.
type SpillStats struct {
	mu             sync.Mutex
	partitions     int // partitions written to temp runs
	rows           int // rows written to temp runs
	pages          int // pages written to temp runs
	maxDepth       int // deepest recursion level that spilled
	mergeFallbacks int // partitions that fell back to sort-merge
}

func (s *SpillStats) record(partitions, rows, pages, depth int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.partitions += partitions
	s.rows += rows
	s.pages += pages
	if depth > s.maxDepth {
		s.maxDepth = depth
	}
	s.mu.Unlock()
}

func (s *SpillStats) fallback() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.mergeFallbacks++
	s.mu.Unlock()
}

// Snapshot returns (partitions, rows, pages, maxDepth, mergeFallbacks).
func (s *SpillStats) Snapshot() (partitions, rows, pages, maxDepth, fallbacks int) {
	if s == nil {
		return 0, 0, 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partitions, s.rows, s.pages, s.maxDepth, s.mergeFallbacks
}

// spillEvent records a spill trace event (visible in EXPLAIN ANALYZE).
func (ctx *Context) spillEvent(kind, format string, args ...any) {
	if ctx.Trace != nil {
		ctx.Trace.Event(kind, fmt.Sprintf(format, args...))
	}
}

// ---------- partitioned (grace/hybrid) hash join ----------

// spillJoin is the shared spill core of the hash join, delegated to by the
// row-at-a-time, vectorized and morsel-parallel operators alike so the
// three paths stay charge- and result-identical under pressure. The caller
// drains the build side, obtains a grant, and constructs a spillJoin when
// the build exceeds it; probe rows whose partition is resident are answered
// immediately (preserving the streaming probe order), the rest are deferred
// to probe runs and joined when finish replays the spilled partitions.
type spillJoin struct {
	ctx      *Context
	node     *plan.JoinNode
	depth    int
	fanout   int
	rWidth   int
	table    map[uint64][]types.Row // resident partitions' build rows
	resident []bool
	bruns    []*storage.TempRun // spilled build partitions
	pruns    []*storage.TempRun // deferred probe rows, same partitioning
}

// newSpillJoin partitions the drained build side under the given grant
// (already obtained — and kept — by the caller). Build rows must be owned
// by the caller (drain clones them).
func newSpillJoin(ctx *Context, node *plan.JoinNode, build []types.Row, grant, rWidth, depth int) *spillJoin {
	s := &spillJoin{
		ctx:    ctx,
		node:   node,
		depth:  depth,
		fanout: spillFanout(len(build)),
		rWidth: rWidth,
	}
	parts := make([][]types.Row, s.fanout)
	for _, r := range build {
		k := keyOf(r, node.RightKeys)
		if keyHasNull(k) {
			continue // a null key matches nothing on either join type
		}
		p := spillPartOf(types.HashRow(k), depth, s.fanout)
		parts[p] = append(parts[p], r)
	}
	// Keep the longest prefix of partitions that fits the grant resident;
	// spill the rest. Residency depends on the grant only through this
	// cutoff, so a bigger budget spills a subset of the partitions a smaller
	// one does (monotone degradation).
	s.resident = make([]bool, s.fanout)
	s.bruns = make([]*storage.TempRun, s.fanout)
	s.pruns = make([]*storage.TempRun, s.fanout)
	s.table = map[uint64][]types.Row{}
	residentRows, spilledParts, spilledRows, spilledPages := 0, 0, 0, 0
	for p, rows := range parts {
		if residentRows+len(rows) <= grant {
			s.resident[p] = true
			residentRows += len(rows)
			for _, r := range rows {
				ctx.Clock.Probes(2) // insert costs double a probe (see cost model)
				h := types.HashRow(keyOf(r, node.RightKeys))
				s.table[h] = append(s.table[h], r)
			}
			continue
		}
		run := storage.NewTempRun()
		for _, r := range rows {
			run.Append(ctx.Clock, r)
		}
		s.bruns[p] = run
		s.pruns[p] = storage.NewTempRun()
		spilledParts++
		spilledRows += run.Len()
		spilledPages += run.Pages()
	}
	ctx.Spill.record(spilledParts, spilledRows, spilledPages, depth)
	ctx.spillEvent("spill.partition", "%s depth=%d fanout=%d resident=%d/%d spilled_rows=%d pages=%d grant=%d",
		node.Label(), depth, s.fanout, s.fanout-spilledParts, s.fanout, spilledRows, spilledPages, grant)
	return s
}

// probe answers one probe row with a non-null key: if its partition is
// resident it returns the hash bucket to match against (the caller applies
// key equality, residual and outer semantics exactly as in memory); if the
// partition spilled, the row is deferred to its probe run and handled by
// finish. The caller charges its per-probe-row cost itself; deferral
// charges only the page writes.
func (s *spillJoin) probe(lr types.Row, key []types.Value) (bucket []types.Row, deferred bool) {
	h := types.HashRow(key)
	p := spillPartOf(h, s.depth, s.fanout)
	if s.resident[p] {
		return s.table[h], false
	}
	run := s.pruns[p]
	pagesBefore := run.Pages()
	run.Append(s.ctx.Clock, lr.Clone())
	s.ctx.Spill.record(0, 1, run.Pages()-pagesBefore, s.depth)
	return nil, true
}

// finish replays the spilled partition pairs in partition order, handing
// every joined (and, for left-outer, null-extended) output row to emit.
// Partitions with no deferred probe rows are discarded unread — no probe
// row can match them (and left-outer null extension concerns only probe
// rows, which were all answered or deferred).
func (s *spillJoin) finish(emit func(types.Row) error) error {
	for p := 0; p < s.fanout; p++ {
		if s.resident[p] {
			continue
		}
		if s.pruns[p].Len() == 0 {
			s.bruns[p].Discard()
			continue
		}
		build := s.bruns[p].Drain(s.ctx.Clock)
		probe := s.pruns[p].Drain(s.ctx.Clock)
		if err := joinPartition(s.ctx, s.node, build, probe, s.rWidth, s.depth+1, emit); err != nil {
			return err
		}
	}
	return nil
}

// close frees the resident table and any remaining runs. The caller owns
// (and releases) the grant backing the resident table.
func (s *spillJoin) close() {
	s.table = nil
	for p := range s.bruns {
		if s.bruns[p] != nil {
			s.bruns[p].Discard()
		}
		if s.pruns[p] != nil {
			s.pruns[p].Discard()
		}
	}
	s.bruns, s.pruns = nil, nil
}

// joinPartition joins one spilled (build, probe) partition pair: in memory
// when the grant covers the build, by recursive repartitioning otherwise,
// and by external sort-merge once the recursion bound is hit. Charges
// mirror the in-memory hash join exactly (insert = 2 probes per build row,
// 1 probe per probe row, 1 row of CPU per emitted row) plus the temp-run
// I/O charged where rows actually move.
func joinPartition(ctx *Context, node *plan.JoinNode, build, probe []types.Row, rWidth, depth int, emit func(types.Row) error) error {
	grant := ctx.Mem.Grant(len(build))
	defer ctx.Mem.Release(grant)
	if len(build) <= grant {
		table := make(map[uint64][]types.Row, len(build))
		for _, r := range build {
			ctx.Clock.Probes(2)
			k := keyOf(r, node.RightKeys)
			if keyHasNull(k) {
				continue
			}
			h := types.HashRow(k)
			table[h] = append(table[h], r)
		}
		for _, lr := range probe {
			ctx.Clock.Probes(1)
			k := keyOf(lr, node.LeftKeys)
			matched := false
			if !keyHasNull(k) {
				for _, cand := range table[types.HashRow(k)] {
					if !keysEqual(k, keyOf(cand, node.RightKeys)) {
						continue
					}
					out, ok, err := emitJoined(ctx.Clock, ctx.Params, node, lr, cand)
					if err != nil {
						return err
					}
					if ok {
						matched = true
						if err := emit(out); err != nil {
							return err
						}
					}
				}
			}
			if node.Type == plan.LeftOuter && !matched {
				ctx.Clock.RowWork(1)
				if err := emit(types.Concat(lr, nullRow(rWidth))); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if depth > maxSpillDepth {
		return mergeJoinSpilled(ctx, node, build, probe, rWidth, emit)
	}
	sub := newSpillJoin(ctx, node, build, grant, rWidth, depth)
	defer sub.close()
	for _, lr := range probe {
		ctx.Clock.Probes(1)
		k := keyOf(lr, node.LeftKeys)
		matched := false
		if !keyHasNull(k) {
			bucket, deferred := sub.probe(lr, k)
			if deferred {
				continue // outer semantics resolve inside the recursion
			}
			for _, cand := range bucket {
				if !keysEqual(k, keyOf(cand, node.RightKeys)) {
					continue
				}
				out, ok, err := emitJoined(ctx.Clock, ctx.Params, node, lr, cand)
				if err != nil {
					return err
				}
				if ok {
					matched = true
					if err := emit(out); err != nil {
						return err
					}
				}
			}
		}
		if node.Type == plan.LeftOuter && !matched {
			ctx.Clock.RowWork(1)
			if err := emit(types.Concat(lr, nullRow(rWidth))); err != nil {
				return err
			}
		}
	}
	return sub.finish(emit)
}

// mergeJoinSpilled is the external sort-merge fallback for a partition that
// will not fit even after maxSpillDepth repartitionings (duplicate-key
// skew). Both sides sort in grant-sized runs (comparisons charged like
// sortRows, one write+read pass over both sides for the runs), then merge
// in streaming fashion with left-outer support. A duplicate-key group on
// the build side is buffered during the merge, as in the in-memory merge
// join.
func mergeJoinSpilled(ctx *Context, node *plan.JoinNode, build, probe []types.Row, rWidth int, emit func(types.Row) error) error {
	ctx.Spill.fallback()
	ctx.spillEvent("spill.merge_fallback", "%s build=%d probe=%d", node.Label(), len(build), len(probe))
	pages := (len(build)+storage.PageRows-1)/storage.PageRows +
		(len(probe)+storage.PageRows-1)/storage.PageRows
	ctx.Clock.Write(pages)
	ctx.Clock.SeqRead(pages)
	sortRows(ctx, probe, node.LeftKeys)
	sortRows(ctx, build, node.RightKeys)
	ri := 0
	var group []types.Row
	for _, lr := range probe {
		lk := keyOf(lr, node.LeftKeys)
		matched := false
		if !keyHasNull(lk) {
			for ri < len(build) {
				ctx.Clock.Compares(1)
				rk := keyOf(build[ri], node.RightKeys)
				if keyHasNull(rk) || compareKeys(rk, lk) < 0 {
					ri++
					continue
				}
				break
			}
			group = group[:0]
			for k := ri; k < len(build); k++ {
				ctx.Clock.Compares(1)
				if compareKeys(keyOf(build[k], node.RightKeys), lk) != 0 {
					break
				}
				group = append(group, build[k])
			}
			for _, cand := range group {
				out, ok, err := emitJoined(ctx.Clock, ctx.Params, node, lr, cand)
				if err != nil {
					return err
				}
				if ok {
					matched = true
					if err := emit(out); err != nil {
						return err
					}
				}
			}
		}
		if node.Type == plan.LeftOuter && !matched {
			ctx.Clock.RowWork(1)
			if err := emit(types.Concat(lr, nullRow(rWidth))); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------- spilling hash aggregation ----------

// aggSink is the shared grouping state of the serial and vectorized hash
// aggregations: resident groups up to the broker's grant, input rows for
// groups beyond it spilled to hash partitions that finish re-aggregates
// recursively. Both paths feed rows in the same (serial) input order, so
// the trigger point, the partition contents and every charge are identical
// between them. A group is either entirely resident or entirely spilled:
// rows of a key seen before the table filled keep accumulating in place.
type aggSink struct {
	ctx      *Context
	node     *plan.AggNode
	depth    int
	grant    int
	part     *aggPartial
	runs     []*storage.TempRun
	spilling bool
}

// newAggSink obtains a group-state grant from the broker (asking for the
// whole budget, like the external sort) and prepares the resident table.
func newAggSink(ctx *Context, node *plan.AggNode, depth int) *aggSink {
	return &aggSink{
		ctx:   ctx,
		node:  node,
		depth: depth,
		grant: ctx.Mem.Grant(1 << 20),
		part:  newAggPartial(),
	}
}

// add routes one input row: accumulate into its (existing or newly created)
// resident group, or spill the row to its key partition when the resident
// table is full and the key is new. accum folds the row into a group — the
// caller chooses interpreted or compiled accumulation. The caller charges
// its per-input-row probe itself. r must remain valid until accum returns;
// spilled rows are cloned.
func (s *aggSink) add(key []types.Value, r types.Row, accum func(*group) error) error {
	h := types.HashRow(key)
	for _, cand := range s.part.groups[h] {
		if rowsEqual(cand.key, key) {
			return accum(cand)
		}
	}
	if len(s.part.order) < s.grant {
		g := &group{key: append([]types.Value(nil), key...), states: make([]aggState, len(s.node.Aggs))}
		s.part.groups[h] = append(s.part.groups[h], g)
		s.part.order = append(s.part.order, g)
		return accum(g)
	}
	if !s.spilling {
		s.spilling = true
		s.runs = make([]*storage.TempRun, aggSpillFanout)
		for p := range s.runs {
			s.runs[p] = storage.NewTempRun()
		}
		s.ctx.Spill.record(aggSpillFanout, 0, 0, s.depth)
		s.ctx.spillEvent("spill.agg", "%s depth=%d resident_groups=%d fanout=%d grant=%d",
			s.node.Label(), s.depth, len(s.part.order), aggSpillFanout, s.grant)
	}
	p := spillPartOf(h, s.depth, aggSpillFanout)
	run := s.runs[p]
	pagesBefore := run.Pages()
	run.Append(s.ctx.Clock, r.Clone())
	s.ctx.Spill.record(0, 1, run.Pages()-pagesBefore, s.depth)
	return nil
}

// finish releases the group-state grant and re-aggregates the spilled
// partitions: recursively through a sub-sink while depth remains, by
// sort-and-stream beyond it (sorting on the group key lets groups complete
// one at a time in O(1) group state — the aggregation analogue of the
// sort-merge join fallback). Returns every group, resident first, then
// partition by partition; callers sort groups on the key afterwards, so
// output order is independent of the spill pattern.
func (s *aggSink) finish() ([]*group, error) {
	out := s.part.order
	s.ctx.Mem.Release(s.grant)
	s.grant = 0
	if !s.spilling {
		return out, nil
	}
	for _, run := range s.runs {
		if run.Len() == 0 {
			continue
		}
		rows := run.Drain(s.ctx.Clock)
		if s.depth+1 > maxSpillDepth {
			gs, err := s.sortedAggregate(rows)
			if err != nil {
				return nil, err
			}
			out = append(out, gs...)
			continue
		}
		sub := newAggSink(s.ctx, s.node, s.depth+1)
		key := make([]types.Value, len(s.node.GroupExprs))
		for _, r := range rows {
			s.ctx.Clock.Probes(1) // the re-aggregation probe
			if err := s.evalKey(key, r); err != nil {
				return nil, err
			}
			if err := sub.add(key, r, func(g *group) error {
				return accumGroup(g, s.node, r, s.ctx.Params)
			}); err != nil {
				return nil, err
			}
		}
		gs, err := sub.finish()
		if err != nil {
			return nil, err
		}
		out = append(out, gs...)
	}
	s.runs = nil
	return out, nil
}

// evalKey fills key with r's group expressions (interpreted — the compiled
// forms are bit-identical, so recursion may always use the interpreter).
func (s *aggSink) evalKey(key []types.Value, r types.Row) error {
	for i, ge := range s.node.GroupExprs {
		v, err := ge.Eval(r, s.ctx.Params)
		if err != nil {
			return err
		}
		key[i] = v
	}
	return nil
}

// sortedAggregate is the fallback for a partition still too large at the
// recursion bound: sort the rows on the group key (comparisons charged like
// any sort), then stream-aggregate with one comparison per row — group
// state never exceeds one group regardless of partition size.
func (s *aggSink) sortedAggregate(rows []types.Row) ([]*group, error) {
	s.ctx.Spill.fallback()
	s.ctx.spillEvent("spill.merge_fallback", "%s rows=%d", s.node.Label(), len(rows))
	keys := make([][]types.Value, len(rows))
	for i, r := range rows {
		k := make([]types.Value, len(s.node.GroupExprs))
		if err := s.evalKey(k, r); err != nil {
			return nil, err
		}
		keys[i] = k
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	n := len(rows)
	if n > 1 {
		s.ctx.Clock.Compares(int(float64(n) * log2(float64(n))))
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return compareKeys(keys[idx[a]], keys[idx[b]]) < 0
	})
	var out []*group
	var cur *group
	for _, i := range idx {
		s.ctx.Clock.Compares(1)
		if cur == nil || !rowsEqual(cur.key, keys[i]) {
			cur = &group{key: keys[i], states: make([]aggState, len(s.node.Aggs))}
			out = append(out, cur)
		}
		if err := accumGroup(cur, s.node, rows[i], s.ctx.Params); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// close discards any remaining runs and returns the grant (finish normally
// does both; close covers error paths).
func (s *aggSink) close() {
	if s.grant > 0 {
		s.ctx.Mem.Release(s.grant)
		s.grant = 0
	}
	for _, run := range s.runs {
		if run != nil {
			run.Discard()
		}
	}
	s.runs = nil
}
