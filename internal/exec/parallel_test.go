package exec

import (
	"math/rand"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// buildParallelCatalog creates integer tables sized well past a page so
// scans split into many morsels. pa and pb carry NULL join keys (which must
// never match); integer data keeps SUM/AVG merges exact, so parallel
// results can be compared to serial byte for byte.
func buildParallelCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	cat := catalog.New()
	mk := func(name string, rows int, mod int64, nullEvery int) {
		tb, err := cat.CreateTable(name, types.Schema{
			{Name: "k", Kind: types.KindInt},
			{Name: "g", Kind: types.KindInt},
			{Name: "v", Kind: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			k := types.Int(rng.Int63n(mod))
			if nullEvery > 0 && i%nullEvery == 0 {
				k = types.Null()
			}
			cat.Insert(nil, tb, types.Row{k, types.Int(int64(i % 7)), types.Int(int64(i))})
		}
		cat.AnalyzeTable(tb, 8)
	}
	mk("pa", 1200, 40, 17)
	mk("pb", 700, 40, 13)
	mk("pc", 300, 40, 0)
	return cat
}

// parallelQueries covers the morsel-driven repertoire: plain and filtered
// scans, two- and three-way hash joins, left outer join, global and grouped
// aggregation, DISTINCT and AVG.
var parallelQueries = []string{
	`SELECT pa.v FROM pa WHERE pa.v < 600`,
	`SELECT pa.v, pb.v FROM pa, pb WHERE pa.k = pb.k`,
	`SELECT pa.v, pb.v, pc.v FROM pa, pb, pc WHERE pa.k = pb.k AND pb.k = pc.k AND pc.v < 200`,
	`SELECT COUNT(*) FROM pa, pb WHERE pa.k = pb.k`,
	`SELECT pa.g, COUNT(*), SUM(pa.v), MIN(pa.v), MAX(pa.v) FROM pa GROUP BY pa.g`,
	`SELECT pa.g, COUNT(DISTINCT pa.k) FROM pa GROUP BY pa.g`,
	`SELECT AVG(pa.v) FROM pa`,
	`SELECT pa.v, pb.v FROM pa LEFT JOIN pb ON pa.k = pb.k`,
	`SELECT pb.g, COUNT(*) FROM pa, pb WHERE pa.k = pb.k GROUP BY pb.g`,
}

// parallelPlanFor optimizes q and forces every join and aggregation onto
// the hash algorithms, so serial and parallel runs execute the same plan
// shape and the morsel operators (which cover hash join and hash agg) see
// every query.
func parallelPlanFor(t testing.TB, cat *catalog.Catalog, q string) plan.Node {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	o := opt.New(cat)
	root, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	plan.Walk(root, func(n plan.Node) {
		switch v := n.(type) {
		case *plan.JoinNode:
			v.Alg = plan.JoinHash
		case *plan.AggNode:
			v.Alg = plan.AggHash
		}
	})
	return root
}

func rowsJoined(rows []types.Row) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// TestParallelMatchesSerial is the tentpole property: for every repertoire
// query, parallel execution at DOP 1, 2 and 8 must return the exact row
// sequence of the serial run (not just the same set — the exchange
// preserves order) AND consume exactly the same simulated cost, because
// the morsel operators issue the same multiset of clock charges.
func TestParallelMatchesSerial(t *testing.T) {
	cat := buildParallelCatalog(t)
	for _, q := range parallelQueries {
		root := parallelPlanFor(t, cat, q)
		sctx := NewContext()
		want, err := Run(root, sctx)
		if err != nil {
			t.Fatalf("%q serial: %v", q, err)
		}
		wantCost := sctx.Clock.Units()
		wantStr := rowsJoined(want)
		for _, d := range []int{1, 2, 8} {
			r2 := parallelPlanFor(t, cat, q)
			marked := plan.MarkParallel(r2, 1)
			if marked == 0 {
				t.Fatalf("%q: MarkParallel marked nothing", q)
			}
			ctx := NewContext()
			ctx.DOP = d
			got, err := Run(r2, ctx)
			if err != nil {
				t.Fatalf("%q dop=%d: %v", q, d, err)
			}
			if gs := rowsJoined(got); gs != wantStr {
				t.Errorf("%q dop=%d: %d rows diverge from serial %d rows", q, d, len(got), len(want))
			}
			if c := ctx.Clock.Units(); c != wantCost {
				t.Errorf("%q dop=%d: cost %v != serial cost %v", q, d, c, wantCost)
			}
		}
	}
}

// TestParallelDeterminism re-runs every query at DOP 8 and demands
// byte-identical output each time: worker interleaving must never leak
// into results.
func TestParallelDeterminism(t *testing.T) {
	cat := buildParallelCatalog(t)
	for _, q := range parallelQueries {
		var ref string
		for trial := 0; trial < 3; trial++ {
			root := parallelPlanFor(t, cat, q)
			plan.MarkParallel(root, 1)
			ctx := NewContext()
			ctx.DOP = 8
			rows, err := Run(root, ctx)
			if err != nil {
				t.Fatalf("%q trial %d: %v", q, trial, err)
			}
			got := rowsJoined(rows)
			if trial == 0 {
				ref = got
			} else if got != ref {
				t.Errorf("%q trial %d: output differs from trial 0", q, trial)
			}
		}
	}
}

// TestParallelActualRows checks that fused scans still report their
// observed cardinality (the raw input of every robustness metric) even
// though no standalone scan operator runs.
func TestParallelActualRows(t *testing.T) {
	cat := buildParallelCatalog(t)
	q := `SELECT COUNT(*) FROM pa, pb WHERE pa.k = pb.k`
	root := parallelPlanFor(t, cat, q)
	plan.MarkParallel(root, 1)
	ctx := NewContext()
	ctx.DOP = 4
	if _, err := Run(root, ctx); err != nil {
		t.Fatal(err)
	}
	plan.Walk(root, func(n plan.Node) {
		if sc, ok := n.(*plan.ScanNode); ok {
			if sc.Prop.ActualRows < 0 {
				t.Errorf("scan %s: ActualRows unset after parallel run", sc.Label())
			}
		}
	})
}

// TestMarkParallelFloor: tables below the row floor stay serial, and
// re-marking a plan is idempotent.
func TestMarkParallelFloor(t *testing.T) {
	cat := buildParallelCatalog(t)
	root := parallelPlanFor(t, cat, `SELECT pc.v FROM pc WHERE pc.v < 100`)
	if got := plan.MarkParallel(root, 1_000_000); got != 0 {
		t.Errorf("MarkParallel above table size marked %d nodes, want 0", got)
	}
	first := plan.MarkParallel(root, 1)
	second := plan.MarkParallel(root, 1)
	if first == 0 || first != second {
		t.Errorf("MarkParallel not idempotent: first=%d second=%d", first, second)
	}
}
