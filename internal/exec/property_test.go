package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/expr"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// The end-to-end correctness property: for randomly generated queries, the
// optimizer+executor must produce exactly the rows a brute-force reference
// evaluator produces — under every estimation mode, with and without
// indexes, and under severe memory pressure. The reference shares only the
// binder and the expression evaluator (both unit-tested independently); the
// optimizer, all join algorithms, scans and spills are the code under test.

func propertyDB(t *testing.T, rng *rand.Rand) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	t1, err := cat.CreateTable("t1", types.Schema{
		{Name: "a", Kind: types.KindInt},
		{Name: "b", Kind: types.KindInt},
		{Name: "c", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		row := types.Row{types.Int(rng.Int63n(20)), types.Int(rng.Int63n(10)), types.Int(rng.Int63n(50))}
		if rng.Intn(20) == 0 {
			row[2] = types.Null()
		}
		cat.Insert(nil, t1, row)
	}
	t2, err := cat.CreateTable("t2", types.Schema{
		{Name: "d", Kind: types.KindInt},
		{Name: "e", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		cat.Insert(nil, t2, types.Row{types.Int(int64(i % 20)), types.Int(rng.Int63n(5))})
	}
	cat.AnalyzeTable(t1, 8)
	cat.AnalyzeTable(t2, 8)
	return cat
}

// randomQuery generates SQL over t1 (and sometimes t2 with a join).
func randomQuery(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("SELECT t1.a, t1.c")
	join := rng.Intn(2) == 0
	if join {
		sb.WriteString(", t2.e FROM t1, t2 WHERE t1.a = t2.d")
	} else {
		sb.WriteString(" FROM t1 WHERE t1.a >= 0")
	}
	// Random extra conjuncts.
	preds := []func() string{
		func() string { return fmt.Sprintf("t1.b %s %d", cmpOp(rng), rng.Int63n(10)) },
		func() string { return fmt.Sprintf("t1.c %s %d", cmpOp(rng), rng.Int63n(50)) },
		func() string {
			return fmt.Sprintf("t1.a IN (%d, %d, %d)", rng.Int63n(20), rng.Int63n(20), rng.Int63n(20))
		},
		func() string { return fmt.Sprintf("t1.c BETWEEN %d AND %d", rng.Int63n(25), 25+rng.Int63n(25)) },
		func() string { return fmt.Sprintf("NOT (t1.b = %d)", rng.Int63n(10)) },
		func() string { return "t1.c IS NOT NULL" },
	}
	n := rng.Intn(3)
	for i := 0; i < n; i++ {
		sb.WriteString(" AND ")
		sb.WriteString(preds[rng.Intn(len(preds))]())
	}
	return sb.String()
}

func cmpOp(rng *rand.Rand) string {
	return []string{"=", "<>", "<", "<=", ">", ">="}[rng.Intn(6)]
}

// referenceRows evaluates the bound query by brute force.
func referenceRows(t *testing.T, bq *plan.Query) []string {
	t.Helper()
	var rels [][]types.Row
	for _, r := range bq.Rels {
		var rows []types.Row
		r.Table.Heap.Scan(nil, func(_ storage.RID, row types.Row) bool {
			rows = append(rows, row)
			return true
		})
		rels = append(rels, rows)
	}
	pred := expr.AndAll(bq.Conjuncts)
	var out []string
	var rec func(i int, acc types.Row)
	rec = func(i int, acc types.Row) {
		if i == len(rels) {
			if pred != nil {
				ok, err := expr.EvalPredicate(pred, acc, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					return
				}
			}
			proj := make([]string, len(bq.Projections))
			for pi, p := range bq.Projections {
				v, err := p.Eval(acc, nil)
				if err != nil {
					t.Fatal(err)
				}
				proj[pi] = v.String()
			}
			out = append(out, strings.Join(proj, ","))
			return
		}
		for _, row := range rels[i] {
			rec(i+1, types.Concat(acc, row))
		}
	}
	rec(0, nil)
	sort.Strings(out)
	return out
}

func engineRows(t *testing.T, o *opt.Optimizer, bq *plan.Query, memBudget int) []string {
	t.Helper()
	root, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	ctx := NewContext()
	if memBudget > 0 {
		ctx.Mem = NewMemBroker(memBudget)
	}
	rows, err := Run(root, ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		vals := make([]string, len(r))
		for j, v := range r {
			vals[j] = v.String()
		}
		out[i] = strings.Join(vals, ",")
	}
	sort.Strings(out)
	return out
}

func TestPropertyEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	cat := propertyDB(t, rng)
	configs := []struct {
		name string
		mod  func(*opt.Optimizer)
	}{
		{"classic", func(*opt.Optimizer) {}},
		{"percentile", func(o *opt.Optimizer) { o.Opt.Mode = opt.Percentile }},
		{"correlated", func(o *opt.Optimizer) { o.Opt.Mode = opt.Correlated }},
		{"gjoin-only", func(o *opt.Optimizer) { o.Opt.GJoinOnly = true }},
		{"tiny-memory", func(o *opt.Optimizer) { o.Opt.MemBudgetRows = 8 }},
		{"bushy", func(o *opt.Optimizer) { o.Opt.BushyJoins = true }},
	}
	for trial := 0; trial < 60; trial++ {
		q := randomQuery(rng)
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("generated unparsable SQL %q: %v", q, err)
		}
		bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
		if err != nil {
			t.Fatalf("bind %q: %v", q, err)
		}
		want := referenceRows(t, bq)
		for _, cfg := range configs {
			o := opt.New(cat)
			cfg.mod(o)
			mem := 0
			if cfg.name == "tiny-memory" {
				mem = 8
			}
			bq2, _ := plan.Bind(st.(*sql.SelectStmt), cat)
			got := engineRows(t, o, bq2, mem)
			if len(got) != len(want) || strings.Join(got, ";") != strings.Join(want, ";") {
				t.Fatalf("config %s diverges from reference on %q: got %d rows, want %d",
					cfg.name, q, len(got), len(want))
			}
		}
	}
}

// TestPropertyIndexPathsMatchReference repeats the property with indexes in
// place, which flips many plans to index scans and index-NL joins.
func TestPropertyIndexPathsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cat := propertyDB(t, rng)
	if _, err := cat.CreateIndex(nil, "t1", "t1_a", []string{"a"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex(nil, "t1", "t1_c", []string{"c"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex(nil, "t2", "t2_d", []string{"d"}, false); err != nil {
		t.Fatal(err)
	}
	t1, _ := cat.Table("t1")
	t2, _ := cat.Table("t2")
	cat.AnalyzeTable(t1, 8)
	cat.AnalyzeTable(t2, 8)
	sawIndexPlan := false
	for trial := 0; trial < 60; trial++ {
		q := randomQuery(rng)
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceRows(t, bq)
		o := opt.New(cat)
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(plan.PlanSignature(root), "Index") {
			sawIndexPlan = true
		}
		ctx := NewContext()
		rows, err := Run(root, ctx)
		if err != nil {
			t.Fatalf("run %q: %v", q, err)
		}
		got := make([]string, len(rows))
		for i, r := range rows {
			vals := make([]string, len(r))
			for j, v := range r {
				vals[j] = v.String()
			}
			got[i] = strings.Join(vals, ",")
		}
		sort.Strings(got)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Fatalf("indexed plan diverges on %q (plan %s): got %d want %d rows",
				q, plan.PlanSignature(root), len(got), len(want))
		}
		// Forced index plans must agree too.
		rootIdx, err := o.OptimizeForceIndex(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(plan.PlanSignature(rootIdx), "Index") {
			sawIndexPlan = true
		}
		rows2, err := Run(rootIdx, NewContext())
		if err != nil {
			t.Fatalf("forced index run %q: %v", q, err)
		}
		if len(rows2) != len(want) {
			t.Fatalf("forced index plan diverges on %q: got %d want %d", q, len(rows2), len(want))
		}
	}
	if !sawIndexPlan {
		t.Error("no trial used an index plan; test lost its teeth")
	}
}
