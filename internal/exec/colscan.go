package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rqp/internal/expr"
	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// Columnar scan execution. All three variants — row-at-a-time (colScan),
// vectorized (batchColScan) and morsel-parallel (scanMorsel's columnar
// branch) — share one block core, colScanner.scanBlock, so they issue the
// identical multiset of clock charges per block:
//
//	ZoneCheck(1)       per consulted pruning source (each pushed col⋈const
//	                   conjunct in order, then each enabled bounded runtime
//	                   filter), short-circuiting on the first prune;
//	SeqRead(span)      per referenced column of a surviving block;
//	FilterTest(units)  per pushed conjunct, where units is the block's
//	                   encoded evaluation work (run count for RLE blocks);
//	rf admission + RowWork(1) per row surviving the encoded filters, with
//	                   the residual predicate folded into that charge.
//
// A skipped block charges nothing beyond its zone checks, which is where the
// columnar speedup at low selectivity comes from.
type colScanner struct {
	ctx  *Context
	node *plan.ScanNode
	cs   *storage.ColumnStore
	rf   *rfConsumer

	need        []int       // columns to decode, always non-nil and sorted
	pushed      []pushedCmp // col ⋈ const conjuncts evaluated on encoded blocks
	alwaysFalse bool        // a conjunct compares against NULL: nothing matches
	residual    expr.Expr   // conjuncts that could not be pushed
	resPred     *expr.Pred  // compiled residual (vectorized runs)
}

// pushedCmp is one col ⋈ const conjunct lowered onto the column store.
type pushedCmp struct {
	col int
	op  storage.CmpOp
	v   types.Value
}

// colScannerFor builds the shared columnar scan core for a scan node, or
// returns nil when the node is not columnar or the table's snapshot has been
// invalidated by DML since planning (callers then fall back to the heap,
// which is always correct). The returned scanner is read-only after
// construction and safe for concurrent scanBlock calls.
func colScannerFor(ctx *Context, node *plan.ScanNode, rf *rfConsumer) *colScanner {
	if !node.Columnar {
		return nil
	}
	cs := node.Table.Col()
	if cs == nil {
		return nil
	}
	c := &colScanner{ctx: ctx, node: node, cs: cs, rf: rf}
	var rest []expr.Expr
	for _, cj := range expr.Conjuncts(node.Filter) {
		col, op, v, ok := expr.SplitColConst(cj, ctx.Params)
		if ok && col >= 0 && col < cs.NumCols() {
			if v.IsNull() {
				// col ⋈ NULL is never true, so the conjunction — and with it
				// the whole scan — is empty.
				c.alwaysFalse = true
				continue
			}
			if cop, ok2 := storageCmpOp(op); ok2 {
				c.pushed = append(c.pushed, pushedCmp{col: col, op: cop, v: v})
				continue
			}
		}
		rest = append(rest, cj)
	}
	c.residual = expr.AndAll(rest)
	c.resPred = compilePred(ctx, c.residual)
	if node.NeedCols != nil {
		c.need = node.NeedCols
	} else {
		c.need = make([]int, cs.NumCols())
		for i := range c.need {
			c.need[i] = i
		}
	}
	return c
}

// storageCmpOp maps an expression comparison operator onto the storage
// layer's CmpOp.
func storageCmpOp(op expr.Op) (storage.CmpOp, bool) {
	switch op {
	case expr.OpEQ:
		return storage.CmpEQ, true
	case expr.OpNE:
		return storage.CmpNE, true
	case expr.OpLT:
		return storage.CmpLT, true
	case expr.OpLE:
		return storage.CmpLE, true
	case expr.OpGT:
		return storage.CmpGT, true
	case expr.OpGE:
		return storage.CmpGE, true
	}
	return 0, false
}

// scanGeometry returns the morsel count and heap page count for a scan:
// columnar scans use one morsel per column block (pages are irrelevant —
// I/O is charged per block inside scanBlock), heap scans one morsel per
// MorselPages pages. col is the scan's columnar core (nil for heap scans),
// resolved once by the caller so geometry and execution agree on the same
// snapshot.
func scanGeometry(node *plan.ScanNode, col *colScanner) (nmorsels, npages int) {
	if col != nil {
		return col.cs.NumBlocks(), 0
	}
	np := node.Table.Heap.NumPages()
	return morselCount(np, MorselPages), np
}

// skip records one pruned block: the metrics counter, and a trace event when
// tracing is on.
func (c *colScanner) skip(b int, why string) {
	atomic.AddInt64(&c.ctx.ColBlocksSkipped, 1)
	if c.ctx.Trace != nil {
		c.ctx.Trace.Event("columnar.skip", fmt.Sprintf("block=%d cause=%s", b, why))
	}
}

// scanBlock processes block b, charging clk per the contract above and
// handing surviving rows to emit. Emitted rows are freshly materialized
// (never reused), so callers may buffer them without cloning. Safe for
// concurrent use across blocks: all per-call scratch is pooled or local.
func (c *colScanner) scanBlock(b int, clk *storage.Clock, emit func(types.Row) error) error {
	if c.alwaysFalse {
		clk.ZoneChecks(1)
		c.skip(b, "const")
		return nil
	}
	for i := range c.pushed {
		p := &c.pushed[i]
		clk.ZoneChecks(1)
		if c.cs.ZonePrune(p.col, b, p.op, p.v) {
			c.skip(b, "zone")
			return nil
		}
	}
	if c.rf != nil {
		for i, f := range c.rf.filters {
			if !f.enabled() || !f.bounded {
				continue
			}
			clk.ZoneChecks(1)
			zmin, zmax, ok := c.cs.Zone(c.rf.cols[i], b)
			if !ok || types.Compare(zmax, f.min) < 0 || types.Compare(zmin, f.max) > 0 {
				c.skip(b, "rf")
				return nil
			}
		}
	}
	nrows := c.cs.BlockRows(b)
	for _, col := range c.need {
		clk.SeqRead(c.cs.PageSpan(col, b))
	}
	keep := getColKeep(nrows)
	defer putColKeep(keep)
	for i := range c.pushed {
		p := &c.pushed[i]
		clk.FilterTestsBatch(c.cs.EvalUnits(p.col, b))
		c.cs.EvalBlock(p.col, b, p.op, p.v, keep)
	}
	atomic.AddInt64(&c.ctx.ColBlocksScanned, 1)
	if c.ctx.Trace != nil {
		c.ctx.Trace.Event("columnar.decode", fmt.Sprintf("block=%d rows=%d cols=%d", b, nrows, len(c.need)))
	}
	survivors := 0
	for _, k := range keep {
		if k {
			survivors++
		}
	}
	if survivors == 0 {
		return nil
	}
	bufs := make([][]types.Value, len(c.need))
	for i, col := range c.need {
		bufs[i] = getColVals(nrows)
		c.cs.Decode(col, b, bufs[i])
	}
	defer func() {
		for _, buf := range bufs {
			putColVals(buf)
		}
	}()
	w := c.cs.NumCols()
	slab := make([]types.Value, survivors*w)
	if len(c.need) < w {
		// Unreferenced columns stay NULL — safe exactly because MarkColumnRefs
		// proved nothing above the scan reads them.
		nullv := types.Null()
		for i := range slab {
			slab[i] = nullv
		}
	}
	off := 0
	for i := 0; i < nrows; i++ {
		if !keep[i] {
			continue
		}
		row := types.Row(slab[off : off+w : off+w])
		off += w
		for j, col := range c.need {
			row[col] = bufs[j][i]
		}
		// Runtime-filter rejects pay only the membership test, never the full
		// per-row charge — same admission order as the heap scans.
		if c.rf != nil && !c.rf.admit(clk, row) {
			continue
		}
		clk.RowWork(1)
		if c.residual != nil {
			var ok bool
			var err error
			if c.resPred != nil {
				ok, err = c.resPred.Eval(row, c.ctx.Params)
			} else {
				ok, err = expr.EvalPredicate(c.residual, row, c.ctx.Params)
			}
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}

// ---------- scratch pools ----------

var colKeepPool = sync.Pool{New: func() any { return []bool(nil) }}

func getColKeep(n int) []bool {
	s, _ := colKeepPool.Get().([]bool)
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = true
	}
	return s
}

func putColKeep(s []bool) { colKeepPool.Put(s[:0]) } //nolint:staticcheck // slice header boxing is fine here

var colValsPool = sync.Pool{New: func() any { return []types.Value(nil) }}

func getColVals(n int) []types.Value {
	s, _ := colValsPool.Get().([]types.Value)
	if cap(s) < n {
		s = make([]types.Value, n)
	}
	return s[:n]
}

func putColVals(s []types.Value) {
	s = s[:cap(s)]
	clear(s) // don't let pooled memory pin decoded strings
	colValsPool.Put(s[:0])
}

// ---------- row variant ----------

// colScan is the row-at-a-time columnar scan: it drains one block at a time
// through the shared core into a buffer, mirroring seqScan's page-refill
// shape. When the columnar snapshot vanished between planning and Open (DML
// on a cached plan), it degrades to a plain heap scan — correct results,
// heap charges.
type colScan struct {
	ctx   *Context
	node  *plan.ScanNode
	sc    *colScanner
	heap  *seqScan // fallback when the snapshot is gone
	block int
	buf   []types.Row
	pos   int
}

func (s *colScan) Open() error {
	rf := bindRuntimeFilters(s.ctx, s.node.RFConsume)
	if sc := colScannerFor(s.ctx, s.node, rf); sc != nil {
		s.sc = sc
		s.heap = nil
		s.block = 0
		s.buf = s.buf[:0]
		s.pos = 0
		return nil
	}
	s.heap = &seqScan{ctx: s.ctx, node: s.node}
	return s.heap.Open()
}

func (s *colScan) Next() (types.Row, bool, error) {
	if s.heap != nil {
		return s.heap.Next()
	}
	for {
		if s.pos < len(s.buf) {
			r := s.buf[s.pos]
			s.pos++
			return r, true, nil
		}
		if s.block >= s.sc.cs.NumBlocks() {
			return nil, false, nil
		}
		s.buf = s.buf[:0]
		s.pos = 0
		b := s.block
		s.block++
		err := s.sc.scanBlock(b, s.ctx.Clock, func(r types.Row) error {
			s.buf = append(s.buf, r)
			return nil
		})
		if err != nil {
			return nil, false, err
		}
	}
}

func (s *colScan) Close() error {
	if s.heap != nil {
		return s.heap.Close()
	}
	s.buf = nil
	return nil
}

// ---------- batch variant ----------

// batchColScan is the vectorized columnar scan. A block (~4K rows) exceeds
// BatchRows, so each decoded block drains across several NextBatch calls in
// BatchRows chunks. Charges are issued per block inside the shared core —
// the identical multiset to colScan, which is what keeps row and vectorized
// columnar runs cost-identical.
type batchColScan struct {
	ctx   *Context
	node  *plan.ScanNode
	sc    *colScanner
	heap  *batchSeqScan // fallback when the snapshot is gone
	block int
	buf   []types.Row
	pos   int
}

func (s *batchColScan) Open() error {
	rf := bindRuntimeFilters(s.ctx, s.node.RFConsume)
	if sc := colScannerFor(s.ctx, s.node, rf); sc != nil {
		s.sc = sc
		s.heap = nil
		s.block = 0
		s.buf = s.buf[:0]
		s.pos = 0
		return nil
	}
	s.heap = &batchSeqScan{ctx: s.ctx, node: s.node}
	return s.heap.Open()
}

func (s *batchColScan) NextBatch(b *Batch) (int, error) {
	if s.heap != nil {
		return s.heap.NextBatch(b)
	}
	for {
		if s.pos < len(s.buf) {
			end := s.pos + BatchRows
			if end > len(s.buf) {
				end = len(s.buf)
			}
			b.Rows = append(b.Rows[:0], s.buf[s.pos:end]...)
			b.Sel = identitySel(b.Sel, len(b.Rows))
			s.pos = end
			return len(b.Rows), nil
		}
		if s.block >= s.sc.cs.NumBlocks() {
			return 0, nil
		}
		s.buf = s.buf[:0]
		s.pos = 0
		blk := s.block
		s.block++
		err := s.sc.scanBlock(blk, s.ctx.Clock, func(r types.Row) error {
			s.buf = append(s.buf, r)
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
}

func (s *batchColScan) Close() error {
	if s.heap != nil {
		return s.heap.Close()
	}
	s.buf = nil
	return nil
}
