package exec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/expr"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// Grouped-query property: random GROUP BY queries must match a brute-force
// reference that groups with a map and folds aggregates directly. This
// covers the aggregation pipeline (hash agg, DISTINCT dedup, HAVING,
// ordering) end to end.

func aggPropertyDB(t *testing.T, rng *rand.Rand) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tb, err := cat.CreateTable("g", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "v", Kind: types.KindInt},
		{Name: "w", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		row := types.Row{
			types.Int(rng.Int63n(8)),
			types.Int(rng.Int63n(30)),
			types.Int(rng.Int63n(5)),
		}
		if rng.Intn(15) == 0 {
			row[1] = types.Null()
		}
		cat.Insert(nil, tb, row)
	}
	cat.AnalyzeTable(tb, 8)
	return cat
}

type refGroup struct {
	count     int64
	countV    int64
	sumV      float64
	minV      float64
	maxV      float64
	seen      bool
	distinctV map[int64]bool
}

// refAggregate computes the reference result for:
// SELECT k, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), COUNT(DISTINCT v)
// FROM g WHERE <filter> GROUP BY k
func refAggregate(t *testing.T, cat *catalog.Catalog, filter expr.Expr) map[int64]*refGroup {
	t.Helper()
	tb, _ := cat.Table("g")
	groups := map[int64]*refGroup{}
	var err error
	tb.Heap.Scan(nil, func(_ storage.RID, r types.Row) bool {
		if filter != nil {
			ok, e2 := expr.EvalPredicate(filter, r, nil)
			if e2 != nil {
				err = e2
				return false
			}
			if !ok {
				return true
			}
		}
		k := r[0].I
		g := groups[k]
		if g == nil {
			g = &refGroup{distinctV: map[int64]bool{}}
			groups[k] = g
		}
		g.count++
		if !r[1].IsNull() {
			g.countV++
			v := r[1].AsFloat()
			g.sumV += v
			if !g.seen || v < g.minV {
				g.minV = v
			}
			if !g.seen || v > g.maxV {
				g.maxV = v
			}
			g.seen = true
			g.distinctV[r[1].I] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

func TestPropertyGroupedAggregatesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	cat := aggPropertyDB(t, rng)
	o := opt.New(cat)
	for trial := 0; trial < 40; trial++ {
		// Random filter on w (and sometimes v).
		var filterSQL string
		var filterExpr expr.Expr
		switch rng.Intn(3) {
		case 0:
			c := rng.Int63n(5)
			filterSQL = fmt.Sprintf(" WHERE w < %d", c)
			filterExpr = &expr.Bin{Op: expr.OpLT,
				L: &expr.Col{Index: 2, Typ: types.KindInt}, R: &expr.Const{V: types.Int(c)}}
		case 1:
			c := rng.Int63n(30)
			filterSQL = fmt.Sprintf(" WHERE v >= %d", c)
			filterExpr = &expr.Bin{Op: expr.OpGE,
				L: &expr.Col{Index: 1, Typ: types.KindInt}, R: &expr.Const{V: types.Int(c)}}
		}
		q := "SELECT k, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), COUNT(DISTINCT v) FROM g" +
			filterSQL + " GROUP BY k ORDER BY k"
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
		if err != nil {
			t.Fatal(err)
		}
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Run(root, NewContext())
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		want := refAggregate(t, cat, filterExpr)
		if len(rows) != len(want) {
			t.Fatalf("%q: %d groups, want %d", q, len(rows), len(want))
		}
		var keys []int64
		for k := range want {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i, k := range keys {
			r := rows[i]
			g := want[k]
			if r[0].I != k || r[1].I != g.count || r[2].I != g.countV {
				t.Fatalf("%q group %d counts wrong: %v (want k=%d n=%d nv=%d)", q, k, r, k, g.count, g.countV)
			}
			if g.countV > 0 {
				if math.Abs(r[3].AsFloat()-g.sumV) > 1e-9 {
					t.Fatalf("%q group %d SUM=%v want %v", q, k, r[3], g.sumV)
				}
				if r[4].AsFloat() != g.minV || r[5].AsFloat() != g.maxV {
					t.Fatalf("%q group %d MIN/MAX wrong: %v", q, k, r)
				}
			} else if !r[3].IsNull() || !r[4].IsNull() || !r[5].IsNull() {
				t.Fatalf("%q group %d all-null aggregates should be NULL: %v", q, k, r)
			}
			if r[6].I != int64(len(g.distinctV)) {
				t.Fatalf("%q group %d COUNT(DISTINCT)=%v want %d", q, k, r[6], len(g.distinctV))
			}
		}
	}
}

// TestPropertyHavingMatchesPostFilter: HAVING must equal filtering the full
// grouped result.
func TestPropertyHavingMatchesPostFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	cat := aggPropertyDB(t, rng)
	o := opt.New(cat)
	for trial := 0; trial < 20; trial++ {
		threshold := 10 + rng.Int63n(60)
		full := "SELECT k, COUNT(*) FROM g GROUP BY k ORDER BY k"
		having := fmt.Sprintf("SELECT k, COUNT(*) FROM g GROUP BY k HAVING COUNT(*) > %d ORDER BY k", threshold)
		runQ := func(q string) []types.Row {
			st, _ := sql.Parse(q)
			bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
			if err != nil {
				t.Fatal(err)
			}
			root, err := o.Optimize(bq, nil)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := Run(root, NewContext())
			if err != nil {
				t.Fatal(err)
			}
			return rows
		}
		all := runQ(full)
		got := runQ(having)
		var want []string
		for _, r := range all {
			if r[1].I > threshold {
				want = append(want, r.String())
			}
		}
		var gotS []string
		for _, r := range got {
			gotS = append(gotS, r.String())
		}
		if strings.Join(want, ";") != strings.Join(gotS, ";") {
			t.Fatalf("HAVING > %d diverges: got %v want %v", threshold, gotS, want)
		}
	}
}
