package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// colTestBlock keeps blocks small so a 2000-row table has enough of them
// for zone-map skipping and morsel scheduling to be exercised for real.
const colTestBlock = 128

// colTestCatalog builds fact (clustered ints, wide rle runs, dictionary
// strings, a NULL-bearing raw column) and dim (join partner), analyzed and
// with columnar snapshots attached.
func colTestCatalog(t *testing.T, factRows, dimRows int, rng *rand.Rand) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	f, err := cat.CreateTable("fact", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "grp", Kind: types.KindInt},
		{Name: "s", Kind: types.KindString},
		{Name: "nn", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < factRows; i++ {
		nn := types.Int(rng.Int63n(50))
		if rng.Intn(6) == 0 {
			nn = types.Null()
		}
		cat.Insert(nil, f, types.Row{
			types.Int(int64(i)),
			types.Int(int64(i*16/factRows) * 1000000),
			types.Str(fmt.Sprintf("g%02d", i*20/factRows)),
			nn,
		})
	}
	d, err := cat.CreateTable("dim", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "w", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dimRows; i++ {
		cat.Insert(nil, d, types.Row{types.Int(int64(i * factRows / dimRows)), types.Int(int64(i % 5))})
	}
	cat.AnalyzeTable(f, 8)
	cat.AnalyzeTable(d, 8)
	cat.BuildColumnar(f, colTestBlock)
	cat.BuildColumnar(d, colTestBlock)
	return cat
}

// colMkPlan parses, binds and optimizes q, forces hash joins, and when
// columnar is set flips every scan to the columnar path and narrows the
// decoded column set exactly as the engine does.
func colMkPlan(t *testing.T, cat *catalog.Catalog, q string, columnar bool) plan.Node {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatalf("bind %q: %v", q, err)
	}
	root, err := opt.New(cat).Optimize(bq, nil)
	if err != nil {
		t.Fatalf("optimize %q: %v", q, err)
	}
	plan.Walk(root, func(n plan.Node) {
		if j, ok := n.(*plan.JoinNode); ok {
			j.Alg = plan.JoinHash
		}
		if s, ok := n.(*plan.ScanNode); ok {
			s.Columnar = columnar
		}
	})
	if columnar {
		plan.MarkColumnRefs(root)
	}
	return root
}

func colRun(t *testing.T, root plan.Node, dop, mem int, vec, rf bool) (float64, []string, *Context) {
	t.Helper()
	ctx := NewContext()
	ctx.Vec = vec
	if dop > 1 {
		ctx.DOP = dop
	}
	if mem > 0 {
		ctx.Mem = NewMemBroker(mem)
	}
	if rf {
		ctx.RF = NewRuntimeFilterSet(nil)
	}
	rows, err := Run(root, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		vals := make([]string, len(r))
		for j, v := range r {
			vals[j] = v.String()
		}
		out[i] = strings.Join(vals, ",")
	}
	sort.Strings(out)
	return ctx.Clock.Units(), out, ctx
}

// TestColumnarMatchesHeapEverywhere is the tentpole's result-equivalence
// property: for randomized predicates over every encoding (packed, rle,
// dict, NULL-bearing raw), the columnar path must return byte-identical
// rows to the heap path across row/vec execution, DOP 1/2/8, and memory
// budgets — including join queries where runtime filters prune at block
// granularity.
func TestColumnarMatchesHeapEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cat := colTestCatalog(t, 2000, 200, rng)

	queries := []string{
		"SELECT fact.k, fact.s FROM fact WHERE fact.k < 130",
		"SELECT fact.k, fact.grp FROM fact WHERE fact.grp <= 3000000",
		"SELECT fact.k FROM fact WHERE fact.s = 'g07'",
		"SELECT fact.k, fact.nn FROM fact WHERE fact.nn >= 25",
		"SELECT fact.k FROM fact WHERE fact.k >= 500 AND fact.s < 'g15' AND fact.nn <> 7",
		"SELECT fact.k, fact.s, fact.nn FROM fact WHERE fact.grp = 999",
		"SELECT fact.k, dim.w FROM fact, dim WHERE fact.k = dim.k AND fact.grp < 9000000",
	}
	configs := []struct {
		name string
		dop  int
		vec  bool
	}{
		{"row", 1, false},
		{"vec", 1, true},
		{"dop2", 2, false},
		{"dop8", 8, false},
	}
	for _, q := range queries {
		isJoin := strings.Contains(q, "dim")
		for _, mem := range []int{0, 48} {
			for _, cfg := range configs {
				ref := colMkPlan(t, cat, q, false)
				if cfg.dop > 1 {
					plan.MarkParallel(ref, 1)
				}
				if cfg.vec {
					plan.MarkVectorized(ref)
				}
				_, want, _ := colRun(t, ref, cfg.dop, mem, cfg.vec, false)

				root := colMkPlan(t, cat, q, true)
				if cfg.dop > 1 {
					plan.MarkParallel(root, 1)
				}
				if cfg.vec {
					plan.MarkVectorized(root)
				}
				rf := false
				if isJoin {
					rf = plan.PlanRuntimeFilters(root) > 0
				}
				_, got, ctx := colRun(t, root, cfg.dop, mem, cfg.vec, rf)
				if strings.Join(got, ";") != strings.Join(want, ";") {
					t.Fatalf("%s mem=%d diverges on %q: got %d rows, want %d",
						cfg.name, mem, q, len(got), len(want))
				}
				if len(want) > 0 && len(want) < 1500 && ctx.ColBlocksSkipped == 0 && ctx.ColBlocksScanned == 0 {
					t.Fatalf("%s mem=%d on %q: columnar path never engaged", cfg.name, mem, q)
				}
			}
		}
	}
}

// TestColumnarCostParityAcrossVariants is the cost-identity property: the
// columnar scan must charge the exact same simulated units on the row and
// vectorized paths and at every DOP — the per-block charge multiset is
// identical, so shard-merged clocks telescope to the serial total.
func TestColumnarCostParityAcrossVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cat := colTestCatalog(t, 2000, 200, rng)

	for _, q := range []string{
		"SELECT fact.k, fact.s FROM fact WHERE fact.k < 700",
		"SELECT fact.k, fact.nn FROM fact WHERE fact.nn >= 10 AND fact.grp <= 12000000",
		"SELECT fact.k FROM fact WHERE fact.s = 'g03'",
	} {
		rowUnits, rowRows, _ := colRun(t, colMkPlan(t, cat, q, true), 1, 0, false, false)

		vecPlan := colMkPlan(t, cat, q, true)
		plan.MarkVectorized(vecPlan)
		vecUnits, vecRows, _ := colRun(t, vecPlan, 1, 0, true, false)
		if strings.Join(rowRows, ";") != strings.Join(vecRows, ";") {
			t.Fatalf("row/vec results diverge on %q", q)
		}
		if rowUnits != vecUnits {
			t.Fatalf("row/vec cost parity broken on %q: %v vs %v", q, rowUnits, vecUnits)
		}

		for _, dop := range []int{2, 8} {
			p := colMkPlan(t, cat, q, true)
			plan.MarkParallel(p, 1)
			units, rows, _ := colRun(t, p, dop, 0, false, false)
			if strings.Join(rowRows, ";") != strings.Join(rows, ";") {
				t.Fatalf("dop %d results diverge on %q", dop, q)
			}
			if units != rowUnits {
				t.Fatalf("dop %d cost parity broken on %q: %v vs serial %v", dop, q, units, rowUnits)
			}
		}
	}
}

// TestColumnarCostParityWithRuntimeFilterDisable pins the hardest parity
// case: a non-selective runtime filter that disables itself mid-query.
// Row and vectorized columnar scans must make the disable decision at the
// same row and end with identical cost.
func TestColumnarCostParityWithRuntimeFilterDisable(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	// dim holds (nearly) every fact key: drop rate ~0, disable fires.
	cat := colTestCatalog(t, 2000, 1900, rng)
	q := "SELECT fact.k, dim.w FROM fact, dim WHERE fact.k = dim.k"

	mk := func() plan.Node {
		root := colMkPlan(t, cat, q, true)
		if n := plan.PlanRuntimeFilters(root); n != 1 {
			t.Fatalf("planted %d runtime filters, want 1", n)
		}
		return root
	}
	rowUnits, rowRows, rowCtx := colRun(t, mk(), 1, 0, false, true)
	vecPlan := mk()
	plan.MarkVectorized(vecPlan)
	vecUnits, vecRows, _ := colRun(t, vecPlan, 1, 0, true, true)

	if strings.Join(rowRows, ";") != strings.Join(vecRows, ";") {
		t.Fatal("row/vec results diverge with runtime filter")
	}
	if rowUnits != vecUnits {
		t.Fatalf("cost parity broken with mid-query disable: row %v vs vec %v", rowUnits, vecUnits)
	}
	if _, tested, _, disabled := rowCtx.RF.Snapshot(); tested == 0 || disabled != 1 {
		t.Fatalf("filter did not disable mid-query: tested=%d disabled=%d", tested, disabled)
	}

	// And unfiltered results agree.
	_, baseRows, _ := colRun(t, colMkPlan(t, cat, q, true), 1, 0, false, false)
	if strings.Join(baseRows, ";") != strings.Join(rowRows, ";") {
		t.Fatal("runtime filter changed columnar results")
	}
}

// TestColumnarOptimizerChoosesColScan: with Options.Columnar on and a
// columnar snapshot present, a selective pushable predicate must make the
// optimizer pick the ColScan access path and credit the zone-map savings
// into the plan's estimated cost.
func TestColumnarOptimizerChoosesColScan(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cat := colTestCatalog(t, 2000, 200, rng)

	optimize := func(q string, columnar bool) plan.Node {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
		if err != nil {
			t.Fatal(err)
		}
		o := opt.New(cat)
		o.Opt.Columnar = columnar
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		return root
	}
	q := "SELECT fact.k FROM fact WHERE fact.k < 100"
	var colScans, seqScans int
	var colCost, seqCost float64
	plan.Walk(optimize(q, true), func(n plan.Node) {
		if s, ok := n.(*plan.ScanNode); ok && s.Columnar {
			colScans++
			colCost = s.Prop.EstCost
		}
	})
	plan.Walk(optimize(q, false), func(n plan.Node) {
		if s, ok := n.(*plan.ScanNode); ok && !s.Columnar {
			seqScans++
			seqCost = s.Prop.EstCost
		}
	})
	if colScans != 1 || seqScans != 1 {
		t.Fatalf("colScans=%d seqScans=%d, want 1 and 1", colScans, seqScans)
	}
	if colCost <= 0 || colCost >= seqCost {
		t.Fatalf("ColScan estimate %v not credited below SeqScan estimate %v", colCost, seqCost)
	}
}

// TestColumnarFallbackAfterDML: DML invalidates the snapshot between
// planning and execution; the scan must fall back to the heap and still
// see the new row.
func TestColumnarFallbackAfterDML(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	cat := colTestCatalog(t, 500, 50, rng)
	q := "SELECT fact.k FROM fact WHERE fact.k >= 490"

	root := colMkPlan(t, cat, q, true)
	f, _ := cat.Table("fact")
	cat.Insert(nil, f, types.Row{
		types.Int(9999), types.Int(0), types.Str("g00"), types.Int(1)})
	if f.Col() != nil {
		t.Fatal("DML did not invalidate the columnar snapshot")
	}
	_, got, ctx := colRun(t, root, 1, 0, false, false)
	found := false
	for _, r := range got {
		if strings.HasPrefix(r, "9999") {
			found = true
		}
	}
	if !found {
		t.Fatalf("heap fallback missed the freshly inserted row: %v", got)
	}
	if ctx.ColBlocksScanned != 0 || ctx.ColBlocksSkipped != 0 {
		t.Fatal("columnar counters moved on a heap-fallback scan")
	}
}
