package exec

import (
	"fmt"
	"sort"

	"rqp/internal/expr"
	"rqp/internal/index"
	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

func buildJoin(node *plan.JoinNode, l, r Operator, ctx *Context) (Operator, error) {
	switch node.Alg {
	case plan.JoinHash:
		return &hashJoin{ctx: ctx, node: node, left: l, right: r}, nil
	case plan.JoinMerge:
		return &mergeJoin{ctx: ctx, node: node, left: l, right: r}, nil
	case plan.JoinNL:
		return &nlJoin{ctx: ctx, node: node, left: l, right: r}, nil
	case plan.JoinSymHash:
		return &symHashJoin{ctx: ctx, node: node, left: l, right: r}, nil
	case plan.JoinGeneral:
		return &gJoin{ctx: ctx, node: node, left: l, right: r}, nil
	}
	return nil, fmt.Errorf("exec: join algorithm %v not executable", node.Alg)
}

func drain(op Operator) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	var out []types.Row
	for {
		r, ok, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, r.Clone())
	}
	return out, op.Close()
}

func keyOf(r types.Row, cols []int) []types.Value {
	k := make([]types.Value, len(cols))
	keyInto(k, r, cols)
	return k
}

// keyInto fills dst (len(cols)) with r's key columns, sparing hot paths the
// per-row allocation of keyOf.
func keyInto(dst []types.Value, r types.Row, cols []int) {
	for i, c := range cols {
		dst[i] = r[c]
	}
}

func keysEqual(a, b []types.Value) bool {
	for i := range a {
		if a[i].IsNull() || b[i].IsNull() || !types.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func keyHasNull(k []types.Value) bool {
	for _, v := range k {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// joinResidual is the one shared accept/charge step for post-join residual
// predicates: evaluate the residual (if any) over the assembled output row
// and charge the per-row work only for survivors. Every join variant —
// equi-joins through emitJoined and the index nested-loop join directly —
// funnels through it so the charge discipline cannot drift between copies.
func joinResidual(clk *storage.Clock, params []types.Value, residual expr.Expr, out types.Row) (bool, error) {
	if residual != nil {
		ok, err := expr.EvalPredicate(residual, out, params)
		if err != nil || !ok {
			return false, err
		}
	}
	clk.RowWork(1)
	return true, nil
}

// emitJoined evaluates the residual and assembles the output row. It takes
// the clock explicitly (rather than a Context) so parallel workers can
// charge their shard clocks.
func emitJoined(clk *storage.Clock, params []types.Value, node *plan.JoinNode, l, r types.Row) (types.Row, bool, error) {
	out := types.Concat(l, r)
	ok, err := joinResidual(clk, params, node.Residual, out)
	if err != nil || !ok {
		return nil, false, err
	}
	return out, true, nil
}

func nullRow(n int) types.Row {
	out := make(types.Row, n)
	for i := range out {
		out[i] = types.Null()
	}
	return out
}

// ---------- hash join ----------

// hashJoin builds a hash table on the right input and probes with the left.
// If the build side exceeds the broker's grant, it becomes a hybrid hash
// join: the build partitions by key hash, overflow partitions spill to temp
// runs together with their probe rows, and the spilled pairs are joined
// recursively after the in-memory probe phase (spillJoin).
type hashJoin struct {
	ctx   *Context
	node  *plan.JoinNode
	left  Operator
	right Operator

	table       map[uint64][]types.Row
	spill       *spillJoin
	grant       int
	lrow        types.Row
	lrowMatched bool
	matches     []types.Row
	midx        int
	lDone       bool
	rWidth      int
	tail        []types.Row // deferred-partition output, emitted after the probe phase
	tpos        int
	finished    bool
}

func (j *hashJoin) Open() error {
	// The build side drains before the probe side opens so that runtime
	// filters derived from the completed build are already published when
	// probe-side scans bind (indexScan materializes during Open).
	build, err := drain(j.right)
	if err != nil {
		return err
	}
	buildRuntimeFilters(j.ctx, j.node, j.ctx.Clock, build)
	j.rWidth = len(j.node.Kids[1].Schema())
	j.grant = j.ctx.Mem.Grant(len(build))
	if len(build) > j.grant {
		j.spill = newSpillJoin(j.ctx, j.node, build, j.grant, j.rWidth, 0)
	} else {
		j.table = make(map[uint64][]types.Row, len(build))
		for _, r := range build {
			j.ctx.Clock.Probes(2) // insert costs double a probe (see cost model)
			k := keyOf(r, j.node.RightKeys)
			if keyHasNull(k) {
				continue
			}
			h := types.HashRow(k)
			j.table[h] = append(j.table[h], r)
		}
	}
	j.lDone = false
	j.matches = nil
	j.tail, j.tpos, j.finished = nil, 0, false
	return j.left.Open()
}

// bucket returns the hash-table candidates for a non-null probe key. Under
// spill, rows of non-resident partitions are deferred to probe runs and
// report ok=false — they produce their output (including left-outer null
// extension) when the spilled partitions replay.
func (j *hashJoin) bucket(lr types.Row, k []types.Value) ([]types.Row, bool) {
	if j.spill != nil {
		return j.spill.probe(lr, k)
	}
	return j.table[types.HashRow(k)], false
}

func (j *hashJoin) Next() (types.Row, bool, error) {
	for {
		if j.midx < len(j.matches) {
			r := j.matches[j.midx]
			j.midx++
			out, ok, err := emitJoined(j.ctx.Clock, j.ctx.Params, j.node, j.lrow, r)
			if err != nil {
				return nil, false, err
			}
			if ok {
				j.lrowMatched = true
				return out, true, nil
			}
			continue
		}
		// Left-outer: emit null-extended row when nothing matched.
		if j.lrow != nil && j.node.Type == plan.LeftOuter && !j.lrowMatched {
			out := types.Concat(j.lrow, nullRow(j.rWidth))
			j.lrow = nil
			j.ctx.Clock.RowWork(1)
			return out, true, nil
		}
		if j.lDone {
			if j.spill != nil && !j.finished {
				j.finished = true
				err := j.spill.finish(func(r types.Row) error {
					j.tail = append(j.tail, r)
					return nil
				})
				if err != nil {
					return nil, false, err
				}
			}
			if j.tpos < len(j.tail) {
				r := j.tail[j.tpos]
				j.tpos++
				return r, true, nil
			}
			return nil, false, nil
		}
		lr, ok, err := j.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.lDone = true
			continue
		}
		j.lrow = lr.Clone()
		j.lrowMatched = false
		j.ctx.Clock.Probes(1)
		k := keyOf(j.lrow, j.node.LeftKeys)
		j.matches = nil
		j.midx = 0
		if !keyHasNull(k) {
			cands, deferred := j.bucket(j.lrow, k)
			if deferred {
				j.lrow = nil // resolved (matches and outer alike) in finish
				continue
			}
			for _, cand := range cands {
				if keysEqual(k, keyOf(cand, j.node.RightKeys)) {
					j.matches = append(j.matches, cand)
				}
			}
		}
	}
}

func (j *hashJoin) Close() error {
	j.table = nil
	j.tail = nil
	if j.spill != nil {
		j.spill.close()
		j.spill = nil
	}
	j.ctx.Mem.Release(j.grant)
	j.grant = 0
	return j.left.Close()
}

// ---------- nested-loop join ----------

// nlJoin materializes the right input once and loops it per left row.
type nlJoin struct {
	ctx   *Context
	node  *plan.JoinNode
	left  Operator
	right Operator

	inner   []types.Row
	lrow    types.Row
	matched bool
	ipos    int
	lDone   bool
}

func (j *nlJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	inner, err := drain(j.right)
	if err != nil {
		return err
	}
	j.inner = inner
	j.ctx.Clock.RowWork(len(inner))
	j.lrow = nil
	j.lDone = false
	return nil
}

func (j *nlJoin) Next() (types.Row, bool, error) {
	for {
		if j.lrow == nil {
			if j.lDone {
				return nil, false, nil
			}
			lr, ok, err := j.left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.lDone = true
				continue
			}
			j.lrow = lr.Clone()
			j.matched = false
			j.ipos = 0
		}
		for j.ipos < len(j.inner) {
			r := j.inner[j.ipos]
			j.ipos++
			j.ctx.Clock.Compares(1)
			// Equi keys (if any) are evaluated like any other predicate here.
			if len(j.node.LeftKeys) > 0 {
				if !keysEqual(keyOf(j.lrow, j.node.LeftKeys), keyOf(r, j.node.RightKeys)) {
					continue
				}
			}
			out, ok, err := emitJoined(j.ctx.Clock, j.ctx.Params, j.node, j.lrow, r)
			if err != nil {
				return nil, false, err
			}
			if ok {
				j.matched = true
				return out, true, nil
			}
		}
		if j.node.Type == plan.LeftOuter && !j.matched {
			out := types.Concat(j.lrow, nullRow(len(j.node.Kids[1].Schema())))
			j.lrow = nil
			j.ctx.Clock.RowWork(1)
			return out, true, nil
		}
		j.lrow = nil
	}
}

func (j *nlJoin) Close() error {
	j.inner = nil
	return j.left.Close()
}

// ---------- merge join ----------

// mergeJoin sorts both inputs on the join keys and merges. Duplicate key
// groups on the right are buffered and replayed.
type mergeJoin struct {
	ctx   *Context
	node  *plan.JoinNode
	left  Operator
	right Operator

	lrows, rrows []types.Row
	li, ri       int
	group        []types.Row
	gi           int
	lrow         types.Row
}

func (j *mergeJoin) Open() error {
	lrows, err := drain(j.left)
	if err != nil {
		return err
	}
	rrows, err := drain(j.right)
	if err != nil {
		return err
	}
	sortRows(j.ctx, lrows, j.node.LeftKeys)
	sortRows(j.ctx, rrows, j.node.RightKeys)
	j.lrows, j.rrows = lrows, rrows
	j.li, j.ri = 0, 0
	j.group = nil
	return nil
}

func compareKeys(a, b []types.Value) int {
	for i := range a {
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

func sortRows(ctx *Context, rows []types.Row, keys []int) {
	n := len(rows)
	if n > 1 {
		ctx.Clock.Compares(int(float64(n) * log2(float64(n))))
	}
	sort.SliceStable(rows, func(i, k int) bool {
		return compareKeys(keyOf(rows[i], keys), keyOf(rows[k], keys)) < 0
	})
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}

func (j *mergeJoin) Next() (types.Row, bool, error) {
	for {
		if j.gi < len(j.group) {
			r := j.group[j.gi]
			j.gi++
			out, ok, err := emitJoined(j.ctx.Clock, j.ctx.Params, j.node, j.lrow, r)
			if err != nil {
				return nil, false, err
			}
			if ok {
				return out, true, nil
			}
			continue
		}
		if j.li >= len(j.lrows) {
			return nil, false, nil
		}
		lk := keyOf(j.lrows[j.li], j.node.LeftKeys)
		if keyHasNull(lk) {
			j.li++
			continue
		}
		// advance right to lk
		for j.ri < len(j.rrows) {
			j.ctx.Clock.Compares(1)
			rk := keyOf(j.rrows[j.ri], j.node.RightKeys)
			if keyHasNull(rk) || compareKeys(rk, lk) < 0 {
				j.ri++
				continue
			}
			break
		}
		// collect matching group
		j.group = j.group[:0]
		for k := j.ri; k < len(j.rrows); k++ {
			j.ctx.Clock.Compares(1)
			if compareKeys(keyOf(j.rrows[k], j.node.RightKeys), lk) != 0 {
				break
			}
			j.group = append(j.group, j.rrows[k])
		}
		j.gi = 0
		j.lrow = j.lrows[j.li]
		j.li++
		if len(j.group) == 0 {
			// No match: next left row (which may share the key prefix and
			// reuse the same right position).
			continue
		}
	}
}

func (j *mergeJoin) Close() error {
	j.lrows, j.rrows, j.group = nil, nil, nil
	return nil
}

// ---------- symmetric hash join ----------

// symHashJoin builds hash tables on both inputs and produces results
// incrementally as either side arrives — the pipelined operator that makes
// mid-flight adaptation cheap (no build/probe commitment).
type symHashJoin struct {
	ctx   *Context
	node  *plan.JoinNode
	left  Operator
	right Operator

	ltab, rtab map[uint64][]types.Row
	out        []types.Row
	pos        int
}

func (j *symHashJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.ltab = map[uint64][]types.Row{}
	j.rtab = map[uint64][]types.Row{}
	j.out = nil
	j.pos = 0
	// Alternate pulls between inputs, emitting matches as they form.
	lDone, rDone := false, false
	for !lDone || !rDone {
		if !lDone {
			r, ok, err := j.left.Next()
			if err != nil {
				return err
			}
			if !ok {
				lDone = true
			} else if err := j.insert(r.Clone(), true); err != nil {
				return err
			}
		}
		if !rDone {
			r, ok, err := j.right.Next()
			if err != nil {
				return err
			}
			if !ok {
				rDone = true
			} else if err := j.insert(r.Clone(), false); err != nil {
				return err
			}
		}
	}
	return nil
}

func (j *symHashJoin) insert(r types.Row, fromLeft bool) error {
	j.ctx.Clock.Probes(2) // insert + probe
	var myKeys, otherKeys []int
	var myTab, otherTab map[uint64][]types.Row
	if fromLeft {
		myKeys, otherKeys = j.node.LeftKeys, j.node.RightKeys
		myTab, otherTab = j.ltab, j.rtab
	} else {
		myKeys, otherKeys = j.node.RightKeys, j.node.LeftKeys
		myTab, otherTab = j.rtab, j.ltab
	}
	k := keyOf(r, myKeys)
	if keyHasNull(k) {
		return nil
	}
	h := types.HashRow(k)
	myTab[h] = append(myTab[h], r)
	for _, cand := range otherTab[h] {
		if !keysEqual(k, keyOf(cand, otherKeys)) {
			continue
		}
		var l, rr types.Row
		if fromLeft {
			l, rr = r, cand
		} else {
			l, rr = cand, r
		}
		out, ok, err := emitJoined(j.ctx.Clock, j.ctx.Params, j.node, l, rr)
		if err != nil {
			return err
		}
		if ok {
			j.out = append(j.out, out)
		}
	}
	return nil
}

func (j *symHashJoin) Next() (types.Row, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	r := j.out[j.pos]
	j.pos++
	return r, true, nil
}

func (j *symHashJoin) Close() error {
	j.ltab, j.rtab, j.out = nil, nil, nil
	j.left.Close()
	return j.right.Close()
}

// ---------- generalized join ----------

// gJoin is Graefe's generalized join: one algorithm replacing hash, merge
// and (index) nested-loop join. It consumes the smaller input; if it fits
// the memory grant it builds a temporary in-memory index and probes
// (hash-join-like); otherwise it partitions both inputs into grant-sized
// runs (charging spill I/O) and joins run by run — degrading smoothly
// instead of falling off the nested-loops cliff when the size estimate was
// wrong.
type gJoin struct {
	ctx   *Context
	node  *plan.JoinNode
	left  Operator
	right Operator

	out []types.Row
	pos int
}

func (j *gJoin) Open() error {
	lrows, err := drain(j.left)
	if err != nil {
		return err
	}
	rrows, err := drain(j.right)
	if err != nil {
		return err
	}
	small, large := rrows, lrows
	smallKeys, largeKeys := j.node.RightKeys, j.node.LeftKeys
	smallIsRight := true
	if len(lrows) < len(rrows) {
		small, large = lrows, rrows
		smallKeys, largeKeys = j.node.LeftKeys, j.node.RightKeys
		smallIsRight = false
	}
	grant := j.ctx.Mem.Grant(len(small))
	defer j.ctx.Mem.Release(grant)

	emit := func(l, r types.Row) error {
		out, ok, err := emitJoined(j.ctx.Clock, j.ctx.Params, j.node, l, r)
		if err != nil {
			return err
		}
		if ok {
			j.out = append(j.out, out)
		}
		return nil
	}
	pair := func(s, g types.Row) error {
		if smallIsRight {
			return emit(g, s)
		}
		return emit(s, g)
	}

	inMemory := func(sm, lg []types.Row) error {
		tab := make(map[uint64][]types.Row, len(sm))
		for _, r := range sm {
			j.ctx.Clock.Probes(1)
			k := keyOf(r, smallKeys)
			if keyHasNull(k) {
				continue
			}
			tab[types.HashRow(k)] = append(tab[types.HashRow(k)], r)
		}
		for _, g := range lg {
			j.ctx.Clock.Probes(1)
			k := keyOf(g, largeKeys)
			if keyHasNull(k) {
				continue
			}
			for _, s := range tab[types.HashRow(k)] {
				if keysEqual(k, keyOf(s, smallKeys)) {
					if err := pair(s, g); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	if len(small) <= grant {
		// In-memory phase: temporary index on the small input.
		return inMemory(small, large)
	}
	// Out-of-memory phase: partition both inputs into grant-sized runs by
	// key hash (one write+read pass over both), then join run pairs in
	// memory — the smooth degradation that replaces the NL cliff.
	if grant < 16 {
		grant = 16
	}
	parts := (len(small) + grant - 1) / grant
	spill := (len(small) + len(large) + storage.PageRows - 1) / storage.PageRows
	j.ctx.Clock.Write(spill)
	j.ctx.Clock.SeqRead(spill)
	smallParts := make([][]types.Row, parts)
	largeParts := make([][]types.Row, parts)
	for _, r := range small {
		k := keyOf(r, smallKeys)
		if keyHasNull(k) {
			continue
		}
		p := int(types.HashRow(k) % uint64(parts))
		smallParts[p] = append(smallParts[p], r)
	}
	for _, g := range large {
		k := keyOf(g, largeKeys)
		if keyHasNull(k) {
			continue
		}
		p := int(types.HashRow(k) % uint64(parts))
		largeParts[p] = append(largeParts[p], g)
	}
	for p := 0; p < parts; p++ {
		if err := inMemory(smallParts[p], largeParts[p]); err != nil {
			return err
		}
	}
	return nil
}

func (j *gJoin) Next() (types.Row, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	r := j.out[j.pos]
	j.pos++
	return r, true, nil
}

func (j *gJoin) Close() error {
	j.out = nil
	return nil
}

// ---------- index nested-loop join ----------

// indexNLJoin probes a persistent B+ tree per outer row.
type indexNLJoin struct {
	ctx  *Context
	node *plan.IndexJoinNode
	left Operator

	lrow    types.Row
	matches []types.Row
	midx    int
	matched bool
	lDone   bool
}

func (j *indexNLJoin) Open() error {
	j.lDone = false
	j.lrow = nil
	return j.left.Open()
}

func (j *indexNLJoin) Next() (types.Row, bool, error) {
	for {
		for j.midx < len(j.matches) {
			r := j.matches[j.midx]
			j.midx++
			out := types.Concat(j.lrow, r)
			ok, err := joinResidual(j.ctx.Clock, j.ctx.Params, j.node.Residual, out)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
			j.matched = true
			return out, true, nil
		}
		if j.lrow != nil && j.node.Type == plan.LeftOuter && !j.matched {
			out := types.Concat(j.lrow, nullRow(len(j.node.Table.Schema)))
			j.lrow = nil
			j.ctx.Clock.RowWork(1)
			return out, true, nil
		}
		if j.lDone {
			return nil, false, nil
		}
		lr, ok, err := j.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.lDone = true
			j.lrow = nil
			continue
		}
		j.lrow = lr.Clone()
		j.matched = false
		j.matches = j.matches[:0]
		j.midx = 0
		key := keyOf(j.lrow, j.node.LeftKeys)
		if keyHasNull(key) {
			continue
		}
		j.node.Index.Tree.Lookup(j.ctx.Clock, key, func(e index.Entry) bool {
			if r, ok := j.node.Table.Heap.Get(j.ctx.Clock, e.RID); ok {
				j.matches = append(j.matches, r)
			}
			return true
		})
	}
}

func (j *indexNLJoin) Close() error {
	j.matches = nil
	return j.left.Close()
}
