package exec

import (
	"fmt"
	"sync/atomic"

	"rqp/internal/expr"
	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// shardedHashJoin executes a hash join across ctx.Shards "nodes" — each
// with its own clock, hash-table shard and contiguous slice of the probe
// input — routed through a ShuffleExchange (shardtransport.go): in-process
// goroutines for transport=local, rqpserver -shard-worker processes over
// TCP for transport=tcp. The plan's ShuffleMode decides how rows move:
//
//   - Repartition: both sides route by join-key hash; per-shard row
//     counters detect heavy-hitter skew and split hot build keys across
//     shards with duplicated probe routing.
//   - Broadcast: the (small) build side replicates to every shard; probe
//     rows never move.
//   - Colocated: both sides are physically partitioned on the join key, so
//     every shard joins its own page ranges and nothing moves.
//
// Results are byte-identical to the serial join — output reassembles via a
// k-way merge on (probe sequence, build index) — and the main-clock charge
// multiset is exactly the serial one, so total simulated cost is
// integer-exact at any shard count. Under memory pressure the whole join
// degrades to the serial spill path (charges still serial-identical).
type shardedHashJoin struct {
	ctx       *Context
	node      *plan.JoinNode
	scan      *plan.ScanNode // fused probe-side scan (nil when left is set)
	left      Operator       // probe child when not fused
	right     Operator       // build child (nil when buildScan is set)
	buildScan *plan.ScanNode // co-located build-side scan

	n        int
	mode     plan.ShuffleMode
	grant    int
	rWidth   int
	scanPred *expr.Pred
	scanRF   *rfConsumer
	scanCol  *colScanner
	residual *expr.Pred
	fallback *parallelHashJoin // degraded path under memory pressure
	out      []types.Row
	pos      int
}

func (j *shardedHashJoin) Open() error {
	j.n = j.ctx.Shards
	if j.n < 1 {
		j.n = 1
	}
	j.mode = j.node.Shuffle
	j.rWidth = len(j.node.Kids[1].Schema())
	j.residual = compilePred(j.ctx, j.node.Residual)
	if j.mode == plan.ShuffleColocated && !j.colocatedValid() {
		// The partitioned layout vanished between planning and execution
		// (DML drops it); repartitioning is always correct.
		j.mode = plan.ShuffleRepartition
	}
	if j.mode == plan.ShuffleColocated {
		return j.runColocated()
	}
	build, err := j.drainBuild()
	if err != nil {
		return err
	}
	// Serial-identical runtime-filter derivation and memory negotiation:
	// drain, publish filters, then one grant — the exact serial sequence,
	// so scheduled-budget runs negotiate at the same steps.
	buildRuntimeFilters(j.ctx, j.node, j.ctx.Clock, build)
	j.grant = j.ctx.Mem.Grant(len(build))
	if len(build) > j.grant {
		return j.degrade(build)
	}
	j.bindScan()
	j.ctx.Shuffle.countJoin(j.mode)
	return j.runShuffled(build)
}

// colocatedValid re-checks at Open what PlanShuffles established at plan
// time: both scans' tables still carry matching physical partitionings.
func (j *shardedHashJoin) colocatedValid() bool {
	if j.scan == nil || j.buildScan == nil || len(j.node.LeftKeys) != 1 {
		return false
	}
	lp, rp := j.scan.Table.Part(), j.buildScan.Table.Part()
	return lp != nil && rp != nil &&
		lp.Shards == j.n && rp.Shards == j.n &&
		lp.Col == j.node.LeftKeys[0] && rp.Col == j.node.RightKeys[0]
}

// drainBuild materializes the build side in serial order with serial
// charges: through the child operator, or — when a planned co-located join
// degraded at run time and has no build operator — by scanning the build
// table with seqScan-identical charges.
func (j *shardedHashJoin) drainBuild() ([]types.Row, error) {
	if j.right != nil {
		return drain(j.right)
	}
	pred := compilePred(j.ctx, j.buildScan.Filter)
	rf := bindRuntimeFilters(j.ctx, j.buildScan.RFConsume)
	var rows []types.Row
	np := j.buildScan.Table.Heap.NumPages()
	err := scanPageRange(j.ctx, j.buildScan, pred, rf, 0, np, j.ctx.Clock, func(r types.Row) error {
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	finishNode(j.ctx, j.buildScan, float64(len(rows)))
	return rows, nil
}

// bindScan binds the fused probe scan's runtime filters (after the build
// published its own) and resolves its columnar core.
func (j *shardedHashJoin) bindScan() {
	if j.scan != nil {
		j.scanPred = compilePred(j.ctx, j.scan.Filter)
		j.scanRF = bindRuntimeFilters(j.ctx, j.scan.RFConsume)
		j.scanCol = colScannerFor(j.ctx, j.scan, j.scanRF)
	}
}

// degrade routes the whole join through the serial spill machinery when
// the build exceeded its grant: sharding a workspace that does not fit
// would multiply pressure, so the robust move is to give the shuffle up
// for this join and degrade exactly like the unsharded engine does.
func (j *shardedHashJoin) degrade(build []types.Row) error {
	j.ctx.Shuffle.degraded()
	if j.ctx.Trace != nil {
		j.ctx.Trace.Event("shuffle.degrade", fmt.Sprintf(
			"build=%d grant=%d: shuffle bypassed for serial spill path", len(build), j.grant))
	}
	fb := &parallelHashJoin{ctx: j.ctx, node: j.node, scan: j.scan, left: j.left}
	fb.dop = j.ctx.DOP
	if fb.dop < 1 {
		fb.dop = 1
	}
	if fb.scan != nil {
		fb.scanPred = compilePred(j.ctx, fb.scan.Filter)
	}
	fb.residual = j.residual
	fb.rWidth = j.rWidth
	fb.grant, j.grant = j.grant, 0
	fb.spill = newSpillJoin(j.ctx, j.node, build, fb.grant, fb.rWidth, 0)
	fb.bindScanRF()
	j.left = nil // ownership moved to the fallback
	j.fallback = fb
	return fb.probe()
}

// spec assembles the ShuffleJoinSpec a transport needs to build and probe
// this join's hash-table shards remotely.
func (j *shardedHashJoin) spec(clks []*storage.Clock) ShuffleJoinSpec {
	return ShuffleJoinSpec{
		Shards:    j.n,
		LeftKeys:  j.node.LeftKeys,
		RightKeys: j.node.RightKeys,
		LeftOuter: j.node.Type == plan.LeftOuter,
		RWidth:    j.rWidth,
		Residual:  j.residualFn(),
		Model:     j.ctx.Clock.Model(),
		Clocks:    clks,
		Stats:     j.ctx.Shuffle,
		Canceled:  j.ctx.Canceled,
	}
}

// residualFn wraps the join's residual predicate (compiled or interpreted)
// as the closure ShardJoiner evaluates per candidate match.
func (j *shardedHashJoin) residualFn() func(types.Row) (bool, error) {
	params := j.ctx.Params
	if j.residual != nil {
		pred := j.residual
		return func(r types.Row) (bool, error) { return pred.Eval(r, params) }
	}
	if j.node.Residual != nil {
		e := j.node.Residual
		return func(r types.Row) (bool, error) { return expr.EvalPredicate(e, r, params) }
	}
	return nil
}

// openExchange asks the context's transport for this join's exchange,
// falling back to the in-process exchange when the transport refuses the
// join shape or cannot reach its peers. Fallback is only safe here, before
// any row has been routed; mid-exchange failures abort the query instead.
func (j *shardedHashJoin) openExchange(spec ShuffleJoinSpec) ShuffleExchange {
	tr := j.ctx.ShufTransport
	if tr == nil {
		return newLocalExchange(spec)
	}
	ex, err := tr.OpenExchange(spec)
	if err != nil {
		j.ctx.Shuffle.netFallback()
		if j.ctx.Trace != nil {
			j.ctx.Trace.Event("shuffle.fallback", fmt.Sprintf(
				"transport=%s refused exchange: %v (running local)", tr.Name(), err))
		}
		j.ctx.Shuffle.SetTransport("local")
		return newLocalExchange(spec)
	}
	j.ctx.Shuffle.SetTransport(tr.Name())
	return ex
}

// runShuffled is the repartition/broadcast path: route the build side
// through the exchange, detect and split hot keys, then scan-and-route the
// probe side from per-shard contiguous ranges, probe shard-locally
// (wherever the shard lives), and k-way merge the tagged outputs back into
// serial order.
func (j *shardedHashJoin) runShuffled(build []types.Row) error {
	ctx := j.ctx
	st := ctx.Shuffle
	n := j.n
	model := ctx.Clock.Model()

	// Join-key hashes for the whole build side, computed once.
	hs := make([]uint64, len(build))
	nulls := make([]bool, len(build))
	key := make([]types.Value, len(j.node.RightKeys))
	routed := 0
	for i, r := range build {
		keyInto(key, r, j.node.RightKeys)
		if keyHasNull(key) {
			nulls[i] = true
			continue
		}
		hs[i] = types.HashRow(key)
		routed++
	}

	hot := j.detectHotKeys(hs, nulls, routed)

	clks := make([]*storage.Clock, n)
	for s := range clks {
		clks[s] = ctx.Clock.Shard()
	}
	ex := j.openExchange(j.spec(clks))
	defer ex.Abort()

	// Route the build side. Hot keys round-robin their rows across all
	// shards by arrival index; everything else goes to hash%n. The copy
	// that pays the serial insert charge is marked Own.
	rr := make(map[uint64]int, len(hot))
	for i, r := range build {
		if nulls[i] {
			ctx.Clock.Probes(2) // serial charges the insert before skipping null keys
			continue
		}
		h := hs[i]
		if j.mode == plan.ShuffleBroadcast {
			own := int(h % uint64(n))
			for d := 0; d < n; d++ {
				if err := ex.SendBuild(d, ShufBuild{Idx: int32(i), Own: d == own, Hash: h, Row: r}); err != nil {
					return err
				}
				if d != own {
					st.addExtra(d, 1, model.NetRow)
					st.addExtra(d, 2, model.HashProbe)
				}
			}
			st.broadcastRows(int64(n - 1))
			continue
		}
		d := int(h % uint64(n))
		if hot[h] {
			d = rr[h] % n
			rr[h]++
		}
		if err := ex.SendBuild(d, ShufBuild{Idx: int32(i), Own: true, Hash: h, Row: r}); err != nil {
			return err
		}
		if n > 1 {
			st.movedRows(1)
			st.addExtra(d, 1, model.NetRow)
		}
	}
	if err := ex.FlushBuild(); err != nil {
		return err
	}

	// Scan-and-route the probe side. Each shard owns a contiguous morsel
	// (or row) range, so its sequence tags ascend; each (src,dst) stream is
	// therefore already sorted and the receiver just sweeps sources in
	// order.
	route := func(src int, seq int64, lr types.Row, pk []types.Value) error {
		if j.mode == plan.ShuffleBroadcast {
			return ex.SendProbe(src, src, ShufProbe{Seq: seq, Main: true, Row: lr})
		}
		h := types.HashRow(pk) // NULL keys hash deterministically too
		d := int(h % uint64(n))
		if hot[h] {
			// Duplicated probe routing: the build rows of this key are
			// spread over every shard, so the probe row visits all of them.
			// Only the home copy pays the serial probe charge.
			for dd := 0; dd < n; dd++ {
				if err := ex.SendProbe(src, dd, ShufProbe{Seq: seq, Main: dd == d, Row: lr}); err != nil {
					return err
				}
				if dd != d {
					st.hotDup(1)
					st.addExtra(dd, 1, model.NetRow)
					st.addExtra(dd, 1, model.HashProbe)
				}
			}
			if d != src {
				st.movedRows(1)
				st.addExtra(d, 1, model.NetRow)
			}
			return nil
		}
		if err := ex.SendProbe(src, d, ShufProbe{Seq: seq, Main: true, Row: lr}); err != nil {
			return err
		}
		if d != src {
			st.movedRows(1)
			st.addExtra(d, 1, model.NetRow)
		}
		return nil
	}
	if j.scan != nil {
		nm, npages := scanGeometry(j.scan, j.scanCol)
		var scanned int64
		if err := runShards(n, func(s int) error {
			lo, hi := shardRange(s, n, nm)
			pk := make([]types.Value, len(j.node.LeftKeys))
			var cnt int64
			for m := lo; m < hi; m++ {
				mseq := int64(m) << shardSeqShift
				k := int64(0)
				err := scanMorsel(ctx, j.scan, j.scanPred, j.scanRF, j.scanCol, m, npages, clks[s], func(lr types.Row) error {
					keyInto(pk, lr, j.node.LeftKeys)
					if err := route(s, mseq|k, lr, pk); err != nil {
						return err
					}
					k++
					cnt++
					return nil
				})
				if err != nil {
					return err
				}
			}
			atomic.AddInt64(&scanned, cnt)
			return ex.FlushProbe(s)
		}); err != nil {
			return err
		}
		finishNode(ctx, j.scan, float64(atomic.LoadInt64(&scanned)))
	} else {
		lrows, err := drain(j.left)
		j.left = nil
		if err != nil {
			return err
		}
		if err := runShards(n, func(s int) error {
			lo, hi := shardRange(s, n, len(lrows))
			pk := make([]types.Value, len(j.node.LeftKeys))
			for i, lr := range lrows[lo:hi] {
				keyInto(pk, lr, j.node.LeftKeys)
				if err := route(s, int64(lo+i), lr, pk); err != nil {
					return err
				}
			}
			return ex.FlushProbe(s)
		}); err != nil {
			return err
		}
	}

	// Build and probe run at the shards (in-process goroutines or worker
	// processes); Collect gathers every shard's (Seq, BIdx)-sorted stream
	// plus any clock work performed away from the coordinator.
	outs, units, err := ex.Collect()
	if err != nil {
		return err
	}

	j.gather(outs)
	j.finishShards(clks, units)
	if ctx.Trace != nil {
		ctx.Trace.Event("shuffle.route", fmt.Sprintf(
			"mode=%s shards=%d build=%d hot_keys=%d out=%d", j.mode, n, len(build), len(hot), len(j.out)))
	}
	return nil
}

// detectHotKeys implements the skew trigger for repartition joins: when a
// shard's routed load share (squared build-key counts, the match-work
// proxy) exceeds shardSkewFactor times the mean, every key on it whose own
// weight reaches the mean shard load is marked hot. Left-outer joins are
// excluded — their null-extension decision needs all of a probe row's
// matches on one shard.
func (j *shardedHashJoin) detectHotKeys(hs []uint64, nulls []bool, routed int) map[uint64]bool {
	if j.mode != plan.ShuffleRepartition || j.node.Type != plan.Inner ||
		j.ctx.NoHotSplit || j.n <= 1 || routed == 0 {
		return nil
	}
	n := j.n
	// Per-key build counts feed a squared-count load proxy: when both
	// sides skew together, the match work a key drags to its shard grows
	// quadratically with its build share, so plain row counts understate
	// heavy hitters. The per-shard weight is the sum of its keys' squared
	// counts.
	per := make(map[uint64]int, routed)
	for i := range hs {
		if !nulls[i] {
			per[hs[i]]++
		}
	}
	w := make([]float64, n)
	var total float64
	for h, c := range per {
		q := float64(c) * float64(c)
		w[int(h%uint64(n))] += q
		total += q
	}
	mean := total / float64(n)
	overloaded := make(map[int]bool)
	for s := range w {
		if w[s] > shardSkewFactor*mean {
			overloaded[s] = true
		}
	}
	if len(overloaded) == 0 {
		return nil
	}
	// A key is hot when its own squared weight reaches the mean shard
	// weight — splitting anything smaller cannot level the load.
	var hot map[uint64]bool
	for h, c := range per {
		if overloaded[int(h%uint64(n))] && float64(c)*float64(c) > mean {
			if hot == nil {
				hot = map[uint64]bool{}
			}
			hot[h] = true
		}
	}
	if hot != nil {
		j.ctx.Shuffle.hotSplit(int64(len(hot)))
		if j.ctx.Trace != nil {
			j.ctx.Trace.Event("shuffle.skew", fmt.Sprintf(
				"hot_keys=%d overloaded_shards=%d mean_load=%.1f", len(hot), len(overloaded), mean))
		}
	}
	return hot
}

// gather k-way merges the per-shard output streams — each already sorted
// by (Seq, BIdx) — into the exact serial emission order.
func (j *shardedHashJoin) gather(outs [][]ShufOut) {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	j.out = make([]types.Row, 0, total)
	cur := make([]int, len(outs))
	for len(j.out) < total {
		best := -1
		for s := range outs {
			if cur[s] >= len(outs[s]) {
				continue
			}
			if best < 0 {
				best = s
				continue
			}
			a, b := outs[s][cur[s]], outs[best][cur[best]]
			if a.Seq < b.Seq || (a.Seq == b.Seq && a.BIdx < b.BIdx) {
				best = s
			}
		}
		j.out = append(j.out, outs[best][cur[best]].Row)
		cur[best]++
	}
}

// finishShards attributes each shard's units to the stats and merges them
// into the query clock — restoring the exact serial total. A shard's total
// is its coordinator-side clock (probe scanning, local build/probe) plus
// whatever the exchange reports it performed elsewhere (a worker process's
// shipped clock, folded in via MergeScaled in the same integer domain).
func (j *shardedHashJoin) finishShards(clks []*storage.Clock, units []ShardUnits) {
	st := j.ctx.Shuffle
	for s, clk := range clks {
		total := clk.UnitsScaled()
		if units != nil {
			u := units[s]
			total += u.UnitsScaled
			j.ctx.Clock.MergeScaled(u.UnitsScaled, u.SeqReads, u.RandReads, u.PageWrites, u.RowsCPU)
		}
		st.addUnits(s, total)
		j.ctx.Clock.Merge(clk)
		if j.ctx.Trace != nil {
			j.ctx.Trace.Event("shuffle.shard", fmt.Sprintf(
				"shard=%d units=%.3f", s, float64(total)/storage.ClockScale))
		}
	}
}

// runColocated is the no-movement path: both tables are physically
// partitioned on the join key with page-aligned shard boundaries, so shard
// s joins build pages [bp[s],bp[s+1]) against probe pages [pp[s],pp[s+1])
// entirely locally. Shard-major concatenation of outputs is the serial
// heap order, so no tags or merge are needed.
func (j *shardedHashJoin) runColocated() error {
	ctx := j.ctx
	n := j.n
	bp := j.buildScan.Table.Part().PageStart
	pp := j.scan.Table.Part().PageStart
	clks := make([]*storage.Clock, n)
	for s := range clks {
		clks[s] = ctx.Clock.Shard()
	}

	// Per-shard build-side scans; shard-major order is heap order, so the
	// concatenation equals the serial drain.
	bpred := compilePred(ctx, j.buildScan.Filter)
	brf := bindRuntimeFilters(ctx, j.buildScan.RFConsume)
	bRows := make([][]types.Row, n)
	if err := runShards(n, func(s int) error {
		var rows []types.Row
		err := scanPageRange(ctx, j.buildScan, bpred, brf, bp[s], bp[s+1], clks[s], func(r types.Row) error {
			rows = append(rows, r)
			return nil
		})
		bRows[s] = rows
		return err
	}); err != nil {
		return err
	}
	totalBuild := 0
	for _, rows := range bRows {
		totalBuild += len(rows)
	}
	finishNode(ctx, j.buildScan, float64(totalBuild))
	if ctx.RF != nil && len(j.node.RFilters) > 0 {
		all := make([]types.Row, 0, totalBuild)
		for _, rows := range bRows {
			all = append(all, rows...)
		}
		buildRuntimeFilters(ctx, j.node, ctx.Clock, all)
	}
	j.grant = ctx.Mem.Grant(totalBuild)
	if totalBuild > j.grant {
		for s, clk := range clks {
			ctx.Shuffle.addUnits(s, clk.UnitsScaled())
			ctx.Clock.Merge(clk)
		}
		all := make([]types.Row, 0, totalBuild)
		for _, rows := range bRows {
			all = append(all, rows...)
		}
		return j.degrade(all)
	}
	j.bindScan()
	j.ctx.Shuffle.countJoin(plan.ShuffleColocated)

	outs := make([][]types.Row, n)
	spec := j.spec(clks)
	var scanned int64
	if err := runShards(n, func(s int) error {
		// Colocated shards never touch a transport: each builds and probes
		// its own page ranges through the same ShardJoiner engine remote
		// workers run, so charges match the shuffled paths call-for-call.
		w := NewShardJoiner(spec, clks[s])
		key := make([]types.Value, len(j.node.RightKeys))
		for i, r := range bRows[s] {
			keyInto(key, r, j.node.RightKeys)
			if keyHasNull(key) {
				clks[s].Probes(2) // serial charges the insert before skipping null keys
				continue
			}
			w.Insert(ShufBuild{Idx: int32(i), Own: true, Hash: types.HashRow(key), Row: r})
		}
		var tagged []ShufOut
		var cnt int64
		err := scanPageRange(ctx, j.scan, j.scanPred, j.scanRF, pp[s], pp[s+1], clks[s], func(lr types.Row) error {
			cnt++
			return w.Probe(ShufProbe{Seq: cnt, Main: true, Row: lr}, &tagged)
		})
		if err != nil {
			return err
		}
		atomic.AddInt64(&scanned, cnt)
		rows := make([]types.Row, len(tagged))
		for i, o := range tagged {
			rows[i] = o.Row
		}
		outs[s] = rows
		return nil
	}); err != nil {
		return err
	}
	finishNode(ctx, j.scan, float64(atomic.LoadInt64(&scanned)))
	for _, rows := range outs {
		j.out = append(j.out, rows...)
	}
	j.finishShards(clks, nil)
	if ctx.Trace != nil {
		ctx.Trace.Event("shuffle.route", fmt.Sprintf(
			"mode=colocated shards=%d build=%d out=%d (no rows moved)", n, totalBuild, len(j.out)))
	}
	return nil
}

func (j *shardedHashJoin) Next() (types.Row, bool, error) {
	if j.fallback != nil {
		return j.fallback.Next()
	}
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	r := j.out[j.pos]
	j.pos++
	return r, true, nil
}

func (j *shardedHashJoin) Close() error {
	if j.fallback != nil {
		return j.fallback.Close()
	}
	j.out = nil
	j.ctx.Mem.Release(j.grant)
	j.grant = 0
	if j.left != nil {
		return j.left.Close()
	}
	return nil
}
