package exec

import (
	"slices"
	"sort"

	"rqp/internal/expr"
	"rqp/internal/plan"
	"rqp/internal/types"
)

// aggState accumulates one aggregate for one group. DISTINCT aggregates
// additionally dedup their inputs per group.
type aggState struct {
	count    int64
	sum      float64
	min      types.Value
	max      types.Value
	seen     bool
	distinct map[uint64][]types.Value
}

func (a *aggState) add(v types.Value, dedup bool) {
	if v.IsNull() {
		return
	}
	if dedup {
		if a.distinct == nil {
			a.distinct = map[uint64][]types.Value{}
		}
		h := v.Hash()
		for _, prev := range a.distinct[h] {
			if types.Equal(prev, v) {
				return
			}
		}
		a.distinct[h] = append(a.distinct[h], v)
	}
	a.count++
	if v.Numeric() {
		a.sum += v.AsFloat()
	}
	if !a.seen || types.Less(v, a.min) {
		a.min = v
	}
	if !a.seen || types.Less(a.max, v) {
		a.max = v
	}
	a.seen = true
}

// merge folds partial state b into a (parallel aggregation combines
// per-morsel partials at the gather barrier). DISTINCT partials replay
// their deduped values through add so cross-partial duplicates collapse;
// the values are replayed in sorted-hash order so the merged state is
// identical run to run.
func (a *aggState) merge(b *aggState, spec plan.AggSpec) {
	if spec.Distinct {
		hs := make([]uint64, 0, len(b.distinct))
		for h := range b.distinct {
			hs = append(hs, h)
		}
		slices.Sort(hs)
		for _, h := range hs {
			for _, v := range b.distinct[h] {
				a.add(v, true)
			}
		}
		return
	}
	a.count += b.count
	a.sum += b.sum
	if b.seen {
		if !a.seen || types.Less(b.min, a.min) {
			a.min = b.min
		}
		if !a.seen || types.Less(a.max, b.max) {
			a.max = b.max
		}
		a.seen = true
	}
}

func (a *aggState) result(spec plan.AggSpec) types.Value {
	switch spec.Func {
	case "COUNT":
		return types.Int(a.count)
	case "SUM":
		if a.count == 0 {
			return types.Null()
		}
		return types.Float(a.sum)
	case "AVG":
		if a.count == 0 {
			return types.Null()
		}
		return types.Float(a.sum / float64(a.count))
	case "MIN":
		if !a.seen {
			return types.Null()
		}
		return a.min
	case "MAX":
		if !a.seen {
			return types.Null()
		}
		return a.max
	}
	return types.Null()
}

type group struct {
	key    []types.Value
	states []aggState
}

// hashAgg groups via a hash table bounded by the broker's grant: group
// state beyond the grant spills input rows to hash partitions that
// re-aggregate recursively after the input is exhausted (aggSink). Output
// order is made deterministic by sorting groups on the key (cheap relative
// to the aggregation itself and essential for reproducible experiment
// output).
type hashAgg struct {
	ctx   *Context
	node  *plan.AggNode
	child Operator

	out []types.Row
	pos int
}

func (h *hashAgg) Open() error {
	if err := h.child.Open(); err != nil {
		return err
	}
	sink := newAggSink(h.ctx, h.node, 0)
	defer sink.close()
	key := make([]types.Value, len(h.node.GroupExprs))
	for {
		r, ok, err := h.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h.ctx.Clock.Probes(1)
		for i, ge := range h.node.GroupExprs {
			v, err := ge.Eval(r, h.ctx.Params)
			if err != nil {
				return err
			}
			key[i] = v
		}
		if err := sink.add(key, r, func(g *group) error {
			return accumGroup(g, h.node, r, h.ctx.Params)
		}); err != nil {
			return err
		}
	}
	order, err := sink.finish()
	if err != nil {
		return err
	}
	// Global aggregate with no groups and no input still yields one row.
	if len(order) == 0 && len(h.node.GroupExprs) == 0 {
		order = append(order, &group{states: make([]aggState, len(h.node.Aggs))})
	}
	sortGroups(order)
	h.out = make([]types.Row, 0, len(order))
	for _, g := range order {
		h.ctx.Clock.RowWork(1)
		row := make(types.Row, 0, len(g.key)+len(g.states))
		row = append(row, g.key...)
		for i := range g.states {
			row = append(row, g.states[i].result(h.node.Aggs[i]))
		}
		h.out = append(h.out, row)
	}
	h.pos = 0
	return nil
}

// accumGroup folds one input row into a group's aggregate states.
func accumGroup(g *group, node *plan.AggNode, r types.Row, params []types.Value) error {
	for i, spec := range node.Aggs {
		if spec.Star {
			g.states[i].count++
			continue
		}
		v, err := spec.Arg.Eval(r, params)
		if err != nil {
			return err
		}
		g.states[i].add(v, spec.Distinct)
	}
	return nil
}

// accumGroupFns is accumGroup with compiled aggregate arguments (fns is
// index-aligned with node.Aggs; nil entries are COUNT(*)).
func accumGroupFns(g *group, node *plan.AggNode, fns []expr.EvalFn, r types.Row, params []types.Value) error {
	for i, spec := range node.Aggs {
		if spec.Star {
			g.states[i].count++
			continue
		}
		v, err := fns[i](r, params)
		if err != nil {
			return err
		}
		g.states[i].add(v, spec.Distinct)
	}
	return nil
}

// sortGroups orders groups by key — the deterministic output order every
// aggregation path (serial, parallel, batch) shares.
func sortGroups(order []*group) {
	sort.SliceStable(order, func(i, j int) bool {
		return compareKeys(order[i].key, order[j].key) < 0
	})
}

func rowsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if types.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

func (h *hashAgg) Next() (types.Row, bool, error) {
	if h.pos >= len(h.out) {
		return nil, false, nil
	}
	r := h.out[h.pos]
	h.pos++
	return r, true, nil
}

func (h *hashAgg) Close() error {
	h.out = nil
	return h.child.Close()
}

// streamAgg expects input grouped (sorted) on the group expressions and
// emits each group as it completes — the low-memory aggregation path.
type streamAgg struct {
	ctx   *Context
	node  *plan.AggNode
	child Operator

	curKey     []types.Value
	curStates  []aggState
	done       bool
	emittedAny bool
}

func (s *streamAgg) Open() error {
	s.curKey = nil
	s.done = false
	s.emittedAny = false
	return s.child.Open()
}

func (s *streamAgg) Next() (types.Row, bool, error) {
	if s.done {
		return nil, false, nil
	}
	for {
		r, ok, err := s.child.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			if s.curKey != nil || (len(s.node.GroupExprs) == 0 && !s.emittedAny) {
				return s.emit(), true, nil
			}
			return nil, false, nil
		}
		s.ctx.Clock.Compares(1)
		key := make([]types.Value, len(s.node.GroupExprs))
		for i, ge := range s.node.GroupExprs {
			v, err := ge.Eval(r, s.ctx.Params)
			if err != nil {
				return nil, false, err
			}
			key[i] = v
		}
		if s.curKey == nil {
			s.startGroup(key)
		} else if !rowsEqual(s.curKey, key) {
			out := s.emit()
			s.startGroup(key)
			if err := s.accumulate(r); err != nil {
				return nil, false, err
			}
			return out, true, nil
		}
		if err := s.accumulate(r); err != nil {
			return nil, false, err
		}
	}
}

func (s *streamAgg) startGroup(key []types.Value) {
	s.curKey = key
	s.curStates = make([]aggState, len(s.node.Aggs))
}

func (s *streamAgg) accumulate(r types.Row) error {
	for i, spec := range s.node.Aggs {
		if spec.Star {
			s.curStates[i].count++
			continue
		}
		v, err := spec.Arg.Eval(r, s.ctx.Params)
		if err != nil {
			return err
		}
		s.curStates[i].add(v, spec.Distinct)
	}
	return nil
}

func (s *streamAgg) emit() types.Row {
	s.ctx.Clock.RowWork(1)
	s.emittedAny = true
	row := make(types.Row, 0, len(s.curKey)+len(s.curStates))
	row = append(row, s.curKey...)
	if s.curStates == nil {
		s.curStates = make([]aggState, len(s.node.Aggs))
	}
	for i := range s.curStates {
		row = append(row, s.curStates[i].result(s.node.Aggs[i]))
	}
	s.curKey = nil
	s.curStates = nil
	return row
}

func (s *streamAgg) Close() error { return s.child.Close() }

// distinctOp removes duplicates via hashing.
type distinctOp struct {
	ctx   *Context
	child Operator
	seen  map[uint64][]types.Row
}

func (d *distinctOp) Open() error {
	d.seen = map[uint64][]types.Row{}
	return d.child.Open()
}

func (d *distinctOp) Next() (types.Row, bool, error) {
	for {
		r, ok, err := d.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		d.ctx.Clock.Probes(1)
		h := types.HashRow(r)
		dup := false
		for _, cand := range d.seen[h] {
			if rowsEqual(cand, r) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		c := r.Clone()
		d.seen[h] = append(d.seen[h], c)
		return c, true, nil
	}
}

func (d *distinctOp) Close() error {
	d.seen = nil
	return d.child.Close()
}

// filterOp applies a predicate.
type filterOp struct {
	ctx   *Context
	pred  expr.Expr
	child Operator
}

func (f *filterOp) Open() error { return f.child.Open() }

func (f *filterOp) Next() (types.Row, bool, error) {
	for {
		r, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.ctx.Clock.RowWork(1)
		pass, err := expr.EvalPredicate(f.pred, r, f.ctx.Params)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return r, true, nil
		}
	}
}

func (f *filterOp) Close() error { return f.child.Close() }

// projectOp computes output expressions.
type projectOp struct {
	ctx   *Context
	exprs []expr.Expr
	child Operator
}

func (p *projectOp) Open() error { return p.child.Open() }

func (p *projectOp) Next() (types.Row, bool, error) {
	r, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.ctx.Clock.RowWork(1)
	out := make(types.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e.Eval(r, p.ctx.Params)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (p *projectOp) Close() error { return p.child.Close() }

// limitOp skips then caps.
type limitOp struct {
	n, skip  int
	returned int
	skipped  int
	child    Operator
}

func (l *limitOp) Open() error {
	l.returned, l.skipped = 0, 0
	return l.child.Open()
}

func (l *limitOp) Next() (types.Row, bool, error) {
	for {
		if l.n >= 0 && l.returned >= l.n {
			return nil, false, nil
		}
		r, ok, err := l.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if l.skipped < l.skip {
			l.skipped++
			continue
		}
		l.returned++
		return r, true, nil
	}
}

func (l *limitOp) Close() error { return l.child.Close() }

// materializeOp buffers its input fully on Open; POP reuses these buffers
// across re-optimizations.
type materializeOp struct {
	ctx   *Context
	child Operator
	rows  []types.Row
	pos   int
}

func (m *materializeOp) Open() error {
	rows, err := drain(m.child)
	if err != nil {
		return err
	}
	m.rows = rows
	m.pos = 0
	m.ctx.Clock.RowWork(len(rows))
	return nil
}

func (m *materializeOp) Next() (types.Row, bool, error) {
	if m.pos >= len(m.rows) {
		return nil, false, nil
	}
	r := m.rows[m.pos]
	m.pos++
	return r, true, nil
}

func (m *materializeOp) Close() error {
	m.rows = nil
	return nil
}

// checkOp is the POP CHECK operator: it counts rows flowing through and
// raises CardinalityViolation the moment the count leaves the validity
// range (or, for an undershoot, when the input ends early).
type checkOp struct {
	node  *plan.CheckNode
	child Operator
	n     float64
}

func (c *checkOp) Open() error {
	c.n = 0
	return c.child.Open()
}

func (c *checkOp) Next() (types.Row, bool, error) {
	r, ok, err := c.child.Next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		if c.n < c.node.Lo {
			return nil, false, &CardinalityViolation{Node: c.node, Actual: c.n}
		}
		return nil, false, nil
	}
	c.n++
	if c.node.Hi > 0 && c.n > c.node.Hi {
		return nil, false, &CardinalityViolation{Node: c.node, Actual: c.n}
	}
	return r, true, nil
}

func (c *checkOp) Close() error { return c.child.Close() }
