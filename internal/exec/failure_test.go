package exec

import (
	"strings"
	"sync"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// Failure injection: runtime errors inside operators must surface as clean
// errors through Run — never panics, never partial silent results.

func failureDB(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tb, _ := cat.CreateTable("f", types.Schema{
		{Name: "a", Kind: types.KindInt},
		{Name: "s", Kind: types.KindString},
	})
	for i := 0; i < 50; i++ {
		cat.Insert(nil, tb, types.Row{types.Int(int64(i)), types.Str("x")})
	}
	cat.AnalyzeTable(tb, 4)
	return cat
}

func buildAndRun(t *testing.T, cat *catalog.Catalog, q string, params ...types.Value) error {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		return err
	}
	bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
	if err != nil {
		return err
	}
	o := opt.New(cat)
	root, err := o.Optimize(bq, params)
	if err != nil {
		return err
	}
	ctx := NewContext()
	ctx.Params = params
	_, err = Run(root, ctx)
	return err
}

func TestArithmeticOnStringsSurfacesError(t *testing.T) {
	cat := failureDB(t)
	err := buildAndRun(t, cat, "SELECT s + 1 FROM f")
	if err == nil || !strings.Contains(err.Error(), "non-numeric") {
		t.Errorf("expected non-numeric arithmetic error, got %v", err)
	}
	// Inside a filter too.
	err = buildAndRun(t, cat, "SELECT a FROM f WHERE s * 2 > 1")
	if err == nil {
		t.Error("filter-side arithmetic on strings should error")
	}
}

func TestUnboundParameterSurfacesError(t *testing.T) {
	cat := failureDB(t)
	err := buildAndRun(t, cat, "SELECT a FROM f WHERE a = ?")
	if err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Errorf("expected unbound-parameter error, got %v", err)
	}
}

func TestErrorInsideJoinPipeline(t *testing.T) {
	cat := failureDB(t)
	tb2, _ := cat.CreateTable("g", types.Schema{{Name: "a", Kind: types.KindInt}})
	for i := 0; i < 10; i++ {
		cat.Insert(nil, tb2, types.Row{types.Int(int64(i))})
	}
	cat.AnalyzeTable(tb2, 4)
	err := buildAndRun(t, cat, "SELECT f.a FROM f, g WHERE f.a = g.a AND f.s - g.a > 0")
	if err == nil {
		t.Error("residual-predicate failure inside a join should surface")
	}
}

func TestErrorInsideAggregation(t *testing.T) {
	cat := failureDB(t)
	err := buildAndRun(t, cat, "SELECT SUM(s * 2) FROM f")
	if err == nil {
		t.Error("aggregate-argument failure should surface")
	}
}

// TestConcurrentReadOnlyQueries runs many queries against one catalog from
// parallel goroutines; with -race this verifies reader-side thread safety
// of heap, index, stats and clock.
func TestConcurrentReadOnlyQueries(t *testing.T) {
	cat := failureDB(t)
	queries := []string{
		"SELECT COUNT(*) FROM f WHERE a < 25",
		"SELECT a FROM f WHERE a BETWEEN 10 AND 20",
		"SELECT s, COUNT(*) FROM f GROUP BY s",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				q := queries[(worker+rep)%len(queries)]
				st, err := sql.Parse(q)
				if err != nil {
					errs <- err
					return
				}
				bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
				if err != nil {
					errs <- err
					return
				}
				o := opt.New(cat)
				root, err := o.Optimize(bq, nil)
				if err != nil {
					errs <- err
					return
				}
				if _, err := Run(root, NewContext()); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedClockUnderConcurrency runs concurrent queries charging one
// clock — the mixed-workload accounting pattern.
func TestSharedClockUnderConcurrency(t *testing.T) {
	cat := failureDB(t)
	ctxProto := NewContext()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, _ := sql.Parse("SELECT COUNT(*) FROM f")
			bq, _ := plan.Bind(st.(*sql.SelectStmt), cat)
			o := opt.New(cat)
			root, err := o.Optimize(bq, nil)
			if err != nil {
				return
			}
			ctx := &Context{Clock: ctxProto.Clock, Mem: ctxProto.Mem}
			Run(root, ctx)
		}()
	}
	wg.Wait()
	if ctxProto.Clock.Units() <= 0 {
		t.Error("shared clock should have accumulated cost")
	}
}

// TestCheckOperatorSignalsViolation exercises the POP CHECK operator's
// error path directly.
func TestCheckOperatorSignalsViolation(t *testing.T) {
	cat := failureDB(t)
	tb, _ := cat.Table("f")
	scan := &plan.ScanNode{Table: tb, Alias: "f"}
	scan.Out = tb.Schema
	scan.Title = "SeqScan(f)"
	scan.Prop = plan.Props{EstRows: 50, ActualRows: -1}
	check := &plan.CheckNode{Lo: 0, Hi: 10}
	check.Kids = []plan.Node{scan}
	check.Out = scan.Out
	check.Title = "Check"
	check.Prop = plan.Props{EstRows: 10, ActualRows: -1}
	_, err := Run(check, NewContext())
	viol, ok := err.(*CardinalityViolation)
	if !ok {
		t.Fatalf("expected CardinalityViolation, got %v", err)
	}
	if viol.Actual != 11 {
		t.Errorf("violation at %v, want on the 11th row", viol.Actual)
	}
	// Undershoot violation: Lo above the table size.
	check2 := &plan.CheckNode{Lo: 100, Hi: 0}
	check2.Kids = []plan.Node{scan}
	check2.Out = scan.Out
	check2.Title = "Check"
	check2.Prop = plan.Props{EstRows: 100, ActualRows: -1}
	_, err = Run(check2, NewContext())
	if _, ok := err.(*CardinalityViolation); !ok {
		t.Fatalf("expected undershoot violation, got %v", err)
	}
	// In-range passes.
	check3 := &plan.CheckNode{Lo: 10, Hi: 100}
	check3.Kids = []plan.Node{scan}
	check3.Out = scan.Out
	check3.Title = "Check"
	check3.Prop = plan.Props{EstRows: 50, ActualRows: -1}
	rows, err := Run(check3, NewContext())
	if err != nil || len(rows) != 50 {
		t.Errorf("in-range check should pass: %v rows=%d", err, len(rows))
	}
}
