package exec

import (
	"errors"
	"fmt"
	"sync"

	"rqp/internal/obs"
	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// Context carries everything operators need at run time.
type Context struct {
	Clock  *storage.Clock
	Params []types.Value
	Mem    *MemBroker
	// OnActual, if set, is invoked for every node when its operator
	// finishes, with the observed output cardinality (LEO feedback hook).
	OnActual func(node plan.Node, actual float64)
	// Trace, if set, collects a span per operator (cost consumed, rows
	// estimated vs. actual) plus engine-level events. Untraced runs pay
	// nothing beyond a nil check per operator call.
	Trace *obs.Trace
	// DOP is the degree of parallelism. Above one, Build routes plan nodes
	// marked by plan.MarkParallel through the morsel-driven operators; zero
	// or one keeps execution serial.
	DOP int
	// Vec enables vectorized execution: serial plans route nodes marked by
	// plan.MarkVectorized through batch operators with compiled
	// expressions; with DOP above one the morsel operators compile their
	// hot-loop expressions instead (a morsel is already a batch).
	Vec bool
	// Spill aggregates graceful-degradation activity (partitions spilled,
	// temp-run rows/pages written, recursion depth, merge fallbacks) across
	// the query's operators. Nil-safe: a nil Spill records nothing.
	Spill *SpillStats
	// RF, when non-nil, enables runtime join filters: hash joins publish
	// Bloom + min/max filters into it after draining their build side, and
	// scans annotated by plan.PlanRuntimeFilters bind and test them. Nil
	// (the default) disables the feature entirely.
	RF *RuntimeFilterSet
	// ColBlocksSkipped and ColBlocksScanned count columnar-scan block
	// outcomes across the query (zone-map or runtime-filter prunes vs.
	// decoded blocks). Atomics: morsel workers update them concurrently.
	ColBlocksSkipped int64
	ColBlocksScanned int64
	// Shards is the logical shard ("node") count for sharded scale-out
	// execution. Above one, Build routes hash joins annotated by
	// opt.PlanShuffles through the shuffle-exchange operators; zero or one
	// keeps the unsharded paths.
	Shards int
	// Shuffle aggregates shuffle-exchange activity (rows moved/broadcast,
	// hot-key splits, per-shard cost attribution) for the query. Nil-safe:
	// nil records nothing.
	Shuffle *ShuffleStats
	// NoHotSplit disables skew-triggered hot-key splitting (a bench and
	// experiment control for measuring the unmitigated skew cliff).
	NoHotSplit bool
	// ShufTransport, when non-nil, runs sharded joins' exchanges through it
	// (e.g. the server package's TCP transport to rqpserver -shard-worker
	// processes). Nil means the in-process transport=local fast path.
	ShufTransport ShuffleTransport
	// Canceled, when non-nil, is polled at the query's root drain loop
	// (every cancelCheckRows result rows): returning true aborts execution
	// with ErrCanceled. This is the cooperative cancellation hook the
	// network service layer uses for client Cancel frames and disconnects;
	// nil (the default) costs nothing.
	Canceled func() bool
}

// cancelCheckRows is how many root result rows flow between Canceled polls:
// frequent enough that a runaway scan stops promptly, rare enough that the
// per-row cost of the poll is unmeasurable.
const cancelCheckRows = 256

// ErrCanceled reports that the query's Canceled hook fired mid-execution.
// The partial result is discarded; the simulated cost consumed so far stays
// on the clock (work done is work done).
var ErrCanceled = errors.New("exec: query canceled")

// NewContext returns a context over a fresh clock and an effectively
// unlimited memory budget.
func NewContext() *Context {
	return &Context{
		Clock: storage.NewClock(storage.DefaultCostModel()),
		Mem:   NewMemBroker(1 << 30),
		Spill: &SpillStats{},
	}
}

// MemBroker arbitrates workspace memory (counted in rows) among operators.
// Budgets may shrink or grow while queries run; operators re-check their
// grant at phase boundaries, which is exactly the "grow & shrink memory"
// robustness technique from the report's execution sessions.
type MemBroker struct {
	mu          sync.Mutex
	budget      int
	inUse       int
	peak        int
	overcommits int
	schedule    func(step int) int
	step        int
	// OnEvent, if set, observes every grant and release ("grant" or
	// "release", the rows moved, in-use after, and the budget) — the trace
	// hook for memory-pressure diagnostics.
	OnEvent func(kind string, rows, inUse, budget int)
}

// NewMemBroker returns a broker with the given total budget in rows.
func NewMemBroker(budgetRows int) *MemBroker {
	return &MemBroker{budget: budgetRows}
}

// SetBudget changes the total budget (may drop below current use; future
// grants shrink accordingly).
func (m *MemBroker) SetBudget(rows int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = rows
}

// Budget returns the current total budget.
func (m *MemBroker) Budget() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.budget
}

// SetSchedule installs a memory-pressure schedule: before every grant the
// broker re-reads its budget as schedule(step) for a step counter that
// advances per grant — the fault injector behind Config.MemSchedule and the
// rqpsh -mem-shrink flag, stepping the budget mid-query at exactly the
// moments operators re-negotiate memory. A nil schedule (the default)
// leaves the budget alone. Resets the step counter.
func (m *MemBroker) SetSchedule(f func(step int) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.schedule = f
	m.step = 0
}

// Grant requests up to want rows of workspace; the broker returns what it
// can give, and never less than min(want, 16): the progress floor that
// guarantees every operator can always make forward progress no matter how
// far the budget has been shrunk (a zero grant would leave grant-sized-run
// loops spinning forever). Non-positive requests return zero without
// touching broker state. Progress-floor grants can push use past the
// budget; such overcommits are counted and surfaced through Overcommits
// and the metrics registry.
func (m *MemBroker) Grant(want int) int {
	if want <= 0 {
		return 0
	}
	m.mu.Lock()
	if m.schedule != nil {
		m.budget = m.schedule(m.step)
		m.step++
	}
	avail := m.budget - m.inUse
	g := want
	if g > avail {
		g = avail
	}
	floor := want
	if floor > 16 {
		floor = 16
	}
	if g < floor {
		g = floor
	}
	m.inUse += g
	if m.inUse > m.budget {
		m.overcommits++
	}
	if m.inUse > m.peak {
		m.peak = m.inUse
	}
	ev, inUse, budget := m.OnEvent, m.inUse, m.budget
	m.mu.Unlock()
	if ev != nil {
		ev("grant", g, inUse, budget)
	}
	return g
}

// Release returns a grant to the pool.
func (m *MemBroker) Release(rows int) {
	m.mu.Lock()
	m.inUse -= rows
	if m.inUse < 0 {
		m.inUse = 0
	}
	ev, inUse, budget := m.OnEvent, m.inUse, m.budget
	m.mu.Unlock()
	if ev != nil {
		ev("release", rows, inUse, budget)
	}
}

// Overcommits reports how many grants pushed use beyond the budget (the
// progress floor guarantees forward progress at the price of overcommit).
func (m *MemBroker) Overcommits() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.overcommits
}

// PeakUse reports the high-water mark of granted rows.
func (m *MemBroker) PeakUse() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// InUse reports granted rows.
func (m *MemBroker) InUse() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inUse
}

// Operator is the Volcano iterator interface.
type Operator interface {
	Open() error
	Next() (types.Row, bool, error)
	Close() error
}

// counted wraps an operator to record its output cardinality into the plan
// node's Props and fire the feedback hook. It carries no tracing state:
// untraced queries — the common case — pay only the row count increment per
// Next, with no span branch on the hot path. Traced queries get the
// tracedCounted variant instead.
type counted struct {
	op   Operator
	node plan.Node
	ctx  *Context
	n    float64
	done bool
}

func (c *counted) Open() error { return c.op.Open() }

func (c *counted) Next() (types.Row, bool, error) {
	r, ok, err := c.op.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		c.n++
		return r, true, nil
	}
	c.finish()
	return nil, false, nil
}

func (c *counted) finish() {
	if c.done {
		return
	}
	c.done = true
	c.node.Props().ActualRows = c.n
	if c.ctx.OnActual != nil {
		c.ctx.OnActual(c.node, c.n)
	}
}

func (c *counted) Close() error {
	c.finish()
	return c.op.Close()
}

// tracedCounted is counted plus span accounting: per-call cost attribution
// and call counts for EXPLAIN ANALYZE. Chosen once at build time, so the
// per-row tracing overhead exists only when a tracer is attached.
type tracedCounted struct {
	op   Operator
	node plan.Node
	ctx  *Context
	span *obs.Span
	n    float64
	done bool
}

func (c *tracedCounted) Open() error {
	w := c.ctx.Clock.StartWatch()
	err := c.op.Open()
	c.span.AddCost(w.Elapsed())
	return err
}

func (c *tracedCounted) Next() (types.Row, bool, error) {
	w := c.ctx.Clock.StartWatch()
	r, ok, err := c.op.Next()
	c.span.AddCost(w.Elapsed())
	c.span.AddCall()
	if err != nil {
		return nil, false, err
	}
	if ok {
		c.n++
		c.span.AddRows(1)
		return r, true, nil
	}
	c.finish()
	return nil, false, nil
}

func (c *tracedCounted) finish() {
	if c.done {
		return
	}
	c.done = true
	c.node.Props().ActualRows = c.n
	c.span.Finish(c.n)
	if c.ctx.OnActual != nil {
		c.ctx.OnActual(c.node, c.n)
	}
}

func (c *tracedCounted) Close() error {
	c.finish()
	w := c.ctx.Clock.StartWatch()
	err := c.op.Close()
	c.span.AddCost(w.Elapsed())
	return err
}

// Build constructs the operator tree for a physical plan. When the context
// carries a tracer, a span-tree fragment mirroring the plan is registered
// so every operator reports cost and cardinality into it.
func Build(n plan.Node, ctx *Context) (Operator, error) {
	if ctx.Trace != nil {
		ctx.Trace.AddFragment(n)
	}
	op, err := build(n, ctx)
	if err != nil {
		return nil, err
	}
	return op, nil
}

func build(n plan.Node, ctx *Context) (Operator, error) {
	if ctx.vecEligible(n.Props()) {
		bop, err := buildBatch(n, ctx)
		if err != nil {
			return nil, err
		}
		if bop != nil {
			// Counting and tracing live in the countedBatch wrappers inside
			// the batch subtree; the adapter needs no wrapper of its own.
			return &batchAdapter{b: bop}, nil
		}
	}
	var op Operator
	switch node := n.(type) {
	case *plan.ScanNode:
		if ctx.parallelEligible(&node.Prop) {
			op = &parallelScan{ctx: ctx, node: node}
		} else if node.Columnar {
			op = &colScan{ctx: ctx, node: node}
		} else {
			op = &seqScan{ctx: ctx, node: node}
		}
	case *plan.TempScanNode:
		op = &tempScan{ctx: ctx, node: node}
	case *plan.IndexScanNode:
		op = &indexScan{ctx: ctx, node: node}
	case *plan.FilterNode:
		child, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		op = &filterOp{ctx: ctx, pred: node.Pred, child: child}
	case *plan.ProjectNode:
		child, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		op = &projectOp{ctx: ctx, exprs: node.Exprs, child: child}
	case *plan.JoinNode:
		if ctx.shardEligible(node) {
			sj := &shardedHashJoin{ctx: ctx, node: node}
			ls, lok := node.Kids[0].(*plan.ScanNode)
			if rs, rok := node.Kids[1].(*plan.ScanNode); node.Shuffle == plan.ShuffleColocated && lok && rok {
				// Co-located: both sides scan their own partitions; neither
				// needs a child operator.
				sj.scan, sj.buildScan = ls, rs
			} else {
				r, err := build(node.Kids[1], ctx)
				if err != nil {
					return nil, err
				}
				sj.right = r
				if lok {
					sj.scan = ls // fuse the probe-side scan into the shard scans
				} else {
					l, err := build(node.Kids[0], ctx)
					if err != nil {
						return nil, err
					}
					sj.left = l
				}
			}
			op = sj
			break
		}
		if ctx.parallelEligible(&node.Prop) && node.Alg == plan.JoinHash {
			r, err := build(node.Kids[1], ctx)
			if err != nil {
				return nil, err
			}
			pj := &parallelHashJoin{ctx: ctx, node: node, right: r}
			if sc, ok := node.Kids[0].(*plan.ScanNode); ok && sc.Prop.Parallel {
				pj.scan = sc // fuse the probe-side scan into the probe morsels
			} else {
				l, err := build(node.Kids[0], ctx)
				if err != nil {
					return nil, err
				}
				pj.left = l
			}
			op = pj
			break
		}
		l, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		r, err := build(node.Kids[1], ctx)
		if err != nil {
			return nil, err
		}
		op, err = buildJoin(node, l, r, ctx)
		if err != nil {
			return nil, err
		}
	case *plan.IndexJoinNode:
		l, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		op = &indexNLJoin{ctx: ctx, node: node, left: l}
	case *plan.SortNode:
		child, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		op = &sortOp{ctx: ctx, keys: node.Keys, child: child}
	case *plan.AggNode:
		if ctx.parallelEligible(&node.Prop) && node.Alg == plan.AggHash {
			pa := &parallelAgg{ctx: ctx, node: node}
			switch kid := node.Kids[0].(type) {
			case *plan.ScanNode:
				if kid.Prop.Parallel {
					pa.scan = kid // fuse the input scan into the aggregation morsels
				}
			case *plan.JoinNode:
				if kid.Prop.Parallel && kid.Alg == plan.JoinHash && !ctx.shardEligible(kid) {
					// Fuse the whole join pipeline: agg morsels run
					// scan → probe → accumulate without materializing.
					r, err := build(kid.Kids[1], ctx)
					if err != nil {
						return nil, err
					}
					pj := &parallelHashJoin{ctx: ctx, node: kid, right: r}
					if sc, ok := kid.Kids[0].(*plan.ScanNode); ok && sc.Prop.Parallel {
						pj.scan = sc
					} else {
						l, err := build(kid.Kids[0], ctx)
						if err != nil {
							return nil, err
						}
						pj.left = l
					}
					pa.join = pj
				}
			}
			if pa.scan == nil && pa.join == nil {
				child, err := build(node.Kids[0], ctx)
				if err != nil {
					return nil, err
				}
				pa.child = child
			}
			op = pa
			break
		}
		child, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		if node.Alg == plan.AggStream {
			op = &streamAgg{ctx: ctx, node: node, child: child}
		} else {
			op = &hashAgg{ctx: ctx, node: node, child: child}
		}
	case *plan.DistinctNode:
		child, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		op = &distinctOp{ctx: ctx, child: child}
	case *plan.LimitNode:
		child, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		op = &limitOp{n: node.N, skip: node.Skip, child: child}
	case *plan.MaterializeNode:
		child, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		op = &materializeOp{ctx: ctx, child: child}
	case *plan.CheckNode:
		child, err := build(node.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		op = &checkOp{node: node, child: child}
	default:
		return nil, fmt.Errorf("exec: unsupported plan node %T", n)
	}
	if ctx.Trace != nil {
		if span := ctx.Trace.SpanOf(n); span != nil {
			return &tracedCounted{op: op, node: n, ctx: ctx, span: span}, nil
		}
	}
	return &counted{op: op, node: n, ctx: ctx}, nil
}

// Run executes a plan to completion and returns all result rows. Actual
// cardinalities are recorded on every node. When the context carries a
// Canceled hook it is checked before execution starts and periodically at
// the root drain loop.
func Run(n plan.Node, ctx *Context) ([]types.Row, error) {
	if ctx.Canceled != nil && ctx.Canceled() {
		return nil, ErrCanceled
	}
	op, err := Build(n, ctx)
	if err != nil {
		return nil, err
	}
	if a, ok := op.(*batchAdapter); ok {
		return runBatchesCancelable(a.b, ctx)
	}
	return runOp(op, ctx)
}

// runOp drains an operator to exhaustion. A Close failure after a Next
// failure is joined onto the original error rather than discarded, so
// resource-release problems surface. A non-nil ctx.Canceled is polled every
// cancelCheckRows rows.
func runOp(op Operator, ctx *Context) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	var out []types.Row
	for {
		r, ok, err := op.Next()
		if err != nil {
			if cerr := op.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, r.Clone())
		if ctx != nil && ctx.Canceled != nil && len(out)%cancelCheckRows == 0 && ctx.Canceled() {
			err := ErrCanceled
			if cerr := op.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, err
		}
	}
	return out, op.Close()
}

// CardinalityViolation signals that a CHECK operator saw a cardinality
// outside its validity range; the adaptive layer catches it to trigger
// re-optimization.
type CardinalityViolation struct {
	Node   *plan.CheckNode
	Actual float64
}

// Error implements error.
func (v *CardinalityViolation) Error() string {
	return fmt.Sprintf("exec: cardinality check failed: actual %.0f outside [%.0f, %.0f]",
		v.Actual, v.Node.Lo, v.Node.Hi)
}
