package exec

import (
	"rqp/internal/catalog"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// SharedScan is the coordinated (circular) table scan from the report's
// robust-execution catalogue: one physical scan cursor sweeps the table
// page by page and every attached consumer rides it, so N concurrent scans
// cost one pass of page reads instead of N. Consumers may attach while the
// sweep is mid-table; they receive the remaining pages first and the skipped
// prefix on the wrap-around — each consumer sees every live row exactly
// once.
type SharedScan struct {
	table *catalog.Table
	clk   *storage.Clock
	pos   int // next page the sweep will read
	pages int
	curs  []*SharedCursor
}

// SharedCursor is one consumer's attachment.
type SharedCursor struct {
	fn        func(types.Row) bool
	startPage int
	remaining int // pages left to see
	done      bool
	stopped   bool // consumer returned false
}

// Done reports whether the cursor has seen the whole table (or stopped).
func (c *SharedCursor) Done() bool { return c.done }

// NewSharedScan creates a sweep over the table charging I/O to clk.
func NewSharedScan(clk *storage.Clock, table *catalog.Table) *SharedScan {
	return &SharedScan{table: table, clk: clk, pages: table.Heap.NumPages()}
}

// Attach registers a consumer starting at the sweep's current position.
// fn returns false to stop consuming early.
func (s *SharedScan) Attach(fn func(types.Row) bool) *SharedCursor {
	c := &SharedCursor{fn: fn, startPage: s.pos, remaining: s.pages}
	if s.pages == 0 {
		c.done = true
	}
	s.curs = append(s.curs, c)
	return c
}

// Step advances the sweep one page, delivering its rows to every active
// cursor (one shared page read). It returns false when no cursor is active.
func (s *SharedScan) Step() bool {
	active := 0
	for _, c := range s.curs {
		if !c.done {
			active++
		}
	}
	if active == 0 || s.pages == 0 {
		return false
	}
	page := s.pos % s.pages
	var rows []types.Row
	s.table.Heap.ScanPage(s.clk, page, func(_ storage.RID, r types.Row) bool {
		rows = append(rows, r)
		return true
	})
	for _, c := range s.curs {
		if c.done || c.remaining <= 0 {
			continue
		}
		if !c.stopped {
			for _, r := range rows {
				if s.clk != nil {
					s.clk.RowWork(1)
				}
				if !c.fn(r) {
					c.stopped = true
					c.done = true
					break
				}
			}
		}
		c.remaining--
		if c.remaining == 0 {
			c.done = true
		}
	}
	s.pos = (s.pos + 1) % s.pages
	return true
}

// Run drives the sweep until every attached cursor completes.
func (s *SharedScan) Run() {
	for s.Step() {
	}
}
