package exec

import (
	"errors"

	"rqp/internal/expr"
	"rqp/internal/obs"
	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// BatchRows is the target number of rows per batch (~4 heap pages), large
// enough to amortize per-batch dispatch and accounting, small enough to stay
// cache-resident.
const BatchRows = 256

// Batch is a column-agnostic row batch with a selection vector: Sel lists
// the indices of live rows in Rows, in order. Operators refill a batch in
// place; its contents are valid only until the producer's next NextBatch
// call (the Volcano validity contract, batched).
type Batch struct {
	Rows []types.Row
	Sel  []int
}

// Len returns the number of selected (live) rows.
func (b *Batch) Len() int { return len(b.Sel) }

// BatchOperator is the vectorized iterator interface. NextBatch refills b
// and returns the number of selected rows; zero means the input is
// exhausted — operators loop internally past fully filtered batches, so a
// non-zero return always carries at least one live row.
type BatchOperator interface {
	Open() error
	NextBatch(b *Batch) (int, error)
	Close() error
}

// identitySel resets sel to the identity selection 0..n-1.
func identitySel(sel []int, n int) []int {
	sel = sel[:0]
	for i := 0; i < n; i++ {
		sel = append(sel, i)
	}
	return sel
}

// batchAdapter presents a batch subtree through the row-at-a-time Operator
// interface, so vectorized fragments compose with operators that are not
// vectorized (sort, limit, the adaptive joins, ...). Cardinality accounting
// lives in the countedBatch wrappers inside the subtree, so the adapter
// itself is invisible to spans and feedback.
type batchAdapter struct {
	b   BatchOperator
	buf Batch
	pos int
}

func (a *batchAdapter) Open() error {
	a.pos = 0
	a.buf.Rows = a.buf.Rows[:0]
	a.buf.Sel = a.buf.Sel[:0]
	return a.b.Open()
}

func (a *batchAdapter) Next() (types.Row, bool, error) {
	for {
		if a.pos < len(a.buf.Sel) {
			r := a.buf.Rows[a.buf.Sel[a.pos]]
			a.pos++
			return r, true, nil
		}
		n, err := a.b.NextBatch(&a.buf)
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
		a.pos = 0
	}
}

func (a *batchAdapter) Close() error { return a.b.Close() }

// runBatchesCancelable drains a batch subtree to completion, materializing
// each output batch into one value slab instead of cloning row by row — the
// batch-native top of Run when the whole plan vectorized. Output values are
// identical to runOp over the adapter; only the allocation pattern differs.
// A non-nil ctx.Canceled is checked once per drained batch (a batch is
// already the row path's cancelCheckRows-scale unit of work); nil ctx or
// hook polls nothing.
func runBatchesCancelable(op BatchOperator, ctx *Context) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	var out []types.Row
	var buf Batch
	for {
		if ctx != nil && ctx.Canceled != nil && ctx.Canceled() {
			err := ErrCanceled
			if cerr := op.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, err
		}
		n, err := op.NextBatch(&buf)
		if err != nil {
			if cerr := op.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, err
		}
		if n == 0 {
			break
		}
		total := 0
		for _, i := range buf.Sel {
			total += len(buf.Rows[i])
		}
		slab := make([]types.Value, total)
		off := 0
		for _, i := range buf.Sel {
			r := buf.Rows[i]
			dst := slab[off : off+len(r) : off+len(r)]
			copy(dst, r)
			off += len(r)
			out = append(out, types.Row(dst))
		}
	}
	return out, op.Close()
}

// countedBatch is the batch-path counterpart of counted: it records the
// node's actual output cardinality, fires the feedback hook and (when
// tracing) accrues the node's span — charged once per batch with exact row
// counts, so recorded actuals, span costs and LEO/POP checkpoints are
// identical to the row path while the per-row wrapper overhead disappears.
type countedBatch struct {
	b    BatchOperator
	node plan.Node
	ctx  *Context
	span *obs.Span // nil when untraced
	n    float64
	done bool
}

func (c *countedBatch) Open() error {
	if c.span == nil {
		return c.b.Open()
	}
	w := c.ctx.Clock.StartWatch()
	err := c.b.Open()
	c.span.AddCost(w.Elapsed())
	return err
}

func (c *countedBatch) NextBatch(b *Batch) (int, error) {
	if c.span == nil {
		n, err := c.b.NextBatch(b)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			c.finish()
		} else {
			c.n += float64(n)
		}
		return n, nil
	}
	w := c.ctx.Clock.StartWatch()
	n, err := c.b.NextBatch(b)
	c.span.AddCost(w.Elapsed())
	c.span.AddCall()
	if err != nil {
		return 0, err
	}
	if n == 0 {
		c.finish()
	} else {
		c.n += float64(n)
		c.span.AddRows(int64(n))
	}
	return n, nil
}

func (c *countedBatch) finish() {
	if c.done {
		return
	}
	c.done = true
	c.node.Props().ActualRows = c.n
	if c.span != nil {
		c.span.Finish(c.n)
	}
	if c.ctx.OnActual != nil {
		c.ctx.OnActual(c.node, c.n)
	}
}

func (c *countedBatch) Close() error {
	c.finish()
	if c.span == nil {
		return c.b.Close()
	}
	w := c.ctx.Clock.StartWatch()
	err := c.b.Close()
	c.span.AddCost(w.Elapsed())
	return err
}

// vecEligible reports whether build should take the batch path for a node:
// the context must enable vectorization, execution must be serial and
// unsharded (with DOP above one the morsel operators own the hot loops and
// use compiled expressions instead; sharded runs likewise compile their
// shard-local hot loops — row/vec cost parity makes either path exact),
// and the planner must have marked the node.
func (ctx *Context) vecEligible(p *plan.Props) bool {
	return ctx.Vec && ctx.DOP <= 1 && ctx.Shards <= 1 && p.Vectorized
}

// buildBatch constructs the vectorized operator for a node marked by
// plan.MarkVectorized, wrapping it (and recursively its batch children) in
// countedBatch. Returns nil when the node has no batch implementation; the
// caller then falls back to the row path for the whole subtree.
func buildBatch(n plan.Node, ctx *Context) (BatchOperator, error) {
	var op BatchOperator
	switch node := n.(type) {
	case *plan.ScanNode:
		if node.Columnar {
			op = &batchColScan{ctx: ctx, node: node}
		} else {
			op = &batchSeqScan{ctx: ctx, node: node}
		}
	case *plan.FilterNode:
		child, err := buildBatchChild(node.Kids[0], ctx)
		if err != nil || child == nil {
			return nil, err
		}
		op = &batchFilter{ctx: ctx, src: node.Pred, child: child}
	case *plan.ProjectNode:
		child, err := buildBatchChild(node.Kids[0], ctx)
		if err != nil || child == nil {
			return nil, err
		}
		op = &batchProject{ctx: ctx, exprs: node.Exprs, child: child}
	case *plan.JoinNode:
		if node.Alg != plan.JoinHash {
			return nil, nil
		}
		left, err := buildBatchChild(node.Kids[0], ctx)
		if err != nil || left == nil {
			return nil, err
		}
		right, err := build(node.Kids[1], ctx) // build side stays on the row path
		if err != nil {
			return nil, err
		}
		op = &batchHashJoin{ctx: ctx, node: node, left: left, right: right}
	case *plan.AggNode:
		if node.Alg != plan.AggHash {
			return nil, nil
		}
		child, err := buildBatchChild(node.Kids[0], ctx)
		if err != nil || child == nil {
			return nil, err
		}
		op = &batchHashAgg{ctx: ctx, node: node, child: child}
	default:
		return nil, nil
	}
	var span *obs.Span
	if ctx.Trace != nil {
		span = ctx.Trace.SpanOf(n)
	}
	return &countedBatch{b: op, node: n, ctx: ctx, span: span}, nil
}

func buildBatchChild(n plan.Node, ctx *Context) (BatchOperator, error) {
	if !n.Props().Vectorized {
		return nil, nil
	}
	return buildBatch(n, ctx)
}

// ---------- batch scan ----------

// batchSeqScan reads a heap table in physical order, one batch (~4 pages) at
// a time, evaluating the pushed-down filter through a compiled predicate
// into the selection vector. Charges are identical to seqScan: one
// sequential read per page, CPU per examined row.
type batchSeqScan struct {
	ctx    *Context
	node   *plan.ScanNode
	pred   *expr.Pred
	rf     *rfConsumer
	npages int
	page   int
}

func (s *batchSeqScan) Open() error {
	s.npages = s.node.Table.Heap.NumPages()
	s.page = 0
	if s.node.Filter != nil {
		s.pred = expr.CompilePredicate(s.node.Filter)
	}
	s.rf = bindRuntimeFilters(s.ctx, s.node.RFConsume)
	return nil
}

func (s *batchSeqScan) NextBatch(b *Batch) (int, error) {
	for {
		b.Rows = b.Rows[:0]
		for s.page < s.npages && len(b.Rows) < BatchRows {
			s.node.Table.Heap.ScanPage(s.ctx.Clock, s.page, func(_ storage.RID, r types.Row) bool {
				b.Rows = append(b.Rows, r)
				return true
			})
			s.page++
		}
		if len(b.Rows) == 0 {
			return 0, nil
		}
		b.Sel = identitySel(b.Sel, len(b.Rows))
		if s.rf != nil {
			// Runtime filters shrink the selection vector in place before
			// the per-row charge, in the same row order as seqScan, so
			// charges and adaptive-disable decisions stay row/vec identical.
			b.Sel = s.rf.admitBatch(s.ctx.Clock, b.Rows, b.Sel)
		}
		s.ctx.Clock.RowWorkBatch(len(b.Sel))
		if s.pred != nil {
			var err error
			b.Sel, err = s.pred.EvalBatch(b.Rows, b.Sel, s.ctx.Params)
			if err != nil {
				return 0, err
			}
		}
		if len(b.Sel) > 0 {
			return len(b.Sel), nil
		}
	}
}

func (s *batchSeqScan) Close() error { return nil }

// ---------- batch filter ----------

// batchFilter refines the selection vector with a compiled predicate,
// charging one unit of row work per input row like filterOp.
type batchFilter struct {
	ctx   *Context
	src   expr.Expr
	pred  *expr.Pred
	child BatchOperator
}

func (f *batchFilter) Open() error {
	f.pred = expr.CompilePredicate(f.src)
	return f.child.Open()
}

func (f *batchFilter) NextBatch(b *Batch) (int, error) {
	for {
		n, err := f.child.NextBatch(b)
		if err != nil || n == 0 {
			return 0, err
		}
		f.ctx.Clock.RowWorkBatch(n)
		b.Sel, err = f.pred.EvalBatch(b.Rows, b.Sel, f.ctx.Params)
		if err != nil {
			return 0, err
		}
		if len(b.Sel) > 0 {
			return len(b.Sel), nil
		}
	}
}

func (f *batchFilter) Close() error { return f.child.Close() }

// ---------- batch project ----------

// batchProject computes compiled output expressions into a per-batch value
// slab (one allocation per batch instead of one per row), charging one unit
// of row work per input row like projectOp.
type batchProject struct {
	ctx   *Context
	exprs []expr.Expr
	fns   []expr.EvalFn
	child BatchOperator
	in    Batch
	slab  []types.Value
}

func (p *batchProject) Open() error {
	p.fns = expr.CompileAll(p.exprs)
	return p.child.Open()
}

func (p *batchProject) NextBatch(b *Batch) (int, error) {
	n, err := p.child.NextBatch(&p.in)
	if err != nil || n == 0 {
		return 0, err
	}
	p.ctx.Clock.RowWorkBatch(n)
	w := len(p.fns)
	if need := n * w; cap(p.slab) < need {
		p.slab = make([]types.Value, need)
	}
	b.Rows = b.Rows[:0]
	off := 0
	for _, i := range p.in.Sel {
		r := p.in.Rows[i]
		out := p.slab[off : off+w : off+w]
		for j, fn := range p.fns {
			v, err := fn(r, p.ctx.Params)
			if err != nil {
				return 0, err
			}
			out[j] = v
		}
		off += w
		b.Rows = append(b.Rows, types.Row(out))
	}
	b.Sel = identitySel(b.Sel, len(b.Rows))
	return len(b.Rows), nil
}

func (p *batchProject) Close() error { return p.child.Close() }

// ---------- batch hash join (probe side) ----------

// batchHashJoin builds its hash table exactly like hashJoin (row-at-a-time
// drain of the right child, same grant and spill behaviour) and probes with
// left batches: one hash probe per left row, one unit of row work per
// emitted row, residual through a compiled predicate. An output batch holds
// every match of one input batch, so it may exceed BatchRows. Under memory
// pressure the build delegates to the same spillJoin as the row path: probe
// rows of spilled partitions defer (cloned out of the volatile batch), and
// their output — already charged row by row inside the replay — streams as
// tail batches after the probe input is exhausted.
type batchHashJoin struct {
	ctx      *Context
	node     *plan.JoinNode
	left     BatchOperator
	right    Operator
	residual *expr.Pred

	table  map[uint64][]types.Row
	spill  *spillJoin
	grant  int
	rWidth int
	in     Batch
	key    []types.Value
	ckey   []types.Value
	nulls  types.Row
	tail   []types.Row
	tpos   int
	lDone  bool
}

func (j *batchHashJoin) Open() error {
	// Build drains before the probe side opens so runtime filters derived
	// from the completed build are published when probe-side scans bind
	// (mirrors hashJoin.Open).
	build, err := drain(j.right)
	if err != nil {
		return err
	}
	buildRuntimeFilters(j.ctx, j.node, j.ctx.Clock, build)
	j.rWidth = len(j.node.Kids[1].Schema())
	j.grant = j.ctx.Mem.Grant(len(build))
	if len(build) > j.grant {
		j.spill = newSpillJoin(j.ctx, j.node, build, j.grant, j.rWidth, 0)
	} else {
		j.table = make(map[uint64][]types.Row, len(build))
		key := make([]types.Value, len(j.node.RightKeys))
		for _, r := range build {
			j.ctx.Clock.Probes(2) // insert costs double a probe (see cost model)
			keyInto(key, r, j.node.RightKeys)
			if keyHasNull(key) {
				continue
			}
			j.table[types.HashRow(key)] = append(j.table[types.HashRow(key)], r)
		}
	}
	j.key = make([]types.Value, len(j.node.LeftKeys))
	j.ckey = make([]types.Value, len(j.node.RightKeys))
	j.nulls = nullRow(j.rWidth)
	if j.node.Residual != nil {
		j.residual = expr.CompilePredicate(j.node.Residual)
	}
	j.tail, j.tpos, j.lDone = nil, 0, false
	return j.left.Open()
}

// tailBatch streams the deferred-partition output in BatchRows chunks. Its
// rows were charged (row work, probes) inside the spill replay, so no batch
// charge applies here.
func (j *batchHashJoin) tailBatch(b *Batch) int {
	if j.tpos >= len(j.tail) {
		return 0
	}
	end := j.tpos + BatchRows
	if end > len(j.tail) {
		end = len(j.tail)
	}
	b.Rows = append(b.Rows[:0], j.tail[j.tpos:end]...)
	b.Sel = identitySel(b.Sel, len(b.Rows))
	j.tpos = end
	return len(b.Rows)
}

func (j *batchHashJoin) NextBatch(b *Batch) (int, error) {
	for {
		if j.lDone {
			return j.tailBatch(b), nil
		}
		n, err := j.left.NextBatch(&j.in)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			j.lDone = true
			if j.spill != nil {
				err := j.spill.finish(func(r types.Row) error {
					j.tail = append(j.tail, r)
					return nil
				})
				if err != nil {
					return 0, err
				}
			}
			continue
		}
		j.ctx.Clock.ProbesBatch(n)
		b.Rows = b.Rows[:0]
		for _, i := range j.in.Sel {
			lr := j.in.Rows[i]
			keyInto(j.key, lr, j.node.LeftKeys)
			matched := false
			deferred := false
			if !keyHasNull(j.key) {
				var cands []types.Row
				if j.spill != nil {
					cands, deferred = j.spill.probe(lr, j.key)
				} else {
					cands = j.table[types.HashRow(j.key)]
				}
				for _, cand := range cands {
					keyInto(j.ckey, cand, j.node.RightKeys)
					if !keysEqual(j.key, j.ckey) {
						continue
					}
					out := types.Concat(lr, cand)
					if j.residual != nil {
						ok, err := j.residual.Eval(out, j.ctx.Params)
						if err != nil {
							return 0, err
						}
						if !ok {
							continue
						}
					}
					matched = true
					b.Rows = append(b.Rows, out)
				}
			}
			if j.node.Type == plan.LeftOuter && !matched && !deferred {
				b.Rows = append(b.Rows, types.Concat(lr, j.nulls))
			}
		}
		j.ctx.Clock.RowWorkBatch(len(b.Rows))
		if len(b.Rows) > 0 {
			b.Sel = identitySel(b.Sel, len(b.Rows))
			return len(b.Rows), nil
		}
	}
}

func (j *batchHashJoin) Close() error {
	j.table = nil
	j.tail = nil
	if j.spill != nil {
		j.spill.close()
		j.spill = nil
	}
	j.ctx.Mem.Release(j.grant)
	j.grant = 0
	return j.left.Close()
}

// ---------- batch hash aggregation ----------

// batchHashAgg consumes its child in batches at Open, accumulating through
// compiled group and aggregate-argument expressions, then emits the sorted
// groups in batches. Charges match hashAgg: one hash probe per input row,
// one unit of row work per output group. Group state is bounded by the same
// aggSink as the row path — rows are fed in identical (serial) order, so
// the spill trigger, partition contents and recursion charges are
// batch/row identical under pressure.
type batchHashAgg struct {
	ctx   *Context
	node  *plan.AggNode
	child BatchOperator

	groupFns []expr.EvalFn
	argFns   []expr.EvalFn // index-aligned with node.Aggs; nil for COUNT(*)

	out []types.Row
	pos int
}

func (a *batchHashAgg) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	a.groupFns = expr.CompileAll(a.node.GroupExprs)
	a.argFns = make([]expr.EvalFn, len(a.node.Aggs))
	for i, spec := range a.node.Aggs {
		if !spec.Star {
			a.argFns[i] = expr.Compile(spec.Arg)
		}
	}
	sink := newAggSink(a.ctx, a.node, 0)
	defer sink.close()
	key := make([]types.Value, len(a.groupFns))
	var in Batch
	for {
		n, err := a.child.NextBatch(&in)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		a.ctx.Clock.ProbesBatch(n)
		for _, i := range in.Sel {
			r := in.Rows[i]
			for gi, fn := range a.groupFns {
				v, err := fn(r, a.ctx.Params)
				if err != nil {
					return err
				}
				key[gi] = v
			}
			if err := sink.add(key, r, func(g *group) error {
				return accumGroupFns(g, a.node, a.argFns, r, a.ctx.Params)
			}); err != nil {
				return err
			}
		}
	}
	order, err := sink.finish()
	if err != nil {
		return err
	}
	// Global aggregate with no groups and no input still yields one row.
	if len(order) == 0 && len(a.node.GroupExprs) == 0 {
		order = append(order, &group{states: make([]aggState, len(a.node.Aggs))})
	}
	sortGroups(order)
	a.ctx.Clock.RowWorkBatch(len(order))
	a.out = make([]types.Row, 0, len(order))
	for _, g := range order {
		row := make(types.Row, 0, len(g.key)+len(g.states))
		row = append(row, g.key...)
		for i := range g.states {
			row = append(row, g.states[i].result(a.node.Aggs[i]))
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

func (a *batchHashAgg) NextBatch(b *Batch) (int, error) {
	if a.pos >= len(a.out) {
		return 0, nil
	}
	end := a.pos + BatchRows
	if end > len(a.out) {
		end = len(a.out)
	}
	b.Rows = append(b.Rows[:0], a.out[a.pos:end]...)
	b.Sel = identitySel(b.Sel, len(b.Rows))
	a.pos = end
	return len(b.Rows), nil
}

func (a *batchHashAgg) Close() error {
	a.out = nil
	return a.child.Close()
}
