package exec

import (
	"sync"

	"rqp/internal/expr"
	"rqp/internal/index"
	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// pageBufPool recycles seqScan page buffers across scans (and, under morsel
// parallelism, across the many short-lived scans a query opens).
var pageBufPool = sync.Pool{
	New: func() any { return make([]types.Row, 0, storage.PageRows) },
}

// seqScan reads a heap table in physical order, applying the pushed-down
// filter. It streams one page at a time, so its working memory is one
// page's rows regardless of table size, and a parent that stops early
// (LIMIT) never pays for pages it did not pull. The heap charges one
// sequential read per page; each examined row charges CPU.
type seqScan struct {
	ctx    *Context
	node   *plan.ScanNode
	rf     *rfConsumer
	npages int
	page   int
	buf    []types.Row
	pos    int
}

func (s *seqScan) Open() error {
	s.npages = s.node.Table.Heap.NumPages()
	s.page = 0
	if s.buf == nil {
		s.buf = pageBufPool.Get().([]types.Row)
	}
	s.buf = s.buf[:0]
	s.pos = 0
	s.rf = bindRuntimeFilters(s.ctx, s.node.RFConsume)
	return nil
}

func (s *seqScan) Next() (types.Row, bool, error) {
	for {
		if s.pos < len(s.buf) {
			r := s.buf[s.pos]
			s.pos++
			return r, true, nil
		}
		if s.page >= s.npages {
			return nil, false, nil
		}
		s.buf = s.buf[:0]
		s.pos = 0
		var evalErr error
		s.node.Table.Heap.ScanPage(s.ctx.Clock, s.page, func(_ storage.RID, r types.Row) bool {
			// Runtime-filter rejects pay only the membership test, never
			// the full per-row charge.
			if s.rf != nil && !s.rf.admit(s.ctx.Clock, r) {
				return true
			}
			s.ctx.Clock.RowWork(1)
			if s.node.Filter != nil {
				ok, err := expr.EvalPredicate(s.node.Filter, r, s.ctx.Params)
				if err != nil {
					evalErr = err
					return false
				}
				if !ok {
					return true
				}
			}
			s.buf = append(s.buf, r)
			return true
		})
		s.page++
		if evalErr != nil {
			return nil, false, evalErr
		}
	}
}

func (s *seqScan) Close() error {
	if s.buf != nil {
		b := s.buf[:cap(s.buf)]
		clear(b) // don't let pooled memory pin row data
		pageBufPool.Put(b[:0])
		s.buf = nil
	}
	return nil
}

// tempScan reads a materialized intermediate, charging sequential I/O as if
// it were paged.
type tempScan struct {
	ctx  *Context
	node *plan.TempScanNode
	rf   *rfConsumer
	pos  int
}

func (s *tempScan) Open() error {
	s.pos = 0
	pages := (len(s.node.Rows) + storage.PageRows - 1) / storage.PageRows
	s.ctx.Clock.SeqRead(pages)
	s.rf = bindRuntimeFilters(s.ctx, s.node.RFConsume)
	return nil
}

func (s *tempScan) Next() (types.Row, bool, error) {
	for s.pos < len(s.node.Rows) {
		r := s.node.Rows[s.pos]
		s.pos++
		if s.rf != nil && !s.rf.admit(s.ctx.Clock, r) {
			continue
		}
		s.ctx.Clock.RowWork(1)
		if s.node.Filter != nil {
			ok, err := expr.EvalPredicate(s.node.Filter, r, s.ctx.Params)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
		}
		return r, true, nil
	}
	return nil, false, nil
}

func (s *tempScan) Close() error { return nil }

// indexScan walks a B+ tree range and fetches matching rows from the heap
// (random I/O per match), then applies the residual predicate.
type indexScan struct {
	ctx  *Context
	node *plan.IndexScanNode
	rf   *rfConsumer
	rows []types.Row
	pos  int
}

func (s *indexScan) Open() error {
	s.rows = s.rows[:0]
	s.pos = 0
	s.rf = bindRuntimeFilters(s.ctx, s.node.RFConsume)
	n := s.node
	lo := index.Bound{Key: n.LoKey, Incl: n.LoIncl, Set: n.LoSet}
	hi := index.Bound{Key: n.HiKey, Incl: n.HiIncl, Set: n.HiSet}
	var evalErr error
	n.Index.Tree.Scan(s.ctx.Clock, lo, hi, func(e index.Entry) bool {
		// NULL keys sort before every bound and would leak into scans with
		// an open lower end, but no SQL comparison matches NULL.
		if e.Key[0].IsNull() {
			return true
		}
		r, ok := n.Table.Heap.Get(s.ctx.Clock, e.RID)
		if !ok {
			return true
		}
		if s.rf != nil && !s.rf.admit(s.ctx.Clock, r) {
			return true
		}
		s.ctx.Clock.RowWork(1)
		if n.Residual != nil {
			pass, err := expr.EvalPredicate(n.Residual, r, s.ctx.Params)
			if err != nil {
				evalErr = err
				return false
			}
			if !pass {
				return true
			}
		}
		s.rows = append(s.rows, r)
		return true
	})
	return evalErr
}

func (s *indexScan) Next() (types.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *indexScan) Close() error {
	s.rows = nil
	return nil
}
