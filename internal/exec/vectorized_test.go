package exec

import (
	"fmt"
	"testing"

	"rqp/internal/obs"
	"rqp/internal/plan"
)

// vectorizedQueries covers the batch repertoire: filtered scans, projection
// arithmetic, hash joins (inner and left outer), global and grouped hash
// aggregation — plus a LIMIT query that must NOT vectorize (batch read-ahead
// under an early-stopping parent would change page-read charges).
var vectorizedQueries = append([]string{
	`SELECT pa.v + pa.g, pa.v * 2 FROM pa WHERE pa.v < 900`,
	`SELECT pa.g, SUM(pa.v + 1) FROM pa WHERE pa.v < 1000 GROUP BY pa.g`,
}, parallelQueries...)

// actualsOf renders every node's recorded actual cardinality, pre-order.
func actualsOf(root plan.Node) string {
	s := ""
	plan.Walk(root, func(n plan.Node) {
		s += fmt.Sprintf("%s=%.0f\n", n.Label(), n.Props().ActualRows)
	})
	return s
}

// TestVectorizedMatchesRow is the tentpole property: with vectorization on,
// every repertoire query must return the exact row sequence of the
// row-at-a-time path, consume exactly the same simulated cost, and record
// identical per-node actual cardinalities (the input of every robustness
// metric) — at DOP 1 (the batch path) and DOP 2/8 (morsel operators with
// compiled expressions).
func TestVectorizedMatchesRow(t *testing.T) {
	cat := buildParallelCatalog(t)
	for _, q := range vectorizedQueries {
		root := parallelPlanFor(t, cat, q)
		sctx := NewContext()
		want, err := Run(root, sctx)
		if err != nil {
			t.Fatalf("%q row: %v", q, err)
		}
		wantCost := sctx.Clock.Units()
		wantStr := rowsJoined(want)
		wantActuals := actualsOf(root)

		for _, d := range []int{1, 2, 8} {
			r2 := parallelPlanFor(t, cat, q)
			if d > 1 {
				plan.MarkParallel(r2, 1)
			}
			plan.MarkVectorized(r2)
			ctx := NewContext()
			ctx.Vec = true
			ctx.DOP = d
			got, err := Run(r2, ctx)
			if err != nil {
				t.Fatalf("%q vec dop=%d: %v", q, d, err)
			}
			if gs := rowsJoined(got); gs != wantStr {
				t.Errorf("%q vec dop=%d: %d rows diverge from row path's %d", q, d, len(got), len(want))
			}
			if c := ctx.Clock.Units(); c != wantCost {
				t.Errorf("%q vec dop=%d: cost %v != row-path cost %v", q, d, c, wantCost)
			}
			if a := actualsOf(r2); a != wantActuals {
				t.Errorf("%q vec dop=%d: actuals diverge\nrow path:\n%svec:\n%s", q, d, wantActuals, a)
			}
		}
	}
}

// spansOf renders a span tree as label/actual/cost lines (calls are
// intentionally excluded: the batch path makes one Next call per batch).
func spansOf(s *obs.Span, depth int) string {
	out := fmt.Sprintf("%*s%s actual=%.0f cost=%v\n", depth*2, "", s.Label(), s.ActualRows(), s.Cost())
	for _, c := range s.Children() {
		out += spansOf(c, depth+1)
	}
	return out
}

// TestVectorizedTraceParity: traced runs must attribute the same inclusive
// cost and the same actual cardinality to every operator span, so EXPLAIN
// ANALYZE and the POP/LEO checkpoints reading spans see no difference.
func TestVectorizedTraceParity(t *testing.T) {
	cat := buildParallelCatalog(t)
	for _, q := range vectorizedQueries {
		run := func(vec bool) string {
			root := parallelPlanFor(t, cat, q)
			if vec {
				plan.MarkVectorized(root)
			}
			ctx := NewContext()
			ctx.Vec = vec
			ctx.Trace = obs.NewTrace(ctx.Clock)
			if _, err := Run(root, ctx); err != nil {
				t.Fatalf("%q vec=%v: %v", q, vec, err)
			}
			out := ""
			for _, r := range ctx.Trace.Roots() {
				out += spansOf(r, 0)
			}
			return out
		}
		if row, vec := run(false), run(true); row != vec {
			t.Errorf("%q: traced spans diverge\nrow:\n%svec:\n%s", q, row, vec)
		}
	}
}

// TestVectorizedLEOFeedback: the batch wrappers must fire the per-node
// feedback hook with the same cardinalities as the row path.
func TestVectorizedLEOFeedback(t *testing.T) {
	cat := buildParallelCatalog(t)
	q := `SELECT pa.v, pb.v FROM pa, pb WHERE pa.k = pb.k`
	run := func(vec bool) map[string]float64 {
		root := parallelPlanFor(t, cat, q)
		if vec {
			plan.MarkVectorized(root)
		}
		ctx := NewContext()
		ctx.Vec = vec
		got := map[string]float64{}
		ctx.OnActual = func(n plan.Node, actual float64) { got[n.Label()] = actual }
		if _, err := Run(root, ctx); err != nil {
			t.Fatal(err)
		}
		return got
	}
	row, vec := run(false), run(true)
	if len(vec) != len(row) {
		t.Fatalf("feedback fired for %d nodes vectorized, %d row-path", len(vec), len(row))
	}
	for k, v := range row {
		if vec[k] != v {
			t.Errorf("node %s: feedback %v vectorized vs %v row-path", k, vec[k], v)
		}
	}
}

// TestMarkVectorized checks the marking policy: subtrees under LIMIT stay
// unmarked (batch read-ahead would break cost parity on early stop), full
// materializers like ORDER BY reset the block, and marking is idempotent.
func TestMarkVectorized(t *testing.T) {
	cat := buildParallelCatalog(t)
	limited := parallelPlanFor(t, cat, `SELECT pa.v FROM pa WHERE pa.v < 600 LIMIT 10`)
	if got := plan.MarkVectorized(limited); got != 0 {
		t.Errorf("MarkVectorized under LIMIT marked %d nodes, want 0", got)
	}
	sorted := parallelPlanFor(t, cat, `SELECT pa.v FROM pa WHERE pa.v < 600 ORDER BY pa.v`)
	first := plan.MarkVectorized(sorted)
	second := plan.MarkVectorized(sorted)
	if first == 0 {
		t.Error("MarkVectorized below ORDER BY marked nothing")
	}
	if first != second {
		t.Errorf("MarkVectorized not idempotent: first=%d second=%d", first, second)
	}
	for _, q := range vectorizedQueries {
		if got := plan.MarkVectorized(parallelPlanFor(t, cat, q)); got == 0 {
			t.Errorf("%q: MarkVectorized marked nothing", q)
		}
	}
}
