package exec

import (
	"sort"

	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// sortOp is an external sort: the input is consumed into runs bounded by
// the broker's current grant; a run that fills its grant is sorted and
// spilled to a storage.TempRun (its grant returning to the broker
// immediately), and spilled runs are read back for the merge. Because the
// grant is re-read per run, a budget shrink mid-sort degrades the sort
// gracefully instead of failing — the grow-and-shrink behaviour the
// resource-management sessions call for.
type sortOp struct {
	ctx   *Context
	keys  []plan.OrderSpec
	child Operator

	rows []types.Row
	pos  int
}

func (s *sortOp) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	var spilled []*storage.TempRun
	var last []types.Row // final, grant-resident run
	lastGrant := 0
	defer func() { s.ctx.Mem.Release(lastGrant) }()
	for {
		grant := s.ctx.Mem.Grant(1 << 20)
		run := make([]types.Row, 0, min(grant, 1024))
		for len(run) < grant {
			r, ok, err := s.child.Next()
			if err != nil {
				s.ctx.Mem.Release(grant)
				return err
			}
			if !ok {
				break
			}
			run = append(run, r.Clone())
		}
		if len(run) == 0 {
			s.ctx.Mem.Release(grant)
			break
		}
		s.sortRun(run)
		if len(run) < grant {
			last = run
			lastGrant = grant
			break
		}
		// This run filled its grant: it spills, and its grant goes back to
		// the broker before the next run is read.
		tr := storage.NewTempRun()
		for _, r := range run {
			tr.Append(s.ctx.Clock, r)
		}
		spilled = append(spilled, tr)
		s.ctx.Mem.Release(grant)
		s.ctx.Spill.record(1, tr.Len(), tr.Pages(), 0)
		s.ctx.spillEvent("spill.sort", "run=%d rows=%d pages=%d grant=%d",
			len(spilled), tr.Len(), tr.Pages(), grant)
	}
	runs := make([][]types.Row, 0, len(spilled)+1)
	for _, tr := range spilled {
		runs = append(runs, tr.Drain(s.ctx.Clock))
	}
	if last != nil {
		runs = append(runs, last)
	}
	s.rows = s.mergeRuns(runs)
	s.pos = 0
	return nil
}

func (s *sortOp) less(a, b types.Row) bool {
	for _, k := range s.keys {
		c := types.Compare(a[k.Col], b[k.Col])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

func (s *sortOp) sortRun(run []types.Row) {
	n := len(run)
	if n > 1 {
		s.ctx.Clock.Compares(int(float64(n) * log2(float64(n))))
	}
	sort.SliceStable(run, func(i, j int) bool { return s.less(run[i], run[j]) })
}

func (s *sortOp) mergeRuns(runs [][]types.Row) []types.Row {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]types.Row, 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if idx[i] >= len(r) {
				continue
			}
			if best == -1 || s.less(r[idx[i]], runs[best][idx[best]]) {
				best = i
			}
			s.ctx.Clock.Compares(1)
		}
		out = append(out, runs[best][idx[best]])
		idx[best]++
	}
	return out
}

func (s *sortOp) Next() (types.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sortOp) Close() error {
	s.rows = nil
	return s.child.Close()
}
