package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rqp/internal/obs"
	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// Runtime join filters: when a hash join finishes its build phase it derives
// a Bloom filter plus min/max bounds over each join-key column and publishes
// them into the query's RuntimeFilterSet. Probe-side scans that the planner
// annotated as consumers (plan.PlanRuntimeFilters) test each row's key
// against the published filters and drop non-qualifying rows before they pay
// full per-row cost. Dropped rows are charged only CostModel.FilterTest;
// surviving rows proceed through the normal RowCPU/HashProbe pipeline.
//
// Robustness guarantee: each filter tracks its observed drop rate and
// disables itself at a window boundary when the rate falls below the
// cost-model break-even (FilterTest / (RowCPU + HashProbe)), so a filter
// that turns out to be non-selective bounds the query's overhead at roughly
// one observation window of membership tests plus the build charge.

const (
	// rfBitsPerKey sizes the Bloom filter (~10 bits/key ≈ 1% false-positive
	// rate at two hash functions, which is plenty: false positives only
	// forfeit savings, never correctness).
	rfBitsPerKey = 10
	// rfMinBits floors tiny builds so the mask math stays well-formed.
	rfMinBits = 256
	// rfWindow is how many tested rows a filter observes between adaptive
	// disable decisions.
	rfWindow = 1024
	// rfMinDropRate is the break-even drop rate under DefaultCostModel:
	// a test costs FilterTest=0.002 and a drop saves RowCPU+HashProbe=0.025,
	// so below 0.002/0.025 = 0.08 the filter costs more than it saves.
	rfMinDropRate = 0.08
)

// RuntimeFilter is one Bloom + min/max filter derived from a completed hash
// join build over a single join-key column. All probe-side state transitions
// are atomic so morsel workers can test and observe concurrently.
type RuntimeFilter struct {
	ID        int
	words     []uint64
	mask      uint64
	min, max  types.Value
	bounded   bool
	buildRows int

	tested   int64 // atomic: probe rows tested
	dropped  int64 // atomic: probe rows dropped
	disabled int32 // atomic: 1 once adaptively disabled
}

// newRuntimeFilter sizes a filter for a build side of buildRows rows.
// Partial filters built by parallel workers pass the full build cardinality
// so every partial has the same geometry and merge is a plain word-wise OR.
func newRuntimeFilter(id, buildRows int) *RuntimeFilter {
	nbits := rfBitsPerKey * buildRows
	if nbits < rfMinBits {
		nbits = rfMinBits
	}
	n := 1
	for n < nbits {
		n <<= 1
	}
	return &RuntimeFilter{ID: id, words: make([]uint64, n/64), mask: uint64(n - 1), buildRows: buildRows}
}

// rfMix derives the second Bloom hash from the first (murmur finalizer
// steps), giving k=2 independent bit positions per key.
func rfMix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func (f *RuntimeFilter) setBit(h uint64) {
	b := h & f.mask
	f.words[b>>6] |= 1 << (b & 63)
}

func (f *RuntimeFilter) getBit(h uint64) bool {
	b := h & f.mask
	return f.words[b>>6]&(1<<(b&63)) != 0
}

// add inserts one build-side key. Null keys are skipped: they never match
// an inner-join probe, so leaving them out lets test reject null probe keys
// outright. Not safe for concurrent use — each builder owns its filter (or
// partial) exclusively until publish/merge.
func (f *RuntimeFilter) add(v types.Value) {
	if v.IsNull() {
		return
	}
	h := v.Hash()
	f.setBit(h)
	f.setBit(rfMix(h))
	if !f.bounded {
		f.min, f.max, f.bounded = v, v, true
	} else {
		if types.Compare(v, f.min) < 0 {
			f.min = v
		}
		if types.Compare(v, f.max) > 0 {
			f.max = v
		}
	}
}

// merge ORs a same-geometry partial into f (parallel build workers each fill
// a partial over their morsels; the exchange barrier folds them together).
func (f *RuntimeFilter) merge(o *RuntimeFilter) {
	for i, w := range o.words {
		f.words[i] |= w
	}
	if o.bounded {
		if !f.bounded {
			f.min, f.max, f.bounded = o.min, o.max, true
		} else {
			if types.Compare(o.min, f.min) < 0 {
				f.min = o.min
			}
			if types.Compare(o.max, f.max) > 0 {
				f.max = o.max
			}
		}
	}
}

func (f *RuntimeFilter) enabled() bool { return atomic.LoadInt32(&f.disabled) == 0 }

// test reports whether a probe key might have a build-side match. False
// negatives are impossible (every build key set its bits); false positives
// only forfeit savings. An empty or all-null build drops every probe row,
// which is exactly right for an inner join.
func (f *RuntimeFilter) test(v types.Value) bool {
	if v.IsNull() {
		return false
	}
	if f.bounded {
		if types.Compare(v, f.min) < 0 || types.Compare(v, f.max) > 0 {
			return false
		}
	}
	h := v.Hash()
	return f.getBit(h) && f.getBit(rfMix(h))
}

// observe records one test outcome and, at each window boundary, disables
// the filter when its drop rate is below break-even. The decision depends
// only on the sequence of (tested, dropped) counter values, so serial row
// and vectorized executions — which test rows in the same order — disable
// at the identical row and stay cost-identical.
func (f *RuntimeFilter) observe(drop bool, set *RuntimeFilterSet) {
	if drop {
		atomic.AddInt64(&f.dropped, 1)
	}
	t := atomic.AddInt64(&f.tested, 1)
	if t%rfWindow != 0 {
		return
	}
	if float64(atomic.LoadInt64(&f.dropped))/float64(t) >= rfMinDropRate {
		return
	}
	if atomic.CompareAndSwapInt32(&f.disabled, 0, 1) {
		atomic.AddInt64(&set.disabledN, 1)
		if set.trace != nil {
			set.trace.Event("rf.disable", fmt.Sprintf("filter=%d tested=%d dropped=%d", f.ID, t, atomic.LoadInt64(&f.dropped)))
		}
	}
}

// RuntimeFilterSet is the per-query registry connecting producers (hash join
// builds) to consumers (probe-side scans). A nil set disables the feature.
type RuntimeFilterSet struct {
	mu      sync.RWMutex
	filters map[int]*RuntimeFilter
	trace   *obs.Trace

	disabledN int64 // atomic
}

// NewRuntimeFilterSet returns an empty set. tr may be nil (tracing off).
func NewRuntimeFilterSet(tr *obs.Trace) *RuntimeFilterSet {
	return &RuntimeFilterSet{filters: make(map[int]*RuntimeFilter), trace: tr}
}

func (s *RuntimeFilterSet) publish(f *RuntimeFilter) {
	s.mu.Lock()
	s.filters[f.ID] = f
	s.mu.Unlock()
}

func (s *RuntimeFilterSet) lookup(id int) *RuntimeFilter {
	s.mu.RLock()
	f := s.filters[id]
	s.mu.RUnlock()
	return f
}

// Snapshot totals the set's activity for EXPLAIN ANALYZE and metrics.
func (s *RuntimeFilterSet) Snapshot() (built, tested, dropped, disabled int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, f := range s.filters {
		built++
		tested += atomic.LoadInt64(&f.tested)
		dropped += atomic.LoadInt64(&f.dropped)
	}
	return built, tested, dropped, atomic.LoadInt64(&s.disabledN)
}

// buildRuntimeFilters derives and publishes the filters a hash join's plan
// node announced, from the drained build side. Charged at FilterTest per
// build row per filter on the caller's clock (batch charge: exactly equal
// to per-row charges by the Clock.addBatch identity).
func buildRuntimeFilters(ctx *Context, node *plan.JoinNode, clk *storage.Clock, build []types.Row) {
	if ctx.RF == nil || len(node.RFilters) == 0 {
		return
	}
	for _, sp := range node.RFilters {
		f := newRuntimeFilter(sp.ID, len(build))
		clk.FilterTestsBatch(len(build))
		col := node.RightKeys[sp.Col]
		for _, r := range build {
			f.add(r[col])
		}
		ctx.RF.publish(f)
		if ctx.Trace != nil {
			ctx.Trace.Event("rf.build", fmt.Sprintf("filter=%d keys=%d bits=%d", f.ID, len(build), len(f.words)*64))
		}
	}
}

// rfConsumer is a scan's bound view of the filters it consumes: parallel
// slices of filter and the scan-output column each one tests.
type rfConsumer struct {
	set     *RuntimeFilterSet
	filters []*RuntimeFilter
	cols    []int
}

// bindRuntimeFilters resolves a scan node's consumer annotations against the
// query's filter set. Returns nil when the feature is off, nothing is
// annotated, or no announced filter has been published yet (a filter can be
// missing only if its producing join never opened — e.g. pruned subtree —
// in which case the scan just runs unfiltered).
func bindRuntimeFilters(ctx *Context, specs []plan.RFilterSpec) *rfConsumer {
	if ctx.RF == nil || len(specs) == 0 {
		return nil
	}
	c := &rfConsumer{set: ctx.RF}
	for _, sp := range specs {
		if f := ctx.RF.lookup(sp.ID); f != nil {
			c.filters = append(c.filters, f)
			c.cols = append(c.cols, sp.Col)
		}
	}
	if len(c.filters) == 0 {
		return nil
	}
	return c
}

// admit tests one row against every enabled filter, charging FilterTest per
// membership test on clk. Reports false when any filter rejects the row.
func (c *rfConsumer) admit(clk *storage.Clock, r types.Row) bool {
	for i, f := range c.filters {
		if !f.enabled() {
			continue
		}
		clk.FilterTests(1)
		ok := f.test(r[c.cols[i]])
		f.observe(!ok, c.set)
		if !ok {
			return false
		}
	}
	return true
}

// admitBatch filters a selection vector in place, returning the surviving
// prefix. Rows are tested in selection order with filters applied in the
// same inner order as admit, so the tested/dropped counter sequences — and
// therefore any adaptive disable decision — are identical to the row path;
// the single batch charge equals the row path's per-test charges exactly.
func (c *rfConsumer) admitBatch(clk *storage.Clock, rows []types.Row, sel []int) []int {
	out := sel[:0]
	tests := 0
	for _, idx := range sel {
		pass := true
		for i, f := range c.filters {
			if !f.enabled() {
				continue
			}
			tests++
			ok := f.test(rows[idx][c.cols[i]])
			f.observe(!ok, c.set)
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			out = append(out, idx)
		}
	}
	if tests > 0 {
		clk.FilterTestsBatch(tests)
	}
	return out
}
