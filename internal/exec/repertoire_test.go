package exec

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// TestAllEnumeratedPlansAgree is the plan-repertoire correctness invariant
// behind Metric2/Metric3: every plan the optimizer can enumerate — any join
// order, any algorithm, any access path — must compute the same result.
func TestAllEnumeratedPlansAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cat := catalog.New()
	mk := func(name string, rows int, mod int64, withIndex bool) {
		tb, err := cat.CreateTable(name, types.Schema{
			{Name: "k", Kind: types.KindInt},
			{Name: "v", Kind: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			cat.Insert(nil, tb, types.Row{types.Int(rng.Int63n(mod)), types.Int(int64(i))})
		}
		if withIndex {
			if _, err := cat.CreateIndex(nil, name, name+"_k", []string{"k"}, false); err != nil {
				t.Fatal(err)
			}
		}
		cat.AnalyzeTable(tb, 8)
	}
	mk("ra", 150, 20, true)
	mk("rb", 80, 20, false)
	mk("rc", 40, 20, true)

	queries := []string{
		`SELECT ra.v, rb.v FROM ra, rb WHERE ra.k = rb.k AND ra.v < 100`,
		`SELECT ra.v, rb.v, rc.v FROM ra, rb, rc WHERE ra.k = rb.k AND rb.k = rc.k AND rc.v < 30`,
		`SELECT COUNT(*) FROM ra, rb, rc WHERE ra.k = rb.k AND rb.k = rc.k`,
	}
	for _, q := range queries {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
		if err != nil {
			t.Fatal(err)
		}
		o := opt.New(cat)
		o.Opt.CrossProducts = true
		plans, err := o.EnumerateFullPlans(bq, nil, 200)
		if err != nil {
			t.Fatal(err)
		}
		if len(plans) < 6 {
			t.Fatalf("%q: only %d plans enumerated", q, len(plans))
		}
		var ref []string
		algsSeen := map[string]bool{}
		for pi, p := range plans {
			sig := plan.PlanSignature(p.Root)
			for _, alg := range []string{"HashJoin", "MergeJoin", "NestedLoopJoin", "IndexNLJoin"} {
				if strings.Contains(sig, alg) {
					algsSeen[alg] = true
				}
			}
			rows, err := Run(p.Root, NewContext())
			if err != nil {
				t.Fatalf("%q plan %d (%s): %v", q, pi, sig, err)
			}
			got := make([]string, len(rows))
			for i, r := range rows {
				got[i] = r.String()
			}
			sort.Strings(got)
			if ref == nil {
				ref = got
				continue
			}
			if strings.Join(got, ";") != strings.Join(ref, ";") {
				t.Fatalf("%q plan %d (%s) diverges: %d rows vs %d", q, pi, sig, len(got), len(ref))
			}
		}
		if len(algsSeen) < 3 {
			t.Errorf("%q: repertoire too narrow in enumeration: %v", q, algsSeen)
		}
	}
}

// TestForcedAlgorithmsOnDuplicateHeavyData stresses each join algorithm on
// inputs where every key has many duplicates on both sides (the classic
// merge-join group-replay trap).
func TestForcedAlgorithmsOnDuplicateHeavyData(t *testing.T) {
	cat := catalog.New()
	la, _ := cat.CreateTable("la", types.Schema{{Name: "k", Kind: types.KindInt}, {Name: "x", Kind: types.KindInt}})
	lb, _ := cat.CreateTable("lb", types.Schema{{Name: "k", Kind: types.KindInt}, {Name: "y", Kind: types.KindInt}})
	for i := 0; i < 60; i++ {
		cat.Insert(nil, la, types.Row{types.Int(int64(i % 3)), types.Int(int64(i))})
	}
	for i := 0; i < 40; i++ {
		cat.Insert(nil, lb, types.Row{types.Int(int64(i % 3)), types.Int(int64(i))})
	}
	cat.AnalyzeTable(la, 4)
	cat.AnalyzeTable(lb, 4)
	// Expected: per key 20×~13 pairings; total = 20*14 + 20*13 + 20*13 = 800
	want := 0
	for k := 0; k < 3; k++ {
		na, nb := 0, 0
		for i := 0; i < 60; i++ {
			if i%3 == k {
				na++
			}
		}
		for i := 0; i < 40; i++ {
			if i%3 == k {
				nb++
			}
		}
		want += na * nb
	}
	st, _ := sql.Parse("SELECT la.x, lb.y FROM la, lb WHERE la.k = lb.k")
	for _, alg := range []plan.JoinAlg{plan.JoinHash, plan.JoinMerge, plan.JoinNL, plan.JoinSymHash, plan.JoinGeneral} {
		bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
		if err != nil {
			t.Fatal(err)
		}
		o := opt.New(cat)
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite the join algorithm in place (the executor dispatches on it).
		plan.Walk(root, func(n plan.Node) {
			if j, ok := n.(*plan.JoinNode); ok {
				j.Alg = alg
			}
		})
		rows, err := Run(root, NewContext())
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(rows) != want {
			t.Errorf("%v produced %d rows, want %d", alg, len(rows), want)
		}
	}
}

// TestJoinsWithNullKeys: NULL join keys must never match, in any algorithm.
func TestJoinsWithNullKeys(t *testing.T) {
	cat := catalog.New()
	na, _ := cat.CreateTable("na", types.Schema{{Name: "k", Kind: types.KindInt}})
	nb, _ := cat.CreateTable("nb", types.Schema{{Name: "k", Kind: types.KindInt}})
	cat.Insert(nil, na, types.Row{types.Int(1)})
	cat.Insert(nil, na, types.Row{types.Null()})
	cat.Insert(nil, na, types.Row{types.Int(2)})
	cat.Insert(nil, nb, types.Row{types.Null()})
	cat.Insert(nil, nb, types.Row{types.Int(1)})
	cat.AnalyzeTable(na, 2)
	cat.AnalyzeTable(nb, 2)
	st, _ := sql.Parse("SELECT na.k FROM na, nb WHERE na.k = nb.k")
	for _, alg := range []plan.JoinAlg{plan.JoinHash, plan.JoinMerge, plan.JoinNL, plan.JoinSymHash, plan.JoinGeneral} {
		bq, _ := plan.Bind(st.(*sql.SelectStmt), cat)
		o := opt.New(cat)
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		plan.Walk(root, func(n plan.Node) {
			if j, ok := n.(*plan.JoinNode); ok {
				j.Alg = alg
			}
		})
		rows, err := Run(root, NewContext())
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(rows) != 1 || rows[0][0].I != 1 {
			t.Errorf("%v: NULL keys must not join: got %d rows", alg, len(rows))
		}
	}
}

// TestLeftOuterJoinAllAlgorithms checks null extension under both
// executable outer-join algorithms.
func TestLeftOuterJoinAllAlgorithms(t *testing.T) {
	cat := catalog.New()
	oa, _ := cat.CreateTable("oa", types.Schema{{Name: "k", Kind: types.KindInt}})
	ob, _ := cat.CreateTable("ob", types.Schema{{Name: "k", Kind: types.KindInt}, {Name: "v", Kind: types.KindInt}})
	for i := 0; i < 10; i++ {
		cat.Insert(nil, oa, types.Row{types.Int(int64(i))})
	}
	for i := 0; i < 5; i++ {
		cat.Insert(nil, ob, types.Row{types.Int(int64(i * 2)), types.Int(int64(i))})
	}
	cat.AnalyzeTable(oa, 2)
	cat.AnalyzeTable(ob, 2)
	st, _ := sql.Parse("SELECT oa.k, ob.v FROM oa LEFT JOIN ob ON oa.k = ob.k")
	for _, alg := range []plan.JoinAlg{plan.JoinHash, plan.JoinNL} {
		bq, _ := plan.Bind(st.(*sql.SelectStmt), cat)
		o := opt.New(cat)
		root, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatal(err)
		}
		plan.Walk(root, func(n plan.Node) {
			if j, ok := n.(*plan.JoinNode); ok && j.Type == plan.LeftOuter {
				j.Alg = alg
			}
		})
		rows, err := Run(root, NewContext())
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(rows) != 10 {
			t.Fatalf("%v: left join rows = %d, want 10", alg, len(rows))
		}
		nulls := 0
		for _, r := range rows {
			if r[1].IsNull() {
				nulls++
			}
		}
		if nulls != 5 {
			t.Errorf("%v: null-extended rows = %d, want 5", alg, nulls)
		}
	}
}
