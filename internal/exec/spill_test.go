package exec

import (
	"fmt"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/obs"
	"rqp/internal/plan"
	"rqp/internal/types"
)

// ---------- MemBroker regressions ----------

// TestMemBrokerMinimumGrant: the progress floor must hold no matter how
// exhausted or small the budget is — a zero grant would leave
// grant-sized-run loops (sort, recursive spill) spinning without progress.
func TestMemBrokerMinimumGrant(t *testing.T) {
	m := NewMemBroker(0)
	if g := m.Grant(1000); g != 16 {
		t.Fatalf("zero-budget grant = %d, want floor 16", g)
	}
	if g := m.Grant(5); g != 5 {
		t.Fatalf("small grant = %d, want full 5 (floor is min(want, 16))", g)
	}
	m2 := NewMemBroker(-7) // a schedule or operator may drive the budget negative
	if g := m2.Grant(100); g != 16 {
		t.Fatalf("negative-budget grant = %d, want floor 16", g)
	}
}

// TestMemBrokerNonPositiveWant: non-positive requests return zero and must
// not corrupt broker accounting (a negative want used to decrease inUse).
func TestMemBrokerNonPositiveWant(t *testing.T) {
	m := NewMemBroker(100)
	m.Grant(40)
	for _, want := range []int{0, -1, -50} {
		if g := m.Grant(want); g != 0 {
			t.Fatalf("Grant(%d) = %d, want 0", want, g)
		}
	}
	if u := m.InUse(); u != 40 {
		t.Fatalf("inUse after non-positive grants = %d, want 40", u)
	}
}

// TestMemBrokerSchedule: an installed schedule re-reads the budget before
// every grant, stepping once per grant — the mid-query pressure injector.
func TestMemBrokerSchedule(t *testing.T) {
	m := NewMemBroker(1 << 20)
	sched := []int{100, 50, 10}
	m.SetSchedule(func(step int) int {
		if step >= len(sched) {
			return sched[len(sched)-1]
		}
		return sched[step]
	})
	if g := m.Grant(1000); g != 100 {
		t.Fatalf("grant under schedule step 0 = %d, want 100", g)
	}
	m.Release(100)
	if g := m.Grant(1000); g != 50 {
		t.Fatalf("grant under schedule step 1 = %d, want 50", g)
	}
	m.Release(50)
	// Step 2 shrinks the budget to 10 — below the progress floor, which
	// wins (and counts as an overcommit).
	if g := m.Grant(1000); g != 16 {
		t.Fatalf("grant under schedule step 2 = %d, want floor 16", g)
	}
	if b := m.Budget(); b != 10 {
		t.Fatalf("budget after schedule = %d, want 10", b)
	}
	if m.Overcommits() == 0 {
		t.Fatal("floor grant past a shrunk budget must count as overcommit")
	}
	m.SetSchedule(nil)
	if g := m.Grant(1000); g == 0 {
		t.Fatal("grant after clearing schedule must still progress")
	}
}

// ---------- spilling execution ----------

// spillCatalog builds join inputs large enough that a tight budget forces
// multi-level recursion: big(k, v) with ~6 rows per key, probe(k, v)
// matching a subset, plus NULL keys on both sides (which must never match
// but must survive left-outer extension).
func spillCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mk := func(name string, rows int, mod int64, nullEvery int) {
		tb, err := cat.CreateTable(name, types.Schema{
			{Name: "k", Kind: types.KindInt},
			{Name: "g", Kind: types.KindInt},
			{Name: "v", Kind: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			k := types.Int(int64(i) % mod)
			if nullEvery > 0 && i%nullEvery == 0 {
				k = types.Null()
			}
			cat.Insert(nil, tb, types.Row{k, types.Int(int64(i % 11)), types.Int(int64(i))})
		}
		cat.AnalyzeTable(tb, 8)
	}
	mk("big", 1600, 260, 19)
	mk("probe", 900, 260, 23)
	return cat
}

var spillQueries = []string{
	`SELECT probe.v, big.v FROM probe, big WHERE probe.k = big.k`,
	`SELECT probe.v, big.v FROM probe LEFT JOIN big ON probe.k = big.k`,
	`SELECT big.g, COUNT(*), SUM(big.v), MIN(big.v), MAX(big.v) FROM big GROUP BY big.g`,
	`SELECT probe.g, COUNT(DISTINCT big.k), SUM(big.v) FROM probe, big WHERE probe.k = big.k GROUP BY probe.g`,
	`SELECT big.v FROM big WHERE big.k IS NOT NULL ORDER BY big.v`,
}

func runSpillQuery(t testing.TB, cat *catalog.Catalog, q string, budget int, dop int, vec bool, sched func(int) int) ([]types.Row, *Context) {
	t.Helper()
	root := parallelPlanFor(t, cat, q)
	if dop > 1 {
		plan.MarkParallel(root, 1)
	}
	if vec {
		plan.MarkVectorized(root)
	}
	ctx := NewContext()
	ctx.Mem = NewMemBroker(budget)
	if sched != nil {
		ctx.Mem.SetSchedule(sched)
	}
	ctx.DOP = dop
	ctx.Vec = vec
	rows, err := Run(root, ctx)
	if err != nil {
		t.Fatalf("%q budget=%d dop=%d vec=%v: %v", q, budget, dop, vec, err)
	}
	return rows, ctx
}

// TestSpillJoinBuildOverBudget is the acceptance criterion: a hash join
// whose build side is 8x the memory budget must complete with results
// identical to the unlimited-budget run at DOP 1 and DOP 4, with spill
// partitions and recursion visible in the stats.
func TestSpillJoinBuildOverBudget(t *testing.T) {
	cat := spillCatalog(t)
	q := spillQueries[0]
	want, _ := runSpillQuery(t, cat, q, 1<<30, 1, false, nil)
	wantS := sortedRowStrings(want)
	// The build side ("big" after its filterless scan) is ~1600 rows; a
	// budget of 200 makes it 8x over budget.
	for _, dop := range []int{1, 4} {
		got, ctx := runSpillQuery(t, cat, q, 200, dop, false, nil)
		if gs := sortedRowStrings(got); fmt.Sprint(gs) != fmt.Sprint(wantS) {
			t.Fatalf("dop=%d: spilled join diverges from unlimited run (%d vs %d rows)", dop, len(got), len(want))
		}
		parts, rows, pages, depth, _ := ctx.Spill.Snapshot()
		if parts == 0 || rows == 0 || pages == 0 {
			t.Fatalf("dop=%d: expected spill activity, got parts=%d rows=%d pages=%d", dop, parts, rows, pages)
		}
		if depth < 1 {
			t.Fatalf("dop=%d: expected recursive spilling, max depth = %d", dop, depth)
		}
	}
}

// TestSpillMergeFallback: a build side that is one giant duplicate-key
// group cannot be split by repartitioning; at the recursion bound the join
// must fall back to external sort-merge and still be exact.
func TestSpillMergeFallback(t *testing.T) {
	cat := catalog.New()
	mk := func(name string, rows int) {
		tb, err := cat.CreateTable(name, types.Schema{
			{Name: "k", Kind: types.KindInt},
			{Name: "v", Kind: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			cat.Insert(nil, tb, types.Row{types.Int(7), types.Int(int64(i))})
		}
		cat.AnalyzeTable(tb, 8)
	}
	mk("skl", 40)
	mk("skr", 300) // every row shares key 7: partitions never shrink
	q := `SELECT skl.v, skr.v FROM skl, skr WHERE skl.k = skr.k`
	want, _ := runSpillQuery(t, cat, q, 1<<30, 1, false, nil)
	got, ctx := runSpillQuery(t, cat, q, 20, 1, false, nil)
	if fmt.Sprint(sortedRowStrings(got)) != fmt.Sprint(sortedRowStrings(want)) {
		t.Fatalf("merge-fallback join diverges (%d vs %d rows)", len(got), len(want))
	}
	if _, _, _, _, fallbacks := ctx.Spill.Snapshot(); fallbacks == 0 {
		t.Fatal("expected at least one sort-merge fallback")
	}
}

// TestSpillEventsVisible: with a tracer attached, spilling emits spill.*
// events — the EXPLAIN ANALYZE surface of graceful degradation.
func TestSpillEventsVisible(t *testing.T) {
	cat := spillCatalog(t)
	root := parallelPlanFor(t, cat, spillQueries[0])
	ctx := NewContext()
	ctx.Mem = NewMemBroker(200)
	ctx.Trace = obs.NewTrace(ctx.Clock)
	if _, err := Run(root, ctx); err != nil {
		t.Fatal(err)
	}
	if n := ctx.Trace.CountEvents("spill.partition"); n == 0 {
		t.Fatal("expected spill.partition trace events")
	}
}

// TestSpillPropertyAcrossBudgets is the satellite property test: for every
// repertoire query, the result multiset must be byte-identical across
// budgets {unlimited, tight, shrinking mid-query} at DOP 1, 2 and 8, on
// both the row and vectorized paths.
func TestSpillPropertyAcrossBudgets(t *testing.T) {
	cat := spillCatalog(t)
	shrink := func(step int) int { // 4096 → 64, halving per grant
		b := 4096 >> step
		if b < 64 {
			return 64
		}
		return b
	}
	budgets := []struct {
		name   string
		budget int
		sched  func(int) int
	}{
		{"unlimited", 1 << 30, nil},
		{"tight", 96, nil},
		{"shrinking", 4096, shrink},
	}
	for _, q := range spillQueries {
		want, _ := runSpillQuery(t, cat, q, 1<<30, 1, false, nil)
		wantS := fmt.Sprint(sortedRowStrings(want))
		for _, b := range budgets {
			for _, dop := range []int{1, 2, 8} {
				for _, vec := range []bool{false, true} {
					got, _ := runSpillQuery(t, cat, q, b.budget, dop, vec, b.sched)
					if gs := fmt.Sprint(sortedRowStrings(got)); gs != wantS {
						t.Errorf("%q %s dop=%d vec=%v: results diverge (%d vs %d rows)",
							q, b.name, dop, vec, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestSpillRowVecCostParity: under memory pressure the row and vectorized
// serial paths must still consume identical simulated cost — the spill
// machinery is shared and fed in identical order.
func TestSpillRowVecCostParity(t *testing.T) {
	cat := spillCatalog(t)
	for _, q := range spillQueries {
		_, rctx := runSpillQuery(t, cat, q, 128, 1, false, nil)
		_, vctx := runSpillQuery(t, cat, q, 128, 1, true, nil)
		if rc, vc := rctx.Clock.Units(), vctx.Clock.Units(); rc != vc {
			t.Errorf("%q: row cost %v != vec cost %v under pressure", q, rc, vc)
		}
	}
}

// TestSpillSortTempRuns: the external sort spills full runs through temp
// runs; order and content stay exact and the activity is recorded.
func TestSpillSortTempRuns(t *testing.T) {
	cat := spillCatalog(t)
	q := spillQueries[4]
	want, _ := runSpillQuery(t, cat, q, 1<<30, 1, false, nil)
	got, ctx := runSpillQuery(t, cat, q, 64, 1, false, nil)
	if fmt.Sprint(rowStrings(got)) != fmt.Sprint(rowStrings(want)) {
		t.Fatalf("spilled sort diverges (%d vs %d rows)", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i][0].I < got[i-1][0].I {
			t.Fatal("spilled sort not ordered")
		}
	}
	parts, _, pages, _, _ := ctx.Spill.Snapshot()
	if parts == 0 || pages == 0 {
		t.Fatalf("expected sort spill runs recorded, got parts=%d pages=%d", parts, pages)
	}
}

// TestSpillCostMonotoneInBudget: more memory must never cost more — the
// monotone-degradation property behind the memory-axis robustness maps.
// Partitioning is grant-independent and residency is a budget-prefix, so a
// larger budget spills a subset of the partitions a smaller one does.
func TestSpillCostMonotoneInBudget(t *testing.T) {
	cat := spillCatalog(t)
	for _, q := range spillQueries[:2] {
		prev := -1.0
		for _, budget := range []int{64, 128, 256, 512, 1024, 4096, 1 << 30} {
			_, ctx := runSpillQuery(t, cat, q, budget, 1, false, nil)
			cost := ctx.Clock.Units()
			if prev >= 0 && cost > prev {
				t.Errorf("%q: cost rose from %v to %v when budget grew to %d", q, prev, cost, budget)
			}
			prev = cost
		}
	}
}
