package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/storage"
	"rqp/internal/types"
)

func TestRuntimeFilterMembershipAndBounds(t *testing.T) {
	f := newRuntimeFilter(0, 100)
	for i := 0; i < 100; i++ {
		f.add(types.Int(int64(i * 3)))
	}
	for i := 0; i < 100; i++ {
		if !f.test(types.Int(int64(i * 3))) {
			t.Fatalf("false negative for inserted key %d", i*3)
		}
	}
	if f.test(types.Null()) {
		t.Fatal("null probe key must never match (inner-join semantics)")
	}
	if f.test(types.Int(-5)) || f.test(types.Int(400)) {
		t.Fatal("keys outside [min, max] must be rejected by bounds")
	}
	// In-range non-members mostly miss: at ~10 bits/key, k=2, well under
	// half may alias. The interesting property — false negatives are
	// impossible — is asserted above; this guards against a degenerate
	// all-ones filter.
	fp := 0
	for i := 0; i < 297; i++ {
		if i%3 != 0 && f.test(types.Int(int64(i))) {
			fp++
		}
	}
	if fp > 99 {
		t.Fatalf("%d/198 false positives; filter is degenerate", fp)
	}

	empty := newRuntimeFilter(1, 0)
	if empty.test(types.Int(7)) {
		t.Fatal("empty build must drop every probe row")
	}
	nullOnly := newRuntimeFilter(2, 3)
	nullOnly.add(types.Null())
	if nullOnly.test(types.Int(7)) {
		t.Fatal("all-null build must drop every probe row")
	}
}

func TestRuntimeFilterMergeMatchesSerial(t *testing.T) {
	keys := make([]int64, 200)
	for i := range keys {
		keys[i] = int64(i*7 - 300)
	}
	serial := newRuntimeFilter(0, len(keys))
	for _, k := range keys {
		serial.add(types.Int(k))
	}
	// Partials sized for the full build share the serial geometry, so the
	// OR-merge must reproduce the serial filter bit for bit.
	merged := newRuntimeFilter(0, len(keys))
	for part := 0; part < 4; part++ {
		p := newRuntimeFilter(0, len(keys))
		for i := part * 50; i < (part+1)*50; i++ {
			p.add(types.Int(keys[i]))
		}
		merged.merge(p)
	}
	if !reflect.DeepEqual(serial.words, merged.words) {
		t.Fatal("merged partials diverge from serial build")
	}
	if types.Compare(serial.min, merged.min) != 0 || types.Compare(serial.max, merged.max) != 0 {
		t.Fatalf("merged bounds [%v,%v] != serial [%v,%v]", merged.min, merged.max, serial.min, serial.max)
	}
}

func TestRuntimeFilterAdaptiveDisable(t *testing.T) {
	set := NewRuntimeFilterSet(nil)
	f := newRuntimeFilter(0, 10)
	for i := 0; i < 10; i++ {
		f.add(types.Int(int64(i)))
	}
	c := &rfConsumer{set: set, filters: []*RuntimeFilter{f}, cols: []int{0}}
	clk := storage.NewClock(storage.DefaultCostModel())

	// Every probe row matches: drop rate 0 is below break-even, so the
	// filter must turn itself off at the first window boundary.
	for i := 0; i < rfWindow; i++ {
		if !c.admit(clk, types.Row{types.Int(int64(i % 10))}) {
			t.Fatalf("row %d wrongly dropped", i)
		}
	}
	if f.enabled() {
		t.Fatal("non-selective filter still enabled after a full window")
	}
	if _, _, _, disabled := set.Snapshot(); disabled != 1 {
		t.Fatalf("disabled count %d, want 1", disabled)
	}
	// A disabled filter stops charging membership tests.
	before := clk.Units()
	for i := 0; i < 100; i++ {
		c.admit(clk, types.Row{types.Int(int64(i))})
	}
	if clk.Units() != before {
		t.Fatal("disabled filter still accrues cost")
	}

	// A selective filter (every probe misses) must stay enabled.
	sel := newRuntimeFilter(1, 10)
	sel.add(types.Int(1000))
	cs := &rfConsumer{set: set, filters: []*RuntimeFilter{sel}, cols: []int{0}}
	for i := 0; i < 3*rfWindow; i++ {
		if cs.admit(clk, types.Row{types.Int(int64(i % 10))}) {
			t.Fatalf("row %d wrongly admitted", i)
		}
	}
	if !sel.enabled() {
		t.Fatal("selective filter disabled itself")
	}
}

// rfTestJoinPlan hand-builds the fact-probe hash join the planting pass
// targets: SeqScan(fact) joined to SeqScan(dim) on column 0.
func rfTestJoinPlan(t *testing.T, cat *catalog.Catalog) *plan.JoinNode {
	t.Helper()
	mkScan := func(name, alias string) *plan.ScanNode {
		tbl, ok := cat.Table(name)
		if !ok {
			t.Fatalf("table %s missing", name)
		}
		s := &plan.ScanNode{Table: tbl, Alias: alias}
		s.Out = tbl.Schema.WithTable(alias)
		s.Title = "SeqScan(" + alias + ")"
		s.Prop = plan.Props{EstRows: float64(tbl.Heap.NumRows()), ActualRows: -1}
		return s
	}
	l, r := mkScan("fact", "f"), mkScan("dim", "d")
	j := &plan.JoinNode{Alg: plan.JoinHash, Type: plan.Inner, LeftKeys: []int{0}, RightKeys: []int{0}}
	j.Kids = []plan.Node{l, r}
	j.Out = l.Out.Concat(r.Out)
	j.Title = "HashJoin"
	j.Prop = plan.Props{EstRows: 1, ActualRows: -1}
	return j
}

func rfTestCatalog(t *testing.T, factRows, dimRows int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	f, err := cat.CreateTable("fact", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "v", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < factRows; i++ {
		cat.Insert(nil, f, types.Row{types.Int(int64(i)), types.Int(int64(i % 13))})
	}
	d, err := cat.CreateTable("dim", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "w", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dimRows; i++ {
		cat.Insert(nil, d, types.Row{types.Int(int64(i * factRows / dimRows)), types.Int(int64(i % 5))})
	}
	return cat
}

func rfRunPlan(t *testing.T, root plan.Node, vec, filtered bool) (float64, []string, *Context) {
	t.Helper()
	ctx := NewContext()
	ctx.Vec = vec
	if filtered {
		ctx.RF = NewRuntimeFilterSet(nil)
	}
	rows, err := Run(root, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		vals := make([]string, len(r))
		for j, v := range r {
			vals[j] = v.String()
		}
		out[i] = strings.Join(vals, ",")
	}
	sort.Strings(out)
	return ctx.Clock.Units(), out, ctx
}

// TestRuntimeFilterCostParityRowVec: the row and vectorized paths must
// charge bit-identical simulated cost with filters on — including the
// non-selective case where adaptive disable fires mid-query, which only
// holds if both paths test rows in the same order and make the disable
// decision at the same row.
func TestRuntimeFilterCostParityRowVec(t *testing.T) {
	cases := []struct {
		name    string
		dimRows int
	}{
		{"selective", 40},      // ~1% hit rate: filter stays on
		{"nonselective", 4000}, // 100% hit rate: disable fires mid-query
		{"mixed-window", 400},  // 10% hit rate: hovers near break-even
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := rfTestCatalog(t, 4000, tc.dimRows)

			rowPlan := rfTestJoinPlan(t, cat)
			if n := plan.PlanRuntimeFilters(rowPlan); n != 1 {
				t.Fatalf("planted %d, want 1", n)
			}
			rowUnits, rowRows, _ := rfRunPlan(t, rowPlan, false, true)

			vecPlan := rfTestJoinPlan(t, cat)
			if plan.MarkVectorized(vecPlan) == 0 {
				t.Fatal("MarkVectorized marked nothing")
			}
			if n := plan.PlanRuntimeFilters(vecPlan); n != 1 {
				t.Fatalf("planted %d, want 1", n)
			}
			vecUnits, vecRows, vecCtx := rfRunPlan(t, vecPlan, true, true)

			if strings.Join(rowRows, ";") != strings.Join(vecRows, ";") {
				t.Fatalf("row/vec results diverge: %d vs %d rows", len(rowRows), len(vecRows))
			}
			if rowUnits != vecUnits {
				t.Fatalf("cost parity broken: row %v vs vec %v units", rowUnits, vecUnits)
			}

			// And filters must never change results.
			basePlan := rfTestJoinPlan(t, cat)
			baseUnits, baseRows, _ := rfRunPlan(t, basePlan, false, false)
			if strings.Join(baseRows, ";") != strings.Join(rowRows, ";") {
				t.Fatal("filtered results diverge from unfiltered")
			}
			if tc.name == "selective" && rowUnits >= baseUnits {
				t.Fatalf("selective filter did not pay: filtered %v >= unfiltered %v", rowUnits, baseUnits)
			}
			if _, tested, dropped, _ := vecCtx.RF.Snapshot(); tested == 0 || (tc.name == "selective" && dropped == 0) {
				t.Fatalf("filter inactive: tested=%d dropped=%d", tested, dropped)
			}
		})
	}
}

// TestPropertyRuntimeFiltersExact: for random join queries, enabling
// runtime filters must leave results byte-identical across the row,
// vectorized and morsel-parallel paths, with and without memory pressure.
func TestPropertyRuntimeFiltersExact(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cat := catalog.New()
	f, err := cat.CreateTable("fact", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "v", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		row := types.Row{types.Int(rng.Int63n(50)), types.Int(rng.Int63n(30))}
		if rng.Intn(20) == 0 {
			row[0] = types.Null()
		}
		cat.Insert(nil, f, row)
	}
	d, err := cat.CreateTable("dim", types.Schema{
		{Name: "k", Kind: types.KindInt},
		{Name: "w", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		// Only multiples of three: a third of fact keys can match, so the
		// filter does real dropping while staying enabled.
		row := types.Row{types.Int(3 * rng.Int63n(17)), types.Int(rng.Int63n(6))}
		if rng.Intn(15) == 0 {
			row[0] = types.Null()
		}
		cat.Insert(nil, d, row)
	}
	cat.AnalyzeTable(f, 8)
	cat.AnalyzeTable(d, 8)

	mkPlan := func(t *testing.T, q string) plan.Node {
		t.Helper()
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
		if err != nil {
			t.Fatalf("bind %q: %v", q, err)
		}
		root, err := opt.New(cat).Optimize(bq, nil)
		if err != nil {
			t.Fatalf("optimize %q: %v", q, err)
		}
		plan.Walk(root, func(n plan.Node) {
			if j, ok := n.(*plan.JoinNode); ok {
				j.Alg = plan.JoinHash
			}
		})
		return root
	}

	run := func(t *testing.T, root plan.Node, dop, mem int, vec, filtered bool) ([]string, *Context) {
		t.Helper()
		ctx := NewContext()
		ctx.Vec = vec
		if dop > 1 {
			ctx.DOP = dop
		}
		if mem > 0 {
			ctx.Mem = NewMemBroker(mem)
		}
		if filtered {
			ctx.RF = NewRuntimeFilterSet(nil)
		}
		rows, err := Run(root, ctx)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(rows))
		for i, r := range rows {
			vals := make([]string, len(r))
			for j, v := range r {
				vals[j] = v.String()
			}
			out[i] = strings.Join(vals, ",")
		}
		sort.Strings(out)
		return out, ctx
	}

	configs := []struct {
		name string
		dop  int
		vec  bool
	}{
		{"row", 1, false},
		{"vec", 1, true},
		{"dop2", 2, false},
		{"dop8", 8, false},
	}
	var planted, dropped int64
	for trial := 0; trial < 10; trial++ {
		q := "SELECT fact.k, fact.v, dim.w FROM fact, dim WHERE fact.k = dim.k"
		switch trial % 4 {
		case 1:
			q += fmt.Sprintf(" AND fact.v < %d", 5+rng.Int63n(25))
		case 2:
			q += fmt.Sprintf(" AND dim.w <> %d", rng.Int63n(6))
		case 3:
			q += fmt.Sprintf(" AND fact.v >= %d AND dim.w <= %d", rng.Int63n(10), 2+rng.Int63n(4))
		}
		for _, mem := range []int{0, 48} {
			for _, cfg := range configs {
				ref := mkPlan(t, q)
				if cfg.dop > 1 {
					plan.MarkParallel(ref, 1)
				}
				if cfg.vec {
					plan.MarkVectorized(ref)
				}
				want, _ := run(t, ref, cfg.dop, mem, cfg.vec, false)

				root := mkPlan(t, q)
				if cfg.dop > 1 {
					plan.MarkParallel(root, 1)
				}
				if cfg.vec {
					plan.MarkVectorized(root)
				}
				planted += int64(plan.PlanRuntimeFilters(root))
				got, ctx := run(t, root, cfg.dop, mem, cfg.vec, true)
				if strings.Join(got, ";") != strings.Join(want, ";") {
					t.Fatalf("%s mem=%d diverges on %q: got %d rows, want %d",
						cfg.name, mem, q, len(got), len(want))
				}
				if ctx.RF != nil {
					_, _, d, _ := ctx.RF.Snapshot()
					dropped += d
				}
			}
		}
	}
	if planted == 0 || dropped == 0 {
		t.Fatalf("property never exercised filters: planted=%d dropped=%d", planted, dropped)
	}
}
