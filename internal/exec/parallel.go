package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rqp/internal/expr"
	"rqp/internal/plan"
	"rqp/internal/storage"
	"rqp/internal/types"
)

// ResolveDOP maps a configured degree of parallelism to an effective worker
// count: negative means "all cores" (runtime.NumCPU), zero and one mean
// serial.
func ResolveDOP(n int) int {
	if n < 0 {
		return runtime.NumCPU()
	}
	if n == 0 {
		return 1
	}
	return n
}

// parallelEligible reports whether build should take the morsel-driven path
// for a node: the context must carry a DOP above one and the planner must
// have marked the node (plan.MarkParallel).
func (ctx *Context) parallelEligible(p *plan.Props) bool {
	return ctx.DOP > 1 && p.Parallel
}

// finishNode records a fused child's observed cardinality the way the
// counted wrapper would have, so LEO feedback, EXPLAIN ANALYZE spans and
// the robustness metrics still see the node even though no standalone
// operator ran for it.
func finishNode(ctx *Context, n plan.Node, actual float64) {
	n.Props().ActualRows = actual
	if ctx.Trace != nil {
		if sp := ctx.Trace.SpanOf(n); sp != nil {
			sp.Finish(actual)
		}
	}
	if ctx.OnActual != nil {
		ctx.OnActual(n, actual)
	}
}

// compilePred compiles e when the context runs vectorized; a nil return
// keeps the interpreted path. Morsel operators call this at Open so the
// one-time compile is paid off across every morsel.
func compilePred(ctx *Context, e expr.Expr) *expr.Pred {
	if !ctx.Vec || e == nil {
		return nil
	}
	return expr.CompilePredicate(e)
}

// scanMorsel reads one morsel of a table, charging clk exactly as the
// serial scan would (one sequential read per page, CPU per examined row),
// and hands rows passing the filter to emit. pred, when non-nil, is the
// compiled form of node.Filter; rf, when non-nil, is the scan's bound
// runtime-filter consumer (rejects pay only the membership test, on the
// worker's shard clock). col, when non-nil, is the scan's columnar core: a
// morsel is then one column block, scanned through the shared block core
// with charges identical to the serial columnar scan's. The emitted row is
// the heap's (or a freshly materialized columnar row) — valid only until
// the query ends and never to be mutated.
func scanMorsel(ctx *Context, node *plan.ScanNode, pred *expr.Pred, rf *rfConsumer, col *colScanner, m, npages int, clk *storage.Clock, emit func(types.Row) error) error {
	if col != nil {
		return col.scanBlock(m, clk, emit)
	}
	lo, hi := morselRange(m, MorselPages, npages)
	return scanPageRange(ctx, node, pred, rf, lo, hi, clk, emit)
}

// scanPageRange scans the heap pages [lo, hi) of a table with the exact
// serial-scan charge discipline (one sequential read per page, runtime
// filters before per-row CPU). scanMorsel delegates here; the sharded
// co-located join path uses it directly with a partition's page range.
func scanPageRange(ctx *Context, node *plan.ScanNode, pred *expr.Pred, rf *rfConsumer, lo, hi int, clk *storage.Clock, emit func(types.Row) error) error {
	var emitErr error
	for p := lo; p < hi; p++ {
		node.Table.Heap.ScanPage(clk, p, func(_ storage.RID, r types.Row) bool {
			if rf != nil && !rf.admit(clk, r) {
				return true
			}
			clk.RowWork(1)
			if pred != nil {
				ok, err := pred.Eval(r, ctx.Params)
				if err != nil {
					emitErr = err
					return false
				}
				if !ok {
					return true
				}
			} else if node.Filter != nil {
				ok, err := expr.EvalPredicate(node.Filter, r, ctx.Params)
				if err != nil {
					emitErr = err
					return false
				}
				if !ok {
					return true
				}
			}
			if err := emit(r); err != nil {
				emitErr = err
				return false
			}
			return true
		})
		if emitErr != nil {
			return emitErr
		}
	}
	return nil
}

// ---------- parallel scan ----------

// parallelScan splits a sequential scan into fixed page-range morsels
// dispatched to the worker pool and gathers matching rows through an
// exchange in morsel order — exactly the heap order the serial scan emits.
// Page and row charges are identical to seqScan's, issued on worker shard
// clocks and merged at the gather barrier.
type parallelScan struct {
	ctx  *Context
	node *plan.ScanNode
	x    exchange
}

func (s *parallelScan) Open() error {
	pred := compilePred(s.ctx, s.node.Filter)
	rf := bindRuntimeFilters(s.ctx, s.node.RFConsume)
	col := colScannerFor(s.ctx, s.node, rf)
	n, npages := scanGeometry(s.node, col)
	s.x.reset(n)
	return runMorsels(s.ctx, s.node.Label(), n, s.ctx.DOP, func(m int, clk *storage.Clock) (int, error) {
		rows := getMorselBuf()
		err := scanMorsel(s.ctx, s.node, pred, rf, col, m, npages, clk, func(r types.Row) error {
			rows = append(rows, r)
			return nil
		})
		if err != nil {
			putMorselBuf(rows)
			return 0, err
		}
		s.x.set(m, rows)
		return len(rows), nil
	})
}

func (s *parallelScan) Next() (types.Row, bool, error) {
	r, ok := s.x.next()
	return r, ok, nil
}

func (s *parallelScan) Close() error {
	s.x.release()
	return nil
}

// ---------- parallel hash join ----------

// hashedRow pairs a build row with its precomputed join-key hash.
type hashedRow struct {
	h uint64
	r types.Row
}

// probeScratch is one morsel's reusable probe-side workspace: key buffers
// and a scratch output row, so steady-state probing allocates nothing.
type probeScratch struct {
	key   []types.Value
	ckey  []types.Value
	buf   types.Row
	nulls types.Row
}

// parallelHashJoin is the morsel-driven hash join. The build side is
// drained once, hashed in parallel morsels, and repartitioned into one
// hash-table shard per worker at a gather barrier; probe-side morsels then
// stream against the frozen shards lock-free. When the probe child is a
// parallel-marked scan, the scan fuses into the probe loop: one morsel
// performs page read, filter and probe with no intermediate
// materialization. Output flows through an exchange in morsel order, and
// shard bucket chains are assembled in build order, so the emitted rows are
// byte-identical, in order, to the serial hashJoin's. The charge multiset
// also matches serial, so simulated cost is unchanged.
type parallelHashJoin struct {
	ctx   *Context
	node  *plan.JoinNode
	scan  *plan.ScanNode // fused probe-side scan (nil when left is set)
	left  Operator       // probe child when not fused
	right Operator

	dop      int
	parts    []map[uint64][]types.Row
	spill    *spillJoin // set when the build exceeded its grant
	grant    int
	rWidth   int
	emitted  int64
	x        exchange
	scanPred *expr.Pred  // compiled fused-scan filter (vectorized runs)
	scanRF   *rfConsumer // fused scan's runtime filters, bound after the build
	scanCol  *colScanner // fused scan's columnar core (nil for heap scans)
	residual *expr.Pred  // compiled residual (vectorized runs)
	scratch  sync.Pool   // *probeScratch, reused across morsels
}

// openBuild drains the build side and erects the partitioned hash table.
// It is Open minus the probe phase, so an enclosing fused aggregation can
// drive the probe morsels itself.
func (j *parallelHashJoin) openBuild() error {
	j.dop = j.ctx.DOP
	if j.dop < 1 {
		j.dop = 1
	}
	if j.scan != nil {
		j.scanPred = compilePred(j.ctx, j.scan.Filter)
	}
	j.residual = compilePred(j.ctx, j.node.Residual)
	build, err := drain(j.right)
	if err != nil {
		return err
	}
	j.rWidth = len(j.node.Kids[1].Schema())
	j.grant = j.ctx.Mem.Grant(len(build))
	if len(build) > j.grant {
		// Graceful degradation trades parallelism for robustness: the build
		// delegates to the serial spill machinery and the probe phase runs
		// inline on the context clock (probeSerialSpill) — correct results
		// and serial-identical charges under any budget, at DOP cost.
		// Runtime filters derive serially from the drained build first, so
		// the probe-side scans still shrink the spilled probe volume.
		buildRuntimeFilters(j.ctx, j.node, j.ctx.Clock, build)
		j.spill = newSpillJoin(j.ctx, j.node, build, j.grant, j.rWidth, 0)
		j.bindScanRF()
		return nil
	}
	if err := j.buildPartitions(build); err != nil {
		return err
	}
	j.bindScanRF()
	return nil
}

// bindScanRF binds the fused probe scan's runtime filters once the build has
// published its own — including the filter this very join produced, which is
// the common consumer — and resolves the scan's columnar core so block-level
// pruning sees the bound filters.
func (j *parallelHashJoin) bindScanRF() {
	if j.scan != nil {
		j.scanRF = bindRuntimeFilters(j.ctx, j.scan.RFConsume)
		j.scanCol = colScannerFor(j.ctx, j.scan, j.scanRF)
	}
}

// probeSerialSpill is the memory-pressure probe phase: every probe row is
// handled serially on the context clock through the spill machinery — rows
// of resident partitions match immediately, the rest defer to probe runs —
// and the spilled partitions then replay. Every joined (and, for
// left-outer, null-extended) row goes to sink in serial-identical order
// with serial-identical charges.
func (j *parallelHashJoin) probeSerialSpill(sink func(types.Row) error) error {
	probeRow := func(lr types.Row) error {
		j.ctx.Clock.Probes(1)
		k := keyOf(lr, j.node.LeftKeys)
		matched := false
		if !keyHasNull(k) {
			bucket, deferred := j.spill.probe(lr, k)
			if deferred {
				return nil // resolved (matches and outer alike) in finish
			}
			for _, cand := range bucket {
				if !keysEqual(k, keyOf(cand, j.node.RightKeys)) {
					continue
				}
				out, ok, err := emitJoined(j.ctx.Clock, j.ctx.Params, j.node, lr, cand)
				if err != nil {
					return err
				}
				if ok {
					matched = true
					atomic.AddInt64(&j.emitted, 1)
					if err := sink(out); err != nil {
						return err
					}
				}
			}
		}
		if j.node.Type == plan.LeftOuter && !matched {
			j.ctx.Clock.RowWork(1)
			atomic.AddInt64(&j.emitted, 1)
			return sink(types.Concat(lr, nullRow(j.rWidth)))
		}
		return nil
	}
	if j.scan != nil {
		n, npages := scanGeometry(j.scan, j.scanCol)
		scanned := 0
		for m := 0; m < n; m++ {
			err := scanMorsel(j.ctx, j.scan, j.scanPred, j.scanRF, j.scanCol, m, npages, j.ctx.Clock, func(lr types.Row) error {
				scanned++
				return probeRow(lr)
			})
			if err != nil {
				return err
			}
		}
		finishNode(j.ctx, j.scan, float64(scanned))
	} else {
		lrows, err := drain(j.left)
		j.left = nil
		if err != nil {
			return err
		}
		for _, lr := range lrows {
			if err := probeRow(lr); err != nil {
				return err
			}
		}
	}
	return j.spill.finish(func(r types.Row) error {
		atomic.AddInt64(&j.emitted, 1)
		return sink(r)
	})
}

func (j *parallelHashJoin) Open() error {
	if err := j.openBuild(); err != nil {
		return err
	}
	return j.probe()
}

// buildPartitions runs the two build phases: (1) parallel morsels hash
// every build row into per-morsel vectors, charging the serial join's
// insert cost — and, when the plan announced runtime filters, fill one
// partial Bloom per filter per morsel; (2) each worker assembles its own
// hash-range shard by sweeping the vectors in morsel order, so bucket
// chains preserve build order and probing stays deterministic. Partial
// Blooms are OR-merged in morsel order at the same gather barrier and
// published before any probe morsel can run.
func (j *parallelHashJoin) buildPartitions(build []types.Row) error {
	n := morselCount(len(build), MorselRows)
	pairs := make([][]hashedRow, n)
	nf := 0
	if j.ctx.RF != nil {
		nf = len(j.node.RFilters)
	}
	var rfParts [][]*RuntimeFilter
	if nf > 0 {
		rfParts = make([][]*RuntimeFilter, n)
	}
	err := runMorsels(j.ctx, j.node.Label()+" build", n, j.dop, func(m int, clk *storage.Clock) (int, error) {
		lo, hi := morselRange(m, MorselRows, len(build))
		ps := make([]hashedRow, 0, hi-lo)
		key := make([]types.Value, len(j.node.RightKeys))
		var fs []*RuntimeFilter
		if nf > 0 {
			// Partials are sized for the full build so the barrier merge is
			// a plain word-wise OR; the batch charge equals the serial
			// build's per-row charges over this morsel's rows.
			fs = make([]*RuntimeFilter, nf)
			for i, sp := range j.node.RFilters {
				fs[i] = newRuntimeFilter(sp.ID, len(build))
			}
			clk.FilterTestsBatch((hi - lo) * nf)
		}
		for _, r := range build[lo:hi] {
			clk.Probes(2) // insert costs double a probe (see cost model)
			for i, sp := range j.node.RFilters[:nf] {
				fs[i].add(r[j.node.RightKeys[sp.Col]])
			}
			keyInto(key, r, j.node.RightKeys)
			if keyHasNull(key) {
				continue
			}
			ps = append(ps, hashedRow{types.HashRow(key), r})
		}
		if nf > 0 {
			rfParts[m] = fs
		}
		pairs[m] = ps
		return len(ps), nil
	})
	if err != nil {
		return err
	}
	for i, sp := range j.node.RFilters[:nf] {
		f := newRuntimeFilter(sp.ID, len(build))
		for _, fs := range rfParts {
			f.merge(fs[i])
		}
		j.ctx.RF.publish(f)
		if j.ctx.Trace != nil {
			j.ctx.Trace.Event("rf.build", fmt.Sprintf("filter=%d keys=%d bits=%d partials=%d", f.ID, len(build), len(f.words)*64, n))
		}
	}
	j.parts = make([]map[uint64][]types.Row, j.dop)
	dop := uint64(j.dop)
	return runMorsels(j.ctx, j.node.Label()+" partition", j.dop, j.dop, func(w int, _ *storage.Clock) (int, error) {
		tab := map[uint64][]types.Row{}
		for _, ps := range pairs {
			for _, p := range ps {
				if p.h%dop == uint64(w) {
					tab[p.h] = append(tab[p.h], p.r)
				}
			}
		}
		j.parts[w] = tab
		return 0, nil
	})
}

func (j *parallelHashJoin) newScratch() *probeScratch {
	return &probeScratch{
		key:   make([]types.Value, len(j.node.LeftKeys)),
		ckey:  make([]types.Value, len(j.node.RightKeys)),
		buf:   make(types.Row, 0, len(j.node.Schema())),
		nulls: nullRow(j.rWidth),
	}
}

// getScratch hands out a pooled probeScratch; putScratch returns it when the
// morsel finishes, so scratch allocation amortizes across morsels instead of
// recurring per morsel.
func (j *parallelHashJoin) getScratch() *probeScratch {
	if st, ok := j.scratch.Get().(*probeScratch); ok {
		return st
	}
	return j.newScratch()
}

func (j *parallelHashJoin) putScratch(st *probeScratch) { j.scratch.Put(st) }

// probeEach probes one left row against the shards and hands every joined
// (and, for left-outer, null-extended) row to sink. The row passed to sink
// is st.buf — a scratch reused on the next call; sinks that keep rows must
// clone. Charges mirror the serial hashJoin probe exactly: one probe per
// left row before the null check, one unit of row work per emitted row.
func (j *parallelHashJoin) probeEach(lr types.Row, clk *storage.Clock, st *probeScratch, sink func(types.Row) error) error {
	clk.Probes(1)
	keyInto(st.key, lr, j.node.LeftKeys)
	matched := false
	if !keyHasNull(st.key) {
		h := types.HashRow(st.key)
		for _, cand := range j.parts[h%uint64(j.dop)][h] {
			keyInto(st.ckey, cand, j.node.RightKeys)
			if !keysEqual(st.key, st.ckey) {
				continue
			}
			st.buf = append(append(st.buf[:0], lr...), cand...)
			if j.residual != nil {
				ok, err := j.residual.Eval(st.buf, j.ctx.Params)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			} else if j.node.Residual != nil {
				ok, err := expr.EvalPredicate(j.node.Residual, st.buf, j.ctx.Params)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			clk.RowWork(1)
			matched = true
			if err := sink(st.buf); err != nil {
				return err
			}
		}
	}
	if j.node.Type == plan.LeftOuter && !matched {
		st.buf = append(append(st.buf[:0], lr...), st.nulls...)
		clk.RowWork(1)
		if err := sink(st.buf); err != nil {
			return err
		}
	}
	return nil
}

// probe runs the probe phase into the exchange (the standalone operator
// path; a fused aggregation bypasses this entirely).
func (j *parallelHashJoin) probe() error {
	if j.spill != nil {
		out := getMorselBuf()
		err := j.probeSerialSpill(func(r types.Row) error {
			out = append(out, r)
			return nil
		})
		if err != nil {
			putMorselBuf(out)
			return err
		}
		j.x.reset(1)
		j.x.set(0, out)
		return nil
	}
	if j.scan != nil {
		n, npages := scanGeometry(j.scan, j.scanCol)
		j.x.reset(n)
		var scanned int64
		err := runMorsels(j.ctx, j.node.Label()+" probe", n, j.dop, func(m int, clk *storage.Clock) (int, error) {
			st := j.getScratch()
			defer j.putScratch(st)
			out := getMorselBuf()
			rows := 0
			err := scanMorsel(j.ctx, j.scan, j.scanPred, j.scanRF, j.scanCol, m, npages, clk, func(lr types.Row) error {
				rows++
				return j.probeEach(lr, clk, st, func(r types.Row) error {
					out = append(out, r.Clone())
					return nil
				})
			})
			if err != nil {
				putMorselBuf(out)
				return 0, err
			}
			atomic.AddInt64(&scanned, int64(rows))
			j.x.set(m, out)
			return len(out), nil
		})
		if err != nil {
			return err
		}
		finishNode(j.ctx, j.scan, float64(atomic.LoadInt64(&scanned)))
		return nil
	}
	lrows, err := drain(j.left)
	j.left = nil // drained and closed; Close must not close it again
	if err != nil {
		return err
	}
	n := morselCount(len(lrows), MorselRows)
	j.x.reset(n)
	return runMorsels(j.ctx, j.node.Label()+" probe", n, j.dop, func(m int, clk *storage.Clock) (int, error) {
		st := j.getScratch()
		defer j.putScratch(st)
		lo, hi := morselRange(m, MorselRows, len(lrows))
		out := getMorselBuf()
		for _, lr := range lrows[lo:hi] {
			err := j.probeEach(lr, clk, st, func(r types.Row) error {
				out = append(out, r.Clone())
				return nil
			})
			if err != nil {
				putMorselBuf(out)
				return 0, err
			}
		}
		j.x.set(m, out)
		return len(out), nil
	})
}

func (j *parallelHashJoin) Next() (types.Row, bool, error) {
	r, ok := j.x.next()
	return r, ok, nil
}

// release frees the hash shards (or spill state) and returns the memory
// grant.
func (j *parallelHashJoin) release() {
	j.parts = nil
	if j.spill != nil {
		j.spill.close()
		j.spill = nil
	}
	j.ctx.Mem.Release(j.grant)
	j.grant = 0
}

func (j *parallelHashJoin) Close() error {
	j.release()
	j.x.release()
	if j.left != nil {
		return j.left.Close()
	}
	return nil
}

// ---------- parallel aggregation ----------

// aggPartial is one morsel's partial grouping state.
type aggPartial struct {
	groups map[uint64][]*group
	order  []*group
}

func newAggPartial() *aggPartial {
	return &aggPartial{groups: map[uint64][]*group{}}
}

// groupFor finds or creates the group for key, cloning the key only on
// creation (the caller's key buffer is reused across rows).
func (p *aggPartial) groupFor(key []types.Value, hash uint64, naggs int) *group {
	for _, cand := range p.groups[hash] {
		if rowsEqual(cand.key, key) {
			return cand
		}
	}
	g := &group{key: append([]types.Value(nil), key...), states: make([]aggState, naggs)}
	p.groups[hash] = append(p.groups[hash], g)
	p.order = append(p.order, g)
	return g
}

// parallelAgg runs hash aggregation as per-morsel partial group states
// merged at a gather barrier, then sorts the merged groups on the key —
// the same deterministic output order as the serial hashAgg. Partials
// merge in morsel order, so results are reproducible run to run; SUM/AVG
// over floats may differ from serial in the last bits because partial sums
// reassociate the additions (exact for integer data).
//
// The input pipeline fuses as deep as the plan allows: over a
// parallel-marked scan, one morsel performs page read, filter and
// accumulation; over a parallel-marked hash join, one morsel runs
// scan → probe → accumulate with a scratch output row and no
// materialization at all — the morsel pipeline only breaks at the gather
// barrier, where partials merge.
type parallelAgg struct {
	ctx   *Context
	node  *plan.AggNode
	scan  *plan.ScanNode    // fused input scan (exclusive with join/child)
	join  *parallelHashJoin // fused input join (exclusive with scan/child)
	child Operator          // generic input (exclusive with scan/join)

	groupFns []expr.EvalFn // compiled group expressions (vectorized runs)
	argFns   []expr.EvalFn // compiled aggregate arguments (vectorized runs)

	out []types.Row
	pos int
}

// compileFns lowers the group and aggregate-argument expressions once at
// Open when the context runs vectorized; interpreted otherwise.
func (a *parallelAgg) compileFns() {
	if !a.ctx.Vec {
		return
	}
	a.groupFns = expr.CompileAll(a.node.GroupExprs)
	a.argFns = make([]expr.EvalFn, len(a.node.Aggs))
	for i, spec := range a.node.Aggs {
		if !spec.Star {
			a.argFns[i] = expr.Compile(spec.Arg)
		}
	}
}

// accumRow folds one input row into a partial, charging the serial
// hashAgg's per-row probe. key is the caller's scratch group-key buffer.
func (a *parallelAgg) accumRow(p *aggPartial, r types.Row, key []types.Value, clk *storage.Clock) error {
	clk.Probes(1)
	if a.argFns != nil { // vectorized: compiled group and argument exprs
		for i, fn := range a.groupFns {
			v, err := fn(r, a.ctx.Params)
			if err != nil {
				return err
			}
			key[i] = v
		}
		g := p.groupFor(key, types.HashRow(key), len(a.node.Aggs))
		return accumGroupFns(g, a.node, a.argFns, r, a.ctx.Params)
	}
	for i, ge := range a.node.GroupExprs {
		v, err := ge.Eval(r, a.ctx.Params)
		if err != nil {
			return err
		}
		key[i] = v
	}
	g := p.groupFor(key, types.HashRow(key), len(a.node.Aggs))
	return accumGroup(g, a.node, r, a.ctx.Params)
}

func (a *parallelAgg) Open() error {
	a.compileFns()
	var (
		partials []*aggPartial
		err      error
	)
	switch {
	case a.scan != nil:
		partials, err = a.partialsFromScan()
	case a.join != nil:
		partials, err = a.partialsFromJoin()
	default:
		partials, err = a.partialsFromChild()
	}
	if err != nil {
		return err
	}
	order := a.mergePartials(partials)
	// Global aggregate with no groups and no input still yields one row.
	if len(order) == 0 && len(a.node.GroupExprs) == 0 {
		order = append(order, &group{states: make([]aggState, len(a.node.Aggs))})
	}
	sortGroups(order)
	a.out = make([]types.Row, 0, len(order))
	for _, g := range order {
		a.ctx.Clock.RowWork(1)
		row := make(types.Row, 0, len(g.key)+len(g.states))
		row = append(row, g.key...)
		for i := range g.states {
			row = append(row, g.states[i].result(a.node.Aggs[i]))
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

func (a *parallelAgg) partialsFromScan() ([]*aggPartial, error) {
	pred := compilePred(a.ctx, a.scan.Filter)
	rf := bindRuntimeFilters(a.ctx, a.scan.RFConsume)
	col := colScannerFor(a.ctx, a.scan, rf)
	n, npages := scanGeometry(a.scan, col)
	partials := make([]*aggPartial, n)
	var scanned int64
	err := runMorsels(a.ctx, a.node.Label(), n, a.ctx.DOP, func(m int, clk *storage.Clock) (int, error) {
		p := newAggPartial()
		key := make([]types.Value, len(a.node.GroupExprs))
		rows := 0
		err := scanMorsel(a.ctx, a.scan, pred, rf, col, m, npages, clk, func(r types.Row) error {
			rows++
			return a.accumRow(p, r, key, clk)
		})
		if err != nil {
			return 0, err
		}
		atomic.AddInt64(&scanned, int64(rows))
		partials[m] = p
		return len(p.order), nil
	})
	if err != nil {
		return nil, err
	}
	finishNode(a.ctx, a.scan, float64(atomic.LoadInt64(&scanned)))
	return partials, nil
}

// partialsFromJoin is the fully fused pipeline: build the join's hash
// shards, then run probe morsels that accumulate joined rows straight into
// partials through a scratch row — no joined row is ever materialized.
func (a *parallelAgg) partialsFromJoin() ([]*aggPartial, error) {
	jn := a.join
	if err := jn.openBuild(); err != nil {
		return nil, err
	}
	if jn.spill != nil {
		// Build spilled: the fused pipeline degrades to a serial
		// probe-and-replay feeding one partial, keeping results and charges
		// serial-identical under pressure.
		p := newAggPartial()
		key := make([]types.Value, len(a.node.GroupExprs))
		err := jn.probeSerialSpill(func(r types.Row) error {
			return a.accumRow(p, r, key, a.ctx.Clock)
		})
		if err != nil {
			return nil, err
		}
		finishNode(a.ctx, jn.node, float64(atomic.LoadInt64(&jn.emitted)))
		jn.release()
		return []*aggPartial{p}, nil
	}
	accum := func(p *aggPartial, key []types.Value, clk *storage.Clock) func(types.Row) error {
		return func(r types.Row) error {
			atomic.AddInt64(&jn.emitted, 1)
			return a.accumRow(p, r, key, clk)
		}
	}
	var partials []*aggPartial
	if jn.scan != nil {
		n, npages := scanGeometry(jn.scan, jn.scanCol)
		partials = make([]*aggPartial, n)
		var scanned int64
		err := runMorsels(a.ctx, a.node.Label(), n, jn.dop, func(m int, clk *storage.Clock) (int, error) {
			st := jn.getScratch()
			defer jn.putScratch(st)
			p := newAggPartial()
			key := make([]types.Value, len(a.node.GroupExprs))
			sink := accum(p, key, clk)
			rows := 0
			err := scanMorsel(a.ctx, jn.scan, jn.scanPred, jn.scanRF, jn.scanCol, m, npages, clk, func(lr types.Row) error {
				rows++
				return jn.probeEach(lr, clk, st, sink)
			})
			if err != nil {
				return 0, err
			}
			atomic.AddInt64(&scanned, int64(rows))
			partials[m] = p
			return len(p.order), nil
		})
		if err != nil {
			return nil, err
		}
		finishNode(a.ctx, jn.scan, float64(atomic.LoadInt64(&scanned)))
	} else {
		lrows, err := drain(jn.left)
		jn.left = nil
		if err != nil {
			return nil, err
		}
		n := morselCount(len(lrows), MorselRows)
		partials = make([]*aggPartial, n)
		err = runMorsels(a.ctx, a.node.Label(), n, jn.dop, func(m int, clk *storage.Clock) (int, error) {
			st := jn.getScratch()
			defer jn.putScratch(st)
			p := newAggPartial()
			key := make([]types.Value, len(a.node.GroupExprs))
			sink := accum(p, key, clk)
			lo, hi := morselRange(m, MorselRows, len(lrows))
			for _, lr := range lrows[lo:hi] {
				if err := jn.probeEach(lr, clk, st, sink); err != nil {
					return 0, err
				}
			}
			partials[m] = p
			return len(p.order), nil
		})
		if err != nil {
			return nil, err
		}
	}
	finishNode(a.ctx, jn.node, float64(atomic.LoadInt64(&jn.emitted)))
	jn.release()
	return partials, nil
}

func (a *parallelAgg) partialsFromChild() ([]*aggPartial, error) {
	rows, err := drain(a.child)
	a.child = nil // drained and closed; Close must not close it again
	if err != nil {
		return nil, err
	}
	n := morselCount(len(rows), MorselRows)
	partials := make([]*aggPartial, n)
	err = runMorsels(a.ctx, a.node.Label(), n, a.ctx.DOP, func(m int, clk *storage.Clock) (int, error) {
		p := newAggPartial()
		key := make([]types.Value, len(a.node.GroupExprs))
		lo, hi := morselRange(m, MorselRows, len(rows))
		for _, r := range rows[lo:hi] {
			if err := a.accumRow(p, r, key, clk); err != nil {
				return 0, err
			}
		}
		partials[m] = p
		return len(p.order), nil
	})
	if err != nil {
		return nil, err
	}
	return partials, nil
}

// mergePartials folds the per-morsel partials, in morsel order, into one
// group list. Grouping work was already charged per input row in the
// morsels; the merge itself is free on the clock, exactly like the serial
// hashAgg's in-table accumulation.
func (a *parallelAgg) mergePartials(partials []*aggPartial) []*group {
	merged := map[uint64][]*group{}
	var order []*group
	for _, p := range partials {
		if p == nil {
			continue
		}
		for _, g := range p.order {
			h := types.HashRow(g.key)
			var dst *group
			for _, cand := range merged[h] {
				if rowsEqual(cand.key, g.key) {
					dst = cand
					break
				}
			}
			if dst == nil {
				merged[h] = append(merged[h], g)
				order = append(order, g)
				continue
			}
			for i := range dst.states {
				dst.states[i].merge(&g.states[i], a.node.Aggs[i])
			}
		}
	}
	return order
}

func (a *parallelAgg) Next() (types.Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, true, nil
}

func (a *parallelAgg) Close() error {
	a.out = nil
	if a.child != nil {
		return a.child.Close()
	}
	return nil
}
