package exec

import (
	"errors"

	"rqp/internal/storage"
	"rqp/internal/types"
)

// This file defines the shuffle-transport seam: the one interface behind
// which a sharded join's exchange partners live, whether they are goroutines
// in this process (the transport=local fast path, newLocalExchange) or
// rqpserver -shard-worker processes reached over TCP (the server package's
// NetShuffleTransport). The shardedHashJoin routes rows through a
// ShuffleExchange without knowing which side of a socket the receiving
// shard is on; the transport swap must be invisible to results (byte-
// identical rows via the same (Seq, BIdx) gather merge) and to the main
// clock (the identical multiset of charges, performed wherever the shard
// lives and merged back in the ClockScale integer domain).

// ShufBuild is one routed build row. Idx is its global build-arrival index
// (the gather merge's tiebreak); Own marks the copy whose hash-table insert
// pays the serial charge; Hash is the join-key hash, computed once at the
// coordinator so replicas agree.
type ShufBuild struct {
	Idx  int32
	Own  bool
	Hash uint64
	Row  types.Row
}

// ShufProbe is one routed probe row. Seq is its global serial-order tag;
// Main marks the one copy (of a possibly hot-split-duplicated row) that
// pays the serial probe charge.
type ShufProbe struct {
	Seq  int64
	Main bool
	Row  types.Row
}

// ShufOut is one tagged join output row: lexicographic (Seq, BIdx) order is
// exactly the serial hash join's emission order.
type ShufOut struct {
	Seq  int64
	BIdx int32
	Row  types.Row
}

// ShardUnits is the clock work a shard performed somewhere other than the
// coordinator's scan clocks — zero for the local exchange (which charges
// the coordinator's per-shard clocks directly), a worker process's shipped
// clock counters for the TCP transport. All values are in the ClockScale
// integer domain (UnitsScaled) or raw event counts.
type ShardUnits struct {
	UnitsScaled int64
	SeqReads    int64
	RandReads   int64
	PageWrites  int64
	RowsCPU     int64
}

// ShuffleJoinSpec describes one sharded hash join to a transport: the key
// geometry a receiving shard needs to insert and probe, plus the
// coordinator-side hooks (clocks, stats, cancellation) the exchange feeds.
type ShuffleJoinSpec struct {
	// Shards is the exchange width n: destinations and probe sources both
	// number n.
	Shards int
	// LeftKeys/RightKeys are the probe/build join-key column indices.
	LeftKeys, RightKeys []int
	// LeftOuter selects the outer join's null-extension at the probe.
	LeftOuter bool
	// RWidth is the build-side schema width (null-extension padding).
	RWidth int
	// Residual, when non-nil, filters candidate matches after key equality.
	// Residual closures capture coordinator state (compiled expressions,
	// query parameters) and therefore cannot cross a process boundary: a
	// transport that cannot evaluate them must refuse the exchange with
	// ErrExchangeUnsupported, and the join falls back to transport=local.
	Residual func(types.Row) (bool, error)
	// Model is the cost model every shard clock must charge under.
	Model storage.CostModel
	// Clocks are the coordinator's per-shard clocks. The local exchange
	// charges build/probe work straight into them; remote transports leave
	// them untouched and return the work as ShardUnits from Collect.
	Clocks []*storage.Clock
	// Stats receives wire-level accounting (frames, bytes, rows carried,
	// backpressure stalls) as the exchange runs. Nil-safe.
	Stats *ShuffleStats
	// Canceled is the query's cooperative cancellation hook — the same
	// atomic flag a client disconnect flips. Transports poll it so a dead
	// session tears down its shuffle peers through the one cancellation
	// path the session layer already owns. Nil means never canceled.
	Canceled func() bool
}

// ShuffleExchange is one sharded join's routing session. SendBuild is
// called from the (single) build-routing goroutine; SendProbe concurrently
// from n scan goroutines, but any (src, dst) pair only ever from goroutine
// src — per-stream order is what keeps worker-side probe order, and hence
// the gather merge, deterministic. Collect finishes the exchange and
// returns each shard's output stream, already sorted by (Seq, BIdx).
type ShuffleExchange interface {
	SendBuild(dst int, b ShufBuild) error
	// FlushBuild ends the build phase; after it returns, every shard's
	// hash table is (or is being) built from exactly the rows sent.
	FlushBuild() error
	SendProbe(src, dst int, p ShufProbe) error
	// FlushProbe ends source src's probe stream.
	FlushProbe(src int) error
	// Collect ends the probe phase everywhere, gathers each shard's tagged
	// outputs, and reports the clock work shards performed away from the
	// coordinator's clocks (zero for the local exchange).
	Collect() ([][]ShufOut, []ShardUnits, error)
	// Abort tears the exchange down early (error paths); safe after Collect.
	Abort()
}

// ShuffleTransport hands out exchanges. The zero transport is the local
// one; the server package provides the TCP implementation that dials
// rqpserver -shard-worker peers.
type ShuffleTransport interface {
	// Name labels the transport in traces and bench output ("local", "tcp").
	Name() string
	// OpenExchange starts one join's exchange. ErrExchangeUnsupported means
	// this transport cannot run this particular join (e.g. a residual
	// closure that cannot be serialized) and the caller should fall back to
	// the local exchange — a per-join decision, not a transport failure.
	OpenExchange(spec ShuffleJoinSpec) (ShuffleExchange, error)
	Close() error
}

// ErrExchangeUnsupported reports a join shape the transport cannot ship;
// the sharded join falls back to the in-process exchange.
var ErrExchangeUnsupported = errors.New("exec: exchange unsupported by transport")

// ErrShufflePeerLost reports a shuffle peer that died mid-exchange. Unlike
// an OpenExchange refusal there is no safe fallback: rows are already in
// flight, so the query fails (the session layer surfaces ERR_EXEC).
var ErrShufflePeerLost = errors.New("exec: shuffle peer lost")

// ShardJoiner is the receiving half of a shuffle exchange for one shard:
// the hash-table build and serial-order probe engine both the local
// exchange and the server package's worker processes run. Charges mirror
// the serial hash join exactly — Probes(2) per owned insert, Probes(1) per
// main probe copy, RowWork(1) per emitted row — on whatever clock the
// shard lives on.
type ShardJoiner struct {
	Spec ShuffleJoinSpec
	Clk  *storage.Clock

	tab map[uint64][]ShufBuild
	pk  []types.Value
	ck  []types.Value
}

// NewShardJoiner returns a joiner charging the given clock.
func NewShardJoiner(spec ShuffleJoinSpec, clk *storage.Clock) *ShardJoiner {
	return &ShardJoiner{
		Spec: spec,
		Clk:  clk,
		tab:  make(map[uint64][]ShufBuild),
		pk:   make([]types.Value, len(spec.LeftKeys)),
		ck:   make([]types.Value, len(spec.RightKeys)),
	}
}

// Insert adds one routed build row. Rows must arrive in ascending Idx order
// per stream (the coordinator routes them that way), so hash chains keep
// build-arrival order and candidate iteration reproduces the serial chain.
func (w *ShardJoiner) Insert(b ShufBuild) {
	if b.Own {
		w.Clk.Probes(2)
	}
	w.tab[b.Hash] = append(w.tab[b.Hash], b)
}

// TableSize reports distinct hash buckets (trace/debug only).
func (w *ShardJoiner) TableSize() int { return len(w.tab) }

// Probe probes one routed row, appending tagged outputs to out. The charge
// placement is the serial join's: one probe per Main copy, one unit of row
// work per emitted row.
func (w *ShardJoiner) Probe(p ShufProbe, out *[]ShufOut) error {
	if p.Main {
		w.Clk.Probes(1)
	}
	keyInto(w.pk, p.Row, w.Spec.LeftKeys)
	matched := false
	if !keyHasNull(w.pk) {
		h := types.HashRow(w.pk)
		for _, cand := range w.tab[h] {
			keyInto(w.ck, cand.Row, w.Spec.RightKeys)
			if !keysEqual(w.pk, w.ck) {
				continue
			}
			buf := types.Concat(p.Row, cand.Row)
			if w.Spec.Residual != nil {
				ok, err := w.Spec.Residual(buf)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			w.Clk.RowWork(1)
			matched = true
			*out = append(*out, ShufOut{Seq: p.Seq, BIdx: cand.Idx, Row: buf})
		}
	}
	if w.Spec.LeftOuter && !matched && p.Main {
		w.Clk.RowWork(1)
		*out = append(*out, ShufOut{Seq: p.Seq, BIdx: -1, Row: types.Concat(p.Row, nullRow(w.Spec.RWidth))})
	}
	return nil
}

// localExchange is the transport=local fast path: the exact in-process
// goroutine exchange sharded execution has always run, now behind the
// ShuffleExchange interface. Rows route through in-memory slices, the
// build/probe phases run on runShards goroutines charging the
// coordinator's per-shard clocks, and Collect returns zero ShardUnits
// because no work happened anywhere else.
type localExchange struct {
	spec   ShuffleJoinSpec
	bparts [][]ShufBuild
	routes [][][]ShufProbe // [src][dst]
}

// newLocalExchange builds the in-process exchange for a spec.
func newLocalExchange(spec ShuffleJoinSpec) *localExchange {
	n := spec.Shards
	ex := &localExchange{spec: spec, bparts: make([][]ShufBuild, n), routes: make([][][]ShufProbe, n)}
	for s := range ex.routes {
		ex.routes[s] = make([][]ShufProbe, n)
	}
	return ex
}

func (ex *localExchange) SendBuild(dst int, b ShufBuild) error {
	ex.bparts[dst] = append(ex.bparts[dst], b)
	return nil
}

func (ex *localExchange) FlushBuild() error { return nil }

func (ex *localExchange) SendProbe(src, dst int, p ShufProbe) error {
	ex.routes[src][dst] = append(ex.routes[src][dst], p)
	return nil
}

func (ex *localExchange) FlushProbe(int) error { return nil }

// Collect runs the shard-local build and probe phases on one goroutine per
// shard: insert routed build rows in arrival order, then probe routed rows
// in (source, sequence) order so each shard's output stream is sorted by
// (Seq, BIdx) for the gather merge.
func (ex *localExchange) Collect() ([][]ShufOut, []ShardUnits, error) {
	n := ex.spec.Shards
	outs := make([][]ShufOut, n)
	err := runShards(n, func(s int) error {
		w := NewShardJoiner(ex.spec, ex.spec.Clocks[s])
		for _, b := range ex.bparts[s] {
			w.Insert(b)
		}
		var out []ShufOut
		for src := 0; src < n; src++ {
			for _, p := range ex.routes[src][s] {
				if err := w.Probe(p, &out); err != nil {
					return err
				}
			}
		}
		outs[s] = out
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return outs, make([]ShardUnits, n), nil
}

func (ex *localExchange) Abort() {}

// localTransport hands out localExchanges; it is what a nil
// Context.ShufTransport means.
type localTransport struct{}

// NewLocalShuffleTransport returns the in-process transport explicitly —
// benches and tests use it to pin transport=local against the same
// interface the TCP transport implements.
func NewLocalShuffleTransport() ShuffleTransport { return localTransport{} }

func (localTransport) Name() string { return "local" }

func (localTransport) OpenExchange(spec ShuffleJoinSpec) (ShuffleExchange, error) {
	return newLocalExchange(spec), nil
}

func (localTransport) Close() error { return nil }
