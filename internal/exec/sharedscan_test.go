package exec

import (
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/storage"
	"rqp/internal/types"
)

func sharedScanTable(t *testing.T, rows int) *catalog.Table {
	t.Helper()
	cat := catalog.New()
	tb, err := cat.CreateTable("s", types.Schema{{Name: "id", Kind: types.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		cat.Insert(nil, tb, types.Row{types.Int(int64(i))})
	}
	return tb
}

func TestSharedScanAllConsumersSeeAllRows(t *testing.T) {
	tb := sharedScanTable(t, storage.PageRows*5)
	clk := storage.NewClock(storage.DefaultCostModel())
	ss := NewSharedScan(clk, tb)
	seen := make([]map[int64]int, 3)
	for i := range seen {
		seen[i] = map[int64]int{}
		idx := i
		ss.Attach(func(r types.Row) bool {
			seen[idx][r[0].I]++
			return true
		})
	}
	ss.Run()
	for i, m := range seen {
		if len(m) != storage.PageRows*5 {
			t.Fatalf("consumer %d saw %d distinct rows", i, len(m))
		}
		for id, n := range m {
			if n != 1 {
				t.Fatalf("consumer %d saw row %d %d times", i, id, n)
			}
		}
	}
}

func TestSharedScanLateAttachWrapsAround(t *testing.T) {
	tb := sharedScanTable(t, storage.PageRows*6)
	ss := NewSharedScan(nil, tb)
	first := map[int64]bool{}
	ss.Attach(func(r types.Row) bool {
		first[r[0].I] = true
		return true
	})
	// Advance the sweep 2 pages, then attach a latecomer.
	ss.Step()
	ss.Step()
	late := map[int64]bool{}
	var order []int64
	c := ss.Attach(func(r types.Row) bool {
		late[r[0].I] = true
		order = append(order, r[0].I)
		return true
	})
	ss.Run()
	if !c.Done() {
		t.Fatal("late cursor not done")
	}
	if len(late) != storage.PageRows*6 {
		t.Fatalf("late consumer saw %d rows", len(late))
	}
	// The latecomer starts at page 2, so its first row is PageRows*2.
	if order[0] != int64(storage.PageRows*2) {
		t.Errorf("late consumer first row = %d, want %d", order[0], storage.PageRows*2)
	}
	// And it ends with the wrapped prefix (last row from page 1).
	if last := order[len(order)-1]; last != int64(storage.PageRows*2-1) {
		t.Errorf("late consumer last row = %d, want %d", last, storage.PageRows*2-1)
	}
}

func TestSharedScanSharesPageReads(t *testing.T) {
	tb := sharedScanTable(t, storage.PageRows*10)
	// Independent scans: 4 consumers × 10 pages = 40 seq reads.
	indep := storage.NewClock(storage.DefaultCostModel())
	for i := 0; i < 4; i++ {
		tb.Heap.Scan(indep, func(storage.RID, types.Row) bool { return true })
	}
	indepReads, _, _, _ := indep.Counters()

	shared := storage.NewClock(storage.DefaultCostModel())
	ss := NewSharedScan(shared, tb)
	for i := 0; i < 4; i++ {
		ss.Attach(func(types.Row) bool { return true })
	}
	ss.Run()
	sharedReads, _, _, _ := shared.Counters()
	if sharedReads != 10 {
		t.Errorf("shared scan charged %d page reads, want 10", sharedReads)
	}
	if indepReads != 40 {
		t.Errorf("independent scans charged %d, want 40", indepReads)
	}
}

func TestSharedScanEarlyStopAndEmpty(t *testing.T) {
	tb := sharedScanTable(t, storage.PageRows*3)
	ss := NewSharedScan(nil, tb)
	n := 0
	c := ss.Attach(func(types.Row) bool {
		n++
		return n < 5
	})
	ss.Run()
	if !c.Done() || n != 5 {
		t.Errorf("early stop wrong: done=%v n=%d", c.Done(), n)
	}
	// Empty table: cursor is immediately done.
	empty := sharedScanTable(t, 0)
	ss2 := NewSharedScan(nil, empty)
	c2 := ss2.Attach(func(types.Row) bool { return true })
	ss2.Run()
	if !c2.Done() {
		t.Error("cursor over empty table should be done")
	}
}
