package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rqp/internal/storage"
	"rqp/internal/types"
)

// Morsel sizing. Scans hand out fixed page ranges; operators over
// materialized intermediates hand out fixed row ranges. Sizes are chosen so
// a morsel is large enough to amortize dispatch but small enough that a
// skewed morsel cannot leave the other workers idle for long.
const (
	// MorselPages is the number of heap pages per scan morsel.
	MorselPages = 8
	// MorselRows is the number of rows per morsel over materialized input.
	MorselRows = 512
	// ParallelMinRows is the default table-size floor below which
	// MarkParallel leaves a scan serial (fan-out overhead dominates).
	ParallelMinRows = 256
)

// morselBufPool recycles per-morsel output buffers across morsels and
// queries: every morsel needs a scratch slice to collect its rows before the
// exchange replays them, and at MorselRows-sized fan-outs the allocations
// otherwise dominate small-morsel work.
var morselBufPool = sync.Pool{
	New: func() any { return make([]types.Row, 0, MorselRows) },
}

// getMorselBuf returns an empty row buffer with pooled capacity.
func getMorselBuf() []types.Row {
	return morselBufPool.Get().([]types.Row)[:0]
}

// putMorselBuf clears the buffer's row references (so pooled memory does not
// pin query data) and returns it to the pool.
func putMorselBuf(b []types.Row) {
	clear(b[:cap(b)])
	morselBufPool.Put(b[:0])
}

// morselCount returns how many size-unit morsels cover total units.
func morselCount(total, size int) int {
	return (total + size - 1) / size
}

// morselRange returns the [lo, hi) unit interval of morsel m.
func morselRange(m, size, total int) (int, int) {
	lo := m * size
	hi := lo + size
	if hi > total {
		hi = total
	}
	return lo, hi
}

// exchange is the gather side of a morsel fan-out: every morsel writes its
// output into a private buffer, and the exchange replays the buffers in
// morsel-index order. Because morsels partition the input in order, the
// merged stream is exactly the row order the serial operator would emit —
// the determinism guarantee parallel execution rides on.
type exchange struct {
	bufs [][]types.Row
	mi   int
	pos  int
}

// reset prepares the exchange for n morsels.
func (x *exchange) reset(n int) {
	x.bufs = make([][]types.Row, n)
	x.mi, x.pos = 0, 0
}

// set stores morsel m's output buffer (each morsel is set exactly once, by
// the worker that ran it; distinct indices never race).
func (x *exchange) set(m int, rows []types.Row) { x.bufs[m] = rows }

// next returns the following row in morsel-merge order.
func (x *exchange) next() (types.Row, bool) {
	for x.mi < len(x.bufs) {
		if b := x.bufs[x.mi]; x.pos < len(b) {
			r := b[x.pos]
			x.pos++
			return r, true
		}
		x.mi++
		x.pos = 0
	}
	return nil, false
}

// rows flattens the remaining buffers (merge order) into one slice.
func (x *exchange) rows() []types.Row {
	total := 0
	for _, b := range x.bufs {
		total += len(b)
	}
	out := make([]types.Row, 0, total)
	for _, b := range x.bufs {
		out = append(out, b...)
	}
	return out
}

// release returns the buffers to the morsel pool. Safe to call twice (the
// second call sees nil bufs and does nothing).
func (x *exchange) release() {
	for _, b := range x.bufs {
		if b != nil {
			putMorselBuf(b)
		}
	}
	x.bufs = nil
}

// runMorsels dispatches morsels 0..n-1 to up to dop workers pulling from a
// shared cursor (dynamic scheduling, so slow morsels do not stall the
// pool). Each worker charges a private shard of ctx.Clock; the shards merge
// back at the gather barrier, which keeps the simulated-cost total exactly
// equal to a serial execution performing the same charges. With dop <= 1
// (or a single morsel) the work runs inline on the caller's goroutine and
// clock. When tracing, one event per worker records its share of morsels,
// rows and cost — the per-worker view EXPLAIN ANALYZE surfaces.
//
// fn processes one morsel, charging clk, and returns the number of rows it
// produced (trace bookkeeping only). The first error cancels remaining
// morsels; charges already made by other workers still merge, mirroring the
// serial operator whose partial work is also already on the clock when it
// fails.
func runMorsels(ctx *Context, label string, n, dop int, fn func(m int, clk *storage.Clock) (int, error)) error {
	if n <= 0 {
		return nil
	}
	if dop > n {
		dop = n
	}
	if dop <= 1 {
		for m := 0; m < n; m++ {
			if _, err := fn(m, ctx.Clock); err != nil {
				return err
			}
		}
		return nil
	}
	type workerStat struct {
		morsels int
		rows    int
	}
	var (
		cursor int64 = -1
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	stats := make([]workerStat, dop)
	shards := make([]*storage.Clock, dop)
	errs := make([]error, dop)
	for w := 0; w < dop; w++ {
		shards[w] = ctx.Clock.Shard()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				m := int(atomic.AddInt64(&cursor, 1))
				if m >= n {
					return
				}
				rows, err := fn(m, shards[w])
				if err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
				stats[w].morsels++
				stats[w].rows += rows
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < dop; w++ {
		units := shards[w].Units()
		ctx.Clock.Merge(shards[w])
		if ctx.Trace != nil {
			ctx.Trace.Event("parallel.worker",
				fmt.Sprintf("%s worker=%d morsels=%d rows=%d cost=%.2f",
					label, w, stats[w].morsels, stats[w].rows, units))
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
