package exec

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

// testDB builds a small two-table database with known contents:
//
//	t(id, grp, val):  id 0..199, grp = id % 10, val = id * 2
//	u(id, tid, name): id 0..49,  tid = id * 4,  name = "n<id%5>"
func testDB(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tt, err := cat.CreateTable("t", types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "grp", Kind: types.KindInt},
		{Name: "val", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		cat.Insert(nil, tt, types.Row{types.Int(int64(i)), types.Int(int64(i % 10)), types.Int(int64(i * 2))})
	}
	uu, err := cat.CreateTable("u", types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "tid", Kind: types.KindInt},
		{Name: "name", Kind: types.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		cat.Insert(nil, uu, types.Row{types.Int(int64(i)), types.Int(int64(i * 4)), types.Str(fmt.Sprintf("n%d", i%5))})
	}
	cat.AnalyzeTable(tt, 16)
	cat.AnalyzeTable(uu, 16)
	return cat
}

// runSQL parses, binds, optimizes and executes a query.
func runSQL(t *testing.T, cat *catalog.Catalog, q string, params ...types.Value) []types.Row {
	t.Helper()
	rows, err := tryRunSQL(cat, q, params...)
	if err != nil {
		t.Fatalf("runSQL(%q): %v", q, err)
	}
	return rows
}

func tryRunSQL(cat *catalog.Catalog, q string, params ...types.Value) ([]types.Row, error) {
	st, err := sql.Parse(q)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("not a select: %T", st)
	}
	bq, err := plan.Bind(sel, cat)
	if err != nil {
		return nil, err
	}
	o := opt.New(cat)
	p, err := o.Optimize(bq, params)
	if err != nil {
		return nil, err
	}
	ctx := NewContext()
	ctx.Params = params
	return Run(p, ctx)
}

func rowStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

func sortedRowStrings(rows []types.Row) []string {
	out := rowStrings(rows)
	sort.Strings(out)
	return out
}

func TestSelectFilter(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT id FROM t WHERE id < 5")
	if len(rows) != 5 {
		t.Fatalf("got %d rows: %v", len(rows), rowStrings(rows))
	}
	rows = runSQL(t, cat, "SELECT id FROM t WHERE grp = 3 AND id < 50")
	if len(rows) != 5 { // 3, 13, 23, 33, 43
		t.Fatalf("grp filter wrong: %v", rowStrings(rows))
	}
}

func TestSelectProjectionAndArith(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT id, val / 2, id + 100 FROM t WHERE id = 7")
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r[0].I != 7 || r[1].AsFloat() != 7 || r[2].I != 107 {
		t.Errorf("projection wrong: %v", r)
	}
}

func TestSelectStar(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT * FROM u WHERE id = 3")
	if len(rows) != 1 || len(rows[0]) != 3 {
		t.Fatalf("star wrong: %v", rowStrings(rows))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT id FROM t WHERE id < 20 ORDER BY id DESC LIMIT 3 OFFSET 2")
	want := []int64{17, 16, 15}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, w := range want {
		if rows[i][0].I != w {
			t.Errorf("row %d = %v, want %d", i, rows[i], w)
		}
	}
}

func TestInnerJoin(t *testing.T) {
	cat := testDB(t)
	// u.tid = t.id joins 50 u-rows to t (tid 0..196 step 4, all < 200)
	rows := runSQL(t, cat, "SELECT u.id, t.id FROM u, t WHERE u.tid = t.id")
	if len(rows) != 50 {
		t.Fatalf("join rows = %d", len(rows))
	}
	for _, r := range rows {
		if r[1].I != r[0].I*4 {
			t.Errorf("bad join pair %v", r)
		}
	}
	// explicit JOIN syntax must agree
	rows2 := runSQL(t, cat, "SELECT u.id, t.id FROM u JOIN t ON u.tid = t.id")
	if len(rows2) != 50 {
		t.Fatalf("explicit join rows = %d", len(rows2))
	}
}

func TestJoinWithFilterAndResidual(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, `SELECT u.id, t.val FROM u, t
		WHERE u.tid = t.id AND t.grp = 0 AND u.id < 10 AND u.id + t.grp < 100`)
	// t.grp = 0 means t.id % 10 == 0; u.tid = u.id*4, so need (u.id*4)%10==0
	// => u.id % 5 == 0, with u.id < 10: ids 0 and 5.
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rowStrings(rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	cat := testDB(t)
	// self-ish 3-way: u x t x t2 via val
	tt, _ := cat.Table("t")
	_ = tt
	rows := runSQL(t, cat, `SELECT a.id, b.id, u.id FROM t a, t b, u
		WHERE a.id = b.id AND b.id = u.tid AND u.id < 5`)
	if len(rows) != 5 {
		t.Fatalf("3-way join rows = %d: %v", len(rows), rowStrings(rows))
	}
}

func TestLeftJoin(t *testing.T) {
	cat := testDB(t)
	// Every t row with grp=7 (ids 7,17,...,197: 20 rows); u matches where
	// u.tid = t.id: tid multiples of 4 — id ≡ 7 mod 10 never multiple of 4... none match
	rows := runSQL(t, cat, `SELECT t.id, u.id FROM t LEFT JOIN u ON u.tid = t.id WHERE t.grp = 7`)
	if len(rows) != 20 {
		t.Fatalf("left join rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r[1].IsNull() {
			t.Errorf("expected null-extended row, got %v", r)
		}
	}
	// And matching case: grp = 0 rows with id%4==0 match (0,20,40,...,180 → ids divisible by 20 are multiples of 4: 0,20 no... id%10==0 and id%4==0 → id%20==0 → 10 rows)
	rows2 := runSQL(t, cat, `SELECT t.id, u.id FROM t LEFT JOIN u ON u.tid = t.id WHERE t.grp = 0`)
	if len(rows2) != 20 {
		t.Fatalf("left join rows2 = %d", len(rows2))
	}
	matched := 0
	for _, r := range rows2 {
		if !r[1].IsNull() {
			matched++
			if r[1].I*4 != r[0].I {
				t.Errorf("bad match %v", r)
			}
		}
	}
	if matched != 10 {
		t.Errorf("matched = %d, want 10", matched)
	}
}

func TestAggregation(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT grp, COUNT(*), SUM(val), MIN(id), MAX(id), AVG(id) FROM t GROUP BY grp ORDER BY grp")
	if len(rows) != 10 {
		t.Fatalf("groups = %d", len(rows))
	}
	// grp g: ids g, g+10, ..., g+190 (20 rows). SUM(val) = 2*(20g + 1900)
	for g := int64(0); g < 10; g++ {
		r := rows[g]
		if r[0].I != g || r[1].I != 20 {
			t.Fatalf("group %d wrong: %v", g, r)
		}
		wantSum := float64(2 * (20*g + 1900))
		if r[2].AsFloat() != wantSum {
			t.Errorf("group %d SUM=%v want %v", g, r[2], wantSum)
		}
		if r[3].I != g || r[4].I != g+190 {
			t.Errorf("group %d MIN/MAX wrong: %v", g, r)
		}
		wantAvg := float64(g + 95)
		if r[5].AsFloat() != wantAvg {
			t.Errorf("group %d AVG=%v want %v", g, r[5], wantAvg)
		}
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT COUNT(*), SUM(val) FROM t WHERE id < 0")
	if len(rows) != 1 {
		t.Fatalf("global agg rows = %d", len(rows))
	}
	if rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty agg wrong: %v", rows[0])
	}
}

func TestHaving(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT grp, COUNT(*) FROM t WHERE id < 55 GROUP BY grp HAVING COUNT(*) > 5 ORDER BY grp")
	// ids 0..54: grp 0..4 have 6 rows, 5..9 have 5.
	if len(rows) != 5 {
		t.Fatalf("having rows = %v", rowStrings(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) || r[1].I != 6 {
			t.Errorf("having row wrong: %v", r)
		}
	}
}

func TestAggArithmetic(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT SUM(val) / COUNT(*) FROM t WHERE grp = 1")
	if len(rows) != 1 {
		t.Fatal("expected one row")
	}
	// grp1: ids 1,11,...,191; vals 2,22,...,382; avg val = 192... sum=20*192=3840/20=192
	if rows[0][0].AsFloat() != 192 {
		t.Errorf("agg arithmetic = %v, want 192", rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT DISTINCT grp FROM t")
	if len(rows) != 10 {
		t.Fatalf("distinct rows = %d", len(rows))
	}
	rows2 := runSQL(t, cat, "SELECT DISTINCT name FROM u ORDER BY name")
	if len(rows2) != 5 || rows2[0][0].S != "n0" {
		t.Fatalf("distinct strings wrong: %v", rowStrings(rows2))
	}
}

func TestInBetweenLikeNullPredicates(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT id FROM t WHERE id IN (3, 5, 999)")
	if len(rows) != 2 {
		t.Fatalf("IN rows = %v", rowStrings(rows))
	}
	rows = runSQL(t, cat, "SELECT id FROM t WHERE id BETWEEN 10 AND 15")
	if len(rows) != 6 {
		t.Fatalf("BETWEEN rows = %d", len(rows))
	}
	rows = runSQL(t, cat, "SELECT id FROM u WHERE name LIKE 'n1%'")
	if len(rows) != 10 {
		t.Fatalf("LIKE rows = %d", len(rows))
	}
	rows = runSQL(t, cat, "SELECT id FROM t WHERE id IS NULL")
	if len(rows) != 0 {
		t.Fatalf("IS NULL rows = %d", len(rows))
	}
}

func TestParamsExecution(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT COUNT(*) FROM t WHERE id >= ? AND id <= ?",
		types.Int(10), types.Int(19))
	if rows[0][0].I != 10 {
		t.Errorf("param count = %v", rows[0][0])
	}
}

func TestEquivalentQueriesSameResult(t *testing.T) {
	cat := testDB(t)
	variants := []string{
		"SELECT id FROM t WHERE NOT (id <> 42)",
		"SELECT id FROM t WHERE id = 42",
		"SELECT id FROM t WHERE 42 = id",
		"SELECT id FROM t WHERE id BETWEEN 42 AND 42",
		"SELECT id FROM t WHERE id IN (42)",
		"SELECT id FROM t WHERE id >= 42 AND id <= 42",
	}
	for _, q := range variants {
		rows := runSQL(t, cat, q)
		if len(rows) != 1 || rows[0][0].I != 42 {
			t.Errorf("%q: got %v", q, rowStrings(rows))
		}
	}
}

// TestAllJoinAlgorithmsAgree forces each join algorithm and verifies
// identical results — the plan-repertoire correctness invariant.
func TestAllJoinAlgorithmsAgree(t *testing.T) {
	cat := testDB(t)
	query := "SELECT u.id, t.id, t.val FROM u, t WHERE u.tid = t.id AND t.grp < 8"
	st, _ := sql.Parse(query)
	bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatal(err)
	}
	var reference []string
	configs := []struct {
		name string
		mod  func(*opt.Options)
	}{
		{"hash", func(o *opt.Options) { o.DisableMerge, o.DisableNL, o.DisableIndexNL = true, true, true }},
		{"merge", func(o *opt.Options) { o.DisableHash, o.DisableNL, o.DisableIndexNL = true, true, true }},
		{"nl", func(o *opt.Options) { o.DisableHash, o.DisableMerge, o.DisableIndexNL = true, true, true }},
		{"gjoin", func(o *opt.Options) { o.GJoinOnly = true }},
	}
	for _, cfg := range configs {
		o := opt.New(cat)
		cfg.mod(&o.Opt)
		p, err := o.Optimize(bq, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		ctx := NewContext()
		rows, err := Run(p, ctx)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		got := sortedRowStrings(rows)
		if reference == nil {
			reference = got
			continue
		}
		if strings.Join(got, ";") != strings.Join(reference, ";") {
			t.Errorf("%s: results differ from reference (%d vs %d rows)", cfg.name, len(got), len(reference))
		}
	}
	if len(reference) == 0 {
		t.Fatal("reference empty — join produced nothing")
	}
}

// TestIndexScanMatchesSeqScan verifies the index access path returns the
// same rows as a table scan.
func TestIndexScanMatchesSeqScan(t *testing.T) {
	cat := testDB(t)
	seq := sortedRowStrings(runSQL(t, cat, "SELECT id, val FROM t WHERE id >= 50 AND id < 60"))
	if _, err := cat.CreateIndex(nil, "t", "t_id", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	tt, _ := cat.Table("t")
	cat.AnalyzeTable(tt, 16)
	idx := sortedRowStrings(runSQL(t, cat, "SELECT id, val FROM t WHERE id >= 50 AND id < 60"))
	if strings.Join(seq, ";") != strings.Join(idx, ";") {
		t.Errorf("index scan differs:\nseq: %v\nidx: %v", seq, idx)
	}
}

func TestIndexChosenForSelectivePredicate(t *testing.T) {
	// Needs a table big enough that random index probes beat a short scan.
	cat := catalog.New()
	tt, _ := cat.CreateTable("t", types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "val", Kind: types.KindInt},
	})
	for i := 0; i < 5000; i++ {
		cat.Insert(nil, tt, types.Row{types.Int(int64(i)), types.Int(int64(i * 2))})
	}
	cat.CreateIndex(nil, "t", "t_id", []string{"id"}, true)
	cat.AnalyzeTable(tt, 16)
	st, _ := sql.Parse("SELECT val FROM t WHERE id = 7")
	bq, _ := plan.Bind(st.(*sql.SelectStmt), cat)
	o := opt.New(cat)
	p, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	sig := plan.PlanSignature(p)
	if !strings.Contains(sig, "IndexScan") {
		t.Errorf("selective equality should use index: %s", sig)
	}
	// Unselective predicate should prefer the seq scan.
	st2, _ := sql.Parse("SELECT val FROM t WHERE id >= 0")
	bq2, _ := plan.Bind(st2.(*sql.SelectStmt), cat)
	p2, _ := o.Optimize(bq2, nil)
	if strings.Contains(plan.PlanSignature(p2), "IndexScan") {
		t.Errorf("unselective predicate should not use index: %s", plan.PlanSignature(p2))
	}
}

func TestActualCardinalitiesRecorded(t *testing.T) {
	cat := testDB(t)
	st, _ := sql.Parse("SELECT id FROM t WHERE grp = 3")
	bq, _ := plan.Bind(st.(*sql.SelectStmt), cat)
	o := opt.New(cat)
	p, _ := o.Optimize(bq, nil)
	ctx := NewContext()
	if _, err := Run(p, ctx); err != nil {
		t.Fatal(err)
	}
	plan.Walk(p, func(n plan.Node) {
		if n.Props().ActualRows < 0 {
			t.Errorf("node %s has no actual cardinality", n.Label())
		}
	})
}

func TestClockAdvancesDuringExecution(t *testing.T) {
	cat := testDB(t)
	st, _ := sql.Parse("SELECT COUNT(*) FROM t")
	bq, _ := plan.Bind(st.(*sql.SelectStmt), cat)
	o := opt.New(cat)
	p, _ := o.Optimize(bq, nil)
	ctx := NewContext()
	if _, err := Run(p, ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Clock.Units() <= 0 {
		t.Error("execution should consume simulated cost")
	}
}

func TestMemoryPressureSpillsStillCorrect(t *testing.T) {
	cat := testDB(t)
	st, _ := sql.Parse("SELECT u.id, t.id FROM u, t WHERE u.tid = t.id ORDER BY t.id")
	bq, _ := plan.Bind(st.(*sql.SelectStmt), cat)
	o := opt.New(cat)
	o.Opt.MemBudgetRows = 8 // force spills in sort and hash join costing
	p, err := o.Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	ctx.Mem = NewMemBroker(8)
	rows, err := Run(p, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("spilled execution rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][1].I < rows[i-1][1].I {
			t.Fatal("spilled sort not ordered")
		}
	}
}

func TestOrderByAlias(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT grp AS g, COUNT(*) AS c FROM t GROUP BY grp ORDER BY g DESC LIMIT 2")
	if len(rows) != 2 || rows[0][0].I != 9 || rows[1][0].I != 8 {
		t.Fatalf("order by alias wrong: %v", rowStrings(rows))
	}
}

func TestBindErrors(t *testing.T) {
	cat := testDB(t)
	bad := []string{
		"SELECT nosuch FROM t",
		"SELECT id FROM nosuch",
		"SELECT id FROM t, t",
		"SELECT id FROM t, u", // ambiguous id
		"SELECT id, COUNT(*) FROM t",
		"SELECT * FROM t GROUP BY grp",
		"SELECT grp FROM t GROUP BY grp ORDER BY nosuch",
	}
	for _, q := range bad {
		if _, err := tryRunSQL(cat, q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestCrossProduct(t *testing.T) {
	cat := testDB(t)
	rows := runSQL(t, cat, "SELECT COUNT(*) FROM t, u WHERE t.id < 2 AND u.id < 3")
	if rows[0][0].I != 6 {
		t.Errorf("cross product count = %v, want 6", rows[0][0])
	}
}
