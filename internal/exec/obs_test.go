package exec

import (
	"errors"
	"fmt"
	"testing"

	"rqp/internal/catalog"
	"rqp/internal/obs"
	"rqp/internal/opt"
	"rqp/internal/plan"
	"rqp/internal/sql"
	"rqp/internal/types"
)

func planFor(t *testing.T, cat *catalog.Catalog, q string) plan.Node {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	bq, err := plan.Bind(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatal(err)
	}
	root, err := opt.New(cat).Optimize(bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// countActuals runs the plan and tallies OnActual invocations per node.
func countActuals(t *testing.T, root plan.Node) map[plan.Node]int {
	t.Helper()
	ctx := NewContext()
	fired := map[plan.Node]int{}
	ctx.OnActual = func(n plan.Node, actual float64) { fired[n]++ }
	if _, err := Run(root, ctx); err != nil {
		t.Fatal(err)
	}
	return fired
}

// TestOnActualOncePerNodeDrained: draining a plan to exhaustion fires the
// feedback hook exactly once per node.
func TestOnActualOncePerNodeDrained(t *testing.T) {
	cat := testDB(t)
	root := planFor(t, cat, "SELECT id FROM t WHERE grp = 3 ORDER BY id")
	fired := countActuals(t, root)
	nodes := 0
	plan.Walk(root, func(n plan.Node) {
		nodes++
		if fired[n] != 1 {
			t.Errorf("node %s: OnActual fired %d times, want 1", n.Label(), fired[n])
		}
	})
	if len(fired) != nodes {
		t.Fatalf("OnActual fired for %d nodes, plan has %d", len(fired), nodes)
	}
}

// TestOnActualOncePerNodeEarlyClose: a LIMIT closes its child pipeline
// before exhaustion; every node must still report exactly once.
func TestOnActualOncePerNodeEarlyClose(t *testing.T) {
	cat := testDB(t)
	root := planFor(t, cat, "SELECT id FROM t LIMIT 3")
	limitSeen := false
	plan.Walk(root, func(n plan.Node) {
		if _, ok := n.(*plan.LimitNode); ok {
			limitSeen = true
		}
	})
	if !limitSeen {
		t.Fatal("plan has no LimitNode; test needs an early-close pipeline")
	}
	fired := countActuals(t, root)
	plan.Walk(root, func(n plan.Node) {
		if fired[n] != 1 {
			t.Errorf("node %s: OnActual fired %d times, want 1", n.Label(), fired[n])
		}
	})
}

// failingOp errors from Next and from Close, to prove Run surfaces both.
type failingOp struct{ nextErr, closeErr error }

func (f *failingOp) Open() error                    { return nil }
func (f *failingOp) Next() (types.Row, bool, error) { return nil, false, f.nextErr }
func (f *failingOp) Close() error                   { return f.closeErr }

// TestRunSurfacesCloseError: when Next fails, a Close failure must be
// joined onto the returned error, not silently discarded.
func TestRunSurfacesCloseError(t *testing.T) {
	nextErr := errors.New("next exploded")
	closeErr := errors.New("close exploded")
	_, err := runOp(&failingOp{nextErr: nextErr, closeErr: closeErr}, nil)
	if !errors.Is(err, nextErr) {
		t.Fatalf("error %v does not wrap the Next failure", err)
	}
	if !errors.Is(err, closeErr) {
		t.Fatalf("error %v does not wrap the Close failure", err)
	}
	// With a clean Close the original error must come back untouched, so
	// callers' direct type assertions (e.g. *CardinalityViolation) keep
	// working.
	_, err = runOp(&failingOp{nextErr: nextErr}, nil)
	if err != nextErr {
		t.Fatalf("error = %v, want the bare Next failure", err)
	}
}

// TestMemBrokerOvercommit: the progress floor can push inUse past the
// budget; the broker must count it instead of hiding it.
func TestMemBrokerOvercommit(t *testing.T) {
	m := NewMemBroker(10)
	g := m.Grant(50) // avail 10 < floor 16 → overcommit
	if g != 16 {
		t.Fatalf("grant = %d, want floor 16", g)
	}
	if m.InUse() != 16 {
		t.Fatalf("inUse = %d, want 16", m.InUse())
	}
	if m.Overcommits() != 1 {
		t.Fatalf("overcommits = %d, want 1", m.Overcommits())
	}
	if m.PeakUse() != 16 {
		t.Fatalf("peak = %d, want 16", m.PeakUse())
	}
	m.Release(16)
	if m.Overcommits() != 1 {
		t.Fatal("release must not change the overcommit count")
	}
	// A grant inside budget is not an overcommit.
	if g := m.Grant(5); g != 5 {
		t.Fatalf("grant = %d, want 5", g)
	}
	if m.Overcommits() != 1 {
		t.Fatalf("overcommits = %d, want still 1", m.Overcommits())
	}
}

// TestMemBrokerEvents: grant/release decisions reach the observer hook.
func TestMemBrokerEvents(t *testing.T) {
	m := NewMemBroker(100)
	var log []string
	m.OnEvent = func(kind string, rows, inUse, budget int) {
		log = append(log, fmt.Sprintf("%s:%d:%d:%d", kind, rows, inUse, budget))
	}
	m.Grant(20)
	m.Release(20)
	want := []string{"grant:20:20:100", "release:20:0:100"}
	if len(log) != 2 || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("event log = %v, want %v", log, want)
	}
}

// TestTraceSpansRecorded: a traced run produces a span per plan node with
// actual rows and nonzero root cost.
func TestTraceSpansRecorded(t *testing.T) {
	cat := testDB(t)
	root := planFor(t, cat, "SELECT grp, COUNT(*) FROM t GROUP BY grp")
	ctx := NewContext()
	tr := obs.NewTrace(ctx.Clock)
	ctx.Trace = tr
	rows, err := Run(root, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	if len(tr.Roots()) != 1 {
		t.Fatalf("fragments = %d, want 1", len(tr.Roots()))
	}
	plan.Walk(root, func(n plan.Node) {
		s := tr.SpanOf(n)
		if s == nil {
			t.Fatalf("node %s has no span", n.Label())
		}
		if s.ActualRows() < 0 {
			t.Errorf("node %s: span never finished", n.Label())
		}
		if s.ActualRows() != n.Props().ActualRows {
			t.Errorf("node %s: span actual %v != props actual %v", n.Label(), s.ActualRows(), n.Props().ActualRows)
		}
	})
	rootSpan := tr.SpanOf(root)
	if rootSpan.Cost() <= 0 {
		t.Fatal("root span accrued no cost")
	}
	// Inclusive costs: the root's cost must cover its children's.
	for _, c := range rootSpan.Children() {
		if c.Cost() > rootSpan.Cost()+1e-9 {
			t.Fatalf("child cost %v exceeds root cost %v", c.Cost(), rootSpan.Cost())
		}
	}
}
