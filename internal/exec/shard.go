package exec

import (
	"sync"
	"sync/atomic"

	"rqp/internal/plan"
	"rqp/internal/storage"
)

// Sharded scale-out execution models N logical "nodes" as goroutine-backed
// shards, each running the full local operator stack, with hash-partition
// shuffle exchanges between them (see shardjoin.go). Accounting is split
// into two domains:
//
//   - The main clock: the same multiset of charges the serial plan makes,
//     issued on per-shard child clocks and merged back — so total simulated
//     cost stays integer-exact regardless of shard count, the repo's
//     signature invariant.
//   - The shuffle-overhead domain: NetRow transfer and replica-insert
//     charges that only exist because rows crossed shards. These accumulate
//     per shard in ShuffleStats and never touch the main clock.
//
// A per-shard makespan (what a real cluster's response time would be) is
// then derived by the bench layer as the serial prefix plus the slowest
// shard's main+overhead units.

// shardSkewFactor flags a shard whose routed build-row share exceeds this
// multiple of the mean — the per-shard row counters' skew trigger. Keys
// whose build rows alone exceed the mean shard load are then split.
const shardSkewFactor = 2.0

// shardSeqShift packs (morsel, row-within-morsel) into one monotone
// sequence tag for the gather merge; no morsel or column block holds 2^20
// rows.
const shardSeqShift = 20

// shardEligible reports whether build routes a join through the sharded
// shuffle layer: the context carries shards and the planner annotated the
// join (opt.PlanShuffles marks every hash join when sharding is on).
func (ctx *Context) shardEligible(j *plan.JoinNode) bool {
	return ctx.Shards > 1 && j.Alg == plan.JoinHash && j.Shuffle != plan.ShuffleNone
}

// shardStartHook, when non-nil, runs in every shard goroutine before it
// starts work — a test seam that staggers or randomizes shard start order
// to shake out ordering assumptions under -race.
var shardStartHook func(shard int)

// SetShardStartHook installs (or, with nil, clears) the shard-start test
// seam. Tests only; not safe to change while queries run.
func SetShardStartHook(fn func(shard int)) { shardStartHook = fn }

// runShards runs fn(0..n-1) on one goroutine per shard and returns the
// first error by shard index. The shards ARE the scale-out parallelism;
// within a shard, work runs sequentially on that shard's clock.
func runShards(n int, fn func(s int) error) error {
	hook := shardStartHook
	if n == 1 {
		if hook != nil {
			hook(0)
		}
		return fn(0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if hook != nil {
				hook(s)
			}
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardRange returns shard s's half-open slice of total items under the
// contiguous-range assignment — contiguity is what keeps per-shard
// sequence tags monotone so the gather merge never sorts.
func shardRange(s, n, total int) (lo, hi int) {
	return s * total / n, (s + 1) * total / n
}

// ShuffleStats aggregates shuffle-exchange activity across a query's
// sharded joins. All methods are nil-safe and atomic: shard goroutines, the
// coordinator, and transport sender goroutines update it concurrently.
//
// The net* counters are the wire-accounting domain a network transport
// feeds: frames and bytes actually written to sockets, rows carried inside
// those frames, and backpressure stalls. They exist so the NetRow
// side-domain charges (shardExtra) can be reconciled against what was
// really sent instead of assumed — netRowsWire must equal netRowsRouted
// (every row handed to the transport arrived inside a frame), and the
// local transport leaves all of them zero.
type ShuffleStats struct {
	shards        int
	rowsMoved     int64 // probe/build rows that crossed shards (repartition)
	rowsBroadcast int64 // build-row replicas shipped (broadcast)
	hotKeys       int64 // build keys split across shards by skew handling
	hotProbeDups  int64 // probe-row duplicates routed for split keys
	degrades      int64 // joins that bypassed the shuffle under memory pressure
	colocated     int64 // joins run with no row movement
	repartition   int64
	broadcast     int64
	shardUnits    []int64 // main-clock units attributed per shard (ClockScale domain)
	shardExtra    []int64 // shuffle-overhead units per shard (ClockScale domain)

	transport     atomic.Value // string: exchange transport that actually ran ("", "local", "tcp")
	netFrames     int64        // route/out-batch frames written to sockets
	netBytes      int64        // frame bytes written (headers + payload)
	netRowsRouted int64        // rows handed to a network exchange for shipping
	netRowsWire   int64        // rows carried inside frames actually sent
	netStalls     int64        // sender blocks on an exhausted credit window
	netFallbacks  int64        // exchanges refused by the transport, run locally
	peerFrames    []int64      // per-destination-shard frame counts
	peerBytes     []int64      // per-destination-shard frame bytes
	peerStalls    []int64      // per-destination-shard backpressure stalls
}

// NewShuffleStats returns stats for a query running on n shards.
func NewShuffleStats(n int) *ShuffleStats {
	return &ShuffleStats{
		shards: n, shardUnits: make([]int64, n), shardExtra: make([]int64, n),
		peerFrames: make([]int64, n), peerBytes: make([]int64, n), peerStalls: make([]int64, n),
	}
}

func (s *ShuffleStats) movedRows(n int64) {
	if s != nil {
		atomic.AddInt64(&s.rowsMoved, n)
	}
}

func (s *ShuffleStats) broadcastRows(n int64) {
	if s != nil {
		atomic.AddInt64(&s.rowsBroadcast, n)
	}
}

func (s *ShuffleStats) hotSplit(keys int64) {
	if s != nil {
		atomic.AddInt64(&s.hotKeys, keys)
	}
}

func (s *ShuffleStats) hotDup(n int64) {
	if s != nil {
		atomic.AddInt64(&s.hotProbeDups, n)
	}
}

func (s *ShuffleStats) degraded() {
	if s != nil {
		atomic.AddInt64(&s.degrades, 1)
	}
}

func (s *ShuffleStats) countJoin(mode plan.ShuffleMode) {
	if s == nil {
		return
	}
	switch mode {
	case plan.ShuffleColocated:
		atomic.AddInt64(&s.colocated, 1)
	case plan.ShuffleBroadcast:
		atomic.AddInt64(&s.broadcast, 1)
	default:
		atomic.AddInt64(&s.repartition, 1)
	}
}

// addExtra charges n repetitions of unit into shard's shuffle-overhead
// domain, with the same float-to-integer truncation identity the main
// clock's batch charges use.
func (s *ShuffleStats) addExtra(shard, n int, unit float64) {
	if s == nil || n == 0 || shard >= len(s.shardExtra) {
		return
	}
	atomic.AddInt64(&s.shardExtra[shard], int64(n)*int64(unit*storage.ClockScale))
}

// addUnits attributes scaled main-clock units to a shard (called once per
// join phase with the shard clock's accumulated total).
func (s *ShuffleStats) addUnits(shard int, scaled int64) {
	if s == nil || shard >= len(s.shardUnits) {
		return
	}
	atomic.AddInt64(&s.shardUnits[shard], scaled)
}

// SetTransport records which exchange transport ran this query's shuffles.
func (s *ShuffleStats) SetTransport(name string) {
	if s != nil {
		s.transport.Store(name)
	}
}

// AddNetFrame records one frame written to peer's socket: its on-the-wire
// size (header + payload) and the routed rows it carried. Called by
// transport sender goroutines.
func (s *ShuffleStats) AddNetFrame(peer, bytes, rows int) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.netFrames, 1)
	atomic.AddInt64(&s.netBytes, int64(bytes))
	atomic.AddInt64(&s.netRowsWire, int64(rows))
	if peer >= 0 && peer < len(s.peerFrames) {
		atomic.AddInt64(&s.peerFrames[peer], 1)
		atomic.AddInt64(&s.peerBytes[peer], int64(bytes))
	}
}

// AddNetRouted counts rows handed to a network exchange for shipping — the
// send-site half of the frames-vs-routing reconciliation.
func (s *ShuffleStats) AddNetRouted(n int64) {
	if s != nil {
		atomic.AddInt64(&s.netRowsRouted, n)
	}
}

// AddNetStall records a sender goroutine blocking on an exhausted credit
// window for peer — the backpressure signal that a slow shard is throttling
// producers instead of ballooning memory.
func (s *ShuffleStats) AddNetStall(peer int) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.netStalls, 1)
	if peer >= 0 && peer < len(s.peerStalls) {
		atomic.AddInt64(&s.peerStalls[peer], 1)
	}
}

// netFallback counts an exchange the transport refused (e.g. residual
// closure), run on the local exchange instead.
func (s *ShuffleStats) netFallback() {
	if s != nil {
		atomic.AddInt64(&s.netFallbacks, 1)
	}
}

// ShuffleSnapshot is a point-in-time copy of ShuffleStats for results,
// metrics and bench output. ShardUnits is the main-clock cost each shard
// performed (these sum into the query total); ShardExtra is the overhead
// cost of rows shipped to that shard, which lives outside the main-clock
// parity domain.
type ShuffleSnapshot struct {
	Shards           int       `json:"shards"`
	RowsMoved        int64     `json:"rows_moved"`
	RowsBroadcast    int64     `json:"rows_broadcast"`
	HotKeys          int64     `json:"hot_keys"`
	HotProbeDups     int64     `json:"hot_probe_dups"`
	Degrades         int64     `json:"degrades"`
	ColocatedJoins   int64     `json:"colocated_joins"`
	RepartitionJoins int64     `json:"repartition_joins"`
	BroadcastJoins   int64     `json:"broadcast_joins"`
	ShardUnits       []float64 `json:"shard_units"`
	ShardExtra       []float64 `json:"shard_extra"`

	// Wire-accounting domain (zero unless a network transport ran).
	Transport     string  `json:"transport,omitempty"`
	NetFrames     int64   `json:"net_frames,omitempty"`
	NetBytes      int64   `json:"net_bytes,omitempty"`
	NetRowsRouted int64   `json:"net_rows_routed,omitempty"`
	NetRowsWire   int64   `json:"net_rows_wire,omitempty"`
	NetStalls     int64   `json:"net_stalls,omitempty"`
	NetFallbacks  int64   `json:"net_fallbacks,omitempty"`
	PeerFrames    []int64 `json:"peer_frames,omitempty"`
	PeerBytes     []int64 `json:"peer_bytes,omitempty"`
	PeerStalls    []int64 `json:"peer_stalls,omitempty"`
}

// Reconciled reports whether the wire accounting balances: every row handed
// to the transport was carried by a frame that actually hit a socket. True
// (vacuously) for local-only execution.
func (sn ShuffleSnapshot) Reconciled() bool {
	return sn.NetRowsRouted == sn.NetRowsWire
}

// Snapshot copies the stats. Nil-safe: returns a zero snapshot.
func (s *ShuffleStats) Snapshot() ShuffleSnapshot {
	if s == nil {
		return ShuffleSnapshot{}
	}
	snap := ShuffleSnapshot{
		Shards:           s.shards,
		RowsMoved:        atomic.LoadInt64(&s.rowsMoved),
		RowsBroadcast:    atomic.LoadInt64(&s.rowsBroadcast),
		HotKeys:          atomic.LoadInt64(&s.hotKeys),
		HotProbeDups:     atomic.LoadInt64(&s.hotProbeDups),
		Degrades:         atomic.LoadInt64(&s.degrades),
		ColocatedJoins:   atomic.LoadInt64(&s.colocated),
		RepartitionJoins: atomic.LoadInt64(&s.repartition),
		BroadcastJoins:   atomic.LoadInt64(&s.broadcast),
		ShardUnits:       make([]float64, len(s.shardUnits)),
		ShardExtra:       make([]float64, len(s.shardExtra)),
	}
	for i := range s.shardUnits {
		snap.ShardUnits[i] = float64(atomic.LoadInt64(&s.shardUnits[i])) / storage.ClockScale
		snap.ShardExtra[i] = float64(atomic.LoadInt64(&s.shardExtra[i])) / storage.ClockScale
	}
	if name, ok := s.transport.Load().(string); ok {
		snap.Transport = name
	}
	snap.NetFrames = atomic.LoadInt64(&s.netFrames)
	snap.NetBytes = atomic.LoadInt64(&s.netBytes)
	snap.NetRowsRouted = atomic.LoadInt64(&s.netRowsRouted)
	snap.NetRowsWire = atomic.LoadInt64(&s.netRowsWire)
	snap.NetStalls = atomic.LoadInt64(&s.netStalls)
	snap.NetFallbacks = atomic.LoadInt64(&s.netFallbacks)
	if snap.NetFrames > 0 {
		snap.PeerFrames = make([]int64, len(s.peerFrames))
		snap.PeerBytes = make([]int64, len(s.peerBytes))
		snap.PeerStalls = make([]int64, len(s.peerStalls))
		for i := range s.peerFrames {
			snap.PeerFrames[i] = atomic.LoadInt64(&s.peerFrames[i])
			snap.PeerBytes[i] = atomic.LoadInt64(&s.peerBytes[i])
			snap.PeerStalls[i] = atomic.LoadInt64(&s.peerStalls[i])
		}
	}
	return snap
}
