// Package exec implements the Volcano-style iterator execution engine: one
// operator per physical plan node, with per-operator actual-cardinality
// accounting (the raw input of every robustness metric) and the adaptive
// operators (symmetric hash join, generalized join) the Dagstuhl report's
// query-execution sessions discuss.
//
// Three execution paths share one cost model and emit identical results:
//
//   - the row path: classic Open/Next/Close iterators (Operator);
//   - the vectorized path: 256-row batches with selection vectors and
//     compiled expressions (BatchOperator), chosen for plan nodes marked by
//     plan.MarkVectorized when Context.Vec is set;
//   - the morsel-driven parallel path: fixed page/row-range morsels over a
//     worker pool with exchange operators that gather in morsel order,
//     chosen for nodes marked by plan.MarkParallel when Context.DOP exceeds
//     one.
//
// Every charge goes to the deterministic cost Clock (internal/storage), so
// the three paths are property-tested to produce byte-identical rows and
// identical cost totals.
//
// Workspace memory is arbitrated by the MemBroker: stateful operators (hash
// join, hash aggregation, external sort) request grants counted in rows and
// degrade gracefully when a grant comes back short — they partition their
// build/state by key hash, keep a resident prefix of partitions, spill the
// rest to storage.TempRun pages, and recursively process the spilled
// partitions, falling back to external sort-merge when repartitioning stops
// helping (see spill.go). A broker budget may also shrink mid-query through
// SetSchedule (the memory-pressure fault injector) or an external caller
// such as the workload manager reclaiming memory; operators re-read their
// grants at phase boundaries, which is exactly the "grow & shrink memory"
// robustness technique from the report's resource-management sessions.
// SpillStats on the Context aggregates partitions spilled, temp-run
// rows/pages written, recursion depth and merge fallbacks; with a tracer
// attached, the same activity surfaces as spill.* events in EXPLAIN
// ANALYZE.
package exec
