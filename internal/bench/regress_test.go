package bench

import (
	"strings"
	"testing"
)

func testMeta() Meta { return NewMeta("mixed", 0.1, 0, false, false, 0, 0, 0) }

func baseResult() *Result {
	return &Result{
		Meta: testMeta(),
		MemSweep: []MemSweepPoint{
			{BudgetRows: 64, CostUnits: 1000, ResultExact: true},
			{BudgetRows: 256, CostUnits: 800, ResultExact: true},
		},
		FilterSweep: []FilterSweepPoint{
			{Selectivity: 0.1, UnfilteredUnits: 500, FilteredUnits: 200, ResultExact: true},
		},
		DopSweep: []DopSweepPoint{
			{DOP: 1, CostUnits: 400, ResultExact: true},
			{DOP: 8, CostUnits: 400, ResultExact: true},
		},
		VecSweep: []VecSweepPoint{
			{Query: "Q1", RowUnits: 300, VecUnits: 300, ResultExact: true, CostParity: true},
		},
		ColumnarSweep: []ColumnarSweepPoint{
			{Encoding: "rle", Selectivity: 0.01, HeapUnits: 500, ColUnits: 10, Ratio: 50, ResultExact: true},
		},
		ShardSweep: []ShardSweepPoint{
			{Section: "uniform", Shards: 4, Mode: "repartition", HotSplit: true,
				TotalUnits: 1000, MakespanUnits: 400, ResultExact: true, CostExact: true},
			{Section: "skew", Shards: 4, Skew: 1.3, Mode: "repartition", HotSplit: true,
				TotalUnits: 2000, MakespanUnits: 900, ResultExact: true, CostExact: true},
		},
		ServerSweep: []ServerSweepPoint{
			{Clients: 1, MPL: 4, Queries: 12, QPS: 500, P50MS: 0.7, P99MS: 1.0,
				CostUnits: 3000, ResultExact: true},
			{Clients: 16, MPL: 4, Queries: 192, QPS: 1600, P50MS: 7, P99MS: 14,
				QueuedNotices: 3, ResultExact: true},
		},
		NetShuffleSweep: []NetShuffleSweepPoint{
			{Section: "uniform", Shards: 4, Mode: "repartition", HotSplit: true, Transport: "tcp",
				TotalUnits: 1000, MakespanUnits: 400, NetFrames: 40, NetBytes: 90000,
				NetRowsWire: 4000, NetStalls: 7, Reconciled: true, ResultExact: true, CostExact: true},
			{Section: "colocated", Shards: 4, Mode: "colocated", HotSplit: true, Transport: "tcp",
				TotalUnits: 1000, MakespanUnits: 300,
				Reconciled: true, ResultExact: true, CostExact: true},
		},
		Queries: []Query{
			{ID: 0, Policy: "classic", Rows: 42, CostUnits: 100},
		},
	}
}

// clone deep-copies a result so tests can perturb one side.
func clone(r *Result) *Result {
	c := *r
	c.MemSweep = append([]MemSweepPoint(nil), r.MemSweep...)
	c.FilterSweep = append([]FilterSweepPoint(nil), r.FilterSweep...)
	c.DopSweep = append([]DopSweepPoint(nil), r.DopSweep...)
	c.VecSweep = append([]VecSweepPoint(nil), r.VecSweep...)
	c.ColumnarSweep = append([]ColumnarSweepPoint(nil), r.ColumnarSweep...)
	c.ShardSweep = append([]ShardSweepPoint(nil), r.ShardSweep...)
	c.ServerSweep = append([]ServerSweepPoint(nil), r.ServerSweep...)
	c.NetShuffleSweep = append([]NetShuffleSweepPoint(nil), r.NetShuffleSweep...)
	c.Queries = append([]Query(nil), r.Queries...)
	return &c
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := baseResult()
	if v := Compare(base, clone(base), 2.0); len(v) != 0 {
		t.Fatalf("identical results produced violations: %v", v)
	}
}

// TestCompareFailsOnInflatedCosts is the gate's acceptance check: a fresh
// run whose costs are 20% above baseline must fail a 2% tolerance band in
// every cost-gated section.
func TestCompareFailsOnInflatedCosts(t *testing.T) {
	base := baseResult()
	fresh := clone(base)
	for i := range fresh.MemSweep {
		fresh.MemSweep[i].CostUnits *= 1.20
	}
	for i := range fresh.FilterSweep {
		fresh.FilterSweep[i].FilteredUnits *= 1.20
	}
	for i := range fresh.DopSweep {
		fresh.DopSweep[i].CostUnits *= 1.20
	}
	for i := range fresh.VecSweep {
		fresh.VecSweep[i].RowUnits *= 1.20
		fresh.VecSweep[i].VecUnits *= 1.20
	}
	for i := range fresh.ColumnarSweep {
		fresh.ColumnarSweep[i].HeapUnits *= 1.20
		fresh.ColumnarSweep[i].ColUnits *= 1.20
	}
	for i := range fresh.ServerSweep {
		fresh.ServerSweep[i].CostUnits *= 1.20 // only the clients=1 point carries cost
	}
	for i := range fresh.Queries {
		fresh.Queries[i].CostUnits *= 1.20
	}
	violations := Compare(base, fresh, 2.0)
	// 2 mem + 1 filter + 2 dop + 2 vec + 2 columnar units + 1 server + 1 probe = 11 cost gates.
	if len(violations) != 11 {
		t.Fatalf("violations = %d, want 11:\n%v", len(violations), violations)
	}
	for _, v := range violations {
		if v.DeltaPct < 19.9 || v.DeltaPct > 20.1 {
			t.Fatalf("delta = %v%%, want ≈20%%: %s", v.DeltaPct, v)
		}
	}
	sum := Summary(base, fresh, 2.0, violations)
	if !strings.Contains(sum, "FAIL") {
		t.Fatalf("summary must say FAIL:\n%s", sum)
	}
	// The same inflation inside the band passes.
	if v := Compare(base, fresh, 25.0); len(v) != 0 {
		t.Fatalf("25%% band must absorb a 20%% inflation: %v", v)
	}
}

func TestCompareImprovementsPass(t *testing.T) {
	base := baseResult()
	fresh := clone(base)
	for i := range fresh.MemSweep {
		fresh.MemSweep[i].CostUnits *= 0.5
	}
	if v := Compare(base, fresh, 2.0); len(v) != 0 {
		t.Fatalf("cost improvements must not fail the gate: %v", v)
	}
}

func TestCompareExactnessDecayFails(t *testing.T) {
	base := baseResult()
	fresh := clone(base)
	fresh.MemSweep[0].ResultExact = false
	fresh.VecSweep[0].CostParity = false
	violations := Compare(base, fresh, 2.0)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want exactness + parity", violations)
	}
	for _, v := range violations {
		if !strings.Contains(v.Msg, "exactness lost") {
			t.Fatalf("unexpected violation: %s", v)
		}
	}
}

func TestCompareMissingCoverageFails(t *testing.T) {
	base := baseResult()
	fresh := clone(base)
	fresh.DopSweep = fresh.DopSweep[:1] // silently dropped DOP 8
	fresh.Queries = nil                 // probes vanished entirely
	violations := Compare(base, fresh, 2.0)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want 2 missing-coverage failures", violations)
	}
	for _, v := range violations {
		if !strings.Contains(v.Msg, "missing from fresh run") {
			t.Fatalf("unexpected violation: %s", v)
		}
	}
}

func TestCompareRowCountChangeFails(t *testing.T) {
	base := baseResult()
	fresh := clone(base)
	fresh.Queries[0].Rows = 41
	violations := Compare(base, fresh, 2.0)
	if len(violations) != 1 || !strings.Contains(violations[0].Msg, "cardinality changed") {
		t.Fatalf("violations = %v", violations)
	}
}

func TestCompareRefusesMismatchedMeta(t *testing.T) {
	base := baseResult()
	fresh := clone(base)
	fresh.Meta.Scale = 0.5
	violations := Compare(base, fresh, 2.0)
	if len(violations) != 1 || violations[0].Where != "meta" ||
		!strings.Contains(violations[0].Msg, "scale mismatch") {
		t.Fatalf("violations = %v, want a single meta refusal", violations)
	}

	fresh = clone(base)
	fresh.Meta.Seed = 7
	if v := Compare(base, fresh, 2.0); len(v) != 1 || !strings.Contains(v[0].Msg, "seed mismatch") {
		t.Fatalf("violations = %v, want seed refusal", v)
	}

	fresh = clone(base)
	fresh.Meta.Kind = "dop-sweep"
	if v := Compare(base, fresh, 2.0); len(v) != 1 || !strings.Contains(v[0].Msg, "kind mismatch") {
		t.Fatalf("violations = %v, want kind refusal", v)
	}
}

// TestCompareRefusesUnregisteredKind is the satellite fix's acceptance
// check: a baseline whose kind is not in KnownKinds must fail loudly
// instead of being accepted and silently diffing zero points — the failure
// mode that let a new bench kind bypass the gate.
func TestCompareRefusesUnregisteredKind(t *testing.T) {
	base := baseResult()
	base.Meta.Kind = "flux-sweep"
	fresh := clone(base)
	violations := Compare(base, fresh, 2.0)
	if len(violations) != 1 || violations[0].Where != "meta" ||
		!strings.Contains(violations[0].Msg, "unknown kind") {
		t.Fatalf("violations = %v, want a single unknown-kind refusal", violations)
	}
	// Every shipped baseline kind must be registered.
	for _, k := range []string{"probes", "mem-sweep", "filter-sweep", "dop-sweep", "vec-sweep", "columnar-sweep", "mixed"} {
		if !KnownKinds[k] {
			t.Fatalf("kind %q missing from registry", k)
		}
	}
}

// TestCompareColumnarSweepGates exercises the columnar section's own
// gates: exactness decay and missing coverage both fail.
func TestCompareColumnarSweepGates(t *testing.T) {
	base := baseResult()
	fresh := clone(base)
	fresh.ColumnarSweep[0].ResultExact = false
	if v := Compare(base, fresh, 2.0); len(v) != 1 || !strings.Contains(v[0].Msg, "exactness lost") {
		t.Fatalf("violations = %v, want columnar exactness failure", v)
	}
	fresh = clone(base)
	fresh.ColumnarSweep = nil
	if v := Compare(base, fresh, 2.0); len(v) != 1 || !strings.Contains(v[0].Msg, "missing from fresh run") {
		t.Fatalf("violations = %v, want columnar coverage failure", v)
	}
}

// TestSweepsAreDeterministic re-runs the DOP parity sweep twice at tiny
// scale and requires a clean gate: the simulated cost clock must make
// back-to-back runs bit-identical, or the whole regression gate is noise.
func TestSweepsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	run := func() *Result {
		points, _, err := RunDopSweep(0.05)
		if err != nil {
			t.Fatal(err)
		}
		return &Result{Meta: NewMeta("dop-sweep", 0.05, 0, false, false, 0, 0, 0), DopSweep: points}
	}
	a, b := run(), run()
	if len(a.DopSweep) == 0 {
		t.Fatal("empty sweep")
	}
	if v := Compare(a, b, 0); len(v) != 0 {
		t.Fatalf("back-to-back sweeps differ at zero tolerance: %v", v)
	}
	for _, p := range a.DopSweep {
		if !p.ResultExact {
			t.Fatalf("DOP %d runs are not reproducible", p.DOP)
		}
		if p.CostUnits != a.DopSweep[0].CostUnits {
			t.Fatalf("cost parity broken: DOP %d cost %v vs %v", p.DOP, p.CostUnits, a.DopSweep[0].CostUnits)
		}
	}
}

func TestCompareShardSweep(t *testing.T) {
	base := baseResult()

	// Makespan regression past tolerance fails.
	fresh := clone(base)
	fresh.ShardSweep[0].MakespanUnits *= 1.2
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("20% makespan regression passed a 2% gate")
	}

	// Exactness decay fails regardless of cost.
	fresh = clone(base)
	fresh.ShardSweep[1].CostExact = false
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("cost_exact=false slipped through the gate")
	}
	fresh = clone(base)
	fresh.ShardSweep[1].ResultExact = false
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("result_exact=false slipped through the gate")
	}

	// A vanished point is shrunken coverage.
	fresh = clone(base)
	fresh.ShardSweep = fresh.ShardSweep[:1]
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("missing shard_sweep point passed the gate")
	}
}

func TestCompareServerSweep(t *testing.T) {
	base := baseResult()

	// The deterministic clients=1 cost total is gated; a 20% regression
	// fails a 2% band.
	fresh := clone(base)
	fresh.ServerSweep[0].CostUnits *= 1.2
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("20% serial-cost regression passed a 2% gate")
	}

	// Concurrent points carry no deterministic cost (CostUnits == 0) and
	// must never be cost-gated, even if wall-clock metrics moved.
	fresh = clone(base)
	fresh.ServerSweep[1].QPS *= 0.5
	fresh.ServerSweep[1].P99MS *= 3
	if v := Compare(base, fresh, 2.0); len(v) != 0 {
		t.Fatalf("wall-clock latency/qps movement must not be gated: %v", v)
	}

	// Exactness decay fails at any concurrency.
	fresh = clone(base)
	fresh.ServerSweep[1].ResultExact = false
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("result_exact=false slipped through the gate")
	}

	// Admission timeouts appearing where the baseline had none fail.
	fresh = clone(base)
	fresh.ServerSweep[1].AdmitTimeouts = 2
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("appearing admit timeouts slipped through the gate")
	}

	// A vanished client-count point is shrunken coverage.
	fresh = clone(base)
	fresh.ServerSweep = fresh.ServerSweep[:1]
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("missing server_sweep point passed the gate")
	}
}

func TestCompareNetShuffleSweep(t *testing.T) {
	base := baseResult()

	// Identical wire totals pass; stalls are timing and never gated.
	fresh := clone(base)
	fresh.NetShuffleSweep[0].NetStalls = 900
	if v := Compare(base, fresh, 2.0); len(v) != 0 {
		t.Fatalf("credit-stall movement must not be gated: %v", v)
	}

	// Frame-count bloat past tolerance fails: the batching win is the
	// point of the transport.
	fresh = clone(base)
	fresh.NetShuffleSweep[0].NetFrames *= 2
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("2x frame bloat passed a 2% gate")
	}
	fresh = clone(base)
	fresh.NetShuffleSweep[0].NetBytes = int64(float64(base.NetShuffleSweep[0].NetBytes) * 1.2)
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("20% byte bloat passed a 2% gate")
	}

	// Reconciliation decay fails — routed rows must equal framed rows.
	fresh = clone(base)
	fresh.NetShuffleSweep[0].Reconciled = false
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("reconciled=false slipped through the gate")
	}

	// A co-located point that starts emitting bytes fails even though
	// gateCost skips zero baselines.
	fresh = clone(base)
	fresh.NetShuffleSweep[1].NetBytes = 4096
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("wire traffic on a zero-byte baseline passed the gate")
	}

	// A transport flip (tcp -> local fallback) is a behavior change.
	fresh = clone(base)
	fresh.NetShuffleSweep[0].Transport = "local"
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("transport change passed the gate")
	}

	// A vanished point is shrunken coverage.
	fresh = clone(base)
	fresh.NetShuffleSweep = fresh.NetShuffleSweep[:1]
	if v := Compare(base, fresh, 2.0); len(v) == 0 {
		t.Fatal("missing netshuffle_sweep point passed the gate")
	}
}

func TestComparableShardConfig(t *testing.T) {
	a := testMeta()

	b := testMeta()
	b.Shards = 4
	if err := a.Comparable(b); err == nil {
		t.Fatal("shard-count mismatch must not be comparable")
	}

	b = testMeta()
	b.Skew = 1.3
	if err := a.Comparable(b); err == nil {
		t.Fatal("skew mismatch must not be comparable")
	}
}

func TestSweepKindsRegistry(t *testing.T) {
	kinds := SweepKinds()
	want := map[string]bool{"mem-sweep": true, "filter-sweep": true, "dop-sweep": true,
		"vec-sweep": true, "columnar-sweep": true, "shard-sweep": true, "server-sweep": true,
		"netshuffle-sweep": true}
	if len(kinds) != len(want) {
		t.Fatalf("SweepKinds() = %v, want the %d sweep kinds", kinds, len(want))
	}
	for _, k := range kinds {
		if !want[k] {
			t.Errorf("unexpected sweep kind %q", k)
		}
		if !KnownKinds[k] {
			t.Errorf("sweep kind %q missing from KnownKinds", k)
		}
	}
	if _, err := RunSweep("no-such-sweep", 1, 0, &Result{}); err == nil {
		t.Error("unknown sweep kind must error")
	}
}

// TestValidateSweepKinds pins the fail-fast path rqpbench uses before any
// experiment runs: a misspelled kind is rejected up front and the error
// names every kind that would have worked.
func TestValidateSweepKinds(t *testing.T) {
	if err := ValidateSweepKinds(SweepKinds()); err != nil {
		t.Fatalf("all registered sweep kinds must validate: %v", err)
	}
	err := ValidateSweepKinds([]string{"mem-sweep", "shardsweep"})
	if err == nil {
		t.Fatal("misspelled kind must fail validation")
	}
	if !strings.Contains(err.Error(), `"shardsweep"`) {
		t.Errorf("error must name the bad kind: %v", err)
	}
	for _, k := range SweepKinds() {
		if !strings.Contains(err.Error(), k) {
			t.Errorf("error must list known kind %q: %v", k, err)
		}
	}
	// Kinds that exist in KnownKinds but are not sweeps are not valid
	// -sweep arguments either.
	for _, k := range []string{"probes", "mixed"} {
		if err := ValidateSweepKinds([]string{k}); err == nil {
			t.Errorf("%q is not a sweep and must be rejected", k)
		}
	}
	if err := ValidateSweepKinds(nil); err != nil {
		t.Errorf("empty kind list must validate: %v", err)
	}
}
