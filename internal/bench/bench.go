// Package bench defines the machine-readable benchmark format shared by
// cmd/rqpbench (which produces BENCH_*.json) and cmd/rqpregress (which
// gates fresh runs against the committed baselines). Every file is
// self-describing: a Meta header records when, with which toolchain and
// under which engine configuration the numbers were produced, so the
// regression gate can refuse apples-to-oranges comparisons instead of
// silently diffing incomparable runs — the benchmarking discipline OptMark
// (arXiv:1608.02611) argues robustness claims need.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"rqp/internal/core"
	"rqp/internal/experiments"
	"rqp/internal/obs"
	"rqp/internal/workload"
)

// probeObs holds one process-wide metrics registry and query-lifecycle
// registry shared by every probe engine, so a single -debug-addr server
// can watch the whole bench run's queries regardless of which policy
// engine is currently executing.
var probeObs struct {
	once    sync.Once
	metrics *obs.Registry
	queries *obs.QueryRegistry
}

func probeRegistries() (*obs.Registry, *obs.QueryRegistry) {
	probeObs.once.Do(func() {
		probeObs.metrics = obs.NewRegistry()
		probeObs.queries = obs.NewQueryRegistry(256, probeObs.metrics)
	})
	return probeObs.metrics, probeObs.queries
}

// StartProbeDebugServer serves /metrics, /queries, /trace/{id} and pprof
// for the probe workload on addr. Probe engines created afterwards report
// into the served registries.
func StartProbeDebugServer(addr string) (*obs.DebugServer, error) {
	m, q := probeRegistries()
	return obs.StartDebugServer(addr, m, q)
}

// ProbeSeed is the dataset seed for the traced probe workload; it is
// recorded in Meta so two files probe the same data or refuse to compare.
const ProbeSeed = 42

// Meta makes a benchmark file self-describing. Identity fields (Scale,
// DOP, Vec, RF, MemBudgetRows, Seed) must match for two files to be
// comparable; provenance fields (Timestamp, GoVersion, OS, Arch) are
// informational.
type Meta struct {
	Kind          string  `json:"kind"` // see KnownKinds for the registry of valid values
	Timestamp     string  `json:"timestamp"`
	GoVersion     string  `json:"go_version"`
	OS            string  `json:"os"`
	Arch          string  `json:"arch"`
	Scale         float64 `json:"scale"`
	DOP           int     `json:"dop"`
	Vec           bool    `json:"vec"`
	RF            bool    `json:"rf"`
	MemBudgetRows int     `json:"mem_budget_rows"`
	Seed          int64   `json:"seed"`
	// Shards and Skew pin the sharded-execution configuration: a baseline
	// produced at one shard count or key skew must not gate a run at
	// another (the shuffle overhead and makespan are not comparable).
	Shards int     `json:"shards,omitempty"`
	Skew   float64 `json:"skew,omitempty"`
}

// NewMeta stamps a meta header for a run produced right now by this
// binary.
func NewMeta(kind string, scale float64, dop int, vec, rf bool, memRows, shards int, skew float64) Meta {
	return Meta{
		Kind:          kind,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		OS:            runtime.GOOS,
		Arch:          runtime.GOARCH,
		Scale:         scale,
		DOP:           dop,
		Vec:           vec,
		RF:            rf,
		MemBudgetRows: memRows,
		Shards:        shards,
		Skew:          skew,
		Seed:          ProbeSeed,
	}
}

// KnownKinds is the registry of bench-file kinds the regression gate knows
// how to regenerate and diff. A kind must be registered here when its
// section lands, or rqpregress would accept the file and then silently
// compare none of its points — exactly the failure mode the gate exists to
// prevent. Compare refuses files whose kind is not registered.
var KnownKinds = map[string]bool{
	"probes":           true,
	"mem-sweep":        true,
	"filter-sweep":     true,
	"dop-sweep":        true,
	"vec-sweep":        true,
	"columnar-sweep":   true,
	"shard-sweep":      true,
	"server-sweep":     true,
	"netshuffle-sweep": true,
	"mixed":            true,
}

// Comparable reports whether two metas describe the same experiment
// configuration; the error names the first mismatched identity field.
func (m Meta) Comparable(other Meta) error {
	switch {
	case m.Kind != other.Kind:
		return fmt.Errorf("kind mismatch: %q vs %q", m.Kind, other.Kind)
	case m.Scale != other.Scale:
		return fmt.Errorf("scale mismatch: %v vs %v", m.Scale, other.Scale)
	case m.DOP != other.DOP:
		return fmt.Errorf("dop mismatch: %d vs %d", m.DOP, other.DOP)
	case m.Vec != other.Vec:
		return fmt.Errorf("vec mismatch: %v vs %v", m.Vec, other.Vec)
	case m.RF != other.RF:
		return fmt.Errorf("rf mismatch: %v vs %v", m.RF, other.RF)
	case m.MemBudgetRows != other.MemBudgetRows:
		return fmt.Errorf("mem_budget_rows mismatch: %d vs %d", m.MemBudgetRows, other.MemBudgetRows)
	case m.Seed != other.Seed:
		return fmt.Errorf("seed mismatch: %d vs %d", m.Seed, other.Seed)
	case m.Shards != other.Shards:
		return fmt.Errorf("shards mismatch: %d vs %d", m.Shards, other.Shards)
	case m.Skew != other.Skew:
		return fmt.Errorf("skew mismatch: %v vs %v", m.Skew, other.Skew)
	}
	return nil
}

// Experiment is one experiment's machine-readable result.
type Experiment struct {
	ID       string             `json:"id"`
	Title    string             `json:"title"`
	WallMS   float64            `json:"wall_ms"`
	Headline map[string]float64 `json:"headline"`
}

// Query is one traced probe query's result: the per-query numbers the text
// reports only aggregate.
type Query struct {
	ID            int     `json:"id"`
	Policy        string  `json:"policy"`
	Trapped       bool    `json:"trapped"`
	Rows          int     `json:"rows"`
	CostUnits     float64 `json:"cost_units"`
	Reopts        int     `json:"reopts"`
	QErrorGeomean float64 `json:"qerror_geomean"`
	Fingerprint   string  `json:"fingerprint,omitempty"`
}

// MemSweepPoint is one rung of the memory-degradation robustness map.
type MemSweepPoint struct {
	BudgetRows      int     `json:"budget_rows"`
	CostUnits       float64 `json:"cost_units"`
	SpillPartitions int     `json:"spill_partitions"`
	SpillRows       int     `json:"spill_rows"`
	SpillPages      int     `json:"spill_pages"`
	RecursionDepth  int     `json:"recursion_depth"`
	MergeFallbacks  int     `json:"merge_fallbacks"`
	ResultExact     bool    `json:"result_exact"`
}

// FilterSweepPoint is one rung of the runtime-filter robustness map.
type FilterSweepPoint struct {
	Selectivity     float64 `json:"selectivity"`
	UnfilteredUnits float64 `json:"unfiltered_units"`
	FilteredUnits   float64 `json:"filtered_units"`
	Ratio           float64 `json:"ratio"`
	FiltersBuilt    int     `json:"filters_built"`
	RowsTested      int     `json:"rows_tested"`
	RowsDropped     int     `json:"rows_dropped"`
	FiltersDisabled int     `json:"filters_disabled"`
	ResultExact     bool    `json:"result_exact"`
}

// DopSweepPoint is one rung of the parallel cost-parity map.
type DopSweepPoint struct {
	DOP         int     `json:"dop"`
	CostUnits   float64 `json:"cost_units"`
	WallMS      float64 `json:"wall_ms"`
	ResultExact bool    `json:"result_exact"`
}

// VecSweepPoint is one rung of the row-vs-vectorized parity map.
type VecSweepPoint struct {
	Query       string  `json:"query"`
	RowUnits    float64 `json:"row_units"`
	VecUnits    float64 `json:"vec_units"`
	ResultExact bool    `json:"result_exact"`
	CostParity  bool    `json:"cost_parity"`
}

// ColumnarSweepPoint is one rung of the columnar robustness map: the same
// scan+filter on heap and columnar paths at one encoding x selectivity.
type ColumnarSweepPoint struct {
	Encoding      string  `json:"encoding"`
	Selectivity   float64 `json:"selectivity"`
	HeapUnits     float64 `json:"heap_units"`
	ColUnits      float64 `json:"col_units"`
	Ratio         float64 `json:"ratio"`
	BlocksSkipped int     `json:"blocks_skipped"`
	BlocksScanned int     `json:"blocks_scanned"`
	ResultExact   bool    `json:"result_exact"`
}

// ShardSweepPoint is one rung of the sharded-execution robustness map: the
// shard-join workload at one (section, shards, skew, hot-split, workers)
// configuration. TotalUnits must match the serial cost exactly;
// MakespanUnits is the derived cluster response time the graceful-
// degradation curves are about.
type ShardSweepPoint struct {
	Section       string  `json:"section"`
	Shards        int     `json:"shards"`
	Skew          float64 `json:"skew"`
	HotSplit      bool    `json:"hot_split"`
	Mode          string  `json:"mode"`
	Workers       string  `json:"workers,omitempty"`
	TotalUnits    float64 `json:"total_units"`
	MakespanUnits float64 `json:"makespan_units"`
	WorstShard    float64 `json:"worst_shard_units"`
	MeanShard     float64 `json:"mean_shard_units"`
	RowsMoved     int64   `json:"rows_moved"`
	RowsBroadcast int64   `json:"rows_broadcast"`
	HotKeys       int64   `json:"hot_keys"`
	ResultExact   bool    `json:"result_exact"`
	CostExact     bool    `json:"cost_exact"`
}

// ServerSweepPoint is one rung of the service-layer concurrency map: N
// closed-loop wire-protocol clients against one engine behind an MPL
// admission gate. Latency quantiles and qps are wall-clock (never gated);
// CostUnits is the deterministic simulated total, recorded only at
// clients=1 where execution is sequential, so the gate diffs it exactly
// there and skips it at concurrent points.
type ServerSweepPoint struct {
	Clients       int     `json:"clients"`
	MPL           int     `json:"mpl"`
	Queries       int     `json:"queries"`
	QueuedWaits   int64   `json:"queued_waits"`
	QueuedNotices int     `json:"queued_notices"`
	AdmitTimeouts int     `json:"admit_timeouts"`
	QPS           float64 `json:"qps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	P999MS        float64 `json:"p999_ms"`
	MaxMS         float64 `json:"max_ms"`
	MeanCostUnits float64 `json:"mean_cost_units"`
	CostUnits     float64 `json:"cost_units,omitempty"`
	ResultExact   bool    `json:"result_exact"`
}

// NetShuffleSweepPoint is one rung of the network-shuffle robustness map:
// the E28 shard-join matrix re-run with every exchange carried over TCP to
// spawned worker processes. Main-clock fields and wire totals (frames,
// bytes, rows) are deterministic — fixed batch seal points and a canonical
// encoding — so the gate diffs them; NetStalls is timing-dependent
// (credit-window backpressure) and is recorded but never gated.
type NetShuffleSweepPoint struct {
	Section       string  `json:"section"`
	Shards        int     `json:"shards"`
	Skew          float64 `json:"skew"`
	HotSplit      bool    `json:"hot_split"`
	Mode          string  `json:"mode"`
	Workers       string  `json:"workers,omitempty"`
	Transport     string  `json:"transport,omitempty"`
	TotalUnits    float64 `json:"total_units"`
	MakespanUnits float64 `json:"makespan_units"`
	RowsMoved     int64   `json:"rows_moved"`
	RowsBroadcast int64   `json:"rows_broadcast"`
	HotKeys       int64   `json:"hot_keys"`
	NetFrames     int64   `json:"net_frames"`
	NetBytes      int64   `json:"net_bytes"`
	NetRowsWire   int64   `json:"net_rows_wire"`
	NetStalls     int64   `json:"net_stalls"`
	PeerFrames    []int64 `json:"peer_frames,omitempty"`
	PeerBytes     []int64 `json:"peer_bytes,omitempty"`
	Reconciled    bool    `json:"reconciled"`
	ResultExact   bool    `json:"result_exact"`
	CostExact     bool    `json:"cost_exact"`
}

// Result is one bench file: the meta header plus whichever sections the
// run produced.
type Result struct {
	Meta          Meta                 `json:"meta"`
	Experiments   []Experiment         `json:"experiments,omitempty"`
	Queries       []Query              `json:"queries,omitempty"`
	MemSweep      []MemSweepPoint      `json:"mem_sweep,omitempty"`
	FilterSweep   []FilterSweepPoint   `json:"filter_sweep,omitempty"`
	DopSweep      []DopSweepPoint      `json:"dop_sweep,omitempty"`
	VecSweep      []VecSweepPoint      `json:"vec_sweep,omitempty"`
	ColumnarSweep []ColumnarSweepPoint `json:"columnar_sweep,omitempty"`
	ShardSweep    []ShardSweepPoint    `json:"shard_sweep,omitempty"`
	ServerSweep   []ServerSweepPoint   `json:"server_sweep,omitempty"`

	NetShuffleSweep []NetShuffleSweepPoint `json:"netshuffle_sweep,omitempty"`
}

// Load reads and decodes a bench file.
func Load(path string) (*Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// ProbeQueries runs a small correlation-trap star workload under each
// execution policy with tracing enabled and reports per-query cost, reopt
// count, q-error geomean and plan fingerprint.
func ProbeQueries(scale float64, dop int, vec bool, shards int) ([]Query, error) {
	sc := workload.DefaultStar()
	sc.FactRows = max(500, int(float64(sc.FactRows)*scale*0.2))
	sc.DimRows = max(200, int(float64(sc.DimRows)*scale*0.2))
	sc.Dim2Rows = max(100, int(float64(sc.Dim2Rows)*scale*0.2))
	queries := workload.StarWorkload(sc, 8, 0.5, ProbeSeed)
	var out []Query
	for _, pol := range []core.ExecPolicy{core.PolicyClassic, core.PolicyPOP, core.PolicyRio} {
		cat, err := workload.BuildStar(sc)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Policy = pol
		cfg.TraceAll = true
		cfg.DOP = dop
		cfg.Vec = vec
		cfg.Shards = shards
		eng := core.Attach(cat, cfg)
		// Report into the shared probe registries so a -debug-addr server
		// sees every policy engine's queries under one roof.
		eng.Metrics, eng.Lifecycle = probeRegistries()
		for i, q := range queries {
			res, err := eng.Exec(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("probe %s q%d: %w", pol, i, err)
			}
			qj := Query{
				ID: i, Policy: pol.String(), Trapped: q.Trapped,
				Rows: len(res.Rows), CostUnits: res.Cost, Reopts: res.Reopts,
			}
			if res.Trace != nil {
				qj.QErrorGeomean = res.Trace.QErrorGeomean()
				qj.Fingerprint = res.Trace.Fingerprint()
			}
			out = append(out, qj)
		}
	}
	return out, nil
}

// RunMemSweep produces the mem_sweep section.
func RunMemSweep(scale float64) ([]MemSweepPoint, *experiments.Report, error) {
	rep, points, err := experiments.MemSweep(scale)
	if err != nil {
		return nil, nil, err
	}
	out := make([]MemSweepPoint, 0, len(points))
	for _, p := range points {
		out = append(out, MemSweepPoint{
			BudgetRows: p.Budget, CostUnits: p.Units,
			SpillPartitions: p.Partitions, SpillRows: p.SpillRows,
			SpillPages: p.SpillPages, RecursionDepth: p.MaxDepth,
			MergeFallbacks: p.Fallbacks, ResultExact: p.Match,
		})
	}
	return out, rep, nil
}

// RunFilterSweep produces the filter_sweep section.
func RunFilterSweep(scale float64) ([]FilterSweepPoint, *experiments.Report, error) {
	rep, points, err := experiments.FilterSweep(scale)
	if err != nil {
		return nil, nil, err
	}
	out := make([]FilterSweepPoint, 0, len(points))
	for _, p := range points {
		out = append(out, FilterSweepPoint{
			Selectivity: p.Sel, UnfilteredUnits: p.Unfiltered,
			FilteredUnits: p.Filtered, Ratio: p.Ratio,
			FiltersBuilt: p.Built, RowsTested: p.Tested,
			RowsDropped: p.Dropped, FiltersDisabled: p.Disabled,
			ResultExact: p.Match,
		})
	}
	return out, rep, nil
}

// RunDopSweep produces the dop_sweep section.
func RunDopSweep(scale float64) ([]DopSweepPoint, *experiments.Report, error) {
	rep, points, err := experiments.DopSweep(scale)
	if err != nil {
		return nil, nil, err
	}
	out := make([]DopSweepPoint, 0, len(points))
	for _, p := range points {
		out = append(out, DopSweepPoint{
			DOP: p.DOP, CostUnits: p.Units, WallMS: p.WallMS, ResultExact: p.Match,
		})
	}
	return out, rep, nil
}

// RunColumnarSweep produces the columnar_sweep section.
func RunColumnarSweep(scale float64) ([]ColumnarSweepPoint, *experiments.Report, error) {
	rep, points, err := experiments.ColumnarSweep(scale)
	if err != nil {
		return nil, nil, err
	}
	out := make([]ColumnarSweepPoint, 0, len(points))
	for _, p := range points {
		out = append(out, ColumnarSweepPoint{
			Encoding: p.Encoding, Selectivity: p.Sel,
			HeapUnits: p.HeapUnits, ColUnits: p.ColUnits, Ratio: p.Ratio,
			BlocksSkipped: p.BlocksSkipped, BlocksScanned: p.BlocksScanned,
			ResultExact: p.Match,
		})
	}
	return out, rep, nil
}

// RunVecSweep produces the vec_sweep section.
func RunVecSweep(scale float64) ([]VecSweepPoint, *experiments.Report, error) {
	rep, points, err := experiments.VecSweep(scale)
	if err != nil {
		return nil, nil, err
	}
	out := make([]VecSweepPoint, 0, len(points))
	for _, p := range points {
		out = append(out, VecSweepPoint{
			Query: p.Query, RowUnits: p.RowUnits, VecUnits: p.VecUnits,
			ResultExact: p.Match, CostParity: p.Parity,
		})
	}
	return out, rep, nil
}

// RunShardSweep produces the shard_sweep section. skew > 0 narrows the
// skew ladder to that single Zipf parameter (and is recorded in Meta so
// the gate refuses cross-skew comparisons).
func RunShardSweep(scale, skew float64) ([]ShardSweepPoint, *experiments.Report, error) {
	rep, points, err := experiments.ShardSweep(scale, skew)
	if err != nil {
		return nil, nil, err
	}
	out := make([]ShardSweepPoint, 0, len(points))
	for _, p := range points {
		out = append(out, ShardSweepPoint{
			Section: p.Section, Shards: p.Shards, Skew: p.Skew,
			HotSplit: p.HotSplit, Mode: p.Mode, Workers: p.Workers,
			TotalUnits: p.TotalUnits, MakespanUnits: p.MakespanUnits,
			WorstShard: p.WorstShard, MeanShard: p.MeanShard,
			RowsMoved: p.RowsMoved, RowsBroadcast: p.RowsBroadcast,
			HotKeys: p.HotKeys, ResultExact: p.ResultExact, CostExact: p.CostExact,
		})
	}
	return out, rep, nil
}

// RunServerSweep produces the server_sweep section: the E29 closed-loop
// concurrency sweep through the wire protocol.
func RunServerSweep(scale float64) ([]ServerSweepPoint, *experiments.Report, error) {
	rep, points, err := experiments.ServerSweep(scale)
	if err != nil {
		return nil, nil, err
	}
	out := make([]ServerSweepPoint, 0, len(points))
	for _, p := range points {
		out = append(out, ServerSweepPoint{
			Clients: p.Clients, MPL: p.MPL, Queries: p.Queries,
			QueuedWaits: p.QueuedWaits, QueuedNotices: p.QueuedNotices,
			AdmitTimeouts: p.AdmitTimeouts, QPS: p.QPS,
			P50MS: p.P50MS, P99MS: p.P99MS, P999MS: p.P999MS, MaxMS: p.MaxMS,
			MeanCostUnits: p.MeanCostUnits, CostUnits: p.CostUnits,
			ResultExact: p.ResultExact,
		})
	}
	return out, rep, nil
}

// RunNetShuffleSweep produces the netshuffle_sweep section: the E30 sweep
// over spawned worker processes. The caller's binary must run
// server.MaybeRunShardWorker() at startup so the re-exec'd copies become
// workers. skew > 0 narrows the skew ladder to that single Zipf parameter.
func RunNetShuffleSweep(scale, skew float64) ([]NetShuffleSweepPoint, *experiments.Report, error) {
	rep, points, err := experiments.NetShuffleSweep(scale, skew)
	if err != nil {
		return nil, nil, err
	}
	out := make([]NetShuffleSweepPoint, 0, len(points))
	for _, p := range points {
		out = append(out, NetShuffleSweepPoint{
			Section: p.Section, Shards: p.Shards, Skew: p.Skew,
			HotSplit: p.HotSplit, Mode: p.Mode, Workers: p.Workers,
			Transport:  p.Transport,
			TotalUnits: p.TotalUnits, MakespanUnits: p.MakespanUnits,
			RowsMoved: p.RowsMoved, RowsBroadcast: p.RowsBroadcast, HotKeys: p.HotKeys,
			NetFrames: p.NetFrames, NetBytes: p.NetBytes, NetRowsWire: p.NetRowsWire,
			NetStalls: p.NetStalls, PeerFrames: p.PeerFrames, PeerBytes: p.PeerBytes,
			Reconciled: p.Reconciled, ResultExact: p.ResultExact, CostExact: p.CostExact,
		})
	}
	return out, rep, nil
}

// SweepKinds lists the sweep kinds RunSweep dispatches, sorted — the
// -sweep flag's registry, derived from KnownKinds so a new section cannot
// land without the dispatcher (and the gate) knowing it.
func SweepKinds() []string {
	var kinds []string
	for k := range KnownKinds {
		if k == "probes" || k == "mixed" {
			continue // not sweeps: produced directly by rqpbench
		}
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// ValidateSweepKinds rejects the first kind RunSweep would not dispatch,
// naming the registry — so callers can fail fast before running anything.
func ValidateSweepKinds(kinds []string) error {
	for _, k := range kinds {
		if !KnownKinds[k] || k == "probes" || k == "mixed" {
			return fmt.Errorf("unknown sweep kind %q (known: %v)", k, SweepKinds())
		}
	}
	return nil
}

// RunSweep runs one sweep kind by name and stores its section into res.
// skew only affects the shard and netshuffle sweeps. Unknown kinds list the registry in
// the error.
func RunSweep(kind string, scale, skew float64, res *Result) (*experiments.Report, error) {
	var rep *experiments.Report
	var err error
	switch kind {
	case "mem-sweep":
		res.MemSweep, rep, err = RunMemSweep(scale)
	case "filter-sweep":
		res.FilterSweep, rep, err = RunFilterSweep(scale)
	case "dop-sweep":
		res.DopSweep, rep, err = RunDopSweep(scale)
	case "vec-sweep":
		res.VecSweep, rep, err = RunVecSweep(scale)
	case "columnar-sweep":
		res.ColumnarSweep, rep, err = RunColumnarSweep(scale)
	case "shard-sweep":
		res.ShardSweep, rep, err = RunShardSweep(scale, skew)
	case "server-sweep":
		res.ServerSweep, rep, err = RunServerSweep(scale)
	case "netshuffle-sweep":
		res.NetShuffleSweep, rep, err = RunNetShuffleSweep(scale, skew)
	default:
		return nil, fmt.Errorf("unknown sweep kind %q (known: %v)", kind, SweepKinds())
	}
	return rep, err
}
