package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Violation is one regression-gate failure: a metric that moved past the
// tolerance band, lost exactness, or disappeared.
type Violation struct {
	Where    string  // e.g. "mem_sweep[budget_rows=64].cost_units"
	Baseline float64 `json:",omitempty"`
	Fresh    float64 `json:",omitempty"`
	DeltaPct float64 `json:",omitempty"`
	Msg      string
}

// String renders the violation for the gate's report.
func (v Violation) String() string {
	if v.Msg != "" {
		return fmt.Sprintf("%s: %s", v.Where, v.Msg)
	}
	return fmt.Sprintf("%s: %.3f -> %.3f (%+.1f%% > tol)", v.Where, v.Baseline, v.Fresh, v.DeltaPct)
}

// Compare diffs a fresh bench result against a committed baseline and
// returns the violations. tolPct is the allowed cost/latency increase in
// percent (improvements never fail the gate; they are the caller's to
// celebrate). Only deterministic simulated-cost metrics are gated —
// wall-clock fields are machine-dependent and ignored. Sections present in
// the baseline but absent from the fresh run are violations (silent loss
// of coverage); sections only in the fresh run are ignored (new coverage
// is not a regression). Exactness flags (result_exact, cost_parity) must
// never decay from true to false.
//
// Comparability of the two metas is a precondition: call
// base.Meta.Comparable(fresh.Meta) first; Compare itself returns a single
// meta violation instead of a misleading metric diff when they differ.
func Compare(base, fresh *Result, tolPct float64) []Violation {
	if !KnownKinds[base.Meta.Kind] {
		return []Violation{{Where: "meta", Msg: fmt.Sprintf(
			"unknown kind %q: not in the gate's kind registry, its sections would be silently skipped", base.Meta.Kind)}}
	}
	if err := base.Meta.Comparable(fresh.Meta); err != nil {
		return []Violation{{Where: "meta", Msg: "not comparable: " + err.Error()}}
	}
	var out []Violation
	out = append(out, compareMemSweep(base.MemSweep, fresh.MemSweep, tolPct)...)
	out = append(out, compareFilterSweep(base.FilterSweep, fresh.FilterSweep, tolPct)...)
	out = append(out, compareDopSweep(base.DopSweep, fresh.DopSweep, tolPct)...)
	out = append(out, compareVecSweep(base.VecSweep, fresh.VecSweep, tolPct)...)
	out = append(out, compareColumnarSweep(base.ColumnarSweep, fresh.ColumnarSweep, tolPct)...)
	out = append(out, compareShardSweep(base.ShardSweep, fresh.ShardSweep, tolPct)...)
	out = append(out, compareServerSweep(base.ServerSweep, fresh.ServerSweep, tolPct)...)
	out = append(out, compareNetShuffleSweep(base.NetShuffleSweep, fresh.NetShuffleSweep, tolPct)...)
	out = append(out, compareQueries(base.Queries, fresh.Queries, tolPct)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Where < out[j].Where })
	return out
}

// gateCost appends a violation when fresh cost exceeds baseline by more
// than tolPct percent.
func gateCost(out []Violation, where string, baseV, freshV, tolPct float64) []Violation {
	if baseV <= 0 {
		return out
	}
	deltaPct := (freshV - baseV) / baseV * 100
	if deltaPct > tolPct+1e-12 {
		out = append(out, Violation{Where: where, Baseline: baseV, Fresh: freshV, DeltaPct: deltaPct})
	}
	return out
}

func gateExact(out []Violation, where string, baseOK, freshOK bool) []Violation {
	if baseOK && !freshOK {
		out = append(out, Violation{Where: where, Msg: "exactness lost: baseline true, fresh false"})
	}
	return out
}

func missing(where string) Violation {
	return Violation{Where: where, Msg: "present in baseline, missing from fresh run"}
}

func compareMemSweep(base, fresh []MemSweepPoint, tol float64) []Violation {
	var out []Violation
	byBudget := map[int]MemSweepPoint{}
	for _, p := range fresh {
		byBudget[p.BudgetRows] = p
	}
	for _, b := range base {
		where := fmt.Sprintf("mem_sweep[budget_rows=%d]", b.BudgetRows)
		f, ok := byBudget[b.BudgetRows]
		if !ok {
			out = append(out, missing(where))
			continue
		}
		out = gateCost(out, where+".cost_units", b.CostUnits, f.CostUnits, tol)
		out = gateExact(out, where+".result_exact", b.ResultExact, f.ResultExact)
	}
	return out
}

func compareFilterSweep(base, fresh []FilterSweepPoint, tol float64) []Violation {
	var out []Violation
	bySel := map[string]FilterSweepPoint{}
	selKey := func(s float64) string { return fmt.Sprintf("%g", s) }
	for _, p := range fresh {
		bySel[selKey(p.Selectivity)] = p
	}
	for _, b := range base {
		where := fmt.Sprintf("filter_sweep[selectivity=%g]", b.Selectivity)
		f, ok := bySel[selKey(b.Selectivity)]
		if !ok {
			out = append(out, missing(where))
			continue
		}
		out = gateCost(out, where+".filtered_units", b.FilteredUnits, f.FilteredUnits, tol)
		out = gateCost(out, where+".unfiltered_units", b.UnfilteredUnits, f.UnfilteredUnits, tol)
		out = gateExact(out, where+".result_exact", b.ResultExact, f.ResultExact)
	}
	return out
}

func compareDopSweep(base, fresh []DopSweepPoint, tol float64) []Violation {
	var out []Violation
	byDOP := map[int]DopSweepPoint{}
	for _, p := range fresh {
		byDOP[p.DOP] = p
	}
	for _, b := range base {
		where := fmt.Sprintf("dop_sweep[dop=%d]", b.DOP)
		f, ok := byDOP[b.DOP]
		if !ok {
			out = append(out, missing(where))
			continue
		}
		out = gateCost(out, where+".cost_units", b.CostUnits, f.CostUnits, tol)
		out = gateExact(out, where+".result_exact", b.ResultExact, f.ResultExact)
	}
	return out
}

func compareVecSweep(base, fresh []VecSweepPoint, tol float64) []Violation {
	var out []Violation
	byQuery := map[string]VecSweepPoint{}
	for _, p := range fresh {
		byQuery[p.Query] = p
	}
	for _, b := range base {
		where := fmt.Sprintf("vec_sweep[query=%s]", b.Query)
		f, ok := byQuery[b.Query]
		if !ok {
			out = append(out, missing(where))
			continue
		}
		out = gateCost(out, where+".row_units", b.RowUnits, f.RowUnits, tol)
		out = gateCost(out, where+".vec_units", b.VecUnits, f.VecUnits, tol)
		out = gateExact(out, where+".result_exact", b.ResultExact, f.ResultExact)
		out = gateExact(out, where+".cost_parity", b.CostParity, f.CostParity)
	}
	return out
}

func compareColumnarSweep(base, fresh []ColumnarSweepPoint, tol float64) []Violation {
	var out []Violation
	type key struct {
		enc string
		sel string
	}
	byKey := map[key]ColumnarSweepPoint{}
	for _, p := range fresh {
		byKey[key{p.Encoding, fmt.Sprintf("%g", p.Selectivity)}] = p
	}
	for _, b := range base {
		where := fmt.Sprintf("columnar_sweep[encoding=%s,selectivity=%g]", b.Encoding, b.Selectivity)
		f, ok := byKey[key{b.Encoding, fmt.Sprintf("%g", b.Selectivity)}]
		if !ok {
			out = append(out, missing(where))
			continue
		}
		out = gateCost(out, where+".col_units", b.ColUnits, f.ColUnits, tol)
		out = gateCost(out, where+".heap_units", b.HeapUnits, f.HeapUnits, tol)
		out = gateExact(out, where+".result_exact", b.ResultExact, f.ResultExact)
	}
	return out
}

// compareShardSweep gates the sharded-execution map point by point: the
// derived makespan and the main-clock total may not regress past
// tolerance, and the exactness bits (byte-identical rows, integer-exact
// cost vs serial) may never flip off — they are the signature invariant.
func compareShardSweep(base, fresh []ShardSweepPoint, tol float64) []Violation {
	var out []Violation
	type key struct {
		section  string
		shards   int
		skew     string
		hotSplit bool
		mode     string
		workers  string
	}
	mk := func(p ShardSweepPoint) key {
		return key{p.Section, p.Shards, fmt.Sprintf("%g", p.Skew), p.HotSplit, p.Mode, p.Workers}
	}
	byKey := map[key]ShardSweepPoint{}
	for _, p := range fresh {
		byKey[mk(p)] = p
	}
	for _, b := range base {
		where := fmt.Sprintf("shard_sweep[section=%s,shards=%d,skew=%g,split=%v,mode=%s]",
			b.Section, b.Shards, b.Skew, b.HotSplit, b.Mode)
		f, ok := byKey[mk(b)]
		if !ok {
			out = append(out, missing(where))
			continue
		}
		out = gateCost(out, where+".makespan_units", b.MakespanUnits, f.MakespanUnits, tol)
		out = gateCost(out, where+".total_units", b.TotalUnits, f.TotalUnits, tol)
		out = gateExact(out, where+".result_exact", b.ResultExact, f.ResultExact)
		out = gateExact(out, where+".cost_exact", b.CostExact, f.CostExact)
	}
	return out
}

// compareNetShuffleSweep gates the network-shuffle map point by point.
// Deterministic fields only: the main clock (makespan, total), the wire
// totals (frames, bytes, rows — fixed batch seal points and a canonical
// encoding make these reproducible across machines), exactness and
// reconciliation flags, and the zero-bytes guarantee for co-located joins.
// NetStalls is credit-window timing and is never gated.
func compareNetShuffleSweep(base, fresh []NetShuffleSweepPoint, tol float64) []Violation {
	var out []Violation
	type key struct {
		section  string
		shards   int
		skew     string
		hotSplit bool
		mode     string
		workers  string
	}
	mk := func(p NetShuffleSweepPoint) key {
		return key{p.Section, p.Shards, fmt.Sprintf("%g", p.Skew), p.HotSplit, p.Mode, p.Workers}
	}
	byKey := map[key]NetShuffleSweepPoint{}
	for _, p := range fresh {
		byKey[mk(p)] = p
	}
	for _, b := range base {
		where := fmt.Sprintf("netshuffle_sweep[section=%s,shards=%d,skew=%g,split=%v,mode=%s]",
			b.Section, b.Shards, b.Skew, b.HotSplit, b.Mode)
		f, ok := byKey[mk(b)]
		if !ok {
			out = append(out, missing(where))
			continue
		}
		out = gateCost(out, where+".makespan_units", b.MakespanUnits, f.MakespanUnits, tol)
		out = gateCost(out, where+".total_units", b.TotalUnits, f.TotalUnits, tol)
		out = gateCost(out, where+".net_frames", float64(b.NetFrames), float64(f.NetFrames), tol)
		out = gateCost(out, where+".net_bytes", float64(b.NetBytes), float64(f.NetBytes), tol)
		out = gateCost(out, where+".net_rows_wire", float64(b.NetRowsWire), float64(f.NetRowsWire), tol)
		out = gateExact(out, where+".result_exact", b.ResultExact, f.ResultExact)
		out = gateExact(out, where+".cost_exact", b.CostExact, f.CostExact)
		out = gateExact(out, where+".reconciled", b.Reconciled, f.Reconciled)
		// A point that put nothing on the wire (co-located, serial, local
		// fallback) must stay off the wire: gateCost skips zero baselines,
		// so pin zero-stays-zero explicitly.
		if b.NetBytes == 0 && f.NetBytes > 0 {
			out = append(out, Violation{Where: where + ".net_bytes",
				Msg: fmt.Sprintf("wire traffic appeared: 0 -> %d bytes", f.NetBytes)})
		}
		if b.Transport != f.Transport {
			out = append(out, Violation{Where: where + ".transport",
				Msg: fmt.Sprintf("transport changed: %q -> %q", b.Transport, f.Transport)})
		}
	}
	return out
}

// compareServerSweep gates the service-layer concurrency map. Latency and
// qps are wall-clock and never gated; what is gated per client count: the
// deterministic simulated total (only the clients=1 point records one —
// gateCost skips the concurrent points' zero baselines), exactness (a
// wrong result under concurrency must fail the gate even when it is
// timing-dependent and this run merely got unlucky enough to catch it),
// admission-timeout count staying zero, and point coverage.
func compareServerSweep(base, fresh []ServerSweepPoint, tol float64) []Violation {
	var out []Violation
	byClients := map[int]ServerSweepPoint{}
	for _, p := range fresh {
		byClients[p.Clients] = p
	}
	for _, b := range base {
		where := fmt.Sprintf("server_sweep[clients=%d]", b.Clients)
		f, ok := byClients[b.Clients]
		if !ok {
			out = append(out, missing(where))
			continue
		}
		out = gateCost(out, where+".cost_units", b.CostUnits, f.CostUnits, tol)
		out = gateExact(out, where+".result_exact", b.ResultExact, f.ResultExact)
		if b.AdmitTimeouts == 0 && f.AdmitTimeouts > 0 {
			out = append(out, Violation{Where: where + ".admit_timeouts",
				Msg: fmt.Sprintf("admission timeouts appeared: 0 -> %d", f.AdmitTimeouts)})
		}
	}
	return out
}

func compareQueries(base, fresh []Query, tol float64) []Violation {
	var out []Violation
	type key struct {
		policy string
		id     int
	}
	byKey := map[key]Query{}
	for _, q := range fresh {
		byKey[key{q.Policy, q.ID}] = q
	}
	for _, b := range base {
		where := fmt.Sprintf("queries[policy=%s,id=%d]", b.Policy, b.ID)
		f, ok := byKey[key{b.Policy, b.ID}]
		if !ok {
			out = append(out, missing(where))
			continue
		}
		out = gateCost(out, where+".cost_units", b.CostUnits, f.CostUnits, tol)
		if b.Rows != f.Rows {
			out = append(out, Violation{Where: where + ".rows",
				Msg: fmt.Sprintf("result cardinality changed: %d -> %d", b.Rows, f.Rows)})
		}
	}
	return out
}

// Summary renders a human-readable gate report: per-section best/worst
// deltas plus every violation.
func Summary(base, fresh *Result, tolPct float64, violations []Violation) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "regression gate: tolerance +%.1f%% on simulated cost\n", tolPct)
	fmt.Fprintf(&sb, "baseline: kind=%s %s go=%s scale=%g seed=%d\n",
		base.Meta.Kind, base.Meta.Timestamp, base.Meta.GoVersion, base.Meta.Scale, base.Meta.Seed)
	fmt.Fprintf(&sb, "fresh:    kind=%s %s go=%s scale=%g seed=%d\n",
		fresh.Meta.Kind, fresh.Meta.Timestamp, fresh.Meta.GoVersion, fresh.Meta.Scale, fresh.Meta.Seed)
	worst := math.Inf(-1)
	worstWhere := ""
	count := 0
	for _, b := range base.MemSweep {
		for _, f := range fresh.MemSweep {
			if f.BudgetRows == b.BudgetRows && b.CostUnits > 0 {
				d := (f.CostUnits - b.CostUnits) / b.CostUnits * 100
				count++
				if d > worst {
					worst, worstWhere = d, fmt.Sprintf("mem_sweep[%d]", b.BudgetRows)
				}
			}
		}
	}
	for _, b := range base.FilterSweep {
		for _, f := range fresh.FilterSweep {
			if f.Selectivity == b.Selectivity && b.FilteredUnits > 0 {
				d := (f.FilteredUnits - b.FilteredUnits) / b.FilteredUnits * 100
				count++
				if d > worst {
					worst, worstWhere = d, fmt.Sprintf("filter_sweep[%g]", b.Selectivity)
				}
			}
		}
	}
	for _, b := range base.ColumnarSweep {
		for _, f := range fresh.ColumnarSweep {
			if f.Encoding == b.Encoding && f.Selectivity == b.Selectivity && b.ColUnits > 0 {
				d := (f.ColUnits - b.ColUnits) / b.ColUnits * 100
				count++
				if d > worst {
					worst, worstWhere = d, fmt.Sprintf("columnar_sweep[%s,%g]", b.Encoding, b.Selectivity)
				}
			}
		}
	}
	for _, b := range base.ShardSweep {
		for _, f := range fresh.ShardSweep {
			if f.Section == b.Section && f.Shards == b.Shards && f.Skew == b.Skew &&
				f.HotSplit == b.HotSplit && f.Mode == b.Mode && f.Workers == b.Workers &&
				b.MakespanUnits > 0 {
				d := (f.MakespanUnits - b.MakespanUnits) / b.MakespanUnits * 100
				count++
				if d > worst {
					worst, worstWhere = d, fmt.Sprintf("shard_sweep[%s,%d,%g]", b.Section, b.Shards, b.Skew)
				}
			}
		}
	}
	for _, b := range base.NetShuffleSweep {
		for _, f := range fresh.NetShuffleSweep {
			if f.Section == b.Section && f.Shards == b.Shards && f.Skew == b.Skew &&
				f.HotSplit == b.HotSplit && f.Mode == b.Mode && f.Workers == b.Workers &&
				b.NetBytes > 0 {
				d := float64(f.NetBytes-b.NetBytes) / float64(b.NetBytes) * 100
				count++
				if d > worst {
					worst, worstWhere = d, fmt.Sprintf("netshuffle_sweep[%s,%d,%g]", b.Section, b.Shards, b.Skew)
				}
			}
		}
	}
	for _, b := range base.ServerSweep {
		for _, f := range fresh.ServerSweep {
			if f.Clients == b.Clients && b.CostUnits > 0 {
				d := (f.CostUnits - b.CostUnits) / b.CostUnits * 100
				count++
				if d > worst {
					worst, worstWhere = d, fmt.Sprintf("server_sweep[%d]", b.Clients)
				}
			}
		}
	}
	if count > 0 {
		fmt.Fprintf(&sb, "worst cost delta: %+.2f%% (%s) over %d compared points\n", worst, worstWhere, count)
	}
	if len(violations) == 0 {
		sb.WriteString("PASS: no regressions beyond tolerance\n")
	} else {
		fmt.Fprintf(&sb, "FAIL: %d violation(s)\n", len(violations))
		for _, v := range violations {
			fmt.Fprintf(&sb, "  - %s\n", v.String())
		}
	}
	return sb.String()
}
