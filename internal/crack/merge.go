package crack

import (
	"sort"

	"rqp/internal/storage"
)

// AdaptiveMerged implements adaptive merging: the column starts as sorted
// runs (cheap to build — one partitioning pass plus per-run sorts); each
// query extracts its key range from every run that still holds qualifying
// values and merges those values into a consolidated sorted area. Ranges
// queried once never need run access again, so hot ranges converge to a
// full index much faster than cracking while cold ranges stay cheap.
type AdaptiveMerged struct {
	runs   [][]int64 // sorted runs, shrinking as ranges migrate
	merged []int64   // consolidated sorted values
}

// NewAdaptiveMerged partitions the input into sorted runs of runSize.
func NewAdaptiveMerged(clk *storage.Clock, vals []int64, runSize int) *AdaptiveMerged {
	if runSize < 1 {
		runSize = 1024
	}
	a := &AdaptiveMerged{}
	for start := 0; start < len(vals); start += runSize {
		end := start + runSize
		if end > len(vals) {
			end = len(vals)
		}
		run := append([]int64(nil), vals[start:end]...)
		if clk != nil && len(run) > 1 {
			clk.Compares(len(run) * intLog2(len(run)))
			clk.RowWork(len(run))
		}
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
		a.runs = append(a.runs, run)
	}
	return a
}

// RangeCount answers lo <= v < hi, merging the qualifying range out of the
// runs into the consolidated area as a side effect.
func (a *AdaptiveMerged) RangeCount(clk *storage.Clock, lo, hi int64) int {
	if lo >= hi {
		return 0
	}
	var moved []int64
	for ri, run := range a.runs {
		if len(run) == 0 {
			continue
		}
		if clk != nil {
			clk.Compares(2 * intLog2(len(run)+1))
			clk.RandRead(1)
		}
		i := sort.Search(len(run), func(k int) bool { return run[k] >= lo })
		j := sort.Search(len(run), func(k int) bool { return run[k] >= hi })
		if j > i {
			moved = append(moved, run[i:j]...)
			if clk != nil {
				clk.RowWork(j - i)
			}
			a.runs[ri] = append(append([]int64(nil), run[:i]...), run[j:]...)
		}
	}
	if len(moved) > 0 {
		if clk != nil {
			clk.Compares((len(moved) + len(a.merged)) / 4) // galloping merge
			clk.RowWork(len(moved))
		}
		sort.Slice(moved, func(i, j int) bool { return moved[i] < moved[j] })
		a.merged = mergeSorted(a.merged, moved)
	}
	// Count in the consolidated area.
	i := sort.Search(len(a.merged), func(k int) bool { return a.merged[k] >= lo })
	j := sort.Search(len(a.merged), func(k int) bool { return a.merged[k] >= hi })
	if clk != nil {
		clk.Compares(2 * intLog2(len(a.merged)+1))
		clk.SeqRead((j - i + storage.PageRows - 1) / storage.PageRows)
	}
	return j - i
}

func mergeSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// RunsRemaining reports how many source runs still hold values.
func (a *AdaptiveMerged) RunsRemaining() int {
	n := 0
	for _, r := range a.runs {
		if len(r) > 0 {
			n++
		}
	}
	return n
}

// MergedSize reports the consolidated area's size.
func (a *AdaptiveMerged) MergedSize() int { return len(a.merged) }
