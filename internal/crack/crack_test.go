package crack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rqp/internal/storage"
)

func randomVals(seed int64, n int, domain int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(domain)
	}
	return out
}

func TestCrackedRangeCountMatchesScan(t *testing.T) {
	vals := randomVals(1, 5000, 1000)
	c := NewCracked(vals)
	s := NewScan(vals)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 200; q++ {
		lo := rng.Int63n(1000)
		hi := lo + rng.Int63n(200)
		want := s.RangeCount(nil, lo, hi)
		got := c.RangeCount(nil, lo, hi)
		if got != want {
			t.Fatalf("query %d [%d,%d): cracked %d, scan %d", q, lo, hi, got, want)
		}
		if !c.CheckInvariants() {
			t.Fatal("cracking invariant violated")
		}
	}
	if c.NumPieces() < 10 {
		t.Errorf("column should fragment with queries: %d pieces", c.NumPieces())
	}
}

func TestCrackedPreservesMultiset(t *testing.T) {
	vals := randomVals(3, 2000, 100)
	c := NewCracked(vals)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 50; q++ {
		lo := rng.Int63n(100)
		c.RangeCount(nil, lo, lo+rng.Int63n(30))
	}
	count := map[int64]int{}
	for _, v := range vals {
		count[v]++
	}
	for _, v := range c.Values() {
		count[v]--
	}
	for k, n := range count {
		if n != 0 {
			t.Fatalf("value %d count off by %d after cracking", k, n)
		}
	}
}

func TestCrackingCostDecreases(t *testing.T) {
	vals := randomVals(5, 100000, 10000)
	c := NewCracked(vals)
	clk := storage.NewClock(storage.DefaultCostModel())
	rng := rand.New(rand.NewSource(6))
	cost := func() float64 {
		w := clk.StartWatch()
		lo := rng.Int63n(9000)
		c.RangeCount(clk, lo, lo+100)
		return w.Elapsed()
	}
	early := 0.0
	for i := 0; i < 5; i++ {
		early += cost()
	}
	for i := 0; i < 200; i++ {
		cost()
	}
	late := 0.0
	for i := 0; i < 5; i++ {
		late += cost()
	}
	if late >= early/5 {
		t.Errorf("cracking should converge: early=%.1f late=%.1f", early, late)
	}
}

func TestSortedColumnBaseline(t *testing.T) {
	vals := randomVals(7, 3000, 500)
	s := NewScan(vals)
	idx := NewSorted(nil, vals)
	rng := rand.New(rand.NewSource(8))
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(500)
		hi := lo + rng.Int63n(100)
		if got, want := idx.RangeCount(nil, lo, hi), s.RangeCount(nil, lo, hi); got != want {
			t.Fatalf("[%d,%d): sorted %d scan %d", lo, hi, got, want)
		}
	}
}

func TestAdaptiveMergedMatchesScan(t *testing.T) {
	vals := randomVals(9, 8000, 2000)
	am := NewAdaptiveMerged(nil, vals, 512)
	s := NewScan(vals)
	rng := rand.New(rand.NewSource(10))
	for q := 0; q < 150; q++ {
		lo := rng.Int63n(2000)
		hi := lo + rng.Int63n(300)
		if got, want := am.RangeCount(nil, lo, hi), s.RangeCount(nil, lo, hi); got != want {
			t.Fatalf("query %d [%d,%d): merged %d scan %d", q, lo, hi, got, want)
		}
	}
	if am.MergedSize() == 0 {
		t.Error("queries should have consolidated some values")
	}
}

func TestAdaptiveMergedRepeatQueryCheaper(t *testing.T) {
	vals := randomVals(11, 50000, 5000)
	clk := storage.NewClock(storage.DefaultCostModel())
	am := NewAdaptiveMerged(clk, vals, 2048)
	w1 := clk.StartWatch()
	am.RangeCount(clk, 1000, 1200)
	first := w1.Elapsed()
	w2 := clk.StartWatch()
	am.RangeCount(clk, 1000, 1200)
	second := w2.Elapsed()
	if second >= first {
		t.Errorf("repeat query should be cheaper: first=%.2f second=%.2f", first, second)
	}
}

func TestPropertyCrackedEqualsSorted(t *testing.T) {
	f := func(seed int64, queries uint8) bool {
		vals := randomVals(seed, 500, 100)
		c := NewCracked(vals)
		idx := NewSorted(nil, vals)
		rng := rand.New(rand.NewSource(seed + 1))
		for q := 0; q < int(queries)%40+5; q++ {
			lo := rng.Int63n(100)
			hi := lo + rng.Int63n(40)
			if c.RangeCount(nil, lo, hi) != idx.RangeCount(nil, lo, hi) {
				return false
			}
		}
		return c.CheckInvariants()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndDegenerateRanges(t *testing.T) {
	vals := randomVals(12, 100, 50)
	c := NewCracked(vals)
	if c.RangeCount(nil, 10, 10) != 0 {
		t.Error("empty range should count 0")
	}
	if c.RangeCount(nil, 20, 10) != 0 {
		t.Error("inverted range should count 0")
	}
	if got := c.RangeCount(nil, -100, 1000); got != 100 {
		t.Errorf("full range = %d, want 100", got)
	}
	vs := c.RangeValues(nil, 0, 25)
	for _, v := range vs {
		if v < 0 || v >= 25 {
			t.Fatalf("RangeValues returned out-of-range %d", v)
		}
	}
}
